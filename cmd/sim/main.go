// Command sim runs the discrete-event churn simulator: a single live
// resource manager under hours of simulated arrivals, departures,
// hardware faults and defragmentation (see internal/sim). It prints a
// per-policy summary — or, with -policy all, the policy-comparison
// table, the long-horizon analogue of the paper's Table I — and can
// write the full deterministic trace as JSON.
//
// Usage:
//
//	sim -seed 1 -duration 10m                 # compare all defrag policies
//	sim -policy on-rejection -json trace.json # one policy, full JSON trace
//	sim -platform mesh6x6 -rate 30 -lifetime 60s
//	sim -fault-every 0s                       # disable fault injection
//	sim -mapper firstfit -router dijkstra     # swap phase strategies
//
// For a fixed seed the JSON output is byte-identical across runs and
// -workers settings; only the wall-clock latency lines of the text
// summary vary.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/kairos"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	shared := kairos.RegisterFlags(fs)
	var (
		rate       = fs.Float64("rate", 10, "mean application arrivals per simulated minute")
		lifetime   = fs.Duration("lifetime", 60*time.Second, "mean application lifetime (simulated)")
		duration   = fs.Duration("duration", 10*time.Minute, "simulated horizon")
		seed       = fs.Int64("seed", 1, "random seed")
		policy     = fs.String("policy", "all", "defragmentation policy: "+strings.Join(sim.PolicyNames(), "|")+"|all (comparison)")
		defragPer  = fs.Duration("defrag-period", 30*time.Second, "periodic policy: readmission interval (simulated)")
		faultEvery = fs.Duration("fault-every", 2*time.Minute, "mean time between hardware faults (0 disables)")
		repair     = fs.Duration("repair", 45*time.Second, "mean time until a fault is repaired")
		sample     = fs.Duration("sample", 10*time.Second, "time-series sampling interval")
		jsonOut    = fs.String("json", "", "write the deterministic result as JSON to this file (- for stdout)")
		workers    = fs.Int("workers", 0, "worker pool for the policy comparison (0 = all CPUs)")
		cluster    = fs.Int("cluster", 0, "cluster churn scenario: number of platform shards (0 = single platform)")
		placement  = fs.String("placement", "all", "cluster: placement policy name or all (comparison)")
		spill      = fs.Int("spill", 0, "cluster: max shards tried per admission (0 = all)")
		autoscale  = fs.Int("autoscale", 0, "autoscaling scenario: number of boot shards (0 = off)")
		scenario   = fs.String("scenario", "flash", "autoscale: load shape: "+strings.Join(sim.AutoscaleScenarios(), "|"))
		rebPolicy  = fs.String("rebalance", "all", "autoscale: rebalance policy name or all (comparison)")
		rebBudget  = fs.Int("rebalance-budget", 4, "autoscale: max migrations per rebalance tick")
		peak       = fs.Float64("peak", 3, "autoscale: peak arrival-rate multiplier over the baseline")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rate <= 0 {
		return fmt.Errorf("-rate must be positive")
	}
	if *duration <= 0 || *lifetime <= 0 {
		return fmt.Errorf("-duration and -lifetime must be positive")
	}

	p, err := shared.BuildPlatform()
	if err != nil {
		return err
	}
	w, err := shared.Weights()
	if err != nil {
		return err
	}
	opts, err := shared.StrategyOptions()
	if err != nil {
		return err
	}

	cfg := sim.Config{
		Platform:     p,
		Weights:      w,
		Options:      opts,
		ArrivalRate:  *rate / 60,
		MeanLifetime: lifetime.Seconds(),
		Duration:     duration.Seconds(),
		Seed:         *seed,
		DefragPeriod: defragPer.Seconds(),
		ReplanBudget: shared.ReplanBudget,
		ReplanSeed:   shared.ReplanSeed,
		MeanRepair:   repair.Seconds(),
		SampleEvery:  sample.Seconds(),
	}
	if *faultEvery > 0 {
		cfg.FaultRate = 1 / faultEvery.Seconds()
	}

	if *autoscale > 0 {
		// The autoscaling scenario compares rebalance policies under a
		// pinned first-fit/spill-1 router; the other modes' vocabulary
		// does not apply.
		var incompatible []string
		fs.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "cluster", "placement", "spill",
				"policy", "defrag-period", "sample", "fault-every", "repair":
				incompatible = append(incompatible, "-"+fl.Name)
			}
		})
		if len(incompatible) > 0 {
			return fmt.Errorf("%s: not -autoscale flags; use -scenario/-rebalance/-rebalance-budget/-peak",
				strings.Join(incompatible, ", "))
		}
		acfg := sim.DefaultAutoscaleConfig(*autoscale)
		acfg.Platform = p
		acfg.Weights = w
		acfg.Scenario = *scenario
		acfg.BaseRate = *rate / 60
		acfg.PeakFactor = *peak
		acfg.MeanLifetime = lifetime.Seconds()
		acfg.Duration = duration.Seconds()
		acfg.Seed = *seed
		acfg.Rebalance.Budget = *rebBudget
		fmt.Fprintf(stdout, "autoscale %s: %d × %v, %.1f arrivals/min baseline ×%.1f peak, mean lifetime %v, horizon %v, seed %d\n\n",
			*scenario, *autoscale, p, *rate, *peak, lifetime, duration, *seed)
		var aresults []*sim.AutoscaleResult
		if *rebPolicy == "all" {
			aresults, err = sim.RunAutoscaleComparison(acfg, sim.RebalancePolicies(), *workers)
			if err != nil {
				return err
			}
			for _, r := range aresults {
				fmt.Fprint(stdout, sim.FormatAutoscaleSummary(r))
			}
			fmt.Fprintf(stdout, "\n== rebalance policy comparison ==\n")
			fmt.Fprint(stdout, sim.FormatAutoscaleComparison(aresults))
		} else {
			acfg.Rebalance.Policy = *rebPolicy
			r, err := sim.RunAutoscale(acfg)
			if err != nil {
				return err
			}
			aresults = []*sim.AutoscaleResult{r}
			fmt.Fprint(stdout, sim.FormatAutoscaleSummary(r))
		}
		return writeJSONResult(stdout, *jsonOut, aresults)
	}

	if *cluster > 0 {
		// The cluster scenario compares placement policies; the
		// single-platform vocabulary (defrag policy, its period, the
		// time series) does not apply there. Rejecting it beats
		// silently running a different experiment than the user asked
		// for.
		var incompatible []string
		fs.Visit(func(fl *flag.Flag) {
			switch fl.Name {
			case "policy", "defrag-period", "sample":
				incompatible = append(incompatible, "-"+fl.Name)
			}
		})
		if len(incompatible) > 0 {
			return fmt.Errorf("%s: single-platform flags only; with -cluster use -placement/-spill",
				strings.Join(incompatible, ", "))
		}
		phaseOpts, err := shared.PhaseStrategies()
		if err != nil {
			return err
		}
		ccfg := sim.ClusterConfig{
			Shards:       *cluster,
			Platform:     p,
			Spill:        *spill,
			Weights:      w,
			Options:      phaseOpts,
			ArrivalRate:  *rate / 60 * float64(*cluster),
			MeanLifetime: lifetime.Seconds(),
			Duration:     duration.Seconds(),
			Seed:         *seed,
			MeanRepair:   repair.Seconds(),
		}
		if *faultEvery > 0 {
			ccfg.FaultRate = 1 / faultEvery.Seconds() * float64(*cluster)
		}
		fmt.Fprintf(stdout, "cluster of %d × %v, %.1f arrivals/min/shard, mean lifetime %v, horizon %v, seed %d\n\n",
			*cluster, p, *rate, lifetime, duration, *seed)
		var cresults []*sim.ClusterResult
		if *placement == "all" {
			cresults = sim.RunClusterComparison(ccfg, sim.AllPlacements(), *workers)
			for _, r := range cresults {
				fmt.Fprint(stdout, sim.FormatClusterSummary(r))
			}
			fmt.Fprintf(stdout, "\n== placement policy comparison ==\n")
			fmt.Fprint(stdout, sim.FormatClusterComparison(cresults))
		} else {
			pol, err := kairos.PlacementByName(*placement)
			if err != nil {
				return err
			}
			ccfg.Placement = pol
			r := sim.RunCluster(ccfg)
			cresults = []*sim.ClusterResult{r}
			fmt.Fprint(stdout, sim.FormatClusterSummary(r))
		}
		return writeJSONResult(stdout, *jsonOut, cresults)
	}

	fmt.Fprintf(stdout, "platform %v, %.1f arrivals/min, mean lifetime %v, horizon %v, seed %d\n\n",
		p, *rate, lifetime, duration, *seed)

	var results []*sim.Result
	if *policy == "all" {
		results = sim.RunComparison(cfg, sim.AllPolicies(), *workers)
		for _, r := range results {
			fmt.Fprint(stdout, sim.FormatSummary(r))
		}
		fmt.Fprintf(stdout, "\n== defragmentation policy comparison ==\n")
		fmt.Fprint(stdout, sim.FormatComparison(results))
	} else {
		pol, err := sim.ParsePolicy(*policy)
		if err != nil {
			return err
		}
		cfg.Policy = pol
		r := sim.Run(cfg)
		results = []*sim.Result{r}
		fmt.Fprint(stdout, sim.FormatSummary(r))
	}

	return writeJSONResult(stdout, *jsonOut, results)
}

// writeJSONResult writes the deterministic result(s) as indented JSON:
// a bare object for one result, an array for a comparison. An empty
// path skips the write, "-" targets stdout.
func writeJSONResult[T any](stdout io.Writer, path string, results []T) error {
	if path == "" {
		return nil
	}
	var v any = results
	if len(results) == 1 {
		v = results[0]
	}
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "sim:", err)
		os.Exit(2)
	}
}
