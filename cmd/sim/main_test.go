package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunComparisonSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-seed", "1", "-duration", "90s", "-platform", "mesh4x4"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"policy comparison", "none", "periodic", "on-rejection"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSinglePolicyJSONDeterministic(t *testing.T) {
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	for _, p := range paths {
		var out bytes.Buffer
		args := []string{"-seed", "7", "-duration", "2m", "-policy", "on-rejection", "-json", p}
		if err := run(args, &out); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("JSON traces differ between two runs with the same seed")
	}
	if !bytes.Contains(a, []byte(`"trace"`)) || !bytes.Contains(a, []byte(`"series"`)) {
		t.Error("JSON output missing trace or series")
	}
}

// TestRunClusterComparisonSmoke: the -cluster mode compares every
// placement policy and writes deterministic JSON.
func TestRunClusterComparisonSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-seed", "1", "-duration", "90s", "-cluster", "3", "-platform", "mesh4x4"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{"placement policy comparison", "least-loaded", "first-fit", "power-of-two"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}

	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	for _, p := range paths {
		var out bytes.Buffer
		err := run([]string{"-seed", "3", "-duration", "90s", "-cluster", "3",
			"-placement", "power-of-two", "-platform", "mesh4x4", "-json", p}, &out)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("cluster JSON results differ between identical runs")
	}
}

func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-rate", "0"},
		{"-duration", "0s"},
		{"-policy", "bogus", "-duration", "1s"},
		{"-platform", "torus9"},
		{"-weights", "heavy"},
		{"-cluster", "2", "-placement", "bogus", "-duration", "1s"},
		// Single-platform flags are rejected in cluster mode instead of
		// silently running a different experiment.
		{"-cluster", "2", "-policy", "on-rejection", "-duration", "1s"},
		{"-cluster", "2", "-defrag-period", "10s", "-duration", "1s"},
		{"-cluster", "2", "-sample", "5s", "-duration", "1s"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
