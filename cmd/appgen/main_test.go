package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/appgen"
	"repro/internal/graph"
)

func TestParseProfileAndSize(t *testing.T) {
	for in, want := range map[string]appgen.Profile{
		"communication": appgen.Communication,
		"computation":   appgen.Computation,
	} {
		got, err := parseProfile(in)
		if err != nil || got != want {
			t.Errorf("parseProfile(%q) = %v, %v", in, got, err)
		}
	}
	for in, want := range map[string]appgen.Size{
		"small": appgen.Small, "medium": appgen.Medium, "large": appgen.Large,
	} {
		got, err := parseSize(in)
		if err != nil || got != want {
			t.Errorf("parseSize(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseProfile("huge"); err == nil {
		t.Error("bad profile accepted")
	}
	if _, err := parseSize("gigantic"); err == nil {
		t.Error("bad size accepted")
	}
}

func TestRunStats(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-stats", "-n", "5", "-size", "small"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "5 applications") || !strings.Contains(s, "means:") {
		t.Errorf("stats output incomplete:\n%s", s)
	}
}

// TestRunBundleRoundTrip checks the output-file path end to end: every
// written bundle decodes back to a valid application, identical to
// what the generator produced.
func TestRunBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	args := []string{"-profile", "computation", "-size", "small", "-n", "4", "-seed", "9", "-out", dir}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("wrote %d bundles, want 4", len(entries))
	}
	want := appgen.Dataset(appgen.NewConfig(appgen.Computation, appgen.Small), 4, 9)
	for _, app := range want {
		data, err := os.ReadFile(filepath.Join(dir, app.Name+".kapp"))
		if err != nil {
			t.Fatalf("bundle for %s missing: %v", app.Name, err)
		}
		if !graph.IsBundle(data) {
			t.Fatalf("%s: not a bundle", app.Name)
		}
		got, err := graph.FromBytes(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", app.Name, err)
		}
		reenc, err := graph.Bytes(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reenc, data) {
			t.Errorf("%s: decoded bundle re-encodes differently", app.Name)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-profile", "huge"},
		{"-size", "gigantic"},
		{"-n", "0"},
		{"-badflag"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
