// Command appgen generates synthetic application datasets (paper §IV)
// and writes them as Kairos application bundles (the binary format of
// §III-E) that cmd/kairos can admit.
//
// Usage:
//
//	appgen -profile communication -size medium -n 10 -out dir/
//	appgen -stats                 # dataset statistics only
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/appgen"
	"repro/internal/graph"
)

func parseProfile(s string) (appgen.Profile, error) {
	switch s {
	case "communication":
		return appgen.Communication, nil
	case "computation":
		return appgen.Computation, nil
	}
	return 0, fmt.Errorf("unknown profile %q", s)
}

func parseSize(s string) (appgen.Size, error) {
	switch s {
	case "small":
		return appgen.Small, nil
	case "medium":
		return appgen.Medium, nil
	case "large":
		return appgen.Large, nil
	}
	return 0, fmt.Errorf("unknown size %q", s)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("appgen", flag.ContinueOnError)
	var (
		profile = fs.String("profile", "communication", "application profile: communication|computation")
		size    = fs.String("size", "medium", "size class: small|medium|large")
		n       = fs.Int("n", 10, "number of applications to generate")
		seed    = fs.Int64("seed", 1, "random seed")
		out     = fs.String("out", "", "output directory for .kapp bundles (empty: stats only)")
		stats   = fs.Bool("stats", false, "print per-application statistics")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := parseProfile(*profile)
	if err != nil {
		return err
	}
	s, err := parseSize(*size)
	if err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("-n must be positive")
	}

	cfg := appgen.NewConfig(p, s)
	apps := appgen.Dataset(cfg, *n, *seed)
	fmt.Fprintf(stdout, "dataset %q: %d applications (seed %d)\n", appgen.DatasetName(cfg), len(apps), *seed)

	if *stats {
		totalTasks, totalChans, totalImpls := 0, 0, 0
		for _, app := range apps {
			impls := 0
			for _, t := range app.Tasks {
				impls += len(t.Implementations)
			}
			totalTasks += len(app.Tasks)
			totalChans += len(app.Channels)
			totalImpls += impls
			fmt.Fprintf(stdout, "  %-28s %2d tasks %2d channels %2d implementations\n",
				app.Name, len(app.Tasks), len(app.Channels), impls)
		}
		fmt.Fprintf(stdout, "means: %.1f tasks, %.1f channels, %.1f implementations per app\n",
			float64(totalTasks)/float64(len(apps)),
			float64(totalChans)/float64(len(apps)),
			float64(totalImpls)/float64(len(apps)))
	}

	if *out == "" {
		return nil
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, app := range apps {
		data, err := graph.Bytes(app)
		if err != nil {
			return fmt.Errorf("encode %s: %w", app.Name, err)
		}
		path := filepath.Join(*out, app.Name+".kapp")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "wrote %d bundles to %s\n", len(apps), *out)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "appgen:", err)
		os.Exit(2)
	}
}
