// Command kairos is a demonstration front-end for the run-time
// resource manager: it builds a platform, loads one or more
// application bundles (the binary format of paper §III-E, produced by
// cmd/appgen) or a built-in demo application, admits them sequentially
// and prints the resulting execution layouts. Every workflow phase can
// be swapped for a registered alternate by name (-binder, -mapper,
// -router, -validator).
//
// Usage:
//
//	kairos -platform crisp app1.kapp app2.kapp
//	kairos -platform mesh8x8 -weights 1,25 -beamforming
//	kairos -demo                       # built-in demo application
//	kairos -batch *.kapp               # batched admission (largest app first)
//	kairos -demo -mapper gap -router dijkstra
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/kairos"
)

// demoApp is a small video-pipeline-like application used by -demo.
func demoApp() *kairos.Application {
	app := kairos.NewApplication("demo-pipeline")
	dsp := func(name string, share int64, exec int64) int {
		return app.AddTask(name, kairos.Internal, kairos.Implementation{
			Name: name + "-dsp", Target: kairos.TypeDSP,
			Requires: kairos.Resources(share, 16, 0, 0), Cost: 2, ExecTime: exec,
		})
	}
	src := dsp("capture", 30, 4)
	app.Tasks[src].Kind = kairos.Input
	flt := dsp("filter", 60, 8)
	est := dsp("estimate", 50, 6)
	enc := dsp("encode", 70, 9)
	snk := dsp("emit", 20, 3)
	app.Tasks[snk].Kind = kairos.Output
	app.AddChannelRated(src, flt, 1, 1, 4)
	app.AddChannelRated(flt, est, 1, 1, 2)
	app.AddChannelRated(flt, enc, 1, 1, 4)
	app.AddChannelRated(est, enc, 1, 1, 1)
	app.AddChannelRated(enc, snk, 1, 1, 2)
	app.Constraints.MinThroughput = 10 // per 1000 time units
	return app
}

// printResult reports one admission attempt and returns whether it
// succeeded. adm may be nil (a batch request filtered before the
// workflow ran).
func printResult(app *kairos.Application, adm *kairos.Admission, err error, p *kairos.Platform) bool {
	fmt.Printf("== admitting %v ==\n", app)
	if err != nil {
		if adm != nil {
			fmt.Printf("REJECTED: %v\n(phase times: binding %v, mapping %v, routing %v, validation %v)\n\n",
				err, adm.Times.Binding, adm.Times.Mapping, adm.Times.Routing, adm.Times.Validation)
		} else {
			fmt.Printf("REJECTED before admission: %v\n\n", err)
		}
		return false
	}
	printLayout(adm, p)
	fmt.Println()
	return true
}

func printLayout(adm *kairos.Admission, p *kairos.Platform) {
	fmt.Printf("execution layout for %s:\n", adm.Instance)
	type row struct{ task, impl, elem string }
	var rows []row
	for _, t := range adm.App.Tasks {
		im := adm.Binding.Implementation(t.ID)
		e := p.Element(adm.Assignment[t.ID])
		rows = append(rows, row{t.Name, im.Name, e.Name})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].task < rows[j].task })
	for _, r := range rows {
		fmt.Printf("  %-16s %-16s -> %s\n", r.task, r.impl, r.elem)
	}
	fmt.Printf("routes (%d channels, %d hops total, %.2f mean):\n",
		len(adm.Routes), kairos.TotalHops(adm.Routes), kairos.MeanHops(adm.Routes))
	for _, rt := range adm.Routes {
		ch := adm.App.Channels[rt.Channel]
		names := make([]string, len(rt.Path))
		for i, e := range rt.Path {
			names[i] = p.Element(e).Name
		}
		fmt.Printf("  ch%-3d %s -> %s: %s\n", rt.Channel,
			adm.App.Tasks[ch.Src].Name, adm.App.Tasks[ch.Dst].Name,
			strings.Join(names, " → "))
	}
	if adm.Report != nil {
		fmt.Printf("validation: throughput %.5f it/unit (required %.5f), pipeline fill %d units\n",
			adm.Report.Throughput, adm.Report.Required, adm.Report.PipeLatency)
	}
	fmt.Printf("phase times: binding %v, mapping %v, routing %v, validation %v\n",
		adm.Times.Binding, adm.Times.Mapping, adm.Times.Routing, adm.Times.Validation)
}

func main() {
	shared := kairos.RegisterFlags(flag.CommandLine)
	var (
		demo     = flag.Bool("demo", false, "admit the built-in demo application")
		beam     = flag.Bool("beamforming", false, "admit the beamforming case-study application")
		skipVal  = flag.Bool("skip-validation", false, "do not reject on constraint violations")
		fastVal  = flag.Bool("fast-validation", false, "use maximum-cycle-ratio throughput analysis")
		dumpPlat = flag.Bool("dump-platform", false, "print the platform description as JSON and exit")
		batch    = flag.Bool("batch", false, "admit all applications as one AdmitAll batch (largest first) instead of in argument order")
	)
	flag.Parse()

	p, err := shared.BuildPlatform()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairos:", err)
		os.Exit(2)
	}
	if *dumpPlat {
		if err := p.WriteJSON(os.Stdout, shared.PlatformSpec); err != nil {
			fmt.Fprintln(os.Stderr, "kairos:", err)
			os.Exit(1)
		}
		return
	}
	opts, err := shared.StrategyOptions()
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairos:", err)
		os.Exit(2)
	}
	if *skipVal {
		opts = append(opts, kairos.WithAdvisoryValidation())
	}
	if *fastVal {
		opts = append(opts, kairos.WithFastValidation())
	}
	w, _ := shared.Weights()
	fmt.Printf("%v, weights={comm:%g frag:%g}\n\n", p, w.Communication, w.Fragmentation)

	var apps []*kairos.Application
	if *demo {
		apps = append(apps, demoApp())
	}
	if *beam {
		ioIn := kairos.NoFixedElement
		for _, e := range p.Elements() {
			if e.Name == "io-in" {
				ioIn = e.ID
			}
		}
		apps = append(apps, kairos.Beamforming(kairos.DefaultBeamforming(ioIn)))
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kairos:", err)
			os.Exit(1)
		}
		if !kairos.IsBundle(data) {
			fmt.Fprintf(os.Stderr, "kairos: %s is not a Kairos application bundle\n", path)
			os.Exit(1)
		}
		app, err := kairos.AppFromBytes(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kairos: %s: %v\n", path, err)
			os.Exit(1)
		}
		apps = append(apps, app)
	}
	if len(apps) == 0 {
		fmt.Fprintln(os.Stderr, "kairos: nothing to admit (pass bundles, -demo or -beamforming)")
		flag.Usage()
		os.Exit(2)
	}

	ctx := context.Background()
	k := kairos.New(p, opts...)
	admitted := 0
	if *batch {
		for _, res := range k.AdmitAll(ctx, apps) {
			if printResult(res.App, res.Admission, res.Err, p) {
				admitted++
			}
		}
	} else {
		for _, app := range apps {
			adm, err := k.Admit(ctx, app)
			if printResult(app, adm, err, p) {
				admitted++
			}
		}
	}
	fmt.Printf("admitted %d/%d applications; platform fragmentation %.1f%%\n",
		admitted, len(apps), k.Fragmentation())
	fmt.Printf("stats: %v\n", k.Stats())
	load := k.Load()
	fmt.Printf("load: live=%d used-share=%.1f%%\n", load.Live, 100*load.UsedShare)
}
