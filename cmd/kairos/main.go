// Command kairos is a demonstration front-end for the run-time
// resource manager: it builds a platform, loads one or more
// application bundles (the binary format of paper §III-E, produced by
// cmd/appgen) or a built-in demo application, admits them sequentially
// and prints the resulting execution layouts.
//
// Usage:
//
//	kairos -platform crisp app1.kapp app2.kapp
//	kairos -platform mesh8x8 -weights 1,25 -beamforming
//	kairos -demo            # built-in demo application
//	kairos -batch *.kapp    # batched admission (largest app first)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/resource"
	"repro/internal/routing"
	"repro/internal/validation"
)

// demoApp is a small video-pipeline-like application used by -demo.
func demoApp() *graph.Application {
	app := graph.New("demo-pipeline")
	dsp := func(name string, share int64, exec int64) int {
		return app.AddTask(name, graph.Internal, graph.Implementation{
			Name: name + "-dsp", Target: platform.TypeDSP,
			Requires: resource.Of(share, 16, 0, 0), Cost: 2, ExecTime: exec,
		})
	}
	src := dsp("capture", 30, 4)
	app.Tasks[src].Kind = graph.Input
	flt := dsp("filter", 60, 8)
	est := dsp("estimate", 50, 6)
	enc := dsp("encode", 70, 9)
	snk := dsp("emit", 20, 3)
	app.Tasks[snk].Kind = graph.Output
	app.AddChannelRated(src, flt, 1, 1, 4)
	app.AddChannelRated(flt, est, 1, 1, 2)
	app.AddChannelRated(flt, enc, 1, 1, 4)
	app.AddChannelRated(est, enc, 1, 1, 1)
	app.AddChannelRated(enc, snk, 1, 1, 2)
	app.Constraints.MinThroughput = 10 // per 1000 time units
	return app
}

// printResult reports one admission attempt and returns whether it
// succeeded. adm may be nil (a batch request filtered before the
// workflow ran).
func printResult(app *graph.Application, adm *core.Admission, err error, p *platform.Platform) bool {
	fmt.Printf("== admitting %v ==\n", app)
	if err != nil {
		if adm != nil {
			fmt.Printf("REJECTED: %v\n(phase times: binding %v, mapping %v, routing %v, validation %v)\n\n",
				err, adm.Times.Binding, adm.Times.Mapping, adm.Times.Routing, adm.Times.Validation)
		} else {
			fmt.Printf("REJECTED before admission: %v\n\n", err)
		}
		return false
	}
	printLayout(adm, p)
	fmt.Println()
	return true
}

func printLayout(adm *core.Admission, p *platform.Platform) {
	fmt.Printf("execution layout for %s:\n", adm.Instance)
	type row struct{ task, impl, elem string }
	var rows []row
	for _, t := range adm.App.Tasks {
		im := adm.Binding.Implementation(t.ID)
		e := p.Element(adm.Assignment[t.ID])
		rows = append(rows, row{t.Name, im.Name, e.Name})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].task < rows[j].task })
	for _, r := range rows {
		fmt.Printf("  %-16s %-16s -> %s\n", r.task, r.impl, r.elem)
	}
	fmt.Printf("routes (%d channels, %d hops total, %.2f mean):\n",
		len(adm.Routes), routing.TotalHops(adm.Routes), routing.MeanHops(adm.Routes))
	for _, rt := range adm.Routes {
		ch := adm.App.Channels[rt.Channel]
		names := make([]string, len(rt.Path))
		for i, e := range rt.Path {
			names[i] = p.Element(e).Name
		}
		fmt.Printf("  ch%-3d %s -> %s: %s\n", rt.Channel,
			adm.App.Tasks[ch.Src].Name, adm.App.Tasks[ch.Dst].Name,
			strings.Join(names, " → "))
	}
	if adm.Report != nil {
		fmt.Printf("validation: throughput %.5f it/unit (required %.5f), pipeline fill %d units\n",
			adm.Report.Throughput, adm.Report.Required, adm.Report.PipeLatency)
	}
	fmt.Printf("phase times: binding %v, mapping %v, routing %v, validation %v\n",
		adm.Times.Binding, adm.Times.Mapping, adm.Times.Routing, adm.Times.Validation)
}

func main() {
	var (
		platName = flag.String("platform", "crisp", "platform: crisp, mesh<W>x<H>, or a .json description")
		weights  = flag.String("weights", "both", "cost weights: none|communication|fragmentation|both|C,F")
		demo     = flag.Bool("demo", false, "admit the built-in demo application")
		beam     = flag.Bool("beamforming", false, "admit the beamforming case-study application")
		skipVal  = flag.Bool("skip-validation", false, "do not reject on constraint violations")
		fastVal  = flag.Bool("fast-validation", false, "use maximum-cycle-ratio throughput analysis")
		dumpPlat = flag.Bool("dump-platform", false, "print the platform description as JSON and exit")
		batch    = flag.Bool("batch", false, "admit all applications as one AdmitAll batch (largest first) instead of in argument order")
	)
	flag.Parse()

	p, err := platform.FromSpec(*platName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairos:", err)
		os.Exit(2)
	}
	if *dumpPlat {
		if err := p.WriteJSON(os.Stdout, *platName); err != nil {
			fmt.Fprintln(os.Stderr, "kairos:", err)
			os.Exit(1)
		}
		return
	}
	w, err := mapping.ParseWeights(*weights)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kairos:", err)
		os.Exit(2)
	}
	fmt.Printf("%v, weights={comm:%g frag:%g}\n\n", p, w.Communication, w.Fragmentation)

	var apps []*graph.Application
	if *demo {
		apps = append(apps, demoApp())
	}
	if *beam {
		ioIn := graph.NoFixedElement
		for _, e := range p.Elements() {
			if e.Name == "io-in" {
				ioIn = e.ID
			}
		}
		apps = append(apps, graph.Beamforming(graph.DefaultBeamforming(ioIn)))
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kairos:", err)
			os.Exit(1)
		}
		if !graph.IsBundle(data) {
			fmt.Fprintf(os.Stderr, "kairos: %s is not a Kairos application bundle\n", path)
			os.Exit(1)
		}
		app, err := graph.FromBytes(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kairos: %s: %v\n", path, err)
			os.Exit(1)
		}
		apps = append(apps, app)
	}
	if len(apps) == 0 {
		fmt.Fprintln(os.Stderr, "kairos: nothing to admit (pass bundles, -demo or -beamforming)")
		flag.Usage()
		os.Exit(2)
	}

	k := core.New(p, core.Options{
		Weights:        w,
		SkipValidation: *skipVal,
		Validation:     validation.Options{Fast: *fastVal},
	})
	admitted := 0
	if *batch {
		for _, res := range k.AdmitAll(apps) {
			if printResult(res.App, res.Admission, res.Err, p) {
				admitted++
			}
		}
	} else {
		for _, app := range apps {
			adm, err := k.Admit(app)
			if printResult(app, adm, err, p) {
				admitted++
			}
		}
	}
	fmt.Printf("admitted %d/%d applications; platform fragmentation %.1f%%\n",
		admitted, len(apps), k.Fragmentation())
	fmt.Printf("stats: %v\n", k.Stats())
}
