package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/platform"
)

func TestBuildPlatformCRISP(t *testing.T) {
	p, err := buildPlatform("crisp")
	if err != nil {
		t.Fatalf("crisp: %v", err)
	}
	if p.CountByType()[platform.TypeDSP] != 45 {
		t.Error("crisp platform malformed")
	}
}

func TestBuildPlatformMesh(t *testing.T) {
	p, err := buildPlatform("mesh3x2")
	if err != nil {
		t.Fatalf("mesh3x2: %v", err)
	}
	// 6 mesh tiles + 2 IO tiles.
	if p.NumElements() != 8 {
		t.Errorf("mesh3x2 elements = %d, want 8", p.NumElements())
	}
	for _, bad := range []string{"mesh", "meshAxB", "mesh0x3", "mesh3", "torus2x2"} {
		if _, err := buildPlatform(bad); err == nil {
			t.Errorf("%q should be rejected", bad)
		}
	}
}

func TestBuildPlatformJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := platform.Mesh(2, 2, 2).WriteJSON(f, "m"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := buildPlatform(path)
	if err != nil {
		t.Fatalf("json platform: %v", err)
	}
	if p.NumElements() != 4 {
		t.Errorf("elements = %d, want 4", p.NumElements())
	}
	if _, err := buildPlatform(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestParseWeights(t *testing.T) {
	cases := []struct {
		in         string
		comm, frag float64
	}{
		{"none", 0, 0},
		{"communication", 1, 0},
		{"fragmentation", 0, 25},
		{"both", 1, 25},
		{"3,400", 3, 400},
		{"0.5,12.5", 0.5, 12.5},
	}
	for _, c := range cases {
		w, err := parseWeights(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if w.Communication != c.comm || w.Fragmentation != c.frag {
			t.Errorf("%q = %+v, want {%g %g}", c.in, w, c.comm, c.frag)
		}
	}
	for _, bad := range []string{"", "x", "1;2", "a,b", "1,2,3extra,"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("%q should be rejected", bad)
		}
	}
}

func TestDemoAppValid(t *testing.T) {
	app := demoApp()
	if err := app.Validate(); err != nil {
		t.Fatalf("demo app invalid: %v", err)
	}
	if len(app.Tasks) != 5 || len(app.Channels) != 5 {
		t.Errorf("demo app shape changed: %v", app)
	}
}
