package main

import "testing"

// Platform-spec and weight parsing are tested where they live now:
// internal/platform (FromSpec) and internal/mapping (ParseWeights).

func TestDemoAppValid(t *testing.T) {
	app := demoApp()
	if err := app.Validate(); err != nil {
		t.Fatalf("demo app invalid: %v", err)
	}
	if len(app.Tasks) != 5 || len(app.Channels) != 5 {
		t.Errorf("demo app shape changed: %v", app)
	}
}
