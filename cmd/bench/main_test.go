package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// TestList prints the pinned scenario set without running anything.
func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"admit/communication-small", "admit/computation-large",
		"admitall/10", "admitall/1000",
		"readmit/after-fault", "churn/steady-state",
		"strategy/binder-exact", "strategy/router-dijkstra",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output lacks %q:\n%s", want, out.String())
		}
	}
}

// TestRunSubsetEmitsValidJSON runs one real scenario and checks the
// emitted report parses under the current schema with deterministic
// counts filled in.
func TestRunSubsetEmitsValidJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	var out bytes.Buffer
	err := run([]string{
		"-quick", "-q", "-run", "^admit/computation-small$",
		"-json", path, "-sha", "testsha",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := bench.UnmarshalReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != bench.Schema || rep.SHA != "testsha" || !rep.Quick {
		t.Errorf("report header wrong: %+v", rep)
	}
	if len(rep.Scenarios) != 1 || rep.Scenarios[0].Name != "admit/computation-small" {
		t.Fatalf("unexpected scenarios: %+v", rep.Scenarios)
	}
	m := rep.Scenarios[0]
	if m.Ops <= 0 || m.Attempts != m.Ops || m.NsPerOp <= 0 || m.AllocsPerOp <= 0 {
		t.Errorf("implausible measurement: %+v", m)
	}
	if !strings.Contains(out.String(), "admit/computation-small") {
		t.Errorf("table output lacks the scenario:\n%s", out.String())
	}
}

// TestCompareGateExitPath checks the CLI comparison: a clean pair
// passes, a regressed pair returns errRegression (exit 1 in main).
func TestCompareGateExitPath(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ns, allocs int64) string {
		rep := &bench.Report{
			Schema: bench.Schema, SHA: name, Quick: true, Seed: 1,
			Scenarios: []bench.Measurement{{
				Name: "admit/x", Group: "admit", Ops: 10, Attempts: 10,
				NsPerOp: ns, AllocsPerOp: allocs,
			}},
		}
		data, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old", 1000, 500)
	okPath := write("ok", 1050, 500)
	badPath := write("bad", 5000, 900)

	var out bytes.Buffer
	if err := run([]string{"-compare", oldPath, okPath}, &out); err != nil {
		t.Errorf("clean compare should pass: %v\n%s", err, out.String())
	}
	out.Reset()
	err := run([]string{"-compare", oldPath, badPath}, &out)
	if !errors.Is(err, errRegression) {
		t.Errorf("regressed compare returned %v, want errRegression", err)
	}
	if !strings.Contains(out.String(), "REGRESSIONS") {
		t.Errorf("comparison output lacks the regression list:\n%s", out.String())
	}
}
