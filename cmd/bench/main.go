// Command bench runs the repository's pinned benchmark suite (see
// internal/bench) and writes one machine-readable BENCH_<git-sha>.json
// per revision — the performance trajectory of the resource manager —
// plus a human-readable table. It is also the CI regression gate: with
// -compare it diffs two reports and exits non-zero when the new one
// regresses (ns/op beyond -tolerance, or allocs/op beyond the
// max(2, 0.5%) noise floor — allocation counts are deterministic, so
// anything above that is a real regression).
//
// Usage:
//
//	bench                         # full suite, BENCH_<sha>.json in .
//	bench -quick                  # the CI-sized run (same scenarios, fewer ops)
//	bench -run 'admit/'           # subset by regexp
//	bench -list                   # print the scenario set and ops, no run
//	bench -out /tmp -sha abc123   # where and under which revision to record
//	bench -compare -tolerance 0.15 old.json new.json
//
// For a fixed -seed and mode, two runs execute identical scenario
// sets with identical ops and attempt counts; only the timing-derived
// fields differ (EXPERIMENTS.md §5).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/bench"
)

// errRegression makes main exit 1 (gate failed) instead of 2 (usage).
var errRegression = errors.New("regression gate failed")

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	var (
		quick     = fs.Bool("quick", false, "CI-sized run: same scenario set, fewer ops per scenario")
		seed      = fs.Int64("seed", 1, "random seed for datasets and the churn simulator")
		runFilter = fs.String("run", "", "run only scenarios matching this regexp")
		list      = fs.Bool("list", false, "list the scenario set and ops counts without running")
		outDir    = fs.String("out", ".", "directory for the BENCH_<sha>.json report")
		jsonPath  = fs.String("json", "", "explicit report path (overrides -out naming; - for stdout only)")
		sha       = fs.String("sha", "", "revision to record in the report (default: git rev-parse --short HEAD)")
		compare   = fs.Bool("compare", false, "compare two BENCH_*.json files: bench -compare old.json new.json")
		tolerance = fs.Float64("tolerance", 0.15, "compare: acceptable ns/op growth fraction (allocs/op is gated separately at a max(2, 0.5%) noise floor)")
		quiet     = fs.Bool("q", false, "suppress per-scenario progress lines")
		mutexProf = fs.String("mutexprofile", "", "write a mutex-contention profile of the run to this file")
		blockProf = fs.String("blockprofile", "", "write a blocking profile of the run to this file")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two report files, got %d", fs.NArg())
		}
		return runCompare(fs.Arg(0), fs.Arg(1), *tolerance, stdout)
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %v (did you mean -compare?)", fs.Args())
	}

	suite := bench.Suite(bench.Options{Quick: *quick, Seed: *seed})
	suite, err := bench.Filter(suite, *runFilter)
	if err != nil {
		return err
	}
	if len(suite) == 0 {
		return fmt.Errorf("no scenario matches -run %q", *runFilter)
	}
	if *list {
		fmt.Fprintf(stdout, "%-28s %-10s %8s\n", "scenario", "group", "ops")
		for _, sc := range suite {
			fmt.Fprintf(stdout, "%-28s %-10s %8d\n", sc.Name, sc.Group, sc.Ops)
		}
		return nil
	}

	var logf bench.Logf
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		}
	}
	// Contention profiles for triaging the contended scenarios: sampled
	// mutex contention and goroutine blocking over the whole run. The
	// sampling changes timings a little, so CI records the profiles in
	// a dedicated artifact run, not in the gated measurement run.
	// Status goes to stderr so `-json -` stays machine-readable.
	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(5)
		defer func() {
			runtime.SetMutexProfileFraction(0)
			writeProfile("mutex", *mutexProf)
		}()
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(10_000) // one sample per 10µs blocked
		defer func() {
			runtime.SetBlockProfileRate(0)
			writeProfile("block", *blockProf)
		}()
	}
	rep, err := bench.Run(suite, *quick, *seed, logf)
	if err != nil {
		return err
	}
	rep.SHA = *sha
	if rep.SHA == "" {
		rep.SHA = gitSHA()
	}

	// -json - means machine-readable stdout: nothing but the JSON may
	// land on the stream, so the table is skipped there.
	if *jsonPath != "-" {
		if !*quiet {
			fmt.Fprintln(stdout)
		}
		fmt.Fprint(stdout, bench.FormatTable(rep))
	}

	data, err := rep.Marshal()
	if err != nil {
		return err
	}
	switch {
	case *jsonPath == "-":
		_, err = stdout.Write(data)
		return err
	case *jsonPath != "":
		return writeReport(*jsonPath, data, stdout)
	default:
		name := filepath.Join(*outDir, "BENCH_"+rep.SHA+".json")
		return writeReport(name, data, stdout)
	}
}

// writeProfile dumps the named runtime profile; profile failures warn
// rather than fail the run (the measurements are already taken).
func writeProfile(name, path string) {
	p := pprof.Lookup(name)
	if p == nil {
		fmt.Fprintf(os.Stderr, "bench: no %s profile available\n", name)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %s profile: %v\n", name, err)
		return
	}
	defer f.Close()
	if err := p.WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "bench: writing %s profile: %v\n", name, err)
		return
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s profile %s\n", name, path)
}

func writeReport(path string, data []byte, stdout io.Writer) error {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nwrote %s\n", path)
	return nil
}

func runCompare(oldPath, newPath string, tolerance float64, stdout io.Writer) error {
	oldRep, err := readReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readReport(newPath)
	if err != nil {
		return err
	}
	regs, err := bench.Compare(oldRep, newRep, tolerance)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "comparing %s (%s) -> %s (%s)\n\n",
		filepath.Base(oldPath), oldRep.SHA, filepath.Base(newPath), newRep.SHA)
	fmt.Fprint(stdout, bench.FormatComparison(oldRep, newRep, regs, tolerance))
	if len(regs) > 0 {
		return errRegression
	}
	return nil
}

func readReport(path string) (*bench.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := bench.UnmarshalReport(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != bench.Schema {
		return nil, fmt.Errorf("%s: schema %d, this binary speaks %d", path, rep.Schema, bench.Schema)
	}
	return rep, nil
}

// gitSHA asks git for the current short revision; "unknown" outside a
// work tree.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		if errors.Is(err, errRegression) {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
}
