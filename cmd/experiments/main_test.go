package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestRunTable1Smoke is a one-replication end-to-end run of the
// Table I pipeline at reduced scale.
func TestRunTable1Smoke(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-table1", "-apps", "8", "-seqs", "1", "-workers", "2", "-seed", "3"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	for _, want := range []string{
		"datasets (built in",
		"== Table I",
		"Communication Small",
		"Computation Large",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunCaseStudy(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-case"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Case study") {
		t.Errorf("case study output missing:\n%s", out.String())
	}
}

func TestRunNoExperimentSelected(t *testing.T) {
	var out bytes.Buffer
	err := run(nil, &out)
	if !errors.Is(err, errUsage) {
		t.Fatalf("error = %v, want errUsage", err)
	}
	if !strings.Contains(out.String(), "Usage") {
		t.Error("usage not printed")
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-table1", "-apps", "0"},
		{"-table1", "-seqs", "-1"},
		{"-nosuchflag"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted, want error", args)
		}
	}
}
