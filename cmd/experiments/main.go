// Command experiments regenerates the tables and figures of the
// paper's evaluation (§IV): Table I, Figs. 7–10 and the beamforming
// case study. Each experiment prints the same rows/series the paper
// reports; absolute run times are host-dependent, the shapes are what
// the reproduction checks (see EXPERIMENTS.md).
//
// Usage:
//
//	experiments -table1            # failure distribution per phase
//	experiments -fig7              # per-phase run times vs task count
//	experiments -fig8              # hops per channel vs sequence position
//	experiments -fig9              # fragmentation vs sequence position
//	experiments -fig10             # beamforming admission weight map
//	experiments -case              # beamforming case study timings
//	experiments -replangap         # replanner gap-to-optimal ablation
//	experiments -all               # everything
//	experiments -apps 100 -seqs 30 # dataset size / sequences per dataset
//	experiments -workers 4         # bound the replication worker pool
//	experiments -table1 -mapper firstfit   # swap a phase strategy
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/kairos"
)

// errUsage asks main for a usage-style exit; run has already printed
// the usage text, so main exits 2 without an extra message.
var errUsage = fmt.Errorf("no experiment selected")

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	shared := kairos.RegisterFlags(fs)
	var (
		table1  = fs.Bool("table1", false, "run Table I (failure distribution per phase)")
		fig7    = fs.Bool("fig7", false, "run Fig. 7 (per-phase run times vs task count)")
		fig8    = fs.Bool("fig8", false, "run Fig. 8 (hops per channel vs position)")
		fig9    = fs.Bool("fig9", false, "run Fig. 9 (fragmentation vs position)")
		fig10   = fs.Bool("fig10", false, "run Fig. 10 (beamforming admission weight map)")
		casefl  = fs.Bool("case", false, "run the beamforming case study")
		gap     = fs.Bool("replangap", false, "run the replanner gap-to-optimal ablation")
		all     = fs.Bool("all", false, "run every experiment")
		apps    = fs.Int("apps", experiments.DefaultAppsPerDataset, "applications generated per dataset")
		seqs    = fs.Int("seqs", 30, "random sequences per dataset")
		seed    = fs.Int64("seed", 1, "base random seed")
		grid    = fs.Bool("fullgrid", false, "fig10: sample the paper's full 26×101 grid (slow); default is a 26×41 grid")
		workers = fs.Int("workers", 0, "worker pool size for replications (0 = all CPUs, 1 = serial)")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*table1 || *fig7 || *fig8 || *fig9 || *fig10 || *casefl || *gap || *all) {
		fs.Usage()
		return errUsage
	}
	if *apps <= 0 || *seqs <= 0 {
		return fmt.Errorf("-apps and -seqs must be positive")
	}

	proto, err := shared.BuildPlatform()
	if err != nil {
		return err
	}
	weights, err := shared.Weights()
	if err != nil {
		return err
	}
	strategies, err := shared.PhaseStrategies()
	if err != nil {
		return err
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(stdout, "platform: %v (%d workers)\n\n", proto, w)

	var datasets []experiments.Dataset
	needDatasets := *all || *table1 || *fig7 || *fig8 || *fig9
	if needDatasets {
		start := time.Now()
		datasets = experiments.BuildAllDatasets(*apps, *seed, *workers)
		fmt.Fprintf(stdout, "datasets (built in %v, filtered on empty platform):\n", time.Since(start).Round(time.Millisecond))
		for _, ds := range datasets {
			fmt.Fprintf(stdout, "  %-22s %3d apps (%d removed)\n", ds.Name, len(ds.Apps), ds.Removed)
		}
		fmt.Fprintln(stdout)
	}

	if *all || *table1 || *fig7 {
		start := time.Now()
		recs := experiments.RunSequences(datasets, proto, experiments.SequenceConfig{
			Weights:   weights,
			Sequences: *seqs,
			Seed:      *seed,
			Workers:   *workers,
			Options:   strategies,
		})
		elapsed := time.Since(start).Round(time.Millisecond)
		if *all || *table1 {
			fmt.Fprintf(stdout, "== Table I: dataset characteristics and failure distribution per phase ==\n")
			fmt.Fprintf(stdout, "(%d admission attempts in %v, weights=Both)\n", len(recs), elapsed)
			fmt.Fprint(stdout, experiments.FormatTableI(experiments.TableI(datasets, recs)))
			fmt.Fprintln(stdout)
		}
		if *all || *fig7 {
			fmt.Fprintf(stdout, "== Fig. 7: mean per-phase run time of successful allocations ==\n")
			if w > 1 {
				fmt.Fprintf(stdout, "(timed under %d-way parallelism; use -workers 1 for contention-free phase times)\n", w)
			}
			fmt.Fprint(stdout, experiments.FormatFig7(experiments.Fig7(recs)))
			fmt.Fprintln(stdout)
		}
	}

	if *all || *fig8 || *fig9 {
		start := time.Now()
		labels := []string{}
		var series [][]experiments.SeriesPoint
		for _, wc := range experiments.WeightConfigs() {
			recs := experiments.RunSequences(datasets, proto, experiments.SequenceConfig{
				Weights:              wc.Weights,
				Sequences:            *seqs,
				Seed:                 *seed,
				MaxPosition:          29,
				SkipValidationTiming: true,
				Workers:              *workers,
				Options:              strategies,
			})
			labels = append(labels, wc.Label)
			series = append(series, experiments.PositionSeries(recs, 29))
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if *all || *fig8 {
			fmt.Fprintf(stdout, "== Fig. 8: mean communication resources allocated per channel (hops) ==\n")
			fmt.Fprintf(stdout, "(4 weight configurations in %v)\n", elapsed)
			fmt.Fprint(stdout, experiments.FormatSeries(labels, series, "hops",
				func(p experiments.SeriesPoint) float64 { return p.MeanHops }))
			fmt.Fprintln(stdout)
		}
		if *all || *fig9 {
			fmt.Fprintf(stdout, "== Fig. 9: external fragmentation of platform resources ==\n")
			fmt.Fprint(stdout, experiments.FormatSeries(labels, series, "frag%",
				func(p experiments.SeriesPoint) float64 { return p.MeanFrag }))
			fmt.Fprintln(stdout)
		}
	}

	if *all || *fig10 {
		cfg := experiments.DefaultFig10()
		cfg.Workers = *workers
		if !*grid {
			cfg.FragStep = 25 // 26×41 grid by default; -fullgrid for 26×101
		}
		start := time.Now()
		res := experiments.Fig10(cfg)
		fmt.Fprintf(stdout, "== Fig. 10: admission of the beamforming application over the weight grid ==\n")
		fmt.Fprintf(stdout, "(%d allocations in %v)\n", res.Total, time.Since(start).Round(time.Millisecond))
		fmt.Fprint(stdout, experiments.FormatFig10(res))
		if res.ZeroWeightAdmissions() == 0 {
			fmt.Fprintln(stdout, "zero-weight borders never admit (matches the paper)")
		} else {
			fmt.Fprintf(stdout, "NOTE: %d zero-weight border points admitted (paper: none)\n",
				res.ZeroWeightAdmissions())
		}
		fmt.Fprintln(stdout)
	}

	if *all || *casefl {
		fmt.Fprintf(stdout, "== Case study: beamforming allocation (weights=Both) ==\n")
		adm, err := experiments.CaseStudy(kairos.WeightsBoth)
		fmt.Fprint(stdout, experiments.FormatCaseStudy(adm, err))
		fmt.Fprintln(stdout)
	}

	if *all || *gap {
		gcfg := experiments.DefaultReplanGapConfig()
		gcfg.Platform = proto
		gcfg.Seed = *seed
		gcfg.Workers = *workers
		if shared.ReplanBudget > 0 {
			gcfg.Budget = shared.ReplanBudget
		}
		start := time.Now()
		rows, err := experiments.ReplanGap(gcfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== Replanner ablation: gap to the isolated-optimum bound ==\n")
		fmt.Fprintf(stdout, "(%d residents/profile target, budget %d, seed %d, in %v)\n",
			gcfg.Residents, gcfg.Budget, gcfg.Seed, time.Since(start).Round(time.Millisecond))
		fmt.Fprint(stdout, experiments.FormatReplanGap(rows))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		if !errors.Is(err, errUsage) {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
		os.Exit(2)
	}
}
