// Command kairosd serves a kairos.Cluster — N independent platform
// shards behind one admission manager — over HTTP/JSON: the
// long-running resource server the ROADMAP's scale-out goal asks for,
// built from the paper's single-MPSoC run-time manager.
//
//	POST   /v1/admit      admit one application (JSON task graph)
//	POST   /v1/admitall   admit a batch, largest-first
//	DELETE /v1/apps/{id}  release a cluster instance (URL-escaped)
//	POST   /v1/readmit    restart one instance, or sweep fault-affected ones
//	POST   /v1/replan     offline replanning pass over every shard (-replan servers)
//	POST   /v1/checkpoint snapshot the admission log (durable servers only)
//	GET    /v1/stats      per-shard and aggregate counters and load gauges
//	GET    /v1/events     merged shard-tagged event stream (SSE)
//	GET    /v1/shards     shard membership: state and load per shard
//	POST   /v1/shards     add a shard (cloned from the boot platform)
//	DELETE /v1/shards/{i} drain shard i and rehome its residents
//	GET    /healthz       liveness probe
//
// Admissions pass a QoS gate: applications may carry a "qos" class
// (low, normal, high) and the server runs a bounded priority queue in
// front of the cluster — full queue means a fast 429, and low-priority
// work is shed with a 503 once the queue or the shards pass their load
// watermarks (-admit-queue, -admit-slots, -shed-load). A background
// rebalancer (-rebalance threshold) migrates applications off hot
// shards to keep the load spread inside a hysteresis band.
//
// With -data-dir the daemon is durable: every committed admission is
// fsynced to a write-ahead log before the response is sent, and a
// restart with the same directory recovers the full allocation state —
// admissions made before a crash can be released after it. The log is
// checkpointed on shutdown (and periodically with -checkpoint-every).
//
// The same binary is its own load generator: -loadgen replays
// applications drawn from the six synthetic profiles of the paper's
// evaluation against a running server and reports throughput and
// latency percentiles.
//
// Usage:
//
//	kairosd -addr :8080 -shards 16 -placement power-of-two
//	kairosd -platform mesh6x6 -shards 4 -spill 2
//	kairosd -data-dir /var/lib/kairosd -checkpoint-every 5m
//	kairosd -loadgen -target http://127.0.0.1:8080 -rate 50 -duration 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/rebalance"
	"repro/kairos"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("kairosd", flag.ContinueOnError)
	shared := kairos.RegisterFlags(fs)
	cluster := kairos.RegisterClusterFlags(fs)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		seed     = fs.Int64("seed", 1, "cluster placement seed")
		dataDir  = fs.String("data-dir", "", "durable admission log directory; recovers prior state on start (empty = not durable)")
		ckpEvery = fs.Duration("checkpoint-every", 0, "periodic log checkpoint interval; needs -data-dir (0 = checkpoint only on shutdown)")
		qQueue   = fs.Int("admit-queue", 64, "max queued admissions before 429 (0 disables the QoS gate)")
		qSlots   = fs.Int("admit-slots", 0, "concurrent admissions before queueing (0 = 2 per shard)")
		shedLoad = fs.Float64("shed-load", 0.85, "mean used-share watermark above which low-priority admissions are shed")
		loadgen  = fs.Bool("loadgen", false, "run as a load generator client instead of a server")
		target   = fs.String("target", "http://127.0.0.1:8080", "loadgen: server base URL")
		rate     = fs.Float64("rate", 50, "loadgen: offered admissions per second (0 = closed loop)")
		duration = fs.Duration("duration", 10*time.Second, "loadgen: run length")
		workers  = fs.Int("concurrency", 8, "loadgen: concurrent in-flight requests")
		noRel    = fs.Bool("no-release", false, "loadgen: leave admitted applications running (fill-up mode)")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The two modes have disjoint vocabularies; a flag for the other
	// mode is a mistake (e.g. `-loadgen -shards 16` parameterizes
	// nothing — the loadgen hits whatever server is running). Reject it
	// instead of silently running a different experiment.
	serverOnly := map[string]bool{
		"addr": true, "shards": true, "placement": true, "spill": true,
		"platform": true, "weights": true,
		"binder": true, "mapper": true, "router": true, "validator": true,
		"layout-cache": true, "data-dir": true, "checkpoint-every": true,
		"replan": true, "replan-budget": true, "replan-seed": true,
		"admit-queue": true, "admit-slots": true, "shed-load": true,
		"rebalance": true, "rebalance-every": true, "rebalance-budget": true,
	}
	loadgenOnly := map[string]bool{
		"target": true, "rate": true, "duration": true,
		"concurrency": true, "no-release": true,
	}
	var wrongMode []string
	fs.Visit(func(fl *flag.Flag) {
		if *loadgen && serverOnly[fl.Name] || !*loadgen && loadgenOnly[fl.Name] {
			wrongMode = append(wrongMode, "-"+fl.Name)
		}
	})
	if len(wrongMode) > 0 {
		mode := "server"
		if *loadgen {
			mode = "loadgen"
		}
		return fmt.Errorf("%s: not %s-mode flags", strings.Join(wrongMode, ", "), mode)
	}

	if *loadgen {
		return runLoadgen(loadgenConfig{
			Target:      *target,
			Rate:        *rate,
			Duration:    *duration,
			Concurrency: *workers,
			Seed:        *seed,
			Release:     !*noRel,
		}, stdout)
	}

	proto, err := shared.BuildPlatform()
	if err != nil {
		return err
	}
	shardOpts, err := shared.StrategyOptions()
	if err != nil {
		return err
	}
	clusterOpts, err := cluster.Options()
	if err != nil {
		return err
	}
	clusterOpts = append(clusterOpts,
		kairos.WithClusterSeed(*seed),
		kairos.WithShardOptions(shardOpts...),
	)
	if *ckpEvery != 0 && *dataDir == "" {
		return errors.New("-checkpoint-every needs -data-dir")
	}
	if *ckpEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be positive, got %v", *ckpEvery)
	}
	factory := func(int) *kairos.Platform { return proto.Clone() }
	var (
		c      *kairos.Cluster
		walLog *kairos.WAL
	)
	if *dataDir != "" {
		c, walLog, err = kairos.RecoverCluster(*dataDir, cluster.Shards, factory, clusterOpts...)
		if err != nil {
			return err
		}
		defer walLog.Close()
		if live := c.Stats().Total.Live; live > 0 {
			fmt.Fprintf(stdout, "kairosd: recovered %d admission(s) from %s\n", live, *dataDir)
		}
	} else {
		c, err = kairos.NewCluster(cluster.Shards, factory, clusterOpts...)
		if err != nil {
			return err
		}
	}

	// The rebalancer config is validated up front even when the policy
	// is off, so a typo'd -rebalance fails the boot, not the first tick.
	reb, err := rebalance.New(c, rebalance.Config{
		Policy:   cluster.Rebalance,
		Interval: cluster.RebalanceEvery,
		Budget:   cluster.RebalanceBudget,
	})
	if err != nil {
		return err
	}

	srv := &server{cluster: c, wal: walLog, placement: cluster.Placement, proto: proto, started: time.Now()}
	if *qQueue > 0 {
		slots := *qSlots
		if slots <= 0 {
			slots = 2 * cluster.Shards
		}
		srv.gate = newQosGate(slots, *qQueue, *shedLoad, srv.meanLoad)
	}
	httpSrv := &http.Server{
		Handler:           srv.newMux(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "kairosd: serving %d×%v shard(s), placement %s, on http://%s\n",
		cluster.Shards, proto, cluster.Placement, ln.Addr())

	// Serve until SIGINT/SIGTERM, then drain in-flight requests. SSE
	// streams hold their connections open, so Shutdown's graceful wait
	// is bounded and stragglers are closed hard at the deadline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	go reb.Run(ctx) // returns immediately when the policy is off
	if walLog != nil && *ckpEvery > 0 {
		ticker := time.NewTicker(*ckpEvery)
		defer ticker.Stop()
		go func() {
			for {
				select {
				case <-ticker.C:
					if err := kairos.CheckpointCluster(walLog, c); err != nil {
						fmt.Fprintln(stdout, "kairosd: checkpoint failed:", err)
					}
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "kairosd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	<-serveErr // Serve has returned http.ErrServerClosed by now
	// Checkpoint the quiesced cluster so the next boot loads one
	// snapshot instead of replaying the whole log; the deferred Close
	// then rotates the log down cleanly.
	if walLog != nil {
		if err := kairos.CheckpointCluster(walLog, c); err != nil {
			fmt.Fprintln(stdout, "kairosd: shutdown checkpoint failed:", err)
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "kairosd:", err)
		os.Exit(1)
	}
}
