// Command kairosd serves a kairos.Cluster — N independent platform
// shards behind one admission manager — over HTTP/JSON: the
// long-running resource server the ROADMAP's scale-out goal asks for,
// built from the paper's single-MPSoC run-time manager.
//
//	POST   /v1/admit     admit one application (JSON task graph)
//	POST   /v1/admitall  admit a batch, largest-first
//	DELETE /v1/apps/{id} release a cluster instance (URL-escaped)
//	POST   /v1/readmit   restart one instance, or sweep fault-affected ones
//	GET    /v1/stats     per-shard and aggregate counters
//	GET    /v1/events    merged shard-tagged event stream (SSE)
//	GET    /healthz      liveness probe
//
// The same binary is its own load generator: -loadgen replays
// applications drawn from the six synthetic profiles of the paper's
// evaluation against a running server and reports throughput and
// latency percentiles.
//
// Usage:
//
//	kairosd -addr :8080 -shards 16 -placement power-of-two
//	kairosd -platform mesh6x6 -shards 4 -spill 2
//	kairosd -loadgen -target http://127.0.0.1:8080 -rate 50 -duration 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/kairos"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("kairosd", flag.ContinueOnError)
	shared := kairos.RegisterFlags(fs)
	cluster := kairos.RegisterClusterFlags(fs)
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		seed     = fs.Int64("seed", 1, "cluster placement seed")
		loadgen  = fs.Bool("loadgen", false, "run as a load generator client instead of a server")
		target   = fs.String("target", "http://127.0.0.1:8080", "loadgen: server base URL")
		rate     = fs.Float64("rate", 50, "loadgen: offered admissions per second (0 = closed loop)")
		duration = fs.Duration("duration", 10*time.Second, "loadgen: run length")
		workers  = fs.Int("concurrency", 8, "loadgen: concurrent in-flight requests")
		noRel    = fs.Bool("no-release", false, "loadgen: leave admitted applications running (fill-up mode)")
	)
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The two modes have disjoint vocabularies; a flag for the other
	// mode is a mistake (e.g. `-loadgen -shards 16` parameterizes
	// nothing — the loadgen hits whatever server is running). Reject it
	// instead of silently running a different experiment.
	serverOnly := map[string]bool{
		"addr": true, "shards": true, "placement": true, "spill": true,
		"platform": true, "weights": true,
		"binder": true, "mapper": true, "router": true, "validator": true,
	}
	loadgenOnly := map[string]bool{
		"target": true, "rate": true, "duration": true,
		"concurrency": true, "no-release": true,
	}
	var wrongMode []string
	fs.Visit(func(fl *flag.Flag) {
		if *loadgen && serverOnly[fl.Name] || !*loadgen && loadgenOnly[fl.Name] {
			wrongMode = append(wrongMode, "-"+fl.Name)
		}
	})
	if len(wrongMode) > 0 {
		mode := "server"
		if *loadgen {
			mode = "loadgen"
		}
		return fmt.Errorf("%s: not %s-mode flags", strings.Join(wrongMode, ", "), mode)
	}

	if *loadgen {
		return runLoadgen(loadgenConfig{
			Target:      *target,
			Rate:        *rate,
			Duration:    *duration,
			Concurrency: *workers,
			Seed:        *seed,
			Release:     !*noRel,
		}, stdout)
	}

	proto, err := shared.BuildPlatform()
	if err != nil {
		return err
	}
	shardOpts, err := shared.StrategyOptions()
	if err != nil {
		return err
	}
	clusterOpts, err := cluster.Options()
	if err != nil {
		return err
	}
	clusterOpts = append(clusterOpts,
		kairos.WithClusterSeed(*seed),
		kairos.WithShardOptions(shardOpts...),
	)
	c, err := kairos.NewCluster(cluster.Shards, func(int) *kairos.Platform { return proto.Clone() }, clusterOpts...)
	if err != nil {
		return err
	}

	srv := &server{cluster: c, placement: cluster.Placement, started: time.Now()}
	httpSrv := &http.Server{
		Handler:           srv.newMux(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "kairosd: serving %d×%v shard(s), placement %s, on http://%s\n",
		cluster.Shards, proto, cluster.Placement, ln.Addr())

	// Serve until SIGINT/SIGTERM, then drain in-flight requests. SSE
	// streams hold their connections open, so Shutdown's graceful wait
	// is bounded and stragglers are closed hard at the deadline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "kairosd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
	}
	<-serveErr // Serve has returned http.ErrServerClosed by now
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, "kairosd:", err)
		os.Exit(1)
	}
}
