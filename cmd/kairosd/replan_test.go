package main

import (
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/internal/replan"
	"repro/kairos"
)

func postReplan(t *testing.T, url, body string) (*http.Response, replanResponse, errorBody) {
	t.Helper()
	resp, err := http.Post(url+"/v1/replan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok replanResponse
	var bad errorBody
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&ok); err != nil {
			t.Fatalf("bad replan response: %v", err)
		}
	} else if err := dec.Decode(&bad); err != nil {
		t.Fatalf("bad error body: %v", err)
	}
	return resp, ok, bad
}

func TestReplanWithoutReplannerConflicts(t *testing.T) {
	ts, _ := testServer(t, 2)
	resp, _, bad := postReplan(t, ts.URL, "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409 on a server without -replan", resp.StatusCode)
	}
	if !strings.Contains(bad.Error, "-replan") {
		t.Errorf("error %q does not point at the missing -replan flag", bad.Error)
	}
}

func TestReplanEndpoint(t *testing.T) {
	ts, s := testServer(t, 2, kairos.WithShardOptions(
		kairos.WithReplanner(replan.LNS{Seed: 1}),
	))

	// Fill both shards, then release half the residents so the pass
	// has fragmentation to chew on.
	var admitted []string
	for i := 0; i < 6; i++ {
		app := quickstartWire()
		app.Name = "fill"
		app.Tasks[0].FixedElement = nil
		resp := postJSON(t, ts.URL+"/v1/admit", app)
		if resp.StatusCode == http.StatusOK {
			admitted = append(admitted, decodeBody[admitResponse](t, resp).Instance)
		} else {
			resp.Body.Close()
		}
	}
	if len(admitted) < 2 {
		t.Fatalf("only %d fill admissions landed", len(admitted))
	}
	for i := 0; i < len(admitted); i += 2 {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/apps/"+url.PathEscape(admitted[i]), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil || resp.StatusCode != http.StatusNoContent {
			t.Fatalf("release %s: %v / %v", admitted[i], err, resp.Status)
		}
		resp.Body.Close()
	}

	resp, ok, _ := postReplan(t, ts.URL, `{"budget": 32}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if len(ok.Shards) != 2 {
		t.Fatalf("response covers %d shards, want 2", len(ok.Shards))
	}
	if ok.DurationMS < 0 {
		t.Errorf("durationMs = %v, want >= 0", ok.DurationMS)
	}
	moves := 0
	for _, sh := range ok.Shards {
		moves += len(sh.Moves)
		if sh.CostAfter > sh.CostBefore {
			t.Errorf("shard %d: pass worsened the composite: %v -> %v", sh.Shard, sh.CostBefore, sh.CostAfter)
		}
	}
	if moves != ok.Moves {
		t.Errorf("aggregate moves %d != per-shard sum %d", ok.Moves, moves)
	}

	// The pass's work shows up in the aggregate stats.
	stats := decodeBody[statsResponse](t, mustGet(t, ts.URL+"/v1/stats"))
	if got := stats.Stats.Total.ReplanMoves; int(got) != ok.Moves {
		t.Errorf("stats ReplanMoves = %d, want %d", got, ok.Moves)
	}

	// A pass in flight serializes later requests with a 409.
	s.replanning.Store(true)
	if resp, _, _ := postReplan(t, ts.URL, ""); resp.StatusCode != http.StatusConflict {
		t.Errorf("concurrent replan status = %d, want 409", resp.StatusCode)
	}
	s.replanning.Store(false)

	// Malformed inputs fail fast.
	if resp, _, _ := postReplan(t, ts.URL, `{"budget": -1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative budget status = %d, want 400", resp.StatusCode)
	}
	if resp, _, _ := postReplan(t, ts.URL, `{broken`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("broken JSON status = %d, want 400", resp.StatusCode)
	}
}
