package main

import (
	"bufio"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// TestLoadgenRecordExcludesTransportErrors pins the percentile purity
// fix: transport errors (connection resets, full client timeouts)
// measure the network or a dead server, not admission latency, so
// record must keep them out of the latency population. Before the fix
// a handful of 30s timeouts dragged p99 from milliseconds to the full
// timeout.
func TestLoadgenRecordExcludesTransportErrors(t *testing.T) {
	c := &loadgenCounters{}
	c.record(http.StatusOK, 5*time.Millisecond, false)
	c.record(http.StatusConflict, 7*time.Millisecond, false)
	c.record(0, 30*time.Second, true)                               // client timeout
	c.record(http.StatusInternalServerError, 29*time.Second, false) // dying server
	c.record(http.StatusOK, 9*time.Millisecond, false)
	c.record(0, 30*time.Second, true)

	if c.requests != 6 || c.admitted != 2 || c.rejected != 1 || c.errors != 3 {
		t.Fatalf("counters = %d req / %d admitted / %d rejected / %d errors, want 6/2/1/3",
			c.requests, c.admitted, c.rejected, c.errors)
	}
	if len(c.latencies) != 3 {
		t.Fatalf("latency population has %d samples, want 3 (errors leaked in)", len(c.latencies))
	}
	for _, l := range c.latencies {
		if l >= time.Second {
			t.Fatalf("error-path latency %v leaked into the percentile population", l)
		}
	}
	ps := experiments.DurationPercentiles(c.latencies, 50, 90, 99)
	if ps[2] >= time.Second {
		t.Fatalf("p99 = %v; transport errors wrecked the percentiles", ps[2])
	}
}

// TestEventsSSEKeepalive shrinks the server's heartbeat interval and
// asserts an idle /v1/events stream still carries periodic keepalive
// comments — the write that lets the server notice half-open
// connections instead of holding their subscriptions forever.
func TestEventsSSEKeepalive(t *testing.T) {
	ts, s := testServer(t, 2)
	s.keepalive = 20 * time.Millisecond

	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// No admissions happen: every byte on the stream is heartbeat.
	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ": keepalive") {
			return
		}
	}
	t.Fatal("stream ended without a keepalive comment")
}

// brokenSSEWriter is a ResponseWriter+Flusher whose writes start
// failing after a budget — a half-open connection as the handler sees
// it once the kernel buffers drain.
type brokenSSEWriter struct {
	mu     sync.Mutex
	header http.Header
	budget int
}

func (w *brokenSSEWriter) Header() http.Header {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.header == nil {
		w.header = http.Header{}
	}
	return w.header
}

func (w *brokenSSEWriter) WriteHeader(int) {}

func (w *brokenSSEWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.budget <= 0 {
		return 0, errors.New("write: broken pipe")
	}
	w.budget--
	return len(p), nil
}

func (w *brokenSSEWriter) Flush() {}

// TestEventsSSEWriteErrorTerminates drives handleEvents against a
// connection whose writes fail, once through the event path and once
// through the keepalive path. Both must make the handler return (and
// so release its subscription); before the fix the event loop ignored
// write errors and spun on a dead connection until process exit.
func TestEventsSSEWriteErrorTerminates(t *testing.T) {
	run := func(t *testing.T, s *server, kick func()) {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/v1/events", nil)
		req = req.WithContext(context.Background()) // never cancelled: only the write error can end the loop
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.handleEvents(&brokenSSEWriter{}, req)
		}()
		kick()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("handleEvents kept serving a connection whose writes fail")
		}
	}

	t.Run("event-write", func(t *testing.T) {
		ts, s := testServer(t, 1)
		run(t, s, func() {
			// An admission publishes an event; writing it fails.
			resp := postJSON(t, ts.URL+"/v1/admit", quickstartWire())
			resp.Body.Close()
		})
	})
	t.Run("keepalive-write", func(t *testing.T) {
		_, s := testServer(t, 1)
		s.keepalive = 20 * time.Millisecond
		run(t, s, func() {}) // idle stream: the heartbeat write fails
	})
}
