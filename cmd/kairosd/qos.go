package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// QoS admission control: requests carry an optional "qos" class, and
// the server runs them through a bounded priority queue in front of
// the cluster. When all slots are busy, waiters queue per class and a
// freed slot goes to the highest class first; when the queue is full
// the request gets an immediate 429 instead of a connection pile-up;
// and when the server is over its load watermarks, low-priority
// requests are shed with a 503 before they consume queue space the
// paying classes need.

// qosClass orders the wire "qos" values; higher is served first.
type qosClass int

const (
	qosLow qosClass = iota
	qosNormal
	qosHigh
	qosClasses // count, not a class
)

// parseQoS maps the wire field; absent means normal.
func parseQoS(s string) (qosClass, error) {
	switch s {
	case "", "normal":
		return qosNormal, nil
	case "low":
		return qosLow, nil
	case "high":
		return qosHigh, nil
	}
	return 0, fmt.Errorf("unknown qos %q (low, normal, high)", s)
}

func (q qosClass) String() string {
	switch q {
	case qosLow:
		return "low"
	case qosHigh:
		return "high"
	default:
		return "normal"
	}
}

var (
	// errQueueFull refuses work the queue has no room for (429).
	errQueueFull = errors.New("admission queue full")
	// errShed refuses low-priority work on an overloaded server (503).
	errShed = errors.New("low-priority admission shed: server over load watermark")
)

// qosWaiter is one queued acquire. The granted flag is written under
// the gate mutex, so a grant racing the waiter's cancellation is
// detected and the slot handed back instead of leaked.
type qosWaiter struct {
	ch      chan struct{}
	granted bool
}

// qosGate is the bounded priority admission queue.
type qosGate struct {
	slots    int            // concurrent admissions before queueing
	maxQueue int            // waiter ceiling; beyond it, 429
	shedLoad float64        // mean used-share watermark for shedding
	load     func() float64 // samples the cluster's mean used share

	mu       sync.Mutex
	inflight int
	queued   int
	waiters  [qosClasses][]*qosWaiter // FIFO per class
}

func newQosGate(slots, maxQueue int, shedLoad float64, load func() float64) *qosGate {
	return &qosGate{slots: slots, maxQueue: maxQueue, shedLoad: shedLoad, load: load}
}

// acquire blocks until the caller may run one admission (pair with
// release) or refuses fast: errQueueFull when the queue is at its
// ceiling, errShed for low-priority work once the queue is half full
// or the cluster is over the load watermark, the context error if the
// client gives up while queued.
func (g *qosGate) acquire(ctx context.Context, class qosClass) error {
	g.mu.Lock()
	if class == qosLow {
		if g.queued >= (g.maxQueue+1)/2 || (g.load != nil && g.load() > g.shedLoad) {
			g.mu.Unlock()
			return errShed
		}
	}
	if g.inflight < g.slots {
		g.inflight++
		g.mu.Unlock()
		return nil
	}
	if g.queued >= g.maxQueue {
		g.mu.Unlock()
		return errQueueFull
	}
	w := &qosWaiter{ch: make(chan struct{})}
	g.waiters[class] = append(g.waiters[class], w)
	g.queued++
	g.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the slot was already
			// transferred to this waiter. Pass it on.
			g.releaseLocked()
		} else {
			q := g.waiters[class]
			for i, other := range q {
				if other == w {
					g.waiters[class] = append(q[:i], q[i+1:]...)
					break
				}
			}
			g.queued--
		}
		g.mu.Unlock()
		return ctx.Err()
	}
}

// release frees the caller's slot, handing it to the highest-class
// waiter if any is queued.
func (g *qosGate) release() {
	g.mu.Lock()
	g.releaseLocked()
	g.mu.Unlock()
}

func (g *qosGate) releaseLocked() {
	for class := qosHigh; class >= qosLow; class-- {
		q := g.waiters[class]
		if len(q) == 0 {
			continue
		}
		w := q[0]
		g.waiters[class] = q[1:]
		g.queued--
		w.granted = true
		close(w.ch) // slot transfers to the waiter; inflight unchanged
		return
	}
	g.inflight--
}

// depth reports the current queue depth (stats endpoint).
func (g *qosGate) depth() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queued
}
