package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/appgen"
	"repro/kairos"
)

// testServer builds a small cluster and its HTTP face.
func testServer(t *testing.T, shards int, opts ...kairos.ClusterOption) (*httptest.Server, *server) {
	t.Helper()
	opts = append([]kairos.ClusterOption{
		kairos.WithShardOptions(kairos.WithAdvisoryValidation(), kairos.WithWeights(kairos.WeightsBoth)),
	}, opts...)
	c, err := kairos.NewCluster(shards,
		func(int) *kairos.Platform { return kairos.MeshWithIO(4, 4, kairos.DefaultVCs) }, opts...)
	if err != nil {
		t.Fatal(err)
	}
	s := &server{cluster: c, placement: "least-loaded", started: time.Now()}
	ts := httptest.NewServer(s.newMux())
	t.Cleanup(ts.Close)
	return ts, s
}

// quickstartWire is the three-stage quickstart application in wire
// form (also the payload of the CI end-to-end smoke).
func quickstartWire() *wireApp {
	fixed := 16
	return &wireApp{
		Name: "quickstart",
		Tasks: []wireTask{
			{Name: "source", Kind: "input", FixedElement: &fixed, Implementations: []wireImpl{
				{Name: "stream-in", Target: "io", Compute: 5, Memory: 4, IO: 1, Cost: 1, ExecTime: 4},
			}},
			{Name: "transform", Implementations: []wireImpl{
				{Name: "fir-accurate", Target: "dsp", Compute: 80, Memory: 32, Cost: 6, ExecTime: 10},
				{Name: "fir-fast", Target: "dsp", Compute: 50, Memory: 16, Cost: 3, ExecTime: 6},
			}},
			{Name: "sink", Kind: "output", Implementations: []wireImpl{
				{Name: "stream-out", Target: "dsp", Compute: 20, Memory: 8, Cost: 1, ExecTime: 3},
			}},
		},
		Channels: []wireChannel{
			{Src: 0, Dst: 1, Produce: 1, Consume: 1, TokenSize: 4},
			{Src: 1, Dst: 2, Produce: 1, Consume: 1, TokenSize: 2},
		},
		Constraints: wireConstraints{MinThroughput: 50},
	}
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(mustJSON(v)))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// TestAdmitStatsReleaseOverHTTP is the in-process version of the CI
// smoke: admit the quickstart app, see it in stats, release it, see it
// gone.
func TestAdmitStatsReleaseOverHTTP(t *testing.T) {
	ts, _ := testServer(t, 2)

	resp := postJSON(t, ts.URL+"/v1/admit", quickstartWire())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admit status = %d", resp.StatusCode)
	}
	adm := decodeBody[admitResponse](t, resp)
	if adm.Instance == "" || !strings.HasPrefix(adm.Instance, fmt.Sprintf("s%d:", adm.Shard)) {
		t.Fatalf("bad instance %q for shard %d", adm.Instance, adm.Shard)
	}
	if len(adm.Layout) != 3 || adm.Times.Total <= 0 {
		t.Errorf("layout %v times %+v incomplete", adm.Layout, adm.Times)
	}

	stats := decodeBody[statsResponse](t, mustGet(t, ts.URL+"/v1/stats"))
	if stats.Stats.Total.Live != 1 || stats.Shards != 2 {
		t.Errorf("stats live=%d shards=%d, want 1/2", stats.Stats.Total.Live, stats.Shards)
	}

	req, _ := http.NewRequest(http.MethodDelete,
		ts.URL+"/v1/apps/"+url.PathEscape(adm.Instance), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("release status = %d", dresp.StatusCode)
	}

	stats = decodeBody[statsResponse](t, mustGet(t, ts.URL+"/v1/stats"))
	if stats.Stats.Total.Live != 0 || stats.Stats.Total.Released != 1 {
		t.Errorf("after release: live=%d released=%d", stats.Stats.Total.Live, stats.Stats.Total.Released)
	}

	// Releasing again is a 404; garbage names too.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/apps/"+url.PathEscape(adm.Instance), nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("double release status = %d, want 404", dresp.StatusCode)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAdmitRejectionAndBadRequests(t *testing.T) {
	ts, _ := testServer(t, 1)

	// An application no shard can host: mapping has nowhere to put a
	// task demanding more compute than any element offers.
	impossible := &wireApp{
		Name: "impossible",
		Tasks: []wireTask{{Name: "t", Implementations: []wireImpl{
			{Name: "huge", Target: "dsp", Compute: 1 << 40, ExecTime: 1},
		}}},
	}
	resp := postJSON(t, ts.URL+"/v1/admit", impossible)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("impossible admit status = %d, want 409", resp.StatusCode)
	}
	body := decodeBody[errorBody](t, resp)
	if body.Phase == "" || body.Error == "" {
		t.Errorf("rejection body %+v lacks phase attribution", body)
	}

	for _, tc := range []struct {
		name string
		body string
	}{
		{"syntax", `{"name": `},
		{"no-name", `{"tasks":[{"name":"t","implementations":[{"name":"i","target":"dsp"}]}]}`},
		{"bad-kind", `{"name":"x","tasks":[{"name":"t","kind":"sideways","implementations":[{"name":"i","target":"dsp"}]}]}`},
		{"bad-channel", `{"name":"x","tasks":[{"name":"t","implementations":[{"name":"i","target":"dsp"}]}],"channels":[{"src":0,"dst":9}]}`},
		{"no-impls", `{"name":"x","tasks":[{"name":"t"}]}`},
	} {
		resp, err := http.Post(ts.URL+"/v1/admit", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestAdmitAllAndReadmitOverHTTP(t *testing.T) {
	ts, _ := testServer(t, 2)

	batch := admitAllRequest{Apps: []wireApp{*quickstartWire(), *quickstartWire()}}
	resp := postJSON(t, ts.URL+"/v1/admitall", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admitall status = %d", resp.StatusCode)
	}
	out := decodeBody[struct {
		Results []admitAllEntry `json:"results"`
	}](t, resp)
	if len(out.Results) != 2 {
		t.Fatalf("got %d results", len(out.Results))
	}
	var first string
	for i, r := range out.Results {
		if r.Admission == nil {
			t.Fatalf("batch entry %d rejected: %s", i, r.Error)
		}
		if i == 0 {
			first = r.Admission.Instance
		}
	}

	// Restart the first admission in place.
	resp = postJSON(t, ts.URL+"/v1/readmit", readmitRequest{Instance: first})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readmit status = %d", resp.StatusCode)
	}
	re := decodeBody[admitResponse](t, resp)
	if re.Instance == first {
		t.Errorf("readmit kept instance name %q", first)
	}

	// Unknown instance and malformed request shapes.
	resp = postJSON(t, ts.URL+"/v1/readmit", readmitRequest{Instance: "s0:nope#9"})
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("readmit unknown = %d, want 404", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/readmit", readmitRequest{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty readmit = %d, want 400", resp.StatusCode)
	}

	// The affected sweep with nothing disabled is an empty result set.
	resp = postJSON(t, ts.URL+"/v1/readmit", readmitRequest{Affected: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("affected sweep status = %d", resp.StatusCode)
	}
	sweep := decodeBody[struct {
		Results []readmitEntry `json:"results"`
	}](t, resp)
	if len(sweep.Results) != 0 {
		t.Errorf("sweep with healthy hardware returned %v", sweep.Results)
	}
}

// TestReadmitAffectedSweepOverHTTP: a fault makes the sweep return
// cluster-scoped instance names that the DELETE endpoint accepts —
// what the API shows must be releasable.
func TestReadmitAffectedSweepOverHTTP(t *testing.T) {
	ts, srv := testServer(t, 2)

	adm := decodeBody[admitResponse](t, postJSON(t, ts.URL+"/v1/admit", quickstartWire()))
	local := strings.TrimPrefix(adm.Instance, fmt.Sprintf("s%d:", adm.Shard))
	shard := srv.cluster.Shard(adm.Shard)
	inner := shard.Admitted()[local]
	if inner == nil {
		t.Fatalf("admission %q not found on shard %d", local, adm.Shard)
	}
	p := shard.Platform()
	faulted := inner.Assignment[1] // the transform task's DSP
	p.DisableElement(faulted)
	defer p.EnableElement(faulted)

	resp := postJSON(t, ts.URL+"/v1/readmit", readmitRequest{Affected: true})
	sweep := decodeBody[struct {
		Results []readmitEntry `json:"results"`
	}](t, resp)
	if len(sweep.Results) != 1 {
		t.Fatalf("sweep returned %d results, want 1", len(sweep.Results))
	}
	entry := sweep.Results[0]
	prefix := fmt.Sprintf("s%d:", adm.Shard)
	if !strings.HasPrefix(entry.Instance, prefix) || !strings.HasPrefix(entry.NewInstance, prefix) {
		t.Fatalf("sweep names %q/%q are not cluster-scoped", entry.Instance, entry.NewInstance)
	}
	if entry.Outcome == "evicted" {
		t.Fatalf("sweep evicted the app: %s", entry.Error)
	}

	req, _ := http.NewRequest(http.MethodDelete,
		ts.URL+"/v1/apps/"+url.PathEscape(entry.NewInstance), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE of sweep-reported name %q = %d, want 204", entry.NewInstance, dresp.StatusCode)
	}
}

// TestEventsSSE subscribes to the merged stream and sees a shard-
// tagged admitted event with a cluster-scoped instance name.
func TestEventsSSE(t *testing.T) {
	ts, _ := testServer(t, 2)

	resp, err := http.Get(ts.URL + "/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}

	admResp := postJSON(t, ts.URL+"/v1/admit", quickstartWire())
	adm := decodeBody[admitResponse](t, admResp)

	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	var ev eventJSON
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			break
		}
	}
	if ev.Type != "admitted" || ev.Instance != adm.Instance || ev.Shard != adm.Shard {
		t.Errorf("SSE event %+v, want admitted %s on shard %d", ev, adm.Instance, adm.Shard)
	}
}

// TestLoadgenAgainstServer runs the loadgen client against the
// in-process server: closed loop, a short burst, no transport errors.
func TestLoadgenAgainstServer(t *testing.T) {
	ts, _ := testServer(t, 4)
	var out bytes.Buffer
	err := runLoadgen(loadgenConfig{
		Target:      ts.URL,
		Rate:        200,
		Duration:    500 * time.Millisecond,
		Concurrency: 4,
		Seed:        1,
		Release:     true,
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "admit latency p50") {
		t.Errorf("report lacks latency line:\n%s", out.String())
	}
	stats, _ := http.Get(ts.URL + "/v1/stats")
	sr := decodeBody[statsResponse](t, stats)
	if sr.Stats.Total.Attempts == 0 {
		t.Error("server saw no admission attempts from the loadgen")
	}
	if sr.Stats.Total.Live != 0 {
		t.Errorf("loadgen left %d applications running in release mode", sr.Stats.Total.Live)
	}
}

func TestLoadgenBadTarget(t *testing.T) {
	if err := runLoadgen(loadgenConfig{Target: "::bad::", Duration: time.Second}, io.Discard); err == nil {
		t.Error("loadgen accepted a garbage target")
	}
}

// TestAppJSONRoundTrip: generator-drawn applications survive the wire
// format exactly (the loadgen depends on this).
func TestAppJSONRoundTrip(t *testing.T) {
	for _, prof := range []appgen.Profile{appgen.Communication, appgen.Computation} {
		g := appgen.New(appgen.NewConfig(prof, appgen.Medium), 7)
		for i := 0; i < 5; i++ {
			app := g.Next()
			decoded, err := decodeApp(encodeApp(app))
			if err != nil {
				t.Fatalf("%s app %d: %v", prof, i, err)
			}
			if decoded.Name != app.Name || len(decoded.Tasks) != len(app.Tasks) ||
				len(decoded.Channels) != len(app.Channels) {
				t.Fatalf("%s app %d: shape changed in round trip", prof, i)
			}
			for ti, task := range app.Tasks {
				d := decoded.Tasks[ti]
				if d.Name != task.Name || d.Kind != task.Kind || d.FixedElement != task.FixedElement ||
					!reflect.DeepEqual(d.Implementations, task.Implementations) {
					t.Fatalf("%s app %d task %d differs", prof, i, ti)
				}
			}
			for ci, ch := range app.Channels {
				d := decoded.Channels[ci]
				if d.Src != ch.Src || d.Dst != ch.Dst || d.Produce != ch.Produce ||
					d.Consume != ch.Consume || d.TokenSize != ch.TokenSize || d.Initial != ch.Initial {
					t.Fatalf("%s app %d channel %d differs", prof, i, ci)
				}
			}
			if decoded.Constraints != app.Constraints {
				t.Fatalf("%s app %d constraints differ", prof, i)
			}
		}
	}
}

// syncBuffer is a goroutine-safe run() output sink the test can poll.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon boots run() with the given extra flags on an ephemeral
// port and returns the base URL, the output sink, and a stop function
// that delivers SIGTERM and waits for a clean exit.
func startDaemon(t *testing.T, extra ...string) (string, *syncBuffer, func()) {
	t.Helper()
	out := &syncBuffer{}
	args := append([]string{"-addr", "127.0.0.1:0", "-platform", "mesh4x4", "-shards", "2"}, extra...)
	done := make(chan error, 1)
	go func() { done <- run(args, out) }()

	deadline := time.After(15 * time.Second)
	var base string
	for base == "" {
		if i := strings.Index(out.String(), "on http://"); i >= 0 {
			line := out.String()[i+len("on "):]
			base = strings.TrimSpace(strings.SplitN(line, "\n", 2)[0])
			break
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before listening: %v\n%s", err, out.String())
		case <-deadline:
			t.Fatalf("daemon never started:\n%s", out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	return base, out, func() {
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatalf("sending SIGTERM: %v", err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("daemon exit after SIGTERM: %v\n%s", err, out.String())
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("daemon did not exit after SIGTERM:\n%s", out.String())
		}
	}
}

func liveCount(t *testing.T, base string) int {
	t.Helper()
	stats := decodeBody[statsResponse](t, mustGet(t, base+"/v1/stats"))
	return stats.Stats.Total.Live
}

// TestRestartRecoversAdmissionsOverHTTP is the end-to-end durability
// test: admit over HTTP, SIGTERM the daemon, restart it on the same
// -data-dir, and the pre-restart admission is still there — visible in
// /v1/stats and releasable by its old name.
func TestRestartRecoversAdmissionsOverHTTP(t *testing.T) {
	dir := t.TempDir()

	base, _, stop := startDaemon(t, "-data-dir", dir)
	admitted := decodeBody[admitResponse](t, postJSON(t, base+"/v1/admit", quickstartWire()))
	if admitted.Instance == "" {
		t.Fatal("no instance admitted")
	}
	scratch := decodeBody[admitResponse](t, postJSON(t, base+"/v1/admit", quickstartWire()))
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/apps/"+url.PathEscape(scratch.Instance), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("pre-restart release status = %d", dresp.StatusCode)
	}
	// The operator checkpoint hook works while serving.
	cresp := postJSON(t, base+"/v1/checkpoint", struct{}{})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status = %d", cresp.StatusCode)
	}
	ck := decodeBody[checkpointResponse](t, cresp)
	if ck.Shards != 2 || ck.NextLSN == 0 {
		t.Fatalf("checkpoint response %+v", ck)
	}
	if got := liveCount(t, base); got != 1 {
		t.Fatalf("pre-restart live = %d, want 1", got)
	}
	stop() // SIGTERM: drain, checkpoint, rotate the log down

	base2, out2, stop2 := startDaemon(t, "-data-dir", dir)
	defer stop2()
	if !strings.Contains(out2.String(), "recovered 1 admission(s)") {
		t.Errorf("restart did not report recovery:\n%s", out2.String())
	}
	if got := liveCount(t, base2); got != 1 {
		t.Fatalf("post-restart live = %d, want 1", got)
	}
	// The pre-restart instance name is still valid.
	req, _ = http.NewRequest(http.MethodDelete, base2+"/v1/apps/"+url.PathEscape(admitted.Instance), nil)
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("release of pre-restart instance %q = %d, want 204", admitted.Instance, dresp.StatusCode)
	}
	if got := liveCount(t, base2); got != 0 {
		t.Fatalf("post-release live = %d, want 0", got)
	}
}

// TestCheckpointOnNonDurableServer: the endpoint refuses politely when
// the server has no log.
func TestCheckpointOnNonDurableServer(t *testing.T) {
	ts, _ := testServer(t, 1)
	resp := postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint status = %d, want 409", resp.StatusCode)
	}
	body := decodeBody[errorBody](t, resp)
	if !strings.Contains(body.Error, "data-dir") {
		t.Errorf("error should mention -data-dir: %q", body.Error)
	}
}

// TestRunFlagErrors: bad flags and specs fail fast.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-placement", "nope"},
		{"-platform", "nope"},
		{"-shards", "-1"},
		{"-binder", "nope"},
		{"-loadgen", "-target", "::bad::"},
		{"-loadgen", "-duration", "0s"},
		// Cross-mode flags are rejected, not silently dropped.
		{"-loadgen", "-shards", "16"},
		{"-loadgen", "-placement", "power-of-two"},
		{"-loadgen", "-data-dir", "/tmp/nope"},
		{"-rate", "10"},
		{"-target", "http://x"},
		// Durability flag dependencies.
		{"-checkpoint-every", "5m"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
