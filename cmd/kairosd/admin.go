package main

import (
	"context"
	"errors"
	"net/http"
	"strconv"

	"repro/kairos"
)

// Elasticity admin endpoints: an operator grows the cluster with
// POST /v1/shards (a new shard cloned from the boot platform), shrinks
// it with DELETE /v1/shards/{i} (drain: the shard stops admitting and
// its residents are rehomed onto the remaining shards), and inspects
// membership with GET /v1/shards. Shard indices are stable across both
// — draining never renumbers, so issued instance names stay valid.

type shardListResponse struct {
	Shards []kairos.ShardInfo `json:"shards"`
}

func (s *server) handleShardList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, shardListResponse{Shards: s.cluster.Shards()})
}

type shardAddResponse struct {
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
}

func (s *server) handleShardAdd(w http.ResponseWriter, r *http.Request) {
	if s.proto == nil {
		writeJSON(w, http.StatusConflict,
			errorBody{Error: "server has no platform prototype to clone for a new shard"})
		return
	}
	shard, err := s.cluster.AddShard(s.proto.Clone())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, shardAddResponse{Shard: shard, Shards: s.cluster.NumShards()})
}

// drainResponse reports a drain, successful or not: the per-instance
// moves and failures are meaningful either way, so they accompany the
// error rather than being discarded by it.
type drainResponse struct {
	Error  string              `json:"error,omitempty"`
	Result *kairos.DrainResult `json:"result,omitempty"`
}

func (s *server) handleShardDrain(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.PathValue("i"))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad shard index: " + err.Error()})
		return
	}
	if i < 0 || i >= s.cluster.NumShards() {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no shard " + strconv.Itoa(i)})
		return
	}
	res, err := s.cluster.DrainShard(r.Context(), i)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, drainResponse{Error: err.Error(), Result: res})
		return
	}
	writeJSON(w, http.StatusOK, drainResponse{Result: res})
}
