package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/kairos"
)

func TestParseQoS(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want qosClass
	}{
		{"", qosNormal}, {"normal", qosNormal}, {"low", qosLow}, {"high", qosHigh},
	} {
		got, err := parseQoS(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseQoS(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := parseQoS("gold"); err == nil {
		t.Error("parseQoS accepted an unknown class")
	}
}

// waitDepth polls the gate until the queue reaches depth n — the only
// way a test can order concurrent enqueues deterministically.
func waitDepth(t *testing.T, g *qosGate, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for g.depth() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (at %d)", n, g.depth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQosGatePriorityOrder: with one busy slot and a waiter of each
// class queued, releases serve high before normal before low — the
// queue is a priority queue, not FIFO across classes.
func TestQosGatePriorityOrder(t *testing.T) {
	g := newQosGate(1, 10, 0.85, nil)
	if err := g.acquire(context.Background(), qosNormal); err != nil {
		t.Fatal(err)
	}
	order := make(chan qosClass, 3)
	// Enqueue in worst-case arrival order: low first, high last.
	for i, class := range []qosClass{qosLow, qosNormal, qosHigh} {
		go func() {
			if err := g.acquire(context.Background(), class); err != nil {
				t.Errorf("%v waiter: %v", class, err)
				return
			}
			order <- class
			g.release()
		}()
		waitDepth(t, g, i+1)
	}
	g.release() // frees the slot; the chain drains the queue
	var got []qosClass
	for i := 0; i < 3; i++ {
		select {
		case c := <-order:
			got = append(got, c)
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d waiters served: %v", i, got)
		}
	}
	if got[0] != qosHigh || got[1] != qosNormal || got[2] != qosLow {
		t.Errorf("service order %v, want [high normal low]", got)
	}
	// Everything released: a fresh acquire is immediate.
	if err := g.acquire(context.Background(), qosLow); err != nil {
		t.Errorf("acquire on an idle gate: %v", err)
	}
}

func TestQosGateQueueFull(t *testing.T) {
	g := newQosGate(1, 1, 0.85, nil)
	if err := g.acquire(context.Background(), qosNormal); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- g.acquire(context.Background(), qosNormal) }()
	waitDepth(t, g, 1)
	if err := g.acquire(context.Background(), qosHigh); !errors.Is(err, errQueueFull) {
		t.Errorf("acquire on a full queue = %v, want errQueueFull", err)
	}
	g.release()
	if err := <-done; err != nil {
		t.Errorf("queued waiter: %v", err)
	}
}

// TestQosGateShedsLow: low-priority work is refused with errShed once
// the cluster load is over the watermark or the queue is half full —
// in both cases before it consumes a slot or queue space.
func TestQosGateShedsLow(t *testing.T) {
	load := 0.5
	g := newQosGate(1, 4, 0.85, func() float64 { return load })

	load = 0.9 // over the watermark: low shed even with a free slot
	if err := g.acquire(context.Background(), qosLow); !errors.Is(err, errShed) {
		t.Errorf("low over watermark = %v, want errShed", err)
	}
	if err := g.acquire(context.Background(), qosNormal); err != nil {
		t.Errorf("normal over watermark = %v, want admitted (shedding is low-only)", err)
	}
	load = 0.5

	// Queue half full ((maxQueue+1)/2 = 2): low shed, normal queues.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go g.acquire(ctx, qosNormal) //nolint:errcheck // released via cancel
		waitDepth(t, g, i+1)
	}
	if err := g.acquire(context.Background(), qosLow); !errors.Is(err, errShed) {
		t.Errorf("low with half-full queue = %v, want errShed", err)
	}
}

func TestQosGateCancelWhileQueued(t *testing.T) {
	g := newQosGate(1, 4, 0.85, nil)
	if err := g.acquire(context.Background(), qosNormal); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.acquire(ctx, qosNormal) }()
	waitDepth(t, g, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter = %v, want context.Canceled", err)
	}
	if d := g.depth(); d != 0 {
		t.Errorf("cancelled waiter left queue depth %d", d)
	}
	g.release()
	if err := g.acquire(context.Background(), qosNormal); err != nil {
		t.Errorf("acquire after cancel+release: %v (slot leaked?)", err)
	}
}

// TestQosGateGrantCancelRace drives the grant-vs-cancel race hard: a
// waiter whose context is cancelled concurrently with the release that
// grants it. Whatever interleaving wins, no slot may leak — after each
// round the gate must hand out a slot immediately.
func TestQosGateGrantCancelRace(t *testing.T) {
	g := newQosGate(1, 4, 0.85, nil)
	for i := 0; i < 200; i++ {
		if err := g.acquire(context.Background(), qosNormal); err != nil {
			t.Fatalf("round %d: slot leaked: %v", i, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			err := g.acquire(ctx, qosNormal)
			if err == nil {
				g.release()
			}
			done <- err
		}()
		waitDepth(t, g, 1)
		go cancel()
		g.release()
		<-done
	}
}

// TestShardAdminOverHTTP: grow, inspect, and drain shards through the
// admin endpoints, with a resident application surviving the drain
// under a new name.
func TestShardAdminOverHTTP(t *testing.T) {
	ts, srv := testServer(t, 2)
	srv.proto = kairos.MeshWithIO(4, 4, kairos.DefaultVCs)

	list := decodeBody[shardListResponse](t, mustGet(t, ts.URL+"/v1/shards"))
	if len(list.Shards) != 2 {
		t.Fatalf("boot membership %d shards, want 2", len(list.Shards))
	}
	for _, si := range list.Shards {
		if si.State != kairos.ShardActive {
			t.Errorf("boot shard %d state %v, want active", si.Shard, si.State)
		}
	}

	resp := postJSON(t, ts.URL+"/v1/shards", struct{}{})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("shard add status = %d, want 201", resp.StatusCode)
	}
	added := decodeBody[shardAddResponse](t, resp)
	if added.Shard != 2 || added.Shards != 3 {
		t.Fatalf("shard add response %+v, want shard 2 of 3", added)
	}

	adm := decodeBody[admitResponse](t, postJSON(t, ts.URL+"/v1/admit", quickstartWire()))
	if adm.Instance == "" {
		t.Fatal("no instance admitted")
	}

	// Drain the resident's shard: 200, one move, no failures, and the
	// application is still live under its new home.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/shards/%d", ts.URL, adm.Shard), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drain status = %d, want 200", dresp.StatusCode)
	}
	drain := decodeBody[drainResponse](t, dresp)
	if drain.Error != "" || drain.Result == nil {
		t.Fatalf("drain response %+v", drain)
	}
	if len(drain.Result.Failed) != 0 || len(drain.Result.Moved) != 1 {
		t.Fatalf("drain moved %d failed %d, want 1/0", len(drain.Result.Moved), len(drain.Result.Failed))
	}
	mv := drain.Result.Moved[0]
	if mv.From != adm.Instance || mv.To == adm.Instance {
		t.Errorf("drain move %+v does not rehome %q", mv, adm.Instance)
	}
	if got := liveCount(t, ts.URL); got != 1 {
		t.Errorf("post-drain live = %d, want 1 (the rehomed app)", got)
	}

	list = decodeBody[shardListResponse](t, mustGet(t, ts.URL+"/v1/shards"))
	if len(list.Shards) != 3 {
		t.Fatalf("membership shrank to %d entries; drain must not renumber", len(list.Shards))
	}
	if st := list.Shards[adm.Shard].State; st != kairos.ShardDrained {
		t.Errorf("drained shard state %v, want drained", st)
	}

	// Bad indices: non-numeric is a 400, out-of-range a 404.
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/shards/abc", http.StatusBadRequest},
		{"/v1/shards/99", http.StatusNotFound},
	} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("DELETE %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestShardAddWithoutPrototype(t *testing.T) {
	ts, _ := testServer(t, 1)
	resp := postJSON(t, ts.URL+"/v1/shards", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("shard add without prototype = %d, want 409", resp.StatusCode)
	}
	body := decodeBody[errorBody](t, resp)
	if !strings.Contains(body.Error, "prototype") {
		t.Errorf("error %q should explain the missing prototype", body.Error)
	}
}

// TestAdmitQoSOverHTTP: the wire qos field reaches the gate — bad
// values are 400s, shed low-priority admits are 503s with Retry-After,
// high-priority admits pass, and the stats report the queue depth.
func TestAdmitQoSOverHTTP(t *testing.T) {
	ts, srv := testServer(t, 2)
	srv.gate = newQosGate(2, 4, 0.85, func() float64 { return 0.99 })

	bad := quickstartWire()
	bad.QoS = "gold"
	resp := postJSON(t, ts.URL+"/v1/admit", bad)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad qos = %d, want 400", resp.StatusCode)
	}

	low := quickstartWire()
	low.QoS = "low"
	resp = postJSON(t, ts.URL+"/v1/admit", low)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("shed low admit = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response lacks Retry-After")
	}
	resp.Body.Close()

	// A batch inherits the highest class of its members: one high app
	// lifts the whole batch over the shedding.
	lowApp, highApp := *quickstartWire(), *quickstartWire()
	lowApp.QoS, highApp.QoS = "low", "high"
	resp = postJSON(t, ts.URL+"/v1/admitall", admitAllRequest{Apps: []wireApp{lowApp, highApp}})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("high-carrying batch = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// An all-low batch sheds as a whole.
	resp = postJSON(t, ts.URL+"/v1/admitall", admitAllRequest{Apps: []wireApp{lowApp}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("all-low batch = %d, want 503", resp.StatusCode)
	}

	high := quickstartWire()
	high.QoS = "high"
	resp = postJSON(t, ts.URL+"/v1/admit", high)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("high admit under load = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	stats := decodeBody[statsResponse](t, mustGet(t, ts.URL+"/v1/stats"))
	if stats.QueueDepth == nil {
		t.Error("stats lack queueDepth with the gate enabled")
	} else if *stats.QueueDepth != 0 {
		t.Errorf("idle queue depth = %d, want 0", *stats.QueueDepth)
	}
}
