package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/kairos"
)

// server is the HTTP face of one kairos.Cluster.
type server struct {
	cluster   *kairos.Cluster
	placement string
	started   time.Time
	// wal is the durable admission log (-data-dir); nil when the
	// server is not durable.
	wal *kairos.WAL
	// proto is the boot platform prototype; POST /v1/shards clones it
	// for new shards. nil disables shard adding.
	proto *kairos.Platform
	// gate is the QoS admission queue (qos.go); nil disables gating.
	gate *qosGate
	// keepalive overrides the SSE heartbeat interval (tests shrink
	// it); zero means sseKeepalive.
	keepalive time.Duration
	// replanning serializes POST /v1/replan: a pass sweeps every
	// shard's lock in turn, so concurrent passes would only contend —
	// the second request gets a fast 409 instead.
	replanning atomic.Bool
}

// sseKeepalive is how often an idle /v1/events stream emits a
// ": keepalive" comment, so half-open connections are detected by the
// failing write instead of holding their cluster subscription (and
// forwarder goroutines) forever.
const sseKeepalive = 15 * time.Second

// newMux wires the /v1 API onto a fresh ServeMux.
func (s *server) newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/admit", s.handleAdmit)
	mux.HandleFunc("POST /v1/admitall", s.handleAdmitAll)
	mux.HandleFunc("DELETE /v1/apps/{id}", s.handleRelease)
	mux.HandleFunc("POST /v1/readmit", s.handleReadmit)
	mux.HandleFunc("POST /v1/replan", s.handleReplan)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/events", s.handleEvents)
	mux.HandleFunc("GET /v1/shards", s.handleShardList)
	mux.HandleFunc("POST /v1/shards", s.handleShardAdd)
	mux.HandleFunc("DELETE /v1/shards/{i}", s.handleShardDrain)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// meanLoad samples the mean used share over the active shards — the
// QoS gate's load signal for shedding.
func (s *server) meanLoad() float64 {
	var sum float64
	n := 0
	for _, si := range s.cluster.Shards() {
		if si.State != kairos.ShardActive {
			continue
		}
		sum += si.Load.UsedShare
		n++
	}
	if n == 0 {
		return 1 // nothing admittable: as overloaded as it gets
	}
	return sum / float64(n)
}

// admitGate runs the QoS gate for one admission-carrying request and
// writes the refusal if the request may not proceed. The caller must
// call the returned release exactly once iff ok.
func (s *server) admitGate(w http.ResponseWriter, r *http.Request, class qosClass) (release func(), ok bool) {
	if s.gate == nil {
		return func() {}, true
	}
	switch err := s.gate.acquire(r.Context(), class); {
	case err == nil:
		return s.gate.release, true
	case errors.Is(err, errQueueFull):
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
	case errors.Is(err, errShed):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default: // client gave up while queued
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	}
	return nil, false
}

// Request-body ceilings: a single task graph is kilobytes, a batch at
// most a few thousand of them. Anything larger is a mistake or abuse
// and must not be buffered by a long-running daemon.
const (
	maxBodyBytes      = 1 << 20  // admit, readmit
	maxBatchBodyBytes = 16 << 20 // admitall
)

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error string `json:"error"`
	// Phase attributes an admission rejection to a workflow phase.
	Phase string `json:"phase,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(mustJSON(v), '\n'))
}

// writeAdmissionError maps an admission error onto a status: 409 for
// workflow rejections (the request was well-formed; the cluster is
// full or the app unroutable), 503 for cancellations.
func writeAdmissionError(w http.ResponseWriter, err error) {
	body := errorBody{Error: err.Error()}
	status := http.StatusConflict
	var pe *kairos.PhaseError
	if errors.As(err, &pe) {
		body.Phase = pe.Phase.String()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// placedTask is one row of an admission response's layout.
type placedTask struct {
	Task           string `json:"task"`
	Implementation string `json:"implementation"`
	Element        string `json:"element"`
}

// admitResponse describes one successful admission.
type admitResponse struct {
	Instance string       `json:"instance"`
	Shard    int          `json:"shard"`
	Attempts int          `json:"attempts"`
	App      string       `json:"app"`
	Layout   []placedTask `json:"layout"`
	Routes   int          `json:"routes"`
	Hops     int          `json:"hops"`
	// Phase times in nanoseconds.
	Times struct {
		Binding    int64 `json:"binding"`
		Mapping    int64 `json:"mapping"`
		Routing    int64 `json:"routing"`
		Validation int64 `json:"validation"`
		Total      int64 `json:"total"`
	} `json:"times"`
}

func (s *server) admitResponse(adm *kairos.ClusterAdmission) *admitResponse {
	resp := &admitResponse{
		Instance: adm.Instance,
		Shard:    adm.Shard,
		Attempts: adm.Attempts,
		App:      adm.Adm.App.Name,
		Routes:   len(adm.Adm.Routes),
		Hops:     kairos.TotalHops(adm.Adm.Routes),
	}
	p := s.cluster.Shard(adm.Shard).Platform()
	for _, t := range adm.Adm.App.Tasks {
		resp.Layout = append(resp.Layout, placedTask{
			Task:           t.Name,
			Implementation: adm.Adm.Binding.Implementation(t.ID).Name,
			Element:        p.Element(adm.Adm.Assignment[t.ID]).Name,
		})
	}
	times := adm.Adm.Times
	resp.Times.Binding = times.Binding.Nanoseconds()
	resp.Times.Mapping = times.Mapping.Nanoseconds()
	resp.Times.Routing = times.Routing.Nanoseconds()
	resp.Times.Validation = times.Validation.Nanoseconds()
	resp.Times.Total = times.Total().Nanoseconds()
	return resp
}

func (s *server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var wa wireApp
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&wa); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad application JSON: " + err.Error()})
		return
	}
	app, err := decodeApp(&wa)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	class, err := parseQoS(wa.QoS)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	release, ok := s.admitGate(w, r, class)
	if !ok {
		return
	}
	defer release()
	adm, err := s.cluster.Admit(r.Context(), app)
	if err != nil {
		writeAdmissionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.admitResponse(adm))
}

type admitAllRequest struct {
	Apps []wireApp `json:"apps"`
}

type admitAllEntry struct {
	Index     int            `json:"index"`
	Admission *admitResponse `json:"admission,omitempty"`
	Error     string         `json:"error,omitempty"`
	Phase     string         `json:"phase,omitempty"`
}

func (s *server) handleAdmitAll(w http.ResponseWriter, r *http.Request) {
	var req admitAllRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad batch JSON: " + err.Error()})
		return
	}
	apps := make([]*kairos.Application, len(req.Apps))
	decodeErrs := make([]error, len(req.Apps))
	// The batch is one queue entry; it rides at the highest class any
	// of its apps carries.
	class := qosLow
	if len(req.Apps) == 0 {
		class = qosNormal
	}
	for i := range req.Apps {
		apps[i], decodeErrs[i] = decodeApp(&req.Apps[i])
		c, err := parseQoS(req.Apps[i].QoS)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("app %d: %v", i, err)})
			return
		}
		if c > class {
			class = c
		}
	}
	release, ok := s.admitGate(w, r, class)
	if !ok {
		return
	}
	defer release()
	results := s.cluster.AdmitAll(r.Context(), apps)
	entries := make([]admitAllEntry, len(results))
	for i, res := range results {
		entries[i] = admitAllEntry{Index: res.Index}
		err := res.Err
		if decodeErrs[i] != nil {
			err = decodeErrs[i] // more precise than the nil-app sentinel
		}
		if err != nil {
			entries[i].Error = err.Error()
			var pe *kairos.PhaseError
			if errors.As(err, &pe) {
				entries[i].Phase = pe.Phase.String()
			}
			continue
		}
		entries[i].Admission = s.admitResponse(res.Adm)
	}
	writeJSON(w, http.StatusOK, struct {
		Results []admitAllEntry `json:"results"`
	}{entries})
}

func (s *server) handleRelease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.cluster.Release(id); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, kairos.ErrUnknownInstance) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type readmitRequest struct {
	// Instance restarts one cluster admission; Affected sweeps every
	// shard for admissions touching disabled hardware. Exactly one of
	// the two must be set.
	Instance string `json:"instance,omitempty"`
	Affected bool   `json:"affected,omitempty"`
}

type readmitEntry struct {
	Shard       int    `json:"shard"`
	Instance    string `json:"instance"`
	Outcome     string `json:"outcome"`
	NewInstance string `json:"newInstance,omitempty"`
	Error       string `json:"error,omitempty"`
}

func (s *server) handleReadmit(w http.ResponseWriter, r *http.Request) {
	var req readmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad readmit JSON: " + err.Error()})
		return
	}
	switch {
	case req.Affected && req.Instance == "":
		results := s.cluster.ReadmitAffected(r.Context())
		entries := make([]readmitEntry, len(results))
		for i, res := range results {
			// The sweep reports shard-local names; every name this API
			// returns must be cluster-scoped — what you see is what you
			// can DELETE.
			entries[i] = readmitEntry{
				Shard:    res.Shard,
				Instance: kairos.ClusterInstanceName(res.Shard, res.Instance),
				Outcome:  res.Outcome.String(),
			}
			if res.Outcome != kairos.ReadmitEvicted {
				entries[i].NewInstance = kairos.ClusterInstanceName(res.Shard, res.NewInstance)
			}
			if res.Err != nil {
				entries[i].Error = res.Err.Error()
			}
		}
		writeJSON(w, http.StatusOK, struct {
			Results []readmitEntry `json:"results"`
		}{entries})
	case req.Instance != "" && !req.Affected:
		adm, err := s.cluster.Readmit(r.Context(), req.Instance)
		if err != nil {
			if errors.Is(err, kairos.ErrUnknownInstance) {
				writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
				return
			}
			writeAdmissionError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.admitResponse(adm))
	default:
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: `set exactly one of "instance" or "affected"`})
	}
}

// replanRequest is the POST /v1/replan body. An empty body is valid:
// every shard replans under its configured default budget.
type replanRequest struct {
	// Budget overrides the per-shard move budget for this pass
	// (0 = the server's configured default).
	Budget int `json:"budget,omitempty"`
}

// replanMoveJSON is one committed replan move; both names are
// cluster-scoped, so a client can DELETE what it sees here.
type replanMoveJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// replanShardResult is one shard's pass in a replan response.
type replanShardResult struct {
	Shard      int              `json:"shard"`
	Moves      []replanMoveJSON `json:"moves,omitempty"`
	CostBefore float64          `json:"costBefore"`
	CostAfter  float64          `json:"costAfter"`
	Evaluated  int              `json:"evaluated"`
	Improved   bool             `json:"improved"`
}

// replanResponse is the POST /v1/replan payload: the aggregate moves
// and cost delta plus the per-shard passes.
type replanResponse struct {
	Moves      int                 `json:"moves"`
	CostDelta  float64             `json:"costDelta"`
	DurationMS float64             `json:"durationMs"`
	Shards     []replanShardResult `json:"shards"`
}

// handleReplan runs one offline replanning pass over every active
// shard (see Cluster.Replan). Passes are serialized: a request
// arriving while one runs gets a 409. Servers booted without -replan
// get a 409 explaining the missing configuration.
func (s *server) handleReplan(w http.ResponseWriter, r *http.Request) {
	var req replanRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad replan JSON: " + err.Error()})
		return
	}
	if req.Budget < 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "budget must be non-negative"})
		return
	}
	if !s.replanning.CompareAndSwap(false, true) {
		writeJSON(w, http.StatusConflict, errorBody{Error: "a replanning pass is already running"})
		return
	}
	defer s.replanning.Store(false)
	start := time.Now()
	results, err := s.cluster.ReplanWithBudget(r.Context(), req.Budget)
	if err != nil {
		if errors.Is(err, kairos.ErrNoReplanner) {
			writeJSON(w, http.StatusConflict,
				errorBody{Error: "no replanner configured; restart with -replan " + kairos.ReplannerNames()[0]})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	resp := replanResponse{DurationMS: float64(time.Since(start).Nanoseconds()) / 1e6}
	for _, res := range results {
		sh := replanShardResult{
			Shard:      res.Shard,
			CostBefore: res.CostBefore,
			CostAfter:  res.CostAfter,
			Evaluated:  res.Evaluated,
			Improved:   res.Improved,
		}
		for _, m := range res.Moves {
			sh.Moves = append(sh.Moves, replanMoveJSON{
				From: kairos.ClusterInstanceName(res.Shard, m.From),
				To:   kairos.ClusterInstanceName(res.Shard, m.To),
			})
		}
		resp.Moves += len(res.Moves)
		resp.CostDelta += res.CostAfter - res.CostBefore
		resp.Shards = append(resp.Shards, sh)
	}
	writeJSON(w, http.StatusOK, resp)
}

// checkpointResponse reports a completed snapshot: the next log
// sequence number bounds how many ops a recovery could ever replay.
type checkpointResponse struct {
	Shards  int    `json:"shards"`
	NextLSN uint64 `json:"nextLSN"`
}

// handleCheckpoint snapshots the admission log on demand (an operator
// hook: take a snapshot before maintenance so the next boot replays a
// minimal tail). 409 on non-durable servers.
func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.wal == nil {
		writeJSON(w, http.StatusConflict,
			errorBody{Error: "server is not durable; restart with -data-dir to enable checkpoints"})
		return
	}
	if err := kairos.CheckpointCluster(s.wal, s.cluster); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, checkpointResponse{
		Shards:  s.cluster.NumShards(),
		NextLSN: s.wal.NextLSN(),
	})
}

// statsResponse is the GET /v1/stats payload. Durations are
// nanoseconds (encoding/json renders time.Duration as its int64).
type statsResponse struct {
	Shards    int     `json:"shards"`
	Placement string  `json:"placement"`
	UptimeSec float64 `json:"uptimeSec"`
	Dropped   uint64  `json:"droppedEvents"`
	// QueueDepth is the QoS admission queue's current depth; absent
	// when the gate is disabled.
	QueueDepth *int                `json:"queueDepth,omitempty"`
	Stats      kairos.ClusterStats `json:"stats"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Shards:    s.cluster.NumShards(),
		Placement: s.placement,
		UptimeSec: time.Since(s.started).Seconds(),
		Dropped:   s.cluster.Dropped(),
		Stats:     s.cluster.Stats(),
	}
	if s.gate != nil {
		depth := s.gate.depth()
		resp.QueueDepth = &depth
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// eventJSON is one SSE data payload.
type eventJSON struct {
	Shard    int    `json:"shard"`
	Type     string `json:"type"`
	Instance string `json:"instance"`
	App      string `json:"app,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Restored *bool  `json:"restored,omitempty"`
}

// handleEvents streams the merged cluster event stream as server-sent
// events until the client disconnects. Instance names are rewritten to
// their cluster-scoped form, so a client can DELETE what it sees here.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	events, cancel := s.cluster.Subscribe()
	defer cancel()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	interval := s.keepalive
	if interval <= 0 {
		interval = sseKeepalive
	}
	heartbeat := time.NewTicker(interval)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			// A failing write is how a half-open connection finally
			// surfaces; terminate so the subscription is released.
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev, ok := <-events:
			if !ok {
				return
			}
			ej := eventJSON{Shard: ev.Shard, Instance: kairos.ClusterInstanceName(ev.Shard, ev.Event.EventInstance())}
			switch e := ev.Event.(type) {
			case kairos.Admitted:
				ej.Type = "admitted"
				ej.App = e.Adm.App.Name
			case kairos.Released:
				ej.Type = "released"
				ej.App = e.App.Name
			case kairos.Evicted:
				ej.Type = "evicted"
				ej.App = e.Adm.App.Name
				ej.Reason = e.Reason.String()
			case kairos.ReadmitFailed:
				ej.Type = "readmit-failed"
				ej.App = e.App.Name
				restored := e.Restored
				ej.Restored = &restored
			default:
				ej.Type = "event"
			}
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ej.Type, mustJSON(ej)); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
