package main

import (
	"encoding/json"
	"fmt"

	"repro/kairos"
)

// The JSON wire format of an application: the task graph the binary
// bundle codec (internal/graph/binfmt.go) carries, re-expressed for
// the HTTP API. Channels and fixed elements reference tasks by index,
// so task names need not be unique; a round trip through encodeApp and
// decodeApp reproduces the graph exactly.

type wireApp struct {
	Name        string          `json:"name"`
	Tasks       []wireTask      `json:"tasks"`
	Channels    []wireChannel   `json:"channels,omitempty"`
	Constraints wireConstraints `json:"constraints,omitempty"`
	// QoS is the admission priority class: "low", "normal" (default)
	// or "high". It parameterizes the server's admission queue, not
	// the task graph — see qos.go — so decodeApp ignores it.
	QoS string `json:"qos,omitempty"`
}

type wireTask struct {
	Name string `json:"name"`
	// Kind is "internal" (default), "input" or "output".
	Kind string `json:"kind,omitempty"`
	// FixedElement pins the task to a platform element; absent or -1
	// leaves it free.
	FixedElement    *int       `json:"fixedElement,omitempty"`
	Implementations []wireImpl `json:"implementations"`
}

type wireImpl struct {
	Name     string  `json:"name"`
	Target   string  `json:"target"`
	Compute  int64   `json:"compute,omitempty"`
	Memory   int64   `json:"memory,omitempty"`
	IO       int64   `json:"io,omitempty"`
	Config   int64   `json:"config,omitempty"`
	Cost     float64 `json:"cost,omitempty"`
	ExecTime int64   `json:"execTime,omitempty"`
}

type wireChannel struct {
	// Src and Dst are task indices into the tasks array.
	Src       int   `json:"src"`
	Dst       int   `json:"dst"`
	Produce   int   `json:"produce,omitempty"`
	Consume   int   `json:"consume,omitempty"`
	TokenSize int64 `json:"tokenSize,omitempty"`
	Initial   int   `json:"initial,omitempty"`
}

type wireConstraints struct {
	MinThroughput float64 `json:"minThroughput,omitempty"`
	MaxLatency    int64   `json:"maxLatency,omitempty"`
}

// parseKind maps the wire kind strings onto graph task kinds.
func parseKind(s string) (kairos.TaskKind, error) {
	switch s {
	case "", "internal":
		return kairos.Internal, nil
	case "input":
		return kairos.Input, nil
	case "output":
		return kairos.Output, nil
	}
	return 0, fmt.Errorf("unknown task kind %q (internal, input, output)", s)
}

func kindString(k kairos.TaskKind) string {
	switch k {
	case kairos.Input:
		return "input"
	case kairos.Output:
		return "output"
	default:
		return "internal"
	}
}

// decodeApp builds an application from its wire form and validates it.
func decodeApp(w *wireApp) (*kairos.Application, error) {
	if w.Name == "" {
		return nil, fmt.Errorf("application needs a name")
	}
	app := kairos.NewApplication(w.Name)
	for ti, wt := range w.Tasks {
		kind, err := parseKind(wt.Kind)
		if err != nil {
			return nil, fmt.Errorf("task %d: %w", ti, err)
		}
		impls := make([]kairos.Implementation, len(wt.Implementations))
		for i, wi := range wt.Implementations {
			impls[i] = kairos.Implementation{
				Name:     wi.Name,
				Target:   wi.Target,
				Requires: kairos.Resources(wi.Compute, wi.Memory, wi.IO, wi.Config),
				Cost:     wi.Cost,
				ExecTime: wi.ExecTime,
			}
		}
		id := app.AddTask(wt.Name, kind, impls...)
		if wt.FixedElement != nil {
			app.Tasks[id].FixedElement = *wt.FixedElement
		}
	}
	for ci, wc := range w.Channels {
		if wc.Src < 0 || wc.Src >= len(app.Tasks) || wc.Dst < 0 || wc.Dst >= len(app.Tasks) {
			return nil, fmt.Errorf("channel %d: task index out of range", ci)
		}
		produce, consume := wc.Produce, wc.Consume
		if produce == 0 {
			produce = 1
		}
		if consume == 0 {
			consume = 1
		}
		tokenSize := wc.TokenSize
		if tokenSize == 0 {
			tokenSize = 1
		}
		id := app.AddChannelRated(wc.Src, wc.Dst, produce, consume, tokenSize)
		app.Channels[id].Initial = wc.Initial
	}
	app.Constraints = kairos.Constraints{
		MinThroughput: w.Constraints.MinThroughput,
		MaxLatency:    w.Constraints.MaxLatency,
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

// encodeApp renders an application in the wire form (the loadgen
// client posts generator-drawn applications this way).
func encodeApp(app *kairos.Application) *wireApp {
	w := &wireApp{
		Name: app.Name,
		Constraints: wireConstraints{
			MinThroughput: app.Constraints.MinThroughput,
			MaxLatency:    app.Constraints.MaxLatency,
		},
	}
	for _, t := range app.Tasks {
		wt := wireTask{Name: t.Name, Kind: kindString(t.Kind)}
		if t.FixedElement != kairos.NoFixedElement {
			fixed := t.FixedElement
			wt.FixedElement = &fixed
		}
		for _, im := range t.Implementations {
			wt.Implementations = append(wt.Implementations, wireImpl{
				Name:    im.Name,
				Target:  im.Target,
				Compute: axis(im.Requires, 0), Memory: axis(im.Requires, 1),
				IO: axis(im.Requires, 2), Config: axis(im.Requires, 3),
				Cost:     im.Cost,
				ExecTime: im.ExecTime,
			})
		}
		w.Tasks = append(w.Tasks, wt)
	}
	for _, ch := range app.Channels {
		w.Channels = append(w.Channels, wireChannel{
			Src: ch.Src, Dst: ch.Dst,
			Produce: ch.Produce, Consume: ch.Consume,
			TokenSize: ch.TokenSize, Initial: ch.Initial,
		})
	}
	return w
}

// axis reads one axis of a resource vector, tolerating short vectors.
func axis(v kairos.Vector, i int) int64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

// mustJSON marshals a value the server itself constructed; a failure
// is a programming error.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}
