package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/appgen"
	"repro/internal/experiments"
)

// The load generator: replays synthetic applications drawn from the
// six appgen profiles (the Table I mix) against a running kairosd and
// reports admission throughput and wall-clock latency percentiles —
// the client half of the zero-to-serving smoke loop.

// loadgenConfig parameterizes one run.
type loadgenConfig struct {
	// Target is the server base URL.
	Target string
	// Rate is the offered admissions per second; 0 runs closed-loop
	// at whatever the server sustains.
	Rate float64
	// Duration is the run length.
	Duration time.Duration
	// Concurrency is the number of in-flight workers.
	Concurrency int
	// Seed drives the application draws.
	Seed int64
	// Release controls whether admitted applications are released
	// immediately (steady state) or left running (fill-up).
	Release bool
}

// loadgenCounters aggregates worker outcomes.
type loadgenCounters struct {
	mu       sync.Mutex
	requests int
	admitted int
	rejected int // HTTP 409: workflow rejection
	errors   int // transport errors and unexpected statuses
	// releaseErrors counts failed steady-state releases: if these pile
	// up the cluster silently fills and the run measures fill-up, not
	// steady state, so they fail the run like admit errors do.
	releaseErrors int
	// latencies holds only the successful and workflow-rejected admit
	// round-trips — the server actually ran the workflow for those.
	// Transport errors (connection resets, full 30s client timeouts)
	// measure the network or a dead server, not admission latency;
	// folding them in would let a handful of errors wreck the reported
	// percentiles, so they are counted in errors and excluded here.
	latencies []time.Duration
}

func (c *loadgenCounters) record(status int, lat time.Duration, transportErr bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.requests++
	switch {
	case transportErr:
		c.errors++
	case status == http.StatusOK:
		c.admitted++
		c.latencies = append(c.latencies, lat)
	case status == http.StatusConflict:
		c.rejected++
		c.latencies = append(c.latencies, lat)
	default:
		c.errors++
	}
}

// runLoadgen drives the configured workload and prints the report.
func runLoadgen(cfg loadgenConfig, stdout io.Writer) error {
	base, err := url.Parse(cfg.Target)
	if err != nil || base.Scheme == "" || base.Host == "" {
		return fmt.Errorf("loadgen: bad -target %q (want e.g. http://127.0.0.1:8080)", cfg.Target)
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("loadgen: -duration must be positive")
	}

	// Quick reachability probe before spawning the fleet.
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(base.JoinPath("/healthz").String())
	if err != nil {
		return fmt.Errorf("loadgen: server unreachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// One generator per dataset profile, the Table I mix; draws happen
	// in the dispatcher goroutine only, so the stream is deterministic
	// for a fixed seed regardless of worker count.
	var gens []*appgen.Generator
	for i, gcfg := range experiments.AllConfigs() {
		gens = append(gens, appgen.New(gcfg, cfg.Seed+int64(i+1)*101))
	}

	jobs := make(chan []byte, cfg.Concurrency)
	ctx, cancelCtx := context.WithTimeout(context.Background(), cfg.Duration)
	defer cancelCtx()
	go func() {
		defer close(jobs)
		var tick *time.Ticker
		if cfg.Rate > 0 {
			tick = time.NewTicker(time.Duration(float64(time.Second) / cfg.Rate))
			defer tick.Stop()
		}
		for i := 0; ; i++ {
			app := gens[i%len(gens)].Next()
			payload := mustJSON(encodeApp(app))
			if tick != nil {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
			}
			select {
			case <-ctx.Done():
				return
			case jobs <- payload:
			}
		}
	}()

	counters := &loadgenCounters{}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for payload := range jobs {
				opStart := time.Now()
				resp, err := client.Post(base.JoinPath("/v1/admit").String(),
					"application/json", bytes.NewReader(payload))
				lat := time.Since(opStart)
				if err != nil {
					counters.record(0, lat, true)
					continue
				}
				var admitted admitResponse
				status := resp.StatusCode
				if status == http.StatusOK {
					if err := json.NewDecoder(resp.Body).Decode(&admitted); err != nil {
						status = 0
					}
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				counters.record(status, lat, status == 0)
				if status == http.StatusOK && cfg.Release {
					req, _ := http.NewRequest(http.MethodDelete,
						base.JoinPath("/v1/apps", url.PathEscape(admitted.Instance)).String(), nil)
					released := false
					if dr, err := client.Do(req); err == nil {
						io.Copy(io.Discard, dr.Body)
						dr.Body.Close()
						released = dr.StatusCode == http.StatusNoContent
					}
					if !released {
						counters.mu.Lock()
						counters.releaseErrors++
						counters.mu.Unlock()
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	c := counters
	ps := experiments.DurationPercentiles(c.latencies, 50, 90, 99)
	mode := fmt.Sprintf("%.1f offered req/s", cfg.Rate)
	if cfg.Rate <= 0 {
		mode = "closed loop"
	}
	fmt.Fprintf(stdout, "loadgen: %s for %v against %s, %d workers, seed %d\n",
		mode, cfg.Duration, cfg.Target, cfg.Concurrency, cfg.Seed)
	fmt.Fprintf(stdout, "  %d requests in %v (%.1f req/s achieved)\n",
		c.requests, elapsed.Round(time.Millisecond), float64(c.requests)/elapsed.Seconds())
	fmt.Fprintf(stdout, "  %d admitted, %d rejected, %d errors, %d release errors\n",
		c.admitted, c.rejected, c.errors, c.releaseErrors)
	fmt.Fprintf(stdout, "  admit latency p50 %v, p90 %v, p99 %v\n", ps[0], ps[1], ps[2])
	if c.errors > 0 || c.releaseErrors > 0 {
		return fmt.Errorf("loadgen: %d of %d requests errored, %d releases failed",
			c.errors, c.requests, c.releaseErrors)
	}
	return nil
}
