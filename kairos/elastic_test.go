package kairos_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/kairos"
)

// TestDrainShardRehomesResidents: draining a populated shard moves
// every resident onto the remaining shards, kills the old names,
// issues valid new ones, and leaves the shard permanently
// unadmittable with its index intact.
func TestDrainShardRehomesResidents(t *testing.T) {
	ctx := context.Background()
	c := mustCluster(t, 3, meshFactory(4, 4),
		kairos.WithPlacement(kairos.PlacementFirstFit),
		kairos.WithShardOptions(kairos.WithoutValidation()))

	var onZero int
	for i := 0; i < 4; i++ {
		adm, err := c.Admit(ctx, chain(fmt.Sprintf("app%d", i), 2, 30))
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if adm.Shard == 0 {
			onZero++
		}
	}
	if onZero == 0 {
		t.Fatal("first-fit landed nothing on shard 0; nothing to drain")
	}
	liveBefore := c.Stats().Total.Live

	res, err := c.DrainShard(ctx, 0)
	if err != nil {
		t.Fatalf("DrainShard: %v", err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("drain stranded %d residents on a cluster with empty shards: %+v", len(res.Failed), res.Failed)
	}
	if len(res.Moved) != onZero {
		t.Fatalf("drain moved %d residents, want %d", len(res.Moved), onZero)
	}
	if got := c.Stats().Total.Live; got != liveBefore {
		t.Errorf("drain changed total live %d → %d; make-before-break must conserve placements", liveBefore, got)
	}
	if got := c.Stats().Shards[0].Live; got != 0 {
		t.Errorf("drained shard still hosts %d residents", got)
	}
	for _, mv := range res.Moved {
		if !strings.HasPrefix(mv.From, "s0:") || mv.Shard == 0 {
			t.Errorf("move %+v does not leave shard 0", mv)
		}
		if err := c.Release(mv.From); !errors.Is(err, kairos.ErrUnknownInstance) {
			t.Errorf("old name %q still resolves after the move", mv.From)
		}
	}
	if err := c.Release(res.Moved[0].To); err != nil {
		t.Errorf("new name %q not releasable: %v", res.Moved[0].To, err)
	}

	// The shard keeps its slot, marked drained, and never admits again.
	infos := c.Shards()
	if len(infos) != 3 || infos[0].State != kairos.ShardDrained {
		t.Fatalf("membership after drain: %+v", infos)
	}
	for i := 0; i < 6; i++ {
		adm, err := c.Admit(ctx, chain("after", 2, 30))
		if err != nil {
			break // saturation of the remaining shards is fine
		}
		if adm.Shard == 0 {
			t.Fatal("admission placed on a drained shard")
		}
	}

	// Draining a drained shard retries its (empty) straggler set.
	res, err = c.DrainShard(ctx, 0)
	if err != nil || len(res.Moved) != 0 || len(res.Failed) != 0 {
		t.Errorf("re-drain = %+v, %v; want an empty result", res, err)
	}

	// Growth reopens capacity at the next index.
	idx, err := c.AddShard(kairos.Mesh(4, 4, kairos.DefaultVCs))
	if err != nil || idx != 3 {
		t.Fatalf("AddShard = %d, %v; want index 3", idx, err)
	}
	if got := c.Shards()[3].State; got != kairos.ShardActive {
		t.Errorf("added shard state %v, want active", got)
	}
}

// TestDrainShardReportsUnplaceable: residents no remaining shard can
// host are reported in Failed — by cluster-scoped name, still resident
// and releasable — rather than silently dropped; the shard still ends
// drained.
func TestDrainShardReportsUnplaceable(t *testing.T) {
	ctx := context.Background()
	// Shard 1 is a single-element mesh that cannot host the two-task
	// 80%-share chains living on shard 0.
	factory := func(i int) *kairos.Platform {
		if i == 0 {
			return kairos.Mesh(4, 4, kairos.DefaultVCs)
		}
		return kairos.Mesh(1, 1, kairos.DefaultVCs)
	}
	c := mustCluster(t, 2, factory, kairos.WithShardOptions(kairos.WithoutValidation()))
	var names []string
	for i := 0; i < 2; i++ {
		adm, err := c.Admit(ctx, chain("big", 2, 80))
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if adm.Shard != 0 {
			t.Fatalf("admission %d landed on shard %d; the tiny shard should reject it", i, adm.Shard)
		}
		names = append(names, adm.Instance)
	}

	res, err := c.DrainShard(ctx, 0)
	if err != nil {
		t.Fatalf("DrainShard: %v", err)
	}
	if len(res.Moved) != 0 || len(res.Failed) != len(names) {
		t.Fatalf("drain moved %d failed %d, want 0/%d", len(res.Moved), len(res.Failed), len(names))
	}
	for _, f := range res.Failed {
		if !strings.HasPrefix(f.Instance, "s0:") || f.Reason == "" {
			t.Errorf("failure %+v lacks a cluster-scoped name or a reason", f)
		}
	}
	if got := c.Shards()[0].State; got != kairos.ShardDrained {
		t.Errorf("shard state after partial drain %v, want drained (stragglers leave, never joined)", got)
	}
	// The stragglers are still resident and can leave normally.
	if got := c.Stats().Shards[0].Live; got != len(names) {
		t.Errorf("drained shard live = %d, want %d stragglers", got, len(names))
	}
	for _, name := range names {
		if err := c.Release(name); err != nil {
			t.Errorf("releasing straggler %q: %v", name, err)
		}
	}
}

// TestDrainShardCancellationPurity extends the PR 2 rollback-purity
// property to drains: a DrainShard cancelled before any migration
// completed must leave the drained shard's durable state byte-identical
// (the canonical WAL encoding), the target shards' allocation state
// untouched, and the membership mark rolled back.
func TestDrainShardCancellationPurity(t *testing.T) {
	bg := context.Background()
	c := mustCluster(t, 2, meshFactory(4, 4),
		kairos.WithPlacement(kairos.PlacementFirstFit))
	for i := 0; i < 3; i++ {
		adm, err := c.Admit(bg, chain(fmt.Sprintf("app%d", i), 2, 30))
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if adm.Shard != 0 {
			t.Fatalf("first-fit put app %d on shard %d", i, adm.Shard)
		}
	}
	wantState := stateBytes(t, c.Shard(0))
	wantAlloc := allocState(c.Shard(1).Platform(), c.Shard(1))

	ctx, cancel := context.WithCancel(bg)
	cancel()
	res, err := c.DrainShard(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled drain error = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Moved) != 0 {
		t.Fatalf("cancelled drain reported moves: %+v", res)
	}
	if got := stateBytes(t, c.Shard(0)); !bytes.Equal(got, wantState) {
		t.Error("cancelled drain mutated the shard's durable state")
	}
	if got := allocState(c.Shard(1).Platform(), c.Shard(1)); got != wantAlloc {
		t.Errorf("cancelled drain left allocations on the target shard:\n--- before\n%s--- after\n%s", wantAlloc, got)
	}
	if got := c.Shards()[0].State; got != kairos.ShardActive {
		t.Errorf("membership state after cancelled drain %v, want active (rolled back)", got)
	}
	if c.Shard(0).Draining() {
		t.Error("drain gate left set after cancellation")
	}
	// The shard serves again.
	adm, err := c.Admit(bg, chain("post", 2, 30))
	if err != nil {
		t.Fatalf("admit after cancelled drain: %v", err)
	}
	if adm.Shard != 0 {
		t.Errorf("first-fit avoided the rolled-back shard (landed on %d)", adm.Shard)
	}
}

// TestDrainUnderChurnLosesNothing is the acceptance stress: drains and
// a shard add race a full admission/release churn under -race, and at
// the end every acknowledged placement is accounted for — released by
// its owner, rehomed under a drain-reported new name, or still
// resident — with none lost.
func TestDrainUnderChurnLosesNothing(t *testing.T) {
	ctx := context.Background()
	c := mustCluster(t, 4, meshFactory(4, 4),
		kairos.WithShardOptions(kairos.WithoutValidation()))

	const workers = 8
	var mu sync.Mutex
	live := map[string]bool{} // acknowledged admissions not acknowledged-released
	var wg sync.WaitGroup
	started := make(chan struct{})
	var startOnce sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []string
			for i := 0; i < 40; i++ {
				adm, err := c.Admit(ctx, chain(fmt.Sprintf("w%d", w), 2, 25))
				if err == nil {
					mu.Lock()
					live[adm.Instance] = true
					mu.Unlock()
					mine = append(mine, adm.Instance)
					startOnce.Do(func() { close(started) })
				}
				if len(mine) > 0 && rng.Intn(2) == 0 {
					name := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := c.Release(name); err == nil {
						mu.Lock()
						delete(live, name)
						mu.Unlock()
					}
					// ErrUnknownInstance: a drain rehomed it between our
					// admit and this release. It stays tracked under its
					// old name and is resolved through the rename maps
					// below — losing it here would hide a lost placement.
				}
			}
		}(w)
	}

	<-started
	renames := map[string]string{}
	for _, step := range []func() (*kairos.DrainResult, error){
		func() (*kairos.DrainResult, error) { return c.DrainShard(ctx, 0) },
		func() (*kairos.DrainResult, error) {
			if _, err := c.AddShard(kairos.Mesh(4, 4, kairos.DefaultVCs)); err != nil {
				return nil, err
			}
			return c.DrainShard(ctx, 1)
		},
	} {
		res, err := step()
		if err != nil {
			t.Fatalf("membership change under churn: %v", err)
		}
		for _, mv := range res.Moved {
			renames[mv.From] = mv.To
		}
	}
	wg.Wait()

	// Resolve every tracked placement through the rename chains and
	// release it: each must still exist exactly once.
	resolve := func(name string) string {
		for {
			to, ok := renames[name]
			if !ok {
				return name
			}
			name = to
		}
	}
	if got, want := c.Stats().Total.Live, len(live); got != want {
		t.Errorf("cluster live = %d, tracked acknowledged placements = %d", got, want)
	}
	for name := range live {
		if err := c.Release(resolve(name)); err != nil {
			t.Errorf("placement %q (resolved %q) lost: %v", name, resolve(name), err)
		}
	}
	if got := c.Stats().Total.Live; got != 0 {
		t.Errorf("%d unaccounted placements remain after releasing every tracked one", got)
	}
	// Both drained shards hold nothing the drain did not report.
	for i := 0; i < 2; i++ {
		if got := c.Stats().Shards[i].Live; got != 0 {
			t.Errorf("drained shard %d still hosts %d unreported residents", i, got)
		}
	}
}

// TestNoAdmittableShards: with every shard drained the cluster refuses
// admissions with the sentinel, and growth restores service.
func TestNoAdmittableShards(t *testing.T) {
	ctx := context.Background()
	c := mustCluster(t, 1, meshFactory(4, 4))
	if _, err := c.DrainShard(ctx, 0); err != nil {
		t.Fatalf("draining an empty shard: %v", err)
	}
	if _, err := c.Admit(ctx, chain("app", 2, 30)); !errors.Is(err, kairos.ErrNoAdmittableShards) {
		t.Fatalf("admit on a fully drained cluster = %v, want ErrNoAdmittableShards", err)
	}
	if _, err := c.AddShard(kairos.Mesh(4, 4, kairos.DefaultVCs)); err != nil {
		t.Fatal(err)
	}
	adm, err := c.Admit(ctx, chain("app", 2, 30))
	if err != nil {
		t.Fatalf("admit after growth: %v", err)
	}
	if adm.Shard != 1 {
		t.Errorf("admission on shard %d, want the added shard 1", adm.Shard)
	}
}

// TestClusterReleaseAllRacesSubscribeAndAdmit hammers ReleaseAll
// against concurrent admissions and subscription churn under -race;
// the invariant is that the final quiesced ReleaseAll leaves zero live
// placements and the subscription machinery shuts down cleanly.
func TestClusterReleaseAllRacesSubscribeAndAdmit(t *testing.T) {
	ctx := context.Background()
	c := mustCluster(t, 4, meshFactory(4, 4),
		kairos.WithShardOptions(kairos.WithoutValidation()))

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				adm, err := c.Admit(ctx, chain(fmt.Sprintf("w%d", w), 2, 25))
				if err == nil && i%3 == 0 {
					_ = c.Release(adm.Instance) // may race a ReleaseAll; both outcomes fine
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			events, cancel := c.Subscribe()
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range events {
				}
			}()
			time.Sleep(time.Millisecond)
			cancel()
			<-done
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			c.ReleaseAll()
		}
	}()
	wg.Wait()

	c.ReleaseAll()
	if got := c.Stats().Total.Live; got != 0 {
		t.Fatalf("quiesced ReleaseAll left %d live placements", got)
	}
}

// TestMembershipRecovery: a durable cluster that grew and drained at
// run time recovers with the caller passing the BOOT count — the log's
// membership records size the recovered cluster, the drained shard
// stays drained, and every shard's state is byte-identical. Both the
// pure-replay and the snapshot+tail paths are covered.
func TestMembershipRecovery(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	c, log, err := kairos.RecoverCluster(dir, 2, meshFactory(4, 4))
	if err != nil {
		t.Fatalf("RecoverCluster (fresh): %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Admit(ctx, chain(fmt.Sprintf("app%d", i), 2, 25)); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	if idx, err := c.AddShard(kairos.Mesh(4, 4, kairos.DefaultVCs)); err != nil || idx != 2 {
		t.Fatalf("AddShard = %d, %v", idx, err)
	}
	if _, err := c.Admit(ctx, chain("young", 2, 25)); err != nil {
		t.Fatalf("post-growth admit: %v", err)
	}
	res, err := c.DrainShard(ctx, 0)
	if err != nil {
		t.Fatalf("DrainShard: %v", err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("drain stranded residents: %+v", res.Failed)
	}
	want := make([][]byte, 3)
	for i := range want {
		want[i] = stateBytes(t, c.Shard(i))
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	// Pure replay: the base count is 2; the journaled AddShard grows
	// the recovered membership to 3 and the journaled drain keeps
	// shard 0 out of service.
	c2, log2, err := kairos.RecoverCluster(dir, 2, meshFactory(4, 4))
	if err != nil {
		t.Fatalf("RecoverCluster (replay): %v", err)
	}
	if c2.NumShards() != 3 {
		t.Fatalf("recovered %d shards, want 3 (base 2 + journaled add)", c2.NumShards())
	}
	if got := c2.Shards()[0].State; got != kairos.ShardDrained {
		t.Errorf("recovered shard 0 state %v, want drained", got)
	}
	for i := range want {
		if got := stateBytes(t, c2.Shard(i)); !bytes.Equal(got, want[i]) {
			t.Errorf("shard %d: recovered state differs", i)
		}
	}
	for i := 0; i < 4; i++ {
		adm, err := c2.Admit(ctx, chain("post", 2, 25))
		if err != nil {
			t.Fatalf("post-recovery admit: %v", err)
		}
		if adm.Shard == 0 {
			t.Fatal("recovered cluster admitted onto the drained shard")
		}
	}

	// Snapshot + tail: checkpoint the grown membership, append a tail
	// op, and recover again with the boot count.
	if err := kairos.CheckpointCluster(log2, c2); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if _, err := c2.Admit(ctx, chain("tail", 2, 25)); err != nil {
		t.Fatalf("tail admit: %v", err)
	}
	want2 := make([][]byte, 3)
	for i := range want2 {
		want2[i] = stateBytes(t, c2.Shard(i))
	}
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}
	c3, log3, err := kairos.RecoverCluster(dir, 2, meshFactory(4, 4))
	if err != nil {
		t.Fatalf("RecoverCluster (snapshot): %v", err)
	}
	defer log3.Close()
	if c3.NumShards() != 3 || c3.Shards()[0].State != kairos.ShardDrained {
		t.Fatalf("snapshot recovery membership: %d shards, shard 0 %v", c3.NumShards(), c3.Shards()[0].State)
	}
	for i := range want2 {
		if got := stateBytes(t, c3.Shard(i)); !bytes.Equal(got, want2[i]) {
			t.Errorf("shard %d: snapshot+tail recovery differs", i)
		}
	}
}

// TestRecoverClusterShapeErrors pins the improved shape-mismatch
// diagnostics: both refusals must say the log is not corrupt and name
// the evidence (the snapshot, or the offending op's LSN).
func TestRecoverClusterShapeErrors(t *testing.T) {
	ctx := context.Background()

	t.Run("op-beyond-membership", func(t *testing.T) {
		dir := t.TempDir()
		c, log, err := kairos.RecoverCluster(dir, 2, meshFactory(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := c.Admit(ctx, chain("app", 2, 25)); err != nil {
				t.Fatal(err)
			}
		}
		onOne := c.Shard(1).Stats().Live > 0
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		if !onOne {
			t.Skip("balancer left shard 1 empty; nothing to detect")
		}
		_, _, err = kairos.RecoverCluster(dir, 1, meshFactory(4, 4))
		if err == nil {
			t.Fatal("RecoverCluster(1) accepted a 2-shard log")
		}
		for _, frag := range []string{"lsn", "tagged shard 1", "not a corrupt log", "pass the shard count"} {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("error %q lacks %q", err, frag)
			}
		}
	})

	t.Run("snapshot-smaller-than-base", func(t *testing.T) {
		dir := t.TempDir()
		c, log, err := kairos.RecoverCluster(dir, 2, meshFactory(4, 4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Admit(ctx, chain("app", 2, 25)); err != nil {
			t.Fatal(err)
		}
		if err := kairos.CheckpointCluster(log, c); err != nil {
			t.Fatal(err)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		_, _, err = kairos.RecoverCluster(dir, 3, meshFactory(4, 4))
		if err == nil {
			t.Fatal("RecoverCluster(3) accepted a 2-shard snapshot")
		}
		for _, frag := range []string{"snapshot", "holds 2 shard(s)", "booted with 3", "not a corrupt log"} {
			if !strings.Contains(err.Error(), frag) {
				t.Errorf("error %q lacks %q", err, frag)
			}
		}
	})
}
