package kairos

import (
	"flag"
	"fmt"
	"strings"
	"time"
)

// Flags is the CLI vocabulary shared by cmd/kairos, cmd/sim and
// cmd/experiments: the platform spec, the mapping weights, and the
// four per-phase strategy names. Register it on a FlagSet with
// RegisterFlags, then resolve with BuildPlatform and StrategyOptions
// after parsing.
type Flags struct {
	// PlatformSpec is the -platform value (see PlatformFromSpec).
	PlatformSpec string
	// WeightsSpec is the -weights value (see ParseWeights).
	WeightsSpec string
	// Binder, Mapper, Router and Validator are the -binder, -mapper,
	// -router and -validator strategy names (see the *ByName
	// registries).
	Binder, Mapper, Router, Validator string
	// LayoutCache is the -layout-cache value (see WithLayoutCache);
	// 0 disables the cache.
	LayoutCache int
	// Optimistic is the -optimistic value (see
	// WithOptimisticAdmission); 0 keeps admissions fully serialized.
	Optimistic int
	// Replan is the -replan value: an offline-replanner name (see
	// ReplannerByName) or "off" (the default, no replanner attached).
	Replan string
	// ReplanBudget is the -replan-budget value (see WithReplanBudget);
	// 0 keeps DefaultReplanBudget.
	ReplanBudget int
	// ReplanSeed is the -replan-seed value: the seed of the
	// replanner's randomized search (see SeededReplanner).
	ReplanSeed int64
}

// RegisterFlags registers the shared flags on the FlagSet with their
// default values (CRISP platform, the paper's weights and strategies)
// and returns the struct the parsed values land in.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.PlatformSpec, "platform", "crisp",
		"platform: crisp, mesh<W>x<H>, or a .json description")
	fs.StringVar(&f.WeightsSpec, "weights", "both",
		"mapping cost weights: none|communication|fragmentation|both|C,F")
	fs.StringVar(&f.Binder, "binder", BinderNames()[0],
		"binding strategy: "+strings.Join(BinderNames(), "|"))
	fs.StringVar(&f.Mapper, "mapper", MapperNames()[0],
		"mapping strategy: "+strings.Join(MapperNames(), "|"))
	fs.StringVar(&f.Router, "router", RouterNames()[0],
		"routing strategy: "+strings.Join(RouterNames(), "|"))
	fs.StringVar(&f.Validator, "validator", ValidatorNames()[0],
		"validation strategy: "+strings.Join(ValidatorNames(), "|"))
	fs.IntVar(&f.LayoutCache, "layout-cache", 0,
		"memoize up to N successful layouts per manager (0 = disabled)")
	fs.IntVar(&f.Optimistic, "optimistic", 0,
		"plan admissions lock-free with up to N attempts before serializing (0 = serialized)")
	fs.StringVar(&f.Replan, "replan", "off",
		"offline replanner: off|"+strings.Join(ReplannerNames(), "|"))
	fs.IntVar(&f.ReplanBudget, "replan-budget", 0,
		fmt.Sprintf("replanner move budget per pass (0 = default %d)", DefaultReplanBudget))
	fs.Int64Var(&f.ReplanSeed, "replan-seed", 0,
		"seed of the replanner's randomized search")
	return f
}

// BuildPlatform resolves the -platform value.
func (f *Flags) BuildPlatform() (*Platform, error) {
	return PlatformFromSpec(f.PlatformSpec)
}

// ClusterFlags is the CLI vocabulary of cluster deployments
// (cmd/kairosd, cmd/sim -cluster): the shard count, the placement
// policy name and the spill-over limit. Register it with
// RegisterClusterFlags, then resolve with Options after parsing.
type ClusterFlags struct {
	// Shards is the -shards value.
	Shards int
	// Placement is the -placement policy name (see PlacementByName).
	Placement string
	// Spill is the -spill value (see WithSpillLimit).
	Spill int
	// Rebalance, RebalanceEvery and RebalanceBudget are the -rebalance
	// policy name, loop period and per-tick migration cap. They are
	// carried raw: resolve them with internal/rebalance (which imports
	// this package, so this package only names the vocabulary).
	Rebalance       string
	RebalanceEvery  time.Duration
	RebalanceBudget int
}

// RegisterClusterFlags registers the cluster flags on the FlagSet with
// their default values (4 shards, least-loaded placement, unlimited
// spill-over) and returns the struct the parsed values land in.
func RegisterClusterFlags(fs *flag.FlagSet) *ClusterFlags {
	f := &ClusterFlags{}
	fs.IntVar(&f.Shards, "shards", 4, "number of platform shards in the cluster")
	fs.StringVar(&f.Placement, "placement", PlacementNames()[0],
		"placement policy: "+strings.Join(PlacementNames(), "|"))
	fs.IntVar(&f.Spill, "spill", 0,
		"max shards tried per admission (0 = all, in placement order)")
	fs.StringVar(&f.Rebalance, "rebalance", "off",
		"background rebalance policy: off|threshold|periodic")
	fs.DurationVar(&f.RebalanceEvery, "rebalance-every", 5*time.Second,
		"period of the background rebalance loop")
	fs.IntVar(&f.RebalanceBudget, "rebalance-budget", 2,
		"max migrations per rebalance tick")
	return f
}

// Options resolves the placement name and spill limit into cluster
// options; the shard count stays the caller's to pass to NewCluster.
func (f *ClusterFlags) Options() ([]ClusterOption, error) {
	if f.Shards <= 0 {
		return nil, fmt.Errorf("kairos: -shards must be positive, got %d", f.Shards)
	}
	p, err := PlacementByName(f.Placement)
	if err != nil {
		return nil, err
	}
	return []ClusterOption{WithPlacement(p), WithSpillLimit(f.Spill)}, nil
}

// Weights resolves the -weights value.
func (f *Flags) Weights() (Weights, error) {
	return ParseWeights(f.WeightsSpec)
}

// PhaseStrategies resolves the four strategy names into Manager
// options, without the weights — for callers that set their own
// weight treatment per run (cmd/experiments sweeps them per figure).
// The default strategies resolve like any other, so appending these
// options is always safe.
func (f *Flags) PhaseStrategies() ([]Option, error) {
	b, err := BinderByName(f.Binder)
	if err != nil {
		return nil, err
	}
	m, err := MapperByName(f.Mapper)
	if err != nil {
		return nil, err
	}
	r, err := RouterByName(f.Router)
	if err != nil {
		return nil, err
	}
	v, err := ValidatorByName(f.Validator)
	if err != nil {
		return nil, err
	}
	return []Option{
		WithBinder(b), WithMapper(m), WithRouter(r), WithValidator(v),
	}, nil
}

// StrategyOptions resolves the weights, the four strategy names and
// the layout-cache size into Manager options.
func (f *Flags) StrategyOptions() ([]Option, error) {
	if f.LayoutCache < 0 {
		return nil, fmt.Errorf("kairos: -layout-cache must be non-negative, got %d", f.LayoutCache)
	}
	if f.Optimistic < 0 {
		return nil, fmt.Errorf("kairos: -optimistic must be non-negative, got %d", f.Optimistic)
	}
	if f.ReplanBudget < 0 {
		return nil, fmt.Errorf("kairos: -replan-budget must be non-negative, got %d", f.ReplanBudget)
	}
	w, err := f.Weights()
	if err != nil {
		return nil, err
	}
	opts, err := f.PhaseStrategies()
	if err != nil {
		return nil, err
	}
	opts = append([]Option{WithWeights(w)}, opts...)
	if f.LayoutCache > 0 {
		opts = append(opts, WithLayoutCache(f.LayoutCache))
	}
	if f.Optimistic > 0 {
		opts = append(opts, WithOptimisticAdmission(f.Optimistic))
	}
	if f.Replan != "" && f.Replan != "off" {
		r, err := SeededReplanner(f.Replan, f.ReplanSeed)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithReplanner(r))
		if f.ReplanBudget > 0 {
			opts = append(opts, WithReplanBudget(f.ReplanBudget))
		}
	}
	return opts, nil
}
