package kairos_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/wal"
	"repro/kairos"
)

// stateBytes renders a manager's durable state in the WAL's canonical
// encoding, so "identical state" is literal byte identity.
func stateBytes(t *testing.T, m *kairos.Manager) []byte {
	t.Helper()
	b, err := wal.EncodeState(nil, m.ExportState())
	if err != nil {
		t.Fatalf("encoding state: %v", err)
	}
	return b
}

func mustRecover(t *testing.T, dir string, opts ...kairos.Option) (*kairos.Manager, *kairos.WAL) {
	t.Helper()
	m, log, err := kairos.Recover(dir, kairos.Mesh(4, 4, kairos.DefaultVCs), opts...)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return m, log
}

func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	m, log := mustRecover(t, dir)
	a, err := m.Admit(ctx, chain("alpha", 3, 40))
	if err != nil {
		t.Fatalf("admit alpha: %v", err)
	}
	b, err := m.Admit(ctx, chain("beta", 2, 30))
	if err != nil {
		t.Fatalf("admit beta: %v", err)
	}
	if _, err := m.Admit(ctx, chain("gamma", 2, 20)); err != nil {
		t.Fatalf("admit gamma: %v", err)
	}
	if err := m.Release(b.Instance); err != nil {
		t.Fatalf("release beta: %v", err)
	}
	// A fault transition and a repair must survive recovery too.
	if err := m.SetElementEnabled(15, false); err != nil {
		t.Fatalf("disable element: %v", err)
	}
	if err := m.SetLinkEnabled(0, 1, false); err != nil {
		t.Fatalf("disable link: %v", err)
	}
	if err := m.SetLinkEnabled(0, 1, true); err != nil {
		t.Fatalf("enable link: %v", err)
	}
	want := stateBytes(t, m)
	if err := log.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	m2, log2 := mustRecover(t, dir)
	defer log2.Close()
	if got := stateBytes(t, m2); !bytes.Equal(got, want) {
		t.Fatalf("recovered state differs from pre-shutdown state\ngot:  %x\nwant: %x", got, want)
	}
	// The recovered manager must serve traffic: release a pre-crash
	// admission and admit a new one through the re-attached log.
	if err := m2.Release(a.Instance); err != nil {
		t.Fatalf("post-recovery release of pre-crash instance: %v", err)
	}
	if _, err := m2.Admit(ctx, chain("delta", 2, 20)); err != nil {
		t.Fatalf("post-recovery admit: %v", err)
	}
}

func TestRecoverAfterCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	m, log := mustRecover(t, dir)
	for _, name := range []string{"a", "b", "c"} {
		if _, err := m.Admit(ctx, chain(name, 2, 25)); err != nil {
			t.Fatalf("admit %s: %v", name, err)
		}
	}
	if err := kairos.Checkpoint(log, m); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Ops past the snapshot exercise the snapshot+tail replay path.
	d, err := m.Admit(ctx, chain("d", 2, 25))
	if err != nil {
		t.Fatalf("admit d: %v", err)
	}
	if err := m.Release(d.Instance); err != nil {
		t.Fatalf("release d: %v", err)
	}
	want := stateBytes(t, m)
	if err := log.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	m2, log2 := mustRecover(t, dir)
	defer log2.Close()
	if got := stateBytes(t, m2); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs after checkpoint + tail replay")
	}
}

func TestWithDurabilityFreshDir(t *testing.T) {
	m := kairos.New(kairos.Mesh(4, 4, kairos.DefaultVCs), kairos.WithDurability(t.TempDir()))
	adm, err := m.Admit(context.Background(), chain("fresh", 2, 30))
	if err != nil {
		t.Fatalf("admit through WithDurability: %v", err)
	}
	if err := m.Release(adm.Instance); err != nil {
		t.Fatalf("release: %v", err)
	}
}

func TestWithDurabilityRejectsPriorState(t *testing.T) {
	dir := t.TempDir()
	m, log := mustRecover(t, dir)
	if _, err := m.Admit(context.Background(), chain("old", 2, 30)); err != nil {
		t.Fatalf("seeding admit: %v", err)
	}
	if err := log.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	// New must not silently shadow the existing log: every operation
	// fails with ErrJournal until the caller boots with Recover.
	m2 := kairos.New(kairos.Mesh(4, 4, kairos.DefaultVCs), kairos.WithDurability(dir))
	_, err := m2.Admit(context.Background(), chain("new", 2, 30))
	if !errors.Is(err, kairos.ErrJournal) {
		t.Fatalf("admit on prior-state dir: err = %v, want ErrJournal", err)
	}
	if !strings.Contains(err.Error(), "Recover") {
		t.Errorf("error should point at Recover: %v", err)
	}
	if got := m2.Stats().Live; got != 0 {
		t.Errorf("failed admit left Live = %d", got)
	}
}

// TestDurableLog: a WithDurability manager's log is reachable through
// DurableLog, so its owner can checkpoint it and close it cleanly —
// and a recovery afterwards loads the snapshot that checkpoint wrote.
func TestDurableLog(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	m := kairos.New(kairos.Mesh(4, 4, kairos.DefaultVCs), kairos.WithDurability(dir))
	log := kairos.DurableLog(m)
	if log == nil {
		t.Fatal("DurableLog returned nil for a WithDurability manager")
	}
	if _, err := m.Admit(ctx, chain("alpha", 2, 30)); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if err := kairos.Checkpoint(log, m); err != nil {
		t.Fatalf("checkpoint through DurableLog: %v", err)
	}
	want := stateBytes(t, m)
	if err := log.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	m2, log2 := mustRecover(t, dir)
	defer log2.Close()
	if got := stateBytes(t, m2); !bytes.Equal(got, want) {
		t.Fatal("state recovered from a DurableLog checkpoint differs")
	}

	if got := kairos.DurableLog(kairos.New(kairos.Mesh(4, 4, kairos.DefaultVCs))); got != nil {
		t.Fatal("DurableLog returned a log for a non-durable manager")
	}
}

// TestConcurrentCheckpointsUnderLoad races appends and overlapping
// checkpoint callers (kairosd runs a ticker, an HTTP endpoint and the
// shutdown path concurrently) and requires recovery to land exactly on
// the final acknowledged state: a stale export published over a newer
// snapshot whose compaction already deleted segments would lose
// acknowledged admissions here.
func TestConcurrentCheckpointsUnderLoad(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	const shards = 2

	c, log, err := kairos.RecoverCluster(dir, shards, meshFactory(4, 4))
	if err != nil {
		t.Fatalf("RecoverCluster (fresh): %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				adm, err := c.Admit(ctx, chain("churn", 2, 20))
				if err != nil {
					continue // rejection under load is normal traffic
				}
				if i%2 == 0 {
					if err := c.Release(adm.Instance); err != nil {
						t.Errorf("worker %d: release: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := kairos.CheckpointCluster(log, c); err != nil {
					t.Errorf("concurrent checkpoint: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	want := make([][]byte, shards)
	for i := 0; i < shards; i++ {
		want[i] = stateBytes(t, c.Shard(i))
	}
	if err := log.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	c2, log2, err := kairos.RecoverCluster(dir, shards, meshFactory(4, 4))
	if err != nil {
		t.Fatalf("RecoverCluster after concurrent checkpoints: %v", err)
	}
	defer log2.Close()
	for i := 0; i < shards; i++ {
		if got := stateBytes(t, c2.Shard(i)); !bytes.Equal(got, want[i]) {
			t.Errorf("shard %d: recovered state differs from final acknowledged state", i)
		}
	}
}

func TestRecoverClusterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	const shards = 3

	c, log, err := kairos.RecoverCluster(dir, shards, meshFactory(4, 4))
	if err != nil {
		t.Fatalf("RecoverCluster (fresh): %v", err)
	}
	var admitted []string
	for i := 0; i < 6; i++ {
		adm, err := c.Admit(ctx, chain("app", 2, 25))
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		admitted = append(admitted, adm.Instance)
	}
	if err := c.Release(admitted[0]); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := kairos.CheckpointCluster(log, c); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if _, err := c.Admit(ctx, chain("tail", 2, 25)); err != nil {
		t.Fatalf("post-checkpoint admit: %v", err)
	}
	want := make([][]byte, shards)
	for i := 0; i < shards; i++ {
		want[i] = stateBytes(t, c.Shard(i))
	}
	if err := log.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}

	c2, log2, err := kairos.RecoverCluster(dir, shards, meshFactory(4, 4))
	if err != nil {
		t.Fatalf("RecoverCluster: %v", err)
	}
	defer log2.Close()
	for i := 0; i < shards; i++ {
		if got := stateBytes(t, c2.Shard(i)); !bytes.Equal(got, want[i]) {
			t.Errorf("shard %d: recovered state differs", i)
		}
	}
	// Pre-crash cluster instance names must still resolve.
	if err := c2.Release(admitted[1]); err != nil {
		t.Fatalf("post-recovery release of %s: %v", admitted[1], err)
	}
	if _, err := c2.Admit(ctx, chain("post", 2, 25)); err != nil {
		t.Fatalf("post-recovery admit: %v", err)
	}

	// The shard count is part of the contract.
	if _, _, err := kairos.RecoverCluster(dir, shards+1, meshFactory(4, 4)); err == nil {
		t.Error("RecoverCluster with wrong shard count succeeded")
	}
}

func TestRecoverRejectsClusterLog(t *testing.T) {
	dir := t.TempDir()
	c, log, err := kairos.RecoverCluster(dir, 2, meshFactory(4, 4))
	if err != nil {
		t.Fatalf("RecoverCluster: %v", err)
	}
	// Land at least one op on shard 1 so the log is unmistakably
	// cluster-shaped even without a snapshot.
	for i := 0; i < 8; i++ {
		if _, err := c.Admit(context.Background(), chain("app", 2, 25)); err != nil {
			t.Fatalf("admit: %v", err)
		}
	}
	shard1 := c.Shard(1).Stats().Live > 0
	if err := log.Close(); err != nil {
		t.Fatalf("close log: %v", err)
	}
	if !shard1 {
		t.Skip("balancer left shard 1 empty; nothing to detect")
	}
	if _, _, err := kairos.Recover(dir, kairos.Mesh(4, 4, kairos.DefaultVCs)); err == nil {
		t.Fatal("Recover accepted a cluster-tagged log")
	} else if !strings.Contains(err.Error(), "RecoverCluster") {
		t.Errorf("error should point at RecoverCluster: %v", err)
	}
}
