package kairos

import (
	"fmt"
	"sort"

	"repro/internal/binding"
	"repro/internal/core"
	"repro/internal/knapsack"
	"repro/internal/mapping"
	"repro/internal/replan"
	"repro/internal/routing"
	"repro/internal/validation"
)

// The strategy interfaces mention these types in their method
// signatures; they are aliased here so an implementation outside the
// module can be written against repro/kairos alone.

// Binding is the result of the binding phase: the selected
// implementation per task (with accessors Implementation, Demand,
// Target).
type Binding = binding.Binding

// MapperOptions configures one mapping-phase run: the instance name
// placements are recorded under, the cost weights, and the search
// parameters. Custom mappers receive it from the engine.
type MapperOptions = mapping.Options

// MapResult is a successful mapping: the element per task plus
// introspection counters.
type MapResult = mapping.Result

// ValidationOptions configures the SDF model of the validation phase.
type ValidationOptions = validation.Options

// ValidationReport is the outcome of the validation phase.
type ValidationReport = validation.Report

// Solver is the knapsack subroutine of the GAP solver inside the
// mapping phase (see WithSolver).
type Solver = knapsack.Solver

// The registered knapsack solvers.
var (
	// SolverGreedy is the paper's O(T²) density-greedy knapsack. The
	// default.
	SolverGreedy Solver = knapsack.Greedy{}
	// SolverExact is the exact branch-and-bound knapsack (the quality
	// ablation of the greedy).
	SolverExact Solver = knapsack.Exact{}
)

// Binder selects an implementation for every task of an application
// (phase 1). Implementations must not mutate the platform.
type Binder = core.Binder

// Mapper assigns a platform element to every task (phase 2),
// committing placements under the instance name in its options and
// rolling back everything it placed on failure.
type Mapper = core.Mapper

// Router finds a path between two elements over links with free
// virtual channels (phase 3). Implementations must not allocate.
type Router = core.Router

// Validator checks the performance constraints of an execution layout
// (phase 4). A nil report with a nil error accepts the layout without
// analysis.
type Validator = core.Validator

// The registered routers.
var (
	// RouterBFS is the paper's router: fewest hops, least-loaded
	// links first among equals (§II). The default.
	RouterBFS Router = routing.BFS{}
	// RouterDijkstra is the load-aware router of the paper's §II
	// parity claim: link weight grows with virtual-channel occupancy.
	RouterDijkstra Router = routing.Dijkstra{}
)

// Replanner is the offline replanning strategy: Manager.Replan hands
// it a sandboxed clone of the platform plus the resident set, and it
// searches for a better whole-set placement by tentatively releasing
// and re-admitting residents through the ordinary four-phase
// workflow, within a move budget. The pass commits only when the
// reported cost strictly improved (see WithReplanner).
type Replanner = core.Replanner

// ReplanSandbox is the tentative-move workspace a Replanner operates
// on; every Shuffle runs against a clone of the platform, never the
// live allocation state.
type ReplanSandbox = core.ReplanSandbox

// The strategy registries: the implementations selectable by name
// from the CLIs (cmd/kairos, cmd/sim, cmd/experiments -binder,
// -mapper, -router, -validator, -replan). The first entry of each
// list is the default.
var (
	binders = []Binder{core.RegretBinder{}, core.ExactBinder{}}
	mappers = []Mapper{core.IncrementalMapper{}, core.GapMapper{}, core.FirstFitMapper{}}
	routers = []Router{RouterBFS, RouterDijkstra}
	// validators is ordered default-first like the others.
	validators = []Validator{core.SDFValidator{}, core.NoopValidator{}}
	// replanners is ordered default-first like the others. The entries
	// carry default parameters; SeededReplanner re-seeds them.
	replanners = []Replanner{replan.LNS{}}
)

// BinderByName returns the registered phase-1 strategy with the name:
// "regret" (the paper's heuristic, default) or "exact" (budgeted
// branch-and-bound over the selection space).
func BinderByName(name string) (Binder, error) {
	for _, b := range binders {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("kairos: unknown binder %q (have %v)", name, BinderNames())
}

// MapperByName returns the registered phase-2 strategy with the name:
// "incremental" (the paper's algorithm, default), "gap" (one global
// GAP over all tasks and elements) or "firstfit" (nearest-first-fit
// baseline).
func MapperByName(name string) (Mapper, error) {
	for _, m := range mappers {
		if m.Name() == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("kairos: unknown mapper %q (have %v)", name, MapperNames())
}

// RouterByName returns the registered phase-3 strategy with the name:
// "bfs" (default) or "dijkstra".
func RouterByName(name string) (Router, error) {
	for _, r := range routers {
		if r.Name() == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("kairos: unknown router %q (have %v)", name, RouterNames())
}

// ReplannerByName returns the registered offline replanner with the
// name: "lns" (the budgeted large-neighborhood search, default). The
// returned strategy carries its default parameters; use
// SeededReplanner to derive a seeded instance.
func ReplannerByName(name string) (Replanner, error) {
	for _, r := range replanners {
		if r.Name() == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("kairos: unknown replanner %q (have %v)", name, ReplannerNames())
}

// SeededReplanner returns the registered replanner with the name,
// seeded: for strategies whose search is randomized (the LNS
// neighborhood sampler), equal seeds give byte-identical passes.
func SeededReplanner(name string, seed int64) (Replanner, error) {
	r, err := ReplannerByName(name)
	if err != nil {
		return nil, err
	}
	if l, ok := r.(replan.LNS); ok {
		l.Seed = seed
		return l, nil
	}
	return r, nil
}

// ValidatorByName returns the registered phase-4 strategy with the
// name: "sdf" (the SDF throughput analysis, default) or "none" (the
// no-op validator: accept every layout without building a model).
func ValidatorByName(name string) (Validator, error) {
	for _, v := range validators {
		if v.Name() == name {
			return v, nil
		}
	}
	return nil, fmt.Errorf("kairos: unknown validator %q (have %v)", name, ValidatorNames())
}

// named is the common shape of the strategy interfaces.
type named interface{ Name() string }

func names[T named](reg []T) []string {
	out := make([]string, len(reg))
	for i, s := range reg {
		out[i] = s.Name()
	}
	sort.Strings(out[1:]) // keep the default first, the rest sorted
	return out
}

// BinderNames lists the registered binder names, default first.
func BinderNames() []string { return names(binders) }

// MapperNames lists the registered mapper names, default first.
func MapperNames() []string { return names(mappers) }

// RouterNames lists the registered router names, default first.
func RouterNames() []string { return names(routers) }

// ValidatorNames lists the registered validator names, default first.
func ValidatorNames() []string { return names(validators) }

// ReplannerNames lists the registered replanner names, default first.
func ReplannerNames() []string { return names(replanners) }
