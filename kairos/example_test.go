package kairos_test

import (
	"context"
	"fmt"
	"log"

	"repro/kairos"
)

// twoStage builds a minimal two-task streaming application.
func twoStage(name string) *kairos.Application {
	app := kairos.NewApplication(name)
	a := app.AddTask("produce", kairos.Internal, kairos.Implementation{
		Name: "produce-dsp", Target: kairos.TypeDSP,
		Requires: kairos.Resources(50, 16, 0, 0), Cost: 1, ExecTime: 4,
	})
	b := app.AddTask("consume", kairos.Internal, kairos.Implementation{
		Name: "consume-dsp", Target: kairos.TypeDSP,
		Requires: kairos.Resources(50, 16, 0, 0), Cost: 1, ExecTime: 4,
	})
	app.AddChannelRated(a, b, 1, 1, 2)
	return app
}

// ExampleNew admits an application through the four-phase workflow on
// a small mesh and inspects the resulting execution layout — the
// smallest end-to-end use of the public API.
func ExampleNew() {
	p := kairos.MeshWithIO(3, 3, kairos.DefaultVCs)
	k := kairos.New(p,
		kairos.WithWeights(kairos.WeightsBoth),
		kairos.WithoutValidation(),
	)

	adm, err := k.Admit(context.Background(), twoStage("demo"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("admitted as", adm.Instance)
	for _, t := range adm.App.Tasks {
		fmt.Printf("%s runs on %s\n", t.Name, p.Element(adm.Assignment[t.ID]).Name)
	}
	if err := k.Release(adm.Instance); err != nil {
		log.Fatal(err)
	}
	fmt.Println("live admissions:", len(k.Admitted()))
	// Output:
	// admitted as demo#1
	// produce runs on dsp2-0
	// consume runs on dsp1-0
	// live admissions: 0
}

// ExampleManager_Subscribe drives an application through its whole
// lifecycle — admit, readmit, release — and prints the typed events
// the manager publishes. Events are delivered outside the manager
// lock, so a subscriber may call back into the manager.
func ExampleManager_Subscribe() {
	ctx := context.Background()
	k := kairos.New(kairos.Mesh(3, 3, kairos.DefaultVCs),
		kairos.WithWeights(kairos.WeightsBoth),
		kairos.WithoutValidation(),
	)
	events, cancel := k.Subscribe()
	defer cancel()

	adm, err := k.Admit(ctx, twoStage("app"))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := k.Readmit(ctx, adm.Instance); err != nil {
		log.Fatal(err)
	}
	k.ReleaseAll()

	for i := 0; i < 4; i++ {
		switch e := (<-events).(type) {
		case kairos.Admitted:
			fmt.Println("admitted", e.Adm.Instance)
		case kairos.Evicted:
			fmt.Printf("evicted %s (%v)\n", e.Adm.Instance, e.Reason)
		case kairos.Released:
			fmt.Println("released", e.Instance)
		case kairos.ReadmitFailed:
			fmt.Println("readmit failed for", e.Instance)
		}
	}
	// Output:
	// admitted app#1
	// evicted app#1 (readmit)
	// admitted app#2
	// released app#2
}
