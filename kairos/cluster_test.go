package kairos_test

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/kairos"
)

// meshFactory returns a homogeneous shard factory.
func meshFactory(w, h int) func(int) *kairos.Platform {
	return func(int) *kairos.Platform { return kairos.Mesh(w, h, kairos.DefaultVCs) }
}

func mustCluster(t *testing.T, shards int, factory func(int) *kairos.Platform, opts ...kairos.ClusterOption) *kairos.Cluster {
	t.Helper()
	c, err := kairos.NewCluster(shards, factory, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterAdmitRelease(t *testing.T) {
	c := mustCluster(t, 4, meshFactory(4, 4))
	if c.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", c.NumShards())
	}

	adm, err := c.Admit(context.Background(), chain("one", 3, 60))
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if adm.Shard < 0 || adm.Shard >= 4 {
		t.Fatalf("Shard = %d out of range", adm.Shard)
	}
	want := fmt.Sprintf("s%d:%s", adm.Shard, adm.Adm.Instance)
	if adm.Instance != want {
		t.Errorf("Instance = %q, want %q", adm.Instance, want)
	}
	if adm.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (uncontended cluster)", adm.Attempts)
	}

	cs := c.Stats()
	if cs.Total.Live != 1 || cs.Total.Admitted != 1 {
		t.Errorf("Stats.Total live=%d admitted=%d, want 1/1", cs.Total.Live, cs.Total.Admitted)
	}
	if got := cs.Shards[adm.Shard].Live; got != 1 {
		t.Errorf("shard %d live = %d, want 1", adm.Shard, got)
	}

	if err := c.Release(adm.Instance); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if cs := c.Stats(); cs.Total.Live != 0 || cs.Total.Released != 1 {
		t.Errorf("after release: live=%d released=%d, want 0/1", cs.Total.Live, cs.Total.Released)
	}

	// Malformed and unknown cluster instance names.
	for _, bad := range []string{"", "one#1", "s9:one#1", "sX:one#1", "s1"} {
		if err := c.Release(bad); !errors.Is(err, kairos.ErrUnknownInstance) {
			t.Errorf("Release(%q) = %v, want ErrUnknownInstance", bad, err)
		}
	}
}

// TestClusterParallelAdmissionStress is the acceptance-criteria
// stress: 16 shards admitting in parallel from many goroutines under
// -race, with a live merged subscription, then a clean drain.
func TestClusterParallelAdmissionStress(t *testing.T) {
	const shards = 16
	c := mustCluster(t, shards, meshFactory(4, 4),
		kairos.WithShardOptions(kairos.WithoutValidation()))

	events, cancel := c.Subscribe()
	defer cancel()
	var drained sync.WaitGroup
	drained.Add(1)
	var seen atomic.Uint64
	go func() {
		defer drained.Done()
		for range events {
			seen.Add(1)
		}
	}()

	const workers = 32
	var wg sync.WaitGroup
	var admitted, rejected int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []string
			for i := 0; i < 12; i++ {
				adm, err := c.Admit(context.Background(), chain(fmt.Sprintf("w%d", w), 3, 60))
				if err != nil {
					mu.Lock()
					rejected++
					mu.Unlock()
					continue
				}
				mu.Lock()
				admitted++
				mu.Unlock()
				mine = append(mine, adm.Instance)
				if rng.Intn(2) == 0 {
					last := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if err := c.Release(last); err != nil {
						t.Errorf("Release(%s): %v", last, err)
					}
				}
			}
			for _, inst := range mine {
				if err := c.Release(inst); err != nil {
					t.Errorf("Release(%s): %v", inst, err)
				}
			}
		}(w)
	}
	wg.Wait()

	cs := c.Stats()
	if cs.Total.Admitted != admitted || cs.Total.Rejected != rejected {
		t.Errorf("Stats admitted=%d rejected=%d, workers saw %d/%d",
			cs.Total.Admitted, cs.Total.Rejected, admitted, rejected)
	}
	if cs.Total.Live != 0 {
		t.Errorf("Live = %d after full release, want 0", cs.Total.Live)
	}
	if admitted == 0 {
		t.Error("stress admitted nothing; the scenario is vacuous")
	}
	for i := 0; i < shards; i++ {
		if n := len(c.Shard(i).Admitted()); n != 0 {
			t.Errorf("shard %d still has %d admissions", i, n)
		}
	}
	// Every admission was released, so 2×admitted events exist; wait
	// for each to be delivered or counted as dropped before cancelling
	// (cancel discards whatever is still queued on the shard side).
	want := 2 * uint64(admitted)
	deadline := time.Now().Add(10 * time.Second)
	for seen.Load()+c.Dropped() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := seen.Load() + c.Dropped(); got < want {
		t.Errorf("merged stream saw %d events (incl. dropped) for %d admissions+releases", got, want)
	}
	cancel()
	drained.Wait()
}

// TestClusterPlacementDeterministic: for a fixed cluster seed and a
// single caller, every placement policy picks the identical shard
// sequence across two fresh clusters.
func TestClusterPlacementDeterministic(t *testing.T) {
	for _, name := range kairos.PlacementNames() {
		pol, err := kairos.PlacementByName(name)
		if err != nil {
			t.Fatal(err)
		}
		run := func() []int {
			c := mustCluster(t, 8, meshFactory(3, 3),
				kairos.WithPlacement(pol), kairos.WithClusterSeed(7),
				kairos.WithShardOptions(kairos.WithoutValidation()))
			var shardSeq []int
			for i := 0; i < 24; i++ {
				adm, err := c.Admit(context.Background(), chain(fmt.Sprintf("d%d", i), 2, 70))
				if err != nil {
					shardSeq = append(shardSeq, -1)
					continue
				}
				shardSeq = append(shardSeq, adm.Shard)
			}
			return shardSeq
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: admission %d placed on shard %d vs %d across identical runs",
					name, i, a[i], b[i])
			}
		}
	}
}

// TestClusterSpillOver: first-fit tries shards in index order, so an
// application too large for shard 0 spills to shard 1; a spill limit
// of 1 turns that into a rejection that still matches ErrRejected.
func TestClusterSpillOver(t *testing.T) {
	// Shard 0 is a 2×2 mesh (4 DSPs), shards 1+ are 4×4: five tasks at
	// 80% need five elements and cannot fit shard 0.
	factory := func(shard int) *kairos.Platform {
		if shard == 0 {
			return kairos.Mesh(2, 2, kairos.DefaultVCs)
		}
		return kairos.Mesh(4, 4, kairos.DefaultVCs)
	}
	big := chain("big", 5, 80)

	c := mustCluster(t, 3, factory, kairos.WithPlacement(kairos.PlacementFirstFit))
	adm, err := c.Admit(context.Background(), big)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if adm.Shard != 1 || adm.Attempts != 2 {
		t.Errorf("spill landed on shard %d after %d attempts, want shard 1 after 2", adm.Shard, adm.Attempts)
	}

	// Small apps keep packing shard 0 first under first-fit.
	small, err := c.Admit(context.Background(), chain("small", 2, 40))
	if err != nil {
		t.Fatalf("Admit small: %v", err)
	}
	if small.Shard != 0 || small.Attempts != 1 {
		t.Errorf("small app on shard %d after %d attempts, want shard 0 first try", small.Shard, small.Attempts)
	}

	// With the spill-over capped at the primary shard, the big app is
	// rejected outright — and the error still matches the sentinels.
	capped := mustCluster(t, 3, factory,
		kairos.WithPlacement(kairos.PlacementFirstFit), kairos.WithSpillLimit(1))
	if _, err := capped.Admit(context.Background(), big); !errors.Is(err, kairos.ErrRejected) {
		t.Errorf("spill-limited Admit = %v, want ErrRejected", err)
	}
}

// TestClusterSpillSurvivesShardTimeout: a shard's own AdmitTimeout
// expiring must NOT stop the spill-over — only the caller's context
// does. With a 1ns per-shard timeout every shard times out, so the
// cluster must report having tried all of them rather than aborting
// after the first.
func TestClusterSpillSurvivesShardTimeout(t *testing.T) {
	c := mustCluster(t, 3, meshFactory(3, 3),
		kairos.WithPlacement(kairos.PlacementFirstFit),
		kairos.WithShardOptions(kairos.WithAdmissionTimeout(time.Nanosecond)))
	_, err := c.Admit(context.Background(), chain("slow", 2, 40))
	if err == nil {
		t.Fatal("1ns shard timeout admitted an app")
	}
	if !strings.Contains(err.Error(), "all 3 shard(s)") {
		t.Errorf("error %q does not show all shards were tried", err)
	}

	// A dead CALLER context does stop the loop immediately.
	live := mustCluster(t, 3, meshFactory(3, 3))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := live.Admit(ctx, chain("cancelled", 2, 40)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Admit = %v, want context.Canceled", err)
	}
}

// TestPlacementPlans unit-tests the three policies' plan order against
// fabricated load vectors.
func TestPlacementPlans(t *testing.T) {
	loads := []kairos.LoadHint{
		{Live: 2, UsedShare: 0.8},
		{Live: 0, UsedShare: 0.1},
		{Live: 5, UsedShare: 0.5},
		{Live: 1, UsedShare: 0.1},
	}
	order := make([]int, len(loads))

	kairos.PlacementFirstFit.Plan(loads, nil, order)
	if fmt.Sprint(order) != "[0 1 2 3]" {
		t.Errorf("first-fit plan = %v, want identity", order)
	}

	kairos.PlacementLeastLoaded.Plan(loads, nil, order)
	// Ascending used share; the 0.1 tie breaks on live count (1 before 3).
	if fmt.Sprint(order) != "[1 3 2 0]" {
		t.Errorf("least-loaded plan = %v, want [1 3 2 0]", order)
	}

	// Power-of-two: with a fixed stream, the sampled pair is fixed; the
	// primary is the less loaded of the two and the tail is ascending.
	rng := rand.New(rand.NewSource(3))
	a, b := rng.Intn(4), rng.Intn(3)
	if b >= a {
		b++
	}
	rng = rand.New(rand.NewSource(3))
	kairos.PlacementPowerOfTwo.Plan(loads, rng, order)
	first, second := order[0], order[1]
	if !(first == a && second == b || first == b && second == a) {
		t.Errorf("power-of-two sampled (%d,%d), plan starts (%d,%d)", a, b, first, second)
	}
	if loads[first].UsedShare > loads[second].UsedShare {
		t.Errorf("power-of-two primary %d is more loaded than loser %d", first, second)
	}
	seen := map[int]bool{}
	for _, s := range order {
		seen[s] = true
	}
	if len(seen) != len(loads) {
		t.Errorf("plan %v is not a permutation", order)
	}

	// One-shard degenerate case.
	one := make([]int, 1)
	kairos.PlacementPowerOfTwo.Plan(loads[:1], rand.New(rand.NewSource(1)), one)
	if one[0] != 0 {
		t.Errorf("single-shard plan = %v", one)
	}
}

func TestClusterAdmitAll(t *testing.T) {
	c := mustCluster(t, 4, meshFactory(4, 4),
		kairos.WithShardOptions(kairos.WithoutValidation()))
	apps := []*kairos.Application{
		chain("small", 2, 40),
		nil,
		chain("large", 6, 40),
	}
	results := c.AdmitAll(context.Background(), apps)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
	}
	if !errors.Is(results[1].Err, kairos.ErrNilApplication) {
		t.Errorf("nil app error = %v", results[1].Err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("admissions failed: %v, %v", results[0].Err, results[2].Err)
	}
	if cs := c.Stats(); cs.Total.Live != 2 {
		t.Errorf("Live = %d, want 2", cs.Total.Live)
	}
	c.ReleaseAll()
	if cs := c.Stats(); cs.Total.Live != 0 {
		t.Errorf("Live after ReleaseAll = %d, want 0", cs.Total.Live)
	}
}

func TestClusterReadmitAndEvents(t *testing.T) {
	c := mustCluster(t, 2, meshFactory(4, 4),
		kairos.WithShardOptions(kairos.WithoutValidation()))
	events, cancel := c.Subscribe()
	defer cancel()

	adm, err := c.Admit(context.Background(), chain("ra", 3, 60))
	if err != nil {
		t.Fatal(err)
	}
	next := func() kairos.ShardEvent {
		t.Helper()
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("merged event stream closed early")
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for a merged event")
			panic("unreachable")
		}
	}
	ev := next()
	if _, isAdmit := ev.Event.(kairos.Admitted); !isAdmit || ev.Shard != adm.Shard {
		t.Fatalf("first event = %T on shard %d, want Admitted on %d", ev.Event, ev.Shard, adm.Shard)
	}

	re, err := c.Readmit(context.Background(), adm.Instance)
	if err != nil {
		t.Fatalf("Readmit: %v", err)
	}
	if re.Shard != adm.Shard {
		t.Errorf("readmission moved shards %d→%d; applications must stay on their shard", adm.Shard, re.Shard)
	}
	if re.Instance == adm.Instance {
		t.Errorf("readmission kept instance name %q", re.Instance)
	}
	// Successful readmit publishes Evicted(readmit) then Admitted.
	if ev := next(); ev.Shard != adm.Shard {
		t.Errorf("readmit event on shard %d, want %d", ev.Shard, adm.Shard)
	}
	next()

	// Fault the element hosting the first task; the sweep must find
	// and restart (or restore) the admission.
	p := c.Shard(re.Shard).Platform()
	p.DisableElement(re.Adm.Assignment[0])
	swept := c.ReadmitAffected(context.Background())
	p.EnableElement(re.Adm.Assignment[0])
	if len(swept) != 1 {
		t.Fatalf("ReadmitAffected returned %d results, want 1", len(swept))
	}
	if swept[0].Shard != re.Shard || swept[0].Instance != re.Adm.Instance {
		t.Errorf("sweep hit shard %d instance %q, want %d %q",
			swept[0].Shard, swept[0].Instance, re.Shard, re.Adm.Instance)
	}
	if swept[0].Outcome == kairos.ReadmitEvicted {
		t.Errorf("sweep evicted the app: %v", swept[0].Err)
	}

	cancel()
	for range events { // drains and observes close
	}
}

// TestClusterFlags covers RegisterClusterFlags: defaults, resolution,
// and rejection of unknown placement names and bad shard counts.
func TestClusterFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := kairos.RegisterClusterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Shards != 4 || f.Placement != kairos.PlacementNames()[0] || f.Spill != 0 {
		t.Errorf("defaults = %+v, want 4 shards, %q placement, 0 spill", f, kairos.PlacementNames()[0])
	}
	opts, err := f.Options()
	if err != nil || len(opts) != 2 {
		t.Fatalf("Options() = %d opts, %v", len(opts), err)
	}
	c, err := kairos.NewCluster(f.Shards, meshFactory(3, 3), opts...)
	if err != nil || c.NumShards() != 4 {
		t.Fatalf("NewCluster from flags: %v", err)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	f = kairos.RegisterClusterFlags(fs)
	if err := fs.Parse([]string{"-placement", "nope"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Options(); err == nil {
		t.Error("Options() accepted unknown placement name")
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	f = kairos.RegisterClusterFlags(fs)
	if err := fs.Parse([]string{"-shards", "0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Options(); err == nil {
		t.Error("Options() accepted zero shards")
	}
}

// TestNewClusterErrors pins the constructor's validation.
func TestNewClusterErrors(t *testing.T) {
	if _, err := kairos.NewCluster(0, meshFactory(2, 2)); err == nil {
		t.Error("NewCluster(0, ...) succeeded")
	}
	if _, err := kairos.NewCluster(2, nil); err == nil {
		t.Error("NewCluster(nil factory) succeeded")
	}
	if _, err := kairos.NewCluster(2, func(int) *kairos.Platform { return nil }); err == nil {
		t.Error("NewCluster with nil-returning factory succeeded")
	}
}

// TestClusterAdmitAllCancelled checks a cancelled batch is abandoned
// rather than pushed through the shards: before the fix every
// remaining entry still called Admit, took a shard lock, and counted
// one spurious Cancelled per leftover app, inflating the stats with
// attempts the caller had already walked away from.
func TestClusterAdmitAllCancelled(t *testing.T) {
	c := mustCluster(t, 4, meshFactory(4, 4),
		kairos.WithShardOptions(kairos.WithoutValidation()))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	apps := []*kairos.Application{
		chain("a", 2, 40), chain("b", 3, 40), chain("c", 4, 40), nil,
	}
	results := c.AdmitAll(ctx, apps)
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for i, r := range results {
		if i == 3 {
			if !errors.Is(r.Err, kairos.ErrNilApplication) {
				t.Errorf("nil entry error = %v", r.Err)
			}
			continue
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("entry %d: err = %v, want context.Canceled", i, r.Err)
		}
		if r.Adm != nil {
			t.Errorf("entry %d admitted despite cancelled batch", i)
		}
	}
	// Nothing reached a shard: no attempts, and in particular no
	// per-app Cancelled inflation.
	if cs := c.Stats(); cs.Total.Attempts != 0 || cs.Total.Cancelled != 0 {
		t.Errorf("abandoned batch touched shards: attempts=%d cancelled=%d, want 0/0",
			cs.Total.Attempts, cs.Total.Cancelled)
	}
}

// TestClusterInstanceNameRoundTrip pins resolve to exactly the names
// ClusterInstanceName issues. Non-canonical spellings of a valid shard
// index ("s007:", "s+7:") must not alias it: under a plain Atoi they
// resolve, handing out admission handles the cluster never issued.
func TestClusterInstanceNameRoundTrip(t *testing.T) {
	c := mustCluster(t, 8, meshFactory(4, 4),
		kairos.WithShardOptions(kairos.WithoutValidation()))
	adm, err := c.Admit(context.Background(), chain("video", 3, 40))
	if err != nil {
		t.Fatal(err)
	}

	// Locals with colons and '#' must round-trip: resolve splits on
	// the FIRST colon only.
	locals := []string{"video#1", "a:b#2", "::", "", "s3:x#4"}
	for shard := 0; shard < 8; shard++ {
		for _, local := range locals {
			name := kairos.ClusterInstanceName(shard, local)
			err := c.Release(name)
			if name == adm.Instance {
				if err != nil {
					t.Errorf("release of issued name %q failed: %v", name, err)
				}
				continue
			}
			// The name parses; the shard just doesn't know the local
			// instance. A parse failure would blame the whole name.
			if !errors.Is(err, kairos.ErrUnknownInstance) {
				t.Errorf("Release(%q) = %v, want ErrUnknownInstance", name, err)
			}
			if err != nil && strings.Contains(err.Error(), "not a cluster instance name") {
				t.Errorf("canonical name %q failed to parse: %v", name, err)
			}
		}
	}

	// Malformed and non-canonical names must be rejected as names —
	// even when the aliased index ("7") is a live shard.
	bad := []string{
		"s007:video#1", "s+7:video#1", "s-1:video#1", "s 7:video#1",
		"s7.0:video#1", "s8:video#1", "s99:video#1", "07:video#1",
		"s:video#1", "video#1", "s7video#1", "S7:video#1", "s0x1:video#1",
	}
	for _, name := range bad {
		err := c.Release(name)
		if err == nil {
			t.Errorf("Release(%q) succeeded; non-canonical name resolved", name)
			continue
		}
		if !strings.Contains(err.Error(), "not a cluster instance name") {
			t.Errorf("Release(%q) = %v, want name rejection", name, err)
		}
	}
}
