package kairos_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/replan"
	"repro/kairos"
)

// replanClusterOptions configures every shard with a deterministic
// replanner alongside the usual fast-test options.
func replanClusterOptions() kairos.ClusterOption {
	return kairos.WithShardOptions(
		kairos.WithoutValidation(),
		kairos.WithReplanner(replan.LNS{Seed: 1}),
		kairos.WithReplanBudget(32),
	)
}

func TestClusterReplan(t *testing.T) {
	ctx := context.Background()
	c := mustCluster(t, 3, meshFactory(4, 4), replanClusterOptions())

	// Fill every shard, then thin out to leave fragmentation.
	var admitted []string
	for i := 0; i < 18; i++ {
		adm, err := c.Admit(ctx, chain(fmt.Sprintf("app%d", i), 3, 30))
		if err == nil {
			admitted = append(admitted, adm.Instance)
		}
	}
	if len(admitted) < 6 {
		t.Fatalf("only %d admissions landed", len(admitted))
	}
	for i := 0; i < len(admitted); i += 2 {
		if err := c.Release(admitted[i]); err != nil {
			t.Fatalf("release %s: %v", admitted[i], err)
		}
	}

	results, err := c.Replan(ctx)
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("replan covered %d shards, want 3", len(results))
	}
	moves := 0
	for _, r := range results {
		if r.Shard < 0 || r.Shard >= 3 {
			t.Errorf("bad shard index %d", r.Shard)
		}
		if r.CostAfter > r.CostBefore+1e-9 {
			t.Errorf("shard %d: pass worsened the composite: %v -> %v", r.Shard, r.CostBefore, r.CostAfter)
		}
		// Every committed move's new name must be live on its shard
		// under the cluster-scoped rename, and the old one gone.
		sh := c.Shard(r.Shard)
		for _, m := range r.Moves {
			adm := sh.Admitted()
			if _, ok := adm[m.To]; !ok {
				t.Errorf("shard %d: moved-to instance %s not live", r.Shard, m.To)
			}
			if _, ok := adm[m.From]; ok {
				t.Errorf("shard %d: moved-from instance %s still live", r.Shard, m.From)
			}
			if err := c.Release(kairos.ClusterInstanceName(r.Shard, m.From)); err == nil {
				t.Errorf("shard %d: releasing the stale name %s succeeded", r.Shard, m.From)
			}
		}
		moves += len(r.Moves)
	}
	if total := c.Stats().Total; int(total.ReplanMoves) != moves {
		t.Errorf("aggregate ReplanMoves = %d, want %d", total.ReplanMoves, moves)
	}
}

func TestClusterReplanWithoutReplanner(t *testing.T) {
	c := mustCluster(t, 2, meshFactory(4, 4),
		kairos.WithShardOptions(kairos.WithoutValidation()))
	if _, err := c.Replan(context.Background()); err == nil {
		t.Fatal("Replan without a replanner must fail")
	}
}

// TestClusterChurnReplanStress races admissions and releases against
// repeated replanning passes; run with -race it is the memory-safety
// gate for the replan path, and its bookkeeping asserts renamed
// instances stay resolvable. Workers tolerate ErrUnknownInstance on
// release — a pass may have renamed their instance in between — and
// the final sweep resolves every tracked name through the rename
// chains.
func TestClusterChurnReplanStress(t *testing.T) {
	ctx := context.Background()
	c := mustCluster(t, 2, meshFactory(4, 4), replanClusterOptions())

	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []string
			for i := 0; i < 30; i++ {
				if adm, err := c.Admit(ctx, chain(fmt.Sprintf("w%d", w), 2, 20)); err == nil {
					mine = append(mine, adm.Instance)
				}
				if len(mine) > 0 && rng.Intn(2) == 0 {
					name := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					// ErrUnknownInstance means a replan pass renamed it;
					// the final sweep below picks it up.
					_ = c.Release(name)
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			if _, err := c.ReplanWithBudget(ctx, 8); err != nil {
				t.Errorf("replan pass %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	// Whatever survived must be fully releasable under its current
	// name, and the books must balance.
	for shard := 0; shard < 2; shard++ {
		for name := range c.Shard(shard).Admitted() {
			if err := c.Release(kairos.ClusterInstanceName(shard, name)); err != nil {
				t.Errorf("release of live instance %s: %v", name, err)
			}
		}
	}
	total := c.Stats().Total
	if total.Live != 0 {
		t.Errorf("%d instances remain after releasing everything", total.Live)
	}
}
