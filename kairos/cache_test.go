package kairos_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/appgen"
	"repro/kairos"
)

// TestLayoutCacheLockstep is the cache correctness property test: a
// cached manager and an uncached twin walk the same deterministic op
// sequence, and after every single op their durable state must be
// byte-identical under the WAL's canonical encoding. Since the twin
// always runs the full four-phase workflow, any byte of divergence
// means a cache hit committed a layout the workflow would not have
// produced. The sequence forces hits (repeated admit/release of one
// app), misses (fresh generator shapes), and an invalidation epoch
// (a fault flip, which must flush the cache).
func TestLayoutCacheLockstep(t *testing.T) {
	ctx := context.Background()
	opts := []kairos.Option{kairos.WithWeights(kairos.WeightsBoth)}
	plain := kairos.New(kairos.Mesh(4, 4, kairos.DefaultVCs), opts...)
	cached := kairos.New(kairos.Mesh(4, 4, kairos.DefaultVCs),
		append([]kairos.Option{kairos.WithLayoutCache(8)}, opts...)...)

	step := 0
	check := func(what string) {
		t.Helper()
		step++
		if got, want := stateBytes(t, cached), stateBytes(t, plain); !bytes.Equal(got, want) {
			t.Fatalf("step %d (%s): cached manager state diverged from full-workflow twin", step, what)
		}
	}
	admitBoth := func(app *kairos.Application) (string, bool) {
		t.Helper()
		admC, errC := cached.Admit(ctx, app)
		admP, errP := plain.Admit(ctx, app)
		if (errC == nil) != (errP == nil) {
			t.Fatalf("admit %s: cached err %v, plain err %v", app.Name, errC, errP)
		}
		check("admit " + app.Name)
		if errC != nil {
			return "", false
		}
		if admC.Instance != admP.Instance {
			t.Fatalf("admit %s: cached instance %q, plain %q", app.Name, admC.Instance, admP.Instance)
		}
		return admC.Instance, true
	}
	releaseBoth := func(instance string) {
		t.Helper()
		if err := cached.Release(instance); err != nil {
			t.Fatalf("cached release %s: %v", instance, err)
		}
		if err := plain.Release(instance); err != nil {
			t.Fatalf("plain release %s: %v", instance, err)
		}
		check("release " + instance)
	}

	// Repeated shape: the first admit is a miss, every later one (the
	// platform is back in the same state after each release) a hit.
	pipe := chain("pipe", 3, 40)
	for round := 0; round < 4; round++ {
		if inst, ok := admitBoth(pipe); ok {
			releaseBoth(inst)
		} else {
			t.Fatalf("round %d: pipe rejected", round)
		}
	}

	// Fresh shapes from the generator: misses, including rejections
	// (both sides must reject identically), with a few left resident
	// so later hits replay onto a non-empty platform.
	gen := appgen.New(appgen.NewConfig(appgen.Communication, appgen.Small), 7)
	var resident []string
	for i := 0; i < 6; i++ {
		if inst, ok := admitBoth(gen.Next()); ok {
			resident = append(resident, inst)
		}
	}

	// Hits against the now-partially-loaded platform.
	if inst, ok := admitBoth(pipe); ok {
		releaseBoth(inst)
	}
	if inst, ok := admitBoth(pipe); ok {
		releaseBoth(inst)
	}

	// A fault transition starts a new epoch: the cached manager must
	// flush, and post-fault admissions must still track the twin.
	for _, m := range []*kairos.Manager{cached, plain} {
		if err := m.SetElementEnabled(5, false); err != nil {
			t.Fatalf("disable element: %v", err)
		}
	}
	check("disable element 5")
	if inst, ok := admitBoth(pipe); ok {
		releaseBoth(inst)
	}
	if inst, ok := admitBoth(pipe); ok {
		releaseBoth(inst)
	}
	for _, m := range []*kairos.Manager{cached, plain} {
		if err := m.SetElementEnabled(5, true); err != nil {
			t.Fatalf("re-enable element: %v", err)
		}
	}
	check("re-enable element 5")

	for _, inst := range resident {
		releaseBoth(inst)
	}

	cs, ps := cached.Stats(), plain.Stats()
	if cs.CacheHits == 0 {
		t.Fatal("cached manager recorded zero cache hits; the test never exercised the fast path")
	}
	if cs.CacheMisses == 0 {
		t.Fatal("cached manager recorded zero cache misses")
	}
	if cs.Attempts != ps.Attempts || cs.Admitted != ps.Admitted || cs.Rejected != ps.Rejected {
		t.Fatalf("attempt accounting diverged: cached %+v, plain %+v", cs, ps)
	}
	if ps.CacheHits != 0 || ps.CacheMisses != 0 || ps.CacheFallbacks != 0 {
		t.Fatalf("uncached manager reported cache traffic: %+v", ps)
	}
}

// TestLayoutCacheCounters pins the exact hit/miss accounting for a
// scripted sequence, including the flush on a fault transition.
func TestLayoutCacheCounters(t *testing.T) {
	ctx := context.Background()
	m := kairos.New(kairos.Mesh(4, 4, kairos.DefaultVCs),
		kairos.WithLayoutCache(8), kairos.WithWeights(kairos.WeightsBoth))
	app := chain("rpt", 3, 40)

	admit := func() string {
		t.Helper()
		adm, err := m.Admit(ctx, app)
		if err != nil {
			t.Fatalf("admit: %v", err)
		}
		return adm.Instance
	}

	// miss, then two hits: release restores the exact platform sketch.
	m.Release(admit())
	m.Release(admit())
	inst := admit()
	if s := m.Stats(); s.CacheHits != 2 || s.CacheMisses != 1 || s.CacheFallbacks != 0 {
		t.Fatalf("after 3 admits: hits=%d misses=%d fallbacks=%d, want 2/1/0",
			s.CacheHits, s.CacheMisses, s.CacheFallbacks)
	}

	// With rpt#3 resident the sketch differs: a miss, and a second
	// entry for the loaded-platform state.
	m.Release(admit())
	admit2 := func() { m.Release(admit()) }
	admit2()
	if s := m.Stats(); s.CacheHits != 3 || s.CacheMisses != 2 {
		t.Fatalf("after resident-state admits: hits=%d misses=%d, want 3/2",
			s.CacheHits, s.CacheMisses)
	}
	if err := m.Release(inst); err != nil {
		t.Fatalf("release: %v", err)
	}

	// A fault flip flushes everything: the next admit of the very same
	// shape on the restored platform must miss again.
	if err := m.SetElementEnabled(0, false); err != nil {
		t.Fatal(err)
	}
	if err := m.SetElementEnabled(0, true); err != nil {
		t.Fatal(err)
	}
	m.Release(admit())
	if s := m.Stats(); s.CacheHits != 3 || s.CacheMisses != 3 {
		t.Fatalf("after fault-flip flush: hits=%d misses=%d, want 3/3",
			s.CacheHits, s.CacheMisses)
	}
}

// TestLayoutCacheEviction fills a capacity-1 cache with alternating
// shapes; every admit after the first pair must evict the other entry,
// so the sequence stays correct (lockstep-checked) while never hitting.
func TestLayoutCacheEviction(t *testing.T) {
	ctx := context.Background()
	m := kairos.New(kairos.Mesh(4, 4, kairos.DefaultVCs),
		kairos.WithLayoutCache(1), kairos.WithWeights(kairos.WeightsBoth))
	a, b := chain("a", 2, 30), chain("b", 3, 40)
	for i := 0; i < 3; i++ {
		for _, app := range []*kairos.Application{a, b} {
			adm, err := m.Admit(ctx, app)
			if err != nil {
				t.Fatalf("admit %s: %v", app.Name, err)
			}
			if err := m.Release(adm.Instance); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := m.Stats()
	if s.CacheHits != 0 {
		t.Fatalf("capacity-1 cache with alternating shapes hit %d times", s.CacheHits)
	}
	if s.CacheMisses != 6 {
		t.Fatalf("misses = %d, want 6", s.CacheMisses)
	}
}

// TestLayoutCacheInstanceNames verifies cached commits keep consuming
// sequence numbers: instance names from hits and misses interleave
// into the exact series the uncached engine would issue.
func TestLayoutCacheInstanceNames(t *testing.T) {
	ctx := context.Background()
	m := kairos.New(kairos.Mesh(4, 4, kairos.DefaultVCs),
		kairos.WithLayoutCache(4), kairos.WithWeights(kairos.WeightsBoth))
	app := chain("seq", 2, 30)
	for i := 1; i <= 5; i++ {
		adm, err := m.Admit(ctx, app)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if want := fmt.Sprintf("seq#%d", i); adm.Instance != want {
			t.Fatalf("admit %d: instance %q, want %q", i, adm.Instance, want)
		}
		if err := m.Release(adm.Instance); err != nil {
			t.Fatal(err)
		}
	}
	if s := m.Stats(); s.CacheHits != 4 {
		t.Fatalf("hits = %d, want 4", s.CacheHits)
	}
}
