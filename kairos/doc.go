// Package kairos is the public, stable surface of the Kairos run-time
// spatial resource manager — a from-scratch Go reproduction of ter
// Braak et al., "Run-time Spatial Resource Management for Real-Time
// Applications on Heterogeneous MPSoCs" (DATE 2010), grown toward a
// production-scale admission service.
//
// A Manager owns the allocation state of a Platform and admits
// Applications through the paper's four-phase workflow — binding,
// mapping, routing, validation — rolling back on rejection, releasing
// and readmitting at run time. Construct one with New and functional
// options:
//
//	p := kairos.CRISP()
//	k := kairos.New(p,
//		kairos.WithWeights(kairos.WeightsBoth),
//		kairos.WithRouter(kairos.RouterDijkstra),
//		kairos.WithAdmissionTimeout(50*time.Millisecond),
//	)
//	adm, err := k.Admit(ctx, app)
//
// # Strategy seams
//
// Each workflow phase is an interface — Binder, Mapper, Router,
// Validator — with the paper's algorithm as the default and at least
// one alternate registered by name (BinderByName, MapperByName,
// RouterByName, ValidatorByName), so experiments swap a single phase
// without forking the engine:
//
//	m, _ := kairos.MapperByName("gap") // one-shot global GAP instead of the incremental mapper
//	k := kairos.New(p, kairos.WithMapper(m))
//
// # Events
//
// Lifecycle transitions stream to subscribers as typed events
// (Admitted, Released, Evicted, ReadmitFailed) over bounded channels,
// delivered outside the manager lock — a subscriber may call back
// into the manager from its handler without deadlocking:
//
//	events, cancel := k.Subscribe()
//	defer cancel()
//
// # Errors
//
// Rejections carry a *PhaseError and match the typed sentinels under
// errors.Is: ErrRejected for any phase rejection, narrowed by
// ErrNoImplementation (binding), ErrUnroutable (routing) and
// ErrConstraintViolated (validation). Cancelled admissions match
// context.Canceled / context.DeadlineExceeded and leave the
// allocation state untouched.
//
// # Performance
//
// The admission hot path (bind → map → route → validate) reuses
// pooled scratch state throughout — visited sets and frontier queues
// in the routers, candidate and score buffers in binding and mapping,
// the GAP solver state, the SDF exploration key buffers — so a warm
// manager admits and releases in a few hundred heap allocations
// total, independent of how many admissions preceded it. The pinned
// benchmark suite in internal/bench (run via cmd/bench) records
// ns/op, B/op, allocs/op and admission throughput per revision as
// BENCH_<sha>.json, and CI rejects changes that regress the suite
// (EXPERIMENTS.md §5). Stats snapshots are taken under the engine
// lock and are safe to read concurrently with admissions.
//
// # Stability
//
// Everything exported here is covered by the API-surface gate
// (testdata/api_golden.txt): changes to the exported surface fail CI
// until the golden file is regenerated deliberately. The internal/...
// packages carry no such promise.
package kairos
