package kairos_test

import (
	"context"
	"fmt"
	"log"

	"repro/kairos"
)

// lowestIDMapper is a custom phase-2 strategy written against the
// public API alone: each task goes to the lowest-ID enabled element
// of its target type that still fits the demand. No assignment
// problem, no cost function — the simplest mapper that satisfies the
// Mapper contract (commit placements under opts.Instance, roll back
// everything on failure).
type lowestIDMapper struct{}

func (lowestIDMapper) Name() string { return "lowest-id" }

func (lowestIDMapper) Map(app *kairos.Application, p *kairos.Platform,
	bind *kairos.Binding, opts kairos.MapperOptions) (*kairos.MapResult, error) {
	assign := make([]int, len(app.Tasks))
	rollback := func(n int) {
		for _, t := range app.Tasks[:n] {
			_ = p.Remove(assign[t.ID], kairos.Occupant{App: opts.Instance, Task: t.ID})
		}
	}
	for i, t := range app.Tasks {
		demand, target := bind.Demand(t.ID), bind.Target(t.ID)
		placed := false
		for _, e := range p.Elements() {
			if !e.Enabled() || e.Type != target || !demand.Fits(e.Pool().Free()) {
				continue
			}
			if fixed := t.FixedElement; fixed != kairos.NoFixedElement && fixed != e.ID {
				continue
			}
			if err := p.Place(e.ID, kairos.Occupant{App: opts.Instance, Task: t.ID}, demand); err != nil {
				continue
			}
			assign[t.ID] = e.ID
			placed = true
			break
		}
		if !placed {
			rollback(i)
			return nil, fmt.Errorf("lowest-id: no element fits task %d (%s)", t.ID, t.Name)
		}
	}
	return &kairos.MapResult{Assignment: assign}, nil
}

// Example_customMapper swaps a hand-written Mapper into the manager
// via WithMapper — the seam related work uses to replace one workflow
// phase while keeping the other three.
func Example_customMapper() {
	k := kairos.New(kairos.Mesh(3, 3, kairos.DefaultVCs),
		kairos.WithMapper(lowestIDMapper{}),
		kairos.WithoutValidation(),
	)
	adm, err := k.Admit(context.Background(), twoStage("custom"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("admitted as", adm.Instance)
	for _, t := range adm.App.Tasks {
		fmt.Printf("%s -> element %d\n", t.Name, adm.Assignment[t.ID])
	}
	// Output:
	// admitted as custom#1
	// produce -> element 0
	// consume -> element 0
}
