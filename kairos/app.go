package kairos

import (
	"repro/internal/graph"
	"repro/internal/mapping"
)

// Application is an annotated task graph: tasks with alternative
// implementations, channels with token rates, and performance
// constraints. Build one with NewApplication and the Application
// methods (AddTask, AddChannel, AddChannelRated), decode one from a
// bundle with AppFromBytes, or generate the paper's case study with
// Beamforming.
type Application = graph.Application

// Task is one task of an Application.
type Task = graph.Task

// Implementation is one way to execute a task: a target element type,
// a resource demand, a base cost and an execution time.
type Implementation = graph.Implementation

// Channel is one directed communication channel between two tasks.
type Channel = graph.Channel

// Constraints are an application's performance requirements.
type Constraints = graph.Constraints

// TaskKind classifies tasks as internal, input or output.
type TaskKind = graph.TaskKind

// The task kinds.
const (
	Internal = graph.Internal
	Input    = graph.Input
	Output   = graph.Output
)

// NoFixedElement marks a task without a pre-determined location.
const NoFixedElement = graph.NoFixedElement

// NewApplication returns an empty application with the given name.
func NewApplication(name string) *Application { return graph.New(name) }

// IsBundle reports whether the bytes look like a Kairos application
// bundle (the binary format of the paper's §III-E, written by
// cmd/appgen).
func IsBundle(data []byte) bool { return graph.IsBundle(data) }

// AppFromBytes decodes an application bundle.
func AppFromBytes(data []byte) (*Application, error) { return graph.FromBytes(data) }

// AppBytes encodes the application as a bundle.
func AppBytes(a *Application) ([]byte, error) { return graph.Bytes(a) }

// BeamformingConfig parameterizes the paper's 53-task beamforming
// case study (§IV-A).
type BeamformingConfig = graph.BeamformingConfig

// DefaultBeamforming returns the case-study configuration with the
// source task fixed to the given element (NoFixedElement to leave it
// free).
func DefaultBeamforming(sourceElement int) BeamformingConfig {
	return graph.DefaultBeamforming(sourceElement)
}

// Beamforming generates the case-study application.
func Beamforming(cfg BeamformingConfig) *Application { return graph.Beamforming(cfg) }

// Weights steers the mapping cost function between its objectives
// (paper §III-D): communication distance, external fragmentation,
// wear leveling and load balancing.
type Weights = mapping.Weights

// The four weight configurations evaluated in the paper (Figs. 8–10).
var (
	WeightsNone          = mapping.WeightsNone
	WeightsCommunication = mapping.WeightsCommunication
	WeightsFragmentation = mapping.WeightsFragmentation
	WeightsBoth          = mapping.WeightsBoth
)

// ParseWeights parses the CLI weight vocabulary: a preset name
// (none, communication, fragmentation, both) or an explicit "C,F"
// pair.
func ParseWeights(s string) (Weights, error) { return mapping.ParseWeights(s) }
