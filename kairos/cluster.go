package kairos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Cluster is a sharded multi-platform resource manager: it owns N
// independent platforms, each behind its own Manager (and therefore
// its own platform-state lock), and places incoming applications
// across them with a pluggable PlacementPolicy, spilling over to the
// next-ranked shards when one rejects. Because no allocation state is
// shared between shards, concurrent admissions on different shards
// proceed fully in parallel — the scale-out step on top of the
// single-platform manager of the paper.
//
// The only cross-shard state is the placement plan: picking a shard
// samples every manager's lock-free load gauge and (for randomized
// policies) the cluster's seeded stream, a critical section of
// microseconds next to the milliseconds of an admission workflow.
//
// Admissions are cluster-scoped: the returned instance names embed the
// shard ("s3:video#7") and Release/Readmit route on that prefix, so a
// Cluster is used exactly like a Manager. For a fixed seed and a
// single caller, shard choice is deterministic (the determinism tests
// pin this).
type Cluster struct {
	shards []*Manager
	policy PlacementPolicy
	spill  int

	// mu guards the rng and the load scratch during planning; the
	// admission workflow itself runs outside it, on the chosen shard's
	// own lock.
	mu    sync.Mutex
	rng   *rand.Rand
	loads []LoadHint

	planPool sync.Pool // *[]int plan scratch, one per in-flight admission

	eventBuffer int
}

// clusterConfig collects the options of NewCluster.
type clusterConfig struct {
	policy      PlacementPolicy
	spill       int
	seed        int64
	shardOpts   []Option
	eventBuffer int
}

// ClusterOption configures a Cluster at construction (see NewCluster).
type ClusterOption func(*clusterConfig)

// WithPlacement swaps the placement policy (default
// PlacementLeastLoaded).
func WithPlacement(p PlacementPolicy) ClusterOption {
	return func(c *clusterConfig) { c.policy = p }
}

// WithSpillLimit caps how many shards one admission may try: the
// primary placement plus spill-1 retries. Zero (the default) tries
// every shard in plan order.
func WithSpillLimit(n int) ClusterOption {
	return func(c *clusterConfig) { c.spill = n }
}

// WithClusterSeed seeds the stream randomized placement policies draw
// from (default 1). Two single-caller clusters with equal seeds,
// policies and workloads make identical shard choices.
func WithClusterSeed(seed int64) ClusterOption {
	return func(c *clusterConfig) { c.seed = seed }
}

// WithShardOptions passes manager options to every shard (weights,
// phase strategies, timeouts, ...).
func WithShardOptions(opts ...Option) ClusterOption {
	return func(c *clusterConfig) { c.shardOpts = append(c.shardOpts, opts...) }
}

// WithClusterEventBuffer sets the merged event channel's capacity
// (default DefaultEventBuffer). Each shard subscription additionally
// buffers per the shard's own WithEventBuffer.
func WithClusterEventBuffer(n int) ClusterOption {
	return func(c *clusterConfig) { c.eventBuffer = n }
}

// NewCluster returns a cluster of `shards` independent platforms, the
// i-th built by platformFor(i) (clone a prototype for homogeneous
// shards, or vary it for a heterogeneous fleet). Each shard's platform
// is owned by its manager from here on.
func NewCluster(shards int, platformFor func(shard int) *Platform, opts ...ClusterOption) (*Cluster, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("kairos: cluster needs at least one shard, got %d", shards)
	}
	if platformFor == nil {
		return nil, errors.New("kairos: nil platform factory")
	}
	cfg := clusterConfig{policy: PlacementLeastLoaded, seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	c := &Cluster{
		policy:      cfg.policy,
		spill:       cfg.spill,
		rng:         rand.New(rand.NewSource(cfg.seed)),
		loads:       make([]LoadHint, shards),
		eventBuffer: cfg.eventBuffer,
	}
	for i := 0; i < shards; i++ {
		p := platformFor(i)
		if p == nil {
			return nil, fmt.Errorf("kairos: platform factory returned nil for shard %d", i)
		}
		c.shards = append(c.shards, New(p, cfg.shardOpts...))
	}
	return c, nil
}

// NumShards returns the number of shards.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Shard returns the i-th shard's manager, e.g. to inject faults into
// its platform or inspect its admissions. The manager is live: what is
// admitted through the cluster shows up here.
func (c *Cluster) Shard(i int) *Manager { return c.shards[i] }

// attempts returns how many shards one admission may try.
func (c *Cluster) attempts() int {
	if c.spill > 0 && c.spill < len(c.shards) {
		return c.spill
	}
	return len(c.shards)
}

// plan samples every shard's load gauge and asks the policy for the
// try order. The returned scratch goes back via putPlan.
func (c *Cluster) plan() *[]int {
	op, ok := c.planPool.Get().(*[]int)
	if !ok {
		s := make([]int, len(c.shards))
		op = &s
	}
	c.mu.Lock()
	for i, m := range c.shards {
		c.loads[i] = m.Load()
	}
	c.policy.Plan(c.loads, c.rng, *op)
	c.mu.Unlock()
	return op
}

func (c *Cluster) putPlan(op *[]int) { c.planPool.Put(op) }

// ClusterAdmission is one admission placed by the cluster.
type ClusterAdmission struct {
	// Shard is the index of the shard that admitted the application.
	Shard int
	// Instance is the cluster-scoped instance name ("s<shard>:<local>"),
	// the handle Release and Readmit take.
	Instance string
	// Attempts is the number of shards tried (1 = the primary
	// placement admitted; more = spill-over).
	Attempts int
	// Adm is the shard manager's admission (its Instance field is the
	// shard-local name).
	Adm *Admission
}

// ClusterInstanceName composes the cluster-scoped instance name for a
// shard-local one ("s3:video#7" for shard 3's "video#7") — the format
// Release and Readmit route on. Consumers that receive shard-local
// names (ShardEvent, ClusterReadmitResult) use it to build the handle
// the cluster accepts.
func ClusterInstanceName(shard int, local string) string {
	return "s" + strconv.Itoa(shard) + ":" + local
}

// resolve splits a cluster-scoped instance name into its shard index
// and shard-local name. Only canonical names — exactly what
// ClusterInstanceName issues — resolve: "s007:video#1" and
// "s+7:video#1" would alias shard 7 under a plain Atoi, handing out
// admission handles the server never issued and breaking client-side
// dedup, so any index that does not round-trip is rejected.
func (c *Cluster) resolve(instance string) (int, string, error) {
	rest, ok := strings.CutPrefix(instance, "s")
	if ok {
		if idx, local, found := strings.Cut(rest, ":"); found {
			if shard, err := strconv.Atoi(idx); err == nil &&
				shard >= 0 && shard < len(c.shards) && strconv.Itoa(shard) == idx {
				return shard, local, nil
			}
		}
	}
	return 0, "", fmt.Errorf("%w: %q is not a cluster instance name", ErrUnknownInstance, instance)
}

// Admit places one application: the policy ranks the shards, the
// primary one runs the four-phase workflow, and on rejection the next
// shards in plan order are tried (up to WithSpillLimit). On success
// the ClusterAdmission says where the application landed and under
// which cluster-scoped name. On total failure the returned error wraps
// the last shard's error (so errors.Is(err, ErrRejected) and the phase
// sentinels keep working); a cancelled context stops the spill-over
// immediately and returns the cancellation.
func (c *Cluster) Admit(ctx context.Context, app *Application) (*ClusterAdmission, error) {
	op := c.plan()
	defer c.putPlan(op)
	var lastErr error
	tried := 0
	for _, shard := range (*op)[:c.attempts()] {
		adm, err := c.shards[shard].Admit(ctx, app)
		tried++
		if err == nil {
			return &ClusterAdmission{
				Shard:    shard,
				Instance: ClusterInstanceName(shard, adm.Instance),
				Attempts: tried,
				Adm:      adm,
			}, nil
		}
		lastErr = err
		// Stop only when the CALLER's context is done. A shard error
		// matching the context sentinels can also mean that shard's own
		// Options.AdmitTimeout expired — the next shard may be idle and
		// must still be tried.
		if ctx != nil && ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("kairos: cluster rejected %s on all %d shard(s) tried: %w",
		app.Name, tried, lastErr)
}

// ClusterBatchResult is the outcome of one request in a cluster
// AdmitAll batch.
type ClusterBatchResult struct {
	// Index is the request's position in the input slice.
	Index int
	// App is the requested application.
	App *Application
	// Adm is non-nil iff some shard admitted the application.
	Adm *ClusterAdmission
	// Err is nil iff the application was admitted.
	Err error
}

// AdmitAll places a batch: requests are filtered (nil or invalid
// applications fail up front) and the survivors are placed
// largest-first — descending task count, ties by name and input order,
// the same order the single-manager AdmitAll uses — each through the
// full placement-and-spill path. Results come back in input order.
//
// Unlike the single-manager AdmitAll, the batch is not atomic with
// respect to other callers: each entry locks only the shard it is
// tried on, so concurrent Admit calls may interleave between entries.
func (c *Cluster) AdmitAll(ctx context.Context, apps []*Application) []ClusterBatchResult {
	results := make([]ClusterBatchResult, len(apps))
	order := make([]int, 0, len(apps))
	for i, app := range apps {
		results[i] = ClusterBatchResult{Index: i, App: app}
		if app == nil {
			results[i].Err = ErrNilApplication
			continue
		}
		if err := app.Validate(); err != nil {
			results[i].Err = err
			continue
		}
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := len(apps[order[a]].Tasks), len(apps[order[b]].Tasks)
		if ta != tb {
			return ta > tb
		}
		return apps[order[a]].Name < apps[order[b]].Name
	})
	for n, i := range order {
		// Once the caller's context is done, pushing the leftover
		// entries through Admit would only take shard locks and count
		// one spurious cancellation per app; short-circuit them all
		// with the context error instead.
		if ctx != nil && ctx.Err() != nil {
			for _, j := range order[n:] {
				results[j].Err = fmt.Errorf("kairos: batch abandoned: %w", ctx.Err())
			}
			break
		}
		results[i].Adm, results[i].Err = c.Admit(ctx, apps[i])
	}
	return results
}

// Release frees the named cluster admission on its shard.
func (c *Cluster) Release(instance string) error {
	shard, local, err := c.resolve(instance)
	if err != nil {
		return err
	}
	return c.shards[shard].Release(local)
}

// Readmit restarts the named admission on its own shard (applications
// never migrate between shards: a shard models one physical platform,
// and the paper's restart path re-admits onto the same hardware pool).
// The result carries the new cluster-scoped instance name.
func (c *Cluster) Readmit(ctx context.Context, instance string) (*ClusterAdmission, error) {
	shard, local, err := c.resolve(instance)
	if err != nil {
		return nil, err
	}
	adm, err := c.shards[shard].Readmit(ctx, local)
	if err != nil {
		return nil, err
	}
	return &ClusterAdmission{
		Shard:    shard,
		Instance: ClusterInstanceName(shard, adm.Instance),
		Attempts: 1,
		Adm:      adm,
	}, nil
}

// ClusterReadmitResult tags one shard's forced-readmission outcome
// with its shard index; the embedded result's instance names are
// shard-local.
type ClusterReadmitResult struct {
	Shard int
	ReadmitResult
}

// ReadmitAffected sweeps every shard in index order, restarting each
// admission whose layout touches disabled hardware (see
// Manager.ReadmitAffected). Each shard's sweep is atomic on that
// shard; the cluster-level sweep is not.
func (c *Cluster) ReadmitAffected(ctx context.Context) []ClusterReadmitResult {
	var out []ClusterReadmitResult
	for i, m := range c.shards {
		for _, res := range m.ReadmitAffected(ctx) {
			out = append(out, ClusterReadmitResult{Shard: i, ReadmitResult: res})
		}
	}
	return out
}

// ReleaseAll frees every admission on every shard.
func (c *Cluster) ReleaseAll() {
	for _, m := range c.shards {
		m.ReleaseAll()
	}
}

// ClusterStats aggregates the shard managers' counters: one snapshot
// per shard plus their sum. Each shard snapshot is internally
// consistent; the cluster total is a sum of snapshots taken in shard
// order, not one atomic cut across shards.
type ClusterStats struct {
	Shards []Stats `json:"shards"`
	Total  Stats   `json:"total"`
}

// Stats snapshots every shard's counters and their aggregate.
func (c *Cluster) Stats() ClusterStats {
	cs := ClusterStats{Shards: make([]Stats, len(c.shards))}
	for i, m := range c.shards {
		s := m.Stats()
		cs.Shards[i] = s
		t := &cs.Total
		t.Attempts += s.Attempts
		t.Admitted += s.Admitted
		t.Rejected += s.Rejected
		t.Cancelled += s.Cancelled
		for ph := range s.RejectedByPhase {
			t.RejectedByPhase[ph] += s.RejectedByPhase[ph]
		}
		t.Released += s.Released
		t.Readmitted += s.Readmitted
		t.Restored += s.Restored
		t.Live += s.Live
		t.CacheHits += s.CacheHits
		t.CacheMisses += s.CacheMisses
		t.CacheFallbacks += s.CacheFallbacks
		t.PhaseTotals.Binding += s.PhaseTotals.Binding
		t.PhaseTotals.Mapping += s.PhaseTotals.Mapping
		t.PhaseTotals.Routing += s.PhaseTotals.Routing
		t.PhaseTotals.Validation += s.PhaseTotals.Validation
	}
	return cs
}

// Dropped sums the dropped-event counts of every shard's current
// subscriptions (see Manager.Dropped).
func (c *Cluster) Dropped() uint64 {
	var n uint64
	for _, m := range c.shards {
		n += m.Dropped()
	}
	return n
}

// ShardEvent is one shard manager's lifecycle event tagged with its
// shard index; the event's instance names are shard-local.
type ShardEvent struct {
	Shard int
	Event Event
}

// Subscribe merges every shard's event stream into one shard-tagged
// channel. Within a shard, events arrive in the shard's publication
// order; across shards there is no ordering guarantee. The merged
// channel is buffered with WithClusterEventBuffer slots
// (DefaultEventBuffer by default); when it is full the forwarders
// block on the shard-side buffers, which drop and count per shard
// (Dropped) — the cluster consumer can therefore never stall an
// admission. The cancel function unsubscribes from every shard and
// closes the merged channel promptly: events still queued on the shard
// side at that moment are discarded, so consumers that need every
// event must drain before cancelling.
func (c *Cluster) Subscribe() (<-chan ShardEvent, func()) {
	buffer := c.eventBuffer
	if buffer <= 0 {
		buffer = DefaultEventBuffer
	}
	out := make(chan ShardEvent, buffer)
	done := make(chan struct{})
	var wg sync.WaitGroup
	cancels := make([]func(), len(c.shards))
	for i, m := range c.shards {
		ch, cancel := m.Subscribe()
		cancels[i] = cancel
		wg.Add(1)
		go func(shard int, ch <-chan Event) {
			defer wg.Done()
			for {
				select {
				case ev, ok := <-ch:
					if !ok {
						return
					}
					select {
					case out <- ShardEvent{Shard: shard, Event: ev}:
					case <-done:
						return
					}
				case <-done:
					return
				}
			}
		}(i, ch)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	var once sync.Once
	return out, func() {
		once.Do(func() {
			close(done)
			for _, cancel := range cancels {
				cancel()
			}
		})
	}
}
