package kairos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Cluster is a sharded multi-platform resource manager: it owns N
// independent platforms, each behind its own Manager (and therefore
// its own platform-state lock), and places incoming applications
// across them with a pluggable PlacementPolicy, spilling over to the
// next-ranked shards when one rejects. Because no allocation state is
// shared between shards, concurrent admissions on different shards
// proceed fully in parallel — the scale-out step on top of the
// single-platform manager of the paper.
//
// The only cross-shard state is the placement plan: picking a shard
// samples every manager's lock-free load gauge and (for randomized
// policies) the cluster's seeded stream, a critical section of
// microseconds next to the milliseconds of an admission workflow.
//
// Admissions are cluster-scoped: the returned instance names embed the
// shard ("s3:video#7") and Release/Readmit route on that prefix, so a
// Cluster is used exactly like a Manager. For a fixed seed and a
// single caller, shard choice is deterministic (the determinism tests
// pin this).
//
// The shard set is elastic: AddShard appends a shard at run time and
// DrainShard retires one, migrating its residents to the remaining
// shards. Shard indices are stable for the cluster's lifetime — a
// drained shard keeps its slot (and its "s<shard>:" names stay
// resolvable) but is skipped by placement.
type Cluster struct {
	policy PlacementPolicy
	spill  int

	// membership is the current shard set, swapped atomically so the
	// hot admission path reads it lock-free; memberMu serializes the
	// writers (AddShard, DrainShard) behind copy-on-write updates.
	membership atomic.Pointer[[]shardSlot]
	memberMu   sync.Mutex
	// shardOpts builds the managers of shards added at run time with
	// the same configuration the construction-time shards got.
	shardOpts []Option
	// log, set by RecoverCluster, journals membership transitions of a
	// durable cluster; nil for ephemeral clusters.
	log *WAL

	// mu guards the rng and the plan scratch during planning; the
	// admission workflow itself runs outside it, on the chosen shard's
	// own lock.
	mu     sync.Mutex
	rng    *rand.Rand
	loads  []LoadHint
	admIdx []int // admittable-shard index scratch

	planPool sync.Pool // *[]int plan scratch, one per in-flight admission

	eventBuffer int
}

// ShardState is one shard's membership state.
type ShardState int

const (
	// ShardActive: the shard accepts placements.
	ShardActive ShardState = iota
	// ShardDraining: a DrainShard call is migrating the shard's
	// residents away; placement skips it.
	ShardDraining
	// ShardDrained: the shard was drained. It keeps its index (names
	// stay resolvable, stragglers reported by the drain can still be
	// released) but never receives placements again.
	ShardDrained
)

func (s ShardState) String() string {
	switch s {
	case ShardActive:
		return "active"
	case ShardDraining:
		return "draining"
	case ShardDrained:
		return "drained"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// MarshalText renders the state name, so JSON membership listings read
// "active"/"draining"/"drained" rather than bare integers.
func (s ShardState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name, so membership listings round-trip
// through JSON (API clients decode what the admin endpoint encodes).
func (s *ShardState) UnmarshalText(text []byte) error {
	switch string(text) {
	case "active":
		*s = ShardActive
	case "draining":
		*s = ShardDraining
	case "drained":
		*s = ShardDrained
	default:
		return fmt.Errorf("kairos: unknown shard state %q", text)
	}
	return nil
}

// shardSlot pairs one shard's manager with its membership state inside
// an immutable membership view.
type shardSlot struct {
	m     *Manager
	state ShardState
}

// slots returns the current membership view. The slice is immutable —
// writers replace it wholesale under memberMu.
func (c *Cluster) slots() []shardSlot { return *c.membership.Load() }

// clusterConfig collects the options of NewCluster.
type clusterConfig struct {
	policy      PlacementPolicy
	spill       int
	seed        int64
	shardOpts   []Option
	eventBuffer int
}

// ClusterOption configures a Cluster at construction (see NewCluster).
type ClusterOption func(*clusterConfig)

// WithPlacement swaps the placement policy (default
// PlacementLeastLoaded).
func WithPlacement(p PlacementPolicy) ClusterOption {
	return func(c *clusterConfig) { c.policy = p }
}

// WithSpillLimit caps how many shards one admission may try: the
// primary placement plus spill-1 retries. Zero (the default) tries
// every shard in plan order.
func WithSpillLimit(n int) ClusterOption {
	return func(c *clusterConfig) { c.spill = n }
}

// WithClusterSeed seeds the stream randomized placement policies draw
// from (default 1). Two single-caller clusters with equal seeds,
// policies and workloads make identical shard choices.
func WithClusterSeed(seed int64) ClusterOption {
	return func(c *clusterConfig) { c.seed = seed }
}

// WithShardOptions passes manager options to every shard (weights,
// phase strategies, timeouts, ...).
func WithShardOptions(opts ...Option) ClusterOption {
	return func(c *clusterConfig) { c.shardOpts = append(c.shardOpts, opts...) }
}

// WithClusterEventBuffer sets the merged event channel's capacity
// (default DefaultEventBuffer). Each shard subscription additionally
// buffers per the shard's own WithEventBuffer.
func WithClusterEventBuffer(n int) ClusterOption {
	return func(c *clusterConfig) { c.eventBuffer = n }
}

// NewCluster returns a cluster of `shards` independent platforms, the
// i-th built by platformFor(i) (clone a prototype for homogeneous
// shards, or vary it for a heterogeneous fleet). Each shard's platform
// is owned by its manager from here on.
func NewCluster(shards int, platformFor func(shard int) *Platform, opts ...ClusterOption) (*Cluster, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("kairos: cluster needs at least one shard, got %d", shards)
	}
	if platformFor == nil {
		return nil, errors.New("kairos: nil platform factory")
	}
	cfg := clusterConfig{policy: PlacementLeastLoaded, seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	c := &Cluster{
		policy:      cfg.policy,
		spill:       cfg.spill,
		rng:         rand.New(rand.NewSource(cfg.seed)),
		loads:       make([]LoadHint, shards),
		shardOpts:   cfg.shardOpts,
		eventBuffer: cfg.eventBuffer,
	}
	slots := make([]shardSlot, 0, shards)
	for i := 0; i < shards; i++ {
		p := platformFor(i)
		if p == nil {
			return nil, fmt.Errorf("kairos: platform factory returned nil for shard %d", i)
		}
		slots = append(slots, shardSlot{m: New(p, cfg.shardOpts...), state: ShardActive})
	}
	c.membership.Store(&slots)
	return c, nil
}

// NumShards returns the number of shard slots, including drained ones
// (indices are stable, so a drained shard still counts).
func (c *Cluster) NumShards() int { return len(c.slots()) }

// Shard returns the i-th shard's manager, e.g. to inject faults into
// its platform or inspect its admissions. The manager is live: what is
// admitted through the cluster shows up here.
func (c *Cluster) Shard(i int) *Manager { return c.slots()[i].m }

// ShardInfo is one shard's membership state and current load, the
// tuple the rebalancer and the admin membership endpoint consume.
type ShardInfo struct {
	// Shard is the stable shard index.
	Shard int `json:"shard"`
	// State is the membership state.
	State ShardState `json:"state"`
	// Load is the shard's lock-free load gauge snapshot.
	Load LoadHint `json:"load"`
}

// Shards snapshots the membership: one ShardInfo per slot, in index
// order.
func (c *Cluster) Shards() []ShardInfo {
	slots := c.slots()
	out := make([]ShardInfo, len(slots))
	for i, s := range slots {
		out[i] = ShardInfo{Shard: i, State: s.state, Load: s.m.Load()}
	}
	return out
}

// attemptsFor returns how many of n admittable shards one admission
// may try.
func (c *Cluster) attemptsFor(n int) int {
	if c.spill > 0 && c.spill < n {
		return c.spill
	}
	return n
}

// plan samples the admittable shards' load gauges and asks the policy
// for the try order over them, remapping the policy's positions back
// to stable shard indices. It returns the scratch (to go back via
// putPlan) and the number of admittable shards; n == 0 means every
// shard is draining or drained and nothing can be placed.
func (c *Cluster) plan(slots []shardSlot) (op *[]int, n int) {
	op, ok := c.planPool.Get().(*[]int)
	if !ok {
		s := make([]int, len(slots))
		op = &s
	}
	c.mu.Lock()
	c.admIdx = c.admIdx[:0]
	for i, s := range slots {
		if s.state == ShardActive {
			c.admIdx = append(c.admIdx, i)
		}
	}
	n = len(c.admIdx)
	if n == 0 {
		c.mu.Unlock()
		c.planPool.Put(op)
		return nil, 0
	}
	if cap(c.loads) < n {
		c.loads = make([]LoadHint, n)
	}
	loads := c.loads[:n]
	for j, i := range c.admIdx {
		loads[j] = slots[i].m.Load()
	}
	if cap(*op) < n {
		*op = make([]int, n)
	}
	order := (*op)[:n]
	*op = order
	c.policy.Plan(loads, c.rng, order)
	// The policy ranked positions within the admittable subset; map
	// them back to stable shard indices.
	for j := range order {
		order[j] = c.admIdx[order[j]]
	}
	c.mu.Unlock()
	return op, n
}

func (c *Cluster) putPlan(op *[]int) { c.planPool.Put(op) }

// ClusterAdmission is one admission placed by the cluster.
type ClusterAdmission struct {
	// Shard is the index of the shard that admitted the application.
	Shard int
	// Instance is the cluster-scoped instance name ("s<shard>:<local>"),
	// the handle Release and Readmit take.
	Instance string
	// Attempts is the number of shards tried (1 = the primary
	// placement admitted; more = spill-over).
	Attempts int
	// Adm is the shard manager's admission (its Instance field is the
	// shard-local name).
	Adm *Admission
}

// ClusterInstanceName composes the cluster-scoped instance name for a
// shard-local one ("s3:video#7" for shard 3's "video#7") — the format
// Release and Readmit route on. Consumers that receive shard-local
// names (ShardEvent, ClusterReadmitResult) use it to build the handle
// the cluster accepts.
func ClusterInstanceName(shard int, local string) string {
	return "s" + strconv.Itoa(shard) + ":" + local
}

// resolve splits a cluster-scoped instance name into its shard index
// and shard-local name. Only canonical names — exactly what
// ClusterInstanceName issues — resolve: "s007:video#1" and
// "s+7:video#1" would alias shard 7 under a plain Atoi, handing out
// admission handles the server never issued and breaking client-side
// dedup, so any index that does not round-trip is rejected.
func (c *Cluster) resolve(instance string) (int, string, error) {
	rest, ok := strings.CutPrefix(instance, "s")
	if ok {
		if idx, local, found := strings.Cut(rest, ":"); found {
			if shard, err := strconv.Atoi(idx); err == nil &&
				shard >= 0 && shard < c.NumShards() && strconv.Itoa(shard) == idx {
				return shard, local, nil
			}
		}
	}
	return 0, "", fmt.Errorf("%w: %q is not a cluster instance name", ErrUnknownInstance, instance)
}

// Admit places one application: the policy ranks the shards, the
// primary one runs the four-phase workflow, and on rejection the next
// shards in plan order are tried (up to WithSpillLimit). On success
// the ClusterAdmission says where the application landed and under
// which cluster-scoped name. On total failure the returned error wraps
// the last shard's error (so errors.Is(err, ErrRejected) and the phase
// sentinels keep working); a cancelled context stops the spill-over
// immediately and returns the cancellation.
func (c *Cluster) Admit(ctx context.Context, app *Application) (*ClusterAdmission, error) {
	slots := c.slots()
	op, n := c.plan(slots)
	if n == 0 {
		return nil, fmt.Errorf("kairos: cluster rejected %s: %w", app.Name, ErrNoAdmittableShards)
	}
	defer c.putPlan(op)
	var lastErr error
	tried := 0
	for _, shard := range (*op)[:c.attemptsFor(n)] {
		adm, err := slots[shard].m.Admit(ctx, app)
		tried++
		if err == nil {
			return &ClusterAdmission{
				Shard:    shard,
				Instance: ClusterInstanceName(shard, adm.Instance),
				Attempts: tried,
				Adm:      adm,
			}, nil
		}
		lastErr = err
		// Stop only when the CALLER's context is done. A shard error
		// matching the context sentinels can also mean that shard's own
		// Options.AdmitTimeout expired — the next shard may be idle and
		// must still be tried.
		if ctx != nil && ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("kairos: cluster rejected %s on all %d shard(s) tried: %w",
		app.Name, tried, lastErr)
}

// ClusterBatchResult is the outcome of one request in a cluster
// AdmitAll batch.
type ClusterBatchResult struct {
	// Index is the request's position in the input slice.
	Index int
	// App is the requested application.
	App *Application
	// Adm is non-nil iff some shard admitted the application.
	Adm *ClusterAdmission
	// Err is nil iff the application was admitted.
	Err error
}

// AdmitAll places a batch: requests are filtered (nil or invalid
// applications fail up front) and the survivors are placed
// largest-first — descending task count, ties by name and input order,
// the same order the single-manager AdmitAll uses — each through the
// full placement-and-spill path. Results come back in input order.
//
// Unlike the single-manager AdmitAll, the batch is not atomic with
// respect to other callers: each entry locks only the shard it is
// tried on, so concurrent Admit calls may interleave between entries.
func (c *Cluster) AdmitAll(ctx context.Context, apps []*Application) []ClusterBatchResult {
	results := make([]ClusterBatchResult, len(apps))
	order := make([]int, 0, len(apps))
	for i, app := range apps {
		results[i] = ClusterBatchResult{Index: i, App: app}
		if app == nil {
			results[i].Err = ErrNilApplication
			continue
		}
		if err := app.Validate(); err != nil {
			results[i].Err = err
			continue
		}
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := len(apps[order[a]].Tasks), len(apps[order[b]].Tasks)
		if ta != tb {
			return ta > tb
		}
		return apps[order[a]].Name < apps[order[b]].Name
	})
	for n, i := range order {
		// Once the caller's context is done, pushing the leftover
		// entries through Admit would only take shard locks and count
		// one spurious cancellation per app; short-circuit them all
		// with the context error instead.
		if ctx != nil && ctx.Err() != nil {
			for _, j := range order[n:] {
				results[j].Err = fmt.Errorf("kairos: batch abandoned: %w", ctx.Err())
			}
			break
		}
		results[i].Adm, results[i].Err = c.Admit(ctx, apps[i])
	}
	return results
}

// Release frees the named cluster admission on its shard. Drained
// shards release too — a straggler the drain could not move still
// leaves normally.
func (c *Cluster) Release(instance string) error {
	shard, local, err := c.resolve(instance)
	if err != nil {
		return err
	}
	return c.Shard(shard).Release(local)
}

// Readmit restarts the named admission on its own shard (applications
// never migrate between shards: a shard models one physical platform,
// and the paper's restart path re-admits onto the same hardware pool).
// The result carries the new cluster-scoped instance name.
func (c *Cluster) Readmit(ctx context.Context, instance string) (*ClusterAdmission, error) {
	shard, local, err := c.resolve(instance)
	if err != nil {
		return nil, err
	}
	adm, err := c.Shard(shard).Readmit(ctx, local)
	if err != nil {
		return nil, err
	}
	return &ClusterAdmission{
		Shard:    shard,
		Instance: ClusterInstanceName(shard, adm.Instance),
		Attempts: 1,
		Adm:      adm,
	}, nil
}

// ClusterReadmitResult tags one shard's forced-readmission outcome
// with its shard index; the embedded result's instance names are
// shard-local.
type ClusterReadmitResult struct {
	Shard int
	ReadmitResult
}

// ReadmitAffected sweeps every shard in index order, restarting each
// admission whose layout touches disabled hardware (see
// Manager.ReadmitAffected). Each shard's sweep is atomic on that
// shard; the cluster-level sweep is not.
func (c *Cluster) ReadmitAffected(ctx context.Context) []ClusterReadmitResult {
	var out []ClusterReadmitResult
	for i, s := range c.slots() {
		for _, res := range s.m.ReadmitAffected(ctx) {
			out = append(out, ClusterReadmitResult{Shard: i, ReadmitResult: res})
		}
	}
	return out
}

// ClusterReplanResult tags one shard's offline-replanning outcome
// with its shard index; the embedded result's instance names are
// shard-local.
type ClusterReplanResult struct {
	Shard int
	ReplanResult
}

// Replan runs one offline replanning pass per active shard, in index
// order (see Manager.Replan; every shard needs a WithReplanner shard
// option). Draining and drained shards are skipped — their resident
// set is leaving, not worth compacting. Each shard's pass is atomic
// on that shard; the cluster-level sweep is not. On a shard error the
// completed shards' results are returned with it.
func (c *Cluster) Replan(ctx context.Context) ([]ClusterReplanResult, error) {
	return c.ReplanWithBudget(ctx, 0)
}

// ReplanWithBudget is Replan with an explicit per-shard move budget;
// budget <= 0 uses each shard's configured default.
func (c *Cluster) ReplanWithBudget(ctx context.Context, budget int) ([]ClusterReplanResult, error) {
	var out []ClusterReplanResult
	for i, s := range c.slots() {
		if s.state != ShardActive {
			continue
		}
		res, err := s.m.ReplanWithBudget(ctx, budget)
		if err != nil {
			return out, fmt.Errorf("kairos: replan of shard %d: %w", i, err)
		}
		out = append(out, ClusterReplanResult{Shard: i, ReplanResult: *res})
	}
	return out, nil
}

// ReleaseAll frees every admission on every shard, drained ones
// included.
func (c *Cluster) ReleaseAll() {
	for _, s := range c.slots() {
		s.m.ReleaseAll()
	}
}

// ClusterStats aggregates the shard managers' counters: one snapshot
// per shard plus their sum. Each shard snapshot is internally
// consistent; the cluster total is a sum of snapshots taken in shard
// order, not one atomic cut across shards.
type ClusterStats struct {
	Shards []Stats `json:"shards"`
	// Loads is the per-shard load gauge at snapshot time (live
	// instances, used share, drain flag), indexed like Shards.
	Loads []LoadHint `json:"loads"`
	Total Stats      `json:"total"`
}

// Stats snapshots every shard's counters, its load gauge, and their
// aggregate.
func (c *Cluster) Stats() ClusterStats {
	slots := c.slots()
	cs := ClusterStats{Shards: make([]Stats, len(slots)), Loads: make([]LoadHint, len(slots))}
	for i, slot := range slots {
		m := slot.m
		s := m.Stats()
		cs.Loads[i] = m.Load()
		cs.Shards[i] = s
		t := &cs.Total
		t.Attempts += s.Attempts
		t.Admitted += s.Admitted
		t.Rejected += s.Rejected
		t.Cancelled += s.Cancelled
		for ph := range s.RejectedByPhase {
			t.RejectedByPhase[ph] += s.RejectedByPhase[ph]
		}
		t.Released += s.Released
		t.Readmitted += s.Readmitted
		t.Restored += s.Restored
		t.Live += s.Live
		t.CacheHits += s.CacheHits
		t.CacheMisses += s.CacheMisses
		t.CacheFallbacks += s.CacheFallbacks
		t.Conflicts += s.Conflicts
		t.Retries += s.Retries
		t.ReplanMoves += s.ReplanMoves
		t.ReplanImproved += s.ReplanImproved
		t.PhaseTotals.Binding += s.PhaseTotals.Binding
		t.PhaseTotals.Mapping += s.PhaseTotals.Mapping
		t.PhaseTotals.Routing += s.PhaseTotals.Routing
		t.PhaseTotals.Validation += s.PhaseTotals.Validation
	}
	return cs
}

// Dropped sums the dropped-event counts of every shard's current
// subscriptions (see Manager.Dropped).
func (c *Cluster) Dropped() uint64 {
	var n uint64
	for _, s := range c.slots() {
		n += s.m.Dropped()
	}
	return n
}

// ShardEvent is one shard manager's lifecycle event tagged with its
// shard index; the event's instance names are shard-local.
type ShardEvent struct {
	Shard int
	Event Event
}

// Subscribe merges every shard's event stream into one shard-tagged
// channel. Within a shard, events arrive in the shard's publication
// order; across shards there is no ordering guarantee. The merged
// channel is buffered with WithClusterEventBuffer slots
// (DefaultEventBuffer by default); when it is full the forwarders
// block on the shard-side buffers, which drop and count per shard
// (Dropped) — the cluster consumer can therefore never stall an
// admission. The cancel function unsubscribes from every shard and
// closes the merged channel promptly: events still queued on the shard
// side at that moment are discarded, so consumers that need every
// event must drain before cancelling.
//
// The subscription covers the shards present at call time; a shard
// added later publishes only to subscriptions opened after it joined.
func (c *Cluster) Subscribe() (<-chan ShardEvent, func()) {
	buffer := c.eventBuffer
	if buffer <= 0 {
		buffer = DefaultEventBuffer
	}
	slots := c.slots()
	out := make(chan ShardEvent, buffer)
	done := make(chan struct{})
	var wg sync.WaitGroup
	cancels := make([]func(), len(slots))
	for i, s := range slots {
		ch, cancel := s.m.Subscribe()
		cancels[i] = cancel
		wg.Add(1)
		go func(shard int, ch <-chan Event) {
			defer wg.Done()
			for {
				select {
				case ev, ok := <-ch:
					if !ok {
						return
					}
					select {
					case out <- ShardEvent{Shard: shard, Event: ev}:
					case <-done:
						return
					}
				case <-done:
					return
				}
			}
		}(i, ch)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	var once sync.Once
	return out, func() {
		once.Do(func() {
			close(done)
			for _, cancel := range cancels {
				cancel()
			}
		})
	}
}

// --- elastic membership ---

// ErrNoAdmittableShards matches admissions and migrations refused
// because every shard is draining or drained.
var ErrNoAdmittableShards = errors.New("kairos: no admittable shards")

// setStateLocked publishes a membership view with shard i's state
// changed. Called with memberMu held.
func (c *Cluster) setStateLocked(i int, state ShardState) {
	old := c.slots()
	next := make([]shardSlot, len(old))
	copy(next, old)
	next[i].state = state
	c.membership.Store(&next)
}

// AddShard appends a shard for the platform at run time and returns
// its index. The new shard is built with the same manager options the
// construction-time shards got, starts empty and active, and receives
// placements from the next plan on. On a durable cluster the
// membership change is journaled before the shard is published, so a
// recovery sees the grown shard set; recovery's platform factory must
// produce the added shard's platform for its index just like the
// original shards' (the usual clone-a-prototype factory does).
func (c *Cluster) AddShard(p *Platform) (int, error) {
	if p == nil {
		return 0, errors.New("kairos: nil platform")
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	old := c.slots()
	i := len(old)
	m := New(p, c.shardOpts...)
	if c.log != nil {
		m.AttachJournal(shardJournal{log: c.log, shard: i})
		if err := m.JournalMembership(core.OpShardAdd); err != nil {
			return 0, err
		}
	}
	next := make([]shardSlot, i+1)
	copy(next, old)
	next[i] = shardSlot{m: m, state: ShardActive}
	c.membership.Store(&next)
	return i, nil
}

// DrainMove records one resident DrainShard rehomed: the old and new
// cluster-scoped instance names and the destination shard.
type DrainMove struct {
	From  string `json:"from"`
	To    string `json:"to"`
	Shard int    `json:"shard"`
}

// DrainFailure records one resident DrainShard could not rehome; it
// stays admitted on the drained shard until released.
type DrainFailure struct {
	Instance string `json:"instance"`
	Err      error  `json:"-"`
	// Reason is Err's text, carried separately so the failure
	// serializes over the wire.
	Reason string `json:"reason"`
}

// DrainResult reports what a DrainShard call did: every resident
// either appears in Moved (rehomed, with its new name) or in Failed
// (explicitly reported, still resident) — acknowledged placements are
// never silently lost.
type DrainResult struct {
	Shard  int            `json:"shard"`
	Moved  []DrainMove    `json:"moved,omitempty"`
	Failed []DrainFailure `json:"failed,omitempty"`
}

// DrainShard retires shard i: the shard is marked unadmittable —
// placement skips it and its own engine refuses admissions already
// planned onto it — and every resident is force-readmitted onto the
// remaining shards in spill-over plan order, make-before-break (the
// application is admitted on the destination before the original is
// released, so a failure at any point leaves it fully placed
// somewhere). Residents that no remaining shard accepts are reported
// in the result's Failed list and stay admitted on the drained shard;
// the shard still ends drained, so they can only leave, not be joined.
//
// On a durable cluster the completed drain is journaled, so recovery
// keeps the shard unadmittable. Draining an already-drained shard
// retries its stragglers without re-journaling.
//
// Cancelling the context stops the drain between migrations and rolls
// the membership mark back: completed moves stay (each was atomic),
// the remaining residents are untouched, and the shard returns to its
// previous state. The partial result is returned with the
// cancellation error.
func (c *Cluster) DrainShard(ctx context.Context, i int) (*DrainResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	slots := c.slots()
	if i < 0 || i >= len(slots) {
		return nil, fmt.Errorf("kairos: no shard %d (cluster has %d)", i, len(slots))
	}
	prev := slots[i].state
	m := slots[i].m
	// Gate first, then hide from placement: once SetDraining returns,
	// no in-flight admission can add a resident (the engine refuses
	// under its own lock), so the resident snapshot below is complete.
	m.SetDraining(true)
	c.setStateLocked(i, ShardDraining)

	res := &DrainResult{Shard: i}
	failed := map[string]error{}
	for {
		residents := residentNames(m)
		pending := residents[:0]
		for _, name := range residents {
			if _, ok := failed[name]; !ok {
				pending = append(pending, name)
			}
		}
		if len(pending) == 0 {
			break
		}
		progress := false
		for _, local := range pending {
			mv, err := c.rehome(ctx, i, local)
			switch {
			case err == nil:
				res.Moved = append(res.Moved, *mv)
				progress = true
			case errors.Is(err, ErrUnknownInstance):
				// Released concurrently between snapshot and migration:
				// nothing left to move.
				progress = true
			case ctx.Err() != nil:
				// Roll the membership mark back; completed moves stay.
				if prev == ShardActive {
					m.SetDraining(false)
				}
				c.setStateLocked(i, prev)
				appendFailures(res, failed)
				return res, fmt.Errorf("kairos: drain of shard %d cancelled: %w", i, ctx.Err())
			default:
				failed[local] = err
			}
		}
		if !progress {
			break
		}
	}

	if prev == ShardActive {
		// Journal the transition once (the drain gate was set before any
		// resident moved, so every migration's records precede this one in
		// the shard's LSN order). On append failure the drain is not
		// durable, so it must not happen: re-open the shard.
		if err := m.JournalMembership(core.OpShardDrain); err != nil {
			m.SetDraining(false)
			c.setStateLocked(i, prev)
			appendFailures(res, failed)
			return res, err
		}
	}
	c.setStateLocked(i, ShardDrained)
	appendFailures(res, failed)
	return res, nil
}

// residentNames snapshots a shard's admitted instance names in sorted
// order, so drain migration order is deterministic.
func residentNames(m *Manager) []string {
	adm := m.Admitted()
	names := make([]string, 0, len(adm))
	for name := range adm {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// appendFailures renders the failed-resident map into the result in
// sorted instance order.
func appendFailures(res *DrainResult, failed map[string]error) {
	names := make([]string, 0, len(failed))
	for name := range failed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		err := failed[name]
		res.Failed = append(res.Failed, DrainFailure{
			Instance: ClusterInstanceName(res.Shard, name),
			Err:      err,
			Reason:   err.Error(),
		})
	}
}

// rehome migrates one resident of shard `from` to the first willing
// shard in plan order (spill-over bounded like Admit).
func (c *Cluster) rehome(ctx context.Context, from int, local string) (*DrainMove, error) {
	slots := c.slots()
	adm := slots[from].m.Admitted()[local]
	if adm == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownInstance, ClusterInstanceName(from, local))
	}
	op, n := c.plan(slots)
	if n == 0 {
		return nil, fmt.Errorf("kairos: cannot rehome %s: %w", ClusterInstanceName(from, local), ErrNoAdmittableShards)
	}
	defer c.putPlan(op)
	var lastErr error
	for _, target := range (*op)[:c.attemptsFor(n)] {
		ca, err := c.moveTo(ctx, slots, from, local, adm, target)
		if err == nil {
			return &DrainMove{From: ClusterInstanceName(from, local), To: ca.Instance, Shard: ca.Shard}, nil
		}
		if errors.Is(err, ErrUnknownInstance) {
			return nil, err
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("kairos: no remaining shard admitted %s (%d tried): %w",
		ClusterInstanceName(from, local), c.attemptsFor(n), lastErr)
}

// moveTo is the make-before-break migration step: admit the
// application on the target shard, then release the original. If the
// release loses a race (the resident vanished concurrently) or its
// journal append fails, the fresh admission is undone so the
// application is never placed twice.
func (c *Cluster) moveTo(ctx context.Context, slots []shardSlot, from int, local string, adm *Admission, target int) (*ClusterAdmission, error) {
	tadm, err := slots[target].m.Admit(ctx, adm.App)
	if err != nil {
		return nil, err
	}
	if rerr := slots[from].m.Release(local); rerr != nil {
		_ = slots[target].m.Release(tadm.Instance)
		return nil, rerr
	}
	return &ClusterAdmission{
		Shard:    target,
		Instance: ClusterInstanceName(target, tadm.Instance),
		Attempts: 1,
		Adm:      tadm,
	}, nil
}

// Migrate moves one admission to the chosen active shard,
// make-before-break, and returns the new cluster admission (the old
// name is released). The rebalancer uses it to move load off hot
// shards; it refuses targets that are draining, drained, or the
// instance's own shard.
func (c *Cluster) Migrate(ctx context.Context, instance string, target int) (*ClusterAdmission, error) {
	shard, local, err := c.resolve(instance)
	if err != nil {
		return nil, err
	}
	slots := c.slots()
	if target < 0 || target >= len(slots) {
		return nil, fmt.Errorf("kairos: no shard %d (cluster has %d)", target, len(slots))
	}
	if target == shard {
		return nil, fmt.Errorf("kairos: %s already lives on shard %d", instance, target)
	}
	if st := slots[target].state; st != ShardActive {
		return nil, fmt.Errorf("kairos: migration target shard %d is %s", target, st)
	}
	adm := slots[shard].m.Admitted()[local]
	if adm == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownInstance, instance)
	}
	return c.moveTo(ctx, slots, shard, local, adm, target)
}
