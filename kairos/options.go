package kairos

import (
	"time"

	"repro/internal/core"
)

// config collects the engine options built by the functional options.
type config struct {
	core core.Options
	// durabilityDir, when set, attaches a write-ahead log under the
	// directory (see WithDurability).
	durabilityDir *string
}

// Option configures a Manager at construction (see New).
type Option func(*config)

// WithWeights sets the mapping cost-function weights (the paper's
// Figs. 8–10 treatment). The zero value disables every objective;
// WeightsBoth is the paper's recommended configuration.
func WithWeights(w Weights) Option {
	return func(c *config) { c.core.Weights = w }
}

// WithBinder swaps the phase-1 strategy (default: the paper's
// regret-ordered heuristic, BinderByName("regret")).
func WithBinder(b Binder) Option {
	return func(c *config) { c.core.Binder = b }
}

// WithMapper swaps the phase-2 strategy (default: the paper's
// incremental algorithm, MapperByName("incremental")).
func WithMapper(m Mapper) Option {
	return func(c *config) { c.core.Mapper = m }
}

// WithRouter swaps the phase-3 strategy (default: BFS,
// RouterByName("bfs")).
func WithRouter(r Router) Option {
	return func(c *config) { c.core.Router = r }
}

// WithValidator swaps the phase-4 strategy (default: the SDF
// throughput analysis, ValidatorByName("sdf")).
func WithValidator(v Validator) Option {
	return func(c *config) { c.core.Validator = v }
}

// WithSolver swaps the knapsack subroutine of the GAP solver inside
// the mapping phase (default: the paper's O(T²) greedy).
func WithSolver(s Solver) Option {
	return func(c *config) { c.core.Solver = s }
}

// WithoutValidation omits the validation phase entirely: no SDF model
// is built, Times.Validation stays zero. Admission-outcome sweeps use
// this to skip thousands of throughput analyses.
func WithoutValidation() Option {
	return func(c *config) { c.core.DisableValidation = true }
}

// WithAdvisoryValidation runs and times the validation phase but
// ignores its verdict, as the paper's synthetic-dataset experiments
// do ("we do not reject applications in the validation phase", §IV).
func WithAdvisoryValidation() Option {
	return func(c *config) { c.core.SkipValidation = true }
}

// WithFastValidation switches the validation phase to the
// maximum-cycle-ratio analysis for unit-rate models (state-space
// exploration otherwise).
func WithFastValidation() Option {
	return func(c *config) { c.core.Validation.Fast = true }
}

// WithExtraRings sets the number of additional BFS candidate
// expansion steps of the mapping phase (paper §III-B). Zero keeps the
// paper's default of 1; negative means no extra expansion.
func WithExtraRings(n int) Option {
	return func(c *config) { c.core.ExtraRings = n }
}

// WithDistancePenalty sets the cost charged for a communication pair
// whose distance is missing from the sparse matrix (paper §III-D,
// "a relative high penalty"). Zero keeps the default of 64.
func WithDistancePenalty(n int) Option {
	return func(c *config) { c.core.DistancePenalty = n }
}

// WithAdmissionTimeout bounds every admission attempt: the workflow
// checks the deadline between phases and rolls back once it has
// passed, returning an error that matches context.DeadlineExceeded.
// It applies per admission, so each AdmitAll entry gets its own
// budget.
func WithAdmissionTimeout(d time.Duration) Option {
	return func(c *config) { c.core.AdmitTimeout = d }
}

// WithLayoutCache memoizes up to n successful execution layouts,
// keyed on a canonical fingerprint of the application's structure
// (tasks, implementation sets, channels, constraints — names
// excluded) plus a residual-capacity sketch of the platform. When an
// incoming application's fingerprint and the platform sketch match a
// memoized layout byte for byte, the manager skips binding, mapping
// and routing and replays the remembered layout under the new
// instance name, running only the validation phase before committing;
// any replay or validation failure falls back to the full workflow.
// Cached commits journal identically to full admissions, so
// durability and recovery are unaffected. Outcomes are counted in
// Stats (CacheHits / CacheMisses / CacheFallbacks). n <= 0 disables
// the cache (the default).
func WithLayoutCache(n int) Option {
	return func(c *config) { c.core.LayoutCache = n }
}

// WithOptimisticAdmission lets concurrent admissions overlap: each
// Admit plans its bind → map → route → validate workflow against a
// lock-free snapshot of the platform and only the validate-and-commit
// step holds the shard lock, replaying the planned layout against the
// live platform (re-validating it when the platform changed since the
// snapshot). A plan that no longer fits is a conflict; the admission
// is re-planned up to n times in total, then falls back to the fully
// serialized path, so admission never livelocks. AdmitAll plans its
// batch entries in parallel and commits them in the usual
// deterministic order under one lock hold.
//
// A single admitter observes exactly the serialized behaviour —
// identical layouts, instance names, journal records and stats — so
// the option is safe to leave on; it pays off when several goroutines
// (or served clients) admit into one shard concurrently. Conflict and
// retry counts are exported via Stats (Conflicts / Retries). n <= 0
// disables optimism (the default, fully serialized).
func WithOptimisticAdmission(n int) Option {
	return func(c *config) { c.core.OptimisticAttempts = n }
}

// WithReplanner attaches an offline replanner: a strategy
// Manager.Replan hands a sandboxed clone of the platform and the
// resident set, to search for a better whole-set placement within a
// move budget (see Replanner). Without this option Replan returns
// ErrNoReplanner. The default strategy is the budgeted
// large-neighborhood search, ReplannerByName("lns").
func WithReplanner(r Replanner) Option {
	return func(c *config) { c.core.Replanner = r }
}

// WithReplanBudget sets the default move budget of a replanning pass:
// the number of tentative re-admissions the sandbox will execute
// before the pass must stop. Zero keeps DefaultReplanBudget;
// Manager.ReplanWithBudget overrides it per call.
func WithReplanBudget(n int) Option {
	return func(c *config) { c.core.ReplanBudget = n }
}

// WithEventBuffer sets the per-subscription channel capacity of the
// event stream (default DefaultEventBuffer). Events published while a
// subscriber's buffer is full are dropped for that subscriber and
// counted (Manager.Dropped).
func WithEventBuffer(n int) Option {
	return func(c *config) { c.core.EventBuffer = n }
}
