package kairos

import (
	"repro/internal/platform"
	"repro/internal/resource"
)

// Platform is the heterogeneous MPSoC model the manager allocates on:
// typed processing elements with resource pools, connected by NoC
// links that time-share virtual channels. Build one with CRISP, Mesh,
// MeshWithIO, PlatformFromSpec, or element by element starting from
// NewPlatform.
type Platform = platform.Platform

// Element is one processing element of a Platform.
type Element = platform.Element

// Link is one directed NoC link of a Platform.
type Link = platform.Link

// Occupant identifies one task instance placed on an element.
type Occupant = platform.Occupant

// Vector is a resource demand or capacity over the resource axes
// (compute, memory, io, config).
type Vector = resource.Vector

// Resources builds a resource vector from per-axis amounts.
func Resources(compute, memory, io, config int64) Vector {
	return resource.Of(compute, memory, io, config)
}

// The element types used by the builders and the application
// generator. Type strings are free-form: an implementation targets a
// type, and only elements of that type can host it.
const (
	TypeDSP    = platform.TypeDSP
	TypeGPP    = platform.TypeGPP
	TypeFPGA   = platform.TypeFPGA
	TypeMemory = platform.TypeMemory
	TypeTest   = platform.TypeTest
	TypeIO     = platform.TypeIO
)

// DefaultVCs is the builders' number of virtual channels per link
// direction.
var DefaultVCs = platform.DefaultVCs

// DSPCapacity is the capacity of one DSP tile in the builders, the
// base the synthetic generator expresses demands against.
var DSPCapacity = platform.DSPCapacity

// NewPlatform returns an empty platform to build element by element
// (Platform.AddElement, Platform.Connect).
func NewPlatform() *Platform { return platform.New() }

// CRISP builds the platform of the paper's evaluation (Fig. 6): an
// ARM, an FPGA hub, two I/O tiles, and 5 packages of 9 DSPs, 2 memory
// tiles and a hardware test unit each.
func CRISP() *Platform { return platform.CRISP() }

// Mesh builds a w×h DSP mesh with vcs virtual channels per link
// direction.
func Mesh(w, h, vcs int) *Platform { return platform.Mesh(w, h, vcs) }

// MeshWithIO builds a w×h DSP mesh with stream-in and stream-out I/O
// tiles attached to opposite corners.
func MeshWithIO(w, h, vcs int) *Platform { return platform.MeshWithIO(w, h, vcs) }

// PlatformFromSpec parses the CLI platform vocabulary: "crisp",
// "mesh<W>x<H>", or the path of a .json platform description.
func PlatformFromSpec(spec string) (*Platform, error) { return platform.FromSpec(spec) }
