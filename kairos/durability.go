package kairos

// Durability: an optional write-ahead log that makes admissions
// survive restarts. Every committed operation — admission, release,
// readmission, eviction, fault transition — is appended to the log
// under the engine lock, after its validate-commit and before its
// event is published, and fsynced before the call returns; an
// acknowledged operation is therefore durable. Recover (or
// RecoverCluster) boots from a log directory: it loads the newest
// checkpoint snapshot, deterministically re-executes the op tail
// through the ordinary four-phase workflow, and returns a manager
// whose allocation state is byte-identical to the crashed one's.
//
// Only allocation state is durable: the sequence counter, the fault
// state (disabled elements/links) and every live admission's layout.
// Lifetime counters (Stats), per-phase times and element wear are
// diagnostics and reset on recovery.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/wal"
)

// WAL is the durable admission log backing WithDurability and Recover:
// segmented, CRC-checksummed, fsync-on-commit. Checkpoint writes a
// full snapshot and compacts fully-covered segments; Close rotates the
// log down cleanly on shutdown.
type WAL = wal.Log

// StateExport is the canonical serializable form of a manager's
// durable state (Manager.ExportState); a checkpoint snapshots one per
// shard.
type StateExport = core.StateExport

// AdmissionExport is one admission's durable state inside a
// StateExport.
type AdmissionExport = core.AdmissionExport

// shardJournal curries a shard index onto the shared log, satisfying
// the engine's journal interface.
type shardJournal struct {
	log   *wal.Log
	shard int
}

func (j shardJournal) Append(op core.Op) (uint64, error) { return j.log.Append(j.shard, op) }

// brokenJournal fails every append with a fixed error: the durability
// a WithDurability caller asked for cannot be provided, so no
// operation may commit.
type brokenJournal struct{ err error }

func (j brokenJournal) Append(core.Op) (uint64, error) { return 0, j.err }

// WithDurability attaches a write-ahead log under dir to a new
// manager: every committed operation is fsynced to the log before it
// is acknowledged. The directory must be fresh (no prior log state) —
// a manager built by New starts empty, so prior state would diverge
// from it; boot from an existing directory with Recover instead. If
// the directory cannot be initialised or holds prior state, every
// subsequent operation fails with ErrJournal explaining why.
//
// New cannot return the log handle, so retrieve it with DurableLog to
// checkpoint the log periodically and close it on shutdown; without
// that the log grows uncompacted for the process lifetime.
//
// For clusters, do not pass this through WithShardOptions (each shard
// would open its own untagged log); use RecoverCluster.
func WithDurability(dir string) Option {
	return func(c *config) { c.durabilityDir = &dir }
}

// attachDurability wires a fresh-directory log onto a new manager
// (the WithDurability path, where New cannot return an error).
func attachDurability(m *Manager, dir string) {
	log, rec, err := wal.Open(dir, wal.Options{})
	if err == nil && (rec.Snapshot != nil || len(rec.Ops) > 0) {
		log.Close()
		err = fmt.Errorf("kairos: %s holds prior log state (%d ops); boot with Recover, not New", dir, len(rec.Ops))
	}
	if err != nil {
		m.AttachJournal(brokenJournal{err: err})
		return
	}
	m.AttachJournal(shardJournal{log: log, shard: 0})
}

// Recover boots a durable manager from the log directory: the platform
// must be the pristine platform the crashed manager started from (same
// spec, no allocations). The newest snapshot is loaded, the op tail is
// re-executed deterministically, and the returned manager — with the
// log attached for further appends — holds exactly the allocation
// state every acknowledged operation left behind. A fresh or empty
// directory recovers to an empty manager, so Recover is also the
// normal way to START a durable deployment. The caller owns the
// returned WAL: Checkpoint it periodically and Close it on shutdown.
func Recover(dir string, p *Platform, opts ...Option) (*Manager, *WAL, error) {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	m := core.New(p, cfg.core)
	log, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, nil, err
	}
	if rec.Snapshot != nil && len(rec.Snapshot) != 1 {
		log.Close()
		return nil, nil, fmt.Errorf("kairos: %s snapshot holds %d shards; recover it with RecoverCluster", dir, len(rec.Snapshot))
	}
	for _, r := range rec.Ops {
		if r.Shard != 0 {
			log.Close()
			return nil, nil, fmt.Errorf("kairos: %s records shard %d; recover it with RecoverCluster", dir, r.Shard)
		}
	}
	if err := replayShard(m, 0, rec); err != nil {
		log.Close()
		return nil, nil, err
	}
	m.AttachJournal(shardJournal{log: log, shard: 0})
	return m, log, nil
}

// RecoverCluster boots a durable cluster from the log directory, the
// cluster analogue of Recover: `shards` is the construction-time
// (base) shard count and the platform factory must rebuild the
// pristine platforms the crashed cluster started from. A cluster
// whose shard set grew at run time journals each AddShard, so
// recovery sizes the recovered membership from the log — the factory
// is called for the added shards' indices too and must reproduce
// their platforms the same way (the usual clone-a-prototype factory
// does). Drained shards recover drained: they keep their slot and
// their stragglers, and stay unadmittable. Each shard's state is
// recovered independently from its shard-tagged records. A fresh
// directory recovers to an empty cluster of the base count. The
// caller owns the returned WAL.
func RecoverCluster(dir string, shards int, platformFor func(shard int) *Platform, opts ...ClusterOption) (*Cluster, *WAL, error) {
	log, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, nil, err
	}
	// Size the membership: the base count, grown by every journaled
	// shard-add and by any snapshot taken after growth. The shard set
	// never shrinks, so a snapshot smaller than the base count means
	// the caller's count is not the one this log was written with.
	count := shards
	if len(rec.Snapshot) > count {
		count = len(rec.Snapshot)
	}
	for _, r := range rec.Ops {
		if r.Op.Kind == core.OpShardAdd && r.Shard >= count {
			count = r.Shard + 1
		}
	}
	if rec.Snapshot != nil && len(rec.Snapshot) < shards {
		log.Close()
		return nil, nil, fmt.Errorf("kairos: %s: snapshot %s holds %d shard(s) but the cluster was booted with %d — not a corrupt log; pass the shard count the log was written with",
			dir, rec.SnapshotPath, len(rec.Snapshot), shards)
	}
	for _, r := range rec.Ops {
		if r.Shard < 0 || r.Shard >= count {
			log.Close()
			seg := rec.SegmentFor(r.LSN)
			if seg == "" {
				seg = "an unidentified segment"
			}
			return nil, nil, fmt.Errorf("kairos: %s: op lsn %d (%s) in %s is tagged shard %d but the recovered membership has only %d shard(s) (base count %d plus journaled shard-adds) — not a corrupt log; pass the shard count the log was written with",
				dir, r.LSN, r.Op.Kind, seg, r.Shard, count, shards)
		}
	}
	c, err := NewCluster(count, platformFor, opts...)
	if err != nil {
		log.Close()
		return nil, nil, err
	}
	for i := 0; i < count; i++ {
		if err := replayShard(c.Shard(i), i, rec); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	// A shard whose engine recovered draining (snapshot flag or a
	// replayed shard-drain record) was drained from this cluster;
	// restore the membership mark so placement keeps skipping it.
	c.memberMu.Lock()
	for i := 0; i < count; i++ {
		if c.Shard(i).Draining() {
			c.setStateLocked(i, ShardDrained)
		}
	}
	c.memberMu.Unlock()
	for i := 0; i < count; i++ {
		c.Shard(i).AttachJournal(shardJournal{log: log, shard: i})
	}
	c.log = log
	return c, log, nil
}

// replayShard rebuilds one shard's engine: snapshot first, then the
// shard's op records beyond the snapshot's coverage, in LSN order.
func replayShard(m *Manager, shard int, rec *wal.Recovered) error {
	var snapLSN uint64
	if shard < len(rec.Snapshot) {
		se := rec.Snapshot[shard]
		if err := m.ImportState(se); err != nil {
			return err
		}
		snapLSN = se.LastLSN
	}
	for _, r := range rec.Ops {
		if r.Shard != shard || r.LSN <= snapLSN {
			continue
		}
		if err := m.ReplayOp(r.LSN, r.Op); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint snapshots a single durable manager into its log and
// compacts covered segments (see WAL.Checkpoint). Safe to call
// concurrently with appends and with other checkpoints: the export is
// taken under the log's checkpoint mutex, so a slow checkpoint can
// never publish stale state over a newer snapshot.
func Checkpoint(log *WAL, m *Manager) error {
	return log.Checkpoint(func() []*StateExport {
		return []*StateExport{m.ExportState()}
	})
}

// CheckpointCluster snapshots every shard of a durable cluster into
// the shared log and compacts covered segments. Each shard's export is
// its own consistent cut; no cross-shard barrier is taken. Concurrent
// checkpoints (a periodic ticker racing an operator request racing
// shutdown) serialize inside WAL.Checkpoint — exports happen under the
// log's checkpoint mutex, so the newest snapshot always reflects the
// newest exported state.
func CheckpointCluster(log *WAL, c *Cluster) error {
	return log.Checkpoint(func() []*StateExport {
		states := make([]*StateExport, c.NumShards())
		for i := range states {
			states[i] = c.Shard(i).ExportState()
		}
		return states
	})
}

// DurableLog returns the write-ahead log a WithDurability manager
// journals into, or nil (the manager is not durable, or attaching the
// log failed — in which case every operation already fails with
// ErrJournal). The caller should Checkpoint it periodically so the log
// compacts, and Close it on shutdown. Managers booted with Recover or
// RecoverCluster get the log handed back directly.
func DurableLog(m *Manager) *WAL {
	if j, ok := m.Journal().(shardJournal); ok {
		return j.log
	}
	return nil
}

// ErrJournal matches every operation aborted because its journal
// append failed (durability could not be guaranteed, so the operation
// did not happen).
var ErrJournal = core.ErrJournal
