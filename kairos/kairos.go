package kairos

import (
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/routing"
)

// Manager is the run-time resource manager: it owns the platform's
// allocation state, admits applications through the four-phase
// workflow, and is safe for concurrent use. See the package
// documentation for an overview and New for construction.
type Manager = core.Kairos

// Admission is one admitted (or attempted) application: the execution
// layout of the paper's Fig. 1 plus bookkeeping.
type Admission = core.Admission

// Route is one allocated communication channel of an execution
// layout: the element path from the source task's element to the
// destination task's element.
type Route = routing.Route

// TotalHops sums the hops of all routes of a layout.
func TotalHops(routes []Route) int { return routing.TotalHops(routes) }

// MeanHops returns the average hops per channel, or 0 for no routes.
func MeanHops(routes []Route) float64 { return routing.MeanHops(routes) }

// Phase identifies one phase of the resource-allocation workflow.
type Phase = core.Phase

// The run-time phases of the paper's Fig. 1.
const (
	PhaseBinding    = core.PhaseBinding
	PhaseMapping    = core.PhaseMapping
	PhaseRouting    = core.PhaseRouting
	PhaseValidation = core.PhaseValidation
)

// PhaseError attributes an admission failure to a workflow phase. It
// matches the sentinel errors under errors.Is.
type PhaseError = core.PhaseError

// PhaseTimes records the execution time spent in each phase of one
// allocation attempt.
type PhaseTimes = core.PhaseTimes

// Stats is a snapshot of the manager's lifetime counters.
type Stats = core.Stats

// BatchResult is the outcome of one request in an AdmitAll batch.
type BatchResult = core.BatchResult

// ReadmitOutcome classifies what a forced readmission did to one
// instance: moved, restored, or evicted.
type ReadmitOutcome = core.ReadmitOutcome

// The forced-readmission outcomes.
const (
	ReadmitMoved    = core.ReadmitMoved
	ReadmitRestored = core.ReadmitRestored
	ReadmitEvicted  = core.ReadmitEvicted
)

// ReadmitResult is the outcome of one forced readmission
// (Manager.ReadmitAffected, Manager.ReadmitClassified).
type ReadmitResult = core.ReadmitResult

// ReplanResult is the outcome of one offline replanning pass
// (Manager.Replan, Manager.ReplanWithBudget): the committed moves —
// empty when the pass found no strict improvement — the objective
// before and after, and the budget consumed.
type ReplanResult = core.ReplanResult

// ReplanMove is one committed replan move: the retired instance name,
// the fresh one it was re-admitted under, and the new admission.
type ReplanMove = core.ReplanMove

// DefaultReplanBudget is the move budget of a replanning pass when
// neither WithReplanBudget nor ReplanWithBudget sets one.
const DefaultReplanBudget = core.DefaultReplanBudget

// EvictReason says why an Evicted event fired.
type EvictReason = core.EvictReason

// The eviction reasons.
const (
	EvictReadmit = core.EvictReadmit
	EvictLost    = core.EvictLost
)

// Event is one lifecycle notification from the manager's event
// stream (Manager.Subscribe). Concrete types: Admitted, Released,
// Evicted, ReadmitFailed.
type Event = core.Event

// Admitted reports a successful admission.
type Admitted = core.Admitted

// Released reports an explicit release.
type Released = core.Released

// Evicted reports an admission definitively gone from the platform
// other than by explicit release.
type Evicted = core.Evicted

// ReadmitFailed reports a Readmit whose fresh admission was rejected;
// Restored says whether the old layout was replayed.
type ReadmitFailed = core.ReadmitFailed

// DefaultEventBuffer is the per-subscription event channel capacity
// when WithEventBuffer is not given.
const DefaultEventBuffer = core.DefaultEventBuffer

// Typed sentinel errors, wired for errors.Is. Every phase rejection
// matches ErrRejected; the phase-specific sentinels narrow it.
var (
	// ErrRejected matches every admission rejected by a workflow
	// phase (any *PhaseError).
	ErrRejected = core.ErrRejected
	// ErrNoImplementation matches binding-phase rejections.
	ErrNoImplementation = core.ErrNoImplementation
	// ErrUnroutable matches routing-phase rejections.
	ErrUnroutable = core.ErrUnroutable
	// ErrConstraintViolated matches validation-phase rejections.
	ErrConstraintViolated = core.ErrConstraintViolated
	// ErrUnknownInstance is returned by Release and Readmit for
	// instance names the manager does not track.
	ErrUnknownInstance = core.ErrUnknownInstance
	// ErrNoReplanner is returned by Replan when no WithReplanner
	// strategy was configured.
	ErrNoReplanner = core.ErrNoReplanner
	// ErrNilApplication is reported by AdmitAll for nil requests.
	ErrNilApplication = core.ErrNilApplication
)

// New returns a resource manager for the platform, configured by
// functional options. The manager owns the platform's allocation
// state from here on: mutate the platform only through the manager.
// With no options, every phase runs the paper's algorithm with the
// paper's defaults (zero mapping weights — use WithWeights to enable
// the cost-function objectives).
func New(p *platform.Platform, opts ...Option) *Manager {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	m := core.New(p, cfg.core)
	if cfg.durabilityDir != nil {
		attachDurability(m, *cfg.durabilityDir)
	}
	return m
}
