package kairos_test

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/kairos"
)

// chain builds an n-stage pipeline of share%-compute DSP tasks.
func chain(name string, n int, share int64) *kairos.Application {
	app := kairos.NewApplication(name)
	for i := 0; i < n; i++ {
		app.AddTask(fmt.Sprintf("t%d", i), kairos.Internal, kairos.Implementation{
			Name: "t-dsp", Target: kairos.TypeDSP,
			Requires: kairos.Resources(share, 8, 0, 0), Cost: 1, ExecTime: 5,
		})
	}
	for i := 0; i+1 < n; i++ {
		app.AddChannelRated(i, i+1, 1, 1, 2)
	}
	return app
}

// allocState renders the complete allocation state as one string, so
// "unchanged" is literal byte identity (element wear excluded: failed
// attempts wear the elements they touched).
func allocState(p *kairos.Platform, k *kairos.Manager) string {
	var b strings.Builder
	for _, e := range p.Elements() {
		fmt.Fprintf(&b, "e%d used=%v occ=%v\n", e.ID, e.Pool().Used(), e.Occupants())
	}
	for _, l := range p.Links() {
		fmt.Fprintf(&b, "l%d-%d used=%d\n", l.From, l.To, l.Used())
	}
	fmt.Fprintf(&b, "frag=%.9f live=%d\n", p.ExternalFragmentation(), k.Stats().Live)
	return b.String()
}

// cancelAfterBinder wraps the default binder and cancels the
// admission's context once binding has completed, so the engine's
// between-phase check fires before mapping.
type cancelAfterBinder struct {
	kairos.Binder
	cancel context.CancelFunc
}

func (b cancelAfterBinder) Bind(app *kairos.Application, p *kairos.Platform) (*kairos.Binding, error) {
	bind, err := b.Binder.Bind(app, p)
	b.cancel()
	return bind, err
}

// cancelAfterMapper cancels once mapping has committed placements, so
// the check before routing must unmap them.
type cancelAfterMapper struct {
	kairos.Mapper
	cancel context.CancelFunc
}

func (m cancelAfterMapper) Map(app *kairos.Application, p *kairos.Platform,
	bind *kairos.Binding, opts kairos.MapperOptions) (*kairos.MapResult, error) {
	res, err := m.Mapper.Map(app, p, bind, opts)
	m.cancel()
	return res, err
}

// cancelAfterRouter cancels on the first path search, so routing
// completes and the check before validation must release the routes
// and the placements.
type cancelAfterRouter struct {
	kairos.Router
	cancel context.CancelFunc
}

func (r cancelAfterRouter) FindPath(p *kairos.Platform, src, dst int) ([]int, bool) {
	r.cancel()
	return r.Router.FindPath(p, src, dst)
}

// TestCancellationPurity extends the rollback-purity property of
// internal/core to the public wrapper and to cancellation: an Admit
// cancelled after any phase must leave the allocation state
// byte-identical, report a context error (not a rejection), and count
// as Cancelled in the stats.
func TestCancellationPurity(t *testing.T) {
	bfs, _ := kairos.RouterByName("bfs")
	cases := []struct {
		name string
		opts func(cancel context.CancelFunc) kairos.Option
	}{
		{"before-binding", nil}, // pre-cancelled context
		{"after-binding", func(cancel context.CancelFunc) kairos.Option {
			b, _ := kairos.BinderByName("regret")
			return kairos.WithBinder(cancelAfterBinder{b, cancel})
		}},
		{"after-mapping", func(cancel context.CancelFunc) kairos.Option {
			m, _ := kairos.MapperByName("incremental")
			return kairos.WithMapper(cancelAfterMapper{m, cancel})
		}},
		{"after-routing", func(cancel context.CancelFunc) kairos.Option {
			return kairos.WithRouter(cancelAfterRouter{bfs, cancel})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opts := []kairos.Option{kairos.WithWeights(kairos.WeightsBoth)}
			if tc.opts == nil {
				cancel()
			} else {
				opts = append(opts, tc.opts(cancel))
			}
			p := kairos.Mesh(3, 3, kairos.DefaultVCs)
			k := kairos.New(p, opts...)
			// Pre-admit through a plain manager so the platform carries
			// allocation state the rollback must preserve exactly (the
			// wrapped strategies would fire their cancel during this
			// setup admission).
			setup := kairos.New(p, kairos.WithWeights(kairos.WeightsBoth))
			if _, err := setup.Admit(context.Background(), chain("pre", 2, 40)); err != nil {
				t.Fatal(err)
			}

			before := allocState(p, k)
			_, err := k.Admit(ctx, chain("victim", 3, 30))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error = %v, want context.Canceled", err)
			}
			if errors.Is(err, kairos.ErrRejected) {
				t.Error("cancellation must not classify as a rejection")
			}
			if after := allocState(p, k); after != before {
				t.Errorf("cancelled admit mutated the platform:\n--- before\n%s--- after\n%s", before, after)
			}
			st := k.Stats()
			if st.Cancelled != 1 || st.Rejected != 0 {
				t.Errorf("stats after cancellation = %+v, want Cancelled=1 Rejected=0", st)
			}
		})
	}
}

// TestAdmissionTimeout covers WithAdmissionTimeout: an admission whose
// budget has passed rolls back and reports DeadlineExceeded.
func TestAdmissionTimeout(t *testing.T) {
	p := kairos.Mesh(3, 3, kairos.DefaultVCs)
	k := kairos.New(p, kairos.WithAdmissionTimeout(time.Nanosecond))
	before := allocState(p, k)
	_, err := k.Admit(context.Background(), chain("late", 2, 40))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if after := allocState(p, k); after != before {
		t.Error("timed-out admit mutated the platform")
	}
}

// TestSubscriberReentrancy is the regression test for the old
// lock-held OnEvict hazard: a subscriber goroutine that receives an
// event may call straight back into the manager (here: Readmit on
// Admitted, Release after that) without deadlocking.
func TestSubscriberReentrancy(t *testing.T) {
	k := kairos.New(kairos.Mesh(3, 3, kairos.DefaultVCs),
		kairos.WithWeights(kairos.WeightsBoth),
		kairos.WithoutValidation(),
	)
	events, cancel := k.Subscribe()
	defer cancel()

	done := make(chan error, 1)
	go func() {
		for ev := range events {
			adm, ok := ev.(kairos.Admitted)
			if !ok {
				continue
			}
			// Re-enter the manager from the subscriber: with the old
			// callback design this deadlocked on the manager lock.
			re, err := k.Readmit(context.Background(), adm.Adm.Instance)
			if err != nil {
				done <- fmt.Errorf("readmit from subscriber: %w", err)
				return
			}
			done <- k.Release(re.Instance)
			return
		}
	}()

	if _, err := k.Admit(context.Background(), chain("app", 2, 40)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscriber re-entering the manager deadlocked")
	}
	if live := len(k.Admitted()); live != 0 {
		t.Fatalf("live = %d after subscriber released everything", live)
	}
}

// TestEventDropsAreCounted: a full subscription buffer drops events
// instead of blocking admission, and the drops are observable.
func TestEventDropsAreCounted(t *testing.T) {
	k := kairos.New(kairos.Mesh(4, 4, kairos.DefaultVCs),
		kairos.WithWeights(kairos.WeightsBoth),
		kairos.WithoutValidation(),
		kairos.WithEventBuffer(1),
	)
	_, cancel := k.Subscribe()
	defer cancel()
	for i := 0; i < 3; i++ {
		if _, err := k.Admit(context.Background(), chain(fmt.Sprintf("a%d", i), 1, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if k.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2 (buffer 1, three events)", k.Dropped())
	}
}

// TestSentinelErrors wires every rejection class through errors.Is.
func TestSentinelErrors(t *testing.T) {
	ctx := context.Background()

	t.Run("binding", func(t *testing.T) {
		k := kairos.New(kairos.Mesh(2, 2, kairos.DefaultVCs))
		app := kairos.NewApplication("wants-fpga")
		app.AddTask("t", kairos.Internal, kairos.Implementation{
			Name: "f", Target: kairos.TypeFPGA,
			Requires: kairos.Resources(10, 10, 0, 10), Cost: 1, ExecTime: 5,
		})
		_, err := k.Admit(ctx, app)
		if !errors.Is(err, kairos.ErrRejected) || !errors.Is(err, kairos.ErrNoImplementation) {
			t.Fatalf("binding rejection %v must match ErrRejected and ErrNoImplementation", err)
		}
		if errors.Is(err, kairos.ErrUnroutable) || errors.Is(err, kairos.ErrConstraintViolated) {
			t.Error("binding rejection must not match the other phase sentinels")
		}
		var pe *kairos.PhaseError
		if !errors.As(err, &pe) || pe.Phase != kairos.PhaseBinding {
			t.Errorf("errors.As = %v, want binding PhaseError", err)
		}
	})

	t.Run("routing", func(t *testing.T) {
		p := kairos.NewPlatform()
		p.AddElement(kairos.TypeDSP, "a", kairos.DSPCapacity)
		p.AddElement(kairos.TypeDSP, "b", kairos.DSPCapacity)
		p.MustConnect(0, 1, 1)
		k := kairos.New(p, kairos.WithWeights(kairos.WeightsCommunication))
		app := kairos.NewApplication("par")
		a := app.AddTask("a", kairos.Internal, kairos.Implementation{
			Name: "a-dsp", Target: kairos.TypeDSP,
			Requires: kairos.Resources(80, 8, 0, 0), Cost: 1, ExecTime: 5,
		})
		b := app.AddTask("b", kairos.Internal, kairos.Implementation{
			Name: "b-dsp", Target: kairos.TypeDSP,
			Requires: kairos.Resources(80, 8, 0, 0), Cost: 1, ExecTime: 5,
		})
		app.AddChannel(a, b)
		app.AddChannel(a, b)
		_, err := k.Admit(ctx, app)
		if !errors.Is(err, kairos.ErrRejected) || !errors.Is(err, kairos.ErrUnroutable) {
			t.Fatalf("routing rejection %v must match ErrRejected and ErrUnroutable", err)
		}
	})

	t.Run("validation", func(t *testing.T) {
		k := kairos.New(kairos.Mesh(3, 3, kairos.DefaultVCs), kairos.WithWeights(kairos.WeightsBoth))
		app := chain("tight", 3, 30)
		app.Constraints.MinThroughput = 1e9
		_, err := k.Admit(ctx, app)
		if !errors.Is(err, kairos.ErrRejected) || !errors.Is(err, kairos.ErrConstraintViolated) {
			t.Fatalf("validation rejection %v must match ErrRejected and ErrConstraintViolated", err)
		}
	})

	t.Run("unknown-instance", func(t *testing.T) {
		k := kairos.New(kairos.Mesh(2, 2, kairos.DefaultVCs))
		if err := k.Release("ghost"); !errors.Is(err, kairos.ErrUnknownInstance) {
			t.Errorf("Release(ghost) = %v, want ErrUnknownInstance", err)
		}
	})
}

// TestStrategyRegistries: every registered name resolves, resolves to
// the right Name(), and every combination admits a small app cleanly.
func TestStrategyRegistries(t *testing.T) {
	for _, name := range kairos.BinderNames() {
		if b, err := kairos.BinderByName(name); err != nil || b.Name() != name {
			t.Errorf("BinderByName(%q) = %v, %v", name, b, err)
		}
	}
	for _, name := range kairos.MapperNames() {
		if m, err := kairos.MapperByName(name); err != nil || m.Name() != name {
			t.Errorf("MapperByName(%q) = %v, %v", name, m, err)
		}
	}
	for _, name := range kairos.RouterNames() {
		if r, err := kairos.RouterByName(name); err != nil || r.Name() != name {
			t.Errorf("RouterByName(%q) = %v, %v", name, r, err)
		}
	}
	for _, name := range kairos.ValidatorNames() {
		if v, err := kairos.ValidatorByName(name); err != nil || v.Name() != name {
			t.Errorf("ValidatorByName(%q) = %v, %v", name, v, err)
		}
	}
	if _, err := kairos.BinderByName("bogus"); err == nil {
		t.Error("unknown binder name accepted")
	}
	if _, err := kairos.MapperByName("bogus"); err == nil {
		t.Error("unknown mapper name accepted")
	}
	if _, err := kairos.RouterByName("bogus"); err == nil {
		t.Error("unknown router name accepted")
	}
	if _, err := kairos.ValidatorByName("bogus"); err == nil {
		t.Error("unknown validator name accepted")
	}

	for _, bn := range kairos.BinderNames() {
		for _, mn := range kairos.MapperNames() {
			for _, vn := range kairos.ValidatorNames() {
				t.Run(bn+"/"+mn+"/"+vn, func(t *testing.T) {
					b, _ := kairos.BinderByName(bn)
					m, _ := kairos.MapperByName(mn)
					v, _ := kairos.ValidatorByName(vn)
					p := kairos.Mesh(3, 3, kairos.DefaultVCs)
					k := kairos.New(p,
						kairos.WithWeights(kairos.WeightsBoth),
						kairos.WithBinder(b), kairos.WithMapper(m), kairos.WithValidator(v),
					)
					adm, err := k.Admit(context.Background(), chain("combo", 3, 40))
					if err != nil {
						t.Fatalf("admission with %s/%s/%s failed: %v", bn, mn, vn, err)
					}
					if err := k.Release(adm.Instance); err != nil {
						t.Fatal(err)
					}
					for _, e := range p.Elements() {
						if e.InUse() {
							t.Fatalf("element %d still in use after release", e.ID)
						}
					}
				})
			}
		}
	}
}

// TestFlagsHelper: the shared CLI helper parses, resolves, and
// rejects bad values.
func TestFlagsHelper(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := kairos.RegisterFlags(fs)
	if err := fs.Parse([]string{
		"-platform", "mesh4x4", "-weights", "communication",
		"-mapper", "gap", "-router", "dijkstra", "-validator", "none", "-binder", "exact",
	}); err != nil {
		t.Fatal(err)
	}
	p, err := f.BuildPlatform()
	if err != nil || p.NumElements() != 18 { // 16 mesh + 2 I/O tiles
		t.Fatalf("BuildPlatform = %v elements, %v", p.NumElements(), err)
	}
	opts, err := f.StrategyOptions()
	if err != nil || len(opts) != 5 {
		t.Fatalf("StrategyOptions = %d options, %v", len(opts), err)
	}
	k := kairos.New(p, opts...)
	if adm, err := k.Admit(context.Background(), chain("flags", 2, 40)); err != nil {
		t.Fatalf("admission with flag-selected strategies: %v", err)
	} else if err := k.Release(adm.Instance); err != nil {
		t.Fatal(err)
	}

	for _, bad := range [][]string{
		{"-weights", "heavy"},
		{"-binder", "nope"},
		{"-mapper", "nope"},
		{"-router", "nope"},
		{"-validator", "nope"},
	} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		f := kairos.RegisterFlags(fs)
		if err := fs.Parse(bad); err != nil {
			t.Fatal(err)
		}
		if _, err := f.StrategyOptions(); err == nil {
			t.Errorf("StrategyOptions accepted %v", bad)
		}
	}
}

// TestAdmitAllContext: a cancelled batch fails the remaining entries
// with the context error but keeps earlier admissions.
func TestAdmitAllContext(t *testing.T) {
	k := kairos.New(kairos.Mesh(4, 4, kairos.DefaultVCs),
		kairos.WithWeights(kairos.WeightsBoth),
		kairos.WithoutValidation(),
	)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := k.AdmitAll(ctx, []*kairos.Application{chain("x", 2, 40), chain("y", 2, 40)})
	for _, res := range results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("batch entry %d error = %v, want context.Canceled", res.Index, res.Err)
		}
	}
	if live := len(k.Admitted()); live != 0 {
		t.Errorf("cancelled batch admitted %d applications", live)
	}
}
