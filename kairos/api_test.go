package kairos_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api_golden.txt from the current exported surface")

const apiGoldenPath = "testdata/api_golden.txt"

// TestAPISurfaceGolden is the API-compatibility gate: the exported
// surface of package kairos — every exported type, function, constant
// and variable with its signature — is dumped from the AST and
// compared against the checked-in golden file. A PR that changes the
// public surface fails here until the golden file is regenerated
// deliberately with
//
//	go test ./kairos -run TestAPISurfaceGolden -update-api
//
// which makes surface changes explicit in review instead of silent.
func TestAPISurfaceGolden(t *testing.T) {
	// The public surface is the kairos declarations plus the methods
	// of the internal/core types they alias (Manager, Admission, ...):
	// both halves are what a downstream build compiles against.
	got := apiSurface(t, ".", "kairos", false) +
		apiSurface(t, "../internal/core", "core", true)
	if *updateAPI {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", apiGoldenPath)
		return
	}
	want, err := os.ReadFile(apiGoldenPath)
	if err != nil {
		t.Fatalf("missing API golden file (run with -update-api to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exported API surface changed; if intended, regenerate with -update-api\n--- golden\n%s--- current\n%s",
			want, got)
	}
}

// apiSurface renders the exported declarations of the package in the
// directory, one per line, sorted. With methods set, exported methods
// on exported receiver types are included (used for the internal
// engine types the public package aliases).
func apiSurface(t *testing.T, dir, pkgName string, methods bool) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs[pkgName]
	if !ok {
		t.Fatalf("package %s not found in %s (have %v)", pkgName, dir, pkgs)
	}

	render := func(node any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		// One declaration per line: collapse the printer's layout.
		return strings.Join(strings.Fields(buf.String()), " ")
	}

	var lines []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					if !methods || !receiverExported(d) {
						continue
					}
					lines = append(lines, render(&ast.FuncDecl{Recv: d.Recv, Name: d.Name, Type: d.Type}))
					continue
				}
				lines = append(lines, render(&ast.FuncDecl{Name: d.Name, Type: d.Type}))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() {
							lines = append(lines, "type "+render(sp))
						}
					case *ast.ValueSpec:
						exported := false
						for _, n := range sp.Names {
							if n.IsExported() {
								exported = true
							}
						}
						if exported {
							kw := "var"
							if d.Tok == token.CONST {
								kw = "const"
							}
							lines = append(lines, kw+" "+render(sp))
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return fmt.Sprintf("exported surface of %s (%d declarations)\n%s\n",
		pkgName, len(lines), strings.Join(lines, "\n"))
}

// receiverExported reports whether the method's receiver names an
// exported type.
func receiverExported(d *ast.FuncDecl) bool {
	if len(d.Recv.List) != 1 {
		return false
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}
