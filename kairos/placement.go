package kairos

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
)

// LoadHint is a lock-free snapshot of one shard manager's load: the
// live admission count and the mean used-capacity share of its
// platform's enabled elements. Placement policies rank shards by it
// without touching any shard's platform-state lock.
type LoadHint = core.LoadHint

// PlacementPolicy decides where a cluster places one incoming
// admission. Plan fills order — a scratch slice of length len(loads) —
// with a permutation of the shard indices: order[0] is the primary
// placement and the remaining entries are the spill-over order the
// cluster retries on rejection. rng is the cluster's seeded stream;
// implementations must draw from it deterministically, so that equal
// loads and equal stream state always produce the same plan (the basis
// of the cluster's fixed-seed reproducibility).
type PlacementPolicy interface {
	// Name is the policy's registry name (see PlacementByName).
	Name() string
	Plan(loads []LoadHint, rng *rand.Rand, order []int)
}

// The registered placement policies.
var (
	// PlacementLeastLoaded ranks every shard by ascending used-capacity
	// share (ties: fewer live admissions, then lower shard index). The
	// default: it balances load and leaves the most residual capacity
	// at the primary choice, at the cost of reading every shard's
	// gauge.
	PlacementLeastLoaded PlacementPolicy = leastLoaded{}
	// PlacementFirstFit always tries the shards in index order. The
	// cheapest policy: no load reads, no randomness; it packs low
	// shards tight and leaves high shards as reserve, maximizing the
	// chance that a later large application finds an empty shard.
	PlacementFirstFit PlacementPolicy = firstFit{}
	// PlacementPowerOfTwo samples two distinct shards uniformly from
	// the cluster's seeded stream and places on the less loaded of the
	// pair (the classic power-of-two-choices load balancer): almost the
	// balance of least-loaded at two gauge reads per admission instead
	// of a full scan. Spill-over falls back to the sampled loser, then
	// the remaining shards in index order.
	PlacementPowerOfTwo PlacementPolicy = powerOfTwo{}
)

// placements is the registry, default first (the *Names convention of
// the strategy registries).
var placements = []PlacementPolicy{PlacementLeastLoaded, PlacementFirstFit, PlacementPowerOfTwo}

// PlacementByName returns the registered placement policy with the
// name: "least-loaded" (default), "first-fit" or "power-of-two".
func PlacementByName(name string) (PlacementPolicy, error) {
	for _, p := range placements {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("kairos: unknown placement policy %q (have %v)", name, PlacementNames())
}

// PlacementNames lists the registered placement policies, default
// first.
func PlacementNames() []string { return names(placements) }

// lessLoaded orders two shards by used share, then live count, then
// index — the comparison every policy shares.
func lessLoaded(loads []LoadHint, a, b int) bool {
	if loads[a].UsedShare != loads[b].UsedShare {
		return loads[a].UsedShare < loads[b].UsedShare
	}
	if loads[a].Live != loads[b].Live {
		return loads[a].Live < loads[b].Live
	}
	return a < b
}

// identity fills order with 0..n-1.
func identity(order []int) {
	for i := range order {
		order[i] = i
	}
}

type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Plan(loads []LoadHint, _ *rand.Rand, order []int) {
	identity(order)
	sort.Slice(order, func(i, j int) bool { return lessLoaded(loads, order[i], order[j]) })
}

type firstFit struct{}

func (firstFit) Name() string { return "first-fit" }

func (firstFit) Plan(_ []LoadHint, _ *rand.Rand, order []int) { identity(order) }

type powerOfTwo struct{}

func (powerOfTwo) Name() string { return "power-of-two" }

func (powerOfTwo) Plan(loads []LoadHint, rng *rand.Rand, order []int) {
	n := len(order)
	if n == 1 {
		order[0] = 0
		return
	}
	// Two distinct uniform samples. Both draws happen unconditionally,
	// so the stream advances by exactly two per plan regardless of the
	// loads — plans at the same stream position are comparable across
	// policies and runs.
	a := rng.Intn(n)
	b := rng.Intn(n - 1)
	if b >= a {
		b++
	}
	if lessLoaded(loads, b, a) {
		a, b = b, a
	}
	order[0], order[1] = a, b
	// Spill-over past the sampled pair: the remaining shards in index
	// order.
	k := 2
	for i := 0; i < n; i++ {
		if i != a && i != b {
			order[k] = i
			k++
		}
	}
}
