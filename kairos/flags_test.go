package kairos_test

import (
	"context"
	"flag"
	"testing"

	"repro/kairos"
)

// TestRegisterFlagsRegistration pins the shared CLI vocabulary: every
// flag the CLIs rely on is registered, and the defaults are the
// registries' default (first) entries, so a CLI that parses no
// arguments gets exactly the paper's configuration.
func TestRegisterFlagsRegistration(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := kairos.RegisterFlags(fs)
	for _, name := range []string{"platform", "weights", "binder", "mapper", "router", "validator"} {
		if fs.Lookup(name) == nil {
			t.Errorf("RegisterFlags did not register -%s", name)
		}
	}
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.PlatformSpec != "crisp" || f.WeightsSpec != "both" {
		t.Errorf("defaults = platform %q weights %q, want crisp/both", f.PlatformSpec, f.WeightsSpec)
	}
	if f.Binder != kairos.BinderNames()[0] || f.Mapper != kairos.MapperNames()[0] ||
		f.Router != kairos.RouterNames()[0] || f.Validator != kairos.ValidatorNames()[0] {
		t.Errorf("strategy defaults %q/%q/%q/%q are not the registry defaults",
			f.Binder, f.Mapper, f.Router, f.Validator)
	}

	// The default wiring must produce a working manager: resolve the
	// defaults, build the platform, admit and release one application.
	p, err := f.BuildPlatform()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := f.StrategyOptions()
	if err != nil {
		t.Fatal(err)
	}
	k := kairos.New(p, opts...)
	adm, err := k.Admit(context.Background(), chain("defaults", 2, 40))
	if err != nil {
		t.Fatalf("defaults failed to admit: %v", err)
	}
	if err := k.Release(adm.Instance); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryNamesRoundTrip: every name a registry lists resolves
// back to a strategy carrying that name, and unknown names fail with
// an error that lists the vocabulary.
func TestRegistryNamesRoundTrip(t *testing.T) {
	for _, name := range kairos.BinderNames() {
		if b, err := kairos.BinderByName(name); err != nil || b.Name() != name {
			t.Errorf("BinderByName(%q) = %v, %v", name, b, err)
		}
	}
	for _, name := range kairos.MapperNames() {
		if m, err := kairos.MapperByName(name); err != nil || m.Name() != name {
			t.Errorf("MapperByName(%q) = %v, %v", name, m, err)
		}
	}
	for _, name := range kairos.RouterNames() {
		if r, err := kairos.RouterByName(name); err != nil || r.Name() != name {
			t.Errorf("RouterByName(%q) = %v, %v", name, r, err)
		}
	}
	for _, name := range kairos.ValidatorNames() {
		if v, err := kairos.ValidatorByName(name); err != nil || v.Name() != name {
			t.Errorf("ValidatorByName(%q) = %v, %v", name, v, err)
		}
	}
	for _, name := range kairos.PlacementNames() {
		if p, err := kairos.PlacementByName(name); err != nil || p.Name() != name {
			t.Errorf("PlacementByName(%q) = %v, %v", name, p, err)
		}
	}
}

// TestPhaseStrategiesPartialResolution: PhaseStrategies (the
// weights-free variant cmd/experiments uses) resolves defaults and
// propagates the first unknown name.
func TestPhaseStrategiesPartialResolution(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := kairos.RegisterFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	opts, err := f.PhaseStrategies()
	if err != nil || len(opts) != 4 {
		t.Fatalf("PhaseStrategies = %d options, %v", len(opts), err)
	}

	f.Validator = "nope"
	if _, err := f.PhaseStrategies(); err == nil {
		t.Error("PhaseStrategies accepted an unknown validator")
	}
	f.Validator = kairos.ValidatorNames()[0]
	f.Binder = "nope"
	if _, err := f.PhaseStrategies(); err == nil {
		t.Error("PhaseStrategies accepted an unknown binder")
	}
}

// TestBuildPlatformSpecErrors: the -platform vocabulary rejects
// malformed specs.
func TestBuildPlatformSpecErrors(t *testing.T) {
	for _, bad := range []string{"torus9", "mesh0x0", "meshAxB", "/nonexistent/p.json"} {
		f := &kairos.Flags{PlatformSpec: bad}
		if _, err := f.BuildPlatform(); err == nil {
			t.Errorf("BuildPlatform(%q) succeeded", bad)
		}
	}
}
