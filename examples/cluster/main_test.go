package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExampleRuns executes the example end to end (it exits the
// process on failure, which fails the test binary).
func TestExampleRuns(t *testing.T) {
	main()
}

// TestNoInternalImports: the cluster example demonstrates the public
// scale-out surface and must compile against repro/kairos alone.
func TestNoInternalImports(t *testing.T) {
	out, err := exec.Command("go", "list", "-f", "{{range .Imports}}{{.}}\n{{end}}", ".").Output()
	if err != nil {
		t.Skipf("go list unavailable: %v", err)
	}
	for _, imp := range strings.Fields(string(out)) {
		if strings.HasPrefix(imp, "repro/internal") {
			t.Errorf("example imports internal package %s; it must use repro/kairos only", imp)
		}
	}
}
