// Cluster: scale-out admission with kairos.Cluster, using only the
// public repro/kairos package.
//
// It builds a cluster of four independent mesh platforms behind one
// manager, subscribes to the merged shard-tagged event stream, admits
// a burst of applications under the power-of-two-choices placement
// policy (watching where each one lands), forces a spill-over by
// saturating one shard's favourite, injects a fault into one shard and
// sweeps the restart path, and prints the aggregated cluster
// statistics at the end.
//
// Run with: go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"

	"repro/kairos"
)

// pipeline builds an n-stage streaming pipeline of share% DSP tasks.
func pipeline(name string, n int, share int64) *kairos.Application {
	app := kairos.NewApplication(name)
	for i := 0; i < n; i++ {
		app.AddTask(fmt.Sprintf("stage%d", i), kairos.Internal, kairos.Implementation{
			Name: "stage-dsp", Target: kairos.TypeDSP,
			Requires: kairos.Resources(share, 16, 0, 0),
			Cost:     2, ExecTime: 5,
		})
	}
	for i := 0; i+1 < n; i++ {
		app.AddChannelRated(i, i+1, 1, 1, 2)
	}
	return app
}

func main() {
	// 1. Four shards, each its own 4×4 DSP mesh with a private
	// manager and lock: admissions on different shards run in
	// parallel with no shared contention.
	cluster, err := kairos.NewCluster(4,
		func(int) *kairos.Platform { return kairos.Mesh(4, 4, kairos.DefaultVCs) },
		kairos.WithPlacement(kairos.PlacementPowerOfTwo),
		kairos.WithClusterSeed(42),
		kairos.WithShardOptions(kairos.WithWeights(kairos.WeightsBoth)),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The merged event stream: every shard's lifecycle events on
	// one channel, tagged with the shard index.
	events, cancel := cluster.Subscribe()
	defer cancel()
	go func() {
		for ev := range events {
			switch e := ev.Event.(type) {
			case kairos.Admitted:
				fmt.Printf("  event: shard %d admitted %s\n", ev.Shard, e.Adm.Instance)
			case kairos.Evicted:
				fmt.Printf("  event: shard %d evicted %s (%s)\n", ev.Shard, e.Adm.Instance, e.Reason)
			}
		}
	}()

	// 3. A burst of admissions: power-of-two-choices spreads them.
	fmt.Println("admitting a burst of 8 pipelines:")
	var instances []string
	for i := 0; i < 8; i++ {
		adm, err := cluster.Admit(context.Background(), pipeline(fmt.Sprintf("app%d", i), 4, 60))
		if err != nil {
			log.Fatalf("admission failed: %v", err)
		}
		fmt.Printf("%s placed on shard %d (attempt %d)\n", adm.Instance, adm.Shard, adm.Attempts)
		instances = append(instances, adm.Instance)
	}
	stats := cluster.Stats()
	for i, s := range stats.Shards {
		fmt.Printf("shard %d: %d live\n", i, s.Live)
	}

	// 4. Fault tolerance across shards: disable the element hosting
	// the first stage of the first admission and force the affected
	// applications through the restart path — they move or are
	// restored, never silently lost.
	first, err := cluster.Readmit(context.Background(), instances[0])
	if err != nil {
		log.Fatal(err)
	}
	instances[0] = first.Instance
	p := cluster.Shard(first.Shard).Platform()
	faulted := first.Adm.Assignment[0]
	fmt.Printf("disabling element %s on shard %d\n", p.Element(faulted).Name, first.Shard)
	p.DisableElement(faulted)
	for _, res := range cluster.ReadmitAffected(context.Background()) {
		fmt.Printf("  shard %d: %s -> %s\n", res.Shard, res.Instance, res.Outcome)
		if res.Outcome == kairos.ReadmitMoved &&
			kairos.ClusterInstanceName(res.Shard, res.Instance) == instances[0] {
			instances[0] = kairos.ClusterInstanceName(res.Shard, res.NewInstance)
		}
	}
	p.EnableElement(faulted)

	// 5. Aggregated statistics and teardown.
	total := cluster.Stats().Total
	fmt.Printf("cluster totals: %d attempts, %d admitted, %d live across %d shards\n",
		total.Attempts, total.Admitted, total.Live, cluster.NumShards())
	cluster.ReleaseAll()
	fmt.Printf("released everything; %d live\n", cluster.Stats().Total.Live)
}
