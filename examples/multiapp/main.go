// Multiapp: run-time dynamics that design-time mapping cannot handle
// (the paper's core motivation, §I: "at design-time, it is unknown
// when, and what combinations of applications are requested").
//
// A workload of synthetic streaming applications arrives over time;
// every few arrivals, the oldest application exits and its resources
// are reclaimed. The example traces admissions, rejections (with the
// phase that rejected), platform fragmentation and utilization.
//
// Run with: go run ./examples/multiapp
package main

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/appgen"
	"repro/internal/platform"
	"repro/internal/resource"
	"repro/kairos"
)

func main() {
	ctx := context.Background()
	p := kairos.CRISP()
	k := kairos.New(p,
		kairos.WithWeights(kairos.WeightsBoth),
		kairos.WithAdvisoryValidation(), // synthetic apps carry no constraints
	)

	gen := appgen.New(appgen.NewConfig(appgen.Communication, appgen.Medium), 7)

	var order []string // admission order, for oldest-first release
	admitted, rejected := 0, 0
	rejectPhase := map[kairos.Phase]int{}

	fmt.Println("t   event                         result              frag%   dsp-used")
	for t := 1; t <= 40; t++ {
		app := gen.Next()
		adm, err := k.Admit(ctx, app)
		switch {
		case err == nil:
			admitted++
			order = append(order, adm.Instance)
			fmt.Printf("%-3d admit %-22s ok (%d tasks)        %5.1f   %s\n",
				t, app.Name, len(app.Tasks), k.Fragmentation(), dspLoad(p))
		default:
			rejected++
			var pe *kairos.PhaseError
			phase := "?"
			if errors.As(err, &pe) {
				rejectPhase[pe.Phase]++
				phase = pe.Phase.String()
			}
			fmt.Printf("%-3d admit %-22s REJECTED in %-8s %5.1f   %s\n",
				t, app.Name, phase, k.Fragmentation(), dspLoad(p))
		}

		// Every fourth arrival, the oldest application terminates:
		// run-time resource management reclaims its elements and
		// virtual channels.
		if t%4 == 0 && len(order) > 0 {
			oldest := order[0]
			order = order[1:]
			if err := k.Release(oldest); err != nil {
				panic(err)
			}
			fmt.Printf("%-3d exit  %-22s released            %5.1f   %s\n",
				t, oldest, k.Fragmentation(), dspLoad(p))
		}
	}

	fmt.Printf("\nadmitted %d, rejected %d (", admitted, rejected)
	for _, ph := range []kairos.Phase{kairos.PhaseBinding, kairos.PhaseMapping, kairos.PhaseRouting} {
		fmt.Printf("%s: %d ", ph, rejectPhase[ph])
	}
	fmt.Printf(")\nresident applications at the end: %d\n", len(k.Admitted()))
}

// dspLoad renders a small bar of how many DSPs host at least one task.
func dspLoad(p *platform.Platform) string {
	used, total := 0, 0
	var compute, capacity int64
	for _, e := range p.Elements() {
		if e.Type != platform.TypeDSP {
			continue
		}
		total++
		capacity += e.Pool().Capacity()[resource.Compute]
		compute += e.Pool().Used()[resource.Compute]
		if e.InUse() {
			used++
		}
	}
	return fmt.Sprintf("%2d/%d dsp, %3d%% compute", used, total, 100*compute/capacity)
}
