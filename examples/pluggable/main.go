// Pluggable: the public kairos API end to end, with a swapped phase
// strategy — the downstream-consumer scenario the package exists for.
// This example imports only repro/kairos; no internal packages.
//
// It builds a mesh platform, swaps the mapping phase for the
// non-default one-shot GAP mapper (selected by name from the strategy
// registry), subscribes to the manager's typed event stream, and
// drives an application through its lifecycle: admit → readmit
// (restart-based defragmentation) → release, printing every event the
// manager publishes along the way.
//
// Run with: go run ./examples/pluggable
package main

import (
	"context"
	"fmt"
	"log"

	"repro/kairos"
)

// pipeline builds an n-stage streaming pipeline.
func pipeline(name string, n int, share int64) *kairos.Application {
	app := kairos.NewApplication(name)
	for i := 0; i < n; i++ {
		app.AddTask(fmt.Sprintf("stage%d", i), kairos.Internal, kairos.Implementation{
			Name: "stage-dsp", Target: kairos.TypeDSP,
			Requires: kairos.Resources(share, 16, 0, 0),
			Cost:     2, ExecTime: 5,
		})
	}
	for i := 0; i+1 < n; i++ {
		app.AddChannelRated(i, i+1, 1, 1, 2)
	}
	return app
}

func main() {
	ctx := context.Background()

	// A non-default mapper from the strategy registry: one global GAP
	// over all tasks and elements instead of the paper's incremental
	// neighborhood search.
	mapper, err := kairos.MapperByName("gap")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered mappers:", kairos.MapperNames())

	p := kairos.Mesh(4, 4, kairos.DefaultVCs)
	k := kairos.New(p,
		kairos.WithWeights(kairos.WeightsBoth),
		kairos.WithMapper(mapper),
		kairos.WithoutValidation(),
	)

	// Subscribe before admitting: every lifecycle transition arrives
	// as a typed event, delivered outside the manager lock.
	events, cancel := k.Subscribe()
	defer cancel()
	drain := func() {
		for {
			select {
			case ev := <-events:
				switch e := ev.(type) {
				case kairos.Admitted:
					fmt.Printf("  event: admitted %s (%d tasks)\n", e.Adm.Instance, len(e.Adm.App.Tasks))
				case kairos.Released:
					fmt.Printf("  event: released %s\n", e.Instance)
				case kairos.Evicted:
					fmt.Printf("  event: evicted %s (%s)\n", e.Adm.Instance, e.Reason)
				case kairos.ReadmitFailed:
					fmt.Printf("  event: readmit of %s failed (restored=%v)\n", e.Instance, e.Restored)
				}
			default:
				return
			}
		}
	}

	// Admit two pipelines, then release the first to leave a hole.
	a, err := k.Admit(ctx, pipeline("a", 4, 60))
	if err != nil {
		log.Fatalf("admit a: %v", err)
	}
	b, err := k.Admit(ctx, pipeline("b", 4, 60))
	if err != nil {
		log.Fatalf("admit b: %v", err)
	}
	fmt.Printf("admitted %s and %s with the %q mapper\n", a.Instance, b.Instance, mapper.Name())
	if err := k.Release(a.Instance); err != nil {
		log.Fatal(err)
	}
	drain()

	// Readmit b: restart-based defragmentation into the hole. The old
	// instance is retired (Evicted with reason "readmit") and the
	// application continues under a new name (Admitted).
	b2, err := k.Readmit(ctx, b.Instance)
	if err != nil {
		log.Fatalf("readmit: %v", err)
	}
	fmt.Printf("readmitted %s as %s (fragmentation %.1f%%)\n", b.Instance, b2.Instance, k.Fragmentation())
	drain()

	// Release and show the final counters.
	if err := k.Release(b2.Instance); err != nil {
		log.Fatal(err)
	}
	drain()
	fmt.Println("live admissions:", len(k.Admitted()))
}
