// Quickstart: the smallest end-to-end use of the resource manager.
//
// It builds a 4×4 DSP mesh with I/O tiles, describes a three-stage
// streaming application with a throughput constraint, admits it
// through the four-phase workflow (binding → mapping → routing →
// validation) and prints the resulting execution layout.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/kairos"
)

func main() {
	// 1. A platform: 16 DSP tiles in a mesh, with a stream-in tile
	// attached to the north-west corner and a stream-out tile at the
	// south-east corner.
	p := kairos.MeshWithIO(4, 4, kairos.DefaultVCs)
	fmt.Println("platform:", p)

	// 2. An application: source → transform → sink. The source is
	// pinned to the io-in tile (ID 16, the first tile appended after
	// the 16 mesh tiles), like the paper's fixed I/O tasks.
	app := kairos.NewApplication("quickstart")
	source := app.AddTask("source", kairos.Input, kairos.Implementation{
		Name: "stream-in", Target: kairos.TypeIO,
		Requires: kairos.Resources(5, 4, 1, 0),
		Cost:     1, ExecTime: 4,
	})
	app.Tasks[source].FixedElement = 16

	transform := app.AddTask("transform", kairos.Internal,
		// Two candidate implementations: the binding phase picks the
		// cheaper one that fits.
		kairos.Implementation{
			Name: "fir-accurate", Target: kairos.TypeDSP,
			Requires: kairos.Resources(80, 32, 0, 0),
			Cost:     6, ExecTime: 10,
		},
		kairos.Implementation{
			Name: "fir-fast", Target: kairos.TypeDSP,
			Requires: kairos.Resources(50, 16, 0, 0),
			Cost:     3, ExecTime: 6,
		})

	sink := app.AddTask("sink", kairos.Output, kairos.Implementation{
		Name: "stream-out", Target: kairos.TypeDSP,
		Requires: kairos.Resources(20, 8, 0, 0),
		Cost:     1, ExecTime: 3,
	})

	app.AddChannelRated(source, transform, 1, 1, 4)
	app.AddChannelRated(transform, sink, 1, 1, 2)
	// Demand at least 50 graph iterations per 1000 time units.
	app.Constraints.MinThroughput = 50

	// 3. Admit it.
	k := kairos.New(p, kairos.WithWeights(kairos.WeightsBoth))
	adm, err := k.Admit(context.Background(), app)
	if err != nil {
		log.Fatalf("admission failed: %v", err)
	}

	// 4. Inspect the execution layout.
	fmt.Printf("admitted as %s\n", adm.Instance)
	for _, t := range app.Tasks {
		im := adm.Binding.Implementation(t.ID)
		fmt.Printf("  %-10s runs %-13s on %s\n",
			t.Name, im.Name, p.Element(adm.Assignment[t.ID]).Name)
	}
	for _, rt := range adm.Routes {
		fmt.Printf("  channel %d routed over %d hop(s)\n", rt.Channel, rt.Hops())
	}
	fmt.Printf("throughput %.4f iterations/time-unit (required %.4f)\n",
		adm.Report.Throughput, adm.Report.Required)
	fmt.Printf("allocation took %v (binding %v, mapping %v, routing %v, validation %v)\n",
		adm.Times.Total(), adm.Times.Binding, adm.Times.Mapping,
		adm.Times.Routing, adm.Times.Validation)

	// 5. Release the resources again.
	if err := k.Release(adm.Instance); err != nil {
		log.Fatal(err)
	}
	fmt.Println("released; platform fragmentation:", k.Fragmentation(), "%")
}
