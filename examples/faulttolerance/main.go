// Fault tolerance: circumventing hardware faults at run time — one of
// the paper's motivations for run-time (rather than design-time)
// resource management (§I: resource management is required "to
// circumvent hardware faults ... due to imperfect production processes
// and wear of materials").
//
// The example admits an application, then injects faults: a DSP tile
// dies, then a NoC link dies. Because the paper assumes task migration
// is impossible, the running application is restarted: released and
// re-admitted, at which point the mapping and routing phases steer
// around the faulty resources. Finally a whole package is disabled to
// show graceful degradation until admission genuinely fails.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"context"
	"fmt"
	"log"

	"repro/kairos"
)

// pipeline builds an n-stage streaming pipeline of 60%-compute tasks.
func pipeline(n int) *kairos.Application {
	app := kairos.NewApplication(fmt.Sprintf("pipeline%d", n))
	for i := 0; i < n; i++ {
		app.AddTask(fmt.Sprintf("stage%d", i), kairos.Internal, kairos.Implementation{
			Name: "stage-dsp", Target: kairos.TypeDSP,
			Requires: kairos.Resources(60, 16, 0, 0),
			Cost:     2, ExecTime: 5,
		})
	}
	for i := 0; i+1 < n; i++ {
		app.AddChannelRated(i, i+1, 1, 1, 2)
	}
	return app
}

func usedElements(p *kairos.Platform, adm *kairos.Admission) []string {
	var out []string
	for _, t := range adm.App.Tasks {
		out = append(out, p.Element(adm.Assignment[t.ID]).Name)
	}
	return out
}

func main() {
	ctx := context.Background()
	p := kairos.CRISP()
	k := kairos.New(p,
		kairos.WithWeights(kairos.WeightsBoth),
		kairos.WithAdvisoryValidation(),
	)

	app := pipeline(6)
	adm, err := k.Admit(ctx, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted on: %v\n", usedElements(p, adm))

	// Fault 1: the element hosting stage2 dies. Migration is not
	// possible (paper assumption), so the application restarts: the
	// resource manager releases it and allocates around the fault.
	victim := adm.Assignment[2]
	fmt.Printf("\n!! element %s fails\n", p.Element(victim).Name)
	if err := k.Release(adm.Instance); err != nil {
		log.Fatal(err)
	}
	p.DisableElement(victim)

	adm, err = k.Admit(ctx, app)
	if err != nil {
		log.Fatalf("re-admission after element fault failed: %v", err)
	}
	fmt.Printf("re-admitted on: %v\n", usedElements(p, adm))
	for _, t := range app.Tasks {
		if adm.Assignment[t.ID] == victim {
			log.Fatal("mapping used the faulty element")
		}
	}

	// Fault 2: a NoC link on one of the routes dies; routing must
	// find detours on re-admission.
	route := adm.Routes[len(adm.Routes)/2]
	if route.Hops() > 0 {
		a, b := route.Path[0], route.Path[1]
		fmt.Printf("\n!! link %s-%s fails\n", p.Element(a).Name, p.Element(b).Name)
		if err := k.Release(adm.Instance); err != nil {
			log.Fatal(err)
		}
		p.DisableLink(a, b)
		adm, err = k.Admit(ctx, app)
		if err != nil {
			log.Fatalf("re-admission after link fault failed: %v", err)
		}
		for _, rt := range adm.Routes {
			for i := 0; i+1 < len(rt.Path); i++ {
				if (rt.Path[i] == a && rt.Path[i+1] == b) || (rt.Path[i] == b && rt.Path[i+1] == a) {
					log.Fatal("routing used the faulty link")
				}
			}
		}
		fmt.Printf("re-admitted; all routes avoid the dead link\n")
	}

	// Fault 3: progressive package loss. Disable packages one by one
	// and re-admit until the platform can no longer host the
	// application.
	fmt.Println("\nprogressive package failure:")
	if err := k.Release(adm.Instance); err != nil {
		log.Fatal(err)
	}
	for pkg := 0; pkg < 5; pkg++ {
		for _, e := range p.Elements() {
			if e.Package == pkg {
				p.DisableElement(e.ID)
			}
		}
		adm, err = k.Admit(ctx, app)
		if err != nil {
			fmt.Printf("  packages 0..%d dead: REJECTED (%v)\n", pkg, err)
			break
		}
		fmt.Printf("  packages 0..%d dead: still admitted on %v\n", pkg, usedElements(p, adm))
		if err := k.Release(adm.Instance); err != nil {
			log.Fatal(err)
		}
	}
}
