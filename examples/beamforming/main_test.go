package main

import "testing"

// TestExampleRuns executes the example end to end; examples are part
// of the documented surface and must keep working (the example exits
// the process on failure, which fails the test binary).
func TestExampleRuns(t *testing.T) {
	main()
}
