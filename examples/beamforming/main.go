// Beamforming: the paper's case study (§IV-A).
//
// A 53-task tree-structured beamformer needs all 45 DSPs of the CRISP
// platform — "a difficult mapping problem". This example admits it
// with the default weights, prints the per-phase times and the
// per-package placement, and then samples a coarse weight grid to show
// that admission requires both mapping objectives (paper Fig. 10).
//
// Run with: go run ./examples/beamforming
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/kairos"
)

func main() {
	app, p := experiments.NewBeamforming()
	fmt.Printf("application: %v\nplatform:    %v\n\n", app, p)

	k := kairos.New(p, kairos.WithWeights(kairos.WeightsBoth))
	adm, err := k.Admit(context.Background(), app)
	if err != nil {
		log.Fatalf("admission failed: %v", err)
	}

	fmt.Println("admitted. per-phase times (paper, on a 200 MHz ARM926:")
	fmt.Println("binding 70.4 ms, mapping 21.7 ms, routing 7.4 ms, validation 20.6 ms):")
	fmt.Printf("  binding    %v\n  mapping    %v\n  routing    %v\n  validation %v\n\n",
		adm.Times.Binding, adm.Times.Mapping, adm.Times.Routing, adm.Times.Validation)

	// Placement by package: the cost function's communication and
	// internal-contention objectives pack each antenna group into one
	// DSP package.
	byPkg := make(map[int][]string)
	for _, t := range app.Tasks {
		e := p.Element(adm.Assignment[t.ID])
		byPkg[e.Package] = append(byPkg[e.Package], t.Name)
	}
	for pkg := -1; pkg < 5; pkg++ {
		if tasks := byPkg[pkg]; len(tasks) > 0 {
			label := fmt.Sprintf("package %d", pkg)
			if pkg < 0 {
				label = "hub (fpga/arm/io)"
			}
			fmt.Printf("  %-18s %2d tasks: %v\n", label, len(tasks), tasks[:min(4, len(tasks))])
		}
	}

	cross := 0
	for _, ch := range app.Channels {
		a := p.Element(adm.Assignment[ch.Src])
		b := p.Element(adm.Assignment[ch.Dst])
		if a.Package != b.Package {
			cross++
		}
	}
	fmt.Printf("\ncross-package channels: %d of %d\n", cross, len(app.Channels))
	fmt.Printf("throughput: %.5f iterations/time-unit\n\n", adm.Report.Throughput)

	// Coarse Fig. 10: which weight ratios admit the application?
	fmt.Println("admission over a coarse weight grid ('#' admitted, '.' rejected):")
	res := experiments.Fig10(experiments.Fig10Config{
		CommMax: 25, CommStep: 5, FragMax: 250, FragStep: 50,
	})
	fmt.Print(experiments.FormatFig10(res))
	fmt.Println("the zero-weight borders never admit: both objectives are needed,")
	fmt.Println("as the paper observes (\"disabling either one of the objectives")
	fmt.Println("never gives a successful result\").")
}
