package optimal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/resource"
)

func dspImpl(share int64) graph.Implementation {
	return graph.Implementation{
		Name: "dsp", Target: platform.TypeDSP,
		Requires: resource.Of(share, 8, 0, 0), Cost: 1, ExecTime: 5,
	}
}

func mustSolver(t *testing.T, app *graph.Application, p *platform.Platform) *Solver {
	t.Helper()
	b, err := binding.Bind(app, p)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	s, err := New(app, p, b, DefaultObjective())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestSolveChainOnLine(t *testing.T) {
	// A 3-task chain on a 3-element line: the optimum places the
	// chain contiguously with 1 hop per channel.
	p := platform.Mesh(3, 1, 2)
	app := graph.New("chain")
	for i := 0; i < 3; i++ {
		app.AddTask("t", graph.Internal, dspImpl(80))
	}
	app.AddChannel(0, 1)
	app.AddChannel(1, 2)
	s := mustSolver(t, app, p)
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Base cost 3×1 + comm 2 channels × 1 hop × tokenSize 1 = 5.
	if res.Cost != 5 {
		t.Errorf("optimal cost = %v, want 5 (assignment %v)", res.Cost, res.Assignment)
	}
	if got := s.CostOf(res.Assignment); got != res.Cost {
		t.Errorf("CostOf(optimal) = %v, want %v", got, res.Cost)
	}
}

func TestSolveRespectsCapacity(t *testing.T) {
	// Two 80% tasks cannot share one element even if that would be
	// communication-optimal.
	p := platform.Mesh(2, 1, 2)
	app := graph.New("pair")
	app.AddTask("a", graph.Internal, dspImpl(80))
	app.AddTask("b", graph.Internal, dspImpl(80))
	app.AddChannel(0, 1)
	s := mustSolver(t, app, p)
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Assignment[0] == res.Assignment[1] {
		t.Error("optimal overcommitted an element")
	}
}

func TestSolveColocatesWhenPossible(t *testing.T) {
	// Two 40% tasks share one element: 0 hops beats any spread.
	p := platform.Mesh(2, 1, 2)
	app := graph.New("pair")
	app.AddTask("a", graph.Internal, dspImpl(40))
	app.AddTask("b", graph.Internal, dspImpl(40))
	app.AddChannel(0, 1)
	s := mustSolver(t, app, p)
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Assignment[0] != res.Assignment[1] {
		t.Errorf("optimal should co-locate: %v", res.Assignment)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := platform.Mesh(1, 1, 2)
	app := graph.New("two-big")
	app.AddTask("a", graph.Internal, dspImpl(80))
	app.AddTask("b", graph.Internal, dspImpl(80))
	app.AddChannel(0, 1)
	b, err := binding.Bind(app, p)
	if err != nil {
		// Binding may already reject; both outcomes are fine.
		return
	}
	s, err := New(app, p, b, DefaultObjective())
	if err != nil {
		return // no feasible element for some task
	}
	if _, err := s.Solve(); err == nil {
		t.Error("infeasible instance must fail")
	}
}

func TestSolveRespectsFixedElement(t *testing.T) {
	p := platform.MeshWithIO(3, 3, 2)
	app := graph.New("fixed")
	src := app.AddTask("src", graph.Input, graph.Implementation{
		Name: "io", Target: platform.TypeIO,
		Requires: resource.Of(5, 4, 1, 0), Cost: 1, ExecTime: 4,
	})
	app.Tasks[src].FixedElement = 9
	app.AddTask("w", graph.Internal, dspImpl(50))
	app.AddChannel(0, 1)
	s := mustSolver(t, app, p)
	res, err := s.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Assignment[src] != 9 {
		t.Errorf("fixed task on %d, want 9", res.Assignment[src])
	}
}

func TestTooManyTasksRejected(t *testing.T) {
	p := platform.Mesh(5, 5, 2)
	app := graph.New("big")
	for i := 0; i < MaxTasks+1; i++ {
		app.AddTask("t", graph.Internal, dspImpl(10))
	}
	b, err := binding.Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(app, p, b, DefaultObjective())
	if err != nil {
		t.Fatalf("New must accept oversized instances (only Solve is bounded): %v", err)
	}
	if _, err := s.Solve(); err == nil {
		t.Error("oversized instance must be rejected by Solve")
	}
	if lb := s.LowerBound(); lb <= 0 {
		t.Errorf("LowerBound on an oversized instance = %v, want > 0 (base costs)", lb)
	}
}

func TestLowerBoundNeverExceedsOptimum(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		p := platform.Mesh(3, 3, 2)
		app := randomApp(r, 2+r.Intn(5))
		b, err := binding.Bind(app, p)
		if err != nil {
			continue
		}
		s, err := New(app, p, b, DefaultObjective())
		if err != nil {
			continue
		}
		res, err := s.Solve()
		if err != nil {
			continue
		}
		if lb := s.LowerBound(); lb > res.Cost+1e-9 {
			t.Fatalf("trial %d: LowerBound %v exceeds optimal cost %v", trial, lb, res.Cost)
		}
	}
}

// randomApp builds a small random connected app.
func randomApp(r *rand.Rand, n int) *graph.Application {
	app := graph.New("rand")
	for i := 0; i < n; i++ {
		app.AddTask("t", graph.Internal, dspImpl(int64(20+r.Intn(50))))
	}
	for i := 1; i < n; i++ {
		app.AddChannelRated(r.Intn(i), i, 1, 1, int64(1+r.Intn(4)))
	}
	return app
}

func TestPropertyOptimalNeverWorseThanHeuristic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := platform.Mesh(4, 4, 4)
		app := randomApp(r, 3+r.Intn(5))
		b, err := binding.Bind(app, p)
		if err != nil {
			return true
		}
		s, err := New(app, p, b, DefaultObjective())
		if err != nil {
			return true
		}
		opt, err := s.Solve()
		if err != nil {
			return true
		}
		// The heuristic maps on a clone so the solver's free view
		// stays valid.
		q := p.Clone()
		b2, err := binding.Bind(app, q)
		if err != nil {
			return true
		}
		res, err := mapping.MapApplication(app, q, b2, mapping.Options{
			Instance: "h", Weights: mapping.WeightsCommunication,
		})
		if err != nil {
			return true // heuristic may fail where exact succeeds
		}
		return s.CostOf(res.Assignment) >= opt.Cost-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyOptimalAssignmentFeasible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := platform.Mesh(3, 3, 2)
		app := randomApp(r, 3+r.Intn(4))
		b, err := binding.Bind(app, p)
		if err != nil {
			return true
		}
		s, err := New(app, p, b, DefaultObjective())
		if err != nil {
			return true
		}
		res, err := s.Solve()
		if err != nil {
			return true
		}
		// Sum demands per element; must fit capacities.
		load := make(map[int]resource.Vector)
		for _, task := range app.Tasks {
			e := res.Assignment[task.ID]
			if e < 0 {
				return false
			}
			d := b.Demand(task.ID)
			if cur, ok := load[e]; ok {
				load[e] = cur.Add(d)
			} else {
				load[e] = d.Clone()
			}
		}
		for e, l := range load {
			if !l.Fits(p.Element(e).Pool().Free()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
