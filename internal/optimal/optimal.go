// Package optimal implements an exact task-mapping solver by
// branch-and-bound — the "ILP formulation" the paper defers to future
// work ("In future research, we compare these results with an ILP
// formulation to determine the quality of the resource allocations",
// §V). It searches the full assignment space of an application on a
// platform for the minimum-cost mapping under the communication-
// distance objective, which makes the quality of the run-time
// heuristic measurable (see BenchmarkMappingQualityVsOptimal).
//
// The solver is exponential in the number of tasks and exists for
// evaluation, not for run-time use — which is the paper's point: the
// heuristic must be cheap enough for run-time, and its quality is
// assessed offline.
package optimal

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/resource"
)

// Objective is the cost model: implementation base costs plus
// CommWeight × Σ_channels hopdistance(src, dst) × tokenSize. It is the
// communication part of the paper's mapping cost function, which is
// the part that can be compared objectively (the fragmentation terms
// depend on admission history).
type Objective struct {
	CommWeight float64
}

// DefaultObjective matches mapping.WeightsCommunication.
func DefaultObjective() Objective { return Objective{CommWeight: 1} }

// Result is the optimal assignment and its cost.
type Result struct {
	// Assignment maps task ID → element ID.
	Assignment []int
	// Cost is the objective value of the assignment.
	Cost float64
	// Nodes is the number of search-tree nodes explored.
	Nodes int
}

// Solver holds the precomputed state for one (application, platform)
// instance.
type Solver struct {
	app   *graph.Application
	p     *platform.Platform
	bind  *binding.Binding
	obj   Objective
	dist  [][]int // all-pairs hop distances
	avail [][]int // per task: candidate element IDs
}

// MaxTasks bounds the instance size the solver accepts; beyond this
// the search space is too large to be worth exploring exactly.
const MaxTasks = 12

// New prepares a solver. The platform is read, never modified. Any
// instance size is accepted — CostOf and LowerBound are polynomial;
// only Solve enforces MaxTasks.
func New(app *graph.Application, p *platform.Platform, bind *binding.Binding, obj Objective) (*Solver, error) {
	s := &Solver{app: app, p: p, bind: bind, obj: obj}

	n := p.NumElements()
	s.dist = make([][]int, n)
	for i := 0; i < n; i++ {
		s.dist[i] = p.BFSDistances([]int{i})
	}

	s.avail = make([][]int, len(app.Tasks))
	for _, t := range app.Tasks {
		var cand []int
		for _, e := range p.Elements() {
			if !e.Enabled() || e.Type != bind.Target(t.ID) {
				continue
			}
			if t.FixedElement != graph.NoFixedElement && t.FixedElement != e.ID {
				continue
			}
			if bind.Demand(t.ID).Fits(e.Pool().Free()) {
				cand = append(cand, e.ID)
			}
		}
		if len(cand) == 0 {
			return nil, fmt.Errorf("optimal: task %d has no feasible element", t.ID)
		}
		s.avail[t.ID] = cand
	}
	return s, nil
}

// CostOf evaluates the objective for an arbitrary complete assignment
// (e.g. one produced by the run-time heuristic), so heuristic and
// optimal solutions can be compared under the same metric. Unreachable
// element pairs are charged the platform diameter + 1.
func (s *Solver) CostOf(assignment []int) float64 {
	cost := 0.0
	for _, t := range s.app.Tasks {
		cost += s.bind.Implementation(t.ID).Cost
	}
	diameter := 0
	for _, row := range s.dist {
		for _, d := range row {
			if d > diameter {
				diameter = d
			}
		}
	}
	for _, ch := range s.app.Channels {
		a, b := assignment[ch.Src], assignment[ch.Dst]
		d := s.dist[a][b]
		if d == platform.Unreachable {
			d = diameter + 1
		}
		cost += s.obj.CommWeight * float64(d) * float64(ch.TokenSize)
	}
	return cost
}

// LowerBound returns an admissible bound on the cost of any complete
// assignment: the binding's implementation base costs plus, per
// channel, the cheapest distance over all candidate element pairs
// (capacity interactions between tasks are relaxed away). Unlike
// Solve it is polynomial, so it bounds instances beyond MaxTasks.
func (s *Solver) LowerBound() float64 {
	bound := 0.0
	for _, t := range s.app.Tasks {
		bound += s.bind.Implementation(t.ID).Cost
	}
	for _, ch := range s.app.Channels {
		min := math.Inf(1)
		for _, a := range s.avail[ch.Src] {
			for _, b := range s.avail[ch.Dst] {
				if d := s.dist[a][b]; d != platform.Unreachable && float64(d) < min {
					min = float64(d)
				}
			}
		}
		if !math.IsInf(min, 1) {
			bound += s.obj.CommWeight * min * float64(ch.TokenSize)
		}
	}
	return bound
}

// Solve finds a minimum-cost complete assignment, or an error when the
// instance is infeasible (no capacity-respecting assignment exists) or
// larger than MaxTasks.
func (s *Solver) Solve() (*Result, error) {
	nTasks := len(s.app.Tasks)
	if nTasks > MaxTasks {
		return nil, fmt.Errorf("optimal: %d tasks exceed the exact-solver limit of %d", nTasks, MaxTasks)
	}

	// Branch order: most-constrained task first (fewest candidates),
	// which shrinks the tree near the root.
	order := make([]int, nTasks)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return len(s.avail[order[a]]) < len(s.avail[order[b]])
	})

	// Per-channel cheapest-possible cost, for the lower bound: a
	// channel between unplaced tasks costs at least 0; between a
	// placed and an unplaced task at least the distance to the
	// nearest candidate.
	assignment := make([]int, nTasks)
	for i := range assignment {
		assignment[i] = -1
	}
	free := make([]resource.Vector, s.p.NumElements())
	for _, e := range s.p.Elements() {
		free[e.ID] = e.Pool().Free().Clone()
	}

	baseCost := 0.0
	for _, t := range s.app.Tasks {
		baseCost += s.bind.Implementation(t.ID).Cost
	}

	best := &Result{Cost: math.Inf(1)}

	// chCost returns the communication cost the channel contributes
	// once both endpoints are placed.
	chCost := func(ch *graph.Channel) float64 {
		a, b := assignment[ch.Src], assignment[ch.Dst]
		if a < 0 || b < 0 {
			return 0
		}
		d := s.dist[a][b]
		if d == platform.Unreachable {
			return math.Inf(1)
		}
		return s.obj.CommWeight * float64(d) * float64(ch.TokenSize)
	}

	var nodes int
	var rec func(k int, cost float64)
	rec = func(k int, cost float64) {
		nodes++
		if cost >= best.Cost {
			return // bound: partial cost only grows
		}
		if k == nTasks {
			best.Cost = cost
			best.Assignment = append([]int(nil), assignment...)
			return
		}
		task := order[k]
		demand := s.bind.Demand(task)
		for _, e := range s.avail[task] {
			if !demand.Fits(free[e]) {
				continue
			}
			assignment[task] = e
			delta := 0.0
			for _, chID := range s.app.OutChannels(task) {
				delta += chCost(s.app.Channels[chID])
			}
			for _, chID := range s.app.InChannels(task) {
				delta += chCost(s.app.Channels[chID])
			}
			if !math.IsInf(delta, 1) {
				free[e].SubInPlace(demand)
				rec(k+1, cost+delta)
				free[e].AddInPlace(demand)
			}
			assignment[task] = -1
		}
	}
	rec(0, baseCost)
	best.Nodes = nodes

	if math.IsInf(best.Cost, 1) {
		return nil, fmt.Errorf("optimal: no feasible assignment exists")
	}
	return best, nil
}
