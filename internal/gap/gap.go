// Package gap implements the Generalized Assignment Problem solver of
// the mapping phase (paper §III-C), following the approach of Cohen,
// Katzir and Raz ("An efficient approximation for the generalized
// assignment problem", IPL 2006): iterate over the bins (candidate
// elements), and for every bin run a knapsack over all items (tasks),
// where an item's profit is the cost *reduction* it would gain by
// moving to this bin from its current best assignment. The algorithm
// guarantees a (1+α)-approximation, with α the knapsack solver's
// ratio, at O(E·k(T) + E·T) time.
//
// The solver is resumable: MapApplication grows the candidate element
// set when tasks remain unassigned and invokes the solver again; the
// mappings and their costs from the previous invocation are reused
// (paper Fig. 4 and §III-C).
package gap

import (
	"math"
	"sort"

	"repro/internal/knapsack"
	"repro/internal/resource"
)

// Instance abstracts the mapping sub-problem seen by the GAP solver.
// Costs are per (task, element) and must be finite when ok; lower is
// better. Capacity is the element's free resources at sub-problem
// start; Demand is the resource vector of the task's bound
// implementation.
type Instance interface {
	// Demand returns the resource requirement of the task.
	Demand(task int) resource.Vector
	// Capacity returns the free capacity of the element.
	Capacity(elem int) resource.Vector
	// Cost returns the cost of mapping task onto elem, and whether
	// the element is available for the task at all (av(e,t)).
	Cost(task, elem int) (float64, bool)
}

// State carries assignments across invocations of Process within one
// mapping sub-problem. The zero value is not usable; use NewState.
//
// The state is slice-backed and indexed by task/element ID: GAP runs
// once per neighborhood level of every admission attempt, and the
// previous map-of-int representation cost two hash probes per cost
// evaluation plus a rebuild per level. Reset makes an instance
// reusable across sub-problems without reallocating (the mapping
// phase pools its whole scratch, State included).
type State struct {
	// c1 is the cost of the best known mapping per task (paper:
	// "vector c1 contains the cost of the best known mappings",
	// initially very large), indexed by task ID.
	c1 []float64
	// assign holds task → element for tasks with finite c1; -1 means
	// unassigned.
	assign []int
	// processed records bins already iterated over, so re-invocation
	// with a grown element set only visits the new ones.
	processed []bool
	// items and c2 are per-bin scratch for Process.
	items []knapsack.Item
	c2    []float64
}

// NewState returns an empty solver state.
func NewState() *State { return &State{} }

// Reset forgets all assignments and processed bins, keeping storage.
func (s *State) Reset() {
	s.c1 = s.c1[:0]
	s.assign = s.assign[:0]
	s.processed = s.processed[:0]
}

// ensureTask grows the per-task vectors so task fits.
func (s *State) ensureTask(task int) {
	for len(s.assign) <= task {
		s.assign = append(s.assign, -1)
		s.c1 = append(s.c1, math.Inf(1))
	}
}

// ensureElem grows the per-element vector so elem fits.
func (s *State) ensureElem(elem int) {
	for len(s.processed) <= elem {
		s.processed = append(s.processed, false)
	}
}

// Assignment returns the current task → element assignment (a copy).
func (s *State) Assignment() map[int]int {
	out := make(map[int]int)
	for t, e := range s.assign {
		if e >= 0 {
			out[t] = e
		}
	}
	return out
}

// Assigned reports whether the task has an assignment.
func (s *State) Assigned(task int) bool {
	return task >= 0 && task < len(s.assign) && s.assign[task] >= 0
}

// AssignedTo returns the element currently holding the task and
// whether it is assigned. Cost functions that depend on the state of
// the partial mapping (the paper notes this costs extra re-evaluation)
// read the tentative assignment through this.
func (s *State) AssignedTo(task int) (int, bool) {
	if !s.Assigned(task) {
		return 0, false
	}
	return s.assign[task], true
}

// Cost returns the cost of the task's current assignment, or +Inf.
func (s *State) Cost(task int) float64 {
	if task < 0 || task >= len(s.c1) {
		return math.Inf(1)
	}
	return s.c1[task]
}

// TotalCost returns the summed cost of all current assignments.
func (s *State) TotalCost() float64 {
	var sum float64
	for t, c := range s.c1 {
		if s.assign[t] >= 0 {
			sum += c
		}
	}
	return sum
}

// Unassigned returns the tasks from the given set without an
// assignment, in ID order.
func (s *State) Unassigned(tasks []int) []int {
	var out []int
	for _, t := range tasks {
		if !s.Assigned(t) {
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

// allAssigned reports whether every task in tasks has an assignment,
// without materializing the unassigned list.
func (s *State) allAssigned(tasks []int) bool {
	for _, t := range tasks {
		if !s.Assigned(t) {
			return false
		}
	}
	return true
}

// Process runs one GAP pass over the elements not yet processed, in
// the order given. For every such element it computes the mapping cost
// of each task (vector c2 in the paper), passes the cost reductions
// c1(t) − c2(t) as knapsack profits, and reassigns the selected tasks.
// "Most of the time, picking a yet unmapped task is more beneficial
// than remapping a task to another element" — unmapped tasks have
// c1 = +Inf, so any feasible placement has unbounded profit; the
// profit is clamped to keep arithmetic finite while preserving the
// ordering by c2.
//
// It returns true when every task in tasks is assigned afterwards.
func (s *State) Process(inst Instance, tasks, elems []int, solver knapsack.Solver) bool {
	// Profit clamp for unassigned tasks: larger than any achievable
	// finite reduction, minus c2 so cheaper placements still win.
	const unassignedBase = 1e12

	for _, t := range tasks {
		s.ensureTask(t)
		for len(s.c2) <= t {
			s.c2 = append(s.c2, 0)
		}
	}
	for _, e := range elems {
		s.ensureElem(e)
	}
	for _, e := range elems {
		if s.processed[e] {
			continue
		}
		s.processed[e] = true

		capacity := inst.Capacity(e)
		items := s.items[:0]
		for _, t := range tasks {
			if s.assign[t] == e {
				continue // already here
			}
			cost, ok := inst.Cost(t, e)
			if !ok {
				continue
			}
			s.c2[t] = cost
			var profit float64
			if s.assign[t] >= 0 {
				profit = s.c1[t] - cost // only positive reductions matter
			} else {
				profit = unassignedBase - cost
			}
			items = append(items, knapsack.Item{ID: t, Size: inst.Demand(t), Profit: profit})
		}
		s.items = items[:0]
		if len(items) == 0 {
			continue
		}
		sol := solver.Solve(capacity, items)
		for _, t := range sol.IDs {
			// The task moves to e; its previous bin (if any) keeps
			// the hole — bins are processed once, as in Cohen et al.
			s.assign[t] = e
			s.c1[t] = s.c2[t]
		}
	}
	return s.allAssigned(tasks)
}
