// Package gap implements the Generalized Assignment Problem solver of
// the mapping phase (paper §III-C), following the approach of Cohen,
// Katzir and Raz ("An efficient approximation for the generalized
// assignment problem", IPL 2006): iterate over the bins (candidate
// elements), and for every bin run a knapsack over all items (tasks),
// where an item's profit is the cost *reduction* it would gain by
// moving to this bin from its current best assignment. The algorithm
// guarantees a (1+α)-approximation, with α the knapsack solver's
// ratio, at O(E·k(T) + E·T) time.
//
// The solver is resumable: MapApplication grows the candidate element
// set when tasks remain unassigned and invokes the solver again; the
// mappings and their costs from the previous invocation are reused
// (paper Fig. 4 and §III-C).
package gap

import (
	"math"
	"sort"

	"repro/internal/knapsack"
	"repro/internal/resource"
)

// Instance abstracts the mapping sub-problem seen by the GAP solver.
// Costs are per (task, element) and must be finite when ok; lower is
// better. Capacity is the element's free resources at sub-problem
// start; Demand is the resource vector of the task's bound
// implementation.
type Instance interface {
	// Demand returns the resource requirement of the task.
	Demand(task int) resource.Vector
	// Capacity returns the free capacity of the element.
	Capacity(elem int) resource.Vector
	// Cost returns the cost of mapping task onto elem, and whether
	// the element is available for the task at all (av(e,t)).
	Cost(task, elem int) (float64, bool)
}

// State carries assignments across invocations of Process within one
// mapping sub-problem. The zero value is not usable; use NewState.
type State struct {
	// c1 is the cost of the best known mapping per task (paper:
	// "vector c1 contains the cost of the best known mappings",
	// initially very large).
	c1 map[int]float64
	// assign maps task → element for tasks with finite c1.
	assign map[int]int
	// processed records bins already iterated over, so re-invocation
	// with a grown element set only visits the new ones.
	processed map[int]bool
}

// NewState returns an empty solver state.
func NewState() *State {
	return &State{
		c1:        make(map[int]float64),
		assign:    make(map[int]int),
		processed: make(map[int]bool),
	}
}

// Assignment returns the current task → element assignment (a copy).
func (s *State) Assignment() map[int]int {
	out := make(map[int]int, len(s.assign))
	for t, e := range s.assign {
		out[t] = e
	}
	return out
}

// Assigned reports whether the task has an assignment.
func (s *State) Assigned(task int) bool {
	_, ok := s.assign[task]
	return ok
}

// AssignedTo returns the element currently holding the task and
// whether it is assigned. Cost functions that depend on the state of
// the partial mapping (the paper notes this costs extra re-evaluation)
// read the tentative assignment through this.
func (s *State) AssignedTo(task int) (int, bool) {
	e, ok := s.assign[task]
	return e, ok
}

// Cost returns the cost of the task's current assignment, or +Inf.
func (s *State) Cost(task int) float64 {
	if c, ok := s.c1[task]; ok {
		return c
	}
	return math.Inf(1)
}

// TotalCost returns the summed cost of all current assignments.
func (s *State) TotalCost() float64 {
	var sum float64
	for _, c := range s.c1 {
		sum += c
	}
	return sum
}

// Unassigned returns the tasks from the given set without an
// assignment, in ID order.
func (s *State) Unassigned(tasks []int) []int {
	var out []int
	for _, t := range tasks {
		if !s.Assigned(t) {
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

// Process runs one GAP pass over the elements not yet processed, in
// the order given. For every such element it computes the mapping cost
// of each task (vector c2 in the paper), passes the cost reductions
// c1(t) − c2(t) as knapsack profits, and reassigns the selected tasks.
// "Most of the time, picking a yet unmapped task is more beneficial
// than remapping a task to another element" — unmapped tasks have
// c1 = +Inf, so any feasible placement has unbounded profit; the
// profit is clamped to keep arithmetic finite while preserving the
// ordering by c2.
//
// It returns true when every task in tasks is assigned afterwards.
func (s *State) Process(inst Instance, tasks, elems []int, solver knapsack.Solver) bool {
	// Profit clamp for unassigned tasks: larger than any achievable
	// finite reduction, minus c2 so cheaper placements still win.
	const unassignedBase = 1e12

	for _, e := range elems {
		if s.processed[e] {
			continue
		}
		s.processed[e] = true

		capacity := inst.Capacity(e)
		items := make([]knapsack.Item, 0, len(tasks))
		c2 := make(map[int]float64, len(tasks))
		for _, t := range tasks {
			if cur, ok := s.assign[t]; ok && cur == e {
				continue // already here
			}
			cost, ok := inst.Cost(t, e)
			if !ok {
				continue
			}
			c2[t] = cost
			var profit float64
			if c1, assigned := s.c1[t]; assigned {
				profit = c1 - cost // only positive reductions matter
			} else {
				profit = unassignedBase - cost
			}
			items = append(items, knapsack.Item{ID: t, Size: inst.Demand(t), Profit: profit})
		}
		if len(items) == 0 {
			continue
		}
		sol := solver.Solve(capacity, items)
		for _, t := range sol.IDs {
			// The task moves to e; its previous bin (if any) keeps
			// the hole — bins are processed once, as in Cohen et al.
			s.assign[t] = e
			s.c1[t] = c2[t]
		}
	}
	return len(s.Unassigned(tasks)) == 0
}
