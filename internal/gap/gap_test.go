package gap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/knapsack"
	"repro/internal/resource"
)

// mock is an in-memory Instance for tests.
type mock struct {
	demand   map[int]resource.Vector
	capacity map[int]resource.Vector
	cost     map[[2]int]float64 // (task, elem) → cost; missing = unavailable
}

func newMock() *mock {
	return &mock{
		demand:   make(map[int]resource.Vector),
		capacity: make(map[int]resource.Vector),
		cost:     make(map[[2]int]float64),
	}
}

func (m *mock) Demand(t int) resource.Vector   { return m.demand[t] }
func (m *mock) Capacity(e int) resource.Vector { return m.capacity[e] }
func (m *mock) Cost(t, e int) (float64, bool) {
	c, ok := m.cost[[2]int{t, e}]
	return c, ok
}

func TestAssignsAllWhenCapacitySuffices(t *testing.T) {
	m := newMock()
	tasks := []int{0, 1, 2}
	elems := []int{10, 11}
	for _, task := range tasks {
		m.demand[task] = resource.Of(40, 0, 0, 0)
	}
	for _, e := range elems {
		m.capacity[e] = resource.Of(100, 0, 0, 0)
	}
	for _, task := range tasks {
		for _, e := range elems {
			m.cost[[2]int{task, e}] = float64(task + e)
		}
	}
	s := NewState()
	if !s.Process(m, tasks, elems, knapsack.Greedy{}) {
		t.Fatalf("expected full assignment, unassigned: %v", s.Unassigned(tasks))
	}
	// Capacity: each element fits 2 tasks of 40; 3 tasks over 2 elems.
	counts := make(map[int]int)
	for _, e := range s.Assignment() {
		counts[e]++
	}
	for e, n := range counts {
		if n > 2 {
			t.Errorf("element %d overloaded with %d tasks", e, n)
		}
	}
}

func TestRespectsAvailability(t *testing.T) {
	m := newMock()
	m.demand[0] = resource.Of(10, 0, 0, 0)
	m.capacity[5] = resource.Of(100, 0, 0, 0)
	// No cost entry: element unavailable for the task.
	s := NewState()
	if s.Process(m, []int{0}, []int{5}, knapsack.Greedy{}) {
		t.Error("task assigned to unavailable element")
	}
	if s.Assigned(0) {
		t.Error("Assigned(0) should be false")
	}
	if !math.IsInf(s.Cost(0), 1) {
		t.Errorf("Cost of unassigned = %v, want +Inf", s.Cost(0))
	}
}

func TestPrefersCheaperElement(t *testing.T) {
	m := newMock()
	m.demand[0] = resource.Of(10, 0, 0, 0)
	m.capacity[1] = resource.Of(100, 0, 0, 0)
	m.capacity[2] = resource.Of(100, 0, 0, 0)
	m.cost[[2]int{0, 1}] = 50
	m.cost[[2]int{0, 2}] = 5
	s := NewState()
	// Element 1 processed first grabs the task...
	s.Process(m, []int{0}, []int{1}, knapsack.Greedy{})
	if got := s.Assignment()[0]; got != 1 {
		t.Fatalf("assigned to %d, want 1", got)
	}
	// ...but the cheaper element 2 steals it in the next pass.
	s.Process(m, []int{0}, []int{2}, knapsack.Greedy{})
	if got := s.Assignment()[0]; got != 2 {
		t.Errorf("after second pass assigned to %d, want 2 (steal)", got)
	}
	if s.Cost(0) != 5 {
		t.Errorf("cost = %v, want 5", s.Cost(0))
	}
	if s.TotalCost() != 5 {
		t.Errorf("TotalCost = %v, want 5", s.TotalCost())
	}
}

func TestNoStealWhenNotCheaper(t *testing.T) {
	m := newMock()
	m.demand[0] = resource.Of(10, 0, 0, 0)
	m.capacity[1] = resource.Of(100, 0, 0, 0)
	m.capacity[2] = resource.Of(100, 0, 0, 0)
	m.cost[[2]int{0, 1}] = 5
	m.cost[[2]int{0, 2}] = 50
	s := NewState()
	s.Process(m, []int{0}, []int{1}, knapsack.Greedy{})
	s.Process(m, []int{0}, []int{2}, knapsack.Greedy{})
	if got := s.Assignment()[0]; got != 1 {
		t.Errorf("assigned to %d, want to stay on 1", got)
	}
}

func TestElementsProcessedOnce(t *testing.T) {
	m := newMock()
	m.demand[0] = resource.Of(60, 0, 0, 0)
	m.demand[1] = resource.Of(60, 0, 0, 0)
	m.capacity[1] = resource.Of(100, 0, 0, 0)
	m.cost[[2]int{0, 1}] = 1
	m.cost[[2]int{1, 1}] = 2
	s := NewState()
	// Only one of the two tasks fits.
	if s.Process(m, []int{0, 1}, []int{1}, knapsack.Greedy{}) {
		t.Fatal("both tasks cannot fit on one element")
	}
	first := s.Assignment()
	// Re-processing the same element must not change anything (the
	// element would appear to have full capacity again, which would
	// overcommit it).
	s.Process(m, []int{0, 1}, []int{1}, knapsack.Greedy{})
	second := s.Assignment()
	if len(first) != len(second) {
		t.Errorf("assignment changed on reprocessing: %v vs %v", first, second)
	}
	for k, v := range first {
		if second[k] != v {
			t.Errorf("assignment changed on reprocessing: %v vs %v", first, second)
		}
	}
}

func TestIncrementalGrowthAssignsLeftovers(t *testing.T) {
	// Mirrors Fig. 4: the candidate set grows until SolveGAP maps
	// all tasks.
	m := newMock()
	tasks := []int{0, 1, 2, 3}
	for _, task := range tasks {
		m.demand[task] = resource.Of(80, 0, 0, 0)
	}
	for e := 10; e < 14; e++ {
		m.capacity[e] = resource.Of(100, 0, 0, 0)
		for _, task := range tasks {
			m.cost[[2]int{task, e}] = float64(e)
		}
	}
	s := NewState()
	if s.Process(m, tasks, []int{10}, knapsack.Greedy{}) {
		t.Fatal("one element cannot host four tasks")
	}
	if s.Process(m, tasks, []int{10, 11}, knapsack.Greedy{}) {
		t.Fatal("two elements cannot host four tasks")
	}
	if !s.Process(m, tasks, []int{10, 11, 12, 13}, knapsack.Greedy{}) {
		t.Fatalf("four elements must host four tasks; unassigned %v", s.Unassigned(tasks))
	}
}

// randomInstance builds a random feasible-ish instance.
func randomInstance(r *rand.Rand, nTasks, nElems int) (*mock, []int, []int) {
	m := newMock()
	tasks := make([]int, nTasks)
	elems := make([]int, nElems)
	for i := range tasks {
		tasks[i] = i
		m.demand[i] = resource.Of(int64(10+r.Intn(70)), int64(r.Intn(32)), 0, 0)
	}
	for j := range elems {
		e := 100 + j
		elems[j] = e
		m.capacity[e] = resource.Of(100, 64, 0, 0)
		for i := range tasks {
			if r.Intn(5) > 0 { // 80% availability
				m.cost[[2]int{i, e}] = float64(1 + r.Intn(100))
			}
		}
	}
	return m, tasks, elems
}

func TestPropertyAssignmentsNeverOvercommit(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, tasks, elems := randomInstance(r, 2+r.Intn(10), 1+r.Intn(6))
		s := NewState()
		// Process in two waves to exercise resumption.
		half := len(elems) / 2
		s.Process(m, tasks, elems[:half], knapsack.Greedy{})
		s.Process(m, tasks, elems, knapsack.Greedy{})
		// Check per-element load ≤ capacity.
		load := make(map[int]resource.Vector)
		for task, e := range s.Assignment() {
			if cur, ok := load[e]; ok {
				load[e] = cur.Add(m.demand[task])
			} else {
				load[e] = m.demand[task].Clone()
			}
		}
		for e, l := range load {
			if !l.Fits(m.capacity[e]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAssignedOnlyToAvailable(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, tasks, elems := randomInstance(r, 2+r.Intn(10), 1+r.Intn(6))
		s := NewState()
		s.Process(m, tasks, elems, knapsack.Exact{})
		for task, e := range s.Assignment() {
			if _, ok := m.cost[[2]int{task, e}]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCostMatchesAssignment(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, tasks, elems := randomInstance(r, 2+r.Intn(8), 1+r.Intn(5))
		s := NewState()
		s.Process(m, tasks, elems, knapsack.Greedy{})
		for task, e := range s.Assignment() {
			want, ok := m.cost[[2]int{task, e}]
			if !ok || s.Cost(task) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
