package platform

// Topology search primitives. The mapping phase traverses the platform
// with breadth-first search starting from the elements allocated in
// the previous iteration (paper §III-B); the routing phase and the
// distance estimates both rely on hop distances over enabled links.

// Unreachable is the distance reported for elements that cannot be
// reached from the BFS origins.
const Unreachable = -1

// BFSDistances returns the hop distance from the nearest origin to
// every element, over enabled elements and links. Disabled elements
// and elements with no path get Unreachable. Disabled origins are
// ignored.
func (p *Platform) BFSDistances(origins []int) []int {
	dist := make([]int, len(p.elements))
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int, 0, len(origins))
	for _, o := range origins {
		if o < 0 || o >= len(p.elements) || !p.elements[o].enabled {
			continue
		}
		if dist[o] == Unreachable {
			dist[o] = 0
			queue = append(queue, o)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range p.Neighbors(cur) {
			if dist[n] == Unreachable {
				dist[n] = dist[cur] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// Ring returns the elements at exactly hop distance k from the origin
// set (the k-th neighborhood N_k), in ID order. Ring(origins, 0)
// returns the enabled origins themselves.
func (p *Platform) Ring(origins []int, k int) []int {
	dist := p.BFSDistances(origins)
	var out []int
	for id, d := range dist {
		if d == k {
			out = append(out, id)
		}
	}
	return out
}

// WithinDistance returns all elements at hop distance ≤ k from the
// origin set, in ID order.
func (p *Platform) WithinDistance(origins []int, k int) []int {
	dist := p.BFSDistances(origins)
	var out []int
	for id, d := range dist {
		if d != Unreachable && d <= k {
			out = append(out, id)
		}
	}
	return out
}

// Connected reports whether all enabled elements are mutually
// reachable over enabled links. Builders use it as a sanity check and
// the fault-tolerance example uses it to detect platform partition.
func (p *Platform) Connected() bool {
	start := -1
	enabled := 0
	for _, e := range p.elements {
		if e.enabled {
			enabled++
			if start < 0 {
				start = e.ID
			}
		}
	}
	if enabled <= 1 {
		return true
	}
	dist := p.BFSDistances([]int{start})
	for _, e := range p.elements {
		if e.enabled && dist[e.ID] == Unreachable {
			return false
		}
	}
	return true
}

// DistanceMatrix is the sparse distance matrix built while searching
// the platform for elements (paper §III-D): lookups that were never
// discovered during the search fail, and the cost function charges a
// penalty for them.
type DistanceMatrix struct {
	d map[int]map[int]int
}

// NewDistanceMatrix returns an empty sparse matrix.
func NewDistanceMatrix() *DistanceMatrix {
	return &DistanceMatrix{d: make(map[int]map[int]int)}
}

// Record stores the (symmetric) distance between two elements.
func (m *DistanceMatrix) Record(a, b, dist int) {
	m.set(a, b, dist)
	m.set(b, a, dist)
}

func (m *DistanceMatrix) set(a, b, dist int) {
	row, ok := m.d[a]
	if !ok {
		row = make(map[int]int)
		m.d[a] = row
	}
	// Keep the smallest observed distance: rings may rediscover an
	// element from a closer origin in a later iteration.
	if cur, seen := row[b]; !seen || dist < cur {
		row[b] = dist
	}
}

// Lookup returns the recorded distance and whether it is known.
func (m *DistanceMatrix) Lookup(a, b int) (int, bool) {
	if a == b {
		return 0, true
	}
	row, ok := m.d[a]
	if !ok {
		return 0, false
	}
	d, ok := row[b]
	return d, ok
}

// Len returns the number of (directed) entries, for introspection.
func (m *DistanceMatrix) Len() int {
	n := 0
	for _, row := range m.d {
		n += len(row)
	}
	return n
}

// RecordBFS runs a BFS from the origins and records the distance of
// every reached element to each origin. It returns the distance slice
// for reuse. This is how the mapping phase populates the sparse matrix
// "while searching the platform for elements".
func (m *DistanceMatrix) RecordBFS(p *Platform, origins []int) []int {
	dist := p.BFSDistances(origins)
	for id, d := range dist {
		if d == Unreachable {
			continue
		}
		for _, o := range origins {
			// Distance to the *set* of origins is a lower bound on
			// the per-origin distance; record against every origin so
			// route-cost lookups between a candidate and any mapped
			// peer succeed. The per-origin refinement happens when
			// the candidate is later used as an origin itself.
			m.Record(o, id, d)
		}
	}
	return dist
}
