package platform

// Topology search primitives. The mapping phase traverses the platform
// with breadth-first search starting from the elements allocated in
// the previous iteration (paper §III-B); the routing phase and the
// distance estimates both rely on hop distances over enabled links.

// Unreachable is the distance reported for elements that cannot be
// reached from the BFS origins.
const Unreachable = -1

// BFSDistances returns the hop distance from the nearest origin to
// every element, over enabled elements and links. Disabled elements
// and elements with no path get Unreachable. Disabled origins are
// ignored.
func (p *Platform) BFSDistances(origins []int) []int {
	dist := make([]int, len(p.elements))
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int, 0, len(p.elements))
	for _, o := range origins {
		if o < 0 || o >= len(p.elements) || !p.elements[o].enabled {
			continue
		}
		if dist[o] == Unreachable {
			dist[o] = 0
			queue = append(queue, o)
		}
	}
	var neigh []int
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		neigh = p.AppendNeighbors(neigh[:0], cur)
		for _, n := range neigh {
			if dist[n] == Unreachable {
				dist[n] = dist[cur] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// Ring returns the elements at exactly hop distance k from the origin
// set (the k-th neighborhood N_k), in ID order. Ring(origins, 0)
// returns the enabled origins themselves.
func (p *Platform) Ring(origins []int, k int) []int {
	dist := p.BFSDistances(origins)
	var out []int
	for id, d := range dist {
		if d == k {
			out = append(out, id)
		}
	}
	return out
}

// WithinDistance returns all elements at hop distance ≤ k from the
// origin set, in ID order.
func (p *Platform) WithinDistance(origins []int, k int) []int {
	dist := p.BFSDistances(origins)
	var out []int
	for id, d := range dist {
		if d != Unreachable && d <= k {
			out = append(out, id)
		}
	}
	return out
}

// Connected reports whether all enabled elements are mutually
// reachable over enabled links. Builders use it as a sanity check and
// the fault-tolerance example uses it to detect platform partition.
func (p *Platform) Connected() bool {
	start := -1
	enabled := 0
	for _, e := range p.elements {
		if e.enabled {
			enabled++
			if start < 0 {
				start = e.ID
			}
		}
	}
	if enabled <= 1 {
		return true
	}
	dist := p.BFSDistances([]int{start})
	for _, e := range p.elements {
		if e.enabled && dist[e.ID] == Unreachable {
			return false
		}
	}
	return true
}

// DistanceMatrix is the sparse distance matrix built while searching
// the platform for elements (paper §III-D): lookups that were never
// discovered during the search fail, and the cost function charges a
// penalty for them.
//
// The matrix is dense under the hood — one flat slice of n×n entries,
// grown on demand — because the mapping phase probes it in the
// innermost loop of every GAP cost evaluation and a map-of-maps costs
// two hash lookups (and two allocations per new row) there. Reset
// makes an instance reusable across admissions without reallocating.
type DistanceMatrix struct {
	n       int   // row length (max element ID seen + 1)
	d       []int // n×n distances; negative = unknown
	entries int   // recorded directed entries, for Len
}

// NewDistanceMatrix returns an empty sparse matrix.
func NewDistanceMatrix() *DistanceMatrix {
	return &DistanceMatrix{}
}

// Reset forgets every recorded distance, keeping the storage.
func (m *DistanceMatrix) Reset() {
	for i := range m.d {
		m.d[i] = Unreachable
	}
	m.entries = 0
}

// grow resizes the matrix so IDs up to hi fit, preserving content.
func (m *DistanceMatrix) grow(hi int) {
	n := hi + 1
	if n <= m.n {
		return
	}
	d := make([]int, n*n)
	for i := range d {
		d[i] = Unreachable
	}
	for r := 0; r < m.n; r++ {
		copy(d[r*n:r*n+m.n], m.d[r*m.n:(r+1)*m.n])
	}
	m.n, m.d = n, d
}

// Record stores the (symmetric) distance between two elements.
func (m *DistanceMatrix) Record(a, b, dist int) {
	if a < 0 || b < 0 {
		return
	}
	if a >= m.n || b >= m.n {
		m.grow(max(a, b))
	}
	m.set(a, b, dist)
	m.set(b, a, dist)
}

func (m *DistanceMatrix) set(a, b, dist int) {
	// Keep the smallest observed distance: rings may rediscover an
	// element from a closer origin in a later iteration.
	cur := m.d[a*m.n+b]
	if cur < 0 {
		m.entries++
	}
	if cur < 0 || dist < cur {
		m.d[a*m.n+b] = dist
	}
}

// Lookup returns the recorded distance and whether it is known.
func (m *DistanceMatrix) Lookup(a, b int) (int, bool) {
	if a == b {
		return 0, true
	}
	if a < 0 || b < 0 || a >= m.n || b >= m.n {
		return 0, false
	}
	d := m.d[a*m.n+b]
	if d < 0 {
		return 0, false
	}
	return d, true
}

// Len returns the number of (directed) entries, for introspection.
func (m *DistanceMatrix) Len() int { return m.entries }

// RecordBFS runs a BFS from the origins and records the distance of
// every reached element to each origin. It returns the distance slice
// for reuse. This is how the mapping phase populates the sparse matrix
// "while searching the platform for elements".
func (m *DistanceMatrix) RecordBFS(p *Platform, origins []int) []int {
	dist := p.BFSDistances(origins)
	for id, d := range dist {
		if d == Unreachable {
			continue
		}
		for _, o := range origins {
			// Distance to the *set* of origins is a lower bound on
			// the per-origin distance; record against every origin so
			// route-cost lookups between a candidate and any mapped
			// peer succeed. The per-origin refinement happens when
			// the candidate is later used as an origin itself.
			m.Record(o, id, d)
		}
	}
	return dist
}
