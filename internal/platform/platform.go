// Package platform models the heterogeneous MPSoC that the resource
// manager allocates from: a set of processing elements E connected by
// links L ⊆ E × E (paper §III). Elements provide resources as vectors
// (package resource); links provide a bounded number of virtual
// channels that the routing phase time-shares between applications
// (paper §II, [11]).
//
// The model is deliberately generic — the mapping algorithm "works on
// a variety of platforms" (paper §II) — so the package also ships
// builders for the CRISP platform of the paper's evaluation (Fig. 6),
// regular meshes, and randomized irregular topologies.
package platform

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/resource"
)

// Common element types used by the builders and the application
// generator. Type strings are free-form; availability of an element
// for a task is decided by the implementation's target type.
const (
	TypeDSP    = "dsp"  // Xentium-like streaming DSP core
	TypeGPP    = "gpp"  // general-purpose processor (the ARM)
	TypeFPGA   = "fpga" // reconfigurable fabric
	TypeMemory = "mem"  // on-chip memory tile
	TypeTest   = "test" // hardware test unit (dependability)
	TypeIO     = "io"   // I/O interface tile
)

// Occupant identifies one task instance placed on an element.
type Occupant struct {
	App  string // application instance name (unique per admission)
	Task int    // task ID within the application
}

// Element is one processing element of the platform.
type Element struct {
	ID   int
	Type string
	Name string
	// Pos is an optional (x, y) position for builders that have a
	// geometric layout; purely informational.
	Pos [2]int
	// Package groups elements of one chip/package (CRISP has 5
	// DSP packages); -1 when not applicable. The cost function's
	// connectivity bonus favors chip borders.
	Package int

	pool      *resource.Pool
	enabled   bool
	occupants map[Occupant]resource.Vector
	wear      int
}

// Pool exposes the element's resource bookkeeping.
func (e *Element) Pool() *resource.Pool { return e.pool }

// Wear returns the number of task placements the element has ever
// hosted. It persists across Remove and Reset: wear models lifetime
// material degradation, one of the mapping objectives the paper lists
// (§III: "wear leveling").
func (e *Element) Wear() int { return e.wear }

// Enabled reports whether the element is usable (fault injection can
// disable elements at run time; the paper motivates run-time resource
// management partly by fault tolerance).
func (e *Element) Enabled() bool { return e.enabled }

// InUse reports whether any task occupies the element.
func (e *Element) InUse() bool { return len(e.occupants) > 0 }

// OccupantCount returns the number of tasks placed on the element
// without materializing the occupant list (the validation phase reads
// it for the time-sharing contention factor).
func (e *Element) OccupantCount() int { return len(e.occupants) }

// HostsPeer reports whether the element hosts a task of the named
// application whose ID is marked in isPeer. The mapping cost function
// calls it in its innermost loop; membership is order-independent, so
// the map is iterated directly without building the sorted occupant
// list.
func (e *Element) HostsPeer(app string, isPeer []bool) bool {
	for occ := range e.occupants {
		if occ.App == app && occ.Task >= 0 && occ.Task < len(isPeer) && isPeer[occ.Task] {
			return true
		}
	}
	return false
}

// Occupants returns the occupants in deterministic (app, task) order.
func (e *Element) Occupants() []Occupant {
	out := make([]Occupant, 0, len(e.occupants))
	for occ := range e.occupants {
		out = append(out, occ)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].Task < out[j].Task
	})
	return out
}

// HostsTask reports whether the given occupant is on this element.
func (e *Element) HostsTask(occ Occupant) bool {
	_, ok := e.occupants[occ]
	return ok
}

// HostsApp reports whether any task of the named application occupies
// this element.
func (e *Element) HostsApp(app string) bool {
	for occ := range e.occupants {
		if occ.App == app {
			return true
		}
	}
	return false
}

// Link is one directed communication link with a virtual-channel pool.
// Undirected physical links are represented by two Links, one per
// direction, each with its own virtual channels (as in the CRISP NoC,
// where each direction has separate lanes).
type Link struct {
	From, To int
	VCs      int // total virtual channels
	used     int
	enabled  bool
}

// Free returns the number of free virtual channels.
func (l *Link) Free() int { return l.VCs - l.used }

// Used returns the number of allocated virtual channels.
func (l *Link) Used() int { return l.used }

// Enabled reports whether the link is usable.
func (l *Link) Enabled() bool { return l.enabled }

// Platform is the MPSoC model: elements, directed links, and an
// adjacency index. The zero value is unusable; use New.
type Platform struct {
	elements []*Element
	links    map[[2]int]*Link
	adj      [][]int // adjacency by element ID (neighbors in ID order)
	space    resource.Space
}

// New returns an empty platform over the default resource space.
func New() *Platform {
	return &Platform{
		links: make(map[[2]int]*Link),
		space: resource.DefaultSpace,
	}
}

// AddElement appends an element with the given type, name and
// capacity, returning its ID.
func (p *Platform) AddElement(typ, name string, capacity resource.Vector) int {
	id := len(p.elements)
	p.elements = append(p.elements, &Element{
		ID:        id,
		Type:      typ,
		Name:      name,
		Package:   -1,
		pool:      resource.NewPool(capacity),
		enabled:   true,
		occupants: make(map[Occupant]resource.Vector),
	})
	p.adj = append(p.adj, nil)
	return id
}

// Connect creates a bidirectional physical link between a and b with
// vcs virtual channels in each direction. Connecting an element to
// itself or re-connecting an existing pair is a programming error.
func (p *Platform) Connect(a, b, vcs int) error {
	if a == b {
		return fmt.Errorf("platform: self-link on element %d", a)
	}
	if a < 0 || a >= len(p.elements) || b < 0 || b >= len(p.elements) {
		return fmt.Errorf("platform: connect %d-%d out of range", a, b)
	}
	if _, dup := p.links[[2]int{a, b}]; dup {
		return fmt.Errorf("platform: duplicate link %d-%d", a, b)
	}
	p.links[[2]int{a, b}] = &Link{From: a, To: b, VCs: vcs, enabled: true}
	p.links[[2]int{b, a}] = &Link{From: b, To: a, VCs: vcs, enabled: true}
	p.adj[a] = insertSorted(p.adj[a], b)
	p.adj[b] = insertSorted(p.adj[b], a)
	return nil
}

func insertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// MustConnect is Connect that panics on error; intended for builders
// with statically correct topologies.
func (p *Platform) MustConnect(a, b, vcs int) {
	if err := p.Connect(a, b, vcs); err != nil {
		panic(err)
	}
}

// NumElements returns the total number of elements (including
// disabled ones).
func (p *Platform) NumElements() int { return len(p.elements) }

// Element returns the element with the given ID, or nil when out of
// range.
func (p *Platform) Element(id int) *Element {
	if id < 0 || id >= len(p.elements) {
		return nil
	}
	return p.elements[id]
}

// Elements returns all elements in ID order (shared slice; read-only).
func (p *Platform) Elements() []*Element { return p.elements }

// Link returns the directed link from a to b, or nil when absent.
func (p *Platform) Link(a, b int) *Link { return p.links[[2]int{a, b}] }

// Links returns all directed links in deterministic order.
func (p *Platform) Links() []*Link {
	keys := make([][2]int, 0, len(p.links))
	for k := range p.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]*Link, len(keys))
	for i, k := range keys {
		out[i] = p.links[k]
	}
	return out
}

// Neighbors returns the enabled neighbors of id reachable over enabled
// links, in ID order.
func (p *Platform) Neighbors(id int) []int {
	return p.AppendNeighbors(nil, id)
}

// AppendNeighbors appends the enabled neighbors of id reachable over
// enabled links, in ID order, to dst and returns it. Hot paths (the
// routers, the mapping cost function, the platform searches) call it
// with a reused scratch buffer so neighbor iteration does not
// allocate.
func (p *Platform) AppendNeighbors(dst []int, id int) []int {
	for _, n := range p.adj[id] {
		if !p.elements[n].enabled {
			continue
		}
		if l := p.links[[2]int{id, n}]; l == nil || !l.enabled {
			continue
		}
		dst = append(dst, n)
	}
	return dst
}

// Degree returns the number of enabled neighbors of id. The cost
// function uses it as the connectivity of an element: elements on chip
// borders have lower degree and are favored for isolation-prone
// placements (paper §III-D). It counts without materializing the
// neighbor list — the cost function asks on every evaluation.
func (p *Platform) Degree(id int) int {
	n := 0
	for _, nb := range p.adj[id] {
		if !p.elements[nb].enabled {
			continue
		}
		if l := p.links[[2]int{id, nb}]; l == nil || !l.enabled {
			continue
		}
		n++
	}
	return n
}

// errors for placement bookkeeping
var (
	ErrDisabled     = errors.New("platform: element disabled")
	ErrNotOccupant  = errors.New("platform: task not placed on element")
	ErrDupOccupant  = errors.New("platform: task already placed on element")
	ErrNoSuchTask   = errors.New("platform: unknown occupant")
	ErrLinkDisabled = errors.New("platform: link disabled")
	ErrNoVCs        = errors.New("platform: no free virtual channels")
)

// Place allocates demand on element id for the occupant. It is the
// commit operation of the mapping phase.
func (p *Platform) Place(id int, occ Occupant, demand resource.Vector) error {
	e := p.Element(id)
	if e == nil {
		return fmt.Errorf("platform: place on unknown element %d", id)
	}
	if !e.enabled {
		return fmt.Errorf("%w: element %d", ErrDisabled, id)
	}
	if _, dup := e.occupants[occ]; dup {
		return fmt.Errorf("%w: %v on element %d", ErrDupOccupant, occ, id)
	}
	if err := e.pool.Alloc(demand); err != nil {
		return err
	}
	e.occupants[occ] = demand.Clone()
	e.wear++
	return nil
}

// Restore places an occupant like Place but accepts disabled
// elements: it re-establishes a layout that existed before a fault
// (tasks cannot migrate, so a restored application keeps running where
// it ran — paper §I-A).
func (p *Platform) Restore(id int, occ Occupant, demand resource.Vector) error {
	e := p.Element(id)
	if e == nil {
		return fmt.Errorf("platform: restore on unknown element %d", id)
	}
	if _, dup := e.occupants[occ]; dup {
		return fmt.Errorf("%w: %v on element %d", ErrDupOccupant, occ, id)
	}
	if err := e.pool.Alloc(demand); err != nil {
		return err
	}
	e.occupants[occ] = demand.Clone()
	// Restoring is not new wear: the placement existed before.
	return nil
}

// RestoreVC reserves a virtual channel like AllocVC but accepts
// disabled links, for layout replay.
func (p *Platform) RestoreVC(a, b int) error {
	l := p.Link(a, b)
	if l == nil {
		return fmt.Errorf("platform: no link %d→%d", a, b)
	}
	if l.Free() <= 0 {
		return fmt.Errorf("%w: %d→%d", ErrNoVCs, a, b)
	}
	l.used++
	return nil
}

// Remove releases the occupant's resources from element id.
func (p *Platform) Remove(id int, occ Occupant) error {
	e := p.Element(id)
	if e == nil {
		return fmt.Errorf("platform: remove from unknown element %d", id)
	}
	demand, ok := e.occupants[occ]
	if !ok {
		return fmt.Errorf("%w: %v on element %d", ErrNotOccupant, occ, id)
	}
	if err := e.pool.Release(demand); err != nil {
		return err
	}
	delete(e.occupants, occ)
	return nil
}

// AllocVC reserves one virtual channel on the directed link a→b.
func (p *Platform) AllocVC(a, b int) error {
	l := p.Link(a, b)
	if l == nil {
		return fmt.Errorf("platform: no link %d→%d", a, b)
	}
	if !l.enabled {
		return fmt.Errorf("%w: %d→%d", ErrLinkDisabled, a, b)
	}
	if l.Free() <= 0 {
		return fmt.Errorf("%w: %d→%d", ErrNoVCs, a, b)
	}
	l.used++
	return nil
}

// ReleaseVC returns one virtual channel on the directed link a→b.
func (p *Platform) ReleaseVC(a, b int) error {
	l := p.Link(a, b)
	if l == nil {
		return fmt.Errorf("platform: no link %d→%d", a, b)
	}
	if l.used <= 0 {
		return fmt.Errorf("platform: over-release of VC on %d→%d", a, b)
	}
	l.used--
	return nil
}

// DisableElement marks an element faulty. Its resources stay
// allocated (running tasks are not migrated — the paper assumes task
// migration is impossible), but no new placements or routes use it.
func (p *Platform) DisableElement(id int) {
	if e := p.Element(id); e != nil {
		e.enabled = false
	}
}

// EnableElement marks an element usable again.
func (p *Platform) EnableElement(id int) {
	if e := p.Element(id); e != nil {
		e.enabled = true
	}
}

// DisableLink marks both directions of the physical link a-b faulty.
func (p *Platform) DisableLink(a, b int) {
	if l := p.Link(a, b); l != nil {
		l.enabled = false
	}
	if l := p.Link(b, a); l != nil {
		l.enabled = false
	}
}

// EnableLink marks both directions of the physical link a-b usable.
func (p *Platform) EnableLink(a, b int) {
	if l := p.Link(a, b); l != nil {
		l.enabled = true
	}
	if l := p.Link(b, a); l != nil {
		l.enabled = true
	}
}

// Reset releases all occupants and virtual channels, returning the
// platform to its empty state (experiments empty the platform between
// sequences).
func (p *Platform) Reset() {
	for _, e := range p.elements {
		e.pool.Reset()
		e.occupants = make(map[Occupant]resource.Vector)
	}
	for _, l := range p.links {
		l.used = 0
	}
}

// Clone returns a deep copy, including allocation state and
// enabled/disabled flags.
func (p *Platform) Clone() *Platform {
	q := New()
	q.space = p.space
	q.elements = make([]*Element, len(p.elements))
	q.adj = make([][]int, len(p.adj))
	for i, e := range p.elements {
		occ := make(map[Occupant]resource.Vector, len(e.occupants))
		for o, d := range e.occupants {
			occ[o] = d.Clone()
		}
		q.elements[i] = &Element{
			ID: e.ID, Type: e.Type, Name: e.Name, Pos: e.Pos, Package: e.Package,
			pool: e.pool.Clone(), enabled: e.enabled, occupants: occ, wear: e.wear,
		}
		q.adj[i] = append([]int(nil), p.adj[i]...)
	}
	for k, l := range p.links {
		q.links[k] = &Link{From: l.From, To: l.To, VCs: l.VCs, used: l.used, enabled: l.enabled}
	}
	return q
}

// CountByType returns how many enabled elements exist per type.
func (p *Platform) CountByType() map[string]int {
	out := make(map[string]int)
	for _, e := range p.elements {
		if e.enabled {
			out[e.Type]++
		}
	}
	return out
}

// FreeByType aggregates the free resources of enabled elements per
// type. The binding phase uses it for the "required resources must be
// available somewhere in the platform" check.
func (p *Platform) FreeByType() map[string]resource.Vector {
	out := make(map[string]resource.Vector)
	for _, e := range p.elements {
		if !e.enabled {
			continue
		}
		free := e.pool.Free()
		if cur, ok := out[e.Type]; ok {
			out[e.Type] = cur.Add(free)
		} else {
			out[e.Type] = free
		}
	}
	return out
}

// MaxFreeByType returns, per element type, the component-wise maximum
// free vector over enabled elements of that type: the largest single
// placement that could possibly succeed per axis.
func (p *Platform) MaxFreeByType() map[string]resource.Vector {
	out := make(map[string]resource.Vector)
	for _, e := range p.elements {
		if !e.enabled {
			continue
		}
		free := e.pool.Free()
		if cur, ok := out[e.Type]; ok {
			out[e.Type] = cur.Max(free)
		} else {
			out[e.Type] = free.Clone()
		}
	}
	return out
}

// ExternalFragmentation implements the paper's metric (§III-A): the
// percentage of pairs of adjacent enabled elements of which exactly
// one element is used, over all pairs of adjacent enabled elements.
// Returns 0 when the platform has no adjacent pairs.
func (p *Platform) ExternalFragmentation() float64 {
	pairs, frag := 0, 0
	for k, l := range p.links {
		if k[0] > k[1] || !l.enabled { // count each physical pair once
			continue
		}
		a, b := p.elements[k[0]], p.elements[k[1]]
		if !a.enabled || !b.enabled {
			continue
		}
		pairs++
		if a.InUse() != b.InUse() {
			frag++
		}
	}
	if pairs == 0 {
		return 0
	}
	return 100 * float64(frag) / float64(pairs)
}

// String summarizes the platform.
func (p *Platform) String() string {
	byType := p.CountByType()
	types := make([]string, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Strings(types)
	s := fmt.Sprintf("platform{%d elements, %d links", len(p.elements), len(p.links)/2)
	for _, t := range types {
		s += fmt.Sprintf(", %s:%d", t, byType[t])
	}
	return s + "}"
}
