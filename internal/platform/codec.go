package platform

// Platform descriptions. The resource manager is platform-generic
// (paper §II: the algorithm "works on a variety of platforms"), so
// platforms can be described declaratively and loaded at run time —
// the moral equivalent of the platform description the CRISP
// configuration software consumes. JSON keeps the format inspectable
// and diffable.

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/resource"
)

// ElementDesc describes one processing element.
type ElementDesc struct {
	Name     string  `json:"name"`
	Type     string  `json:"type"`
	Capacity []int64 `json:"capacity"` // resource vector, default space
	Package  *int    `json:"package,omitempty"`
	Pos      *[2]int `json:"pos,omitempty"`
}

// LinkDesc describes one bidirectional physical link by element names.
type LinkDesc struct {
	A   string `json:"a"`
	B   string `json:"b"`
	VCs int    `json:"vcs"`
}

// Description is a declarative platform model.
type Description struct {
	Name     string        `json:"name,omitempty"`
	Elements []ElementDesc `json:"elements"`
	Links    []LinkDesc    `json:"links"`
}

// Describe exports the platform structure (not its allocation state)
// as a Description. Links are emitted once per physical pair.
func (p *Platform) Describe(name string) *Description {
	d := &Description{Name: name}
	for _, e := range p.elements {
		ed := ElementDesc{
			Name:     e.Name,
			Type:     e.Type,
			Capacity: append([]int64(nil), e.pool.Capacity()...),
		}
		if e.Package >= 0 {
			pkg := e.Package
			ed.Package = &pkg
		}
		pos := e.Pos
		ed.Pos = &pos
		d.Elements = append(d.Elements, ed)
	}
	for _, l := range p.Links() {
		if l.From > l.To {
			continue
		}
		d.Links = append(d.Links, LinkDesc{
			A: p.elements[l.From].Name, B: p.elements[l.To].Name, VCs: l.VCs,
		})
	}
	return d
}

// FromDescription builds a platform from a description. Element names
// must be unique; links must reference existing names and carry at
// least one virtual channel.
func FromDescription(d *Description) (*Platform, error) {
	if len(d.Elements) == 0 {
		return nil, fmt.Errorf("platform: description has no elements")
	}
	p := New()
	byName := make(map[string]int, len(d.Elements))
	for _, ed := range d.Elements {
		if ed.Name == "" || ed.Type == "" {
			return nil, fmt.Errorf("platform: element needs both name and type (%+v)", ed)
		}
		if _, dup := byName[ed.Name]; dup {
			return nil, fmt.Errorf("platform: duplicate element name %q", ed.Name)
		}
		capacity := make(resource.Vector, resource.NumKinds)
		copy(capacity, ed.Capacity)
		if len(ed.Capacity) > int(resource.NumKinds) {
			return nil, fmt.Errorf("platform: element %q capacity has %d axes, space has %d",
				ed.Name, len(ed.Capacity), resource.NumKinds)
		}
		if !capacity.NonNegative() {
			return nil, fmt.Errorf("platform: element %q has negative capacity", ed.Name)
		}
		id := p.AddElement(ed.Type, ed.Name, capacity)
		byName[ed.Name] = id
		e := p.Element(id)
		if ed.Package != nil {
			e.Package = *ed.Package
		}
		if ed.Pos != nil {
			e.Pos = *ed.Pos
		}
	}
	for _, ld := range d.Links {
		a, okA := byName[ld.A]
		b, okB := byName[ld.B]
		if !okA || !okB {
			return nil, fmt.Errorf("platform: link %q-%q references unknown element", ld.A, ld.B)
		}
		if ld.VCs < 1 {
			return nil, fmt.Errorf("platform: link %q-%q needs at least 1 virtual channel", ld.A, ld.B)
		}
		if err := p.Connect(a, b, ld.VCs); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// WriteJSON writes the platform description as indented JSON.
func (p *Platform) WriteJSON(w io.Writer, name string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Describe(name))
}

// ReadJSON builds a platform from a JSON description.
func ReadJSON(r io.Reader) (*Platform, error) {
	var d Description
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("platform: bad description: %w", err)
	}
	return FromDescription(&d)
}
