package platform

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFromSpecCRISP(t *testing.T) {
	p, err := FromSpec("crisp")
	if err != nil {
		t.Fatalf("crisp: %v", err)
	}
	if p.CountByType()[TypeDSP] != 45 {
		t.Error("crisp platform malformed")
	}
}

func TestFromSpecMesh(t *testing.T) {
	p, err := FromSpec("mesh3x2")
	if err != nil {
		t.Fatalf("mesh3x2: %v", err)
	}
	// 6 mesh tiles + 2 IO tiles.
	if p.NumElements() != 8 {
		t.Errorf("mesh3x2 elements = %d, want 8", p.NumElements())
	}
	for _, bad := range []string{"mesh", "meshAxB", "mesh0x3", "mesh3", "torus2x2"} {
		if _, err := FromSpec(bad); err == nil {
			t.Errorf("%q should be rejected", bad)
		}
	}
}

func TestFromSpecJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mesh(2, 2, 2).WriteJSON(f, "m"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := FromSpec(path)
	if err != nil {
		t.Fatalf("json platform: %v", err)
	}
	if p.NumElements() != 4 {
		t.Errorf("elements = %d, want 4", p.NumElements())
	}
	if _, err := FromSpec(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestPhysicalLinks(t *testing.T) {
	p := Mesh(3, 3, 2)
	links := p.PhysicalLinks()
	// A 3×3 mesh has 12 physical links (each Links() pair counted once).
	if len(links) != 12 {
		t.Fatalf("physical links = %d, want 12", len(links))
	}
	for _, l := range links {
		if l[0] >= l[1] {
			t.Errorf("link pair %v not ordered", l)
		}
		if p.Link(l[0], l[1]) == nil || p.Link(l[1], l[0]) == nil {
			t.Errorf("link pair %v has a missing direction", l)
		}
	}
}
