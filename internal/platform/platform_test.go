package platform

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/resource"
)

func line3() *Platform {
	p := New()
	a := p.AddElement(TypeDSP, "a", DSPCapacity)
	b := p.AddElement(TypeDSP, "b", DSPCapacity)
	c := p.AddElement(TypeDSP, "c", DSPCapacity)
	p.MustConnect(a, b, 2)
	p.MustConnect(b, c, 2)
	return p
}

func TestAddAndConnect(t *testing.T) {
	p := line3()
	if p.NumElements() != 3 {
		t.Fatalf("NumElements = %d, want 3", p.NumElements())
	}
	if got := p.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v, want [0 2]", got)
	}
	if p.Degree(0) != 1 || p.Degree(1) != 2 {
		t.Errorf("degrees = %d,%d, want 1,2", p.Degree(0), p.Degree(1))
	}
	if p.Link(0, 1) == nil || p.Link(1, 0) == nil {
		t.Error("Connect must create both directions")
	}
	if p.Link(0, 2) != nil {
		t.Error("no link 0-2 expected")
	}
}

func TestConnectErrors(t *testing.T) {
	p := line3()
	if err := p.Connect(0, 0, 1); err == nil {
		t.Error("self-link should fail")
	}
	if err := p.Connect(0, 1, 1); err == nil {
		t.Error("duplicate link should fail")
	}
	if err := p.Connect(0, 99, 1); err == nil {
		t.Error("out-of-range link should fail")
	}
}

func TestPlaceRemove(t *testing.T) {
	p := line3()
	occ := Occupant{App: "app1", Task: 3}
	demand := resource.Of(70, 32, 0, 0)
	if err := p.Place(0, occ, demand); err != nil {
		t.Fatalf("Place: %v", err)
	}
	e := p.Element(0)
	if !e.InUse() || !e.HostsTask(occ) || !e.HostsApp("app1") {
		t.Error("occupant bookkeeping wrong after Place")
	}
	if e.HostsApp("other") {
		t.Error("HostsApp(other) should be false")
	}
	if err := p.Place(0, occ, demand); !errors.Is(err, ErrDupOccupant) {
		t.Errorf("duplicate place error = %v", err)
	}
	// A second task that does not fit must fail and not corrupt state.
	if err := p.Place(0, Occupant{App: "app1", Task: 4}, resource.Of(40, 0, 0, 0)); err == nil {
		t.Error("overcommit place should fail")
	}
	if err := p.Remove(0, occ); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if e.InUse() {
		t.Error("element still in use after Remove")
	}
	if err := p.Remove(0, occ); !errors.Is(err, ErrNotOccupant) {
		t.Errorf("double remove error = %v", err)
	}
}

func TestPlaceOnDisabled(t *testing.T) {
	p := line3()
	p.DisableElement(1)
	err := p.Place(1, Occupant{App: "a", Task: 0}, resource.Of(1, 0, 0, 0))
	if !errors.Is(err, ErrDisabled) {
		t.Errorf("place on disabled = %v, want ErrDisabled", err)
	}
	p.EnableElement(1)
	if err := p.Place(1, Occupant{App: "a", Task: 0}, resource.Of(1, 0, 0, 0)); err != nil {
		t.Errorf("place after enable: %v", err)
	}
}

func TestVCAllocation(t *testing.T) {
	p := line3()
	if err := p.AllocVC(0, 1); err != nil {
		t.Fatalf("AllocVC: %v", err)
	}
	if err := p.AllocVC(0, 1); err != nil {
		t.Fatalf("AllocVC second: %v", err)
	}
	if err := p.AllocVC(0, 1); !errors.Is(err, ErrNoVCs) {
		t.Errorf("exhausted VC error = %v", err)
	}
	// Opposite direction has its own pool.
	if err := p.AllocVC(1, 0); err != nil {
		t.Errorf("opposite direction should have free VCs: %v", err)
	}
	if err := p.ReleaseVC(0, 1); err != nil {
		t.Fatalf("ReleaseVC: %v", err)
	}
	if got := p.Link(0, 1).Used(); got != 1 {
		t.Errorf("used after release = %d, want 1", got)
	}
	if err := p.ReleaseVC(2, 0); err == nil {
		t.Error("release on missing link should fail")
	}
}

func TestDisabledLinkBlocksNeighbors(t *testing.T) {
	p := line3()
	p.DisableLink(0, 1)
	if got := p.Neighbors(0); len(got) != 0 {
		t.Errorf("Neighbors(0) = %v, want none over disabled link", got)
	}
	if err := p.AllocVC(0, 1); !errors.Is(err, ErrLinkDisabled) {
		t.Errorf("AllocVC over disabled link = %v", err)
	}
	p.EnableLink(0, 1)
	if got := p.Neighbors(0); len(got) != 1 {
		t.Errorf("Neighbors(0) after enable = %v", got)
	}
}

func TestResetClearsEverything(t *testing.T) {
	p := line3()
	if err := p.Place(0, Occupant{App: "a", Task: 0}, resource.Of(10, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.AllocVC(0, 1); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if p.Element(0).InUse() {
		t.Error("element in use after Reset")
	}
	if p.Link(0, 1).Used() != 0 {
		t.Error("VCs still used after Reset")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := line3()
	occ := Occupant{App: "a", Task: 0}
	if err := p.Place(0, occ, resource.Of(10, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := p.AllocVC(0, 1); err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	if !q.Element(0).HostsTask(occ) {
		t.Error("clone lost occupant")
	}
	if q.Link(0, 1).Used() != 1 {
		t.Error("clone lost VC state")
	}
	// Mutating the clone must not affect the original.
	if err := q.Remove(0, occ); err != nil {
		t.Fatal(err)
	}
	q.DisableElement(2)
	if !p.Element(0).HostsTask(occ) {
		t.Error("original lost occupant after clone mutation")
	}
	if !p.Element(2).Enabled() {
		t.Error("original element disabled by clone mutation")
	}
}

func TestBFSDistancesAndRings(t *testing.T) {
	p := Mesh(4, 4, 2) // IDs: y*4+x
	dist := p.BFSDistances([]int{0})
	if dist[0] != 0 || dist[3] != 3 || dist[15] != 6 {
		t.Errorf("mesh distances wrong: d(0)=%d d(3)=%d d(15)=%d", dist[0], dist[3], dist[15])
	}
	ring1 := p.Ring([]int{0}, 1)
	if len(ring1) != 2 { // (1,0) and (0,1)
		t.Errorf("Ring 1 = %v, want 2 elements", ring1)
	}
	within := p.WithinDistance([]int{0}, 2)
	if len(within) != 6 { // 1 + 2 + 3
		t.Errorf("WithinDistance 2 = %v, want 6 elements", within)
	}
	// Multi-origin BFS takes the nearest origin.
	dist = p.BFSDistances([]int{0, 15})
	if dist[5] != 2 || dist[10] != 2 {
		t.Errorf("multi-origin distances wrong: d(5)=%d d(10)=%d", dist[5], dist[10])
	}
}

func TestBFSRespectsDisabled(t *testing.T) {
	p := line3()
	p.DisableElement(1)
	dist := p.BFSDistances([]int{0})
	if dist[2] != Unreachable {
		t.Errorf("d(2) = %d, want Unreachable through disabled element", dist[2])
	}
	if !p.Connected() == false {
		// two enabled elements with no path: not connected
		t.Log("connectivity check") // assertion below
	}
	if p.Connected() {
		t.Error("platform with disabled middle element should be disconnected")
	}
	p.EnableElement(1)
	if !p.Connected() {
		t.Error("platform should be connected again")
	}
}

func TestDistanceMatrix(t *testing.T) {
	m := NewDistanceMatrix()
	if _, ok := m.Lookup(1, 2); ok {
		t.Error("empty matrix should miss")
	}
	if d, ok := m.Lookup(7, 7); !ok || d != 0 {
		t.Error("self distance should be 0 and known")
	}
	m.Record(1, 2, 5)
	if d, ok := m.Lookup(2, 1); !ok || d != 5 {
		t.Errorf("symmetric lookup = %d,%v", d, ok)
	}
	// Smaller re-record wins; larger is ignored.
	m.Record(1, 2, 3)
	m.Record(1, 2, 9)
	if d, _ := m.Lookup(1, 2); d != 3 {
		t.Errorf("distance after re-records = %d, want 3", d)
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d, want 2", m.Len())
	}
}

func TestDistanceMatrixRecordBFS(t *testing.T) {
	p := Mesh(3, 3, 2)
	m := NewDistanceMatrix()
	dist := m.RecordBFS(p, []int{0})
	if dist[8] != 4 {
		t.Errorf("corner-to-corner distance = %d, want 4", dist[8])
	}
	if d, ok := m.Lookup(0, 8); !ok || d != 4 {
		t.Errorf("matrix lookup after RecordBFS = %d,%v", d, ok)
	}
}

func TestExternalFragmentation(t *testing.T) {
	p := Mesh(2, 2, 2) // 4 elements, 4 physical links
	if got := p.ExternalFragmentation(); got != 0 {
		t.Errorf("empty platform fragmentation = %v, want 0", got)
	}
	// Occupy one corner: its 2 links become mixed pairs → 2/4 = 50%.
	if err := p.Place(0, Occupant{App: "a", Task: 0}, resource.Of(1, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if got := p.ExternalFragmentation(); got != 50 {
		t.Errorf("fragmentation = %v, want 50", got)
	}
	// Occupy everything: no mixed pairs.
	for id := 1; id < 4; id++ {
		if err := p.Place(id, Occupant{App: "a", Task: id}, resource.Of(1, 0, 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.ExternalFragmentation(); got != 0 {
		t.Errorf("full platform fragmentation = %v, want 0", got)
	}
}

func TestCRISPShape(t *testing.T) {
	p := CRISP()
	byType := p.CountByType()
	want := map[string]int{
		TypeDSP: 45, TypeMemory: 10, TypeTest: 5,
		TypeGPP: 1, TypeFPGA: 1, TypeIO: 2,
	}
	for typ, n := range want {
		if byType[typ] != n {
			t.Errorf("CRISP %s count = %d, want %d", typ, byType[typ], n)
		}
	}
	if !p.Connected() {
		t.Error("CRISP platform should be connected")
	}
	// The hub (FPGA) must have high degree: ARM + 2 IO + 2 bridges
	// per package.
	if got := p.Degree(0); got != 13 {
		t.Errorf("FPGA degree = %d, want 13", got)
	}
}

func TestMeshBuilders(t *testing.T) {
	p := Mesh(5, 3, 2)
	if p.NumElements() != 15 {
		t.Errorf("Mesh size = %d, want 15", p.NumElements())
	}
	if !p.Connected() {
		t.Error("mesh should be connected")
	}
	q := MeshWithIO(3, 3, 2)
	if got := q.CountByType()[TypeIO]; got != 2 {
		t.Errorf("MeshWithIO io count = %d, want 2", got)
	}
	if !q.Connected() {
		t.Error("MeshWithIO should be connected")
	}
}

func TestPropertyIrregularConnected(t *testing.T) {
	f := func(seed int64) bool {
		p := Irregular(24, seed)
		return p.NumElements() == 24 && p.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBFSTriangleInequality(t *testing.T) {
	// d(origins, x) computed by BFS never exceeds d(origins, n)+1 for
	// any neighbor n of x.
	f := func(seed int64) bool {
		p := Irregular(16, seed)
		dist := p.BFSDistances([]int{0})
		for _, e := range p.Elements() {
			for _, n := range p.Neighbors(e.ID) {
				if dist[e.ID] == Unreachable || dist[n] == Unreachable {
					continue
				}
				if dist[e.ID] > dist[n]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestFreeByTypeAndMaxFree(t *testing.T) {
	p := CRISP()
	free := p.FreeByType()
	if free[TypeDSP][resource.Compute] != 45*100 {
		t.Errorf("aggregate DSP compute = %d, want 4500", free[TypeDSP][resource.Compute])
	}
	maxFree := p.MaxFreeByType()
	if !maxFree[TypeDSP].Equal(DSPCapacity) {
		t.Errorf("max free DSP = %v, want %v", maxFree[TypeDSP], DSPCapacity)
	}
	// Occupy one DSP fully; aggregate drops, max stays (44 empty left).
	dsp := -1
	for _, e := range p.Elements() {
		if e.Type == TypeDSP {
			dsp = e.ID
			break
		}
	}
	if dsp < 0 {
		t.Fatal("no DSP found in CRISP platform")
	}
	if err := p.Place(dsp, Occupant{App: "a", Task: 0}, DSPCapacity); err != nil {
		t.Fatal(err)
	}
	free = p.FreeByType()
	if free[TypeDSP][resource.Compute] != 44*100 {
		t.Errorf("aggregate DSP compute after place = %d", free[TypeDSP][resource.Compute])
	}
}

func TestStringSummaries(t *testing.T) {
	p := line3()
	if s := p.String(); s == "" {
		t.Error("empty String")
	}
	if p.Element(99) != nil {
		t.Error("out-of-range Element should be nil")
	}
	occs := p.Element(0).Occupants()
	if len(occs) != 0 {
		t.Errorf("unexpected occupants %v", occs)
	}
}

func TestRestoreOnDisabledElement(t *testing.T) {
	p := line3()
	occ := Occupant{App: "a", Task: 0}
	demand := resource.Of(10, 0, 0, 0)
	p.DisableElement(0)
	if err := p.Place(0, occ, demand); !errors.Is(err, ErrDisabled) {
		t.Fatalf("Place on disabled = %v, want ErrDisabled", err)
	}
	if err := p.Restore(0, occ, demand); err != nil {
		t.Fatalf("Restore on disabled: %v", err)
	}
	if !p.Element(0).HostsTask(occ) {
		t.Error("occupant missing after Restore")
	}
	// Restore does not add wear (the placement pre-existed).
	if got := p.Element(0).Wear(); got != 0 {
		t.Errorf("wear after Restore = %d, want 0", got)
	}
	if err := p.Restore(0, occ, demand); !errors.Is(err, ErrDupOccupant) {
		t.Errorf("duplicate Restore = %v, want ErrDupOccupant", err)
	}
}

func TestRestoreVCOnDisabledLink(t *testing.T) {
	p := line3()
	p.DisableLink(0, 1)
	if err := p.AllocVC(0, 1); !errors.Is(err, ErrLinkDisabled) {
		t.Fatalf("AllocVC = %v, want ErrLinkDisabled", err)
	}
	if err := p.RestoreVC(0, 1); err != nil {
		t.Fatalf("RestoreVC: %v", err)
	}
	if p.Link(0, 1).Used() != 1 {
		t.Error("VC not restored")
	}
	// Capacity still enforced.
	if err := p.RestoreVC(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.RestoreVC(0, 1); !errors.Is(err, ErrNoVCs) {
		t.Errorf("over-restore = %v, want ErrNoVCs", err)
	}
}
