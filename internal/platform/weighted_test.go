package platform

import (
	"testing"
	"testing/quick"
)

func TestWeightedDistancesUnitEqualsBFS(t *testing.T) {
	f := func(seed int64) bool {
		p := Irregular(14, seed)
		bfs := p.BFSDistances([]int{0})
		dij := p.WeightedDistances([]int{0}, UnitWeight)
		for i := range bfs {
			if bfs[i] != dij[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWeightedDistancesNilWeight(t *testing.T) {
	p := Mesh(3, 3, 2)
	d := p.WeightedDistances([]int{0}, nil)
	if d[8] != 4 {
		t.Errorf("nil weight should behave like unit weight: d(8) = %d", d[8])
	}
}

func TestCrossPackageWeight(t *testing.T) {
	p := CRISP()
	w := CrossPackageWeight(p, 4)
	// Find an intra-package mesh link and the FPGA bridge.
	var intraA, intraB, bridgeA, bridgeB int = -1, -1, -1, -1
	for _, l := range p.Links() {
		ea, eb := p.Element(l.From), p.Element(l.To)
		if ea.Package >= 0 && ea.Package == eb.Package && intraA < 0 {
			intraA, intraB = l.From, l.To
		}
		if ea.Type == TypeFPGA && eb.Package >= 0 && bridgeA < 0 {
			bridgeA, bridgeB = l.From, l.To
		}
	}
	if intraA < 0 || bridgeA < 0 {
		t.Fatal("expected both intra-package and bridge links in CRISP")
	}
	if got := w(intraA, intraB); got != 1 {
		t.Errorf("intra-package weight = %d, want 1", got)
	}
	if got := w(bridgeA, bridgeB); got != 4 {
		t.Errorf("bridge weight = %d, want 4", got)
	}
	if got := w(-1, 0); got != 4 {
		t.Errorf("out-of-range weight = %d, want penalty", got)
	}
}

func TestWeightedDistancesPenalizeCrossPackage(t *testing.T) {
	p := CRISP()
	// From a package-0 DSP, every element of another package must be
	// at least the penalty away, while package-0 neighbors stay at 1.
	var p0dsp int = -1
	for _, e := range p.Elements() {
		if e.Type == TypeDSP && e.Package == 0 {
			p0dsp = e.ID
			break
		}
	}
	d := p.WeightedDistances([]int{p0dsp}, CrossPackageWeight(p, 5))
	for _, e := range p.Elements() {
		if e.ID == p0dsp || d[e.ID] == Unreachable {
			continue
		}
		if e.Package >= 0 && e.Package != 0 && d[e.ID] < 5 {
			t.Errorf("element %s (pkg %d) at weighted distance %d < penalty", e.Name, e.Package, d[e.ID])
		}
	}
	for _, n := range p.Neighbors(p0dsp) {
		if p.Element(n).Package == 0 && d[n] != 1 {
			t.Errorf("intra-package neighbor %d at distance %d, want 1", n, d[n])
		}
	}
}

func TestWeightedDistancesRespectDisabled(t *testing.T) {
	p := Mesh(3, 1, 2) // 0-1-2
	p.DisableElement(1)
	d := p.WeightedDistances([]int{0}, UnitWeight)
	if d[2] != Unreachable {
		t.Errorf("d(2) = %d, want Unreachable", d[2])
	}
}

func TestPropertyWeightedDistanceBounds(t *testing.T) {
	// For a weight function in [1, k], the weighted distance is
	// between the hop distance and k× the hop distance.
	f := func(seed int64) bool {
		p := Irregular(12, seed)
		const k = 3
		w := func(a, b int) int {
			if (a+b)%2 == 0 {
				return k
			}
			return 1
		}
		hops := p.BFSDistances([]int{0})
		wd := p.WeightedDistances([]int{0}, w)
		for i := range hops {
			if (hops[i] == Unreachable) != (wd[i] == Unreachable) {
				return false
			}
			if hops[i] == Unreachable {
				continue
			}
			if wd[i] < hops[i] || wd[i] > k*hops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
