package platform

import "container/heap"

// LinkWeight returns the cost of crossing one link for distance
// estimation purposes. Weighted distances let the mapping cost
// function reflect that some links are scarcer than others — on CRISP,
// the inter-package bridges aggregate the traffic of whole packages,
// so a bridge hop should look "longer" than a mesh hop.
type LinkWeight func(a, b int) int

// UnitWeight weighs every link 1, reducing WeightedDistances to plain
// BFS hop distances.
func UnitWeight(a, b int) int { return 1 }

// CrossPackageWeight returns a LinkWeight that charges penalty for
// links crossing a package boundary — between different packages, or
// between a package and the hub/IO elements (Package < 0) — and 1
// otherwise. Platforms without package structure (every element has
// Package < 0, e.g. plain meshes) see uniform weight 1.
func CrossPackageWeight(p *Platform, penalty int) LinkWeight {
	return func(a, b int) int {
		ea, eb := p.Element(a), p.Element(b)
		if ea == nil || eb == nil {
			return penalty
		}
		if ea.Package == eb.Package || (ea.Package < 0 && eb.Package < 0) {
			return 1
		}
		return penalty
	}
}

type wqItem struct {
	elem int
	dist int
}

type wq []wqItem

func (q wq) Len() int           { return len(q) }
func (q wq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q wq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *wq) Push(x any)        { *q = append(*q, x.(wqItem)) }
func (q *wq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// WeightedDistances returns the least total link weight from the
// nearest origin to every element over enabled elements and links
// (multi-source Dijkstra with integer weights). Unreachable elements
// get Unreachable.
func (p *Platform) WeightedDistances(origins []int, weight LinkWeight) []int {
	if weight == nil {
		weight = UnitWeight
	}
	dist := make([]int, len(p.elements))
	for i := range dist {
		dist[i] = Unreachable
	}
	q := &wq{}
	for _, o := range origins {
		if o < 0 || o >= len(p.elements) || !p.elements[o].enabled {
			continue
		}
		if dist[o] != 0 {
			dist[o] = 0
			heap.Push(q, wqItem{o, 0})
		}
	}
	for q.Len() > 0 {
		it := heap.Pop(q).(wqItem)
		if dist[it.elem] != it.dist {
			continue // stale entry
		}
		for _, n := range p.Neighbors(it.elem) {
			nd := it.dist + weight(it.elem, n)
			if dist[n] == Unreachable || nd < dist[n] {
				dist[n] = nd
				heap.Push(q, wqItem{n, nd})
			}
		}
	}
	return dist
}
