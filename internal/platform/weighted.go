package platform

import (
	"sync"

	"repro/internal/heapx"
)

// LinkWeight returns the cost of crossing one link for distance
// estimation purposes. Weighted distances let the mapping cost
// function reflect that some links are scarcer than others — on CRISP,
// the inter-package bridges aggregate the traffic of whole packages,
// so a bridge hop should look "longer" than a mesh hop.
type LinkWeight func(a, b int) int

// UnitWeight weighs every link 1, reducing WeightedDistances to plain
// BFS hop distances.
func UnitWeight(a, b int) int { return 1 }

// CrossPackageWeight returns a LinkWeight that charges penalty for
// links crossing a package boundary — between different packages, or
// between a package and the hub/IO elements (Package < 0) — and 1
// otherwise. Platforms without package structure (every element has
// Package < 0, e.g. plain meshes) see uniform weight 1.
func CrossPackageWeight(p *Platform, penalty int) LinkWeight {
	return func(a, b int) int {
		ea, eb := p.Element(a), p.Element(b)
		if ea == nil || eb == nil {
			return penalty
		}
		if ea.Package == eb.Package || (ea.Package < 0 && eb.Package < 0) {
			return 1
		}
		return penalty
	}
}

// wqItem is one entry of the weighted-search priority queue.
type wqItem struct {
	elem int
	dist int
}

// wq is a slice min-heap over internal/heapx (container/heap-exact
// sift semantics, no per-item interface boxing); the mapping phase
// runs one multi-source Dijkstra per origin per neighborhood level,
// so the queue is on the admission hot path.
type wq []wqItem

func wqKey(it wqItem) int { return it.dist }

// wqScratch bundles the reusable state of one weighted search.
type wqScratch struct {
	q     wq
	neigh []int
}

var wqPool = sync.Pool{New: func() any { return new(wqScratch) }}

// WeightedDistances returns the least total link weight from the
// nearest origin to every element over enabled elements and links
// (multi-source Dijkstra with integer weights). Unreachable elements
// get Unreachable.
func (p *Platform) WeightedDistances(origins []int, weight LinkWeight) []int {
	return p.WeightedDistancesInto(origins, weight, make([]int, len(p.elements)))
}

// WeightedDistancesInto is WeightedDistances writing into dist
// (resized as needed, so callers can reuse one buffer across calls).
// It returns the distance slice. The priority queue and the neighbor
// buffer come from an internal pool; the search itself does not
// allocate.
func (p *Platform) WeightedDistancesInto(origins []int, weight LinkWeight, dist []int) []int {
	if cap(dist) < len(p.elements) {
		dist = make([]int, len(p.elements))
	}
	dist = dist[:len(p.elements)]
	if weight == nil {
		weight = UnitWeight
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	s := wqPool.Get().(*wqScratch)
	q := s.q[:0]
	for _, o := range origins {
		if o < 0 || o >= len(p.elements) || !p.elements[o].enabled {
			continue
		}
		if dist[o] != 0 {
			dist[o] = 0
			q = heapx.Push(q, wqItem{o, 0}, wqKey)
		}
	}
	neigh := s.neigh
	for len(q) > 0 {
		var it wqItem
		q, it = heapx.Pop(q, wqKey)
		if dist[it.elem] != it.dist {
			continue // stale entry
		}
		neigh = p.AppendNeighbors(neigh[:0], it.elem)
		for _, n := range neigh {
			nd := it.dist + weight(it.elem, n)
			if dist[n] == Unreachable || nd < dist[n] {
				dist[n] = nd
				q = heapx.Push(q, wqItem{n, nd}, wqKey)
			}
		}
	}
	s.q, s.neigh = q[:0], neigh[:0]
	wqPool.Put(s)
	return dist
}
