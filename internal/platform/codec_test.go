package platform

import (
	"bytes"
	"strings"
	"testing"
)

func TestDescribeRoundTripCRISP(t *testing.T) {
	orig := CRISP()
	back, err := FromDescription(orig.Describe("crisp"))
	if err != nil {
		t.Fatalf("FromDescription: %v", err)
	}
	if back.NumElements() != orig.NumElements() {
		t.Fatalf("elements %d, want %d", back.NumElements(), orig.NumElements())
	}
	if len(back.Links()) != len(orig.Links()) {
		t.Fatalf("links %d, want %d", len(back.Links()), len(orig.Links()))
	}
	for i, e := range orig.Elements() {
		g := back.Element(i)
		if g.Name != e.Name || g.Type != e.Type || g.Package != e.Package || g.Pos != e.Pos {
			t.Fatalf("element %d mismatch: %+v vs %+v", i, g, e)
		}
		if !g.Pool().Capacity().Equal(e.Pool().Capacity()) {
			t.Fatalf("element %d capacity mismatch", i)
		}
	}
	for _, l := range orig.Links() {
		gl := back.Link(l.From, l.To)
		if gl == nil || gl.VCs != l.VCs {
			t.Fatalf("link %d→%d mismatch", l.From, l.To)
		}
	}
	if !back.Connected() {
		t.Error("round-tripped platform should be connected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := MeshWithIO(3, 2, 2)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf, "mesh"); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.NumElements() != orig.NumElements() || len(back.Links()) != len(orig.Links()) {
		t.Fatalf("round trip lost structure: %v vs %v", back, orig)
	}
}

func TestFromDescriptionErrors(t *testing.T) {
	cases := []struct {
		name string
		d    Description
	}{
		{"empty", Description{}},
		{"missing type", Description{Elements: []ElementDesc{{Name: "a"}}}},
		{"duplicate name", Description{Elements: []ElementDesc{
			{Name: "a", Type: "dsp"}, {Name: "a", Type: "dsp"},
		}}},
		{"bad link ref", Description{
			Elements: []ElementDesc{{Name: "a", Type: "dsp"}},
			Links:    []LinkDesc{{A: "a", B: "ghost", VCs: 2}},
		}},
		{"zero VCs", Description{
			Elements: []ElementDesc{{Name: "a", Type: "dsp"}, {Name: "b", Type: "dsp"}},
			Links:    []LinkDesc{{A: "a", B: "b", VCs: 0}},
		}},
		{"self link", Description{
			Elements: []ElementDesc{{Name: "a", Type: "dsp"}},
			Links:    []LinkDesc{{A: "a", B: "a", VCs: 1}},
		}},
		{"negative capacity", Description{Elements: []ElementDesc{
			{Name: "a", Type: "dsp", Capacity: []int64{-1}},
		}}},
		{"too many axes", Description{Elements: []ElementDesc{
			{Name: "a", Type: "dsp", Capacity: []int64{1, 2, 3, 4, 5}},
		}}},
	}
	for _, c := range cases {
		if _, err := FromDescription(&c.d); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadJSONRejectsUnknownFields(t *testing.T) {
	_, err := ReadJSON(strings.NewReader(`{"elements":[{"name":"a","type":"dsp"}],"bogus":1}`))
	if err == nil {
		t.Error("unknown fields must be rejected")
	}
}

func TestShortCapacityZeroPadded(t *testing.T) {
	p, err := FromDescription(&Description{
		Elements: []ElementDesc{{Name: "a", Type: "dsp", Capacity: []int64{50}}},
	})
	if err != nil {
		t.Fatalf("FromDescription: %v", err)
	}
	capacity := p.Element(0).Pool().Capacity()
	if capacity[0] != 50 || capacity[1] != 0 {
		t.Errorf("capacity = %v, want zero-padded [50 0 0 0]", capacity)
	}
}
