package platform

import (
	"fmt"
	"math/rand"

	"repro/internal/resource"
)

// Default capacities used by the builders. The absolute numbers are
// abstract units; the application generator expresses demands as
// percentages of these (paper §IV: computation-intensive tasks use
// 70–100% of an element's resources, communication-oriented 10–70%).
var (
	// DSPCapacity is the capacity of one Xentium-like DSP tile.
	DSPCapacity = resource.Of(100, 64, 0, 0)
	// MemoryCapacity is the capacity of one memory tile.
	MemoryCapacity = resource.Of(0, 1024, 0, 0)
	// TestCapacity is the capacity of the hardware test unit.
	TestCapacity = resource.Of(20, 16, 0, 0)
	// GPPCapacity is the capacity of the ARM host processor.
	GPPCapacity = resource.Of(100, 256, 4, 0)
	// FPGACapacity is the capacity of the FPGA fabric.
	FPGACapacity = resource.Of(200, 512, 8, 1000)
	// IOCapacity is the capacity of an I/O interface tile.
	IOCapacity = resource.Of(10, 16, 2, 0)

	// DefaultVCs is the number of virtual channels per link
	// direction in the builders (the NoC of [11] time-shares each
	// link between multiple reserved lanes).
	DefaultVCs = 2
	// HubVCs is the number of virtual channels on the FPGA hub's
	// links to the ARM and the I/O tiles, which aggregate the
	// platform's control and stream traffic.
	HubVCs = 8
	// BridgeVCs is the number of virtual channels on the
	// inter-package bridges (package↔FPGA and package↔package).
	// Scarcer than the hub: cross-package traffic is what saturates
	// first when applications spread over the chip.
	BridgeVCs = 4
)

// CRISP builds the platform of the paper's evaluation (Fig. 6): an
// ARM processor, an FPGA, and 5 packages each containing 9 DSPs, 2
// memory tiles and 1 hardware test unit. Inside a package the 12
// elements form a 3×4 mesh; the FPGA is the interconnect hub between
// the packages and the ARM, which matches the paper's observation
// that "compared to a fully meshed platform, the CRISP architecture
// is less connected". Two I/O tiles hang off the FPGA for stream
// input/output (fixed-location tasks in the mapping phase start from
// these).
func CRISP() *Platform {
	p := New()

	fpga := p.AddElement(TypeFPGA, "fpga0", FPGACapacity)
	arm := p.AddElement(TypeGPP, "arm0", GPPCapacity)
	p.MustConnect(fpga, arm, HubVCs)

	ioIn := p.AddElement(TypeIO, "io-in", IOCapacity)
	ioOut := p.AddElement(TypeIO, "io-out", IOCapacity)
	p.MustConnect(fpga, ioIn, HubVCs)
	p.MustConnect(fpga, ioOut, HubVCs)

	const cols, rows = 3, 4
	for pkg := 0; pkg < 5; pkg++ {
		ids := make([]int, 0, cols*rows)
		dsp, mem := 0, 0
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				// Layout per package: 9 DSPs, 2 memories (middle
				// column of the outer rows), 1 test unit (corner).
				var id int
				switch {
				case r == 0 && c == 1, r == rows-1 && c == 1:
					id = p.AddElement(TypeMemory, fmt.Sprintf("p%d-mem%d", pkg, mem), MemoryCapacity)
					mem++
				case r == rows-1 && c == cols-1:
					id = p.AddElement(TypeTest, fmt.Sprintf("p%d-test", pkg), TestCapacity)
				default:
					id = p.AddElement(TypeDSP, fmt.Sprintf("p%d-dsp%d", pkg, dsp), DSPCapacity)
					dsp++
				}
				e := p.Element(id)
				e.Pos = [2]int{c, r}
				e.Package = pkg
				ids = append(ids, id)
			}
		}
		// 4-neighbor mesh inside the package.
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				at := func(cc, rr int) int { return ids[rr*cols+cc] }
				if c+1 < cols {
					p.MustConnect(at(c, r), at(c+1, r), DefaultVCs)
				}
				if r+1 < rows {
					p.MustConnect(at(c, r), at(c, r+1), DefaultVCs)
				}
			}
		}
		// Bridges: the package's north-west and south-west corner
		// elements both connect to the FPGA hub, so package ingress
		// does not bottleneck on a single corner.
		p.MustConnect(ids[0], fpga, BridgeVCs)
		p.MustConnect(ids[(rows-1)*cols], fpga, BridgeVCs)
		// Neighboring packages are also chained directly (package
		// i's right edge to package i+1's left edge), so traffic
		// between adjacent packages does not need the hub.
		if pkg > 0 {
			prevRight := ids[0] - cols*rows + (cols - 1) // (cols-1, 0) of previous package
			p.MustConnect(prevRight, ids[0], BridgeVCs)
		}
	}
	return p
}

// Mesh builds a w×h homogeneous mesh of DSP tiles with the given
// virtual channels per link direction. It is the platform shape used
// by the region-based related work ([6]) and by the quickstart
// example.
func Mesh(w, h, vcs int) *Platform {
	p := New()
	ids := make([]int, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			id := p.AddElement(TypeDSP, fmt.Sprintf("dsp%d-%d", x, y), DSPCapacity)
			p.Element(id).Pos = [2]int{x, y}
			ids[y*w+x] = id
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				p.MustConnect(ids[y*w+x], ids[y*w+x+1], vcs)
			}
			if y+1 < h {
				p.MustConnect(ids[y*w+x], ids[(y+1)*w+x], vcs)
			}
		}
	}
	return p
}

// MeshWithIO builds a w×h DSP mesh with an I/O tile attached to the
// north-west and south-east corners, giving applications with fixed
// I/O tasks a natural M0.
func MeshWithIO(w, h, vcs int) *Platform {
	p := Mesh(w, h, vcs)
	in := p.AddElement(TypeIO, "io-in", IOCapacity)
	out := p.AddElement(TypeIO, "io-out", IOCapacity)
	p.MustConnect(in, 0, vcs)
	p.MustConnect(out, w*h-1, vcs)
	return p
}

// Irregular builds a randomized connected heterogeneous platform with
// n elements, for property tests: the mapping algorithm must not
// assume mesh regularity (paper §II: "works on a variety of
// platforms... heterogeneous or irregular architectures").
func Irregular(n int, seed int64) *Platform {
	if n < 1 {
		n = 1
	}
	r := rand.New(rand.NewSource(seed))
	p := New()
	for i := 0; i < n; i++ {
		roll := r.Intn(10)
		switch {
		case roll < 6:
			p.AddElement(TypeDSP, fmt.Sprintf("dsp%d", i), DSPCapacity)
		case roll < 8:
			p.AddElement(TypeMemory, fmt.Sprintf("mem%d", i), MemoryCapacity)
		case roll < 9:
			p.AddElement(TypeGPP, fmt.Sprintf("gpp%d", i), GPPCapacity)
		default:
			p.AddElement(TypeIO, fmt.Sprintf("io%d", i), IOCapacity)
		}
	}
	// Random spanning tree keeps it connected...
	perm := r.Perm(n)
	for i := 1; i < n; i++ {
		a, b := perm[i], perm[r.Intn(i)]
		p.MustConnect(a, b, 1+r.Intn(4))
	}
	// ...plus a few extra chords for irregularity.
	extra := n / 3
	for i := 0; i < extra; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b || p.Link(a, b) != nil {
			continue
		}
		p.MustConnect(a, b, 1+r.Intn(4))
	}
	return p
}
