package platform

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// FromSpec builds a platform from a textual spec, the shared
// command-line vocabulary of cmd/kairos and cmd/sim:
//
//	crisp        the CRISP platform of the paper's evaluation (Fig. 6)
//	mesh<W>x<H>  a W×H DSP mesh with I/O corner tiles
//	<path>.json  a platform description written by WriteJSON
func FromSpec(spec string) (*Platform, error) {
	switch {
	case spec == "crisp":
		return CRISP(), nil
	case strings.HasSuffix(spec, ".json"):
		f, err := os.Open(spec)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ReadJSON(f)
	case strings.HasPrefix(spec, "mesh"):
		dims := strings.SplitN(strings.TrimPrefix(spec, "mesh"), "x", 2)
		if len(dims) == 2 {
			w, errW := strconv.Atoi(dims[0])
			h, errH := strconv.Atoi(dims[1])
			if errW == nil && errH == nil && w > 0 && h > 0 {
				return MeshWithIO(w, h, DefaultVCs), nil
			}
		}
		return nil, fmt.Errorf("platform: bad mesh spec %q (want e.g. mesh4x4)", spec)
	default:
		return nil, fmt.Errorf("platform: unknown spec %q (crisp, mesh<W>x<H>, or a .json file)", spec)
	}
}

// PhysicalLinks returns each physical (bidirectional) link once as an
// ordered element-ID pair, in deterministic order. Fault injectors
// draw from this list: disabling a physical link disables both
// directed Links.
func (p *Platform) PhysicalLinks() [][2]int {
	var out [][2]int
	for _, l := range p.Links() {
		if l.From < l.To {
			out = append(out, [2]int{l.From, l.To})
		}
	}
	return out
}
