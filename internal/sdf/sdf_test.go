package sdf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// pipeline builds a chain a0 → a1 → ... with unit rates, back-edges
// carrying backTokens buffer tokens, and self-loops on every actor.
func pipeline(durations []int64, backTokens int) *Graph {
	g := NewGraph()
	ids := make([]int, len(durations))
	for i, d := range durations {
		ids[i] = g.AddActor("a", d)
		g.AddSelfLoop(ids[i])
	}
	for i := 0; i+1 < len(ids); i++ {
		g.AddEdge(ids[i], ids[i+1], 1, 1, 0)
		if backTokens > 0 {
			g.AddEdge(ids[i+1], ids[i], 1, 1, backTokens)
		}
	}
	return g
}

func TestValidate(t *testing.T) {
	if err := NewGraph().Validate(); err == nil {
		t.Error("empty graph should be invalid")
	}
	g := NewGraph()
	g.AddActor("a", 0)
	if err := g.Validate(); err == nil {
		t.Error("zero-duration actor should be invalid")
	}
	g2 := NewGraph()
	a := g2.AddActor("a", 1)
	b := g2.AddActor("b", 1)
	g2.AddEdge(a, b, 0, 1, 0)
	if err := g2.Validate(); err == nil {
		t.Error("zero rate should be invalid")
	}
	g3 := NewGraph()
	a3 := g3.AddActor("a", 1)
	b3 := g3.AddActor("b", 1)
	g3.AddEdge(a3, b3, 1, 1, -1)
	if err := g3.Validate(); err == nil {
		t.Error("negative tokens should be invalid")
	}
}

func TestRepetitionVectorHomogeneous(t *testing.T) {
	g := pipeline([]int64{2, 3, 4}, 2)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatalf("RepetitionVector: %v", err)
	}
	for i, v := range q {
		if v != 1 {
			t.Errorf("q[%d] = %d, want 1", i, v)
		}
	}
}

func TestRepetitionVectorMultirate(t *testing.T) {
	// a --(2,3)--> b: q = [3, 2].
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge(a, b, 2, 3, 0)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatalf("RepetitionVector: %v", err)
	}
	if q[a] != 3 || q[b] != 2 {
		t.Errorf("q = %v, want [3 2]", q)
	}
}

func TestRepetitionVectorInconsistent(t *testing.T) {
	// a→b at 1:1 and b→a at 2:1 cannot balance.
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 2, 1, 1)
	if _, err := g.RepetitionVector(); err == nil {
		t.Error("inconsistent graph must be rejected")
	}
}

func TestRepetitionVectorDisconnected(t *testing.T) {
	g := NewGraph()
	g.AddActor("a", 1)
	g.AddActor("b", 1)
	q, err := g.RepetitionVector()
	if err != nil {
		t.Fatalf("RepetitionVector: %v", err)
	}
	if q[0] != 1 || q[1] != 1 {
		t.Errorf("q = %v", q)
	}
}

func TestAnalyzeSingleActor(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 4)
	g.AddSelfLoop(a)
	an, err := g.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if math.Abs(an.Throughput-0.25) > 1e-9 {
		t.Errorf("throughput = %v, want 0.25", an.Throughput)
	}
	if an.FirstCompletion[a] != 4 {
		t.Errorf("first completion = %d, want 4", an.FirstCompletion[a])
	}
}

func TestAnalyzePipelineBottleneck(t *testing.T) {
	// Pipeline with durations 2, 5, 3 and ample buffers: steady-state
	// throughput is 1/5 (the bottleneck actor).
	g := pipeline([]int64{2, 5, 3}, 4)
	an, err := g.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if math.Abs(an.Throughput-0.2) > 1e-9 {
		t.Errorf("throughput = %v, want 0.2", an.Throughput)
	}
}

func TestAnalyzeBufferLimitsThroughput(t *testing.T) {
	// Two actors of duration 10 with a round trip of 1 buffer token:
	// strictly alternating, period 20, vs 10 with 2 tokens.
	mk := func(tokens int) *Graph {
		g := NewGraph()
		a := g.AddActor("a", 10)
		b := g.AddActor("b", 10)
		g.AddSelfLoop(a)
		g.AddSelfLoop(b)
		g.AddEdge(a, b, 1, 1, 0)
		g.AddEdge(b, a, 1, 1, tokens)
		return g
	}
	an1, err := mk(1).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	an2, err := mk(2).Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an1.Throughput-0.05) > 1e-9 {
		t.Errorf("1-token throughput = %v, want 0.05", an1.Throughput)
	}
	if math.Abs(an2.Throughput-0.1) > 1e-9 {
		t.Errorf("2-token throughput = %v, want 0.1", an2.Throughput)
	}
}

func TestAnalyzeMultirate(t *testing.T) {
	// a (dur 1) produces 2, b (dur 1) consumes 1: q=[1,2]. One
	// iteration needs two serialized firings of b (self-loop), so b
	// is the bottleneck: 0.5 iterations per time unit.
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddSelfLoop(a)
	g.AddSelfLoop(b)
	g.AddEdge(a, b, 2, 1, 0)
	// Bound the token growth with a back edge: b returns 1 token per
	// firing, a consumes 2 per firing, 4 initial.
	g.AddEdge(b, a, 1, 2, 4)
	an, err := g.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if math.Abs(an.Throughput-0.5) > 1e-9 {
		t.Errorf("throughput = %v, want 0.5", an.Throughput)
	}
}

func TestAnalyzeDeadlock(t *testing.T) {
	// Cycle with no initial tokens deadlocks immediately.
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 1, 1, 0)
	_, err := g.Analyze()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error = %v, want DeadlockError", err)
	}
}

func TestAnalyzeInconsistentRejected(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 2, 1, 1)
	if _, err := g.Analyze(); err == nil {
		t.Error("inconsistent graph must fail analysis")
	}
}

func TestPropertyThroughputBoundedByBottleneck(t *testing.T) {
	// For any random pipeline, throughput ≤ 1/maxDuration and > 0.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		durs := make([]int64, n)
		var maxDur int64 = 1
		for i := range durs {
			durs[i] = 1 + int64(r.Intn(9))
			if durs[i] > maxDur {
				maxDur = durs[i]
			}
		}
		g := pipeline(durs, 1+r.Intn(3))
		an, err := g.Analyze()
		if err != nil {
			return false
		}
		return an.Throughput > 0 && an.Throughput <= 1.0/float64(maxDur)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMoreBufferNeverHurts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(4)
		durs := make([]int64, n)
		for i := range durs {
			durs[i] = 1 + int64(r.Intn(6))
		}
		small, err := pipeline(durs, 1).Analyze()
		if err != nil {
			return false
		}
		big, err := pipeline(durs, 3).Analyze()
		if err != nil {
			return false
		}
		return big.Throughput >= small.Throughput-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
