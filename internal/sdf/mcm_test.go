package sdf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMCRSingleActor(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 4)
	g.AddSelfLoop(a)
	mcr, err := g.MaxCycleRatio()
	if err != nil {
		t.Fatalf("MaxCycleRatio: %v", err)
	}
	if math.Abs(mcr-4) > 1e-6 {
		t.Errorf("MCR = %v, want 4 (self-loop cycle)", mcr)
	}
}

func TestMCRTwoActorRoundTrip(t *testing.T) {
	// a→b with back edge carrying 1 token: cycle duration 20,
	// tokens 1 → MCR 20. With 2 tokens → 10 (but self-loops cap at
	// 10 anyway).
	mk := func(tokens int) *Graph {
		g := NewGraph()
		a := g.AddActor("a", 10)
		b := g.AddActor("b", 10)
		g.AddSelfLoop(a)
		g.AddSelfLoop(b)
		g.AddEdge(a, b, 1, 1, 0)
		g.AddEdge(b, a, 1, 1, tokens)
		return g
	}
	mcr1, err := mk(1).MaxCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mcr1-20) > 1e-6 {
		t.Errorf("1-token MCR = %v, want 20", mcr1)
	}
	mcr2, err := mk(2).MaxCycleRatio()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mcr2-10) > 1e-6 {
		t.Errorf("2-token MCR = %v, want 10", mcr2)
	}
}

func TestMCRDeadlock(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge(a, b, 1, 1, 0)
	g.AddEdge(b, a, 1, 1, 0)
	_, err := g.MaxCycleRatio()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("error = %v, want DeadlockError", err)
	}
}

func TestMCRMultiRateRejected(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 1)
	b := g.AddActor("b", 1)
	g.AddEdge(a, b, 2, 1, 0)
	if _, err := g.MaxCycleRatio(); !errors.Is(err, ErrMultiRate) {
		t.Errorf("error = %v, want ErrMultiRate", err)
	}
	if _, err := g.FastAnalyze(); !errors.Is(err, ErrMultiRate) {
		t.Errorf("FastAnalyze error = %v, want ErrMultiRate", err)
	}
}

func TestMCRAcyclicGraph(t *testing.T) {
	g := NewGraph()
	a := g.AddActor("a", 3)
	b := g.AddActor("b", 7)
	g.AddEdge(a, b, 1, 1, 0)
	mcr, err := g.MaxCycleRatio()
	if err != nil {
		t.Fatalf("MaxCycleRatio: %v", err)
	}
	if mcr != 0 {
		t.Errorf("acyclic MCR = %v, want 0", mcr)
	}
	an, err := g.FastAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.Throughput-1.0/7) > 1e-6 {
		t.Errorf("acyclic fast throughput = %v, want bottleneck 1/7", an.Throughput)
	}
}

func TestFastMatchesExactPipeline(t *testing.T) {
	g := pipeline([]int64{2, 5, 3}, 4)
	if err := g.VerifyFastAgainstExact(1e-6); err != nil {
		t.Error(err)
	}
	an, err := g.FastAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(an.Throughput-0.2) > 1e-6 {
		t.Errorf("fast throughput = %v, want 0.2", an.Throughput)
	}
}

func TestPropertyFastMatchesExactOnRandomPipelines(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		durs := make([]int64, n)
		for i := range durs {
			durs[i] = 1 + int64(r.Intn(9))
		}
		g := pipeline(durs, 1+r.Intn(3))
		return g.VerifyFastAgainstExact(1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFastMatchesExactOnRandomUnitRateGraphs(t *testing.T) {
	// Random strongly-connected-ish unit-rate graphs: a ring with
	// chords, all edges with a token on the ring so it can fire.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		g := NewGraph()
		for i := 0; i < n; i++ {
			id := g.AddActor("a", 1+int64(r.Intn(8)))
			g.AddSelfLoop(id)
		}
		// Ring with buffer tokens both ways.
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n, 1, 1, r.Intn(2))
			g.AddEdge((i+1)%n, i, 1, 1, 1+r.Intn(3))
		}
		// A couple of chords.
		for c := 0; c < 2 && n > 2; c++ {
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				g.AddEdge(a, b, 1, 1, 1+r.Intn(2))
			}
		}
		// The ring may deadlock when all forward edges are empty and
		// chords disagree; both analyses must then agree on failure.
		exact, errE := g.Analyze()
		fast, errF := g.FastAnalyze()
		if errE != nil || errF != nil {
			return (errE != nil) == (errF != nil)
		}
		return math.Abs(exact.Throughput-fast.Throughput) <= 1e-6*math.Max(exact.Throughput, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
