// Package sdf implements the synchronous dataflow machinery behind
// the validation phase (paper §II): the influence of the platform and
// the application specification is modeled as an SDF graph, whose
// throughput is computed by a state-space exploration of its
// self-timed execution (Ghamarian et al. [13], Stuijk et al. [5]).
// Latency constraints are expressed as throughput constraints, as in
// Moreira & Bekooij [12].
package sdf

import (
	"fmt"
	"sort"
	"strconv"
)

// Actor is one timed SDF actor. Duration is the firing time in
// abstract time units and must be at least 1 (zero-duration actors can
// stall the self-timed clock).
type Actor struct {
	ID       int
	Name     string
	Duration int64
}

// Edge is one SDF edge: Src produces Produce tokens per firing, Dst
// consumes Consume tokens per firing, and the edge initially carries
// Tokens tokens.
type Edge struct {
	ID       int
	Src, Dst int
	Produce  int
	Consume  int
	Tokens   int
}

// Graph is a timed SDF graph.
type Graph struct {
	Actors []*Actor
	Edges  []*Edge

	in, out [][]int // edge IDs per actor
}

// NewGraph returns an empty SDF graph.
func NewGraph() *Graph { return &Graph{} }

// AddActor appends an actor, returning its ID.
func (g *Graph) AddActor(name string, duration int64) int {
	id := len(g.Actors)
	g.Actors = append(g.Actors, &Actor{ID: id, Name: name, Duration: duration})
	g.in, g.out = nil, nil
	return id
}

// AddEdge appends an edge, returning its ID.
func (g *Graph) AddEdge(src, dst, produce, consume, tokens int) int {
	id := len(g.Edges)
	g.Edges = append(g.Edges, &Edge{
		ID: id, Src: src, Dst: dst,
		Produce: produce, Consume: consume, Tokens: tokens,
	})
	g.in, g.out = nil, nil
	return id
}

// AddSelfLoop gives the actor a one-token self-edge, serializing its
// firings (no auto-concurrency), as customary when modeling processors
// that run one firing at a time.
func (g *Graph) AddSelfLoop(actor int) int {
	return g.AddEdge(actor, actor, 1, 1, 1)
}

// Validate checks structural sanity.
func (g *Graph) Validate() error {
	if len(g.Actors) == 0 {
		return fmt.Errorf("sdf: graph has no actors")
	}
	for _, a := range g.Actors {
		if a.Duration < 1 {
			return fmt.Errorf("sdf: actor %d (%s) duration %d < 1", a.ID, a.Name, a.Duration)
		}
	}
	for _, e := range g.Edges {
		if e.Src < 0 || e.Src >= len(g.Actors) || e.Dst < 0 || e.Dst >= len(g.Actors) {
			return fmt.Errorf("sdf: edge %d endpoints out of range", e.ID)
		}
		if e.Produce < 1 || e.Consume < 1 {
			return fmt.Errorf("sdf: edge %d has non-positive rates", e.ID)
		}
		if e.Tokens < 0 {
			return fmt.Errorf("sdf: edge %d has negative tokens", e.ID)
		}
	}
	return nil
}

func (g *Graph) buildAdj() {
	if g.in != nil {
		return
	}
	g.in = make([][]int, len(g.Actors))
	g.out = make([][]int, len(g.Actors))
	for _, e := range g.Edges {
		g.out[e.Src] = append(g.out[e.Src], e.ID)
		g.in[e.Dst] = append(g.in[e.Dst], e.ID)
	}
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a < 0 {
		return -a
	}
	return a
}

type frac struct{ num, den int64 }

func (f frac) norm() frac {
	g := gcd(f.num, f.den)
	if g == 0 {
		return frac{0, 1}
	}
	return frac{f.num / g, f.den / g}
}

func (f frac) mul(num, den int64) frac {
	return frac{f.num * num, f.den * den}.norm()
}

// RepetitionVector solves the SDF balance equations: q[src]·produce =
// q[dst]·consume on every edge, returning the smallest positive
// integer solution. An inconsistent graph (no solution) returns an
// error — inconsistent graphs deadlock or accumulate unbounded tokens.
func (g *Graph) RepetitionVector() ([]int64, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g.buildAdj()
	n := len(g.Actors)
	q := make([]frac, n)
	seen := make([]bool, n)

	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		q[start] = frac{1, 1}
		seen[start] = true
		queue := []int{start}
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			visit := func(other int, num, den int64) error {
				want := q[a].mul(num, den)
				if !seen[other] {
					q[other] = want
					seen[other] = true
					queue = append(queue, other)
					return nil
				}
				if q[other] != want {
					return fmt.Errorf("sdf: inconsistent rates at actor %d", other)
				}
				return nil
			}
			for _, eid := range g.out[a] {
				e := g.Edges[eid]
				if err := visit(e.Dst, int64(e.Produce), int64(e.Consume)); err != nil {
					return nil, err
				}
			}
			for _, eid := range g.in[a] {
				e := g.Edges[eid]
				if err := visit(e.Src, int64(e.Consume), int64(e.Produce)); err != nil {
					return nil, err
				}
			}
		}
	}

	// Scale to integers: multiply by lcm of denominators.
	var l int64 = 1
	for _, f := range q {
		l = l / gcd(l, f.den) * f.den
	}
	out := make([]int64, n)
	var g2 int64
	for i, f := range q {
		out[i] = f.num * (l / f.den)
		g2 = gcd(g2, out[i])
	}
	if g2 > 1 {
		for i := range out {
			out[i] /= g2
		}
	}
	return out, nil
}

// ErrDeadlock is returned when the self-timed execution reaches a
// state with no enabled and no in-flight firings.
type DeadlockError struct{ Time int64 }

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sdf: deadlock at time %d", e.Time)
}

// Analysis is the result of a self-timed state-space exploration.
type Analysis struct {
	// Throughput is the long-run number of graph *iterations* per
	// time unit (one iteration = every actor fires its repetition
	// count).
	Throughput float64
	// PeriodStart and Period delimit the recurrent phase found by
	// state-space exploration.
	PeriodStart, Period int64
	// FirstCompletion[a] is the time actor a first completed a
	// firing (−1 if it never fired before the recurrence); an
	// estimate of the pipeline fill latency.
	FirstCompletion []int64
	// States is the number of distinct execution states explored.
	States int
}

type inflight struct {
	actor    int
	complete int64
}

// maxEvents bounds the exploration; graphs from the validation phase
// recur after a handful of iterations, so hitting the bound indicates
// a modeling bug rather than a big state space.
const maxEvents = 2_000_000

// Analyze runs the self-timed execution of the graph until the state
// recurs, and derives the throughput from the recurrent phase (the
// state-space method of [13]). The reference for iteration counting is
// actor 0.
func (g *Graph) Analyze() (*Analysis, error) {
	reps, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	g.buildAdj()
	n := len(g.Actors)

	tokens := make([]int, len(g.Edges))
	for i, e := range g.Edges {
		tokens[i] = e.Tokens
	}
	var fl []inflight
	now := int64(0)
	firings := make([]int64, n) // completed firings per actor
	first := make([]int64, n)
	for i := range first {
		first[i] = -1
	}

	canFire := func(a int) bool {
		for _, eid := range g.in[a] {
			if tokens[eid] < g.Edges[eid].Consume {
				return false
			}
		}
		return true
	}

	// state key → (time, firings of actor 0) at first occurrence
	type snap struct {
		time     int64
		firings0 int64
	}
	seen := make(map[string]snap)

	// stateKey serializes (tokens, in-flight firings with relative
	// completion times) into the reused byte buffer. The exploration
	// computes one key per quiescent point, so the previous
	// fmt.Sprintf-per-token encoding dominated the validation phase's
	// allocation profile; map lookups on string(keyBuf) do not copy,
	// only a first-time insert materializes the string.
	var keyBuf []byte
	var rel []inflight
	stateKey := func() []byte {
		b := keyBuf[:0]
		for _, tk := range tokens {
			b = strconv.AppendInt(b, int64(tk), 10)
			b = append(b, ',')
		}
		b = append(b, '|')
		// Canonical order for the in-flight set: by actor, then by
		// relative completion time (the multiset is what matters).
		rel = append(rel[:0], fl...)
		sort.Slice(rel, func(i, j int) bool {
			if rel[i].actor != rel[j].actor {
				return rel[i].actor < rel[j].actor
			}
			return rel[i].complete < rel[j].complete
		})
		for i, f := range rel {
			if i > 0 {
				b = append(b, ';')
			}
			b = strconv.AppendInt(b, int64(f.actor), 10)
			b = append(b, ':')
			b = strconv.AppendInt(b, f.complete-now, 10)
		}
		keyBuf = b
		return b
	}

	for events := 0; events < maxEvents; events++ {
		// Self-timed: start every enabled firing immediately.
		started := true
		for started {
			started = false
			for a := 0; a < n; a++ {
				for canFire(a) {
					for _, eid := range g.in[a] {
						tokens[eid] -= g.Edges[eid].Consume
					}
					fl = append(fl, inflight{actor: a, complete: now + g.Actors[a].Duration})
					started = true
				}
			}
		}

		if len(fl) == 0 {
			return nil, &DeadlockError{Time: now}
		}

		// Recurrence detection at quiescent points (all enabled
		// firings started). The string conversion in the lookup does
		// not allocate; only first-time inserts do.
		key := stateKey()
		if prev, ok := seen[string(key)]; ok {
			period := now - prev.time
			fired := firings[0] - prev.firings0
			an := &Analysis{
				PeriodStart:     prev.time,
				Period:          period,
				FirstCompletion: first,
				States:          len(seen),
			}
			if period > 0 && fired > 0 {
				an.Throughput = float64(fired) / float64(reps[0]) / float64(period)
			}
			return an, nil
		}
		seen[string(key)] = snap{time: now, firings0: firings[0]}

		// Advance to the earliest completion and retire everything
		// completing at that time (filtering fl in place).
		next := fl[0].complete
		for _, f := range fl[1:] {
			if f.complete < next {
				next = f.complete
			}
		}
		now = next
		keep := fl[:0]
		for _, f := range fl {
			if f.complete > now {
				keep = append(keep, f)
				continue
			}
			for _, eid := range g.out[f.actor] {
				tokens[eid] += g.Edges[eid].Produce
			}
			firings[f.actor]++
			if first[f.actor] < 0 {
				first[f.actor] = now
			}
		}
		fl = keep
	}
	return nil, fmt.Errorf("sdf: no recurrent state within %d events", maxEvents)
}
