package sdf

// Fast throughput analysis via maximum cycle ratio — the direction the
// paper's future work points at (§V, citing Ghamarian et al. [18]):
// replace the run-time state-space exploration with an analysis whose
// expensive part can move to design time, "making the validation
// approach a lot faster".
//
// For unit-rate (homogeneous) SDF graphs, the self-timed steady-state
// throughput of a strongly connected graph equals 1/MCR, where MCR is
// the maximum over all cycles C of
//
//	Σ_{e ∈ C} duration(src(e))  /  Σ_{e ∈ C} tokens(e).
//
// Graphs with several components run at the rate of the slowest
// component. The MCR is computed by parametric search (Lawler): λ is
// feasible iff the graph has no positive cycle under edge weights
// duration − λ·tokens, checked with Bellman–Ford.

import (
	"errors"
	"fmt"
	"math"
)

// ErrMultiRate is returned by FastAnalyze for graphs with non-unit
// rates, which require the state-space exploration (Analyze).
var ErrMultiRate = errors.New("sdf: fast analysis requires unit rates")

// unitRate reports whether every edge produces and consumes exactly
// one token per firing.
func (g *Graph) unitRate() bool {
	for _, e := range g.Edges {
		if e.Produce != 1 || e.Consume != 1 {
			return false
		}
	}
	return true
}

// positiveCycle reports whether the graph contains a cycle with
// positive total weight under w(e) = duration(src(e)) − λ·tokens(e)
// (Bellman–Ford longest-path relaxation).
func (g *Graph) positiveCycle(lambda float64) bool {
	n := len(g.Actors)
	// Longest-path potentials, initialized to 0 so every node is a
	// virtual source (detects cycles in any component).
	pot := make([]float64, n)
	for iter := 0; iter < n; iter++ {
		changed := false
		for _, e := range g.Edges {
			w := float64(g.Actors[e.Src].Duration) - lambda*float64(e.Tokens)
			if nv := pot[e.Src] + w; nv > pot[e.Dst]+1e-12 {
				pot[e.Dst] = nv
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true
}

// MaxCycleRatio computes the MCR of a unit-rate graph. A cycle without
// tokens (which can never fire) yields a DeadlockError; a graph with
// no cycles at all returns 0 (unbounded self-timed throughput — in
// practice every actor has a self-loop, giving at least its duration).
func (g *Graph) MaxCycleRatio() (float64, error) {
	if err := g.Validate(); err != nil {
		return 0, err
	}
	if !g.unitRate() {
		return 0, ErrMultiRate
	}

	var hi float64
	for _, a := range g.Actors {
		hi += float64(a.Duration)
	}
	if hi == 0 {
		return 0, nil
	}
	// A positive cycle at λ > Σdurations can only be a token-free
	// cycle: deadlock.
	if g.positiveCycle(hi + 1) {
		return 0, &DeadlockError{Time: 0}
	}
	if !g.positiveCycle(0) {
		// No cycle with positive duration at all.
		return 0, nil
	}

	lo := 0.0
	for i := 0; i < 64 && hi-lo > 1e-9*math.Max(1, hi); i++ {
		mid := (lo + hi) / 2
		if g.positiveCycle(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// FastAnalyze computes the steady-state throughput of a unit-rate
// graph from its maximum cycle ratio, without exploring the state
// space. The Analysis carries no period or first-completion
// information (those require execution); States is 0.
func (g *Graph) FastAnalyze() (*Analysis, error) {
	mcr, err := g.MaxCycleRatio()
	if err != nil {
		return nil, err
	}
	an := &Analysis{FirstCompletion: make([]int64, len(g.Actors))}
	for i := range an.FirstCompletion {
		an.FirstCompletion[i] = -1
	}
	if mcr > 0 {
		an.Throughput = 1 / mcr
	} else {
		// Acyclic graph: bounded only by the slowest actor if it has
		// a self-loop; report the bottleneck-actor rate.
		var maxDur int64
		for _, a := range g.Actors {
			if a.Duration > maxDur {
				maxDur = a.Duration
			}
		}
		if maxDur > 0 {
			an.Throughput = 1 / float64(maxDur)
		}
	}
	return an, nil
}

// VerifyFastAgainstExact is a test helper: it runs both analyses and
// returns an error when they disagree beyond tol (relative).
func (g *Graph) VerifyFastAgainstExact(tol float64) error {
	exact, err := g.Analyze()
	if err != nil {
		return err
	}
	fast, err := g.FastAnalyze()
	if err != nil {
		return err
	}
	diff := math.Abs(exact.Throughput - fast.Throughput)
	if diff > tol*math.Max(exact.Throughput, 1e-12) {
		return fmt.Errorf("sdf: fast throughput %v vs exact %v", fast.Throughput, exact.Throughput)
	}
	return nil
}
