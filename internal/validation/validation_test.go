package validation

import (
	"errors"
	"testing"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/resource"
	"repro/internal/routing"
)

// layout maps a 2-task chain onto a 3-element line and returns all
// artifacts.
func layout(t *testing.T, share int64, constraints graph.Constraints) (
	*graph.Application, *binding.Binding, []int, []routing.Route, *platform.Platform) {
	t.Helper()
	p := platform.Mesh(3, 1, 2)
	app := graph.New("a")
	a := app.AddTask("a", graph.Internal, graph.Implementation{
		Name: "dsp", Target: platform.TypeDSP,
		Requires: resource.Of(share, 8, 0, 0), Cost: 1, ExecTime: 4,
	})
	b := app.AddTask("b", graph.Internal, graph.Implementation{
		Name: "dsp", Target: platform.TypeDSP,
		Requires: resource.Of(share, 8, 0, 0), Cost: 1, ExecTime: 6,
	})
	app.AddChannel(a, b)
	app.Constraints = constraints

	bind, err := binding.Bind(app, p)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	res, err := mapping.MapApplication(app, p, bind, mapping.Options{
		Instance: "v", Weights: mapping.WeightsCommunication,
	})
	if err != nil {
		t.Fatalf("MapApplication: %v", err)
	}
	routes, err := routing.RouteAll(app, res.Assignment, p, routing.BFS{})
	if err != nil {
		t.Fatalf("RouteAll: %v", err)
	}
	return app, bind, res.Assignment, routes, p
}

func TestValidateUnconstrained(t *testing.T) {
	app, bind, assign, routes, p := layout(t, 60, graph.Constraints{})
	rep, err := Validate(app, bind, assign, routes, p, Options{})
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !rep.Satisfied {
		t.Error("unconstrained layout must be satisfied")
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %v, want > 0", rep.Throughput)
	}
	// Bottleneck task has duration 6 → at most 1/6 iterations/unit.
	if rep.Throughput > 1.0/6+1e-9 {
		t.Errorf("throughput %v exceeds bottleneck bound 1/6", rep.Throughput)
	}
	if rep.PipeLatency <= 0 {
		t.Errorf("PipeLatency = %d, want > 0", rep.PipeLatency)
	}
}

func TestValidateThroughputConstraintViolated(t *testing.T) {
	// Demand 1000 iterations per 1000 time units = 1/unit; actual is
	// ≤ 1/6.
	app, bind, assign, routes, p := layout(t, 60, graph.Constraints{MinThroughput: 1000})
	rep, err := Validate(app, bind, assign, routes, p, Options{})
	var verr *Error
	if !errors.As(err, &verr) {
		t.Fatalf("error = %v, want *validation.Error", err)
	}
	if rep == nil || rep.Satisfied {
		t.Error("report should exist and be unsatisfied")
	}
	if verr.Report == nil {
		t.Error("error should carry the report")
	}
}

func TestValidateLatencyAsThroughput(t *testing.T) {
	// MaxLatency 5 → required ≥ 0.2 iterations/unit; actual ≤ 1/6.
	app, bind, assign, routes, p := layout(t, 60, graph.Constraints{MaxLatency: 5})
	if _, err := Validate(app, bind, assign, routes, p, Options{}); err == nil {
		t.Error("latency constraint should be violated")
	}
	// A lax latency passes.
	app2, bind2, assign2, routes2, p2 := layout(t, 60, graph.Constraints{MaxLatency: 1000})
	if _, err := Validate(app2, bind2, assign2, routes2, p2, Options{}); err != nil {
		t.Errorf("lax latency should pass: %v", err)
	}
}

func TestContentionSlowsThroughput(t *testing.T) {
	// Two 40% tasks end up sharing elements when the platform is one
	// element; contention doubles durations and halves throughput.
	p := platform.New()
	p.AddElement(platform.TypeDSP, "d0", platform.DSPCapacity)
	app := graph.New("a")
	a := app.AddTask("a", graph.Internal, graph.Implementation{
		Name: "dsp", Target: platform.TypeDSP,
		Requires: resource.Of(40, 8, 0, 0), Cost: 1, ExecTime: 4,
	})
	b := app.AddTask("b", graph.Internal, graph.Implementation{
		Name: "dsp", Target: platform.TypeDSP,
		Requires: resource.Of(40, 8, 0, 0), Cost: 1, ExecTime: 4,
	})
	app.AddChannel(a, b)
	bind, err := binding.Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.MapApplication(app, p, bind, mapping.Options{Instance: "c"})
	if err != nil {
		t.Fatal(err)
	}
	routes, err := routing.RouteAll(app, res.Assignment, p, routing.BFS{})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Validate(app, bind, res.Assignment, routes, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Validate(app, bind, res.Assignment, routes, p, Options{IgnoreContention: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Throughput >= without.Throughput {
		t.Errorf("contention-aware throughput %v should be below contention-free %v",
			with.Throughput, without.Throughput)
	}
}

func TestLongerRoutesReducePipelineLatency(t *testing.T) {
	// Same app on a line: adjacent mapping (1 hop) vs forced distant
	// mapping would add comm latency. Compare the SDF models: the
	// comm actor duration equals the hop count.
	app, bind, assign, routes, p := layout(t, 60, graph.Constraints{})
	g1 := Build(app, bind, assign, routes, p, Options{})
	// Rebuild with an artificial 3-hop route.
	fake := []routing.Route{{Channel: 0, Path: []int{0, 1, 2, 1}}}
	g2 := Build(app, bind, assign, fake, p, Options{})
	if len(g2.Actors) != len(g1.Actors) {
		t.Fatalf("actor counts differ: %d vs %d", len(g2.Actors), len(g1.Actors))
	}
	// The comm actor is the last actor added in both graphs.
	d1 := g1.Actors[len(g1.Actors)-1].Duration
	d2 := g2.Actors[len(g2.Actors)-1].Duration
	if d2 <= d1 {
		t.Errorf("3-hop comm duration %d should exceed 1-hop %d", d2, d1)
	}
}

func TestSmallerBuffersReduceThroughput(t *testing.T) {
	app, bind, assign, routes, p := layout(t, 60, graph.Constraints{})
	big, err := Validate(app, bind, assign, routes, p, Options{BufferTokens: 8})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Validate(app, bind, assign, routes, p, Options{BufferTokens: 1})
	if err != nil {
		t.Fatal(err)
	}
	if small.Throughput > big.Throughput+1e-9 {
		t.Errorf("1-token buffer throughput %v should not exceed 8-token %v",
			small.Throughput, big.Throughput)
	}
}

func TestBuildModelSizes(t *testing.T) {
	app, bind, assign, routes, p := layout(t, 60, graph.Constraints{})
	g := Build(app, bind, assign, routes, p, Options{})
	// 2 task actors + 1 comm actor (the two tasks are on different
	// elements after a communication-weighted mapping).
	if len(g.Actors) != 3 {
		t.Errorf("actors = %d, want 3", len(g.Actors))
	}
	if err := g.Validate(); err != nil {
		t.Errorf("built model invalid: %v", err)
	}
	rep, err := Validate(app, bind, assign, routes, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Actors != 3 || rep.Edges != len(g.Edges) {
		t.Errorf("report sizes %d/%d disagree with model %d/%d",
			rep.Actors, rep.Edges, len(g.Actors), len(g.Edges))
	}
}
