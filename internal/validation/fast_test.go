package validation

import (
	"math"
	"testing"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/resource"
	"repro/internal/routing"
)

func TestFastValidationMatchesExact(t *testing.T) {
	app, bind, assign, routes, p := layout(t, 60, graph.Constraints{})
	exact, err := Validate(app, bind, assign, routes, p, Options{})
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	fast, err := Validate(app, bind, assign, routes, p, Options{Fast: true})
	if err != nil {
		t.Fatalf("fast: %v", err)
	}
	if math.Abs(exact.Throughput-fast.Throughput) > 1e-6*exact.Throughput {
		t.Errorf("fast throughput %v vs exact %v", fast.Throughput, exact.Throughput)
	}
	if fast.PipeLatency != 0 {
		t.Errorf("fast validation should not report pipeline latency, got %d", fast.PipeLatency)
	}
}

func TestFastValidationEnforcesConstraints(t *testing.T) {
	app, bind, assign, routes, p := layout(t, 60, graph.Constraints{MinThroughput: 1e6})
	if _, err := Validate(app, bind, assign, routes, p, Options{Fast: true}); err == nil {
		t.Error("fast validation must still reject violated constraints")
	}
}

func TestFastValidationFallsBackOnMultiRate(t *testing.T) {
	// A multirate channel forces the state-space analysis; Fast must
	// silently fall back and produce the same verdict.
	p := platform.Mesh(3, 1, 2)
	app := graph.New("multi")
	a := app.AddTask("a", graph.Internal, graph.Implementation{
		Name: "dsp", Target: platform.TypeDSP,
		Requires: resource.Of(60, 8, 0, 0), Cost: 1, ExecTime: 4,
	})
	b := app.AddTask("b", graph.Internal, graph.Implementation{
		Name: "dsp", Target: platform.TypeDSP,
		Requires: resource.Of(60, 8, 0, 0), Cost: 1, ExecTime: 3,
	})
	app.AddChannelRated(a, b, 2, 1, 1) // multirate: q = [1, 2]

	bind, err := binding.Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.MapApplication(app, p, bind, mapping.Options{
		Instance: "m", Weights: mapping.WeightsCommunication,
	})
	if err != nil {
		t.Fatal(err)
	}
	routes, err := routing.RouteAll(app, res.Assignment, p, routing.BFS{})
	if err != nil {
		t.Fatal(err)
	}

	exact, err := Validate(app, bind, res.Assignment, routes, p, Options{})
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	fast, err := Validate(app, bind, res.Assignment, routes, p, Options{Fast: true})
	if err != nil {
		t.Fatalf("fast (fallback): %v", err)
	}
	if math.Abs(exact.Throughput-fast.Throughput) > 1e-9 {
		t.Errorf("fallback should produce the exact result: %v vs %v",
			fast.Throughput, exact.Throughput)
	}
}

func TestFastValidationBeamformingAgreement(t *testing.T) {
	// The 53-task beamformer is unit-rate: the fast path must agree
	// with the state-space exploration on the full case study.
	p := platform.CRISP()
	ioIn := -1
	for _, e := range p.Elements() {
		if e.Name == "io-in" {
			ioIn = e.ID
		}
	}
	app := graph.Beamforming(graph.DefaultBeamforming(ioIn))
	bind, err := binding.Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapping.MapApplication(app, p, bind, mapping.Options{
		Instance: "bf", Weights: mapping.WeightsBoth,
	})
	if err != nil {
		t.Fatal(err)
	}
	routes, err := routing.RouteAll(app, res.Assignment, p, routing.BFS{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Validate(app, bind, res.Assignment, routes, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Validate(app, bind, res.Assignment, routes, p, Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.Throughput-fast.Throughput) > 1e-6*exact.Throughput {
		t.Errorf("beamforming fast %v vs exact %v", fast.Throughput, exact.Throughput)
	}
}
