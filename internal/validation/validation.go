// Package validation implements phase 4 of the workflow (paper §I-A):
// the performance constraints given in the application specification
// are validated against the performance provided by the execution
// layout derived from the previous phases.
//
// The influence of the platform and the application specification is
// modeled as an SDF graph (paper §II): tasks become actors whose
// firing duration reflects time-sharing contention on their element,
// and every routed channel becomes a communication actor whose
// duration grows with the route's hop count. Latency constraints are
// expressed as throughput constraints ([12]) and checked against the
// throughput obtained by state-space exploration (package sdf).
package validation

import (
	"errors"
	"fmt"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/routing"
	"repro/internal/sdf"
)

// Options configures the SDF model construction.
type Options struct {
	// PerHopLatency is the firing duration contributed by each hop
	// of a route; defaults to 1.
	PerHopLatency int64
	// BufferTokens is the per-channel buffer depth, in units of the
	// channel's larger rate; defaults to 4. Smaller buffers reduce
	// throughput (more back-pressure).
	BufferTokens int
	// IgnoreContention disables the time-sharing penalty on
	// elements hosting multiple tasks.
	IgnoreContention bool
	// Fast uses maximum-cycle-ratio analysis instead of the
	// state-space exploration when the model is unit-rate — the
	// speed-up direction of the paper's future work (§V, [18]).
	// Multi-rate models silently fall back to the exact analysis.
	// Fast reports no pipeline-fill latency.
	Fast bool
}

func (o Options) withDefaults() Options {
	if o.PerHopLatency == 0 {
		o.PerHopLatency = 1
	}
	if o.BufferTokens == 0 {
		o.BufferTokens = 4
	}
	return o
}

// Report is the outcome of the validation phase.
type Report struct {
	// Throughput is the achieved throughput in graph iterations per
	// time unit.
	Throughput float64
	// Required is the throughput demanded by the constraints (the
	// maximum of the direct throughput constraint and the latency
	// constraint expressed as throughput), in iterations per time
	// unit; 0 when unconstrained.
	Required float64
	// PipeLatency is the time at which every task actor had
	// completed at least one firing — a pipeline-fill estimate.
	PipeLatency int64
	// Satisfied reports whether Throughput ≥ Required.
	Satisfied bool
	// Actors and Edges size the SDF model that was analyzed.
	Actors, Edges int
}

// Error is a validation-phase failure: the layout cannot satisfy the
// application's performance constraints.
type Error struct {
	Reason string
	Report *Report
}

func (e *Error) Error() string { return "validation: " + e.Reason }

// Build constructs the SDF model of an execution layout.
func Build(app *graph.Application, bind *binding.Binding, assignment []int,
	routes []routing.Route, p *platform.Platform, opts Options) *sdf.Graph {
	opts = opts.withDefaults()
	g := sdf.NewGraph()

	contention := func(elem int) int64 {
		if opts.IgnoreContention {
			return 1
		}
		n := int64(p.Element(elem).OccupantCount())
		if n < 1 {
			n = 1
		}
		return n
	}

	actorOf := make([]int, len(app.Tasks))
	for _, t := range app.Tasks {
		im := bind.Implementation(t.ID)
		dur := im.ExecTime * contention(assignment[t.ID])
		actorOf[t.ID] = g.AddActor(t.Name, dur)
		g.AddSelfLoop(actorOf[t.ID])
	}

	// Hop counts per channel ID (channel IDs index app.Channels).
	hopsOf := make([]int, len(app.Channels))
	for _, rt := range routes {
		if rt.Channel >= 0 && rt.Channel < len(hopsOf) {
			hopsOf[rt.Channel] = rt.Hops()
		}
	}

	for _, ch := range app.Channels {
		src, dst := actorOf[ch.Src], actorOf[ch.Dst]
		buf := opts.BufferTokens * max(ch.Produce, ch.Consume)
		// Same guard as the writes above: a channel whose ID does not
		// index app.Channels (possible for hand-built graphs) has no
		// recorded route and zero hops, as with the old map lookup.
		hops := 0
		if ch.ID >= 0 && ch.ID < len(hopsOf) {
			hops = hopsOf[ch.ID]
		}
		if hops == 0 {
			// Same-element (or unrouted) channel: direct edge with
			// a bounded-buffer back edge.
			g.AddEdge(src, dst, ch.Produce, ch.Consume, ch.Initial)
			g.AddEdge(dst, src, ch.Consume, ch.Produce, buf)
			continue
		}
		// Routed channel: a communication actor models the NoC
		// transfer, one token at a time.
		comm := g.AddActor(fmt.Sprintf("comm%d", ch.ID), int64(hops)*opts.PerHopLatency)
		g.AddSelfLoop(comm)
		g.AddEdge(src, comm, ch.Produce, 1, 0)
		g.AddEdge(comm, dst, 1, ch.Consume, ch.Initial)
		// Back-pressure: credit tokens flow dst → comm → src.
		g.AddEdge(comm, src, 1, ch.Produce, buf*ch.Produce)
		g.AddEdge(dst, comm, ch.Consume, 1, buf*ch.Consume)
	}
	return g
}

// Validate builds the SDF model, analyzes it, and checks the
// application's constraints. A constraint violation (or an
// unanalyzable model, e.g. deadlock) returns an *Error whose Report
// carries whatever was measured.
func Validate(app *graph.Application, bind *binding.Binding, assignment []int,
	routes []routing.Route, p *platform.Platform, opts Options) (*Report, error) {
	g := Build(app, bind, assignment, routes, p, opts)
	var an *sdf.Analysis
	var err error
	if opts.Fast {
		an, err = g.FastAnalyze()
		if errors.Is(err, sdf.ErrMultiRate) {
			an, err = g.Analyze()
		}
	} else {
		an, err = g.Analyze()
	}
	if err != nil {
		return nil, &Error{Reason: "throughput analysis failed: " + err.Error()}
	}

	rep := &Report{
		Throughput: an.Throughput,
		Actors:     len(g.Actors),
		Edges:      len(g.Edges),
	}
	// Pipeline-fill latency: the latest first completion over all
	// actors (communication actors included — a stream is flowing
	// only once every stage has produced).
	for _, fc := range an.FirstCompletion {
		if fc > rep.PipeLatency {
			rep.PipeLatency = fc
		}
	}

	required := app.Constraints.MinThroughput / 1000
	if l := app.Constraints.MaxLatency; l > 0 {
		// Latency expressed as a throughput constraint (paper §II,
		// [12]): sustaining one iteration per MaxLatency time units.
		if r := 1 / float64(l); r > required {
			required = r
		}
	}
	rep.Required = required
	rep.Satisfied = rep.Throughput >= required || required == 0

	if !rep.Satisfied {
		return rep, &Error{
			Reason: fmt.Sprintf("throughput %.6f below required %.6f iterations/time-unit",
				rep.Throughput, rep.Required),
			Report: rep,
		}
	}
	return rep, nil
}
