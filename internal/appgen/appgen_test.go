package appgen

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/resource"
)

func TestSizeClasses(t *testing.T) {
	cases := []struct {
		size   Size
		lo, hi int
	}{{Small, 3, 4}, {Medium, 6, 10}, {Large, 11, 16}}
	for _, c := range cases {
		apps := Dataset(NewConfig(Computation, c.size), 50, 7)
		for _, app := range apps {
			if n := len(app.Tasks); n < c.lo || n > c.hi {
				t.Errorf("%s app has %d tasks, want %d..%d", c.size, n, c.lo, c.hi)
			}
		}
	}
}

func TestAllAppsValid(t *testing.T) {
	for _, p := range []Profile{Communication, Computation} {
		for _, s := range []Size{Small, Medium, Large} {
			for _, app := range Dataset(NewConfig(p, s), 30, 11) {
				if err := app.Validate(); err != nil {
					t.Fatalf("%s/%s generated invalid app: %v", p, s, err)
				}
			}
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Dataset(NewConfig(Communication, Medium), 5, 42)
	b := Dataset(NewConfig(Communication, Medium), 5, 42)
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Tasks) != len(b[i].Tasks) || len(a[i].Channels) != len(b[i].Channels) {
			t.Fatalf("generation not deterministic at app %d", i)
		}
		for j := range a[i].Channels {
			if *a[i].Channels[j] != *b[i].Channels[j] {
				t.Fatalf("channel %d differs between runs", j)
			}
		}
	}
	c := Dataset(NewConfig(Communication, Medium), 5, 43)
	same := true
	for i := range a {
		if len(a[i].Tasks) != len(c[i].Tasks) || len(a[i].Channels) != len(c[i].Channels) {
			same = false
		}
	}
	if same {
		t.Log("different seeds produced structurally identical datasets (possible but unlikely)")
	}
}

func TestComputationShares(t *testing.T) {
	apps := Dataset(NewConfig(Computation, Medium), 30, 3)
	for _, app := range apps {
		for _, task := range app.Tasks {
			for _, im := range task.Implementations {
				var capacity resource.Vector
				switch im.Target {
				case platform.TypeDSP:
					capacity = platform.DSPCapacity
				case platform.TypeGPP:
					capacity = platform.GPPCapacity
				case platform.TypeFPGA:
					capacity = platform.FPGACapacity
				default:
					t.Fatalf("unexpected target %q", im.Target)
				}
				// Computation-intensive tasks stress one primary
				// axis at 70–100% (compute- or memory-bound); the
				// other axis stays in the 10–30% band.
				cshare := 100 * im.Requires[resource.Compute] / capacity[resource.Compute]
				mshare := 100 * im.Requires[resource.Memory] / capacity[resource.Memory]
				primary := max(cshare, mshare)
				// Integer truncation of the demand (e.g. 70% of
				// 64 KiB = 44 KiB = 68.75%) can lower the observed
				// share slightly below the 70% draw.
				if primary < 68 || primary > 100 {
					t.Fatalf("computation primary share %d%% outside 70–100%% (%v)", primary, im.Requires)
				}
				if secondary := min(cshare, mshare); secondary > 30 {
					t.Fatalf("computation secondary share %d%% above 30%% (%v)", secondary, im.Requires)
				}
			}
		}
	}
}

func TestCommunicationShares(t *testing.T) {
	apps := Dataset(NewConfig(Communication, Medium), 30, 3)
	for _, app := range apps {
		for _, task := range app.Tasks {
			im := task.Implementations[0] // DSP primary
			share := 100 * im.Requires[resource.Compute] / platform.DSPCapacity[resource.Compute]
			if share < 5 || share > 20 {
				t.Fatalf("communication compute share %d%% outside 5–20%%", share)
			}
			mem := 100 * im.Requires[resource.Memory] / platform.DSPCapacity[resource.Memory]
			if mem < 3 || mem > 25 { // 5–25% band, integer truncation allows 4%→3KB/64KB≈4%
				t.Fatalf("communication memory share %d%% outside expected band", mem)
			}
		}
	}
}

func TestStructureRespectsKinds(t *testing.T) {
	apps := Dataset(NewConfig(Communication, Large), 30, 5)
	for _, app := range apps {
		for _, ch := range app.Channels {
			if app.Tasks[ch.Src].Kind == graph.Output {
				t.Fatalf("output task %d has outgoing channel", ch.Src)
			}
			if app.Tasks[ch.Dst].Kind == graph.Input {
				t.Fatalf("input task %d has incoming channel", ch.Dst)
			}
		}
	}
}

func TestConnectivity(t *testing.T) {
	// Every task must appear in the neighborhoods of the first task,
	// i.e. the undirected graph is weakly connected... the generator
	// guarantees each non-input task has a predecessor, so the graph
	// may still split across multiple inputs; what is guaranteed is
	// that no internal/output task is isolated.
	apps := Dataset(NewConfig(Computation, Large), 30, 9)
	for _, app := range apps {
		for _, task := range app.Tasks {
			if task.Kind != graph.Input && app.Degree(task.ID) == 0 {
				t.Fatalf("task %d isolated in %s", task.ID, app.Name)
			}
		}
	}
}

func TestDegreeCapsHold(t *testing.T) {
	cfg := NewConfig(Communication, Large)
	apps := Dataset(cfg, 30, 13)
	for _, app := range apps {
		for _, task := range app.Tasks {
			// The connectivity fallback may exceed the out-degree cap
			// by at most the number of relaxations; in practice it
			// stays within cap+1.
			if got := len(app.OutChannels(task.ID)); got > cfg.MaxOutDegree+1 {
				t.Errorf("out-degree %d exceeds cap %d", got, cfg.MaxOutDegree)
			}
			if got := len(app.InChannels(task.ID)); got > cfg.MaxInDegree+1 {
				t.Errorf("in-degree %d exceeds cap %d", got, cfg.MaxInDegree)
			}
		}
	}
}

func TestDatasetName(t *testing.T) {
	if got := DatasetName(NewConfig(Communication, Small)); got != "Communication Small" {
		t.Errorf("DatasetName = %q", got)
	}
	if got := DatasetName(NewConfig(Computation, Large)); got != "Computation Large" {
		t.Errorf("DatasetName = %q", got)
	}
}

func TestPropertyGeneratedAppsEncodeDecode(t *testing.T) {
	f := func(seed int64) bool {
		app := New(NewConfig(Communication, Medium), seed).Next()
		b, err := graph.Bytes(app)
		if err != nil {
			return false
		}
		back, err := graph.FromBytes(b)
		if err != nil {
			return false
		}
		return back.Name == app.Name &&
			len(back.Tasks) == len(app.Tasks) &&
			len(back.Channels) == len(app.Channels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
