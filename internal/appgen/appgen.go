// Package appgen is the synthetic application generator of the
// evaluation (paper §IV): an in-house tool similar to TGFF [17] in
// which "the structure of an application can be specified with a
// number of input, internal, and output tasks", the maximum in- and
// out-degree of tasks shapes the communication structure, and each
// task gets a number of implementations annotated with bounded random
// resource requirements.
//
// Applications are either computation intensive — tasks use between
// 70% and 100% of an element's resources — or communication oriented —
// tasks use between 10% and 70%, so elements are time-shared and
// communication eventually bottlenecks. Within each characteristic,
// applications are small (< 5 tasks), medium (6–10) or large (11–16).
package appgen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/resource"
)

// Profile is the application characteristic of Table I.
type Profile int

const (
	// Communication-oriented: low per-task demands (10–70%), more
	// and heavier channels; elements get time-shared.
	Communication Profile = iota
	// Computation-intensive: high per-task demands (70–100%);
	// binding and element capacity dominate.
	Computation
)

func (p Profile) String() string {
	if p == Computation {
		return "computation"
	}
	return "communication"
}

// Size is the application size class of Table I.
type Size int

const (
	// Small applications have fewer than 5 tasks.
	Small Size = iota
	// Medium applications have 6–10 tasks.
	Medium
	// Large applications have 11–16 tasks.
	Large
)

func (s Size) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	default:
		return "large"
	}
}

// taskRange returns the inclusive task-count bounds of a size class.
func (s Size) taskRange() (lo, hi int) {
	switch s {
	case Small:
		return 3, 4
	case Medium:
		return 6, 10
	default:
		return 11, 16
	}
}

// Config parameterizes the generator. The zero value is not useful;
// use NewConfig for the paper's settings.
type Config struct {
	Profile Profile
	Size    Size
	// MaxInDegree and MaxOutDegree bound the communication
	// structure.
	MaxInDegree, MaxOutDegree int
	// Implementations is the maximum number of implementations
	// generated per task (at least 1 is always generated).
	Implementations int
	// AltTargetProb is the probability that a non-primary
	// implementation targets a scarce element type (GPP/FPGA)
	// instead of a DSP.
	AltTargetProb float64
	// ExtraChannelFactor scales the number of extra-channel
	// attempts beyond the spanning structure (attempts =
	// factor × tasks). Communication profiles use a higher factor.
	ExtraChannelFactor int
}

// NewConfig returns the paper-equivalent generator configuration for
// a profile and size class.
func NewConfig(p Profile, s Size) Config {
	cfg := Config{
		Profile:            p,
		Size:               s,
		MaxInDegree:        2,
		MaxOutDegree:       3,
		Implementations:    3,
		AltTargetProb:      0.3,
		ExtraChannelFactor: 1,
	}
	if p == Communication {
		// Communication-oriented structures are denser.
		cfg.MaxInDegree, cfg.MaxOutDegree = 3, 4
		cfg.ExtraChannelFactor = 1
	}
	return cfg
}

// shareBounds returns the compute-share percentage band of a profile.
// Computation-intensive tasks use 70–100% of an element (paper §IV).
// Communication-oriented tasks time-share elements; we draw their
// shares from the bottom of the paper's 10–70% band so that, as the
// paper describes, time-sharing "eventually result[s] in communication
// bottlenecks" — with heavier tasks, element capacity (the binding
// phase) trips before the NoC does and Table I's communication rows
// would mis-attribute to binding.
func (p Profile) shareBounds() (lo, hi int64) {
	if p == Computation {
		return 70, 100
	}
	return 5, 20
}

// Generator produces random applications deterministically from a
// seed.
type Generator struct {
	cfg Config
	r   *rand.Rand
	n   int
}

// New returns a generator for the configuration and seed.
func New(cfg Config, seed int64) *Generator {
	return &Generator{cfg: cfg, r: rand.New(rand.NewSource(seed))}
}

func (g *Generator) pct(lo, hi int64) int64 {
	return lo + g.r.Int63n(hi-lo+1)
}

// implementations generates 1..cfg.Implementations implementations for
// one task. The first always targets a DSP; alternatives may target
// scarce types at higher base cost, exercising the regret ordering of
// the binding phase.
func (g *Generator) implementations() []graph.Implementation {
	lo, hi := g.cfg.Profile.shareBounds()
	n := 1
	if g.cfg.Implementations > 1 {
		n += g.r.Intn(g.cfg.Implementations)
	}
	impls := make([]graph.Implementation, 0, n)
	mk := func(target string, capacity resource.Vector, costBase float64) graph.Implementation {
		// Each implementation stresses one primary resource axis in
		// the profile's band. Computation-intensive tasks are either
		// compute-bound or memory-bound (filter kernels vs table
		// lookups), so elements saturated on one axis can still host
		// tasks bound on the other — which is when allocation
		// attempts survive binding and run into the NoC limits
		// instead (Table I, computation rows). Communication
		// (streaming) tasks keep only small local buffers; their
		// pressure is on the NoC.
		share := g.pct(lo, hi)
		memShare := g.pct(10, 30)
		if g.cfg.Profile == Communication {
			memShare = g.pct(5, 25)
		} else if g.r.Intn(2) == 0 {
			share, memShare = g.pct(10, 30), g.pct(lo, hi)
		}
		return graph.Implementation{
			Name:   fmt.Sprintf("%s-v%d", target, len(impls)),
			Target: target,
			Requires: resource.Of(
				capacity[resource.Compute]*share/100,
				capacity[resource.Memory]*memShare/100,
				0, 0),
			Cost:     costBase + float64(g.r.Intn(10)),
			ExecTime: 2 + int64(g.r.Intn(12)),
		}
	}
	impls = append(impls, mk(platform.TypeDSP, platform.DSPCapacity, 1))
	for len(impls) < n {
		if g.r.Float64() < g.cfg.AltTargetProb {
			if g.r.Intn(2) == 0 {
				impls = append(impls, mk(platform.TypeGPP, platform.GPPCapacity, 8))
			} else {
				impls = append(impls, mk(platform.TypeFPGA, platform.FPGACapacity, 12))
			}
		} else {
			impls = append(impls, mk(platform.TypeDSP, platform.DSPCapacity, 3))
		}
	}
	return impls
}

// Next generates the next application.
func (g *Generator) Next() *graph.Application {
	g.n++
	lo, hi := g.cfg.Size.taskRange()
	nTasks := lo + g.r.Intn(hi-lo+1)

	// Structure: 1–2 input tasks, 1–2 output tasks, rest internal.
	nIn := 1 + g.r.Intn(2)
	nOut := 1 + g.r.Intn(2)
	for nIn+nOut >= nTasks {
		if nOut > 1 {
			nOut--
		} else {
			nIn--
		}
	}

	app := graph.New(fmt.Sprintf("%s-%s-%03d", g.cfg.Profile, g.cfg.Size, g.n))
	kinds := make([]graph.TaskKind, nTasks)
	for i := 0; i < nTasks; i++ {
		switch {
		case i < nIn:
			kinds[i] = graph.Input
		case i >= nTasks-nOut:
			kinds[i] = graph.Output
		default:
			kinds[i] = graph.Internal
		}
		app.AddTask(fmt.Sprintf("t%d", i), kinds[i], g.implementations()...)
	}

	inDeg := make([]int, nTasks)
	outDeg := make([]int, nTasks)
	tokenHi := int64(4)
	if g.cfg.Profile == Communication {
		tokenHi = 8
	}
	addChannel := func(src, dst int) {
		app.AddChannelRated(src, dst, 1, 1, 1+g.r.Int63n(tokenHi))
		outDeg[src]++
		inDeg[dst]++
	}

	// Weak connectivity: every non-input task receives a channel
	// from an earlier task with spare out-degree (inputs never
	// receive; outputs never send).
	for i := nIn; i < nTasks; i++ {
		cands := make([]int, 0, i)
		for j := 0; j < i; j++ {
			if kinds[j] != graph.Output && outDeg[j] < g.cfg.MaxOutDegree {
				cands = append(cands, j)
			}
		}
		if len(cands) == 0 {
			// All earlier tasks saturated: relax the cap for the
			// lowest-out-degree predecessor to stay connected.
			best := 0
			for j := 1; j < i; j++ {
				if kinds[j] != graph.Output && outDeg[j] < outDeg[best] {
					best = j
				}
			}
			cands = append(cands, best)
		}
		addChannel(cands[g.r.Intn(len(cands))], i)
	}

	// Extra forward channels up to the degree caps; communication
	// profiles try much harder — their whole point is to stress the
	// platform's communication resources.
	attempts := nTasks * max(1, g.cfg.ExtraChannelFactor)
	for a := 0; a < attempts; a++ {
		src := g.r.Intn(nTasks)
		dst := g.r.Intn(nTasks)
		if src >= dst || kinds[src] == graph.Output || kinds[dst] == graph.Input {
			continue
		}
		if outDeg[src] >= g.cfg.MaxOutDegree || inDeg[dst] >= g.cfg.MaxInDegree {
			continue
		}
		dup := false
		for _, cid := range app.OutChannels(src) {
			if app.Channels[cid].Dst == dst {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		addChannel(src, dst)
	}

	// The paper cannot generate reasonable performance constraints
	// automatically and does not reject in validation; leave the
	// constraints zero.
	return app
}

// Dataset generates n applications for the configuration.
func Dataset(cfg Config, n int, seed int64) []*graph.Application {
	g := New(cfg, seed)
	apps := make([]*graph.Application, n)
	for i := range apps {
		apps[i] = g.Next()
	}
	return apps
}

// DatasetName formats the Table I row label for a configuration.
func DatasetName(cfg Config) string {
	return fmt.Sprintf("%s %s", title(cfg.Profile.String()), title(cfg.Size.String()))
}

func title(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}
