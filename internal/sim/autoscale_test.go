package sim

import (
	"encoding/json"
	"testing"

	"repro/internal/rebalance"
)

// TestAutoscaleDeterministic: the full result is byte-identical across
// runs for a fixed config — the property the CI smoke diffs on.
func TestAutoscaleDeterministic(t *testing.T) {
	run := func() []byte {
		cfg := DefaultAutoscaleConfig(3)
		cfg.Duration = 300
		cfg.Scenario = "drain" // most moving parts: migrations + membership churn
		cfg.Rebalance.Policy = rebalance.PolicyThreshold
		r, err := RunAutoscale(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Errorf("autoscale results diverged across identical runs:\n%s\nvs\n%s", a, b)
	}
}

// TestAutoscaleThresholdBeatsOff is the PR's acceptance scenario: on
// the flash-crowd, the threshold rebalancer must reduce BOTH the
// steady-state imbalance (mean spread) and the rejection rate relative
// to leaving the skew in place.
func TestAutoscaleThresholdBeatsOff(t *testing.T) {
	cfg := DefaultAutoscaleConfig(4)
	cfg.Scenario = "flash"
	results, err := RunAutoscaleComparison(cfg,
		[]string{rebalance.PolicyOff, rebalance.PolicyThreshold}, 0)
	if err != nil {
		t.Fatal(err)
	}
	off, thr := results[0].Totals, results[1].Totals
	// Identical offered load first — otherwise the comparison is void.
	if off.Arrivals != thr.Arrivals {
		t.Fatalf("offered load diverged: %d vs %d arrivals", off.Arrivals, thr.Arrivals)
	}
	if thr.Migrations == 0 {
		t.Fatal("threshold policy migrated nothing; the treatment is vacuous")
	}
	if thr.MeanSpread >= off.MeanSpread {
		t.Errorf("threshold mean spread %.3f, off %.3f: rebalancing did not reduce imbalance",
			thr.MeanSpread, off.MeanSpread)
	}
	if thr.SteadyRejectionRate >= off.SteadyRejectionRate {
		t.Errorf("threshold steady rejection %.2f%%, off %.2f%%: rebalancing did not reduce rejections",
			thr.SteadyRejectionRate, off.SteadyRejectionRate)
	}
}

// TestAutoscaleDrainScenario: the drain scenario decommissions shard 0
// at half-time and adds a replacement, with every resident either
// rehomed or reported.
func TestAutoscaleDrainScenario(t *testing.T) {
	cfg := DefaultAutoscaleConfig(4)
	cfg.Scenario = "drain"
	cfg.Rebalance.Policy = rebalance.PolicyThreshold
	r, err := RunAutoscale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tot := r.Totals
	if tot.Drains != 1 || tot.ShardAdds != 1 {
		t.Fatalf("drains=%d shardAdds=%d, want 1/1", tot.Drains, tot.ShardAdds)
	}
	if len(tot.ShardLive) != cfg.Shards+1 {
		t.Errorf("ShardLive has %d entries, want %d (boot shards + added)",
			len(tot.ShardLive), cfg.Shards+1)
	}
	if tot.DrainMoved+tot.DrainFailed == 0 {
		t.Error("drain hit an empty shard; the scenario exercised nothing")
	}
}

// TestAutoscaleConfigErrors pins the validation paths.
func TestAutoscaleConfigErrors(t *testing.T) {
	cfg := DefaultAutoscaleConfig(2)
	cfg.Scenario = "tsunami"
	if _, err := RunAutoscale(cfg); err == nil {
		t.Error("unknown scenario accepted")
	}
	cfg = DefaultAutoscaleConfig(2)
	cfg.Rebalance.Policy = "nope"
	if _, err := RunAutoscale(cfg); err == nil {
		t.Error("unknown rebalance policy accepted")
	}
	if _, err := RunAutoscaleComparison(DefaultAutoscaleConfig(2), []string{"nope"}, 1); err == nil {
		t.Error("comparison accepted an unknown policy")
	}
}
