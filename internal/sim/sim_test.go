package sim

import (
	"encoding/json"
	"testing"

	"repro/internal/platform"
	"repro/kairos"
)

// shortConfig is a fast CRISP run with churn and faults.
func shortConfig() Config {
	cfg := DefaultConfig()
	cfg.Duration = 180
	return cfg
}

// deterministicJSON marshals the deterministic part of a result.
func deterministicJSON(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestRunDeterministic(t *testing.T) {
	for _, pol := range AllPolicies() {
		cfg := shortConfig()
		cfg.Policy = pol
		a := deterministicJSON(t, Run(cfg))
		b := deterministicJSON(t, Run(cfg))
		if a != b {
			t.Errorf("policy %v: two runs with the same seed differ", pol)
		}
	}
}

func TestOptimisticTraceParity(t *testing.T) {
	// The simulator drives a single admitter, so optimistic admission
	// must be invisible: every plan commits against the exact epoch it
	// was planned under and replays without re-validation. The whole
	// result — trace, series, totals, latency — must be byte-identical
	// to the serialized run.
	for _, pol := range AllPolicies() {
		cfg := shortConfig()
		cfg.Policy = pol
		serial := deterministicJSON(t, Run(cfg))
		cfg.Options = append(cfg.Options, kairos.WithOptimisticAdmission(4))
		optimistic := deterministicJSON(t, Run(cfg))
		if serial != optimistic {
			t.Errorf("policy %v: optimistic trace diverges from serialized", pol)
		}
	}
}

func TestRunComparisonDeterministicAcrossWorkers(t *testing.T) {
	cfg := shortConfig()
	serial := RunComparison(cfg, AllPolicies(), 1)
	parallel := RunComparison(cfg, AllPolicies(), 4)
	for i := range serial {
		if deterministicJSON(t, serial[i]) != deterministicJSON(t, parallel[i]) {
			t.Errorf("policy %s: results differ between 1 and 4 workers", serial[i].Policy)
		}
	}
}

func TestPoliciesFaceIdenticalWorkload(t *testing.T) {
	// The workload and fault streams are independent of the policy:
	// every policy must see the same arrivals and faults.
	results := RunComparison(shortConfig(), AllPolicies(), 0)
	base := results[0].Totals
	for _, r := range results[1:] {
		if r.Totals.Arrivals != base.Arrivals {
			t.Errorf("policy %s saw %d arrivals, baseline %d", r.Policy, r.Totals.Arrivals, base.Arrivals)
		}
		if r.Totals.Faults != base.Faults {
			t.Errorf("policy %s saw %d faults, baseline %d", r.Policy, r.Totals.Faults, base.Faults)
		}
	}
}

func TestRunAccounting(t *testing.T) {
	for _, pol := range AllPolicies() {
		cfg := shortConfig()
		cfg.Policy = pol
		r := Run(cfg)
		tot := r.Totals
		if tot.Arrivals == 0 || tot.Admitted == 0 {
			t.Fatalf("policy %v: no activity simulated: %+v", pol, tot)
		}
		if tot.Admitted+tot.Rejected != tot.Arrivals {
			t.Errorf("policy %v: admitted %d + rejected %d != arrivals %d",
				pol, tot.Admitted, tot.Rejected, tot.Arrivals)
		}
		if got := tot.Admitted - tot.Departures - tot.Evicted; got != tot.FinalLive {
			t.Errorf("policy %v: admitted-departed-evicted = %d, final live = %d",
				pol, got, tot.FinalLive)
		}
		var rej int
		for _, c := range tot.RejectedByPhase {
			rej += c
		}
		if rej != tot.Rejected {
			t.Errorf("policy %v: per-phase rejections %d != total %d", pol, rej, tot.Rejected)
		}
		if len(r.Series) == 0 || len(r.Trace) == 0 {
			t.Errorf("policy %v: empty series/trace", pol)
		}
		last := r.Series[len(r.Series)-1]
		if last.Arrivals > tot.Arrivals || last.Live < 0 {
			t.Errorf("policy %v: inconsistent final sample %+v", pol, last)
		}
		if r.Latency.N == 0 || r.Latency.P99 < r.Latency.P50 {
			t.Errorf("policy %v: bad latency summary %+v", pol, r.Latency)
		}
	}
}

func TestFaultInjectionForcesReadmissions(t *testing.T) {
	cfg := shortConfig()
	cfg.FaultRate = 1.0 / 15 // a fault every 15 simulated seconds
	r := Run(cfg)
	if r.Totals.Faults == 0 {
		t.Fatal("no faults injected")
	}
	if r.Totals.Moved+r.Totals.Restored == 0 {
		t.Error("faults never forced a readmission")
	}
	// Repairs lag faults by the repair time but must be scheduled.
	if r.Totals.Repairs == 0 {
		t.Error("no repairs happened")
	}
}

func TestNoFaultsWhenDisabled(t *testing.T) {
	cfg := shortConfig()
	cfg.FaultRate = 0
	r := Run(cfg)
	if r.Totals.Faults != 0 || r.Totals.Repairs != 0 {
		t.Errorf("faults injected with FaultRate=0: %+v", r.Totals)
	}
}

func TestDefragReducesSteadyStateRejection(t *testing.T) {
	// The acceptance claim of the churn study: readmit-based
	// defragmentation beats the no-defrag baseline on the CRISP
	// platform at the default operating point.
	results := RunComparison(DefaultConfig(), AllPolicies(), 0)
	byPolicy := map[string]*Result{}
	for _, r := range results {
		byPolicy[r.Policy] = r
	}
	none := byPolicy[PolicyNone.String()]
	onRej := byPolicy[PolicyOnRejection.String()]
	if onRej.Totals.SteadyRejectionRate >= none.Totals.SteadyRejectionRate {
		t.Errorf("on-rejection defrag did not reduce steady-state rejection: %.2f%% vs baseline %.2f%%",
			onRej.Totals.SteadyRejectionRate, none.Totals.SteadyRejectionRate)
	}
	if onRej.Totals.DefragReadmits == 0 {
		t.Error("on-rejection policy never defragmented")
	}
	// The offline replanner is the strongest policy at this operating
	// point: its steady-state rejection must be strictly below the
	// on-rejection baseline, on the identical offered workload.
	rep := byPolicy[PolicyReplan.String()]
	if rep.Totals.SteadyRejectionRate >= onRej.Totals.SteadyRejectionRate {
		t.Errorf("replan did not beat the on-rejection baseline: %.2f%% vs %.2f%%",
			rep.Totals.SteadyRejectionRate, onRej.Totals.SteadyRejectionRate)
	}
	if rep.Totals.ReplanPasses == 0 {
		t.Error("replan policy never ran a replanning pass")
	}
	if rep.Totals.Arrivals != onRej.Totals.Arrivals {
		t.Errorf("offered workload differs across policies: %d vs %d arrivals",
			rep.Totals.Arrivals, onRej.Totals.Arrivals)
	}
}

func TestRunOnMeshPlatform(t *testing.T) {
	cfg := shortConfig()
	cfg.Platform = platform.MeshWithIO(5, 5, platform.DefaultVCs)
	cfg.Policy = PolicyPeriodic
	r := Run(cfg)
	if r.Totals.Admitted == 0 {
		t.Error("nothing admitted on the mesh platform")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range AllPolicies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("aggressive"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestFormatters(t *testing.T) {
	results := RunComparison(shortConfig(), AllPolicies(), 0)
	if s := FormatComparison(results); len(s) == 0 {
		t.Error("empty comparison table")
	}
	if s := FormatSummary(results[0]); len(s) == 0 {
		t.Error("empty summary")
	}
}
