package sim

// Kill/recover under churn: run a churn simulation with every
// committed operation journaled to a write-ahead log, kill the
// "process" at a fixed operation index (the journal refuses the
// N+1th append, exactly as if the machine died mid-commit), then boot
// a fresh manager from the log directory and probe it. The whole
// scenario is deterministic for a fixed seed, so the recovery test
// pins its full trace as a golden file.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/wal"
	"repro/kairos"
)

// errKilled is the injected crash: the append never reached the log.
var errKilled = errors.New("sim: injected kill")

// killJournal journals to the log until the kill point, then fails
// every append (the process is dead; nothing more becomes durable).
type killJournal struct {
	log       *wal.Log
	remaining int
	killed    bool
}

func (j *killJournal) Append(op core.Op) (uint64, error) {
	if j.remaining <= 0 {
		j.killed = true
		return 0, errKilled
	}
	j.remaining--
	return j.log.Append(0, op)
}

// RecoveredSummary describes the manager state rebuilt from the log.
type RecoveredSummary struct {
	// Seq is the recovered admission sequence counter.
	Seq int `json:"seq"`
	// LastLSN is the last replayed log sequence number — the number of
	// operations that survived the kill.
	LastLSN uint64 `json:"lastLSN"`
	// Live is the number of recovered admissions.
	Live int `json:"live"`
	// Instances lists the recovered instance names, sorted.
	Instances []string `json:"instances"`
	// DisabledElements and DisabledLinks are the recovered fault state.
	DisabledElements []int    `json:"disabledElements"`
	DisabledLinks    [][2]int `json:"disabledLinks"`
	// StateDigest is the SHA-256 of the canonical state encoding; two
	// managers with the same digest hold identical allocation state.
	StateDigest string `json:"stateDigest"`
}

// ProbeEvent is one post-recovery operation and its outcome: the
// recovered manager must serve traffic, not just hold state.
type ProbeEvent struct {
	Op       string `json:"op"`
	Instance string `json:"instance,omitempty"`
	App      string `json:"app,omitempty"`
	Outcome  string `json:"outcome"`
}

// RecoveryResult is the outcome of one kill/recover scenario. All of
// it is deterministic for a fixed seed.
type RecoveryResult struct {
	KillAfterOps int `json:"killAfterOps"`
	// Killed says the kill point was reached before the simulated
	// horizon ran out.
	Killed bool `json:"killed"`
	// KilledAt is the simulated time of the crash (the horizon if the
	// run finished first).
	KilledAt float64 `json:"killedAt"`
	// Trace is the pre-crash churn trace.
	Trace []TraceEvent `json:"trace"`
	// Recovered summarizes the state rebuilt from the log.
	Recovered RecoveredSummary `json:"recovered"`
	// Probe lists the post-recovery operations and outcomes.
	Probe []ProbeEvent `json:"probe"`
}

// RunRecovery runs the kill/recover-under-churn scenario: a churn
// simulation journaling into a fresh log under dir, killed after
// killAfterOps committed operations, then recovered and probed. The
// recovered manager is built from the same configuration, as recovery
// requires.
func RunRecovery(cfg Config, dir string, killAfterOps int) (*RecoveryResult, error) {
	if cfg.Platform == nil {
		cfg.Platform = platform.CRISP()
	}
	log, rec, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	if rec.Snapshot != nil || len(rec.Ops) > 0 {
		log.Close()
		return nil, fmt.Errorf("sim: recovery scenario needs a fresh log dir, %s has %d ops", dir, len(rec.Ops))
	}
	kj := &killJournal{log: log, remaining: killAfterOps}
	simCfg := cfg
	simCfg.journal = kj
	simCfg.halt = func() bool { return kj.killed }
	legacy := Run(simCfg)
	// The crash abandons the log: no Close, no rotation — only what
	// Append fsynced is on disk.

	res := &RecoveryResult{
		KillAfterOps: killAfterOps,
		Killed:       kj.killed,
		KilledAt:     lastTraceTime(legacy.Trace, cfg.Duration),
		Trace:        legacy.Trace,
	}

	m, log2, err := kairos.Recover(dir, cfg.Platform.Clone(), cfg.managerOptions()...)
	if err != nil {
		return nil, fmt.Errorf("sim: recovery failed: %w", err)
	}
	defer log2.Close()

	se := m.ExportState()
	enc, err := wal.EncodeState(nil, se)
	if err != nil {
		return nil, err
	}
	digest := sha256.Sum256(enc)
	sum := RecoveredSummary{
		Seq:              se.Seq,
		LastLSN:          se.LastLSN,
		Live:             len(se.Admissions),
		DisabledElements: se.DisabledElements,
		DisabledLinks:    se.DisabledLinks,
		StateDigest:      hex.EncodeToString(digest[:]),
	}
	for _, adm := range se.Admissions {
		sum.Instances = append(sum.Instances, adm.Instance)
	}
	res.Recovered = sum

	res.Probe = probe(m, cfg, sum.Instances)
	return res, nil
}

// probe drives a short deterministic workload through the recovered
// manager: release one pre-crash admission, then admit a few fresh
// applications through the re-attached log.
func probe(m *kairos.Manager, cfg Config, instances []string) []ProbeEvent {
	var events []ProbeEvent
	if len(instances) > 0 {
		outcome := "released"
		if err := m.Release(instances[0]); err != nil {
			outcome = "error: " + err.Error()
		}
		events = append(events, ProbeEvent{Op: "release", Instance: instances[0], Outcome: outcome})
	}
	gen := appgen.New(appgen.NewConfig(appgen.Communication, appgen.Small), cfg.Seed+31337)
	for i := 0; i < 3; i++ {
		app := gen.Next()
		adm, err := m.Admit(context.Background(), app)
		ev := ProbeEvent{Op: "admit", App: app.Name}
		if err != nil {
			ev.Outcome = "rejected"
			var pe *kairos.PhaseError
			if errors.As(err, &pe) {
				ev.Outcome = "rejected:" + pe.Phase.String()
			}
		} else {
			ev.Outcome = "admitted"
			ev.Instance = adm.Instance
		}
		events = append(events, ev)
	}
	return events
}

// lastTraceTime returns the time of the final trace event, or the
// fallback for an empty trace.
func lastTraceTime(trace []TraceEvent, fallback float64) float64 {
	if len(trace) == 0 {
		return fallback
	}
	return trace[len(trace)-1].T
}
