package sim

import (
	"fmt"
	"strings"

	"repro/internal/experiments"
)

// RunComparison simulates the same seeded workload once per policy on
// a worker pool (<= 0 = one worker per logical CPU). Each run draws
// from its own stream seeded identically, so every policy faces the
// same arrival process and the results are independent of the worker
// count — the long-horizon analogue of the paper's Table I comparison,
// with defragmentation policy instead of mapping weights as the
// treatment.
func RunComparison(cfg Config, policies []Policy, workers int) []*Result {
	results := make([]*Result, len(policies))
	experiments.ForEach(len(policies), workers, func(i int) {
		c := cfg
		c.Policy = policies[i]
		results[i] = Run(c)
	})
	return results
}

// FormatComparison renders the policy comparison as a table: one row
// per policy, steady-state rejection rate as the headline column.
func FormatComparison(results []*Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %8s %8s %8s %7s %9s %8s %8s %8s %8s\n",
		"Policy", "Arrivals", "Admitted", "Rejected", "Retry",
		"SteadyRej%", "Readmits", "Evicted", "MeanLive", "MeanFrag")
	for _, r := range results {
		t := r.Totals
		fmt.Fprintf(&b, "%-13s %8d %8d %8d %7d %9.2f%% %8d %8d %8.1f %7.1f%%\n",
			r.Policy, t.Arrivals, t.Admitted, t.Rejected, t.RetryAdmitted,
			t.SteadyRejectionRate, t.Moved+t.Restored+t.Evicted,
			t.Evicted, t.MeanLive, t.MeanFrag)
	}
	return b.String()
}

// FormatSummary renders one run's totals and wall-clock latency as a
// human-readable block.
func FormatSummary(r *Result) string {
	t := r.Totals
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s, seed %d, %.0fs simulated\n", r.Policy, r.Seed, r.Duration)
	fmt.Fprintf(&b, "  arrivals %d: %d admitted (%d on retry), %d rejected "+
		"(binding %d, mapping %d, routing %d, validation %d)\n",
		t.Arrivals, t.Admitted, t.RetryAdmitted, t.Rejected,
		t.RejectedByPhase[0], t.RejectedByPhase[1], t.RejectedByPhase[2], t.RejectedByPhase[3])
	fmt.Fprintf(&b, "  churn: %d departures, %d faults, %d repairs; "+
		"forced readmissions: %d moved, %d restored, %d evicted\n",
		t.Departures, t.Faults, t.Repairs, t.Moved, t.Restored, t.Evicted)
	fmt.Fprintf(&b, "  steady state: %.2f%% rejection rate (%d/%d), "+
		"mean live %.1f, mean fragmentation %.1f%%, final %.1f%%\n",
		t.SteadyRejectionRate, t.SteadyRejected, t.SteadyArrivals,
		t.MeanLive, t.MeanFrag, t.FinalFrag)
	fmt.Fprintf(&b, "  admission latency (wall clock, %d attempts): "+
		"p50 %v, p90 %v, p99 %v\n",
		r.Latency.N, r.Latency.P50, r.Latency.P90, r.Latency.P99)
	return b.String()
}
