package sim

import (
	"encoding/json"
	"testing"

	"repro/kairos"
)

// shortClusterConfig is a fast 4-shard run with plenty of churn.
func shortClusterConfig() ClusterConfig {
	cfg := DefaultClusterConfig(4)
	cfg.Duration = 120
	return cfg
}

func TestRunClusterBasics(t *testing.T) {
	res := RunCluster(shortClusterConfig())
	tot := res.Totals
	if tot.Arrivals == 0 || tot.Admitted == 0 {
		t.Fatalf("vacuous run: %+v", tot)
	}
	if tot.Admitted+tot.Rejected != tot.Arrivals {
		t.Errorf("admitted %d + rejected %d != arrivals %d", tot.Admitted, tot.Rejected, tot.Arrivals)
	}
	sum := 0
	for _, n := range tot.ShardAdmitted {
		sum += n
	}
	if sum != tot.Admitted {
		t.Errorf("per-shard admitted sums to %d, total says %d", sum, tot.Admitted)
	}
	if tot.Faults == 0 {
		t.Error("fault model injected nothing over the horizon")
	}
	if res.Shards != 4 || res.Placement != "least-loaded" {
		t.Errorf("result header %+v", res)
	}
}

// TestRunClusterDeterministic: equal configs produce byte-identical
// JSON results.
func TestRunClusterDeterministic(t *testing.T) {
	a, _ := json.Marshal(RunCluster(shortClusterConfig()))
	b, _ := json.Marshal(RunCluster(shortClusterConfig()))
	if string(a) != string(b) {
		t.Error("two identical cluster runs differ")
	}
}

// TestClusterComparisonSameWorkload: every placement policy faces the
// identical arrival stream, and the comparison is independent of the
// worker count.
func TestClusterComparisonSameWorkload(t *testing.T) {
	cfg := shortClusterConfig()
	serial := RunClusterComparison(cfg, AllPlacements(), 1)
	parallel := RunClusterComparison(cfg, AllPlacements(), 3)
	if len(serial) != 3 {
		t.Fatalf("got %d results for %d policies", len(serial), 3)
	}
	for i := range serial {
		if serial[i].Totals.Arrivals != serial[0].Totals.Arrivals {
			t.Errorf("policy %s faced %d arrivals, policy %s %d — workload leaked",
				serial[i].Placement, serial[i].Totals.Arrivals,
				serial[0].Placement, serial[0].Totals.Arrivals)
		}
		sj, _ := json.Marshal(serial[i])
		pj, _ := json.Marshal(parallel[i])
		if string(sj) != string(pj) {
			t.Errorf("policy %s differs between worker counts", serial[i].Placement)
		}
	}
	if out := FormatClusterComparison(serial); out == "" {
		t.Error("empty comparison table")
	}
	if out := FormatClusterSummary(serial[0]); out == "" {
		t.Error("empty summary")
	}
}

// TestClusterSpillAccounting: a cluster with one shard can never
// spill; with first-fit and several shards under overload, spills
// appear and stay within the attempt budget.
func TestClusterSpillAccounting(t *testing.T) {
	cfg := shortClusterConfig()
	cfg.Shards = 1
	cfg.ArrivalRate = DefaultConfig().ArrivalRate
	one := RunCluster(cfg)
	if one.Totals.Spilled != 0 || one.Totals.SpillAttempts != 0 {
		t.Errorf("single shard spilled: %+v", one.Totals)
	}

	cfg = shortClusterConfig()
	cfg.Placement = kairos.PlacementFirstFit
	// Overload hard so shard 0 fills and spill-over must kick in.
	cfg.ArrivalRate *= 2
	many := RunCluster(cfg)
	if many.Totals.Spilled == 0 {
		t.Error("overloaded first-fit cluster never spilled; scenario is vacuous")
	}
	if many.Totals.SpillAttempts < many.Totals.Spilled {
		t.Errorf("spill attempts %d < spilled %d", many.Totals.SpillAttempts, many.Totals.Spilled)
	}
}
