package sim

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/replan"
	"repro/kairos"
)

// Policy is a registered defragmentation policy. The platform cannot
// migrate tasks (paper §I-A), so every policy is built on the restart
// path: an application is released and admitted afresh, letting the
// mapping phase compact it into the current platform state.
//
// Policy values are comparable handles into the registry; the zero
// value behaves as PolicyNone. They parse from their names
// (ParsePolicy, or UnmarshalText for flag.TextVar) and render them
// (String, MarshalText), so a Policy round-trips through flags and
// JSON.
type Policy struct{ spec *policySpec }

// policySpec is the registered behavior of one policy. A policy
// contributes up to three hooks; every hook is optional, so new
// policies slot into the registry without touching the simulator loop
// or cmd/sim.
type policySpec struct {
	name string
	// tick, when non-nil, runs every Config.DefragPeriod simulated
	// seconds (the simulator schedules the timer iff the hook exists).
	tick func(s *simulator)
	// onRejection, when non-nil, runs after a rejected arrival when
	// live applications exist; returning true retries the admission
	// once.
	onRejection func(s *simulator, app string) bool
	// options, when non-nil, contributes manager options derived from
	// the run configuration (applied before Config.Options, so
	// explicit caller options win).
	options func(cfg Config) []kairos.Option
}

// policies is the registry, in registration (= comparison-report)
// order.
var policies []Policy

func registerPolicy(spec *policySpec) Policy {
	p := Policy{spec}
	policies = append(policies, p)
	return p
}

// The registered policies.
var (
	// PolicyNone never defragments; rejections stand. The baseline.
	PolicyNone = registerPolicy(&policySpec{name: "none"})
	// PolicyPeriodic readmits the worst-placed application (most
	// route hops) every DefragPeriod seconds, spreading
	// defragmentation work over time.
	PolicyPeriodic = registerPolicy(&policySpec{
		name: "periodic",
		tick: (*simulator).periodicDefrag,
	})
	// PolicyOnRejection reacts to rejections: when an arrival is
	// rejected, every live application is readmitted worst-first to
	// compact the platform, and the arrival is retried once.
	PolicyOnRejection = registerPolicy(&policySpec{
		name: "on-rejection",
		onRejection: func(s *simulator, app string) bool {
			s.repack(app)
			return true
		},
	})
	// PolicyReplan reacts to rejections with one offline replanning
	// pass: a budgeted large-neighborhood search over the whole
	// resident set (Manager.Replan with the LNS strategy), committed
	// only when it strictly lowers the placement objective; the
	// arrival is retried when the pass improved. The search draws
	// from its own seed (Config.ReplanSeed), never the workload or
	// fault streams, so all policies still face identical workloads.
	PolicyReplan = registerPolicy(&policySpec{
		name:        "replan",
		onRejection: (*simulator).replanOnRejection,
		options: func(cfg Config) []kairos.Option {
			seed := cfg.ReplanSeed
			if seed == 0 {
				seed = cfg.Seed
			}
			return []kairos.Option{
				kairos.WithReplanner(replan.LNS{Seed: seed}),
				kairos.WithReplanBudget(cfg.ReplanBudget),
			}
		},
	})
)

// AllPolicies returns every registered policy in comparison-report
// order.
func AllPolicies() []Policy { return append([]Policy(nil), policies...) }

// PolicyNames lists the registered policy names in comparison-report
// order (the cmd/sim -policy vocabulary).
func PolicyNames() []string {
	names := make([]string, len(policies))
	for i, p := range policies {
		names[i] = p.String()
	}
	return names
}

func (p Policy) String() string {
	if p.spec == nil {
		return PolicyNone.spec.name
	}
	return p.spec.name
}

// MarshalText renders the policy name, so results and configs
// serialize readably.
func (p Policy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText parses a policy name, so a Policy registers directly
// on a FlagSet via flag.TextVar.
func (p *Policy) UnmarshalText(text []byte) error {
	pol, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = pol
	return nil
}

// ParsePolicy parses a policy name as used by the cmd/sim -policy flag.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range policies {
		if s == p.String() {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("sim: unknown policy %q (have %v)", s, PolicyNames())
}

// ticks says whether the simulator should schedule the periodic
// defragmentation timer for this policy.
func (p Policy) ticks() bool { return p.spec != nil && p.spec.tick != nil }

// runTick runs the policy's periodic hook.
func (p Policy) runTick(s *simulator) { p.spec.tick(s) }

// rejected runs the policy's rejection hook, if any; true means the
// rejected arrival should be retried once.
func (p Policy) rejected(s *simulator, app string) bool {
	if p.spec == nil || p.spec.onRejection == nil {
		return false
	}
	return p.spec.onRejection(s, app)
}

// managerOptions returns the policy's contribution to the manager
// option list.
func (p Policy) managerOptions(cfg Config) []kairos.Option {
	if p.spec == nil || p.spec.options == nil {
		return nil
	}
	return p.spec.options(cfg)
}

// worstFirst returns the live applications sorted by decreasing route
// spread (ties by instance name, for determinism — s.live itself is
// unordered).
func (s *simulator) worstFirst() []*liveApp {
	apps := append([]*liveApp(nil), s.live...)
	sort.Slice(apps, func(i, j int) bool {
		hi, hj := apps[i].hops(), apps[j].hops()
		if hi != hj {
			return hi > hj
		}
		return apps[i].instance < apps[j].instance
	})
	return apps
}

// periodicDefrag readmits the single worst-placed application
// (PolicyPeriodic). Applications with zero-hop layouts cannot improve
// and are left alone.
func (s *simulator) periodicDefrag() {
	apps := s.worstFirst()
	if len(apps) == 0 || apps[0].hops() == 0 {
		return
	}
	s.res.Totals.DefragReadmits++
	res := s.readmitOne(apps[0])
	s.applyReadmit(res, "defrag")
}

// repack readmits every live application worst-first
// (PolicyOnRejection), compacting the platform before the rejected
// arrival (rejectedApp, for the trace) is retried.
func (s *simulator) repack(rejectedApp string) {
	for _, a := range s.worstFirst() {
		if a.dead {
			continue
		}
		s.res.Totals.DefragReadmits++
		res := s.readmitOne(a)
		s.applyReadmit(res, "defrag")
	}
	s.trace(TraceEvent{Event: "retry", App: rejectedApp, Outcome: "repacked"})
}

// readmitOne forces one application through the restart path.
func (s *simulator) readmitOne(a *liveApp) kairos.ReadmitResult {
	return s.k.ReadmitClassified(context.Background(), a.instance)
}

// replanOnRejection runs one budgeted offline replanning pass over
// the whole resident set (PolicyReplan). Committed moves rename
// instances; the live table follows, exactly as it does for forced
// readmissions. When the pass cannot improve the composite — the
// search is conservative and rejects any non-improving pass wholesale
// — the policy falls back to the targeted worst-first repack of
// PolicyOnRejection: an unimproved pass leaves the platform
// byte-identical, so retrying after it alone would fail identically.
func (s *simulator) replanOnRejection(rejectedApp string) bool {
	res, err := s.k.Replan(context.Background())
	if err != nil {
		s.trace(TraceEvent{Event: "replan", App: rejectedApp, Outcome: "replan-error"})
		return false
	}
	s.res.Totals.ReplanPasses++
	s.res.Totals.ReplanMoves += len(res.Moves)
	for _, m := range res.Moves {
		if a := s.byName[m.From]; a != nil {
			delete(s.byName, a.instance)
			a.instance = m.To
			a.adm = m.Adm
			s.byName[a.instance] = a
		}
	}
	s.trace(TraceEvent{Event: "replan", App: rejectedApp, Outcome: fmt.Sprintf("moved:%d", len(res.Moves))})
	if !res.Improved {
		s.repack(rejectedApp)
	}
	return true
}
