package sim

import (
	"context"
	"fmt"
	"sort"

	"repro/kairos"
)

// Policy is a defragmentation policy. The platform cannot migrate
// tasks (paper §I-A), so every policy is built on the restart path:
// Manager.Readmit releases an application and admits it afresh,
// letting the mapping phase compact it into the current platform
// state.
type Policy int

const (
	// PolicyNone never defragments; rejections stand. The baseline.
	PolicyNone Policy = iota
	// PolicyPeriodic readmits the worst-placed application (most
	// route hops) every DefragPeriod seconds, spreading
	// defragmentation work over time.
	PolicyPeriodic
	// PolicyOnRejection reacts to rejections: when an arrival is
	// rejected, every live application is readmitted worst-first to
	// compact the platform, and the arrival is retried once.
	PolicyOnRejection
)

// AllPolicies returns every policy in comparison-report order.
func AllPolicies() []Policy {
	return []Policy{PolicyNone, PolicyPeriodic, PolicyOnRejection}
}

func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyPeriodic:
		return "periodic"
	case PolicyOnRejection:
		return "on-rejection"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a policy name as used by the cmd/sim -policy flag.
func ParsePolicy(s string) (Policy, error) {
	for _, p := range AllPolicies() {
		if s == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown policy %q (none, periodic, on-rejection)", s)
}

// worstFirst returns the live applications sorted by decreasing route
// spread (ties by instance name, for determinism — s.live itself is
// unordered).
func (s *simulator) worstFirst() []*liveApp {
	apps := append([]*liveApp(nil), s.live...)
	sort.Slice(apps, func(i, j int) bool {
		hi, hj := apps[i].hops(), apps[j].hops()
		if hi != hj {
			return hi > hj
		}
		return apps[i].instance < apps[j].instance
	})
	return apps
}

// periodicDefrag readmits the single worst-placed application
// (PolicyPeriodic). Applications with zero-hop layouts cannot improve
// and are left alone.
func (s *simulator) periodicDefrag() {
	apps := s.worstFirst()
	if len(apps) == 0 || apps[0].hops() == 0 {
		return
	}
	s.res.Totals.DefragReadmits++
	res := s.readmitOne(apps[0])
	s.applyReadmit(res, "defrag")
}

// repack readmits every live application worst-first
// (PolicyOnRejection), compacting the platform before the rejected
// arrival (rejectedApp, for the trace) is retried.
func (s *simulator) repack(rejectedApp string) {
	for _, a := range s.worstFirst() {
		if a.dead {
			continue
		}
		s.res.Totals.DefragReadmits++
		res := s.readmitOne(a)
		s.applyReadmit(res, "defrag")
	}
	s.trace(TraceEvent{Event: "retry", App: rejectedApp, Outcome: "repacked"})
}

// readmitOne forces one application through the restart path.
func (s *simulator) readmitOne(a *liveApp) kairos.ReadmitResult {
	return s.k.ReadmitClassified(context.Background(), a.instance)
}
