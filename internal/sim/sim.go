// Package sim is a seeded discrete-event churn simulator for the
// run-time resource manager: it drives a single live core.Kairos
// through hours of simulated operation — applications arrive in a
// Poisson stream drawn from the synthetic profiles of the evaluation
// (paper §IV), run for exponentially distributed lifetimes, and leave;
// hardware faults disable elements and links and force the affected
// applications through the restart path (the paper's only fault
// response, since task migration is impossible, §I-A); pluggable
// defragmentation policies restart applications to compact the
// platform.
//
// The static evaluation harness (internal/experiments) replays
// admission sequences onto fresh platforms; the simulator instead
// exercises the long-running serving regime the paper targets: one
// platform, one manager, sustained churn. Every random draw comes from
// a single seeded stream consumed in event order, so for a fixed seed
// the per-event trace is byte-identical across runs and worker counts;
// only wall-clock admission latencies (reported separately) vary.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/routing"
	"repro/kairos"
)

// Config parameterizes one simulation run. Times are in simulated
// seconds. The zero value is not useful; start from DefaultConfig.
type Config struct {
	// Platform is the prototype platform; it is cloned, never
	// mutated. Nil means the CRISP platform of the paper.
	Platform *platform.Platform
	// Weights steers the mapping cost function. Note the zero value
	// is mapping.WeightsNone (no objective) and is honored as such;
	// DefaultConfig uses WeightsBoth, the paper's recommended
	// configuration.
	Weights mapping.Weights
	// ArrivalRate is the mean application arrival rate per second
	// (Poisson process).
	ArrivalRate float64
	// MeanLifetime is the mean application lifetime in seconds
	// (exponentially distributed).
	MeanLifetime float64
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Seed drives every random draw of the run.
	Seed int64
	// Policy is the defragmentation policy (PolicyNone by default).
	Policy Policy
	// DefragPeriod is the PolicyPeriodic readmission interval in
	// seconds (0 = 30s).
	DefragPeriod float64
	// ReplanBudget caps the moves of one PolicyReplan pass
	// (0 = the manager default, kairos.DefaultReplanBudget).
	ReplanBudget int
	// ReplanSeed seeds the PolicyReplan search (0 = derive from Seed).
	// It is independent of the workload and fault streams.
	ReplanSeed int64
	// FaultRate is the mean hardware-fault rate per second (Poisson);
	// 0 disables fault injection. Each fault disables one enabled
	// element or physical link, chosen uniformly, and forces the
	// affected applications through the restart path.
	FaultRate float64
	// MeanRepair is the mean seconds until a fault is repaired
	// (exponential; 0 = 60s).
	MeanRepair float64
	// SampleEvery is the time-series sampling interval in seconds
	// (0 = 10s).
	SampleEvery float64
	// Options are additional manager options (e.g. swapped phase
	// strategies from the cmd/sim -binder/-mapper/-router flags),
	// applied after the ones derived from Weights.
	Options []kairos.Option

	// journal, when set, is attached to the manager after construction,
	// and halt is checked after every event; both are the
	// crash-recovery scenario's plumbing (see RunRecovery).
	journal core.Journal
	halt    func() bool
}

// managerOptions returns the option list Run constructs its manager
// with; RunRecovery must boot the recovered manager with the same
// options, since recovery re-executes the journaled workflow.
func (cfg Config) managerOptions() []kairos.Option {
	opts := []kairos.Option{
		kairos.WithWeights(cfg.Weights),
		kairos.WithAdvisoryValidation(),
	}
	opts = append(opts, cfg.Policy.managerOptions(cfg)...)
	return append(opts, cfg.Options...)
}

// DefaultConfig returns a CRISP-platform configuration with sustained
// moderate overload: the offered load (ArrivalRate × MeanLifetime
// concurrent applications) exceeds what the platform packs, so the
// steady state has a meaningful rejection rate for the defragmentation
// policies to work on.
func DefaultConfig() Config {
	return Config{
		Weights:      mapping.WeightsBoth,
		ArrivalRate:  10.0 / 60,
		MeanLifetime: 60,
		Duration:     600,
		Seed:         1,
		Policy:       PolicyNone,
		DefragPeriod: 30,
		FaultRate:    1.0 / 120,
		MeanRepair:   45,
		SampleEvery:  10,
	}
}

// TraceEvent is one record of the per-event trace. All fields are
// deterministic for a fixed seed.
type TraceEvent struct {
	// T is the simulated time in seconds.
	T float64 `json:"t"`
	// Event is arrival, departure, fault, repair, defrag, retry or
	// replan.
	Event string `json:"event"`
	// App is the application name (arrival/departure/defrag/retry/
	// replan).
	App string `json:"app,omitempty"`
	// Instance is the manager's instance name, when one exists.
	Instance string `json:"instance,omitempty"`
	// Outcome: admitted, rejected:<phase>, released, moved, restored,
	// evicted, disabled, repaired.
	Outcome string `json:"outcome,omitempty"`
	// Target names the faulted element or link ("a-b").
	Target string `json:"target,omitempty"`
	// Live is the number of admitted applications after the event.
	Live int `json:"live"`
	// Frag is the platform's external fragmentation (percent) after
	// the event.
	Frag float64 `json:"frag"`
}

// Sample is one point of the time-series metrics. Counters are
// cumulative since the start of the run.
type Sample struct {
	T               float64 `json:"t"`
	Live            int     `json:"live"`
	Arrivals        int     `json:"arrivals"`
	Admitted        int     `json:"admitted"`
	Rejected        int     `json:"rejected"`
	RejectedByPhase [4]int  `json:"rejectedByPhase"`
	Frag            float64 `json:"frag"`
	Util            float64 `json:"util"`
}

// Totals summarizes one run.
type Totals struct {
	Arrivals        int    `json:"arrivals"`
	Admitted        int    `json:"admitted"`
	Rejected        int    `json:"rejected"`
	RejectedByPhase [4]int `json:"rejectedByPhase"`
	// RetryAdmitted counts arrivals that were rejected, then admitted
	// on the post-defragmentation retry (PolicyOnRejection); they
	// count as Admitted, not Rejected.
	RetryAdmitted int `json:"retryAdmitted"`
	Departures    int `json:"departures"`
	Faults        int `json:"faults"`
	Repairs       int `json:"repairs"`
	// DefragReadmits counts policy-driven readmissions; Moved,
	// Restored and Evicted classify every forced readmission
	// (policy- and fault-driven).
	DefragReadmits int `json:"defragReadmits"`
	Moved          int `json:"moved"`
	Restored       int `json:"restored"`
	Evicted        int `json:"evicted"`
	// ReplanPasses and ReplanMoves count PolicyReplan's offline
	// passes and the committed moves they produced (a pass that found
	// no strict improvement commits zero moves).
	ReplanPasses int `json:"replanPasses"`
	ReplanMoves  int `json:"replanMoves"`
	// Steady-state figures cover the second half of the run, after
	// the platform has filled.
	SteadyArrivals      int     `json:"steadyArrivals"`
	SteadyRejected      int     `json:"steadyRejected"`
	SteadyRejectionRate float64 `json:"steadyRejectionRate"` // percent
	MeanLive            float64 `json:"meanLive"`            // time-weighted
	MeanFrag            float64 `json:"meanFrag"`            // time-weighted percent
	FinalFrag           float64 `json:"finalFrag"`
	FinalLive           int     `json:"finalLive"`
}

// LatencySummary reduces measured admission latencies. Wall-clock
// quantities are host-dependent and excluded from the deterministic
// JSON result.
type LatencySummary struct {
	N             int
	P50, P90, P99 time.Duration
}

// Result is the outcome of one simulation run. Everything serialized
// to JSON is deterministic for a fixed seed.
type Result struct {
	Policy   string       `json:"policy"`
	Seed     int64        `json:"seed"`
	Duration float64      `json:"duration"`
	Totals   Totals       `json:"totals"`
	Series   []Sample     `json:"series"`
	Trace    []TraceEvent `json:"trace"`
	// Latency summarizes wall-clock admission latency over all
	// arrival attempts; excluded from JSON (not reproducible).
	Latency LatencySummary `json:"-"`
}

// event kinds, in tie-break-irrelevant order (ties are broken by
// schedule sequence).
const (
	evArrival = iota
	evDeparture
	evFault
	evRepair
	evDefrag
	evSample
	// Autoscale-scenario events (autoscale.go): a rebalancer tick, a
	// shard drain, a shard addition.
	evRebTick
	evDrainShard
	evAddShard
)

type event struct {
	t    float64
	seq  int // insertion order; total-orders simultaneous events
	kind int
	app  *liveApp    // departure (single-platform runs)
	capp *clusterApp // departure (cluster runs)
	// fault repair target: element ID or link pair, plus the owning
	// shard in cluster runs
	elem  int
	link  [2]int
	shard int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// liveApp is the simulator's view of one admitted application.
type liveApp struct {
	instance string // current instance name (changes on readmission)
	adm      *kairos.Admission
	idx      int  // position in s.live while alive
	dead     bool // departed or evicted; pending events ignore it
}

// hops is the spread score used to pick the "worst" placed
// application: total links crossed by its routes.
func (a *liveApp) hops() int { return routing.TotalHops(a.adm.Routes) }

type simulator struct {
	cfg Config
	// workRng drives the workload (arrival times, application draws,
	// lifetimes) and faultRng the fault injection (times, targets,
	// repairs). Two streams, both consumed unconditionally in event
	// order, so every defragmentation policy faces the byte-identical
	// workload and fault sequence: admission outcomes differ between
	// policies, the offered load never does.
	workRng  *rand.Rand
	faultRng *rand.Rand
	p        *platform.Platform
	k        *kairos.Manager
	gens     []*appgen.Generator
	queue    eventQueue
	seq      int
	now      float64
	live     []*liveApp          // currently admitted (unordered; policies sort)
	byName   map[string]*liveApp // current instance name → record
	res      *Result
	lat      []time.Duration
	// time-weighted accumulators
	lastT    float64
	liveArea float64
	fragArea float64
	// fault-candidate scratch, reused across fault events
	elemBuf []int
	linkBuf [][2]int
}

// Run simulates the configured workload and returns its trace, series
// and totals.
func Run(cfg Config) *Result {
	if cfg.Platform == nil {
		cfg.Platform = platform.CRISP()
	}
	if cfg.DefragPeriod <= 0 {
		cfg.DefragPeriod = 30
	}
	if cfg.MeanRepair <= 0 {
		cfg.MeanRepair = 60
	}
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = 10
	}
	s := &simulator{
		cfg:      cfg,
		workRng:  rand.New(rand.NewSource(cfg.Seed)),
		faultRng: rand.New(rand.NewSource(cfg.Seed + 104729)),
		p:        cfg.Platform.Clone(),
		byName:   make(map[string]*liveApp),
		res: &Result{
			Policy:   cfg.Policy.String(),
			Seed:     cfg.Seed,
			Duration: cfg.Duration,
		},
	}
	// The synthetic profiles carry no performance constraints and
	// the paper does not reject in validation for them (§IV); the
	// phase still runs and is timed (advisory validation).
	s.k = kairos.New(s.p, cfg.managerOptions()...)
	if cfg.journal != nil {
		s.k.AttachJournal(cfg.journal)
	}
	// One generator per dataset profile, each on its own derived
	// stream, so the app mix matches the six datasets of Table I.
	for i, gcfg := range experiments.AllConfigs() {
		s.gens = append(s.gens, appgen.New(gcfg, cfg.Seed+int64(i+1)*7919))
	}

	if cfg.ArrivalRate > 0 {
		s.schedule(s.workExp(1/cfg.ArrivalRate), &event{kind: evArrival})
	}
	if cfg.FaultRate > 0 {
		s.schedule(s.faultExp(1/cfg.FaultRate), &event{kind: evFault})
	}
	if cfg.Policy.ticks() {
		s.schedule(cfg.DefragPeriod, &event{kind: evDefrag})
	}
	s.schedule(cfg.SampleEvery, &event{kind: evSample})

	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.t > cfg.Duration {
			break
		}
		s.advance(ev.t)
		switch ev.kind {
		case evArrival:
			s.arrival()
		case evDeparture:
			s.departure(ev.app)
		case evFault:
			s.fault()
			s.schedule(s.faultExp(1/cfg.FaultRate), &event{kind: evFault})
		case evRepair:
			s.repair(ev)
		case evDefrag:
			cfg.Policy.runTick(s)
			s.schedule(cfg.DefragPeriod, &event{kind: evDefrag})
		case evSample:
			s.sample()
			s.schedule(cfg.SampleEvery, &event{kind: evSample})
		}
		if cfg.halt != nil && cfg.halt() {
			break // the crash scenario killed the process mid-run
		}
	}
	s.advance(cfg.Duration)
	s.finish()
	return s.res
}

// workExp and faultExp draw an exponential interval with the given
// mean from the workload and fault streams respectively.
func (s *simulator) workExp(mean float64) float64  { return s.workRng.ExpFloat64() * mean }
func (s *simulator) faultExp(mean float64) float64 { return s.faultRng.ExpFloat64() * mean }

// schedule enqueues an event dt seconds from now.
func (s *simulator) schedule(dt float64, ev *event) {
	ev.t = s.now + dt
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.queue, ev)
}

// advance moves simulated time forward, integrating the time-weighted
// metrics.
func (s *simulator) advance(t float64) {
	dt := t - s.lastT
	if dt > 0 {
		s.liveArea += float64(s.liveCount()) * dt
		s.fragArea += s.p.ExternalFragmentation() * dt
		s.lastT = t
	}
	s.now = t
}

func (s *simulator) liveCount() int { return len(s.live) }

// removeLive drops one application from the live table (swap-delete;
// order does not matter, the policies sort deterministically). Pending
// departure events for it see the dead flag and do nothing.
func (s *simulator) removeLive(a *liveApp) {
	if a.dead {
		return
	}
	a.dead = true
	last := len(s.live) - 1
	s.live[a.idx] = s.live[last]
	s.live[a.idx].idx = a.idx
	s.live = s.live[:last]
	delete(s.byName, a.instance)
}

// trace appends one event record with the current live/frag state.
func (s *simulator) trace(ev TraceEvent) {
	ev.T = s.now
	ev.Live = s.liveCount()
	ev.Frag = s.p.ExternalFragmentation()
	s.res.Trace = append(s.res.Trace, ev)
}

// nextApp draws the next arriving application from a uniformly chosen
// dataset profile.
func (s *simulator) nextApp() *graph.Application {
	return s.gens[s.workRng.Intn(len(s.gens))].Next()
}

// arrival admits one arriving application, applying the on-rejection
// defragmentation policy when configured. Every workload draw — the
// application, the next inter-arrival gap, the lifetime — happens
// unconditionally and in fixed order, so the workload stream does not
// depend on admission outcomes (and therefore not on the policy).
func (s *simulator) arrival() {
	app := s.nextApp()
	s.schedule(s.workExp(1/s.cfg.ArrivalRate), &event{kind: evArrival})
	lifetime := s.workExp(s.cfg.MeanLifetime)
	s.res.Totals.Arrivals++
	steady := s.now >= s.cfg.Duration/2
	if steady {
		s.res.Totals.SteadyArrivals++
	}

	adm, err := s.k.Admit(context.Background(), app)
	if adm != nil {
		s.lat = append(s.lat, adm.Times.Total())
	}
	retried := false
	if err != nil && s.liveCount() > 0 && s.cfg.Policy.rejected(s, app.Name) {
		retried = true
		adm, err = s.k.Admit(context.Background(), app)
		if adm != nil {
			s.lat = append(s.lat, adm.Times.Total())
		}
	}

	if err != nil {
		s.res.Totals.Rejected++
		if steady {
			s.res.Totals.SteadyRejected++
		}
		outcome := "rejected"
		var pe *kairos.PhaseError
		if errors.As(err, &pe) {
			outcome = "rejected:" + pe.Phase.String()
			if pe.Phase >= 0 && int(pe.Phase) < 4 {
				s.res.Totals.RejectedByPhase[pe.Phase]++
			}
		}
		s.trace(TraceEvent{Event: "arrival", App: app.Name, Outcome: outcome})
		return
	}

	s.res.Totals.Admitted++
	outcome := "admitted"
	if retried {
		s.res.Totals.RetryAdmitted++
		outcome = "retry-admitted"
	}
	a := &liveApp{instance: adm.Instance, adm: adm, idx: len(s.live)}
	s.live = append(s.live, a)
	s.byName[a.instance] = a
	s.schedule(lifetime, &event{kind: evDeparture, app: a})
	s.trace(TraceEvent{Event: "arrival", App: app.Name, Instance: adm.Instance, Outcome: outcome})
}

// departure releases an application at the end of its lifetime. The
// record may already be dead (evicted), or renamed by readmission —
// the record, not the name, is authoritative.
func (s *simulator) departure(a *liveApp) {
	if a.dead {
		return
	}
	if err := s.k.Release(a.instance); err != nil {
		// The manager and the simulator disagree about liveness; that
		// is a bug, surface it in the trace.
		s.trace(TraceEvent{Event: "departure", App: a.adm.App.Name, Instance: a.instance, Outcome: "release-error"})
		return
	}
	s.removeLive(a)
	s.res.Totals.Departures++
	s.trace(TraceEvent{Event: "departure", App: a.adm.App.Name, Instance: a.instance, Outcome: "released"})
}

// applyReadmit folds one forced-readmission result into the live
// table and totals.
func (s *simulator) applyReadmit(res kairos.ReadmitResult, event string) {
	a := s.byName[res.Instance]
	switch res.Outcome {
	case kairos.ReadmitMoved:
		s.res.Totals.Moved++
		if a != nil {
			delete(s.byName, a.instance)
			a.instance = res.NewInstance
			a.adm = res.Adm
			s.byName[a.instance] = a
		}
	case kairos.ReadmitRestored:
		s.res.Totals.Restored++
	case kairos.ReadmitEvicted:
		s.res.Totals.Evicted++
		if a != nil {
			// The admission is gone for good; drop it from the live
			// table (pending departure events see the dead flag).
			s.removeLive(a)
		}
	}
	ev := TraceEvent{Event: event, Instance: res.Instance, Outcome: res.Outcome.String()}
	if a != nil {
		ev.App = a.adm.App.Name
	}
	s.trace(ev)
}

// fault disables one enabled element or physical link, chosen
// uniformly, schedules its repair, and forces the affected
// applications through the restart path. The candidate buffers are
// reused across fault events (long horizons inject thousands).
func (s *simulator) fault() {
	elems := s.elemBuf[:0]
	for _, e := range s.p.Elements() {
		if e.Enabled() {
			elems = append(elems, e.ID)
		}
	}
	s.elemBuf = elems
	links := s.linkBuf[:0]
	for _, l := range s.p.PhysicalLinks() {
		if s.p.Link(l[0], l[1]).Enabled() {
			links = append(links, l)
		}
	}
	s.linkBuf = links
	n := len(elems) + len(links)
	if n == 0 {
		return
	}
	s.res.Totals.Faults++
	pick := s.faultRng.Intn(n)
	repair := &event{kind: evRepair, elem: -1, link: [2]int{-1, -1}}
	// Fault transitions go through the manager, not the platform, so a
	// durable run journals them: recovery must reproduce the fault
	// state, or replayed admissions would map onto dead elements.
	var target string
	var err error
	if pick < len(elems) {
		id := elems[pick]
		err = s.k.SetElementEnabled(id, false)
		repair.elem = id
		target = s.p.Element(id).Name
	} else {
		l := links[pick-len(elems)]
		err = s.k.SetLinkEnabled(l[0], l[1], false)
		repair.link = l
		target = fmt.Sprintf("%s-%s", s.p.Element(l[0]).Name, s.p.Element(l[1]).Name)
	}
	if err != nil {
		// Journal failure: the transition was rolled back; no repair to
		// schedule.
		s.res.Totals.Faults--
		s.trace(TraceEvent{Event: "fault", Target: target, Outcome: "fault-error"})
		return
	}
	s.schedule(s.faultExp(s.cfg.MeanRepair), repair)
	s.trace(TraceEvent{Event: "fault", Target: target, Outcome: "disabled"})

	for _, res := range s.k.ReadmitAffected(context.Background()) {
		s.applyReadmit(res, "fault-readmit")
	}
}

// repair re-enables a faulted element or link (journaled, like the
// fault itself).
func (s *simulator) repair(ev *event) {
	var target string
	var err error
	if ev.elem >= 0 {
		err = s.k.SetElementEnabled(ev.elem, true)
		target = s.p.Element(ev.elem).Name
	} else {
		err = s.k.SetLinkEnabled(ev.link[0], ev.link[1], true)
		target = fmt.Sprintf("%s-%s", s.p.Element(ev.link[0]).Name, s.p.Element(ev.link[1]).Name)
	}
	if err != nil {
		s.trace(TraceEvent{Event: "repair", Target: target, Outcome: "repair-error"})
		return
	}
	s.res.Totals.Repairs++
	s.trace(TraceEvent{Event: "repair", Target: target, Outcome: "repaired"})
}

// sample records one time-series point.
func (s *simulator) sample() {
	t := &s.res.Totals
	s.res.Series = append(s.res.Series, Sample{
		T:               s.now,
		Live:            s.liveCount(),
		Arrivals:        t.Arrivals,
		Admitted:        t.Admitted,
		Rejected:        t.Rejected,
		RejectedByPhase: t.RejectedByPhase,
		Frag:            s.p.ExternalFragmentation(),
		Util:            s.utilization(),
	})
}

// utilization is the mean per-element utilization over enabled
// elements.
func (s *simulator) utilization() float64 {
	sum, n := 0.0, 0
	for _, e := range s.p.Elements() {
		if !e.Enabled() {
			continue
		}
		sum += e.Pool().Utilization()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// finish computes the end-of-run summary figures.
func (s *simulator) finish() {
	t := &s.res.Totals
	if t.SteadyArrivals > 0 {
		t.SteadyRejectionRate = 100 * float64(t.SteadyRejected) / float64(t.SteadyArrivals)
	}
	if s.cfg.Duration > 0 {
		t.MeanLive = s.liveArea / s.cfg.Duration
		t.MeanFrag = s.fragArea / s.cfg.Duration
	}
	t.FinalFrag = s.p.ExternalFragmentation()
	t.FinalLive = s.liveCount()
	ps := experiments.DurationPercentiles(s.lat, 50, 90, 99)
	s.res.Latency = LatencySummary{N: len(s.lat), P50: ps[0], P90: ps[1], P99: ps[2]}
}
