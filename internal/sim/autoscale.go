package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/appgen"
	"repro/internal/experiments"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/rebalance"
	"repro/kairos"
)

// The autoscaling scenarios: time-varying load and shard-membership
// churn against a kairos.Cluster, with the REBALANCE POLICY as the
// treatment. The cluster is deliberately operated the way a cheap
// front-end would: first-fit placement with a spill limit of 1, so
// every application goes to its planned primary shard and is rejected
// if that shard cannot host it — no retry. Under that router the
// distribution of load across shards is everything, which is exactly
// what the background rebalancer controls; the comparison shows how
// much admission probability and balance the threshold policy buys
// over leaving the skew in place.
//
// Arrivals are an inhomogeneous Poisson process simulated by thinning:
// candidates arrive at the scenario's peak rate and each is accepted
// with probability rate(t)/peak. Every random draw (acceptance, app,
// lifetime) happens unconditionally in fixed event order, so the
// offered load is byte-identical across rebalance policies.

// AutoscaleScenarios lists the scenario names RunAutoscale accepts.
func AutoscaleScenarios() []string { return []string{"diurnal", "flash", "drain"} }

// RebalancePolicies re-exports the rebalance policy vocabulary, so
// cmd/sim's flag handling need not import the internal package.
func RebalancePolicies() []string { return rebalance.Policies() }

// AutoscaleConfig parameterizes one autoscaling run. Times are in
// simulated seconds. Start from DefaultAutoscaleConfig.
type AutoscaleConfig struct {
	// Shards is the number of platform shards at boot.
	Shards int
	// Platform is the per-shard prototype (nil = CRISP).
	Platform *platform.Platform
	// Weights steers every shard's mapping cost function.
	Weights mapping.Weights
	// Scenario is one of AutoscaleScenarios():
	//   diurnal — the arrival rate follows one smooth day cycle,
	//             BaseRate at the edges, BaseRate×PeakFactor mid-run;
	//   flash   — BaseRate, except a flash crowd at PeakFactor× during
	//             the middle fifth of the run;
	//   drain   — constant BaseRate; shard 0 is drained at half-time
	//             (decommission after a hardware failure) and a
	//             replacement shard is added at 60% of the run.
	Scenario string
	// BaseRate is the baseline cluster arrival rate per second.
	BaseRate float64
	// PeakFactor multiplies BaseRate at the scenario's peak (>= 1).
	PeakFactor float64
	// MeanLifetime is the mean application lifetime in seconds.
	MeanLifetime float64
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Seed drives every random draw.
	Seed int64
	// Rebalance is the rebalancer under test; its Interval is ignored
	// (ticks are simulation events every TickEvery seconds).
	Rebalance rebalance.Config
	// TickEvery is the rebalancer tick and spread-sampling period in
	// simulated seconds (0 = 5).
	TickEvery float64
}

// DefaultAutoscaleConfig returns an n-shard CRISP configuration whose
// baseline load moderately overloads ONE shard — so the off policy,
// which under the first-fit router leaves everything on shard 0, is
// visibly worse than spreading it.
func DefaultAutoscaleConfig(n int) AutoscaleConfig {
	base := DefaultConfig()
	return AutoscaleConfig{
		Shards:       n,
		Weights:      base.Weights,
		Scenario:     "flash",
		BaseRate:     base.ArrivalRate,
		PeakFactor:   3,
		MeanLifetime: base.MeanLifetime,
		Duration:     base.Duration,
		Seed:         base.Seed,
		Rebalance: rebalance.Config{
			Policy: rebalance.PolicyOff,
			High:   0.20, Low: 0.05,
			Budget: 4,
		},
		TickEvery: 5,
	}
}

// AutoscaleTotals summarizes one autoscaling run. Everything is
// deterministic for a fixed seed.
type AutoscaleTotals struct {
	Arrivals int `json:"arrivals"`
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	// Steady-state figures cover the second half of the run.
	SteadyArrivals      int     `json:"steadyArrivals"`
	SteadyRejected      int     `json:"steadyRejected"`
	SteadyRejectionRate float64 `json:"steadyRejectionRate"` // percent
	Departures          int     `json:"departures"`
	// Migrations and MigrationFailed count the rebalancer's moves and
	// failed attempts over all ticks.
	Migrations      int `json:"migrations"`
	MigrationFailed int `json:"migrationFailed"`
	// Drain-scenario membership churn.
	Drains      int `json:"drains"`
	ShardAdds   int `json:"shardAdds"`
	DrainMoved  int `json:"drainMoved"`
	DrainFailed int `json:"drainFailed"`
	// MeanSpread is the mean used-share spread sampled at every tick
	// in the steady half; PeakSpread is the maximum over the whole
	// run. Spread is the rebalancer's own imbalance score.
	MeanSpread float64 `json:"meanSpread"`
	PeakSpread float64 `json:"peakSpread"`
	// ShardLive is the per-shard live count at the horizon.
	ShardLive []int `json:"shardLive"`
}

// AutoscaleResult is the outcome of one autoscaling run.
type AutoscaleResult struct {
	Scenario string          `json:"scenario"`
	Policy   string          `json:"policy"`
	Shards   int             `json:"shards"`
	Seed     int64           `json:"seed"`
	Duration float64         `json:"duration"`
	Totals   AutoscaleTotals `json:"totals"`
}

// RunAutoscale simulates one autoscaling scenario and returns its
// totals. For a fixed config the result is byte-identical across runs,
// and across rebalance policies the offered load (arrival times, apps,
// lifetimes) is identical — only what the cluster does with it varies.
func RunAutoscale(cfg AutoscaleConfig) (*AutoscaleResult, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Platform == nil {
		cfg.Platform = platform.CRISP()
	}
	if cfg.Scenario == "" {
		cfg.Scenario = "flash"
	}
	valid := false
	for _, s := range AutoscaleScenarios() {
		valid = valid || s == cfg.Scenario
	}
	if !valid {
		return nil, fmt.Errorf("sim: unknown autoscale scenario %q (have %v)", cfg.Scenario, AutoscaleScenarios())
	}
	if cfg.PeakFactor < 1 {
		cfg.PeakFactor = 1
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 5
	}
	proto := cfg.Platform
	cluster, err := kairos.NewCluster(cfg.Shards,
		func(int) *platform.Platform { return proto.Clone() },
		kairos.WithPlacement(kairos.PlacementFirstFit),
		kairos.WithSpillLimit(1),
		kairos.WithClusterSeed(cfg.Seed+31),
		kairos.WithShardOptions(
			kairos.WithWeights(cfg.Weights),
			kairos.WithAdvisoryValidation(),
		),
	)
	if err != nil {
		panic(err) // config validated above; a failure is a bug
	}
	reb, err := rebalance.New(cluster, cfg.Rebalance)
	if err != nil {
		return nil, err
	}

	s := &autoscaleSim{
		cfg:     cfg,
		cluster: cluster,
		proto:   proto,
		reb:     reb,
		workRng: rand.New(rand.NewSource(cfg.Seed)),
		byName:  make(map[string]*clusterApp),
		res: &AutoscaleResult{
			Scenario: cfg.Scenario,
			Policy:   reb.Config().Policy,
			Shards:   cfg.Shards,
			Seed:     cfg.Seed,
			Duration: cfg.Duration,
		},
	}
	for i, gcfg := range experiments.AllConfigs() {
		s.gens = append(s.gens, appgen.New(gcfg, cfg.Seed+int64(i+1)*7919))
	}

	if cfg.BaseRate > 0 {
		s.schedule(s.workRng.ExpFloat64()/s.peakRate(), &event{kind: evArrival})
	}
	s.schedule(cfg.TickEvery, &event{kind: evRebTick})
	if cfg.Scenario == "drain" {
		s.schedule(0.5*cfg.Duration, &event{kind: evDrainShard, shard: 0})
		s.schedule(0.6*cfg.Duration, &event{kind: evAddShard})
	}
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.t > cfg.Duration {
			break
		}
		s.now = ev.t
		switch ev.kind {
		case evArrival:
			s.arrival()
		case evDeparture:
			s.departure(ev.capp)
		case evRebTick:
			s.tick()
			s.schedule(cfg.TickEvery, &event{kind: evRebTick})
		case evDrainShard:
			s.drain(ev.shard)
		case evAddShard:
			s.addShard()
		}
	}
	s.finish()
	return s.res, nil
}

// autoscaleSim is the event-loop state of one RunAutoscale.
type autoscaleSim struct {
	cfg     AutoscaleConfig
	cluster *kairos.Cluster
	proto   *platform.Platform
	reb     *rebalance.Rebalancer
	workRng *rand.Rand
	gens    []*appgen.Generator
	queue   eventQueue
	seq     int
	now     float64
	byName  map[string]*clusterApp
	res     *AutoscaleResult
	// spread samples taken at each tick
	spreadSum   float64
	spreadCount int
}

func (s *autoscaleSim) schedule(dt float64, ev *event) {
	ev.t = s.now + dt
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.queue, ev)
}

// peakRate is the thinning envelope: candidates arrive at this
// homogeneous rate and rate(t)/peakRate of them are accepted.
func (s *autoscaleSim) peakRate() float64 { return s.cfg.BaseRate * s.cfg.PeakFactor }

// rate is the scenario's instantaneous arrival rate.
func (s *autoscaleSim) rate(t float64) float64 {
	base, d := s.cfg.BaseRate, s.cfg.Duration
	switch s.cfg.Scenario {
	case "flash":
		if t >= 0.4*d && t < 0.6*d {
			return base * s.cfg.PeakFactor
		}
		return base
	case "diurnal":
		// One smooth day cycle: base at the edges, peak mid-run.
		return base * (1 + (s.cfg.PeakFactor-1)*0.5*(1-math.Cos(2*math.Pi*t/d)))
	default: // drain: membership churn is the treatment, load is flat
		return base
	}
}

// arrival processes one thinned candidate. Every draw is unconditional
// and in fixed order — acceptance, app, lifetime — so the offered load
// cannot depend on what the cluster (or the rebalancer) did with
// earlier arrivals.
func (s *autoscaleSim) arrival() {
	s.schedule(s.workRng.ExpFloat64()/s.peakRate(), &event{kind: evArrival})
	accept := s.workRng.Float64() < s.rate(s.now)/s.peakRate()
	app := s.gens[s.workRng.Intn(len(s.gens))].Next()
	lifetime := s.workRng.ExpFloat64() * s.cfg.MeanLifetime
	if !accept {
		return
	}
	t := &s.res.Totals
	t.Arrivals++
	steady := s.now >= s.cfg.Duration/2
	if steady {
		t.SteadyArrivals++
	}
	adm, err := s.cluster.Admit(context.Background(), app)
	if err != nil {
		t.Rejected++
		if steady {
			t.SteadyRejected++
		}
		return
	}
	t.Admitted++
	a := &clusterApp{instance: adm.Instance, shard: adm.Shard}
	s.byName[a.instance] = a
	s.schedule(lifetime, &event{kind: evDeparture, capp: a})
}

func (s *autoscaleSim) departure(a *clusterApp) {
	if a.dead {
		return
	}
	if err := s.cluster.Release(a.instance); err != nil {
		return // renamed under our feet: a bug; totals show it
	}
	a.dead = true
	delete(s.byName, a.instance)
	s.res.Totals.Departures++
}

// rename moves one live app's bookkeeping to its post-migration name.
func (s *autoscaleSim) rename(from, to string, shard int) {
	a := s.byName[from]
	if a == nil {
		return
	}
	delete(s.byName, from)
	a.instance = to
	a.shard = shard
	s.byName[to] = a
}

// tick runs one rebalancer pass and samples the spread it observed.
func (s *autoscaleSim) tick() {
	res := s.reb.Tick(context.Background())
	t := &s.res.Totals
	t.Migrations += len(res.Moves)
	t.MigrationFailed += res.Failed
	for _, mv := range res.Moves {
		s.rename(mv.From, mv.To, mv.Shard)
	}
	if res.Spread > t.PeakSpread {
		t.PeakSpread = res.Spread
	}
	if s.now >= s.cfg.Duration/2 {
		s.spreadSum += res.Spread
		s.spreadCount++
	}
}

// drain decommissions one shard mid-run and rehomes its residents.
func (s *autoscaleSim) drain(shard int) {
	res, err := s.cluster.DrainShard(context.Background(), shard)
	if err != nil && res == nil {
		return // nothing happened (bad shard index)
	}
	t := &s.res.Totals
	t.Drains++
	t.DrainMoved += len(res.Moved)
	t.DrainFailed += len(res.Failed)
	for _, mv := range res.Moved {
		s.rename(mv.From, mv.To, mv.Shard)
	}
}

// addShard grows the cluster by one shard cloned from the prototype.
func (s *autoscaleSim) addShard() {
	if _, err := s.cluster.AddShard(s.proto.Clone()); err != nil {
		return
	}
	s.res.Totals.ShardAdds++
}

func (s *autoscaleSim) finish() {
	t := &s.res.Totals
	if t.SteadyArrivals > 0 {
		t.SteadyRejectionRate = 100 * float64(t.SteadyRejected) / float64(t.SteadyArrivals)
	}
	if s.spreadCount > 0 {
		t.MeanSpread = s.spreadSum / float64(s.spreadCount)
	}
	cs := s.cluster.Stats()
	t.ShardLive = make([]int, len(cs.Shards))
	for i, sh := range cs.Shards {
		t.ShardLive[i] = sh.Live
	}
}

// RunAutoscaleComparison runs the same seeded scenario once per
// rebalance policy on a worker pool (<= 0 = one worker per logical
// CPU); every policy faces the identical offered load.
func RunAutoscaleComparison(cfg AutoscaleConfig, policies []string, workers int) ([]*AutoscaleResult, error) {
	// Validate every policy before spending simulation time on any.
	for _, p := range policies {
		c := cfg.Rebalance
		c.Policy = p
		if _, err := rebalance.New(nil, c); err != nil {
			return nil, err
		}
	}
	results := make([]*AutoscaleResult, len(policies))
	errs := make([]error, len(policies))
	experiments.ForEach(len(policies), workers, func(i int) {
		c := cfg
		c.Rebalance.Policy = policies[i]
		results[i], errs[i] = RunAutoscale(c)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// FormatAutoscaleComparison renders the rebalance-policy comparison as
// a table: steady-state rejection rate and mean spread are the
// headline columns.
func FormatAutoscaleComparison(results []*AutoscaleResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %8s %8s %10s %10s %10s %9s %8s\n",
		"Rebalance", "Arrivals", "Admitted", "Rejected",
		"SteadyRej%", "MeanSprd", "PeakSprd", "Migrated", "Failed")
	for _, r := range results {
		t := r.Totals
		fmt.Fprintf(&b, "%-10s %8d %8d %8d %9.2f%% %10.3f %10.3f %9d %8d\n",
			r.Policy, t.Arrivals, t.Admitted, t.Rejected,
			t.SteadyRejectionRate, t.MeanSpread, t.PeakSpread,
			t.Migrations, t.MigrationFailed)
	}
	return b.String()
}

// FormatAutoscaleSummary renders one autoscaling run as a
// human-readable block.
func FormatAutoscaleSummary(r *AutoscaleResult) string {
	t := r.Totals
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s, rebalance %s, %d shards, seed %d, %.0fs simulated\n",
		r.Scenario, r.Policy, r.Shards, r.Seed, r.Duration)
	fmt.Fprintf(&b, "  arrivals %d: %d admitted, %d rejected; %d departures\n",
		t.Arrivals, t.Admitted, t.Rejected, t.Departures)
	fmt.Fprintf(&b, "  rebalance: %d migrations (%d failed); spread mean %.3f peak %.3f\n",
		t.Migrations, t.MigrationFailed, t.MeanSpread, t.PeakSpread)
	if t.Drains > 0 || t.ShardAdds > 0 {
		fmt.Fprintf(&b, "  membership: %d drain(s) (%d rehomed, %d stranded), %d shard(s) added\n",
			t.Drains, t.DrainMoved, t.DrainFailed, t.ShardAdds)
	}
	fmt.Fprintf(&b, "  steady state: %.2f%% rejection rate (%d/%d), per-shard live %v\n",
		t.SteadyRejectionRate, t.SteadyRejected, t.SteadyArrivals, t.ShardLive)
	return b.String()
}
