package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/appgen"
	"repro/internal/experiments"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/kairos"
)

// The cluster-churn scenario: the single-platform churn model of this
// package (Poisson arrivals over the six synthetic profiles,
// exponential lifetimes, element/link fault injection with forced
// readmission) driven against a kairos.Cluster instead of one manager,
// with the *placement policy* as the treatment — the scale-out
// analogue of the defragmentation-policy comparison.

// ClusterConfig parameterizes one cluster churn run. Times are in
// simulated seconds. Start from DefaultClusterConfig.
type ClusterConfig struct {
	// Shards is the number of platform shards.
	Shards int
	// Platform is the per-shard prototype; it is cloned once per
	// shard. Nil means the CRISP platform.
	Platform *platform.Platform
	// Placement is the cluster placement policy (nil = least-loaded).
	Placement kairos.PlacementPolicy
	// Spill caps shards tried per admission (0 = all).
	Spill int
	// Weights steers every shard's mapping cost function.
	Weights mapping.Weights
	// ArrivalRate is the cluster-wide mean arrival rate per second.
	ArrivalRate float64
	// MeanLifetime is the mean application lifetime in seconds.
	MeanLifetime float64
	// Duration is the simulated horizon in seconds.
	Duration float64
	// Seed drives every random draw (and the cluster's placement
	// stream, derived from it).
	Seed int64
	// FaultRate is the cluster-wide mean hardware-fault rate per
	// second; each fault hits one uniformly chosen shard. 0 disables.
	FaultRate float64
	// MeanRepair is the mean seconds until a fault is repaired.
	MeanRepair float64
	// Options are additional per-shard manager options.
	Options []kairos.Option
}

// DefaultClusterConfig scales the single-platform default to n shards:
// the same per-shard offered load and fault pressure, n platforms.
func DefaultClusterConfig(n int) ClusterConfig {
	base := DefaultConfig()
	return ClusterConfig{
		Shards:       n,
		Weights:      base.Weights,
		ArrivalRate:  base.ArrivalRate * float64(n),
		MeanLifetime: base.MeanLifetime,
		Duration:     base.Duration,
		Seed:         base.Seed,
		FaultRate:    base.FaultRate * float64(n),
		MeanRepair:   base.MeanRepair,
	}
}

// ClusterTotals summarizes one cluster churn run. Everything is
// deterministic for a fixed seed.
type ClusterTotals struct {
	Arrivals int `json:"arrivals"`
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	// Spilled counts admissions that left their primary shard;
	// SpillAttempts counts the extra shard tries they took.
	Spilled       int `json:"spilled"`
	SpillAttempts int `json:"spillAttempts"`
	Departures    int `json:"departures"`
	Faults        int `json:"faults"`
	Repairs       int `json:"repairs"`
	// Moved, Restored and Evicted classify the fault-forced
	// readmissions, as in the single-platform scenario.
	Moved    int `json:"moved"`
	Restored int `json:"restored"`
	Evicted  int `json:"evicted"`
	// Steady-state figures cover the second half of the run.
	SteadyArrivals      int     `json:"steadyArrivals"`
	SteadyRejected      int     `json:"steadyRejected"`
	SteadyRejectionRate float64 `json:"steadyRejectionRate"` // percent
	// ShardAdmitted is the per-shard admission count; Imbalance is
	// max/mean over it (1.0 = perfectly even placement).
	ShardAdmitted []int   `json:"shardAdmitted"`
	ShardLive     []int   `json:"shardLive"`
	Imbalance     float64 `json:"imbalance"`
}

// ClusterResult is the outcome of one cluster churn run.
type ClusterResult struct {
	Placement string        `json:"placement"`
	Shards    int           `json:"shards"`
	Seed      int64         `json:"seed"`
	Duration  float64       `json:"duration"`
	Totals    ClusterTotals `json:"totals"`
}

// clusterApp is the cluster simulator's view of one admitted
// application.
type clusterApp struct {
	instance string // cluster-scoped name
	shard    int
	dead     bool
}

// RunCluster simulates the configured workload against a fresh
// cluster and returns its totals. Every random draw comes from two
// seeded streams consumed in event order (workload and faults, as in
// Run), plus the cluster's own placement stream — so for a fixed seed
// the result is byte-identical across runs and policies face the
// identical offered load.
func RunCluster(cfg ClusterConfig) *ClusterResult {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Platform == nil {
		cfg.Platform = platform.CRISP()
	}
	if cfg.Placement == nil {
		cfg.Placement = kairos.PlacementLeastLoaded
	}
	if cfg.MeanRepair <= 0 {
		cfg.MeanRepair = 60
	}
	proto := cfg.Platform
	cluster, err := kairos.NewCluster(cfg.Shards,
		func(int) *platform.Platform { return proto.Clone() },
		kairos.WithPlacement(cfg.Placement),
		kairos.WithSpillLimit(cfg.Spill),
		kairos.WithClusterSeed(cfg.Seed+31),
		kairos.WithShardOptions(append([]kairos.Option{
			kairos.WithWeights(cfg.Weights),
			kairos.WithAdvisoryValidation(),
		}, cfg.Options...)...),
	)
	if err != nil {
		panic(err) // config validated above; a failure is a bug
	}

	s := &clusterSim{
		cfg:      cfg,
		cluster:  cluster,
		workRng:  rand.New(rand.NewSource(cfg.Seed)),
		faultRng: rand.New(rand.NewSource(cfg.Seed + 104729)),
		byName:   make(map[string]*clusterApp),
		res: &ClusterResult{
			Placement: cfg.Placement.Name(),
			Shards:    cfg.Shards,
			Seed:      cfg.Seed,
			Duration:  cfg.Duration,
		},
	}
	s.res.Totals.ShardAdmitted = make([]int, cfg.Shards)
	s.res.Totals.ShardLive = make([]int, cfg.Shards)
	for i, gcfg := range experiments.AllConfigs() {
		s.gens = append(s.gens, appgen.New(gcfg, cfg.Seed+int64(i+1)*7919))
	}

	if cfg.ArrivalRate > 0 {
		s.schedule(s.workRng.ExpFloat64()/cfg.ArrivalRate, &event{kind: evArrival})
	}
	if cfg.FaultRate > 0 {
		s.schedule(s.faultRng.ExpFloat64()/cfg.FaultRate, &event{kind: evFault})
	}
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.t > cfg.Duration {
			break
		}
		s.now = ev.t
		switch ev.kind {
		case evArrival:
			s.arrival()
		case evDeparture:
			s.departure(ev.capp)
		case evFault:
			s.fault()
			s.schedule(s.faultRng.ExpFloat64()/cfg.FaultRate, &event{kind: evFault})
		case evRepair:
			s.repair(ev)
		}
	}
	s.finish()
	return s.res
}

// clusterSim is the event-loop state of one RunCluster.
type clusterSim struct {
	cfg      ClusterConfig
	cluster  *kairos.Cluster
	workRng  *rand.Rand
	faultRng *rand.Rand
	gens     []*appgen.Generator
	queue    eventQueue
	seq      int
	now      float64
	byName   map[string]*clusterApp
	res      *ClusterResult
}

func (s *clusterSim) schedule(dt float64, ev *event) {
	ev.t = s.now + dt
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.queue, ev)
}

// arrival places one arriving application on the cluster. As in the
// single-platform loop, every workload draw happens unconditionally in
// fixed order, so the offered load is identical for every placement
// policy.
func (s *clusterSim) arrival() {
	app := s.gens[s.workRng.Intn(len(s.gens))].Next()
	s.schedule(s.workRng.ExpFloat64()/s.cfg.ArrivalRate, &event{kind: evArrival})
	lifetime := s.workRng.ExpFloat64() * s.cfg.MeanLifetime
	t := &s.res.Totals
	t.Arrivals++
	steady := s.now >= s.cfg.Duration/2
	if steady {
		t.SteadyArrivals++
	}
	adm, err := s.cluster.Admit(context.Background(), app)
	if err != nil {
		t.Rejected++
		if steady {
			t.SteadyRejected++
		}
		return
	}
	t.Admitted++
	t.ShardAdmitted[adm.Shard]++
	if adm.Attempts > 1 {
		t.Spilled++
		t.SpillAttempts += adm.Attempts - 1
	}
	a := &clusterApp{instance: adm.Instance, shard: adm.Shard}
	s.byName[a.instance] = a
	s.schedule(lifetime, &event{kind: evDeparture, capp: a})
}

func (s *clusterSim) departure(a *clusterApp) {
	if a.dead {
		return
	}
	if err := s.cluster.Release(a.instance); err != nil {
		return // evicted and renamed under our feet: a bug; totals show it
	}
	a.dead = true
	delete(s.byName, a.instance)
	s.res.Totals.Departures++
}

// fault disables one enabled element or physical link on one uniformly
// chosen shard, schedules its repair, and sweeps the cluster's
// restart path.
func (s *clusterSim) fault() {
	shard := s.faultRng.Intn(s.cfg.Shards)
	p := s.cluster.Shard(shard).Platform()
	var elems []int
	for _, e := range p.Elements() {
		if e.Enabled() {
			elems = append(elems, e.ID)
		}
	}
	var links [][2]int
	for _, l := range p.PhysicalLinks() {
		if p.Link(l[0], l[1]).Enabled() {
			links = append(links, l)
		}
	}
	n := len(elems) + len(links)
	if n == 0 {
		return
	}
	s.res.Totals.Faults++
	pick := s.faultRng.Intn(n)
	repair := &event{kind: evRepair, shard: shard, elem: -1, link: [2]int{-1, -1}}
	// Transitions go through the shard manager so durable runs journal
	// them (see the single-platform simulator).
	var err error
	if pick < len(elems) {
		err = s.cluster.Shard(shard).SetElementEnabled(elems[pick], false)
		repair.elem = elems[pick]
	} else {
		l := links[pick-len(elems)]
		err = s.cluster.Shard(shard).SetLinkEnabled(l[0], l[1], false)
		repair.link = l
	}
	if err != nil {
		s.res.Totals.Faults--
		return
	}
	s.schedule(s.faultRng.ExpFloat64()*s.cfg.MeanRepair, repair)

	for _, res := range s.cluster.ReadmitAffected(context.Background()) {
		old := kairos.ClusterInstanceName(res.Shard, res.Instance)
		a := s.byName[old]
		t := &s.res.Totals
		switch res.Outcome {
		case kairos.ReadmitMoved:
			t.Moved++
			if a != nil {
				delete(s.byName, a.instance)
				a.instance = kairos.ClusterInstanceName(res.Shard, res.NewInstance)
				s.byName[a.instance] = a
			}
		case kairos.ReadmitRestored:
			t.Restored++
		case kairos.ReadmitEvicted:
			t.Evicted++
			if a != nil {
				a.dead = true
				delete(s.byName, a.instance)
			}
		}
	}
}

func (s *clusterSim) repair(ev *event) {
	m := s.cluster.Shard(ev.shard)
	var err error
	if ev.elem >= 0 {
		err = m.SetElementEnabled(ev.elem, true)
	} else {
		err = m.SetLinkEnabled(ev.link[0], ev.link[1], true)
	}
	if err != nil {
		return
	}
	s.res.Totals.Repairs++
}

func (s *clusterSim) finish() {
	t := &s.res.Totals
	if t.SteadyArrivals > 0 {
		t.SteadyRejectionRate = 100 * float64(t.SteadyRejected) / float64(t.SteadyArrivals)
	}
	cs := s.cluster.Stats()
	for i, sh := range cs.Shards {
		t.ShardLive[i] = sh.Live
	}
	// Imbalance over the per-shard ARRIVAL admissions (ShardAdmitted),
	// not engine Stats.Admitted: the latter also counts successful
	// fault-forced readmissions, which would skew the placement-
	// evenness metric toward whichever shards absorbed faults.
	sum, peak := 0, 0
	for _, n := range t.ShardAdmitted {
		sum += n
		if n > peak {
			peak = n
		}
	}
	if sum > 0 {
		t.Imbalance = float64(peak) * float64(s.cfg.Shards) / float64(sum)
	}
}

// RunClusterComparison runs the same seeded workload once per
// placement policy on a worker pool (<= 0 = one worker per logical
// CPU); every policy faces the identical arrival and fault sequence.
func RunClusterComparison(cfg ClusterConfig, policies []kairos.PlacementPolicy, workers int) []*ClusterResult {
	results := make([]*ClusterResult, len(policies))
	experiments.ForEach(len(policies), workers, func(i int) {
		c := cfg
		c.Placement = policies[i]
		results[i] = RunCluster(c)
	})
	return results
}

// AllPlacements resolves every registered placement policy in
// comparison-report order.
func AllPlacements() []kairos.PlacementPolicy {
	var out []kairos.PlacementPolicy
	for _, name := range kairos.PlacementNames() {
		p, err := kairos.PlacementByName(name)
		if err != nil {
			panic(err) // registry names resolve by construction
		}
		out = append(out, p)
	}
	return out
}

// FormatClusterComparison renders the placement-policy comparison as a
// table: steady-state rejection rate and placement imbalance are the
// headline columns.
func FormatClusterComparison(results []*ClusterResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %8s %8s %8s %8s %10s %8s %9s %10s\n",
		"Placement", "Arrivals", "Admitted", "Spilled", "Rejected",
		"SteadyRej%", "Evicted", "Imbalance", "Faults")
	for _, r := range results {
		t := r.Totals
		fmt.Fprintf(&b, "%-13s %8d %8d %8d %8d %9.2f%% %8d %9.2f %10d\n",
			r.Placement, t.Arrivals, t.Admitted, t.Spilled, t.Rejected,
			t.SteadyRejectionRate, t.Evicted, t.Imbalance, t.Faults)
	}
	return b.String()
}

// FormatClusterSummary renders one cluster run as a human-readable
// block.
func FormatClusterSummary(r *ClusterResult) string {
	t := r.Totals
	var b strings.Builder
	fmt.Fprintf(&b, "placement %s, %d shards, seed %d, %.0fs simulated\n",
		r.Placement, r.Shards, r.Seed, r.Duration)
	fmt.Fprintf(&b, "  arrivals %d: %d admitted (%d spilled over %d extra tries), %d rejected\n",
		t.Arrivals, t.Admitted, t.Spilled, t.SpillAttempts, t.Rejected)
	fmt.Fprintf(&b, "  churn: %d departures, %d faults, %d repairs; "+
		"forced readmissions: %d moved, %d restored, %d evicted\n",
		t.Departures, t.Faults, t.Repairs, t.Moved, t.Restored, t.Evicted)
	fmt.Fprintf(&b, "  steady state: %.2f%% rejection rate (%d/%d), imbalance %.2f, per-shard admitted %v\n",
		t.SteadyRejectionRate, t.SteadyRejected, t.SteadyArrivals, t.Imbalance, t.ShardAdmitted)
	return b.String()
}
