package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_recovery.json from the current implementation")

// recoveryConfig is the pinned kill/recover scenario: CRISP platform
// under churn with aggressive fault injection, killed mid-run.
func recoveryConfig() (Config, int) {
	cfg := DefaultConfig()
	cfg.Duration = 300
	cfg.FaultRate = 1.0 / 30
	return cfg, 40 // kill after the 40th committed op
}

// TestGoldenRecoveryTrace pins the full kill/recover-under-churn
// scenario: the pre-crash trace, the recovered state (down to its
// canonical digest) and the post-recovery probe outcomes must
// reproduce the checked-in JSON byte for byte. After an intentional
// behavior change, regenerate with
//
//	go test ./internal/sim -run GoldenRecovery -update-golden
func TestGoldenRecoveryTrace(t *testing.T) {
	cfg, killAt := recoveryConfig()
	res, err := RunRecovery(cfg, t.TempDir(), killAt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed {
		t.Fatalf("simulation finished (%d ops durable) before the kill point %d; raise churn or the horizon",
			res.Recovered.LastLSN, killAt)
	}
	if got := res.Recovered.LastLSN; got != uint64(killAt) {
		t.Fatalf("recovered %d ops, want exactly the %d durable before the kill", got, killAt)
	}

	got, err := json.MarshalIndent(res, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_recovery.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("recovery trace diverged from %s (rerun with -update-golden after intentional changes)", path)
	}
}

// TestRecoveryScenarioDeterministic runs the scenario twice in fresh
// directories: byte-identical results, including the state digest.
func TestRecoveryScenarioDeterministic(t *testing.T) {
	cfg, killAt := recoveryConfig()
	cfg.Duration = 150
	killAt = 20
	a, err := RunRecovery(cfg, t.TempDir(), killAt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRecovery(cfg, t.TempDir(), killAt)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Error("two recovery runs with the same seed differ")
	}
}

// TestRecoveryScenarioSurvivesRunToCompletion covers the no-kill path:
// the horizon ends before the op budget, the log holds every op, and
// recovery still lands on the final state.
func TestRecoveryScenarioSurvivesRunToCompletion(t *testing.T) {
	cfg, _ := recoveryConfig()
	cfg.Duration = 60
	res, err := RunRecovery(cfg, t.TempDir(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Killed {
		t.Fatal("kill tripped despite an unreachable op budget")
	}
	if res.Recovered.LastLSN == 0 {
		t.Fatal("nothing was journaled")
	}
	for _, ev := range res.Probe {
		if ev.Op == "release" && ev.Outcome != "released" {
			t.Errorf("post-recovery release failed: %+v", ev)
		}
	}
}
