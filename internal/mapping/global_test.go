package mapping

import (
	"fmt"
	"testing"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/platform"
)

// chainApp builds an n-stage pipeline of share%-compute DSP tasks.
func chainApp(name string, n int, share int64) *graph.Application {
	app := graph.New(name)
	for i := 0; i < n; i++ {
		app.AddTask(fmt.Sprintf("t%d", i), graph.Internal, dspImpl(share))
	}
	for i := 0; i+1 < n; i++ {
		app.AddChannel(i, i+1)
	}
	return app
}

// TestMapGlobalPlacesChain: the one-shot GAP maps a chain onto a mesh
// with all placements committed under the instance name.
func TestMapGlobalPlacesChain(t *testing.T) {
	p := platform.Mesh(3, 3, 4)
	app := chainApp("g", 4, 40)
	bind, err := binding.Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MapGlobal(app, p, bind, Options{Instance: "g#1", Weights: WeightsBoth})
	if err != nil {
		t.Fatalf("MapGlobal: %v", err)
	}
	if res.GAPInvocations != 1 {
		t.Errorf("GAPInvocations = %d, want exactly 1 (one-shot)", res.GAPInvocations)
	}
	for _, task := range app.Tasks {
		e := p.Element(res.Assignment[task.ID])
		if e == nil || !e.HostsTask(platform.Occupant{App: "g#1", Task: task.ID}) {
			t.Fatalf("task %d not placed on its assigned element", task.ID)
		}
	}
	Unmap(p, "g#1", app)
	for _, e := range p.Elements() {
		if e.InUse() {
			t.Fatalf("element %d still in use after Unmap", e.ID)
		}
	}
}

// TestMapGlobalDeterministic: two runs on identical clones assign
// identically.
func TestMapGlobalDeterministic(t *testing.T) {
	proto := platform.Mesh(4, 4, 4)
	app := chainApp("g", 6, 50)
	run := func() []int {
		p := proto.Clone()
		bind, err := binding.Bind(app, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MapGlobal(app, p, bind, Options{Instance: "g#1", Weights: WeightsBoth})
		if err != nil {
			t.Fatal(err)
		}
		return res.Assignment
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignments differ: %v vs %v", a, b)
		}
	}
}

// TestMapGlobalFailureRollsBack: an unmappable app leaves no
// placements behind.
func TestMapGlobalFailureRollsBack(t *testing.T) {
	p := platform.Mesh(2, 2, 4)
	app := chainApp("big", 5, 70) // 5 × 70% on 4 elements cannot fit
	bind, err := binding.BindExact(app, p)
	if err == nil {
		// Binding's location-free estimate may already reject; when it
		// does not, mapping must.
		if _, merr := MapGlobal(app, p, bind, Options{Instance: "big#1", Weights: WeightsBoth}); merr == nil {
			t.Fatal("unmappable app mapped")
		}
	}
	for _, e := range p.Elements() {
		if e.InUse() {
			t.Fatalf("element %d in use after failed MapGlobal", e.ID)
		}
	}
}

// TestMapGlobalHonorsFixedElement: av() constrains the global GAP to
// the fixed location.
func TestMapGlobalHonorsFixedElement(t *testing.T) {
	p := platform.MeshWithIO(3, 3, 4)
	ioIn := -1
	for _, e := range p.Elements() {
		if e.Type == platform.TypeIO {
			ioIn = e.ID
			break
		}
	}
	app := graph.New("fixed")
	src := app.AddTask("src", graph.Input, graph.Implementation{
		Name: "src-io", Target: platform.TypeIO,
		Requires: platform.IOCapacity.Clone(), Cost: 1, ExecTime: 2,
	})
	app.Tasks[src].FixedElement = ioIn
	snk := app.AddTask("snk", graph.Internal, graph.Implementation{
		Name: "snk-dsp", Target: platform.TypeDSP,
		Requires: platform.DSPCapacity.Clone(), Cost: 1, ExecTime: 2,
	})
	app.AddChannel(src, snk)
	bind, err := binding.Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MapGlobal(app, p, bind, Options{Instance: "f#1", Weights: WeightsCommunication})
	if err != nil {
		t.Fatalf("MapGlobal: %v", err)
	}
	if res.Assignment[src] != ioIn {
		t.Errorf("fixed task mapped to %d, want %d", res.Assignment[src], ioIn)
	}
	Unmap(p, "f#1", app)
}
