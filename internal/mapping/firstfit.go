package mapping

import (
	"sort"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/platform"
)

// FirstFit is a baseline mapper: it walks the task graph in the same
// neighborhood order as MapApplication but assigns each task
// individually to the nearest available element — no GAP, no cost
// function, no stealing. It represents the naive alternative to the
// paper's contribution; the "None" configuration of Figs. 8–9 still
// runs the full GAP machinery with a disabled cost function, so this
// baseline is strictly simpler and isolates the value of the
// assignment-problem formulation (see BenchmarkFirstFitBaseline).
//
// On failure, placements are rolled back, like MapApplication.
func FirstFit(app *graph.Application, p *platform.Platform, bind *binding.Binding, instance string) (*Result, error) {
	if instance == "" {
		return nil, &Error{Task: -1, Reason: "instance must be set"}
	}
	m := newMapper(app, p, bind, Options{Instance: instance})
	defer m.release()

	origins, err := m.seedM0()
	if err != nil {
		m.rollback()
		return nil, err
	}
	m.res.Origins = origins

	levels := app.Neighborhoods(origins)
	for li := 1; li < len(levels); li++ {
		for _, task := range levels[li] {
			if m.elemOf[task] >= 0 {
				continue
			}
			if err := m.firstFitPlace(task); err != nil {
				m.rollback()
				return nil, err
			}
		}
	}
	return m.result(), nil
}

// firstFitPlace puts one task on the nearest available element,
// searching outward from the elements of its mapped peers (or from
// all mapped elements when it has none).
func (m *mapper) firstFitPlace(task int) error {
	var origins []int
	for _, nb := range m.app.UndirectedNeighbors(task) {
		if e := m.elemOf[nb]; e >= 0 {
			origins = append(origins, e)
		}
	}
	if len(origins) == 0 {
		for _, e := range m.elemOf {
			if e >= 0 {
				origins = append(origins, e)
			}
		}
	}
	sort.Ints(origins)
	if len(origins) == 0 {
		return &Error{Task: task, Reason: "first-fit: nothing mapped to search from"}
	}
	dist := m.p.BFSDistances(origins)
	type cand struct{ d, id int }
	var cands []cand
	for id, d := range dist {
		if d == platform.Unreachable {
			continue
		}
		cands = append(cands, cand{d, id})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	for _, c := range cands {
		if m.av(m.p.Element(c.id), task) {
			return m.place(task, c.id)
		}
	}
	return &Error{Task: task, Reason: "first-fit: no available element"}
}
