package mapping

import (
	"testing"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/platform"
)

func TestFirstFitMapsChain(t *testing.T) {
	p := platform.Mesh(3, 1, 2)
	app := graph.New("chain")
	for i := 0; i < 3; i++ {
		app.AddTask("t", graph.Internal, dspImpl(80))
	}
	app.AddChannel(0, 1)
	app.AddChannel(1, 2)
	b := mustBind(t, app, p)
	res, err := FirstFit(app, p, b, "ff")
	if err != nil {
		t.Fatalf("FirstFit: %v", err)
	}
	checkConsistent(t, app, p, res, "ff")
}

func TestFirstFitRollsBack(t *testing.T) {
	// Island construction: binding passes, first-fit cannot reach
	// the isolated element.
	p := platform.New()
	a := p.AddElement(platform.TypeDSP, "a", platform.DSPCapacity)
	b := p.AddElement(platform.TypeDSP, "b", platform.DSPCapacity)
	p.AddElement(platform.TypeDSP, "island", platform.DSPCapacity)
	p.MustConnect(a, b, 2)
	app := graph.New("big")
	for i := 0; i < 3; i++ {
		app.AddTask("t", graph.Internal, dspImpl(80))
	}
	app.AddChannel(0, 1)
	app.AddChannel(1, 2)
	bind := mustBind(t, app, p)
	if _, err := FirstFit(app, p, bind, "ff"); err == nil {
		t.Fatal("expected first-fit failure")
	}
	for _, e := range p.Elements() {
		if e.InUse() {
			t.Errorf("element %d in use after rollback", e.ID)
		}
	}
}

func TestFirstFitRequiresInstance(t *testing.T) {
	p := platform.Mesh(2, 2, 2)
	app := graph.New("a")
	app.AddTask("t", graph.Internal, dspImpl(10))
	b := mustBind(t, app, p)
	if _, err := FirstFit(app, p, b, ""); err == nil {
		t.Error("missing instance must be rejected")
	}
}

func TestFirstFitBeamformingComparison(t *testing.T) {
	// On CRISP, first-fit maps the beamformer (capacity exists) but
	// produces more cross-package channels than MapApplication with
	// both objectives — the quantitative argument for the paper's
	// approach.
	crossOf := func(mapper func(*graph.Application, *platform.Platform, *binding.Binding) (*Result, error)) int {
		t.Helper()
		p := platform.CRISP()
		ioIn := -1
		for _, e := range p.Elements() {
			if e.Name == "io-in" {
				ioIn = e.ID
			}
		}
		app := graph.Beamforming(graph.DefaultBeamforming(ioIn))
		b, err := binding.Bind(app, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mapper(app, p, b)
		if err != nil {
			t.Fatal(err)
		}
		cross := 0
		for _, ch := range app.Channels {
			if p.Element(res.Assignment[ch.Src]).Package != p.Element(res.Assignment[ch.Dst]).Package {
				cross++
			}
		}
		return cross
	}

	ffCross := crossOf(func(a *graph.Application, p *platform.Platform, b *binding.Binding) (*Result, error) {
		return FirstFit(a, p, b, "ff")
	})
	gapCross := crossOf(func(a *graph.Application, p *platform.Platform, b *binding.Binding) (*Result, error) {
		return MapApplication(a, p, b, Options{Instance: "gap", Weights: WeightsBoth})
	})
	if gapCross >= ffCross {
		t.Errorf("MapApplication cross-package channels (%d) should beat first-fit (%d)",
			gapCross, ffCross)
	}
}
