package mapping

import (
	"sort"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/platform"
)

// MapGlobal is the one-shot assignment alternative to MapApplication:
// a single GAP over every task and every enabled element, with no
// neighborhood decomposition and no ring-by-ring candidate growth. It
// ablates the incremental search of the paper's algorithm — the full
// distance matrix is computed up front (the run-time cost the paper's
// sparse, search-driven matrix avoids), and the Cohen–Katzir–Raz
// solver sees the whole problem at once, so locality emerges only
// from the cost function, not from the candidate structure.
//
// Placements are committed to the platform like MapApplication and
// rolled back on failure.
func MapGlobal(app *graph.Application, p *platform.Platform, bind *binding.Binding, opts Options) (*Result, error) {
	if opts.Instance == "" {
		return nil, &Error{Task: -1, Reason: "Options.Instance must be set"}
	}
	m := newMapper(app, p, bind, opts)
	defer m.release()

	// Full weighted distance matrix: every enabled element is a BFS
	// origin (cross-package hops weighted as in the incremental
	// mapper, so the communication objective agrees between the two).
	candidates := m.candidates[:0]
	for _, e := range p.Elements() {
		if !e.Enabled() {
			continue
		}
		candidates = append(candidates, e.ID)
	}
	m.candidates = candidates
	sort.Ints(candidates)
	for _, o := range candidates {
		m.oneOrigin[0] = o
		m.distBuf = p.WeightedDistancesInto(m.oneOrigin[:], m.weight, m.distBuf)
		for id, d := range m.distBuf {
			if d != platform.Unreachable {
				m.dm.Record(o, id, d)
			}
		}
	}

	tasks := intsFor(m.todo, len(app.Tasks))
	m.todo = tasks
	for i := range tasks {
		tasks[i] = i
	}

	state := m.state
	state.Reset()
	m.curState = state
	m.res.GAPInvocations = 1
	if !state.Process(gapInstance{m: m}, tasks, candidates, m.opts.Solver) {
		un := state.Unassigned(tasks)
		return nil, &Error{Task: un[0], Reason: "global GAP left tasks unassigned"}
	}
	if err := m.commitLevel(tasks, state); err != nil {
		m.rollback()
		return nil, err
	}
	return m.result(), nil
}
