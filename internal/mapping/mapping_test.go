package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/knapsack"
	"repro/internal/platform"
	"repro/internal/resource"
)

func dspImpl(share int64) graph.Implementation {
	return graph.Implementation{
		Name: "dsp", Target: platform.TypeDSP,
		Requires: resource.Of(share, 8, 0, 0),
		Cost:     1, ExecTime: 10,
	}
}

func mustBind(t *testing.T, app *graph.Application, p *platform.Platform) *binding.Binding {
	t.Helper()
	b, err := binding.Bind(app, p)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	return b
}

func mapIt(t *testing.T, app *graph.Application, p *platform.Platform, w Weights) (*Result, error) {
	t.Helper()
	return MapApplication(app, p, mustBind(t, app, p), Options{Instance: "test", Weights: w})
}

func checkConsistent(t *testing.T, app *graph.Application, p *platform.Platform, res *Result, instance string) {
	t.Helper()
	for _, task := range app.Tasks {
		e := res.Assignment[task.ID]
		if e < 0 {
			t.Fatalf("task %d unassigned", task.ID)
		}
		occ := platform.Occupant{App: instance, Task: task.ID}
		if !p.Element(e).HostsTask(occ) {
			t.Fatalf("task %d not hosted on element %d", task.ID, e)
		}
		if fixed := task.FixedElement; fixed != graph.NoFixedElement && e != fixed {
			t.Fatalf("fixed task %d mapped to %d, want %d", task.ID, e, fixed)
		}
	}
	// No pool may be overcommitted.
	for _, e := range p.Elements() {
		if !e.Pool().Used().Fits(e.Pool().Capacity()) {
			t.Fatalf("element %d overcommitted", e.ID)
		}
	}
}

func TestMapChainOnLine(t *testing.T) {
	p := platform.New()
	var prev int
	for i := 0; i < 5; i++ {
		id := p.AddElement(platform.TypeDSP, "d", platform.DSPCapacity)
		if i > 0 {
			p.MustConnect(prev, id, 2)
		}
		prev = id
	}
	app := graph.New("chain")
	for i := 0; i < 4; i++ {
		app.AddTask("t", graph.Internal, dspImpl(80)) // one task per element
	}
	for i := 0; i+1 < 4; i++ {
		app.AddChannel(i, i+1)
	}
	res, err := mapIt(t, app, p, WeightsCommunication)
	if err != nil {
		t.Fatalf("MapApplication: %v", err)
	}
	checkConsistent(t, app, p, res, "test")
	// Four 80%-tasks on five elements: each its own element.
	seen := make(map[int]bool)
	for _, e := range res.Assignment {
		if seen[e] {
			t.Errorf("two tasks share an element despite 80%% demand: %v", res.Assignment)
		}
		seen[e] = true
	}
}

func TestMapSeedsM0FromFixedTask(t *testing.T) {
	p := platform.MeshWithIO(3, 3, 2)
	ioIn := 9 // first IO element appended after the 9 mesh tiles
	app := graph.New("a")
	src := app.AddTask("src", graph.Input, graph.Implementation{
		Name: "io", Target: platform.TypeIO,
		Requires: resource.Of(5, 4, 1, 0), Cost: 1, ExecTime: 5,
	})
	app.Tasks[src].FixedElement = ioIn
	work := app.AddTask("work", graph.Internal, dspImpl(60))
	app.AddChannel(src, work)

	res, err := mapIt(t, app, p, WeightsCommunication)
	if err != nil {
		t.Fatalf("MapApplication: %v", err)
	}
	checkConsistent(t, app, p, res, "test")
	if res.Assignment[src] != ioIn {
		t.Errorf("source on %d, want fixed %d", res.Assignment[src], ioIn)
	}
	if len(res.Origins) != 1 || res.Origins[0] != src {
		t.Errorf("Origins = %v, want [src]", res.Origins)
	}
	// Communication weight: the worker lands adjacent to the IO tile.
	if got := res.Assignment[work]; got != 0 {
		t.Errorf("worker on element %d, want 0 (the tile adjacent to io-in)", got)
	}
}

func TestMapSeedsM0FromUniqueAvailability(t *testing.T) {
	// One FPGA in the platform: the FPGA task has |av| = 1 and seeds
	// M0 without being location-fixed.
	p := platform.Mesh(3, 3, 2)
	fpga := p.AddElement(platform.TypeFPGA, "f", platform.FPGACapacity)
	p.MustConnect(fpga, 4, 2)
	app := graph.New("a")
	ft := app.AddTask("acc", graph.Internal, graph.Implementation{
		Name: "fpga", Target: platform.TypeFPGA,
		Requires: resource.Of(10, 10, 0, 100), Cost: 1, ExecTime: 5,
	})
	wt := app.AddTask("work", graph.Internal, dspImpl(60))
	app.AddChannel(ft, wt)

	res, err := mapIt(t, app, p, WeightsCommunication)
	if err != nil {
		t.Fatalf("MapApplication: %v", err)
	}
	if res.Assignment[ft] != fpga {
		t.Errorf("fpga task on %d, want %d", res.Assignment[ft], fpga)
	}
	if len(res.Origins) != 1 || res.Origins[0] != ft {
		t.Errorf("Origins = %v, want [fpga task]", res.Origins)
	}
	// The DSP worker should sit adjacent to the FPGA (element 4).
	if res.Assignment[wt] != 4 {
		t.Errorf("worker on %d, want 4", res.Assignment[wt])
	}
}

func TestMapOriginSelectionWithoutM0(t *testing.T) {
	p := platform.Mesh(4, 4, 2)
	// Star app: center has degree 3, leaves degree 1 → origin is a
	// leaf (lowest degree, lowest ID).
	app := graph.New("star")
	c := app.AddTask("center", graph.Internal, dspImpl(40))
	for i := 0; i < 3; i++ {
		l := app.AddTask("leaf", graph.Internal, dspImpl(40))
		app.AddChannel(c, l)
	}
	res, err := mapIt(t, app, p, WeightsBoth)
	if err != nil {
		t.Fatalf("MapApplication: %v", err)
	}
	checkConsistent(t, app, p, res, "test")
	if len(res.Origins) != 1 || res.Origins[0] == c {
		t.Errorf("Origins = %v, want a single leaf task", res.Origins)
	}
}

func TestFragmentationWeightPrefersBorder(t *testing.T) {
	// On an empty mesh with fragmentation-only weights, the origin
	// should land on a low-connectivity element (a corner, degree 2)
	// rather than the center (degree 4).
	p := platform.Mesh(5, 5, 2)
	app := graph.New("one")
	app.AddTask("t", graph.Internal, dspImpl(50))
	res, err := mapIt(t, app, p, WeightsFragmentation)
	if err != nil {
		t.Fatalf("MapApplication: %v", err)
	}
	if got := p.Degree(res.Assignment[0]); got != 2 {
		t.Errorf("origin degree = %d, want 2 (corner)", got)
	}
}

func TestMapGrowsCandidateSetAcrossRings(t *testing.T) {
	// Line platform; five 80% tasks all communicating with task 0:
	// every task needs its own element, so rings must expand to
	// distance 4 even though ring 1 already has elements.
	p := platform.New()
	var prev int
	for i := 0; i < 6; i++ {
		id := p.AddElement(platform.TypeDSP, "d", platform.DSPCapacity)
		if i > 0 {
			p.MustConnect(prev, id, 4)
		}
		prev = id
	}
	app := graph.New("fan")
	h := app.AddTask("hub", graph.Internal, dspImpl(80))
	for i := 0; i < 5; i++ {
		l := app.AddTask("leaf", graph.Internal, dspImpl(80))
		app.AddChannel(h, l)
	}
	res, err := mapIt(t, app, p, WeightsCommunication)
	if err != nil {
		t.Fatalf("MapApplication: %v", err)
	}
	checkConsistent(t, app, p, res, "test")
	if res.GAPInvocations < 2 {
		t.Errorf("GAPInvocations = %d, want ≥ 2 (candidate growth)", res.GAPInvocations)
	}
}

func TestMapFailureRollsBack(t *testing.T) {
	// Two connected DSPs plus an isolated one: binding's
	// location-free estimate accepts three 80% tasks, but the
	// mapping phase cannot reach the island and must roll back.
	p := platform.New()
	a := p.AddElement(platform.TypeDSP, "a", platform.DSPCapacity)
	b := p.AddElement(platform.TypeDSP, "b", platform.DSPCapacity)
	p.AddElement(platform.TypeDSP, "island", platform.DSPCapacity)
	p.MustConnect(a, b, 2)
	app := graph.New("big")
	for i := 0; i < 3; i++ {
		app.AddTask("t", graph.Internal, dspImpl(80))
	}
	for i := 0; i+1 < 3; i++ {
		app.AddChannel(i, i+1)
	}
	_, err := mapIt(t, app, p, WeightsCommunication)
	if err == nil {
		t.Fatal("expected mapping failure")
	}
	for _, e := range p.Elements() {
		if e.InUse() {
			t.Errorf("element %d still in use after failed mapping", e.ID)
		}
	}
}

func TestMapErrorMissingInstance(t *testing.T) {
	p := platform.Mesh(2, 2, 2)
	app := graph.New("a")
	app.AddTask("t", graph.Internal, dspImpl(10))
	b := mustBind(t, app, p)
	if _, err := MapApplication(app, p, b, Options{}); err == nil {
		t.Error("missing Instance must be rejected")
	}
}

func TestMapFixedElementSaturated(t *testing.T) {
	p := platform.MeshWithIO(2, 2, 2)
	ioIn := 4
	// Saturate the IO tile first.
	if err := p.Place(ioIn, platform.Occupant{App: "other", Task: 0},
		platform.IOCapacity); err != nil {
		t.Fatal(err)
	}
	app := graph.New("a")
	src := app.AddTask("src", graph.Input, graph.Implementation{
		Name: "io", Target: platform.TypeIO,
		Requires: resource.Of(5, 4, 1, 0), Cost: 1, ExecTime: 5,
	})
	app.Tasks[src].FixedElement = ioIn
	// Binding already fails here (fixed element saturated); if the
	// caller skips binding's check, mapping must also fail safely.
	if _, err := binding.Bind(app, p); err == nil {
		t.Error("binding should fail on saturated fixed element")
	}
}

func TestMapTwoAppsCoexist(t *testing.T) {
	p := platform.Mesh(4, 4, 4)
	mk := func(name string) *graph.Application {
		app := graph.New(name)
		for i := 0; i < 4; i++ {
			app.AddTask("t", graph.Internal, dspImpl(40))
		}
		for i := 0; i+1 < 4; i++ {
			app.AddChannel(i, i+1)
		}
		return app
	}
	app1, app2 := mk("one"), mk("two")
	b1 := mustBind(t, app1, p)
	res1, err := MapApplication(app1, p, b1, Options{Instance: "one", Weights: WeightsBoth})
	if err != nil {
		t.Fatalf("first app: %v", err)
	}
	b2 := mustBind(t, app2, p)
	res2, err := MapApplication(app2, p, b2, Options{Instance: "two", Weights: WeightsBoth})
	if err != nil {
		t.Fatalf("second app: %v", err)
	}
	checkConsistent(t, app1, p, res1, "one")
	checkConsistent(t, app2, p, res2, "two")

	// Unmap the first app; its elements free up, the second stays.
	Unmap(p, "one", app1)
	for _, task := range app1.Tasks {
		occ := platform.Occupant{App: "one", Task: task.ID}
		if p.Element(res1.Assignment[task.ID]).HostsTask(occ) {
			t.Errorf("task %d still placed after Unmap", task.ID)
		}
	}
	occ2 := platform.Occupant{App: "two", Task: 0}
	if !p.Element(res2.Assignment[0]).HostsTask(occ2) {
		t.Error("Unmap removed the wrong application")
	}
}

func TestMapBeamformingOnCRISP(t *testing.T) {
	p := platform.CRISP()
	ioIn := -1
	for _, e := range p.Elements() {
		if e.Name == "io-in" {
			ioIn = e.ID
		}
	}
	app := graph.Beamforming(graph.DefaultBeamforming(ioIn))
	b := mustBind(t, app, p)
	res, err := MapApplication(app, p, b, Options{Instance: "bf", Weights: WeightsBoth})
	if err != nil {
		t.Fatalf("beamforming mapping failed: %v", err)
	}
	checkConsistent(t, app, p, res, "bf")
	// All 45 DSPs must be occupied.
	usedDSPs := 0
	for _, e := range p.Elements() {
		if e.Type == platform.TypeDSP && e.InUse() {
			usedDSPs++
		}
	}
	if usedDSPs != 45 {
		t.Errorf("used DSPs = %d, want 45", usedDSPs)
	}
}

func TestMapExactSolverAlsoWorks(t *testing.T) {
	p := platform.Mesh(3, 3, 2)
	app := graph.New("a")
	for i := 0; i < 4; i++ {
		app.AddTask("t", graph.Internal, dspImpl(60))
	}
	app.AddChannel(0, 1)
	app.AddChannel(1, 2)
	app.AddChannel(2, 3)
	b := mustBind(t, app, p)
	res, err := MapApplication(app, p, b, Options{
		Instance: "x", Weights: WeightsCommunication, Solver: knapsack.Exact{},
	})
	if err != nil {
		t.Fatalf("MapApplication with exact solver: %v", err)
	}
	checkConsistent(t, app, p, res, "x")
}

// randomApp builds a random connected app of n tasks with moderate
// demands so most instances are mappable.
func randomApp(r *rand.Rand, n int) *graph.Application {
	app := graph.New("rand")
	for i := 0; i < n; i++ {
		share := int64(10 + r.Intn(60))
		app.AddTask("t", graph.Internal, dspImpl(share))
	}
	for i := 1; i < n; i++ {
		app.AddChannel(r.Intn(i), i)
	}
	return app
}

func TestPropertyMappingValidOrCleanRollback(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := platform.Irregular(14, seed)
		app := randomApp(r, 2+r.Intn(8))
		b, err := binding.Bind(app, p)
		if err != nil {
			return true // binding rejection is a valid outcome
		}
		w := []Weights{WeightsNone, WeightsCommunication, WeightsFragmentation, WeightsBoth}[r.Intn(4)]
		res, err := MapApplication(app, p, b, Options{Instance: "prop", Weights: w})
		if err != nil {
			// Rollback must leave the platform empty.
			for _, e := range p.Elements() {
				if e.InUse() {
					return false
				}
			}
			return true
		}
		// Success: every task on an element of the right type with
		// the demand accounted.
		for _, task := range app.Tasks {
			e := p.Element(res.Assignment[task.ID])
			if e == nil || e.Type != b.Target(task.ID) {
				return false
			}
			if !e.HostsTask(platform.Occupant{App: "prop", Task: task.ID}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPoolsNeverOvercommitted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := platform.Mesh(3, 3, 4)
		// Admit a stream of random apps until one fails; pools must
		// stay consistent throughout.
		for k := 0; k < 6; k++ {
			app := randomApp(r, 2+r.Intn(5))
			b, err := binding.Bind(app, p)
			if err != nil {
				break
			}
			_, err = MapApplication(app, p, b, Options{
				Instance: string(rune('a' + k)), Weights: WeightsBoth,
			})
			if err != nil {
				break
			}
		}
		for _, e := range p.Elements() {
			free := e.Pool().Free()
			if !free.NonNegative() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
