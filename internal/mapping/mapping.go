// Package mapping implements the paper's main contribution (§III):
// an incremental, divide-and-conquer task-mapping heuristic that
// assigns specific platform elements to the tasks of an application.
//
// The algorithm (MapApplication, paper Fig. 5) traverses the task
// graph and the platform simultaneously, trying to match their
// topological structure:
//
//  1. Tasks are grouped in sets T_i of equal undirected distance to
//     the origin tasks T_0 (tasks with a single mapping option, e.g.
//     location-fixed I/O).
//  2. For each T_i, the platform is searched by breadth-first search,
//     starting from the elements allocated in the previous iteration,
//     for enough candidate elements to host T_i — plus one additional
//     ring, so objectives other than communication distance (e.g.
//     fragmentation) have room to act.
//  3. The tasks of T_i are assigned to candidate elements by solving a
//     Generalized Assignment Problem (package gap); when tasks remain
//     unassigned, the candidate set is grown ring by ring and the GAP
//     solver resumes, reusing previous assignments and costs.
//
// The mapping objective is a pluggable cost function (§III-D)
// combining total communication distance (via a sparse distance
// matrix built during the search, with a high penalty for unknown
// distances) and external-resource-fragmentation bonuses, with a
// weight for each objective.
package mapping

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/binding"
	"repro/internal/gap"
	"repro/internal/graph"
	"repro/internal/knapsack"
	"repro/internal/platform"
	"repro/internal/resource"
)

// Weights steers the mapping cost function between its two objectives
// (paper §III-D, Figs. 8–10): minimizing communication distance and
// reducing external resource fragmentation.
type Weights struct {
	Communication float64
	Fragmentation float64
	// Wear steers placements away from elements with high lifetime
	// placement counts ("wear leveling", paper §III).
	Wear float64
	// LoadBalance steers placements away from highly utilized
	// elements ("load balancing", paper §III).
	LoadBalance float64
}

// The four configurations evaluated in the paper (Figs. 8 and 9).
var (
	WeightsNone          = Weights{}
	WeightsCommunication = Weights{Communication: 1}
	WeightsFragmentation = Weights{Fragmentation: 25}
	WeightsBoth          = Weights{Communication: 1, Fragmentation: 25}
)

// ParseWeights parses the command-line weight vocabulary shared by
// cmd/kairos and cmd/sim: one of the paper's preset names, or an
// explicit "C,F" pair of communication and fragmentation weights.
func ParseWeights(s string) (Weights, error) {
	switch s {
	case "none":
		return WeightsNone, nil
	case "communication":
		return WeightsCommunication, nil
	case "fragmentation":
		return WeightsFragmentation, nil
	case "both":
		return WeightsBoth, nil
	}
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return Weights{}, fmt.Errorf("mapping: bad weights %q (want C,F or a preset)", s)
	}
	c, errC := strconv.ParseFloat(parts[0], 64)
	f, errF := strconv.ParseFloat(parts[1], 64)
	if errC != nil || errF != nil {
		return Weights{}, fmt.Errorf("mapping: bad weights %q", s)
	}
	return Weights{Communication: c, Fragmentation: f}, nil
}

// Options configures MapApplication.
type Options struct {
	// Instance names this admission; placements are recorded on the
	// platform as occupants {Instance, taskID}. Required.
	Instance string
	// Weights of the cost function objectives.
	Weights Weights
	// Solver is the knapsack subroutine for the GAP solver;
	// defaults to knapsack.Greedy{} (the paper's O(T²) routine).
	Solver knapsack.Solver
	// ExtraRings is the number of additional BFS expansion steps
	// performed after enough candidate elements have been found
	// (paper §III-B); defaults to 1. Set to a negative value for no
	// extra expansion (stop at exactly enough candidates).
	ExtraRings int
	// DistancePenalty is the cost charged for a communication pair
	// whose distance is missing from the sparse matrix ("a relative
	// high penalty", §III-D). Defaults to 64 (about twice the CRISP
	// diameter).
	DistancePenalty int
	// CrossPackagePenalty is the link weight of a hop that crosses a
	// package boundary when estimating communication distances.
	// Inter-package bridges aggregate whole packages' traffic, so
	// treating a bridge hop like a mesh hop lets sub-problems leak
	// across packages and exhaust the bridges. Defaults to 4; set to
	// 1 for pure hop distances.
	CrossPackagePenalty int
}

func (o Options) withDefaults() Options {
	if o.Solver == nil {
		o.Solver = knapsack.Greedy{}
	}
	switch {
	case o.ExtraRings == 0:
		o.ExtraRings = 1
	case o.ExtraRings < 0:
		o.ExtraRings = 0
	}
	if o.DistancePenalty == 0 {
		o.DistancePenalty = 64
	}
	if o.CrossPackagePenalty == 0 {
		o.CrossPackagePenalty = 4
	}
	return o
}

// Result is a successful mapping: the execution element per task, plus
// introspection counters.
type Result struct {
	// Assignment maps task ID → element ID.
	Assignment []int
	// Origins are the tasks that formed the partial mapping M0.
	Origins []int
	// GAPInvocations counts SolveGAP calls (grows when candidate
	// sets had to be expanded, Fig. 4).
	GAPInvocations int
	// Rings counts BFS expansion steps over all iterations.
	Rings int
}

// Error is a mapping-phase failure.
type Error struct {
	Task   int // a task that could not be mapped, or -1
	Reason string
}

func (e *Error) Error() string {
	if e.Task >= 0 {
		return fmt.Sprintf("mapping: task %d: %s", e.Task, e.Reason)
	}
	return "mapping: " + e.Reason
}

// mapper carries the state of one MapApplication run. Mappers are
// pooled: one runs per admission attempt, and all of its working
// state — the distance matrix, the GAP state, the per-task and
// per-element marks, the search buffers — is reusable, so repeated
// admissions allocate only what they return (the Assignment slice).
type mapper struct {
	app    *graph.Application
	p      *platform.Platform
	bind   *binding.Binding
	opts   Options
	dm     *platform.DistanceMatrix
	weight platform.LinkWeight
	elemOf []int // task → element, -1 while unmapped
	placed []int // tasks committed to the platform, for rollback
	// curState is the GAP state of the level being solved; the
	// internal-contention term of the cost function reads tentative
	// assignments from it (the paper allows cost functions that
	// depend on the partial mapping M_i, at re-evaluation cost).
	curState *gap.State
	res      Result

	// Pooled scratch, reused across runs.
	state       *gap.State // backing store for curState
	isPeer      []bool     // per task: undirected peer of the task being costed
	inTi        []bool     // per task: member of the current level
	neigh       []int      // neighbor iteration buffer
	avail       []int      // availableElements buffer
	todo        []int      // unmapped tasks of the current level
	commitBuf   []int      // sorted commit order
	originMark  []bool     // per element: BFS origin of the current level
	elemOrigins []int      // BFS origins of the current level
	setDist     []int      // per element: distance to the origin set
	distBuf     []int      // WeightedDistancesInto buffer
	radii       []int      // distinct expansion radii
	candidates  []int      // candidate elements of the current level
	oneOrigin   [1]int     // single-origin slice for WeightedDistancesInto
	capBuf      resource.Vector
}

var mapperPool = sync.Pool{
	New: func() any {
		return &mapper{dm: platform.NewDistanceMatrix(), state: gap.NewState()}
	},
}

// boolsFor returns s resized to n with every entry false.
func boolsFor(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// intsFor returns s resized to n (contents unspecified).
func intsFor(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// newMapper readies a pooled mapper for one run.
func newMapper(app *graph.Application, p *platform.Platform, bind *binding.Binding, opts Options) *mapper {
	m := mapperPool.Get().(*mapper)
	m.app, m.p, m.bind, m.opts = app, p, bind, opts.withDefaults()
	m.weight = platform.CrossPackageWeight(p, m.opts.CrossPackagePenalty)
	m.dm.Reset()
	m.res = Result{}
	m.elemOf = intsFor(m.elemOf, len(app.Tasks))
	for i := range m.elemOf {
		m.elemOf[i] = -1
	}
	m.placed = m.placed[:0]
	m.isPeer = boolsFor(m.isPeer, len(app.Tasks))
	m.curState = nil
	return m
}

// release returns the mapper to the pool, dropping the references that
// would otherwise pin the caller's application and platform.
func (m *mapper) release() {
	m.app, m.p, m.bind = nil, nil, nil
	m.weight = nil
	m.curState = nil
	m.res = Result{}
	mapperPool.Put(m)
}

// result copies the run's outcome out of the pooled mapper.
func (m *mapper) result() *Result {
	m.res.Assignment = append([]int(nil), m.elemOf...)
	res := m.res
	return &res
}

// MapApplication finds specific locations for every task of the
// application, committing placements to the platform. On failure, all
// placements made by this call are rolled back and an *Error is
// returned.
func MapApplication(app *graph.Application, p *platform.Platform, bind *binding.Binding, opts Options) (*Result, error) {
	if opts.Instance == "" {
		return nil, &Error{Task: -1, Reason: "Options.Instance must be set"}
	}
	m := newMapper(app, p, bind, opts)
	defer m.release()
	if err := m.run(); err != nil {
		m.rollback()
		return nil, err
	}
	return m.result(), nil
}

// Unmap releases every placement of the named application instance
// from the platform (the inverse of MapApplication). It scans every
// element for the instance's occupants; callers that kept the
// execution layout should use UnmapAssigned, the O(T) variant.
func Unmap(p *platform.Platform, instance string, app *graph.Application) {
	for _, t := range app.Tasks {
		for _, e := range p.Elements() {
			occ := platform.Occupant{App: instance, Task: t.ID}
			if e.HostsTask(occ) {
				_ = p.Remove(e.ID, occ)
			}
		}
	}
}

// UnmapAssigned releases the placements recorded in assignment (task
// ID → element ID, negative for unplaced) for the named instance: the
// O(T) inverse of MapApplication for callers that kept the layout,
// instead of Unmap's full platform scan. The resource manager releases
// every admission through this on Release, Readmit and rollback.
func UnmapAssigned(p *platform.Platform, instance string, app *graph.Application, assignment []int) {
	for _, t := range app.Tasks {
		if t.ID < 0 || t.ID >= len(assignment) || assignment[t.ID] < 0 {
			continue
		}
		_ = p.Remove(assignment[t.ID], platform.Occupant{App: instance, Task: t.ID})
	}
}

// av implements the availability predicate av(e, t): the element can
// fulfill the resource requirements of the implementation bound to t
// (paper §III-B), honoring fixed locations and enabled state.
func (m *mapper) av(e *platform.Element, task int) bool {
	if e == nil || !e.Enabled() {
		return false
	}
	if fixed := m.app.Tasks[task].FixedElement; fixed != graph.NoFixedElement && fixed != e.ID {
		return false
	}
	im := m.bind.Implementation(task)
	if e.Type != im.Target {
		return false
	}
	return e.Pool().Fits(im.Requires)
}

// availableElements returns the IDs of all elements available for the
// task, in ID order. The returned slice is the mapper's reusable
// buffer, valid until the next call.
func (m *mapper) availableElements(task int) []int {
	m.avail = m.avail[:0]
	for _, e := range m.p.Elements() {
		if m.av(e, task) {
			m.avail = append(m.avail, e.ID)
		}
	}
	return m.avail
}

func (m *mapper) place(task, elem int) error {
	occ := platform.Occupant{App: m.opts.Instance, Task: task}
	if err := m.p.Place(elem, occ, m.bind.Demand(task)); err != nil {
		return err
	}
	m.elemOf[task] = elem
	m.placed = append(m.placed, task)
	return nil
}

func (m *mapper) rollback() {
	for _, task := range m.placed {
		occ := platform.Occupant{App: m.opts.Instance, Task: task}
		_ = m.p.Remove(m.elemOf[task], occ)
		m.elemOf[task] = -1
	}
	m.placed = m.placed[:0]
}

// cost is the mapping cost function (paper §III-D).
//
// Communication term: the total communication distance between the
// candidate element e and the elements of t's already-mapped
// communication peers, weighted by channel token size. Distances come
// from the sparse matrix; a lookup miss is charged DistancePenalty.
// Unmapped peers are left out ("the distance is inherently unknown").
//
// Fragmentation term: e receives decreasing bonuses for neighbor
// elements that retain communication peers of t (3), tasks from the
// same application (2), or tasks from other applications (1); plus a
// connectivity bonus for low-degree elements (chip borders), so using
// them now avoids isolating them later.
func (m *mapper) cost(task, elem int) float64 {
	im := m.bind.Implementation(task)
	c := im.Cost

	if w := m.opts.Weights.Communication; w > 0 {
		comm := 0.0
		for _, chID := range m.app.InChannels(task) {
			comm += m.chargeComm(task, elem, chID)
		}
		for _, chID := range m.app.OutChannels(task) {
			comm += m.chargeComm(task, elem, chID)
		}
		c += w * comm
	}

	if w := m.opts.Weights.Fragmentation; w > 0 {
		bonus := 0.0
		// Mark the task's undirected peers in the per-task scratch;
		// cleared below. cost runs once per (task, element) pair per
		// GAP pass, so a per-call map here dominated the allocation
		// profile of the whole admission workflow.
		if len(m.isPeer) < len(m.app.Tasks) {
			m.isPeer = boolsFor(m.isPeer, len(m.app.Tasks))
		}
		peers := m.app.UndirectedNeighbors(task)
		for _, nb := range peers {
			m.isPeer[nb] = true
		}
		m.neigh = m.p.AppendNeighbors(m.neigh[:0], elem)
		for _, nID := range m.neigh {
			n := m.p.Element(nID)
			switch {
			case n.HostsPeer(m.opts.Instance, m.isPeer):
				bonus += 3
			case n.HostsApp(m.opts.Instance):
				bonus += 2
			case n.InUse():
				bonus += 1
			}
		}
		for _, nb := range peers {
			m.isPeer[nb] = false
		}
		// Connectivity: favor border elements (low degree). The
		// CRISP meshes have degree ≤ 4 inside packages.
		bonus += math.Max(0, 4-float64(m.p.Degree(elem)))
		// Internal contention (paper §III-D: the weights "can steer
		// the resource manager towards minimal internal or external
		// contention"): penalize packages already crowded with
		// same-application tasks — they compete for the package's
		// elements and bridge links. The penalty is blind to task
		// identity, so on its own it scatters an application over
		// the chip; only together with the communication-distance
		// objective (which pulls peers back together) do tree-like
		// applications pack group-per-package, which is why the
		// paper's Fig. 10 admits only specific weight ratios.
		c -= w * bonus
		c += w * m.packageLoad(task, elem)
	}

	if w := m.opts.Weights.Wear; w > 0 {
		c += w * float64(m.p.Element(elem).Wear())
	}
	if w := m.opts.Weights.LoadBalance; w > 0 {
		c += w * m.p.Element(elem).Pool().Utilization()
	}
	return c
}

// packageLoad counts the same-application tasks already assigned
// (committed or tentatively, via the current GAP state) to elements of
// elem's package.
func (m *mapper) packageLoad(task, elem int) float64 {
	pkg := m.p.Element(elem).Package
	if pkg < 0 {
		return 0
	}
	load := 0.0
	for _, t := range m.app.Tasks {
		if t.ID == task {
			continue
		}
		e := m.elemOf[t.ID]
		if e < 0 && m.curState != nil {
			if te, ok := m.curState.AssignedTo(t.ID); ok {
				e = te
			}
		}
		if e >= 0 && m.p.Element(e).Package == pkg {
			load++
		}
	}
	return load
}

// chargeComm is the communication term of one channel: the distance
// between elem and the element of the channel's other endpoint,
// weighted by token size. Unmapped peers contribute nothing ("the
// distance is inherently unknown"); a distance-matrix miss is charged
// DistancePenalty.
func (m *mapper) chargeComm(task, elem, chID int) float64 {
	ch := m.app.Channels[chID]
	peer := ch.Src
	if peer == task {
		peer = ch.Dst
	}
	pe := m.elemOf[peer]
	if pe < 0 {
		return 0
	}
	d, ok := m.dm.Lookup(elem, pe)
	if !ok {
		d = m.opts.DistancePenalty
	}
	return float64(d) * float64(ch.TokenSize)
}

// gapInstance adapts the mapper to the gap.Instance interface.
type gapInstance struct{ m *mapper }

func (g gapInstance) Demand(task int) resource.Vector { return g.m.bind.Demand(task) }

// Capacity returns the element's free resources in the mapper's reused
// buffer; the value is valid until the next Capacity call, which is
// all the GAP solver needs (it hands the vector straight to the
// knapsack, which copies what it mutates).
func (g gapInstance) Capacity(elem int) resource.Vector {
	g.m.capBuf = g.m.p.Element(elem).Pool().FreeInto(g.m.capBuf)
	return g.m.capBuf
}
func (g gapInstance) Cost(task, elem int) (float64, bool) {
	e := g.m.p.Element(elem)
	if !g.m.av(e, task) {
		return 0, false
	}
	return g.m.cost(task, elem), true
}

// run executes Fig. 5.
func (m *mapper) run() error {
	origins, err := m.seedM0()
	if err != nil {
		return err
	}
	m.res.Origins = origins

	levels := m.app.Neighborhoods(origins)
	for li := 1; li < len(levels); li++ {
		ti := levels[li]
		// Skip tasks already mapped (fixed tasks can appear in
		// later neighborhoods of disconnected fragments).
		todo := m.todo[:0]
		for _, t := range ti {
			if m.elemOf[t] < 0 {
				todo = append(todo, t)
			}
		}
		m.todo = todo
		if len(todo) == 0 {
			continue
		}
		if err := m.mapLevel(todo); err != nil {
			return err
		}
	}
	return nil
}

// seedM0 computes and commits the initial partial mapping M0: tasks
// with exactly one available element (Fig. 5 line 2); when there are
// none, the lowest-degree task is mapped to its cheapest element
// (lines 3–4), which the fragmentation objective biases toward
// isolation-prone, low-connectivity elements.
func (m *mapper) seedM0() ([]int, error) {
	var origins []int
	for _, t := range m.app.Tasks {
		av := m.availableElements(t.ID)
		if t.FixedElement != graph.NoFixedElement && len(av) == 0 {
			return nil, &Error{Task: t.ID, Reason: "fixed element cannot host the task"}
		}
		if len(av) == 1 {
			if err := m.place(t.ID, av[0]); err != nil {
				return nil, &Error{Task: t.ID, Reason: "sole available element saturated: " + err.Error()}
			}
			origins = append(origins, t.ID)
		}
	}
	if len(origins) > 0 {
		return origins, nil
	}

	// M0 empty: pick a starting point. Lowest degree first (δ(T)),
	// lowest-cost available element.
	_, t0 := m.app.MinDegree()
	if t0 < 0 {
		return nil, &Error{Task: -1, Reason: "application has no tasks"}
	}
	av := m.availableElements(t0)
	if len(av) == 0 {
		return nil, &Error{Task: t0, Reason: "no available element for origin task"}
	}
	// Record distances from every available element so the cost
	// function sees the platform topology for the origin choice.
	best, bestCost := -1, math.Inf(1)
	for _, e := range av {
		if c := m.cost(t0, e); c < bestCost {
			best, bestCost = e, c
		}
	}
	if err := m.place(t0, best); err != nil {
		return nil, &Error{Task: t0, Reason: err.Error()}
	}
	return []int{t0}, nil
}

// mapLevel maps one neighborhood T_i (Fig. 5 lines 7–14).
func (m *mapper) mapLevel(ti []int) error {
	// E+ and E− (lines 7–8): elements of mapped tasks communicating
	// with T_i, split by channel direction. Both sides seed the BFS.
	inTi := boolsFor(m.inTi, len(m.app.Tasks))
	m.inTi = inTi
	for _, t := range ti {
		inTi[t] = true
	}
	originMark := boolsFor(m.originMark, m.p.NumElements())
	m.originMark = originMark
	origins := m.elemOrigins[:0]
	for _, ch := range m.app.Channels {
		if inTi[ch.Dst] && m.elemOf[ch.Src] >= 0 && !originMark[m.elemOf[ch.Src]] {
			originMark[m.elemOf[ch.Src]] = true
			origins = append(origins, m.elemOf[ch.Src])
		}
		if inTi[ch.Src] && m.elemOf[ch.Dst] >= 0 && !originMark[m.elemOf[ch.Dst]] {
			originMark[m.elemOf[ch.Dst]] = true
			origins = append(origins, m.elemOf[ch.Dst])
		}
	}
	if len(origins) == 0 {
		// Disconnected fragment: search from all mapped elements.
		for _, e := range m.elemOf {
			if e >= 0 && !originMark[e] {
				originMark[e] = true
				origins = append(origins, e)
			}
		}
	}
	sort.Ints(origins)
	m.elemOrigins = origins

	// Exact per-origin weighted distances populate the sparse
	// matrix; the set-distance (minimum over origins) defines the
	// expansion rings. Cross-package hops weigh more than mesh hops
	// (Options.CrossPackagePenalty), so candidate search and the
	// communication cost both prefer staying inside a package.
	setDist := intsFor(m.setDist, m.p.NumElements())
	m.setDist = setDist
	for i := range setDist {
		setDist[i] = platform.Unreachable
	}
	for _, o := range origins {
		m.oneOrigin[0] = o
		m.distBuf = m.p.WeightedDistancesInto(m.oneOrigin[:], m.weight, m.distBuf)
		for id, d := range m.distBuf {
			if d == platform.Unreachable {
				continue
			}
			m.dm.Record(o, id, d)
			if setDist[id] == platform.Unreachable || d < setDist[id] {
				setDist[id] = d
			}
		}
	}
	// Expansion proceeds over the distinct distance values that
	// actually occur: weighted distances are sparse in ℕ, and letting
	// empty integer "rings" consume the extra search step would solve
	// before any new candidate arrived.
	radii := m.radii[:0]
	for _, d := range setDist {
		if d != platform.Unreachable {
			radii = append(radii, d)
		}
	}
	sort.Ints(radii)
	// Dedupe in place (the slice is sorted).
	uniq := radii[:0]
	for i, d := range radii {
		if i == 0 || d != radii[i-1] {
			uniq = append(uniq, d)
		}
	}
	radii = uniq
	m.radii = radii

	state := m.state
	state.Reset()
	m.curState = state
	inst := gapInstance{m: m}
	candidates := m.candidates[:0]
	enough := false
	extra := 0

	for ri, radius := range radii {
		for id, d := range setDist {
			if d == radius {
				candidates = append(candidates, id)
			}
		}
		m.candidates = candidates
		m.res.Rings++

		if !enough {
			if m.usableCount(candidates, ti) < len(ti) {
				continue // keep growing before the first solve
			}
			enough = true
			if extra < m.opts.ExtraRings && ri+1 < len(radii) {
				extra++
				continue // the "single additional search step"
			}
		}

		m.res.GAPInvocations++
		if state.Process(inst, ti, candidates, m.opts.Solver) {
			return m.commitLevel(ti, state)
		}
	}

	// Candidate set exhausted; one final attempt with everything
	// discovered (covers the case where the last rings arrived after
	// the previous solve).
	m.res.GAPInvocations++
	if state.Process(inst, ti, candidates, m.opts.Solver) {
		return m.commitLevel(ti, state)
	}
	un := state.Unassigned(ti)
	return &Error{Task: un[0], Reason: fmt.Sprintf(
		"no feasible element among %d candidates (%d tasks unassigned)", len(candidates), len(un))}
}

// usableCount counts candidate elements available for ≥1 task of ti.
func (m *mapper) usableCount(elems, ti []int) int {
	n := 0
	for _, e := range elems {
		el := m.p.Element(e)
		for _, t := range ti {
			if m.av(el, t) {
				n++
				break
			}
		}
	}
	return n
}

// commitLevel places the GAP assignment of one level onto the
// platform.
func (m *mapper) commitLevel(ti []int, state *gap.State) error {
	// Deterministic order.
	tasks := append(m.commitBuf[:0], ti...)
	m.commitBuf = tasks
	sort.Ints(tasks)
	for _, t := range tasks {
		e, ok := state.AssignedTo(t)
		if !ok {
			return &Error{Task: t, Reason: "internal: task missing from GAP assignment"}
		}
		if err := m.place(t, e); err != nil {
			// The GAP solver's view of capacity was per sub-problem
			// start; commits are re-checked here. A failure means
			// the solution overcommitted, which the knapsack
			// capacity check prevents — treat as mapping failure.
			return &Error{Task: t, Reason: "commit failed: " + err.Error()}
		}
	}
	return nil
}
