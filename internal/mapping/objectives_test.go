package mapping

import (
	"testing"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/platform"
)

// singleTaskApp builds a one-task app demanding a modest DSP share.
func singleTaskApp() *graph.Application {
	app := graph.New("one")
	app.AddTask("t", graph.Internal, dspImpl(30))
	return app
}

func TestWearLevelingRotatesElements(t *testing.T) {
	// Repeatedly admit and release a single task with the wear
	// objective: placements must rotate over elements instead of
	// re-using the same one.
	p := platform.Mesh(2, 2, 2)
	used := make(map[int]bool)
	for i := 0; i < 4; i++ {
		app := singleTaskApp()
		b, err := binding.Bind(app, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MapApplication(app, p, b, Options{
			Instance: "wear", Weights: Weights{Wear: 1},
		})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		used[res.Assignment[0]] = true
		Unmap(p, "wear", app)
	}
	if len(used) != 4 {
		t.Errorf("wear leveling used %d distinct elements over 4 rounds, want 4", len(used))
	}
}

func TestWithoutWearSticksToOneElement(t *testing.T) {
	// Control: without any objective, the deterministic search
	// re-uses the same element every round.
	p := platform.Mesh(2, 2, 2)
	used := make(map[int]bool)
	for i := 0; i < 4; i++ {
		app := singleTaskApp()
		b, err := binding.Bind(app, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MapApplication(app, p, b, Options{Instance: "ctl"})
		if err != nil {
			t.Fatal(err)
		}
		used[res.Assignment[0]] = true
		Unmap(p, "ctl", app)
	}
	if len(used) != 1 {
		t.Errorf("control run used %d distinct elements, want 1", len(used))
	}
}

func TestLoadBalanceSpreadsTasks(t *testing.T) {
	// Two independent (channel-free) tasks at 30%: with the
	// load-balance objective they land on different elements; the
	// plain first-fit search would co-locate them.
	p := platform.Mesh(2, 1, 2)
	app := graph.New("two")
	app.AddTask("a", graph.Internal, dspImpl(30))
	app.AddTask("b", graph.Internal, dspImpl(30))
	b, err := binding.Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MapApplication(app, p, b, Options{
		Instance: "lb", Weights: Weights{LoadBalance: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[0] == res.Assignment[1] {
		t.Errorf("load balancing co-located both tasks on element %d", res.Assignment[0])
	}
}

func TestLoadBalanceAvoidsBusyElement(t *testing.T) {
	p := platform.Mesh(2, 1, 2)
	// Pre-load element 0 to 50%.
	if err := p.Place(0, platform.Occupant{App: "other", Task: 0},
		dspImpl(50).Requires); err != nil {
		t.Fatal(err)
	}
	app := singleTaskApp()
	b, err := binding.Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MapApplication(app, p, b, Options{
		Instance: "lb", Weights: Weights{LoadBalance: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment[0] != 1 {
		t.Errorf("load balancing picked busy element %d, want 1", res.Assignment[0])
	}
}

func TestWearPersistsAcrossResetAndClone(t *testing.T) {
	p := platform.Mesh(2, 1, 2)
	if err := p.Place(0, platform.Occupant{App: "a", Task: 0}, dspImpl(10).Requires); err != nil {
		t.Fatal(err)
	}
	if got := p.Element(0).Wear(); got != 1 {
		t.Fatalf("wear = %d, want 1", got)
	}
	p.Reset()
	if got := p.Element(0).Wear(); got != 1 {
		t.Errorf("wear after Reset = %d, want 1 (wear is lifetime)", got)
	}
	q := p.Clone()
	if got := q.Element(0).Wear(); got != 1 {
		t.Errorf("wear after Clone = %d, want 1", got)
	}
}
