package mapping

import "testing"

func TestParseWeights(t *testing.T) {
	cases := []struct {
		in         string
		comm, frag float64
	}{
		{"none", 0, 0},
		{"communication", 1, 0},
		{"fragmentation", 0, 25},
		{"both", 1, 25},
		{"3,400", 3, 400},
		{"0.5,12.5", 0.5, 12.5},
	}
	for _, c := range cases {
		w, err := ParseWeights(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if w.Communication != c.comm || w.Fragmentation != c.frag {
			t.Errorf("%q = %+v, want {%g %g}", c.in, w, c.comm, c.frag)
		}
	}
	for _, bad := range []string{"", "x", "1;2", "a,b", "1,2,3extra,"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Errorf("%q should be rejected", bad)
		}
	}
}
