package mapping

import (
	"testing"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/resource"
)

// costHarness builds a mapper around a 2-task app (t0 → t1) on the
// given platform with t0 pre-placed, so cost(t1, e) can be probed
// directly.
func costHarness(t *testing.T, p *platform.Platform, t0elem int, w Weights) *mapper {
	t.Helper()
	app := graph.New("probe")
	app.AddTask("t0", graph.Internal, dspImpl(30))
	app.AddTask("t1", graph.Internal, dspImpl(30))
	app.AddChannelRated(0, 1, 1, 1, 2)
	bind, err := binding.Bind(app, p)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	m := &mapper{
		app: app, p: p, bind: bind,
		opts:   Options{Instance: "probe", Weights: w}.withDefaults(),
		dm:     platform.NewDistanceMatrix(),
		elemOf: []int{-1, -1},
	}
	if err := m.place(0, t0elem); err != nil {
		t.Fatalf("place: %v", err)
	}
	return m
}

func TestCostCommunicationPrefersCloser(t *testing.T) {
	p := platform.Mesh(5, 1, 2) // line 0-1-2-3-4
	m := costHarness(t, p, 0, WeightsCommunication)
	// Record distances as the search would.
	m.dm.RecordBFS(p, []int{0})
	near := m.cost(1, 1)
	far := m.cost(1, 4)
	if near >= far {
		t.Errorf("cost(adjacent)=%v should be below cost(far)=%v", near, far)
	}
}

func TestCostMissingDistanceCharged(t *testing.T) {
	p := platform.Mesh(5, 1, 2)
	m := costHarness(t, p, 0, WeightsCommunication)
	// No distances recorded: every element gets the miss penalty, so
	// near and far cost the same.
	near := m.cost(1, 1)
	far := m.cost(1, 4)
	if near != far {
		t.Errorf("without recorded distances costs should equal the penalty: %v vs %v", near, far)
	}
	// And the penalty exceeds any real recorded distance cost.
	m.dm.RecordBFS(p, []int{0})
	if got := m.cost(1, 4); got >= near {
		t.Errorf("recorded-distance cost %v should be below penalty cost %v", got, near)
	}
}

func TestCostUnmappedPeersLeftOut(t *testing.T) {
	// A task whose only peer is unmapped has no communication cost
	// at any element: all costs equal the implementation base cost.
	p := platform.Mesh(3, 1, 2)
	app := graph.New("probe")
	app.AddTask("a", graph.Internal, dspImpl(30))
	app.AddTask("b", graph.Internal, dspImpl(30))
	app.AddChannel(0, 1)
	bind, err := binding.Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	m := &mapper{
		app: app, p: p, bind: bind,
		opts:   Options{Instance: "probe", Weights: WeightsCommunication}.withDefaults(),
		dm:     platform.NewDistanceMatrix(),
		elemOf: []int{-1, -1},
	}
	if c0, c2 := m.cost(1, 0), m.cost(1, 2); c0 != c2 {
		t.Errorf("costs with unmapped peer differ: %v vs %v", c0, c2)
	}
}

func TestCostFragmentationBonuses(t *testing.T) {
	p := platform.Mesh(3, 1, 2) // 0-1-2
	m := costHarness(t, p, 0, WeightsFragmentation)
	// Element 1 is adjacent to element 0, which hosts t1's peer t0:
	// the +3 peer bonus applies. Element 2's neighbor (1) is empty.
	adjacentToPeer := m.cost(1, 1)
	isolated := m.cost(1, 2)
	if adjacentToPeer >= isolated {
		t.Errorf("peer-adjacent cost %v should be below isolated %v", adjacentToPeer, isolated)
	}
}

func TestCostFragmentationOtherAppBonusOrder(t *testing.T) {
	// Bonuses must decrease: peer (3) > same app (2) > other app (1).
	// Probe interior elements only — line ends have a different
	// connectivity bonus, which would confound the comparison.
	p := platform.Mesh(9, 1, 2)
	m := costHarness(t, p, 1, WeightsFragmentation) // t0 (peer) on element 1
	// Element 5 hosts a task of another application.
	if err := p.Place(5, platform.Occupant{App: "other", Task: 0},
		resource.Of(10, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	nearPeer := m.cost(1, 2)    // neighbor 1 hosts the peer
	nearOther := m.cost(1, 4)   // neighbor 5 hosts another app
	nearNothing := m.cost(1, 7) // neighbors 6 and 8 empty
	if !(nearPeer < nearOther && nearOther < nearNothing) {
		t.Errorf("bonus ordering violated: peer=%v other=%v none=%v",
			nearPeer, nearOther, nearNothing)
	}
}

func TestCostConnectivityBonus(t *testing.T) {
	// On an empty mesh with fragmentation weights, corner elements
	// (degree 2) must cost less than the center (degree 4).
	p := platform.Mesh(3, 3, 2)
	app := graph.New("probe")
	app.AddTask("a", graph.Internal, dspImpl(30))
	bind, err := binding.Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	m := &mapper{
		app: app, p: p, bind: bind,
		opts:   Options{Instance: "probe", Weights: WeightsFragmentation}.withDefaults(),
		dm:     platform.NewDistanceMatrix(),
		elemOf: []int{-1},
	}
	corner := m.cost(0, 0) // degree 2
	center := m.cost(0, 4) // degree 4
	if corner >= center {
		t.Errorf("corner cost %v should be below center %v", corner, center)
	}
}

func TestCostInternalContention(t *testing.T) {
	p := platform.CRISP()
	m := costHarness(t, p, firstDSPInPackage(t, p, 0), WeightsFragmentation)
	// t0 occupies a package-0 DSP and is t1's peer, so it is counted
	// in package 0's load. Compare two otherwise-similar candidates:
	// another package-0 DSP (load 1) vs a package-1 DSP (load 0).
	// They differ also in bonuses; use non-adjacent elements to
	// isolate the load term.
	in0 := otherDSPInPackage(t, p, 0, m.elemOf[0])
	in1 := firstDSPInPackage(t, p, 1)
	// Strip neighbor effects: pick elements with no used neighbors.
	c0, c1 := m.cost(1, in0), m.cost(1, in1)
	if c0 <= c1-0.0001 {
		t.Errorf("crowded-package cost %v should not be clearly below empty-package %v", c0, c1)
	}
}

func firstDSPInPackage(t *testing.T, p *platform.Platform, pkg int) int {
	t.Helper()
	for _, e := range p.Elements() {
		if e.Type == platform.TypeDSP && e.Package == pkg {
			return e.ID
		}
	}
	t.Fatalf("no DSP in package %d", pkg)
	return -1
}

func otherDSPInPackage(t *testing.T, p *platform.Platform, pkg, not int) int {
	t.Helper()
	for _, e := range p.Elements() {
		if e.Type == platform.TypeDSP && e.Package == pkg && e.ID != not {
			// Avoid direct neighbors of `not` so the peer bonus does
			// not interfere.
			adjacent := false
			for _, n := range p.Neighbors(e.ID) {
				if n == not {
					adjacent = true
				}
			}
			if !adjacent {
				return e.ID
			}
		}
	}
	t.Fatalf("no second DSP in package %d", pkg)
	return -1
}

func TestNoExtraRingOption(t *testing.T) {
	opts := Options{Instance: "x", ExtraRings: -1}.withDefaults()
	if opts.ExtraRings != 0 {
		t.Errorf("ExtraRings(-1) = %d, want 0", opts.ExtraRings)
	}
	opts = Options{Instance: "x"}.withDefaults()
	if opts.ExtraRings != 1 {
		t.Errorf("default ExtraRings = %d, want 1", opts.ExtraRings)
	}
	opts = Options{Instance: "x", ExtraRings: 3}.withDefaults()
	if opts.ExtraRings != 3 {
		t.Errorf("explicit ExtraRings = %d, want 3", opts.ExtraRings)
	}
}

func TestMapWithNoExtraRings(t *testing.T) {
	p := platform.Mesh(4, 4, 2)
	app := graph.New("a")
	for i := 0; i < 4; i++ {
		app.AddTask("t", graph.Internal, dspImpl(60))
	}
	for i := 0; i+1 < 4; i++ {
		app.AddChannel(i, i+1)
	}
	bind, err := binding.Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MapApplication(app, p, bind, Options{
		Instance: "x", Weights: WeightsCommunication, ExtraRings: -1,
	})
	if err != nil {
		t.Fatalf("MapApplication without extra rings: %v", err)
	}
	checkConsistent(t, app, p, res, "x")
}
