// Package rebalance implements the cluster's background load
// rebalancer: a loop that samples the shards' lock-free load gauges,
// scores the imbalance as the used-share spread between the hottest
// and coldest active shard, and migrates admissions off the hot shard
// (make-before-break, via Cluster.Migrate) when the policy says to.
//
// Two mechanisms keep it from thrashing. A hysteresis band: the
// threshold policy starts acting only when the spread exceeds the
// High watermark and keeps acting until it falls below Low — one
// migration moves a whole application's footprint, so a single
// watermark would oscillate whenever an application's share exceeds
// the measurement noise. And a per-tick migration budget: each tick
// moves at most Budget applications, bounding the disturbance rate no
// matter how wrong the distribution is.
package rebalance

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/kairos"
)

// The pluggable policies (Config.Policy).
const (
	// PolicyOff never migrates; the rebalancer only observes.
	PolicyOff = "off"
	// PolicyThreshold migrates only while the hysteresis latch is set:
	// set when the spread exceeds High, cleared when it falls below
	// Low.
	PolicyThreshold = "threshold"
	// PolicyPeriodic migrates on every tick whose spread exceeds Low,
	// with no latch — simpler, but it chases transient skew the
	// threshold policy would ignore.
	PolicyPeriodic = "periodic"
)

// Policies lists the policy names, for flag help and validation.
func Policies() []string { return []string{PolicyOff, PolicyThreshold, PolicyPeriodic} }

// Config parameterizes a Rebalancer. The zero value is not valid; use
// New, which applies the documented defaults to zero fields.
type Config struct {
	// Policy is one of Policies() (default PolicyOff).
	Policy string
	// High and Low are the hysteresis watermarks on the used-share
	// spread (defaults 0.20 and 0.10). Low also serves as the
	// act-at-all floor of the periodic policy.
	High, Low float64
	// Budget caps migrations per tick (default 2).
	Budget int
	// Interval is the Run loop period (default 5s).
	Interval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = PolicyOff
	}
	if c.High == 0 {
		c.High = 0.20
	}
	if c.Low == 0 {
		c.Low = 0.10
	}
	if c.Budget == 0 {
		c.Budget = 2
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Second
	}
	return c
}

// Move records one migration a tick performed: the old and new
// cluster-scoped instance names and the destination shard.
type Move struct {
	From  string
	To    string
	Shard int
}

// TickResult reports one tick: the used-share spread it observed (at
// tick start), whether the policy acted, the migrations made, and how
// many migration attempts failed (target shards rejecting).
type TickResult struct {
	Spread float64
	Acted  bool
	Moves  []Move
	Failed int
}

// Rebalancer drives migrations on one cluster. It is single-threaded
// by design: drive it either with Run (one loop goroutine) or with
// explicit Tick calls, never both.
type Rebalancer struct {
	c      *kairos.Cluster
	cfg    Config
	active bool // threshold policy's hysteresis latch
}

// New validates the config and returns a rebalancer for the cluster.
func New(c *kairos.Cluster, cfg Config) (*Rebalancer, error) {
	cfg = cfg.withDefaults()
	switch cfg.Policy {
	case PolicyOff, PolicyThreshold, PolicyPeriodic:
	default:
		return nil, fmt.Errorf("rebalance: unknown policy %q (have %v)", cfg.Policy, Policies())
	}
	if cfg.Low < 0 || cfg.High < cfg.Low {
		return nil, fmt.Errorf("rebalance: watermarks must satisfy 0 <= low <= high, got low %.3f high %.3f", cfg.Low, cfg.High)
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("rebalance: negative budget %d", cfg.Budget)
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("rebalance: negative interval %v", cfg.Interval)
	}
	return &Rebalancer{c: c, cfg: cfg}, nil
}

// Config returns the validated configuration (defaults applied).
func (r *Rebalancer) Config() Config { return r.cfg }

// spread returns the used-share spread over the active shards and the
// hottest and coldest shard indices (ties to the lowest index). With
// fewer than two active shards there is nothing to balance and hot is
// -1.
func (r *Rebalancer) spread() (spread float64, hot, cold int) {
	hot, cold = -1, -1
	var max, min float64
	for _, si := range r.c.Shards() {
		if si.State != kairos.ShardActive {
			continue
		}
		u := si.Load.UsedShare
		if hot < 0 || u > max {
			hot, max = si.Shard, u
		}
		if cold < 0 || u < min {
			cold, min = si.Shard, u
		}
	}
	if hot < 0 || hot == cold {
		return 0, -1, -1
	}
	return max - min, hot, cold
}

// Tick runs one rebalancing pass: sample, decide, migrate within the
// budget. Deterministic for a fixed cluster state — it consumes no
// randomness, picks hot/cold shards with lowest-index ties, and tries
// the hot shard's residents in sorted name order — so the simulator
// can drive it as a discrete event.
func (r *Rebalancer) Tick(ctx context.Context) TickResult {
	var res TickResult
	spread, hot, _ := r.spread()
	res.Spread = spread
	if hot < 0 {
		return res
	}
	switch r.cfg.Policy {
	case PolicyOff:
		return res
	case PolicyThreshold:
		if !r.active && spread > r.cfg.High {
			r.active = true
		}
		if r.active && spread <= r.cfg.Low {
			r.active = false
		}
		if !r.active {
			return res
		}
	case PolicyPeriodic:
		if spread <= r.cfg.Low {
			return res
		}
	}
	res.Acted = true
	// Each iteration re-samples: a completed migration changes both
	// shards' gauges synchronously, so the loop converges toward Low
	// instead of overshooting on stale readings.
	attempts := 0
	for len(res.Moves) < r.cfg.Budget && attempts <= 2*r.cfg.Budget {
		spread, hot, cold := r.spread()
		if hot < 0 || spread <= r.cfg.Low {
			break
		}
		moved := false
		for _, name := range sortedResidents(r.c.Shard(hot)) {
			attempts++
			ca, err := r.c.Migrate(ctx, kairos.ClusterInstanceName(hot, name), cold)
			if err != nil {
				res.Failed++
				if attempts > 2*r.cfg.Budget {
					break
				}
				continue
			}
			res.Moves = append(res.Moves, Move{
				From:  kairos.ClusterInstanceName(hot, name),
				To:    ca.Instance,
				Shard: ca.Shard,
			})
			moved = true
			break
		}
		if !moved {
			break // hot shard empty or nothing fits anywhere colder
		}
	}
	return res
}

// Run ticks every Config.Interval until the context is done. PolicyOff
// returns immediately — there is nothing to run.
func (r *Rebalancer) Run(ctx context.Context) {
	if r.cfg.Policy == PolicyOff {
		return
	}
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Tick(ctx)
		}
	}
}

// sortedResidents lists a shard's admitted instance names in sorted
// order, so migration candidate order is deterministic.
func sortedResidents(m *kairos.Manager) []string {
	adm := m.Admitted()
	names := make([]string, 0, len(adm))
	for name := range adm {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
