package rebalance_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/rebalance"
	"repro/kairos"
)

func meshFactory(w, h int) func(int) *kairos.Platform {
	return func(int) *kairos.Platform { return kairos.Mesh(w, h, kairos.DefaultVCs) }
}

// chain builds an n-task pipeline of DSP tasks at the given compute
// share, the same shape the kairos package tests use.
func chain(name string, n int, share int64) *kairos.Application {
	app := kairos.NewApplication(name)
	for i := 0; i < n; i++ {
		app.AddTask(fmt.Sprintf("t%d", i), kairos.Internal, kairos.Implementation{
			Name: "t-dsp", Target: kairos.TypeDSP,
			Requires: kairos.Resources(share, 8, 0, 0), Cost: 1, ExecTime: 5,
		})
	}
	for i := 0; i+1 < n; i++ {
		app.AddChannelRated(i, i+1, 1, 1, 2)
	}
	return app
}

// skewedCluster builds a 2-shard cluster and packs n single-task apps
// onto shard 0 (first-fit keeps choosing it), returning the cluster
// and the resulting used-share spread.
func skewedCluster(t *testing.T, n int) (*kairos.Cluster, float64) {
	t.Helper()
	c, err := kairos.NewCluster(2, meshFactory(2, 2),
		kairos.WithPlacement(kairos.PlacementFirstFit))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		adm, err := c.Admit(context.Background(), chain(fmt.Sprintf("a%d", i), 1, 50))
		if err != nil {
			t.Fatalf("Admit a%d: %v", i, err)
		}
		if adm.Shard != 0 {
			t.Fatalf("first-fit placed a%d on shard %d, want 0", i, adm.Shard)
		}
	}
	return c, spreadOf(c)
}

func spreadOf(c *kairos.Cluster) float64 {
	loads := c.Stats().Loads
	max, min := loads[0].UsedShare, loads[0].UsedShare
	for _, l := range loads[1:] {
		if l.UsedShare > max {
			max = l.UsedShare
		}
		if l.UsedShare < min {
			min = l.UsedShare
		}
	}
	return max - min
}

func liveCounts(c *kairos.Cluster) []int {
	cs := c.Stats()
	counts := make([]int, len(cs.Shards))
	for i, s := range cs.Shards {
		counts[i] = s.Live
	}
	return counts
}

func TestNewValidation(t *testing.T) {
	c, _ := skewedCluster(t, 1)
	cases := []rebalance.Config{
		{Policy: "nope"},
		{Policy: rebalance.PolicyThreshold, High: 0.1, Low: 0.2},
		{Policy: rebalance.PolicyThreshold, Low: -0.1, High: 0.2},
		{Policy: rebalance.PolicyThreshold, Budget: -1},
		{Policy: rebalance.PolicyThreshold, Interval: -time.Second},
	}
	for _, cfg := range cases {
		if _, err := rebalance.New(c, cfg); err == nil {
			t.Errorf("New accepted %+v", cfg)
		}
	}

	r, err := rebalance.New(c, rebalance.Config{})
	if err != nil {
		t.Fatalf("New with zero config: %v", err)
	}
	got := r.Config()
	want := rebalance.Config{Policy: rebalance.PolicyOff, High: 0.20, Low: 0.10, Budget: 2, Interval: 5 * time.Second}
	if got != want {
		t.Errorf("defaults = %+v, want %+v", got, want)
	}
}

func TestTickOffOnlyObserves(t *testing.T) {
	c, spread := skewedCluster(t, 4)
	r, err := rebalance.New(c, rebalance.Config{Policy: rebalance.PolicyOff})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Tick(context.Background())
	if res.Acted || len(res.Moves) != 0 {
		t.Errorf("off policy acted: %+v", res)
	}
	if res.Spread != spread {
		t.Errorf("Spread = %v, want observed %v", res.Spread, spread)
	}
	if got := fmt.Sprint(liveCounts(c)); got != "[4 0]" {
		t.Errorf("off policy changed placement: live = %s", got)
	}
}

// TestThresholdRebalances: 4 apps on shard 0 of 2 (spread 0.5); one
// tick with enough budget migrates until the spread is at or below the
// Low watermark, and the next tick has nothing to do.
func TestThresholdRebalances(t *testing.T) {
	c, spread := skewedCluster(t, 4)
	if spread <= 0.3 {
		t.Fatalf("scenario not skewed enough: spread %v", spread)
	}
	r, err := rebalance.New(c, rebalance.Config{
		Policy: rebalance.PolicyThreshold, High: 0.3, Low: 0.05, Budget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Tick(context.Background())
	if !res.Acted {
		t.Fatalf("spread %v over high watermark but tick did not act", res.Spread)
	}
	if len(res.Moves) == 0 || res.Failed != 0 {
		t.Fatalf("tick = %+v, want clean migrations", res)
	}
	if after := spreadOf(c); after > 0.05 {
		t.Errorf("spread after tick = %v, want <= low watermark 0.05", after)
	}
	if got := fmt.Sprint(liveCounts(c)); got != "[2 2]" {
		t.Errorf("live counts after rebalance = %s, want [2 2]", got)
	}
	// Moves name real placements: the From name is gone, To is live.
	for _, mv := range res.Moves {
		if _, err := c.Readmit(context.Background(), mv.From); err == nil {
			t.Errorf("source name %q still resolves after migration", mv.From)
		}
	}

	if res := r.Tick(context.Background()); res.Acted || len(res.Moves) != 0 {
		t.Errorf("balanced cluster still acted: %+v", res)
	}
}

// TestThresholdHysteresis: a spread between Low and High must not
// trigger the threshold policy (no latch), but does trigger periodic.
func TestThresholdHysteresis(t *testing.T) {
	c, spread := skewedCluster(t, 2) // spread 0.25
	r, err := rebalance.New(c, rebalance.Config{
		Policy: rebalance.PolicyThreshold, High: spread + 0.1, Low: 0.05, Budget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Tick(context.Background()); res.Acted {
		t.Errorf("threshold acted below the high watermark: %+v", res)
	}

	p, err := rebalance.New(c, rebalance.Config{
		Policy: rebalance.PolicyPeriodic, High: spread + 0.1, Low: 0.05, Budget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := p.Tick(context.Background()); !res.Acted || len(res.Moves) == 0 {
		t.Errorf("periodic ignored spread %v over low watermark: %+v", spread, res)
	}
}

// TestThresholdLatch: once the spread crosses High the policy keeps
// migrating on later ticks (budget-limited) even though the remaining
// spread is below High, until it reaches Low.
func TestThresholdLatch(t *testing.T) {
	c, _ := skewedCluster(t, 4) // spread 0.5
	r, err := rebalance.New(c, rebalance.Config{
		Policy: rebalance.PolicyThreshold, High: 0.4, Low: 0.05, Budget: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := r.Tick(context.Background())
	if !first.Acted || len(first.Moves) != 1 {
		t.Fatalf("first tick = %+v, want exactly one budgeted move", first)
	}
	// Spread is now 0.25 < High; an unlatched policy would stop here.
	second := r.Tick(context.Background())
	if !second.Acted || len(second.Moves) != 1 {
		t.Fatalf("latch lost: second tick = %+v", second)
	}
	if got := fmt.Sprint(liveCounts(c)); got != "[2 2]" {
		t.Errorf("live counts = %s, want [2 2]", got)
	}
	if res := r.Tick(context.Background()); res.Acted {
		t.Errorf("tick at spread %v acted after latch should clear", res.Spread)
	}
}

// TestTickFailedMigrations: the cold shard cannot host the hot shard's
// apps, so the tick reports failures and gives up without looping.
func TestTickFailedMigrations(t *testing.T) {
	factory := func(shard int) *kairos.Platform {
		if shard == 1 {
			return kairos.Mesh(1, 1, kairos.DefaultVCs)
		}
		return kairos.Mesh(2, 2, kairos.DefaultVCs)
	}
	c, err := kairos.NewCluster(2, factory, kairos.WithPlacement(kairos.PlacementFirstFit))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.Admit(context.Background(), chain(fmt.Sprintf("big%d", i), 2, 80)); err != nil {
			t.Fatal(err)
		}
	}
	r, err := rebalance.New(c, rebalance.Config{
		Policy: rebalance.PolicyThreshold, High: 0.1, Low: 0.01, Budget: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Tick(context.Background())
	if !res.Acted || res.Failed == 0 || len(res.Moves) != 0 {
		t.Errorf("tick = %+v, want acted with only failed attempts", res)
	}
	if got := fmt.Sprint(liveCounts(c)); got != "[2 0]" {
		t.Errorf("failed migrations changed placement: live = %s", got)
	}
}

// TestTickSkipsInactiveShards: with shard 1 drained only one active
// shard remains, so there is nothing to balance — and nothing may be
// migrated onto the drained shard.
func TestTickSkipsInactiveShards(t *testing.T) {
	c, _ := skewedCluster(t, 4)
	if _, err := c.DrainShard(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	r, err := rebalance.New(c, rebalance.Config{
		Policy: rebalance.PolicyThreshold, High: 0.1, Low: 0.01, Budget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res := r.Tick(context.Background()); res.Acted || res.Spread != 0 || len(res.Moves) != 0 {
		t.Errorf("tick on a one-active-shard cluster = %+v, want inert", res)
	}
	if got := fmt.Sprint(liveCounts(c)); got != "[4 0]" {
		t.Errorf("live counts = %s, want [4 0]", got)
	}
}

// TestTickDeterministic: identical clusters produce identical move
// sequences — the property the simulator depends on.
func TestTickDeterministic(t *testing.T) {
	run := func() string {
		c, _ := skewedCluster(t, 4)
		r, err := rebalance.New(c, rebalance.Config{
			Policy: rebalance.PolicyThreshold, High: 0.3, Low: 0.05, Budget: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		var trace string
		for i := 0; i < 4; i++ {
			trace += fmt.Sprintf("%+v\n", r.Tick(context.Background()))
		}
		return trace
	}
	if a, b := run(), run(); a != b {
		t.Errorf("tick traces diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestRunLoop: the Run goroutine balances a skewed cluster on its own.
func TestRunLoop(t *testing.T) {
	c, _ := skewedCluster(t, 4)
	r, err := rebalance.New(c, rebalance.Config{
		Policy: rebalance.PolicyThreshold, High: 0.3, Low: 0.05, Budget: 1,
		Interval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()
	deadline := time.Now().Add(10 * time.Second)
	for spreadOf(c) > 0.05 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done
	if s := spreadOf(c); s > 0.05 {
		t.Errorf("Run left spread %v after 10s", s)
	}
}
