package knapsack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/resource"
)

func item(id int, compute, memory int64, profit float64) Item {
	return Item{ID: id, Size: resource.Of(compute, memory, 0, 0), Profit: profit}
}

var solvers = []Solver{Greedy{}, Exact{}}

func TestEmptyAndTrivial(t *testing.T) {
	capacity := resource.Of(100, 64, 0, 0)
	for _, s := range solvers {
		sol := s.Solve(capacity, nil)
		if len(sol.IDs) != 0 || sol.Profit != 0 {
			t.Errorf("%s: empty input gave %+v", s.Name(), sol)
		}
		sol = s.Solve(capacity, []Item{item(1, 10, 10, 5)})
		if len(sol.IDs) != 1 || sol.Profit != 5 {
			t.Errorf("%s: single item gave %+v", s.Name(), sol)
		}
	}
}

func TestIgnoresNonPositiveProfit(t *testing.T) {
	capacity := resource.Of(100, 64, 0, 0)
	items := []Item{item(1, 1, 1, 0), item(2, 1, 1, -5), item(3, 1, 1, 2)}
	for _, s := range solvers {
		sol := s.Solve(capacity, items)
		if len(sol.IDs) != 1 || sol.IDs[0] != 3 {
			t.Errorf("%s: selected %v, want only item 3", s.Name(), sol.IDs)
		}
	}
}

func TestRespectsCapacityEveryAxis(t *testing.T) {
	capacity := resource.Of(100, 10, 0, 0)
	items := []Item{
		item(1, 10, 8, 100), // memory hog
		item(2, 10, 8, 90),  // cannot join item 1 (memory)
		item(3, 80, 1, 50),
	}
	for _, s := range solvers {
		sol := s.Solve(capacity, items)
		if !Feasible(capacity, items, sol) {
			t.Errorf("%s: infeasible solution %v", s.Name(), sol.IDs)
		}
	}
}

func TestExactBeatsGreedyOnAdversarialCase(t *testing.T) {
	// Classic density trap: one dense small item blocks two items
	// whose combination is better.
	capacity := resource.Of(10, 0, 0, 0)
	items := []Item{
		item(1, 6, 0, 7), // density 7/0.6 — greedy takes it first
		item(2, 5, 0, 5), // then neither 2 nor 3 fits
		item(3, 5, 0, 5), // optimal: {2,3} profit 10
	}
	g := Greedy{}.Solve(capacity, items)
	e := Exact{}.Solve(capacity, items)
	if e.Profit != 10 {
		t.Errorf("Exact profit = %v, want 10 (IDs %v)", e.Profit, e.IDs)
	}
	if g.Profit >= e.Profit {
		t.Errorf("expected greedy (%v) below exact (%v) on trap instance", g.Profit, e.Profit)
	}
}

func TestZeroSizeItems(t *testing.T) {
	// Items with zero demand are free profit; every solver must take
	// them all.
	capacity := resource.Of(1, 1, 0, 0)
	items := []Item{item(1, 0, 0, 3), item(2, 0, 0, 4), item(3, 1, 1, 5)}
	for _, s := range solvers {
		sol := s.Solve(capacity, items)
		if sol.Profit != 12 {
			t.Errorf("%s: profit = %v, want 12", s.Name(), sol.Profit)
		}
	}
}

func TestOversizeItemSkipped(t *testing.T) {
	capacity := resource.Of(10, 10, 0, 0)
	items := []Item{item(1, 11, 0, 1000), item(2, 10, 10, 1)}
	for _, s := range solvers {
		sol := s.Solve(capacity, items)
		if len(sol.IDs) != 1 || sol.IDs[0] != 2 {
			t.Errorf("%s: selected %v, want [2]", s.Name(), sol.IDs)
		}
	}
}

func randItems(r *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			ID:     i,
			Size:   resource.Of(int64(r.Intn(80)), int64(r.Intn(50)), 0, 0),
			Profit: float64(r.Intn(40)) - 5, // some non-positive
		}
	}
	return items
}

func TestPropertySolutionsFeasible(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capacity := resource.Of(int64(20+r.Intn(150)), int64(10+r.Intn(100)), 0, 0)
		items := randItems(r, 3+r.Intn(10))
		for _, s := range solvers {
			if !Feasible(capacity, items, s.Solve(capacity, items)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExactDominatesGreedy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capacity := resource.Of(int64(20+r.Intn(150)), int64(10+r.Intn(100)), 0, 0)
		items := randItems(r, 3+r.Intn(9))
		g := Greedy{}.Solve(capacity, items)
		e := Exact{}.Solve(capacity, items)
		return e.Profit >= g.Profit-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNoDuplicateSelections(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capacity := resource.Of(int64(20+r.Intn(150)), int64(10+r.Intn(100)), 0, 0)
		items := randItems(r, 3+r.Intn(10))
		for _, s := range solvers {
			sol := s.Solve(capacity, items)
			seen := make(map[int]bool)
			for _, id := range sol.IDs {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFeasibleRejectsBadSolution(t *testing.T) {
	capacity := resource.Of(10, 0, 0, 0)
	items := []Item{item(1, 6, 0, 1), item(2, 6, 0, 1)}
	if Feasible(capacity, items, Solution{IDs: []int{1, 2}}) {
		t.Error("Feasible accepted an overfull selection")
	}
	if Feasible(capacity, items, Solution{IDs: []int{9}}) {
		t.Error("Feasible accepted an unknown item")
	}
}

func BenchmarkGreedy16(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	capacity := resource.Of(200, 128, 0, 0)
	items := randItems(r, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy{}.Solve(capacity, items)
	}
}

func BenchmarkExact16(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	capacity := resource.Of(200, 128, 0, 0)
	items := randItems(r, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exact{}.Solve(capacity, items)
	}
}
