// Package knapsack provides the knapsack subroutine of the GAP solver
// (paper §III-C): given one element (the bin) with a free-resource
// vector (the bin size) and a set of tasks (the items) with resource
// requirement vectors and profits, select a subset of tasks that fits
// and maximizes total profit.
//
// The paper's implementation is an O(T²) heuristic; Cohen, Katzir and
// Raz show the GAP approximation inherits the knapsack solver's
// approximation ratio α as (1+α). This package ships the O(T²) greedy
// used by the paper and an exact branch-and-bound solver for the
// quality ablation (DESIGN.md §5.1).
package knapsack

import (
	"math"
	"sort"
	"sync"

	"repro/internal/resource"
)

// Item is one candidate task for the bin. ID is the caller's handle
// (e.g. a task ID) and is returned in solutions.
type Item struct {
	ID     int
	Size   resource.Vector
	Profit float64
}

// Solution is a selected subset of items.
type Solution struct {
	// IDs of the selected items, in selection order.
	IDs []int
	// Profit is the total profit of the selection.
	Profit float64
}

// Solver selects a profitable subset of items fitting in capacity.
// Implementations must ignore items with non-positive profit: taking
// nothing is always allowed in GAP, so unprofitable items never help.
type Solver interface {
	Solve(capacity resource.Vector, items []Item) Solution
	Name() string
}

// scalarSize reduces a size vector to a comparable scalar: the maximum
// utilization over the bin's axes. Items that stress the bin's scarce
// axes look "bigger".
func scalarSize(size, capacity resource.Vector) float64 {
	s := size.Utilization(capacity)
	if s <= 0 {
		// Free items (zero demand on all provided axes) get an
		// epsilon so density stays finite and they sort first.
		return 1e-9
	}
	return s
}

// Greedy is the O(T²) density-greedy solver of the paper: repeatedly
// scan all remaining items and take the feasible one with the best
// profit/size ratio. Rescanning after each take (rather than sorting
// once) lets the "size" of an item adapt to the shrinking residual
// capacity, which matters with multi-axis bins.
type Greedy struct{}

// Name implements Solver.
func (Greedy) Name() string { return "greedy" }

// greedyScratch is the pooled working state of one Greedy.Solve: the
// GAP solver runs one knapsack per candidate element per level, so the
// residual-capacity vector and the taken marks are reused. Solution
// IDs still allocate — they escape to the caller.
type greedyScratch struct {
	free  resource.Vector
	taken []bool
}

var greedyPool = sync.Pool{New: func() any { return new(greedyScratch) }}

// Solve implements Solver in O(n²) time.
func (Greedy) Solve(capacity resource.Vector, items []Item) Solution {
	s := greedyPool.Get().(*greedyScratch)
	if cap(s.free) < len(capacity) {
		s.free = make(resource.Vector, len(capacity))
	}
	free := s.free[:len(capacity)]
	copy(free, capacity)
	if cap(s.taken) < len(items) {
		s.taken = make([]bool, len(items))
	}
	taken := s.taken[:len(items)]
	for i := range taken {
		taken[i] = false
	}
	var sol Solution
	for {
		best, bestDensity := -1, 0.0
		for i, it := range items {
			if taken[i] || it.Profit <= 0 || !it.Size.Fits(free) {
				continue
			}
			d := it.Profit / scalarSize(it.Size, free)
			if best < 0 || d > bestDensity {
				best, bestDensity = i, d
			}
		}
		if best < 0 {
			break
		}
		taken[best] = true
		free.SubInPlace(items[best].Size)
		sol.IDs = append(sol.IDs, items[best].ID)
		sol.Profit += items[best].Profit
	}
	s.free, s.taken = free, taken
	greedyPool.Put(s)
	return sol
}

// Exact is a branch-and-bound solver: optimal, exponential worst case,
// intended for the small sub-problems produced by the neighborhood
// decomposition (|Ti| is rarely above 16) and for ablation studies.
type Exact struct{}

// Name implements Solver.
func (Exact) Name() string { return "exact" }

// Solve implements Solver optimally.
func (Exact) Solve(capacity resource.Vector, items []Item) Solution {
	// Consider only profitable items, ordered by density against
	// the full bin for a tight fractional bound.
	idx := make([]int, 0, len(items))
	for i, it := range items {
		if it.Profit > 0 && it.Size.Fits(capacity) {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		da := items[idx[a]].Profit / scalarSize(items[idx[a]].Size, capacity)
		db := items[idx[b]].Profit / scalarSize(items[idx[b]].Size, capacity)
		return da > db
	})

	suffixProfit := make([]float64, len(idx)+1)
	for i := len(idx) - 1; i >= 0; i-- {
		suffixProfit[i] = suffixProfit[i+1] + items[idx[i]].Profit
	}

	var best Solution
	best.Profit = -1
	cur := Solution{}
	free := capacity.Clone()

	var rec func(k int)
	rec = func(k int) {
		if cur.Profit > best.Profit {
			best.Profit = cur.Profit
			best.IDs = append([]int(nil), cur.IDs...)
		}
		if k == len(idx) {
			return
		}
		// Bound: even taking every remaining profitable item cannot
		// beat the incumbent.
		if cur.Profit+suffixProfit[k] <= best.Profit {
			return
		}
		it := items[idx[k]]
		if it.Size.Fits(free) {
			free.SubInPlace(it.Size)
			cur.IDs = append(cur.IDs, it.ID)
			cur.Profit += it.Profit
			rec(k + 1)
			cur.Profit -= it.Profit
			cur.IDs = cur.IDs[:len(cur.IDs)-1]
			free.AddInPlace(it.Size)
		}
		rec(k + 1)
	}
	rec(0)
	if best.Profit < 0 {
		best.Profit = 0
	}
	if math.Abs(best.Profit) < 1e-12 {
		best.Profit = 0
	}
	return best
}

// Feasible reports whether the solution's items (looked up by ID in
// items) fit together in capacity. Test helper and invariant check.
func Feasible(capacity resource.Vector, items []Item, sol Solution) bool {
	byID := make(map[int]Item, len(items))
	for _, it := range items {
		byID[it.ID] = it
	}
	free := capacity.Clone()
	for _, id := range sol.IDs {
		it, ok := byID[id]
		if !ok || !it.Size.Fits(free) {
			return false
		}
		free.SubInPlace(it.Size)
	}
	return true
}
