package experiments

import (
	"testing"

	"repro/internal/appgen"
	"repro/internal/platform"
)

// One small profile keeps the test fast; the full six-profile sweep is
// the cmd/experiments -replangap run documented in EXPERIMENTS.md §8.
func TestReplanGapProfile(t *testing.T) {
	cfg := DefaultReplanGapConfig()
	cfg.Residents = 3
	cfg.Platform = platform.CRISP()
	row, err := replanGapProfile(appgen.NewConfig(appgen.Communication, appgen.Small), cfg, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if row.Residents == 0 {
		t.Fatal("no residents survived the fill/thin phases")
	}
	if row.CostOptimal <= 0 {
		t.Errorf("bound = %v, want > 0 (implementation base costs)", row.CostOptimal)
	}
	if row.CostGreedy < row.CostOptimal-1e-9 {
		t.Errorf("greedy cost %v beats the lower bound %v", row.CostGreedy, row.CostOptimal)
	}
	if row.CostReplanned > row.CostGreedy+1e-9 {
		t.Errorf("replanning worsened the composite: %v -> %v", row.CostGreedy, row.CostReplanned)
	}
	if row.CostReplanned < row.CostOptimal-1e-9 {
		t.Errorf("replanned cost %v beats the lower bound %v", row.CostReplanned, row.CostOptimal)
	}
	if row.Exact != row.Residents {
		t.Errorf("small instances should all be exactly bounded: %d/%d", row.Exact, row.Residents)
	}
}
