// Package experiments reproduces the evaluation of the paper (§IV):
// it builds the six synthetic datasets, benchmarks the platform with
// sequential admission over random application sequences, and reduces
// the per-admission records into the exact tables and series of
// Table I and Figs. 7–10. The cmd/experiments tool and the repository
// benchmarks are thin wrappers over this package.
//
// The harness is parallel: independent replications — dataset filter
// probes and whole admission sequences — are distributed over a worker
// pool, each worker driving its own platform clone and core.Kairos.
// Every random draw is made up front on a single stream in the serial
// loop order, so the records are byte-identical for any worker count
// (only the wall-clock phase times vary).
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/appgen"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/routing"
	"repro/kairos"
)

// ForEach runs fn(i) for i in [0, n) on a pool of the given size
// (<= 0 means one worker per logical CPU) and waits for completion. It
// is the replication driver shared by the evaluation harness and the
// churn simulator's policy-comparison runs.
func ForEach(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// Dataset is one of the six synthetic datasets of Table I after the
// empty-platform filter.
type Dataset struct {
	Name    string
	Config  appgen.Config
	Apps    []*graph.Application
	Removed int // apps that could not be allocated on an empty platform
}

// DefaultAppsPerDataset is the paper's initial dataset size.
const DefaultAppsPerDataset = 100

// AllConfigs returns the six dataset configurations in Table I row
// order.
func AllConfigs() []appgen.Config {
	var out []appgen.Config
	for _, p := range []appgen.Profile{appgen.Communication, appgen.Computation} {
		for _, s := range []appgen.Size{appgen.Small, appgen.Medium, appgen.Large} {
			out = append(out, appgen.NewConfig(p, s))
		}
	}
	return out
}

// BuildDataset generates n applications and removes those that cannot
// be allocated on an empty platform ("to filter out any extraneous
// samples", §IV). The filter runs the full binding–mapping–routing
// pipeline; validation never rejects (the paper does not reject in
// the validation phase for these datasets).
// Each filter probe clones the platform and runs on its own Kairos,
// so probes for different applications proceed in parallel on a pool
// of the given size (<= 0 = one worker per logical CPU); the
// surviving apps keep their generation order.
func BuildDataset(cfg appgen.Config, n int, seed int64, proto *platform.Platform, workers int) Dataset {
	ds := Dataset{Name: appgen.DatasetName(cfg), Config: cfg}
	apps := appgen.Dataset(cfg, n, seed)
	keep := make([]bool, len(apps))
	// Probe platforms are pooled and Reset between probes instead of
	// cloned per probe: each probe only asks "does this app fit an
	// empty platform", and a Reset platform is empty. (Element wear
	// accumulates across pooled probes, but the filter maps with
	// WeightsBoth, which has no wear objective, so outcomes are
	// unaffected.)
	pool := sync.Pool{New: func() any { return proto.Clone() }}
	ForEach(len(apps), workers, func(i int) {
		p := pool.Get().(*platform.Platform)
		p.Reset()
		k := kairos.New(p,
			kairos.WithWeights(mapping.WeightsBoth),
			kairos.WithAdvisoryValidation(),
		)
		_, err := k.Admit(context.Background(), apps[i])
		keep[i] = err == nil
		pool.Put(p)
	})
	for i, app := range apps {
		if keep[i] {
			ds.Apps = append(ds.Apps, app)
		} else {
			ds.Removed++
		}
	}
	return ds
}

// BuildAllDatasets builds the six datasets against the CRISP
// platform, filtering on a pool of the given size (<= 0 = one worker
// per logical CPU).
func BuildAllDatasets(n int, seed int64, workers int) []Dataset {
	proto := platform.CRISP()
	out := make([]Dataset, 6)
	cfgs := AllConfigs()
	for i, cfg := range cfgs {
		out[i] = BuildDataset(cfg, n, seed+int64(i)*1000, proto, workers)
	}
	return out
}

// Record is one admission attempt within a sequence run.
type Record struct {
	Dataset  string
	Weights  mapping.Weights
	Sequence int
	Position int // 1-based position in the sequence
	Tasks    int
	Success  bool
	// FailPhase is meaningful when !Success.
	FailPhase kairos.Phase
	Times     kairos.PhaseTimes
	// MeanHops is the average allocated communication resources per
	// channel (Fig. 8); valid when Success.
	MeanHops float64
	// FragAfter is the platform's external resource fragmentation
	// after this attempt (Fig. 9).
	FragAfter float64
}

// SequenceConfig parameterizes RunSequences.
type SequenceConfig struct {
	// Weights for the mapping cost function.
	Weights mapping.Weights
	// Sequences is the number of random sequences per dataset (the
	// paper uses 30).
	Sequences int
	// Seed drives the sequence shuffles.
	Seed int64
	// Router for the routing phase; nil = BFS.
	Router kairos.Router
	// Options are additional manager options appended after the ones
	// derived from the fields above — the hook cmd/experiments uses
	// to swap phase strategies by name for a whole run.
	Options []kairos.Option
	// MaxPosition truncates sequences (0 = admit every app). The
	// paper's Figs. 8–9 plot positions 1..29.
	MaxPosition int
	// SkipValidationTiming disables the validation phase entirely
	// (not even timed) to speed up sweeps that only need admission
	// outcomes. Fig. 7 must keep it enabled.
	SkipValidationTiming bool
	// Workers bounds the worker pool running sequence replications
	// (<= 0 = one per logical CPU, 1 = the serial path).
	Workers int
}

// RunSequences benchmarks the platform with each dataset: the
// applications are admitted sequentially in 30 random orders, the
// platform is emptied between sequences, and every attempt yields a
// Record (paper §IV). Sequences are independent replications and run
// on a worker pool, one platform clone and Kairos per sequence; the
// shuffles are drawn up front in the serial loop order, so the
// returned records are identical for every worker count (phase times
// aside).
func RunSequences(datasets []Dataset, proto *platform.Platform, cfg SequenceConfig) []Record {
	if cfg.Sequences <= 0 {
		cfg.Sequences = 30
	}
	type job struct {
		ds    *Dataset
		seq   int
		order []int
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	var jobs []job
	for di := range datasets {
		for seq := 0; seq < cfg.Sequences; seq++ {
			jobs = append(jobs, job{&datasets[di], seq, r.Perm(len(datasets[di].Apps))})
		}
	}

	perJob := make([][]Record, len(jobs))
	ForEach(len(jobs), cfg.Workers, func(ji int) {
		perJob[ji] = runSequence(jobs[ji].ds, proto, cfg, jobs[ji].seq, jobs[ji].order)
	})

	var records []Record
	for _, rs := range perJob {
		records = append(records, rs...)
	}
	return records
}

// runSequence admits one shuffled dataset order onto a fresh platform
// clone and records every attempt.
func runSequence(ds *Dataset, proto *platform.Platform, cfg SequenceConfig, seq int, order []int) []Record {
	p := proto.Clone()
	opts := []kairos.Option{
		kairos.WithWeights(cfg.Weights),
		kairos.WithAdvisoryValidation(),
	}
	if cfg.Router != nil {
		opts = append(opts, kairos.WithRouter(cfg.Router))
	}
	if cfg.SkipValidationTiming {
		opts = append(opts, kairos.WithoutValidation())
	}
	k := kairos.New(p, append(opts, cfg.Options...)...)
	limit := len(order)
	if cfg.MaxPosition > 0 && cfg.MaxPosition < limit {
		limit = cfg.MaxPosition
	}
	records := make([]Record, 0, limit)
	for pos := 0; pos < limit; pos++ {
		app := ds.Apps[order[pos]]
		rec := Record{
			Dataset:  ds.Name,
			Weights:  cfg.Weights,
			Sequence: seq,
			Position: pos + 1,
			Tasks:    len(app.Tasks),
		}
		adm, err := k.Admit(context.Background(), app)
		rec.Times = adm.Times
		if err != nil {
			rec.Success = false
			var pe *kairos.PhaseError
			if errors.As(err, &pe) {
				rec.FailPhase = pe.Phase
			}
		} else {
			rec.Success = true
			rec.MeanHops = routing.MeanHops(adm.Routes)
		}
		rec.FragAfter = p.ExternalFragmentation()
		records = append(records, rec)
	}
	return records
}

// --- Table I -----------------------------------------------------------

// TableIRow is one row of Table I.
type TableIRow struct {
	Dataset string
	Apps    int // dataset size after the empty-platform filter
	// Failure distribution per phase as a percentage of all failing
	// applications in the dataset.
	BindingPct, MappingPct, RoutingPct float64
	Failures                           int
}

// TableI reduces sequence records into the Table I failure
// distribution.
func TableI(datasets []Dataset, records []Record) []TableIRow {
	rows := make([]TableIRow, 0, len(datasets))
	for _, ds := range datasets {
		row := TableIRow{Dataset: ds.Name, Apps: len(ds.Apps)}
		var b, m, rr int
		for _, rec := range records {
			if rec.Dataset != ds.Name || rec.Success {
				continue
			}
			switch rec.FailPhase {
			case kairos.PhaseBinding:
				b++
			case kairos.PhaseMapping:
				m++
			case kairos.PhaseRouting:
				rr++
			}
		}
		total := b + m + rr
		row.Failures = total
		if total > 0 {
			row.BindingPct = 100 * float64(b) / float64(total)
			row.MappingPct = 100 * float64(m) / float64(total)
			row.RoutingPct = 100 * float64(rr) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTableI renders the rows like the paper's Table I.
func FormatTableI(rows []TableIRow) string {
	s := fmt.Sprintf("%-22s %5s %9s %9s %9s\n", "Dataset", "#App", "Binding", "Mapping", "Routing")
	for _, r := range rows {
		s += fmt.Sprintf("%-22s %5d %8.2f%% %8.2f%% %8.2f%%\n",
			r.Dataset, r.Apps, r.BindingPct, r.MappingPct, r.RoutingPct)
	}
	return s
}

// --- Fig. 7 ------------------------------------------------------------

// Fig7Point is the mean per-phase run time for one application size.
type Fig7Point struct {
	Tasks      int
	Samples    int
	Binding    float64 // microseconds
	Mapping    float64
	Routing    float64
	Validation float64
}

// Fig7 reduces records into mean per-phase times of *successful*
// allocations, grouped by task count (paper Fig. 7, x = 3..16).
func Fig7(records []Record) []Fig7Point {
	byTasks := make(map[int]*Fig7Point)
	for _, rec := range records {
		if !rec.Success {
			continue
		}
		pt, ok := byTasks[rec.Tasks]
		if !ok {
			pt = &Fig7Point{Tasks: rec.Tasks}
			byTasks[rec.Tasks] = pt
		}
		pt.Samples++
		pt.Binding += float64(rec.Times.Binding.Microseconds())
		pt.Mapping += float64(rec.Times.Mapping.Microseconds())
		pt.Routing += float64(rec.Times.Routing.Microseconds())
		pt.Validation += float64(rec.Times.Validation.Microseconds())
	}
	var out []Fig7Point
	for t := 3; t <= 16; t++ {
		if pt, ok := byTasks[t]; ok {
			pt.Binding /= float64(pt.Samples)
			pt.Mapping /= float64(pt.Samples)
			pt.Routing /= float64(pt.Samples)
			pt.Validation /= float64(pt.Samples)
			out = append(out, *pt)
		}
	}
	return out
}

// FormatFig7 renders the series as a table (µs per phase).
func FormatFig7(points []Fig7Point) string {
	s := fmt.Sprintf("%5s %8s %10s %10s %10s %12s\n",
		"Tasks", "Samples", "Binding", "Mapping", "Routing", "Validation")
	for _, p := range points {
		s += fmt.Sprintf("%5d %8d %9.1fµs %9.1fµs %9.1fµs %11.1fµs\n",
			p.Tasks, p.Samples, p.Binding, p.Mapping, p.Routing, p.Validation)
	}
	return s
}

// --- Figs. 8 and 9 ------------------------------------------------------

// SeriesPoint is one x-position of the Fig. 8 / Fig. 9 series for one
// weight configuration.
type SeriesPoint struct {
	Position    int
	Attempts    int
	SuccessRate float64 // percent
	MeanHops    float64 // Fig. 8 (successful allocations only)
	MeanFrag    float64 // Fig. 9 (all attempts)
}

// PositionSeries reduces records (of a single weight configuration)
// into per-position success rate, mean hops per channel, and mean
// external fragmentation, averaged over all datasets and sequences
// (paper Figs. 8 and 9, x = position 1..29).
func PositionSeries(records []Record, maxPos int) []SeriesPoint {
	if maxPos <= 0 {
		maxPos = 29
	}
	out := make([]SeriesPoint, maxPos)
	hops := make([]float64, maxPos)
	hopN := make([]int, maxPos)
	for i := range out {
		out[i].Position = i + 1
	}
	for _, rec := range records {
		if rec.Position < 1 || rec.Position > maxPos {
			continue
		}
		pt := &out[rec.Position-1]
		pt.Attempts++
		pt.MeanFrag += rec.FragAfter
		if rec.Success {
			pt.SuccessRate++
			hops[rec.Position-1] += rec.MeanHops
			hopN[rec.Position-1]++
		}
	}
	for i := range out {
		if out[i].Attempts > 0 {
			out[i].SuccessRate = 100 * out[i].SuccessRate / float64(out[i].Attempts)
			out[i].MeanFrag /= float64(out[i].Attempts)
		}
		if hopN[i] > 0 {
			out[i].MeanHops = hops[i] / float64(hopN[i])
		}
	}
	return out
}

// WeightConfigs returns the four cost-function configurations of
// Figs. 8–10 with their paper labels.
func WeightConfigs() []struct {
	Label   string
	Weights mapping.Weights
} {
	return []struct {
		Label   string
		Weights mapping.Weights
	}{
		{"None", mapping.WeightsNone},
		{"Communication", mapping.WeightsCommunication},
		{"Fragmentation", mapping.WeightsFragmentation},
		{"Both", mapping.WeightsBoth},
	}
}

// FormatSeries renders labeled position series side by side; selector
// picks the y value (e.g. hops or fragmentation).
func FormatSeries(labels []string, series [][]SeriesPoint, metric string,
	selector func(SeriesPoint) float64) string {
	s := fmt.Sprintf("%-4s", "Pos")
	for _, l := range labels {
		s += fmt.Sprintf(" %13s %13s", l+" "+metric, l+" succ%")
	}
	s += "\n"
	if len(series) == 0 {
		return s
	}
	for i := range series[0] {
		s += fmt.Sprintf("%-4d", series[0][i].Position)
		for _, sr := range series {
			s += fmt.Sprintf(" %13.2f %13.1f", selector(sr[i]), sr[i].SuccessRate)
		}
		s += "\n"
	}
	return s
}
