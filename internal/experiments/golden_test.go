package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/appgen"
	"repro/internal/core"
	"repro/internal/platform"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_seq.json from the current implementation")

// goldenRecords runs a small fixed-seed experiment and strips the
// wall-clock phase times (the only nondeterministic Record fields).
func goldenRecords(workers int) []Record {
	proto := platform.CRISP()
	var datasets []Dataset
	for i, cfg := range []appgen.Config{
		appgen.NewConfig(appgen.Communication, appgen.Small),
		appgen.NewConfig(appgen.Computation, appgen.Medium),
	} {
		datasets = append(datasets, BuildDataset(cfg, 10, 42+int64(i)*1000, proto, workers))
	}
	records := RunSequences(datasets, proto, SequenceConfig{
		Sequences:            2,
		Seed:                 42,
		MaxPosition:          6,
		SkipValidationTiming: true,
		Workers:              workers,
	})
	for i := range records {
		records[i].Times = core.PhaseTimes{}
	}
	return records
}

// TestGoldenSequenceRecords pins the exact admission outcomes of a
// seeded experiment: RunSequences must reproduce the checked-in record
// JSON byte for byte, at any worker count, so refactors of the
// binding/mapping/routing stack cannot silently shift results. After
// an intentional behavior change, regenerate with
//
//	go test ./internal/experiments -run Golden -update-golden
func TestGoldenSequenceRecords(t *testing.T) {
	path := filepath.Join("testdata", "golden_seq.json")
	got, err := json.MarshalIndent(goldenRecords(3), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("seeded experiment records diverged from %s;\n"+
			"if the change is intentional, regenerate with -update-golden", path)
	}

	// Worker-count independence: the serial path must produce the
	// same bytes.
	serial, err := json.MarshalIndent(goldenRecords(1), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	serial = append(serial, '\n')
	if !bytes.Equal(serial, want) {
		t.Error("serial run diverged from the golden records")
	}
}
