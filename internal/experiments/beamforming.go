package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/kairos"
)

// NewBeamforming builds the case-study application pinned to the
// CRISP platform's stream-input tile, together with a fresh platform.
func NewBeamforming() (*graph.Application, *platform.Platform) {
	p := platform.CRISP()
	ioIn := -1
	for _, e := range p.Elements() {
		if e.Name == "io-in" {
			ioIn = e.ID
			break
		}
	}
	return graph.Beamforming(graph.DefaultBeamforming(ioIn)), p
}

// CaseStudy runs one beamforming allocation on an empty CRISP
// platform and reports the per-phase times (paper §IV-A: binding
// 70.4 ms, mapping 21.7 ms, routing 7.4 ms, validation 20.6 ms on the
// 200 MHz ARM926 — absolute values differ here, the ordering and
// feasibility are what the reproduction checks).
func CaseStudy(weights mapping.Weights) (*kairos.Admission, error) {
	app, p := NewBeamforming()
	k := kairos.New(p, kairos.WithWeights(weights))
	return k.Admit(context.Background(), app)
}

// FormatCaseStudy renders the per-phase times of an admission.
func FormatCaseStudy(adm *kairos.Admission, err error) string {
	s := fmt.Sprintf("beamforming: %d tasks, %d channels\n",
		len(adm.App.Tasks), len(adm.App.Channels))
	if err != nil {
		s += fmt.Sprintf("REJECTED: %v\n", err)
	} else {
		s += "admitted\n"
	}
	s += fmt.Sprintf("  binding:    %v\n", adm.Times.Binding)
	s += fmt.Sprintf("  mapping:    %v\n", adm.Times.Mapping)
	s += fmt.Sprintf("  routing:    %v\n", adm.Times.Routing)
	s += fmt.Sprintf("  validation: %v\n", adm.Times.Validation)
	s += fmt.Sprintf("  total:      %v\n", adm.Times.Total())
	return s
}

// Fig10Config parameterizes the admission weight sweep.
type Fig10Config struct {
	// CommMax sweeps communication weight 0..CommMax step CommStep.
	CommMax, CommStep int
	// FragMax sweeps fragmentation weight 0..FragMax step FragStep.
	FragMax, FragStep int
	// Workers bounds the worker pool sampling grid points (<= 0 =
	// one per logical CPU).
	Workers int
}

// DefaultFig10 is the paper's grid: every point in
// [0, 1, .., 25] × [0, 10, .., 1000].
func DefaultFig10() Fig10Config {
	return Fig10Config{CommMax: 25, CommStep: 1, FragMax: 1000, FragStep: 10}
}

// Fig10Result is the admission map of the beamforming application
// over the weight grid.
type Fig10Result struct {
	Comm     []int // communication weights (x axis)
	Frag     []int // fragmentation weights (y axis)
	Admitted [][]bool
	Total    int
	AdmitN   int
}

// Fig10 samples admission of the beamforming application for every
// weight combination on an empty CRISP platform (paper Fig. 10).
// Validation is skipped: the figure is about mapping/routing
// admission. Grid points are independent allocations and are sampled
// on a worker pool, one platform clone per point.
func Fig10(cfg Fig10Config) *Fig10Result {
	app, proto := NewBeamforming()
	res := &Fig10Result{}
	for c := 0; c <= cfg.CommMax; c += cfg.CommStep {
		res.Comm = append(res.Comm, c)
	}
	for f := 0; f <= cfg.FragMax; f += cfg.FragStep {
		res.Frag = append(res.Frag, f)
	}
	res.Admitted = make([][]bool, len(res.Frag))
	for fi := range res.Frag {
		res.Admitted[fi] = make([]bool, len(res.Comm))
	}
	res.Total = len(res.Frag) * len(res.Comm)
	ForEach(res.Total, cfg.Workers, func(i int) {
		fi, ci := i/len(res.Comm), i%len(res.Comm)
		k := kairos.New(proto.Clone(),
			kairos.WithWeights(mapping.Weights{
				Communication: float64(res.Comm[ci]),
				Fragmentation: float64(res.Frag[fi]),
			}),
			kairos.WithoutValidation(),
		)
		_, err := k.Admit(context.Background(), app)
		res.Admitted[fi][ci] = err == nil
	})
	for fi := range res.Frag {
		for ci := range res.Comm {
			if res.Admitted[fi][ci] {
				res.AdmitN++
			}
		}
	}
	return res
}

// FormatFig10 renders the admission map as ASCII art: '#' admitted,
// '.' rejected; x = communication weight, y = fragmentation weight
// (top = high), like the paper's scatter plot.
func FormatFig10(r *Fig10Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "beamforming admission map: %d/%d weight points admitted\n",
		r.AdmitN, r.Total)
	fmt.Fprintf(&b, "x: communication weight %d..%d, y: fragmentation weight %d..%d (top=high)\n",
		r.Comm[0], r.Comm[len(r.Comm)-1], r.Frag[0], r.Frag[len(r.Frag)-1])
	for fi := len(r.Frag) - 1; fi >= 0; fi-- {
		fmt.Fprintf(&b, "%5d ", r.Frag[fi])
		for ci := range r.Comm {
			if r.Admitted[fi][ci] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("      ")
	for range r.Comm {
		b.WriteByte('-')
	}
	b.WriteByte('\n')
	return b.String()
}

// ZeroWeightAdmissions reports how many grid points on each axis
// border (either weight = 0) admitted the application. The paper
// observes "disabling either one of the objectives never gives a
// successful result".
func (r *Fig10Result) ZeroWeightAdmissions() int {
	n := 0
	for ci := range r.Comm {
		if r.Admitted[0][ci] && r.Frag[0] == 0 {
			n++
		}
	}
	for fi := range r.Frag {
		if r.Admitted[fi][0] && r.Comm[0] == 0 {
			n++
		}
	}
	return n
}
