package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/appgen"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/kairos"
)

func TestBuildDatasetFilters(t *testing.T) {
	proto := platform.CRISP()
	ds := BuildDataset(appgen.NewConfig(appgen.Computation, appgen.Small), 20, 1, proto, 0)
	if len(ds.Apps)+ds.Removed != 20 {
		t.Fatalf("apps %d + removed %d != 20", len(ds.Apps), ds.Removed)
	}
	if len(ds.Apps) == 0 {
		t.Fatal("empty-platform filter removed everything; datasets unusable")
	}
	// Every surviving app must indeed be admittable on an empty
	// platform.
	for _, app := range ds.Apps {
		k := kairos.New(proto.Clone(),
			kairos.WithWeights(mapping.WeightsBoth),
			kairos.WithAdvisoryValidation(),
		)
		if _, err := k.Admit(context.Background(), app); err != nil {
			t.Fatalf("filtered dataset contains unadmittable app %s: %v", app.Name, err)
		}
	}
}

func TestRunSequencesRecords(t *testing.T) {
	proto := platform.CRISP()
	ds := BuildDataset(appgen.NewConfig(appgen.Communication, appgen.Small), 12, 2, proto, 0)
	recs := RunSequences([]Dataset{ds}, proto, SequenceConfig{
		Weights:              mapping.WeightsBoth,
		Sequences:            2,
		Seed:                 3,
		SkipValidationTiming: true,
	})
	want := 2 * len(ds.Apps)
	if len(recs) != want {
		t.Fatalf("records = %d, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Position < 1 || r.Position > len(ds.Apps) {
			t.Errorf("position %d out of range", r.Position)
		}
		if r.Tasks < 3 || r.Tasks > 4 {
			t.Errorf("task count %d outside small range", r.Tasks)
		}
		if r.FragAfter < 0 || r.FragAfter > 100 {
			t.Errorf("fragmentation %v out of range", r.FragAfter)
		}
		if r.Success && r.Times.Total() <= 0 {
			t.Error("successful record without timing")
		}
	}
}

func TestTableIReduction(t *testing.T) {
	ds := Dataset{Name: "X", Apps: nil}
	recs := []Record{
		{Dataset: "X", Success: false, FailPhase: kairos.PhaseBinding},
		{Dataset: "X", Success: false, FailPhase: kairos.PhaseBinding},
		{Dataset: "X", Success: false, FailPhase: kairos.PhaseRouting},
		{Dataset: "X", Success: true},
		{Dataset: "Y", Success: false, FailPhase: kairos.PhaseMapping},
	}
	rows := TableI([]Dataset{ds}, recs)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Failures != 3 {
		t.Errorf("failures = %d, want 3", r.Failures)
	}
	if r.BindingPct < 66 || r.BindingPct > 67 {
		t.Errorf("binding%% = %v, want ≈66.7", r.BindingPct)
	}
	if r.RoutingPct < 33 || r.RoutingPct > 34 {
		t.Errorf("routing%% = %v, want ≈33.3", r.RoutingPct)
	}
	if !strings.Contains(FormatTableI(rows), "X") {
		t.Error("FormatTableI lost the dataset name")
	}
}

func TestFig7Reduction(t *testing.T) {
	recs := []Record{
		{Success: true, Tasks: 3, Times: kairos.PhaseTimes{Binding: 1000, Mapping: 2000, Routing: 3000, Validation: 4000}},
		{Success: true, Tasks: 3, Times: kairos.PhaseTimes{Binding: 3000, Mapping: 4000, Routing: 5000, Validation: 6000}},
		{Success: false, Tasks: 3}, // failures excluded
		{Success: true, Tasks: 7, Times: kairos.PhaseTimes{Binding: 1000}},
	}
	pts := Fig7(recs)
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].Tasks != 3 || pts[0].Samples != 2 {
		t.Errorf("first point %+v", pts[0])
	}
	if pts[0].Binding != 2 { // mean of 1µs and 3µs
		t.Errorf("binding mean = %v µs, want 2", pts[0].Binding)
	}
	if !strings.Contains(FormatFig7(pts), "Validation") {
		t.Error("FormatFig7 header missing")
	}
}

func TestPositionSeriesReduction(t *testing.T) {
	recs := []Record{
		{Position: 1, Success: true, MeanHops: 2, FragAfter: 10},
		{Position: 1, Success: false, FragAfter: 20},
		{Position: 2, Success: true, MeanHops: 4, FragAfter: 30},
	}
	pts := PositionSeries(recs, 3)
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	if pts[0].SuccessRate != 50 {
		t.Errorf("pos1 success = %v, want 50", pts[0].SuccessRate)
	}
	if pts[0].MeanHops != 2 || pts[0].MeanFrag != 15 {
		t.Errorf("pos1 hops/frag = %v/%v, want 2/15", pts[0].MeanHops, pts[0].MeanFrag)
	}
	if pts[2].Attempts != 0 || pts[2].SuccessRate != 0 {
		t.Errorf("pos3 should be empty: %+v", pts[2])
	}
	out := FormatSeries([]string{"Both"}, [][]SeriesPoint{pts}, "hops",
		func(p SeriesPoint) float64 { return p.MeanHops })
	if !strings.Contains(out, "Both hops") {
		t.Error("FormatSeries header missing")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The worker-pool harness must reproduce the serial records
	// exactly (phase times aside): shuffles are pre-drawn on one
	// stream, and reassembly restores the serial record order.
	proto := platform.CRISP()
	ds := BuildDataset(appgen.NewConfig(appgen.Communication, appgen.Small), 15, 4, proto, 0)
	run := func(workers int) []Record {
		return RunSequences([]Dataset{ds}, proto, SequenceConfig{
			Weights: mapping.WeightsBoth, Sequences: 4, Seed: 11,
			SkipValidationTiming: true, Workers: workers,
		})
	}
	serial, parallel := run(1), run(0)
	if len(serial) != len(parallel) {
		t.Fatalf("record counts differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		serial[i].Times, parallel[i].Times = kairos.PhaseTimes{}, kairos.PhaseTimes{}
		if serial[i] != parallel[i] {
			t.Fatalf("record %d differs:\nserial:   %+v\nparallel: %+v", i, serial[i], parallel[i])
		}
	}
}

func TestCaseStudyAdmits(t *testing.T) {
	adm, err := CaseStudy(mapping.WeightsBoth)
	if err != nil {
		t.Fatalf("case study rejected: %v", err)
	}
	if adm.Times.Binding <= 0 || adm.Times.Mapping <= 0 {
		t.Error("phase times missing")
	}
	if s := FormatCaseStudy(adm, err); !strings.Contains(s, "admitted") {
		t.Errorf("FormatCaseStudy output: %s", s)
	}
}

func TestFig10SmallGrid(t *testing.T) {
	res := Fig10(Fig10Config{CommMax: 2, CommStep: 1, FragMax: 50, FragStep: 25})
	if res.Total != 9 {
		t.Fatalf("total = %d, want 9", res.Total)
	}
	if res.AdmitN == 0 {
		t.Error("no weight point admitted the beamformer on a small grid")
	}
	out := FormatFig10(res)
	if !strings.Contains(out, "admission map") {
		t.Error("FormatFig10 header missing")
	}
}

func TestWeightConfigs(t *testing.T) {
	cfgs := WeightConfigs()
	if len(cfgs) != 4 || cfgs[0].Label != "None" || cfgs[3].Label != "Both" {
		t.Errorf("WeightConfigs = %+v", cfgs)
	}
}

func TestHarnessDeterministicForSeed(t *testing.T) {
	// The whole pipeline — generation, filtering, sequences — must be
	// reproducible from the seed, or the archived experiment outputs
	// would be unverifiable.
	run := func() []Record {
		proto := platform.CRISP()
		ds := BuildDataset(appgen.NewConfig(appgen.Communication, appgen.Small), 15, 5, proto, 0)
		return RunSequences([]Dataset{ds}, proto, SequenceConfig{
			Weights: mapping.WeightsBoth, Sequences: 2, Seed: 9,
			SkipValidationTiming: true,
		})
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		// Times are wall-clock and may differ; everything else must
		// be identical.
		a[i].Times, b[i].Times = kairos.PhaseTimes{}, kairos.PhaseTimes{}
		if a[i] != b[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
