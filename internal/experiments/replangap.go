package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/appgen"
	"repro/internal/optimal"
	"repro/internal/platform"
	"repro/internal/replan"
	"repro/kairos"
)

// The replan-gap ablation measures how far the greedy run-time
// placements drift from optimal under fragmentation, and how much of
// that gap the offline replanner recovers. For each of the six
// dataset profiles of Table I it fills a platform with generated
// applications, releases every other one (the churn surrogate: the
// survivors were admitted under contention that has since left), and
// compares the surviving placements — before and after one budgeted
// LNS pass — against a per-application lower bound on an EMPTY
// platform (internal/optimal): the exact branch-and-bound optimum
// where tractable (small instances), the polynomial LowerBound
// relaxation otherwise. Both ignore the other residents, so no joint
// placement can beat the summed bound; gaps are reported as percent
// above it.

// ReplanGapConfig parameterizes the ablation. The zero value is not
// useful; start from DefaultReplanGapConfig.
type ReplanGapConfig struct {
	// Platform is the prototype (cloned per profile); nil means CRISP.
	Platform *platform.Platform
	// Residents is the target number of surviving applications per
	// profile (twice as many are admitted, then every other released).
	Residents int
	// Budget is the replanner's move budget per pass.
	Budget int
	// Seed drives the generators and the LNS search.
	Seed int64
	// Workers bounds the per-profile worker pool (<= 0 = one per CPU).
	Workers int
}

// DefaultReplanGapConfig returns the EXPERIMENTS.md §8 operating
// point.
func DefaultReplanGapConfig() ReplanGapConfig {
	return ReplanGapConfig{Residents: 6, Budget: 64, Seed: 1}
}

// ReplanGapRow is one profile's measurement.
type ReplanGapRow struct {
	// Dataset is the profile name ("communication-small", ...).
	Dataset string `json:"dataset"`
	// Residents is the number of surviving applications measured.
	Residents int `json:"residents"`
	// CostGreedy, CostReplanned and CostOptimal are the summed
	// objective of the survivors as the greedy admissions left them,
	// after the replanning pass, and at the isolated-optimum lower
	// bound.
	CostGreedy    float64 `json:"costGreedy"`
	CostReplanned float64 `json:"costReplanned"`
	CostOptimal   float64 `json:"costOptimal"`
	// GapBefore and GapAfter are CostGreedy and CostReplanned as
	// percent above CostOptimal.
	GapBefore float64 `json:"gapBefore"`
	GapAfter  float64 `json:"gapAfter"`
	// Moves and Evaluated report what the pass did: committed moves
	// and budget consumed.
	Moves     int `json:"moves"`
	Evaluated int `json:"evaluated"`
	// Exact counts residents whose bound is the exact branch-and-bound
	// optimum; the rest (large instances, where exact search is
	// intractable) use the polynomial relaxation, which can only
	// overstate the gap.
	Exact int `json:"exact"`
}

// exactSolveCap is the instance size up to which the ablation runs the
// exact solver for the bound. Communication-profile instances solve in
// milliseconds well past this, but computation-profile ones (high
// demands leave the search almost unpruned on a 64-element platform)
// blow up past ~8 tasks.
const exactSolveCap = 8

// ReplanGap runs the ablation across the six dataset profiles.
func ReplanGap(cfg ReplanGapConfig) ([]ReplanGapRow, error) {
	if cfg.Platform == nil {
		cfg.Platform = platform.CRISP()
	}
	if cfg.Residents <= 0 {
		cfg.Residents = 6
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 64
	}
	configs := AllConfigs()
	rows := make([]ReplanGapRow, len(configs))
	errs := make([]error, len(configs))
	ForEach(len(configs), cfg.Workers, func(i int) {
		rows[i], errs[i] = replanGapProfile(configs[i], cfg, cfg.Seed+int64(i+1)*7919)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// replanGapProfile measures one profile: fill, thin out, replan,
// compare against the isolated-optimum bound.
func replanGapProfile(gcfg appgen.Config, cfg ReplanGapConfig, seed int64) (ReplanGapRow, error) {
	row := ReplanGapRow{Dataset: gcfg.Profile.String() + "-" + gcfg.Size.String()}
	proto := cfg.Platform
	k := kairos.New(proto.Clone(),
		kairos.WithWeights(kairos.WeightsCommunication),
		kairos.WithAdvisoryValidation(),
		kairos.WithReplanner(replan.LNS{Seed: seed}),
		kairos.WithReplanBudget(cfg.Budget),
	)
	gen := appgen.New(gcfg, seed)

	// Fill: admit up to 2×Residents applications (draws are capped so
	// an unlucky stream terminates).
	var admitted []string
	for draws := 0; len(admitted) < 2*cfg.Residents && draws < 50*cfg.Residents; draws++ {
		if adm, err := k.Admit(context.Background(), gen.Next()); err == nil {
			admitted = append(admitted, adm.Instance)
		}
	}
	// Thin out: every other admission leaves, in admission order — the
	// survivors keep placements chosen under contention that is gone.
	for i := 0; i < len(admitted); i += 2 {
		if err := k.Release(admitted[i]); err != nil {
			return row, fmt.Errorf("replangap %s: release %s: %v", row.Dataset, admitted[i], err)
		}
	}

	before, bound, exact, err := replanGapCosts(k, proto, true)
	if err != nil {
		return row, fmt.Errorf("replangap %s: %v", row.Dataset, err)
	}
	res, err := k.Replan(context.Background())
	if err != nil {
		return row, fmt.Errorf("replangap %s: replan: %v", row.Dataset, err)
	}
	after, _, _, err := replanGapCosts(k, proto, false)
	if err != nil {
		return row, fmt.Errorf("replangap %s: %v", row.Dataset, err)
	}

	row.Residents = len(k.Admitted())
	row.CostGreedy, row.CostReplanned, row.CostOptimal = before, after, bound
	if bound > 0 {
		row.GapBefore = 100 * (before - bound) / bound
		row.GapAfter = 100 * (after - bound) / bound
	}
	row.Moves = len(res.Moves)
	row.Evaluated = res.Evaluated
	row.Exact = exact
	return row, nil
}

// replanGapCosts sums the residents' current objective and their
// isolated lower bound. Each resident is evaluated by a solver built
// on an empty clone of the prototype with the resident's own binding,
// so heuristic and bound share the implementation base costs and the
// comparison is purely about placement. Instances up to exactSolveCap
// tasks get the exact optimum; larger ones the polynomial relaxation.
// The bound does not depend on placement, so the after-replan pass
// skips it (withBound false) — exact solves dominate the runtime.
func replanGapCosts(k *kairos.Manager, proto *platform.Platform, withBound bool) (current, bound float64, exact int, err error) {
	adms := k.Admitted()
	names := make([]string, 0, len(adms))
	for name := range adms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		adm := adms[name]
		s, err := optimal.New(adm.App, proto.Clone(), adm.Binding, optimal.DefaultObjective())
		if err != nil {
			return 0, 0, 0, fmt.Errorf("solver for %s: %v", name, err)
		}
		current += s.CostOf(adm.Assignment)
		if !withBound {
			continue
		}
		if len(adm.App.Tasks) <= exactSolveCap {
			opt, err := s.Solve()
			if err != nil {
				return 0, 0, 0, fmt.Errorf("solve %s: %v", name, err)
			}
			bound += opt.Cost
			exact++
		} else {
			bound += s.LowerBound()
		}
	}
	return current, bound, exact, nil
}

// FormatReplanGap renders the ablation as a table, one row per
// profile.
func FormatReplanGap(rows []ReplanGapRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %5s %9s %9s %9s %8s %8s %6s %5s %6s\n",
		"Dataset", "Resid", "Greedy", "Replanned", "Optimal", "GapBef", "GapAft", "Moves", "Eval", "Exact")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %5d %9.1f %9.1f %9.1f %7.1f%% %7.1f%% %6d %5d %3d/%-2d\n",
			r.Dataset, r.Residents, r.CostGreedy, r.CostReplanned, r.CostOptimal,
			r.GapBefore, r.GapAfter, r.Moves, r.Evaluated, r.Exact, r.Residents)
	}
	return b.String()
}
