package experiments

import (
	"sort"
	"time"
)

// Shared metric reducers. The evaluation harness and the churn
// simulator both reduce per-attempt samples into the same summary
// quantities (latency percentiles, per-phase rates); keeping the
// reducers here stops the two from drifting apart.

// DurationPercentiles reduces samples to the requested percentiles
// (0–100, e.g. 50, 90, 99) using the nearest-rank method. The input is
// not modified. Returns zeros when samples is empty.
func DurationPercentiles(samples []time.Duration, ps ...float64) []time.Duration {
	out := make([]time.Duration, len(ps))
	if len(samples) == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		out[i] = sorted[rankIndex(p, len(sorted))]
	}
	return out
}

// rankIndex maps a percentile to a nearest-rank index in [0, n).
func rankIndex(p float64, n int) int {
	if p <= 0 {
		return 0
	}
	if p >= 100 {
		return n - 1
	}
	idx := int(p/100*float64(n)+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// PhaseRates turns per-phase rejection counts into percentages of the
// total rejection count (the quantity of Table I's failure
// distribution). All-zero counts reduce to all-zero rates.
func PhaseRates(counts [4]int64) [4]float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	var out [4]float64
	if total == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = 100 * float64(c) / float64(total)
	}
	return out
}
