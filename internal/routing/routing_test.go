package routing

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/resource"
)

func dspImpl() graph.Implementation {
	return graph.Implementation{
		Name: "dsp", Target: platform.TypeDSP,
		Requires: resource.Of(10, 4, 0, 0), Cost: 1, ExecTime: 5,
	}
}

func pair(p *platform.Platform) (*graph.Application, []int) {
	app := graph.New("pair")
	a := app.AddTask("a", graph.Internal, dspImpl())
	b := app.AddTask("b", graph.Internal, dspImpl())
	app.AddChannel(a, b)
	_ = p
	return app, []int{0, 0}
}

var routers = []Router{BFS{}, Dijkstra{}}

func TestFindPathShortest(t *testing.T) {
	p := platform.Mesh(4, 4, 2)
	for _, r := range routers {
		path, ok := r.FindPath(p, 0, 15)
		if !ok {
			t.Fatalf("%s: no path", r.Name())
		}
		if len(path)-1 != 6 {
			t.Errorf("%s: hops = %d, want 6 (manhattan)", r.Name(), len(path)-1)
		}
		if path[0] != 0 || path[len(path)-1] != 15 {
			t.Errorf("%s: endpoints wrong: %v", r.Name(), path)
		}
		// Every consecutive pair must be a real link.
		for i := 0; i+1 < len(path); i++ {
			if p.Link(path[i], path[i+1]) == nil {
				t.Errorf("%s: path uses non-link %d→%d", r.Name(), path[i], path[i+1])
			}
		}
	}
}

func TestFindPathSameElement(t *testing.T) {
	p := platform.Mesh(2, 2, 2)
	for _, r := range routers {
		path, ok := r.FindPath(p, 1, 1)
		if !ok || len(path) != 1 {
			t.Errorf("%s: self path = %v,%v", r.Name(), path, ok)
		}
	}
}

func TestFindPathAvoidsFullLinks(t *testing.T) {
	// Line 0-1-2 with an extra detour 0-3-2. Saturate 0→1.
	p := platform.New()
	for i := 0; i < 4; i++ {
		p.AddElement(platform.TypeDSP, "d", platform.DSPCapacity)
	}
	p.MustConnect(0, 1, 1)
	p.MustConnect(1, 2, 1)
	p.MustConnect(0, 3, 1)
	p.MustConnect(3, 2, 1)
	if err := p.AllocVC(0, 1); err != nil {
		t.Fatal(err)
	}
	for _, r := range routers {
		path, ok := r.FindPath(p, 0, 2)
		if !ok {
			t.Fatalf("%s: no path despite detour", r.Name())
		}
		if len(path) != 3 || path[1] != 3 {
			t.Errorf("%s: path = %v, want detour via 3", r.Name(), path)
		}
	}
}

func TestFindPathNoRoute(t *testing.T) {
	p := platform.New()
	p.AddElement(platform.TypeDSP, "a", platform.DSPCapacity)
	p.AddElement(platform.TypeDSP, "b", platform.DSPCapacity)
	// no links
	for _, r := range routers {
		if _, ok := r.FindPath(p, 0, 1); ok {
			t.Errorf("%s: found path in disconnected platform", r.Name())
		}
	}
}

func TestRouteAllAllocatesVCs(t *testing.T) {
	p := platform.Mesh(3, 1, 2) // line of 3
	app, assign := pair(p)
	assign[0], assign[1] = 0, 2
	routes, err := RouteAll(app, assign, p, BFS{})
	if err != nil {
		t.Fatalf("RouteAll: %v", err)
	}
	if len(routes) != 1 || routes[0].Hops() != 2 {
		t.Fatalf("routes = %+v", routes)
	}
	if p.Link(0, 1).Used() != 1 || p.Link(1, 2).Used() != 1 {
		t.Error("VCs not allocated along the path")
	}
	if p.Link(1, 0).Used() != 0 {
		t.Error("reverse direction must not be allocated")
	}
	ReleaseAll(p, routes)
	if p.Link(0, 1).Used() != 0 || p.Link(1, 2).Used() != 0 {
		t.Error("ReleaseAll did not free the VCs")
	}
}

func TestRouteAllFailureRollsBack(t *testing.T) {
	// Two channels over a single 1-VC bottleneck link: the second
	// fails, and the first's VC must be released.
	p := platform.New()
	for i := 0; i < 2; i++ {
		p.AddElement(platform.TypeDSP, "d", platform.DSPCapacity)
	}
	p.MustConnect(0, 1, 1)
	app := graph.New("two")
	a := app.AddTask("a", graph.Internal, dspImpl())
	b := app.AddTask("b", graph.Internal, dspImpl())
	app.AddChannel(a, b)
	app.AddChannel(a, b) // parallel channel, same direction
	assign := []int{0, 1}
	_, err := RouteAll(app, assign, p, BFS{})
	var rerr *Error
	if !errors.As(err, &rerr) {
		t.Fatalf("error = %v, want *routing.Error", err)
	}
	if rerr.Channel != 1 {
		t.Errorf("failing channel = %d, want 1", rerr.Channel)
	}
	if p.Link(0, 1).Used() != 0 {
		t.Error("rollback did not free the first route's VC")
	}
}

func TestRouteAllUnmappedEndpoint(t *testing.T) {
	p := platform.Mesh(2, 2, 2)
	app, assign := pair(p)
	assign[1] = -1
	if _, err := RouteAll(app, assign, p, BFS{}); err == nil {
		t.Error("unmapped endpoint must fail")
	}
}

func TestRouteAllSameElementZeroHops(t *testing.T) {
	p := platform.Mesh(2, 2, 2)
	app, assign := pair(p)
	assign[0], assign[1] = 3, 3
	routes, err := RouteAll(app, assign, p, BFS{})
	if err != nil {
		t.Fatalf("RouteAll: %v", err)
	}
	if routes[0].Hops() != 0 {
		t.Errorf("hops = %d, want 0", routes[0].Hops())
	}
	if TotalHops(routes) != 0 || MeanHops(routes) != 0 {
		t.Error("hop aggregates should be 0")
	}
}

func TestDisabledLinkForcesDetour(t *testing.T) {
	p := platform.Mesh(3, 3, 2)
	// Direct path 0→1→2; disable 0-1.
	p.DisableLink(0, 1)
	for _, r := range routers {
		path, ok := r.FindPath(p, 0, 2)
		if !ok {
			t.Fatalf("%s: no path", r.Name())
		}
		for i := 0; i+1 < len(path); i++ {
			if path[i] == 0 && path[i+1] == 1 {
				t.Errorf("%s: used disabled link", r.Name())
			}
		}
	}
}

func TestMeanHops(t *testing.T) {
	routes := []Route{
		{Channel: 0, Path: []int{0, 1, 2}},
		{Channel: 1, Path: []int{0}},
	}
	if got := MeanHops(routes); got != 1 {
		t.Errorf("MeanHops = %v, want 1", got)
	}
	if got := MeanHops(nil); got != 0 {
		t.Errorf("MeanHops(nil) = %v, want 0", got)
	}
}

func TestPropertyBFSPathsAreShortest(t *testing.T) {
	// On an empty irregular platform, the BFS router's path length
	// must equal the BFS hop distance.
	f := func(seed int64) bool {
		p := platform.Irregular(16, seed)
		r := rand.New(rand.NewSource(seed))
		src, dst := r.Intn(16), r.Intn(16)
		dist := p.BFSDistances([]int{src})
		path, ok := BFS{}.FindPath(p, src, dst)
		if dist[dst] == platform.Unreachable {
			return !ok
		}
		return ok && len(path)-1 == dist[dst]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRouteAllConservesVCs(t *testing.T) {
	// Route then release: all links return to their initial usage.
	f := func(seed int64) bool {
		p := platform.Irregular(12, seed)
		r := rand.New(rand.NewSource(seed))
		app := graph.New("rand")
		n := 2 + r.Intn(5)
		assign := make([]int, n)
		for i := 0; i < n; i++ {
			app.AddTask("t", graph.Internal, dspImpl())
			assign[i] = r.Intn(12)
		}
		for i := 1; i < n; i++ {
			app.AddChannel(r.Intn(i), i)
		}
		routes, err := RouteAll(app, assign, p, BFS{})
		if err != nil {
			// Rollback must have restored a clean platform.
			for _, l := range p.Links() {
				if l.Used() != 0 {
					return false
				}
			}
			return true
		}
		ReleaseAll(p, routes)
		for _, l := range p.Links() {
			if l.Used() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDijkstraFindsPathWhenBFSDoes(t *testing.T) {
	f := func(seed int64) bool {
		p := platform.Irregular(14, seed)
		r := rand.New(rand.NewSource(seed ^ 0x5a5a))
		src, dst := r.Intn(14), r.Intn(14)
		_, okB := BFS{}.FindPath(p, src, dst)
		_, okD := Dijkstra{}.FindPath(p, src, dst)
		return okB == okD
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
