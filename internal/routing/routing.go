// Package routing implements phase 3 of the workflow (paper §I-A):
// for pairs of tasks that need to communicate, communication links are
// established between the elements assigned to them in the mapping
// phase. Links are time-shared using virtual channels ([11]); a route
// claims one virtual channel on every directed link it crosses.
//
// The paper uses breadth-first search "because it has no noticeable
// performance differences in terms of successful routes and energy
// consumption, compared to Dijkstra's algorithm" (§II); both are
// provided here so the ablation bench can revisit that claim.
package routing

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/heapx"
	"repro/internal/platform"
)

// Route is one allocated communication channel: the element path from
// the source task's element to the destination task's element. A
// channel between tasks on the same element has a single-element path
// and zero hops.
type Route struct {
	Channel int
	Path    []int
}

// Hops returns the number of links the route crosses.
func (r Route) Hops() int { return len(r.Path) - 1 }

// Error is a routing-phase failure.
type Error struct {
	Channel  int
	Src, Dst int // element IDs
	Reason   string
}

func (e *Error) Error() string {
	return fmt.Sprintf("routing: channel %d (%d→%d): %s", e.Channel, e.Src, e.Dst, e.Reason)
}

// Router finds a path between two elements over links with free
// virtual channels. Implementations must not allocate anything.
type Router interface {
	FindPath(p *platform.Platform, src, dst int) ([]int, bool)
	Name() string
}

// usable reports whether the directed link a→b can carry one more
// virtual channel.
func usable(p *platform.Platform, a, b int) bool {
	l := p.Link(a, b)
	return l != nil && l.Enabled() && l.Free() > 0
}

// scratch is the reusable per-search state of the routers. A route
// search runs for every channel of every admission attempt, so the
// visited/frontier buffers come from a pool instead of the heap
// (Router implementations must not allocate).
type scratch struct {
	prev  []int
	queue []int
	ids   []int
	neigh []neighbor
	dist  []float64
	done  []bool
	pq    pq
}

type neighbor struct {
	elem int
	used int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// ints returns s resized to n (allocating only on growth).
func ints(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// BFS is the paper's router: fewest hops over links with free VCs.
// Among equal-hop alternatives it prefers the least-loaded link, so
// parallel routes spread over the NoC instead of piling onto the same
// deterministic shortest path — the behaviour that makes BFS
// indistinguishable from Dijkstra in the paper's measurements (§II).
type BFS struct{}

// Name implements Router.
func (BFS) Name() string { return "bfs" }

// FindPath implements Router.
func (BFS) FindPath(p *platform.Platform, src, dst int) ([]int, bool) {
	if src == dst {
		return []int{src}, true
	}
	if e := p.Element(src); e == nil || !e.Enabled() {
		return nil, false
	}
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	prev := ints(s.prev, p.NumElements())
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := append(s.queue[:0], src)
	s.prev, s.queue = prev, queue
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		// Visit usable neighbors in increasing link-load order: the
		// first parent to reach a node claims it, so low-load links
		// win ties at equal hop distance. Stable insertion sort over
		// the (element, load) pairs: closure-based sorting would
		// allocate in this innermost loop, and node degrees are ≤ 5.
		s.ids = p.AppendNeighbors(s.ids[:0], cur)
		neigh := neighborsByLoad(s.neigh[:0], p, cur, s.ids)
		s.neigh = neigh
		for _, nb := range neigh {
			n := nb.elem
			if prev[n] >= 0 || !usable(p, cur, n) {
				continue
			}
			prev[n] = cur
			if n == dst {
				return unwind(prev, src, dst), true
			}
			queue = append(queue, n)
		}
		s.queue = queue
	}
	return nil, false
}

// neighborsByLoad pairs the given neighbor IDs (in ID order) of cur
// with their outgoing-link loads and stably insertion-sorts them by
// increasing load, keeping ID order among equals — the same order
// sort.SliceStable produced here before the scratch rework.
func neighborsByLoad(dst []neighbor, p *platform.Platform, cur int, ids []int) []neighbor {
	for _, n := range ids {
		dst = append(dst, neighbor{elem: n, used: p.Link(cur, n).Used()})
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j].used < dst[j-1].used; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

func unwind(prev []int, src, dst int) []int {
	n := 1
	for at := dst; at != src; at = prev[at] {
		n++
	}
	path := make([]int, n)
	for at, i := dst, n-1; ; at, i = prev[at], i-1 {
		path[i] = at
		if at == src {
			break
		}
	}
	return path
}

// Dijkstra is the load-aware router used for the BFS-parity ablation:
// link weight grows with virtual-channel occupancy, spreading traffic.
type Dijkstra struct{}

// Name implements Router.
func (Dijkstra) Name() string { return "dijkstra" }

type pqItem struct {
	elem int
	cost float64
}

// pq is a slice min-heap over internal/heapx, whose sift semantics
// match container/heap exactly — the visit order, and therefore the
// chosen path, is identical to the original container/heap router
// without boxing every item through an interface value.
type pq []pqItem

func pqKey(it pqItem) float64 { return it.cost }

// FindPath implements Router.
func (Dijkstra) FindPath(p *platform.Platform, src, dst int) ([]int, bool) {
	if src == dst {
		return []int{src}, true
	}
	if e := p.Element(src); e == nil || !e.Enabled() {
		return nil, false
	}
	const inf = 1e18
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	n := p.NumElements()
	prev := ints(s.prev, n)
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
	}
	if cap(s.done) < n {
		s.done = make([]bool, n)
	}
	dist, done := s.dist[:n], s.done[:n]
	s.prev, s.dist, s.done = prev, dist, done
	for i := range dist {
		dist[i], prev[i], done[i] = inf, -1, false
	}
	dist[src], prev[src] = 0, src
	q := append(s.pq[:0], pqItem{src, 0})
	for len(q) > 0 {
		var it pqItem
		q, it = heapx.Pop(q, pqKey)
		if done[it.elem] {
			continue
		}
		done[it.elem] = true
		if it.elem == dst {
			s.pq = q[:0]
			return unwind(prev, src, dst), true
		}
		s.ids = p.AppendNeighbors(s.ids[:0], it.elem)
		for _, nb := range s.ids {
			if !usable(p, it.elem, nb) {
				continue
			}
			l := p.Link(it.elem, nb)
			// 1 per hop, plus congestion pressure proportional to
			// the fraction of the link's VCs already in use.
			w := 1 + float64(l.Used())/float64(l.VCs)
			if nd := dist[it.elem] + w; nd < dist[nb] {
				dist[nb], prev[nb] = nd, it.elem
				q = heapx.Push(q, pqItem{nb, nd}, pqKey)
			}
		}
	}
	s.pq = q[:0]
	return nil, false
}

// RouteAll establishes a route for every channel of the application,
// allocating one virtual channel per directed link crossed. Channels
// are routed in increasing channel-ID order. On any failure, all
// virtual channels allocated by this call are released and an *Error
// is returned.
func RouteAll(app *graph.Application, assignment []int, p *platform.Platform, r Router) ([]Route, error) {
	if r == nil {
		r = BFS{}
	}
	// Channels are routed in increasing ID order. Application channels
	// are normally already ID-ordered (the generator and codec emit
	// them that way); only re-sort when they are not.
	chans := app.Channels
	if !sort.SliceIsSorted(chans, func(i, j int) bool { return chans[i].ID < chans[j].ID }) {
		chans = append([]*graph.Channel(nil), app.Channels...)
		sort.Slice(chans, func(i, j int) bool { return chans[i].ID < chans[j].ID })
	}

	routes := make([]Route, 0, len(chans))
	release := func() {
		for _, rt := range routes {
			for i := 0; i+1 < len(rt.Path); i++ {
				_ = p.ReleaseVC(rt.Path[i], rt.Path[i+1])
			}
		}
	}
	for _, ch := range chans {
		src, dst := assignment[ch.Src], assignment[ch.Dst]
		if src < 0 || dst < 0 {
			release()
			return nil, &Error{Channel: ch.ID, Src: src, Dst: dst, Reason: "endpoint task not mapped"}
		}
		path, ok := r.FindPath(p, src, dst)
		if !ok {
			release()
			return nil, &Error{Channel: ch.ID, Src: src, Dst: dst, Reason: "no path with free virtual channels"}
		}
		for i := 0; i+1 < len(path); i++ {
			if err := p.AllocVC(path[i], path[i+1]); err != nil {
				// Roll back the partial allocation of this route,
				// then everything else.
				for j := 0; j < i; j++ {
					_ = p.ReleaseVC(path[j], path[j+1])
				}
				release()
				return nil, &Error{Channel: ch.ID, Src: src, Dst: dst, Reason: err.Error()}
			}
		}
		routes = append(routes, Route{Channel: ch.ID, Path: path})
	}
	return routes, nil
}

// ReleaseAll frees the virtual channels held by the routes (inverse of
// RouteAll).
func ReleaseAll(p *platform.Platform, routes []Route) {
	for _, rt := range routes {
		for i := 0; i+1 < len(rt.Path); i++ {
			_ = p.ReleaseVC(rt.Path[i], rt.Path[i+1])
		}
	}
}

// TotalHops sums the hops of all routes.
func TotalHops(routes []Route) int {
	n := 0
	for _, rt := range routes {
		n += rt.Hops()
	}
	return n
}

// MeanHops returns the average hops per channel, or 0 for no routes.
func MeanHops(routes []Route) float64 {
	if len(routes) == 0 {
		return 0
	}
	return float64(TotalHops(routes)) / float64(len(routes))
}
