// Package routing implements phase 3 of the workflow (paper §I-A):
// for pairs of tasks that need to communicate, communication links are
// established between the elements assigned to them in the mapping
// phase. Links are time-shared using virtual channels ([11]); a route
// claims one virtual channel on every directed link it crosses.
//
// The paper uses breadth-first search "because it has no noticeable
// performance differences in terms of successful routes and energy
// consumption, compared to Dijkstra's algorithm" (§II); both are
// provided here so the ablation bench can revisit that claim.
package routing

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/platform"
)

// Route is one allocated communication channel: the element path from
// the source task's element to the destination task's element. A
// channel between tasks on the same element has a single-element path
// and zero hops.
type Route struct {
	Channel int
	Path    []int
}

// Hops returns the number of links the route crosses.
func (r Route) Hops() int { return len(r.Path) - 1 }

// Error is a routing-phase failure.
type Error struct {
	Channel  int
	Src, Dst int // element IDs
	Reason   string
}

func (e *Error) Error() string {
	return fmt.Sprintf("routing: channel %d (%d→%d): %s", e.Channel, e.Src, e.Dst, e.Reason)
}

// Router finds a path between two elements over links with free
// virtual channels. Implementations must not allocate anything.
type Router interface {
	FindPath(p *platform.Platform, src, dst int) ([]int, bool)
	Name() string
}

// usable reports whether the directed link a→b can carry one more
// virtual channel.
func usable(p *platform.Platform, a, b int) bool {
	l := p.Link(a, b)
	return l != nil && l.Enabled() && l.Free() > 0
}

// BFS is the paper's router: fewest hops over links with free VCs.
// Among equal-hop alternatives it prefers the least-loaded link, so
// parallel routes spread over the NoC instead of piling onto the same
// deterministic shortest path — the behaviour that makes BFS
// indistinguishable from Dijkstra in the paper's measurements (§II).
type BFS struct{}

// Name implements Router.
func (BFS) Name() string { return "bfs" }

// FindPath implements Router.
func (BFS) FindPath(p *platform.Platform, src, dst int) ([]int, bool) {
	if src == dst {
		return []int{src}, true
	}
	if e := p.Element(src); e == nil || !e.Enabled() {
		return nil, false
	}
	prev := make([]int, p.NumElements())
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Visit usable neighbors in increasing link-load order: the
		// first parent to reach a node claims it, so low-load links
		// win ties at equal hop distance.
		neigh := p.Neighbors(cur)
		sort.SliceStable(neigh, func(i, j int) bool {
			li, lj := p.Link(cur, neigh[i]), p.Link(cur, neigh[j])
			return li.Used() < lj.Used()
		})
		for _, n := range neigh {
			if prev[n] >= 0 || !usable(p, cur, n) {
				continue
			}
			prev[n] = cur
			if n == dst {
				return unwind(prev, src, dst), true
			}
			queue = append(queue, n)
		}
	}
	return nil, false
}

func unwind(prev []int, src, dst int) []int {
	var rev []int
	for at := dst; ; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	path := make([]int, len(rev))
	for i, e := range rev {
		path[len(rev)-1-i] = e
	}
	return path
}

// Dijkstra is the load-aware router used for the BFS-parity ablation:
// link weight grows with virtual-channel occupancy, spreading traffic.
type Dijkstra struct{}

// Name implements Router.
func (Dijkstra) Name() string { return "dijkstra" }

type pqItem struct {
	elem int
	cost float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// FindPath implements Router.
func (Dijkstra) FindPath(p *platform.Platform, src, dst int) ([]int, bool) {
	if src == dst {
		return []int{src}, true
	}
	if e := p.Element(src); e == nil || !e.Enabled() {
		return nil, false
	}
	const inf = 1e18
	dist := make([]float64, p.NumElements())
	prev := make([]int, p.NumElements())
	done := make([]bool, p.NumElements())
	for i := range dist {
		dist[i], prev[i] = inf, -1
	}
	dist[src], prev[src] = 0, src
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if done[it.elem] {
			continue
		}
		done[it.elem] = true
		if it.elem == dst {
			return unwind(prev, src, dst), true
		}
		for _, n := range p.Neighbors(it.elem) {
			if !usable(p, it.elem, n) {
				continue
			}
			l := p.Link(it.elem, n)
			// 1 per hop, plus congestion pressure proportional to
			// the fraction of the link's VCs already in use.
			w := 1 + float64(l.Used())/float64(l.VCs)
			if nd := dist[it.elem] + w; nd < dist[n] {
				dist[n], prev[n] = nd, it.elem
				heap.Push(q, pqItem{n, nd})
			}
		}
	}
	return nil, false
}

// RouteAll establishes a route for every channel of the application,
// allocating one virtual channel per directed link crossed. Channels
// are routed in increasing channel-ID order. On any failure, all
// virtual channels allocated by this call are released and an *Error
// is returned.
func RouteAll(app *graph.Application, assignment []int, p *platform.Platform, r Router) ([]Route, error) {
	if r == nil {
		r = BFS{}
	}
	chans := append([]*graph.Channel(nil), app.Channels...)
	sort.Slice(chans, func(i, j int) bool { return chans[i].ID < chans[j].ID })

	var routes []Route
	release := func() {
		for _, rt := range routes {
			for i := 0; i+1 < len(rt.Path); i++ {
				_ = p.ReleaseVC(rt.Path[i], rt.Path[i+1])
			}
		}
	}
	for _, ch := range chans {
		src, dst := assignment[ch.Src], assignment[ch.Dst]
		if src < 0 || dst < 0 {
			release()
			return nil, &Error{Channel: ch.ID, Src: src, Dst: dst, Reason: "endpoint task not mapped"}
		}
		path, ok := r.FindPath(p, src, dst)
		if !ok {
			release()
			return nil, &Error{Channel: ch.ID, Src: src, Dst: dst, Reason: "no path with free virtual channels"}
		}
		for i := 0; i+1 < len(path); i++ {
			if err := p.AllocVC(path[i], path[i+1]); err != nil {
				// Roll back the partial allocation of this route,
				// then everything else.
				for j := 0; j < i; j++ {
					_ = p.ReleaseVC(path[j], path[j+1])
				}
				release()
				return nil, &Error{Channel: ch.ID, Src: src, Dst: dst, Reason: err.Error()}
			}
		}
		routes = append(routes, Route{Channel: ch.ID, Path: path})
	}
	return routes, nil
}

// ReleaseAll frees the virtual channels held by the routes (inverse of
// RouteAll).
func ReleaseAll(p *platform.Platform, routes []Route) {
	for _, rt := range routes {
		for i := 0; i+1 < len(rt.Path); i++ {
			_ = p.ReleaseVC(rt.Path[i], rt.Path[i+1])
		}
	}
}

// TotalHops sums the hops of all routes.
func TotalHops(routes []Route) int {
	n := 0
	for _, rt := range routes {
		n += rt.Hops()
	}
	return n
}

// MeanHops returns the average hops per channel, or 0 for no routes.
func MeanHops(routes []Route) float64 {
	if len(routes) == 0 {
		return 0
	}
	return float64(TotalHops(routes)) / float64(len(routes))
}
