package core

import (
	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/routing"
	"repro/internal/validation"
)

// This file defines the strategy seams of the four-phase workflow.
// Each phase of Fig. 1 is an interface with the paper's algorithm as
// the default implementation and at least one alternate, so related
// work that swaps a single phase (e.g. a different assignment solver
// per Cohen–Katzir–Raz) plugs in without forking the engine. The
// routing seam is routing.Router, which predates this file.

// Binder selects an implementation for every task of the application
// (phase 1). Implementations must not mutate the platform.
type Binder interface {
	Bind(app *graph.Application, p *platform.Platform) (*binding.Binding, error)
	Name() string
}

// Mapper assigns a platform element to every task (phase 2),
// committing placements to the platform under opts.Instance and
// rolling back everything it placed on failure.
type Mapper interface {
	Map(app *graph.Application, p *platform.Platform, bind *binding.Binding, opts mapping.Options) (*mapping.Result, error)
	Name() string
}

// Router is the phase-3 strategy seam: a path search over links with
// free virtual channels. It is an alias of routing.Router (BFS and
// Dijkstra implement it).
type Router = routing.Router

// Validator checks the performance constraints of an execution layout
// (phase 4). A nil report with a nil error means the layout was
// accepted without analysis (the no-op validator).
type Validator interface {
	Validate(app *graph.Application, bind *binding.Binding, assignment []int,
		routes []routing.Route, p *platform.Platform, opts validation.Options) (*validation.Report, error)
	Name() string
}

// RegretBinder is the paper's binding algorithm (§II): highest-regret
// task first, cheapest feasible implementation, with a location-free
// capacity estimate. The default Binder.
type RegretBinder struct{}

// Bind implements Binder.
func (RegretBinder) Bind(app *graph.Application, p *platform.Platform) (*binding.Binding, error) {
	return binding.Bind(app, p)
}

// Name implements Binder.
func (RegretBinder) Name() string { return "regret" }

// ExactBinder selects implementations by budgeted branch-and-bound
// over the joint selection space, minimizing total implementation
// cost (binding.BindExact). The quality ablation of the regret
// heuristic.
type ExactBinder struct{}

// Bind implements Binder.
func (ExactBinder) Bind(app *graph.Application, p *platform.Platform) (*binding.Binding, error) {
	return binding.BindExact(app, p)
}

// Name implements Binder.
func (ExactBinder) Name() string { return "exact" }

// IncrementalMapper is the paper's main contribution (§III,
// mapping.MapApplication): incremental neighborhood traversal with a
// GAP solve per level. The default Mapper.
type IncrementalMapper struct{}

// Map implements Mapper.
func (IncrementalMapper) Map(app *graph.Application, p *platform.Platform, bind *binding.Binding, opts mapping.Options) (*mapping.Result, error) {
	return mapping.MapApplication(app, p, bind, opts)
}

// Name implements Mapper.
func (IncrementalMapper) Name() string { return "incremental" }

// GapMapper solves one global GAP over all tasks and all available
// elements (mapping.MapGlobal): no neighborhood decomposition, no
// ring growth. It ablates the incremental search that distinguishes
// the paper's algorithm from a plain assignment-problem formulation.
type GapMapper struct{}

// Map implements Mapper.
func (GapMapper) Map(app *graph.Application, p *platform.Platform, bind *binding.Binding, opts mapping.Options) (*mapping.Result, error) {
	return mapping.MapGlobal(app, p, bind, opts)
}

// Name implements Mapper.
func (GapMapper) Name() string { return "gap" }

// FirstFitMapper is the naive baseline (mapping.FirstFit): each task
// individually onto the nearest available element, no assignment
// problem at all.
type FirstFitMapper struct{}

// Map implements Mapper.
func (FirstFitMapper) Map(app *graph.Application, p *platform.Platform, bind *binding.Binding, opts mapping.Options) (*mapping.Result, error) {
	return mapping.FirstFit(app, p, bind, opts.Instance)
}

// Name implements Mapper.
func (FirstFitMapper) Name() string { return "firstfit" }

// SDFValidator is the paper's validation phase (§II): the execution
// layout is modeled as a timed SDF graph and the achieved throughput
// is checked against the constraints. The default Validator.
type SDFValidator struct{}

// Validate implements Validator.
func (SDFValidator) Validate(app *graph.Application, bind *binding.Binding, assignment []int,
	routes []routing.Route, p *platform.Platform, opts validation.Options) (*validation.Report, error) {
	return validation.Validate(app, bind, assignment, routes, p, opts)
}

// Name implements Validator.
func (SDFValidator) Name() string { return "sdf" }

// NoopValidator accepts every layout without building a model: no
// report, no rejection, near-zero validation time. The synthetic
// admission-outcome sweeps of §IV effectively run this.
type NoopValidator struct{}

// Validate implements Validator.
func (NoopValidator) Validate(*graph.Application, *binding.Binding, []int,
	[]routing.Route, *platform.Platform, validation.Options) (*validation.Report, error) {
	return nil, nil
}

// Name implements Validator.
func (NoopValidator) Name() string { return "none" }

// binder returns the configured Binder or the paper's default.
func (o Options) binder() Binder {
	if o.Binder != nil {
		return o.Binder
	}
	return RegretBinder{}
}

// mapper returns the configured Mapper or the paper's default.
func (o Options) mapper() Mapper {
	if o.Mapper != nil {
		return o.Mapper
	}
	return IncrementalMapper{}
}

// validator returns the configured Validator or the paper's default.
func (o Options) validator() Validator {
	if o.Validator != nil {
		return o.Validator
	}
	return SDFValidator{}
}
