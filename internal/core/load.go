package core

import "math"

// This file is the manager's load-snapshot hook for cluster placement
// (see repro/kairos.Cluster): a lock-free, allocation-free gauge that
// placement policies can sample for every incoming admission without
// touching the platform-state mutex. The gauge is recomputed under the
// lock at the end of every state-mutating entry point and packed into
// one atomic word, so concurrent readers always observe an internally
// consistent (live, used-share) pair from some recent quiescent state.

// LoadHint is a lock-free snapshot of a manager's current load, the
// quantity cluster placement policies rank shards by. It is updated
// after every admission, release and readmission; reading it never
// blocks behind a running admission.
type LoadHint struct {
	// Live is the number of currently admitted applications.
	Live int `json:"live"`
	// UsedShare is the mean per-element resource utilization over the
	// platform's enabled elements, in [0, 1]. 1-UsedShare is the
	// residual-capacity share placement policies sample.
	UsedShare float64 `json:"usedShare"`
	// Draining reports the manager refusing fresh admissions (see
	// SetDraining); cluster placement skips draining shards, so the
	// flag rides in the same atomic word as the quantities sampled
	// alongside it.
	Draining bool `json:"draining,omitempty"`
}

// The drain flag occupies the top bit of the packed gauge word, so
// Live is capped at 31 bits — comfortably above any real population.
const (
	loadDrainBit = uint64(1) << 63
	loadLiveMask = uint64(1)<<31 - 1
)

// Load returns the manager's current load hint without taking the
// platform-state lock. The snapshot is consistent but may lag a
// concurrent admission by one critical section.
func (k *Kairos) Load() LoadHint {
	packed := k.load.Load()
	return LoadHint{
		Live:      int(packed >> 32 & loadLiveMask),
		UsedShare: float64(math.Float32frombits(uint32(packed))),
		Draining:  packed&loadDrainBit != 0,
	}
}

// updateLoadLocked recomputes the packed load gauge. Called with k.mu
// held by every state-mutating entry point as it leaves its critical
// section; the O(elements) scan is allocation-free and negligible next
// to one admission workflow.
func (k *Kairos) updateLoadLocked() {
	sum, n := 0.0, 0
	for _, e := range k.p.Elements() {
		if !e.Enabled() {
			continue
		}
		sum += e.Pool().Utilization()
		n++
	}
	share := 0.0
	if n > 0 {
		share = sum / float64(n)
	}
	packed := (uint64(len(k.admitted))&loadLiveMask)<<32 | uint64(math.Float32bits(float32(share)))
	if k.draining {
		packed |= loadDrainBit
	}
	k.load.Store(packed)
}
