package core

import "math"

// This file is the manager's load-snapshot hook for cluster placement
// (see repro/kairos.Cluster): a lock-free, allocation-free gauge that
// placement policies can sample for every incoming admission without
// touching the platform-state mutex. The gauge is recomputed under the
// lock at the end of every state-mutating entry point and packed into
// one atomic word, so concurrent readers always observe an internally
// consistent (live, used-share) pair from some recent quiescent state.

// LoadHint is a lock-free snapshot of a manager's current load, the
// quantity cluster placement policies rank shards by. It is updated
// after every admission, release and readmission; reading it never
// blocks behind a running admission.
type LoadHint struct {
	// Live is the number of currently admitted applications.
	Live int
	// UsedShare is the mean per-element resource utilization over the
	// platform's enabled elements, in [0, 1]. 1-UsedShare is the
	// residual-capacity share placement policies sample.
	UsedShare float64
}

// Load returns the manager's current load hint without taking the
// platform-state lock. The snapshot is consistent but may lag a
// concurrent admission by one critical section.
func (k *Kairos) Load() LoadHint {
	packed := k.load.Load()
	return LoadHint{
		Live:      int(packed >> 32),
		UsedShare: float64(math.Float32frombits(uint32(packed))),
	}
}

// updateLoadLocked recomputes the packed load gauge. Called with k.mu
// held by every state-mutating entry point as it leaves its critical
// section; the O(elements) scan is allocation-free and negligible next
// to one admission workflow.
func (k *Kairos) updateLoadLocked() {
	sum, n := 0.0, 0
	for _, e := range k.p.Elements() {
		if !e.Enabled() {
			continue
		}
		sum += e.Pool().Utilization()
		n++
	}
	share := 0.0
	if n > 0 {
		share = sum / float64(n)
	}
	packed := uint64(uint32(len(k.admitted)))<<32 | uint64(math.Float32bits(float32(share)))
	k.load.Store(packed)
}
