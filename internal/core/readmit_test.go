package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/validation"
)

func TestReadmitUnknownInstance(t *testing.T) {
	k := New(platform.Mesh(2, 2, 2), Options{})
	if _, err := k.Readmit(context.Background(), "ghost"); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("error = %v, want ErrUnknownInstance", err)
	}
}

func TestReadmitMovesOffFault(t *testing.T) {
	// Admit, disable an element the app uses, readmit: the new
	// layout must avoid the dead element. (Readmit releases first,
	// so the dead element's stale allocation is cleared too.)
	p := platform.Mesh(3, 3, 4)
	k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true})
	adm, err := k.Admit(context.Background(), chainApp("app", 3, 60))
	if err != nil {
		t.Fatal(err)
	}
	victim := adm.Assignment[1]
	p.DisableElement(victim)
	adm2, err := k.Readmit(context.Background(), adm.Instance)
	if err != nil {
		t.Fatalf("Readmit: %v", err)
	}
	for _, e := range adm2.Assignment {
		if e == victim {
			t.Error("readmission used the disabled element")
		}
	}
	if len(k.Admitted()) != 1 {
		t.Errorf("admitted = %d, want 1", len(k.Admitted()))
	}
}

func TestReadmitRestoresOnFailure(t *testing.T) {
	// Fill the platform so re-admission of a released app can only
	// reproduce its own (just-freed) placement... then make that
	// impossible by disabling the app's elements between release and
	// re-admission — the restore path must bring the old allocation
	// back when the new admission fails.
	p := platform.Mesh(2, 2, 4)
	k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true})
	adm, err := k.Admit(context.Background(), chainApp("a", 4, 70))
	if err != nil {
		t.Fatal(err)
	}
	// Another app occupying nothing extra; disable one element used
	// by the app but keep its occupancy: Readmit releases first, so
	// the app cannot come back (3 enabled elements < 4 tasks).
	p.DisableElement(adm.Assignment[0])
	_, err = k.Readmit(context.Background(), adm.Instance)
	if err == nil {
		t.Fatal("readmit should fail with a disabled element and no slack")
	}
	// The old allocation must be back: every task placed, instance
	// tracked.
	if len(k.Admitted()) != 1 {
		t.Fatalf("admitted = %d, want 1 (restored)", len(k.Admitted()))
	}
	restored := k.Admitted()[adm.Instance]
	for _, task := range restored.App.Tasks {
		occ := platform.Occupant{App: adm.Instance, Task: task.ID}
		if !p.Element(adm.Assignment[task.ID]).HostsTask(occ) {
			t.Errorf("task %d not restored on element %d", task.ID, adm.Assignment[task.ID])
		}
	}
	// Releasing the restored admission leaves the platform clean.
	if err := k.Release(adm.Instance); err != nil {
		t.Fatal(err)
	}
	snapshotClean(t, p)
}

func TestReadmitDefragments(t *testing.T) {
	// Admit A and B, release A (leaving a hole), then readmit B with
	// communication weights: B should stay admitted and the platform
	// consistent. (A full defragmentation policy is the caller's
	// loop over Readmit.)
	p := platform.Mesh(3, 3, 4)
	k := New(p, Options{Weights: mapping.WeightsCommunication, SkipValidation: true})
	a, err := k.Admit(context.Background(), chainApp("a", 3, 60))
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Admit(context.Background(), chainApp("b", 3, 60))
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Release(a.Instance); err != nil {
		t.Fatal(err)
	}
	fragBefore := k.Fragmentation()
	b2, err := k.Readmit(context.Background(), b.Instance)
	if err != nil {
		t.Fatalf("Readmit: %v", err)
	}
	if k.Fragmentation() > fragBefore+1e-9 {
		t.Errorf("fragmentation grew from %v to %v after readmit", fragBefore, k.Fragmentation())
	}
	if err := k.Release(b2.Instance); err != nil {
		t.Fatal(err)
	}
	snapshotClean(t, p)
}

func TestAdmitWithFastValidation(t *testing.T) {
	p := platform.Mesh(3, 3, 4)
	k := New(p, Options{
		Weights:    mapping.WeightsBoth,
		Validation: validation.Options{Fast: true},
	})
	app := chainApp("fast", 3, 60)
	app.Constraints.MinThroughput = 10
	adm, err := k.Admit(context.Background(), app)
	if err != nil {
		t.Fatalf("Admit with fast validation: %v", err)
	}
	if adm.Report == nil || adm.Report.Throughput <= 0 {
		t.Error("fast validation produced no throughput")
	}
}

func TestReadmitBeamformingAfterPackageLoss(t *testing.T) {
	// The beamformer needs all 45 DSPs: after losing a package it
	// cannot come back, and the restore path must keep it running on
	// its original layout (minus nothing — the layout predates the
	// fault; tasks on the dead package stay there, which models the
	// paper's "no migration" reality until the app is stopped).
	p := platform.CRISP()
	ioIn := -1
	for _, e := range p.Elements() {
		if e.Name == "io-in" {
			ioIn = e.ID
		}
	}
	app := graph.Beamforming(graph.DefaultBeamforming(ioIn))
	k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true})
	adm, err := k.Admit(context.Background(), app)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range p.Elements() {
		if e.Package == 2 {
			p.DisableElement(e.ID)
		}
	}
	if _, err := k.Readmit(context.Background(), adm.Instance); err == nil {
		t.Fatal("readmit must fail after losing a whole package")
	}
	if len(k.Admitted()) != 1 {
		t.Errorf("admission lost after failed readmit")
	}
}
