package core

import "errors"

// Typed sentinel errors for the admission workflow, wired for
// errors.Is so callers classify failures without string-matching
// PhaseError text. Every phase rejection matches ErrRejected; the
// phase-specific sentinels narrow it:
//
//	errors.Is(err, ErrRejected)           any phase rejected the app
//	errors.Is(err, ErrNoImplementation)   binding found no feasible impl
//	errors.Is(err, ErrUnroutable)         routing found no free path
//	errors.Is(err, ErrConstraintViolated) validation refused the layout
//
// A cancelled or timed-out admission matches context.Canceled /
// context.DeadlineExceeded instead — cancellation is not a rejection.
var (
	// ErrRejected matches every admission rejected by a workflow
	// phase (any *PhaseError).
	ErrRejected = errors.New("kairos: admission rejected")
	// ErrNoImplementation matches binding-phase rejections: no task
	// implementation with sufficient free resources anywhere in the
	// platform.
	ErrNoImplementation = errors.New("kairos: no feasible implementation")
	// ErrUnroutable matches routing-phase rejections: some channel
	// has no path with free virtual channels.
	ErrUnroutable = errors.New("kairos: no route with free virtual channels")
	// ErrConstraintViolated matches validation-phase rejections: the
	// layout cannot satisfy the application's performance constraints.
	ErrConstraintViolated = errors.New("kairos: performance constraints violated")
)

// Is wires the sentinel errors: a PhaseError matches ErrRejected
// always and the sentinel of its phase. errors.Is unwrapping still
// reaches the underlying phase error (*binding.Error etc.) via Unwrap.
func (e *PhaseError) Is(target error) bool {
	switch target {
	case ErrRejected:
		return true
	case ErrNoImplementation:
		return e.Phase == PhaseBinding
	case ErrUnroutable:
		return e.Phase == PhaseRouting
	case ErrConstraintViolated:
		return e.Phase == PhaseValidation
	}
	return false
}
