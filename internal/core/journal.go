package core

// This file is the engine's durability surface: a journal hook that
// records every committed state transition (the basis of the
// write-ahead log in internal/wal), manager-mediated fault injection
// so enable/disable transitions are recorded too, and the
// deterministic replay entry point recovery drives.
//
// The contract is strict ordering: an op is appended to the journal
// under the platform-state mutex, after its validate-commit has
// mutated the platform and before its event is published. A journal
// append failure aborts the op — the just-committed mutation is
// unwound (or the just-freed layout replayed) so the engine never
// acknowledges state the log does not carry.
//
// Replay re-executes recorded ops through the ordinary workflow code
// paths: the four phases are deterministic for a fixed platform state
// and option set, so re-admitting the recorded application bundle
// reproduces the original layout bit for bit. The only extra
// bookkeeping a record carries is the engine sequence number its
// admission attempt consumed — rejected attempts (never journaled)
// also consume sequence numbers, so every replayed attempt pins the
// counter before it runs to keep recovered instance names identical.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/routing"
)

// OpKind identifies one durable operation.
type OpKind uint8

// The durable operation kinds.
const (
	// OpAdmit: a successful admission (Admit or one AdmitAll entry).
	OpAdmit OpKind = iota + 1
	// OpRelease: an explicit release.
	OpRelease
	// OpReadmit: a successful readmission (the release half and the
	// fresh admission replay as one op).
	OpReadmit
	// OpEvict: an admission definitively lost by a failed readmission
	// whose layout replay also failed (externally corrupted platform).
	OpEvict
	// OpElement: an element enabled/disabled through the manager.
	OpElement
	// OpLink: a physical link enabled/disabled through the manager.
	OpLink
	// OpShardAdd: the shard joined its cluster at run time
	// (Cluster.AddShard). Recovery sizes the recovered cluster from
	// these records; the engine itself replays them as no-ops.
	OpShardAdd
	// OpShardDrain: the shard was drained (Cluster.DrainShard
	// completed). Replay re-marks the engine draining so a recovered
	// drained shard stays unadmittable.
	OpShardDrain
	// OpReplan: an accepted offline replanning pass (see replan.go).
	// The whole composite — every retired resident and the layout it
	// was re-admitted under — is one record, so recovery applies the
	// accepted plan atomically: a crash keeps all of it or none.
	OpReplan
)

func (o OpKind) String() string {
	switch o {
	case OpAdmit:
		return "admit"
	case OpRelease:
		return "release"
	case OpReadmit:
		return "readmit"
	case OpEvict:
		return "evict"
	case OpElement:
		return "element"
	case OpLink:
		return "link"
	case OpShardAdd:
		return "shard-add"
	case OpShardDrain:
		return "shard-drain"
	case OpReplan:
		return "replan"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Op is one durable state transition of the engine, the unit the
// write-ahead log records and recovery replays.
type Op struct {
	Kind OpKind
	// Seq is the engine sequence number the op's admission attempt
	// consumed (OpAdmit: the new instance's number; OpReadmit: the
	// fresh admission's number). Replay pins the counter to Seq-1
	// before re-executing, so recovered instance names match even
	// though rejected attempts — which also consume numbers — are
	// never journaled.
	Seq int
	// Instance names the admission the op concerns: the new instance
	// for OpAdmit, the released/retired/lost one otherwise.
	Instance string
	// App is the admitted application (OpAdmit only).
	App *graph.Application
	// Elem is the element ID (OpElement).
	Elem int
	// A, B name the physical link (OpLink).
	A, B int
	// Enabled is the new state (OpElement, OpLink).
	Enabled bool
	// Layout, when non-nil on an OpAdmit, is the committed layout
	// verbatim. It is recorded only by optimistic commits whose plan was
	// computed against a platform state older than the commit-time state
	// (a stale but still-fitting snapshot): re-running the workflow from
	// the pre-commit state would not necessarily reproduce the layout
	// that actually committed, so recovery restores the record instead
	// of re-planning. Serialized commits — and epoch-exact optimistic
	// commits, whose plan state equals the commit state — leave it nil
	// and replay through the deterministic workflow as before.
	Layout *OpLayout
	// Moves is the composite payload of an OpReplan record: every move
	// of the accepted plan, in commit order. Seq is then the sequence
	// number the last move consumed.
	Moves []OpMove
}

// OpMove is one move of an OpReplan record: the resident From was
// retired and its application re-admitted as To (the name the
// sequence number Seq implies) with the recorded layout.
type OpMove struct {
	Seq      int
	From, To string
	Layout   OpLayout
}

// OpLayout is the explicit layout an out-of-epoch optimistic commit
// journals: the selected implementation index and assigned element per
// task, and the allocated route per channel. Positional, like the
// layout cache's entries.
type OpLayout struct {
	Impls      []int
	Assignment []int
	Routes     []routing.Route
}

// Journal records committed engine operations durably. Append is
// called with the platform-state mutex held, after the op's commit and
// before its event is published, and returns the op's log sequence
// number; an error aborts the op (the engine unwinds the commit and
// returns ErrJournal to the caller).
type Journal interface {
	Append(op Op) (uint64, error)
}

// ErrJournal matches every operation aborted because its journal
// append failed; the underlying I/O error is in the message.
var ErrJournal = errors.New("kairos: journal append failed")

// journalLocked appends one op when a journal is attached. Called with
// k.mu held.
func (k *Kairos) journalLocked(op Op) error {
	if k.journal == nil {
		return nil
	}
	lsn, err := k.journal.Append(op)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrJournal, err)
	}
	k.lastLSN = lsn
	return nil
}

// AttachJournal attaches (or, with nil, detaches) the journal. The
// durability layer attaches after recovery has replayed the log tail,
// so replayed ops are never re-recorded.
func (k *Kairos) AttachJournal(j Journal) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.journal = j
}

// Journal returns the attached journal, or nil. The durability layer
// uses it to hand the owner of a journaled manager back the underlying
// log for checkpointing and shutdown.
func (k *Kairos) Journal() Journal {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.journal
}

// JournalMembership durably records a cluster-membership transition of
// this shard: OpShardAdd when the shard joins a running cluster,
// OpShardDrain when its drain completes. The record advances the
// engine's LastLSN, so subsequent snapshots cover the transition, and
// OpShardDrain additionally marks the engine draining under the same
// lock hold — the durable record and the in-memory gate cannot
// diverge. With no journal attached the drain mark is still applied
// and nil is returned (ephemeral clusters track membership in memory
// only).
func (k *Kairos) JournalMembership(kind OpKind) error {
	if kind != OpShardAdd && kind != OpShardDrain {
		return fmt.Errorf("kairos: %s is not a membership op", kind)
	}
	k.mu.Lock()
	defer k.unlockAndPublish()
	if err := k.journalLocked(Op{Kind: kind}); err != nil {
		return err
	}
	if kind == OpShardDrain {
		k.draining = true
	}
	return nil
}

// commitAdmitLocked journals a fresh admission and queues its event.
// On journal failure the admission is unwound — platform and
// bookkeeping byte-identical to before the attempt — and the
// ErrJournal-wrapped error is returned for the caller to surface.
func (k *Kairos) commitAdmitLocked(adm *Admission) error {
	return k.commitAdmitOpLocked(adm, nil)
}

// commitAdmitOpLocked is commitAdmitLocked with an optional explicit
// layout record, used by optimistic commits whose plan epoch is older
// than the commit epoch (see Op.Layout).
func (k *Kairos) commitAdmitOpLocked(adm *Admission, layout *OpLayout) error {
	// k.seq is adm's own number: the admitting attempt was the last
	// consumer under this lock hold.
	if jerr := k.journalLocked(Op{Kind: OpAdmit, Seq: k.seq, Instance: adm.Instance, App: adm.App, Layout: layout}); jerr != nil {
		k.unwindAdmitLocked(adm)
		return jerr
	}
	k.emit(Admitted{Adm: adm})
	return nil
}

// unwindAdmitLocked reverses a just-committed admission (journal
// append failed): frees its routes and placements, removes it from the
// admitted table and reverses the stats the attempt recorded.
func (k *Kairos) unwindAdmitLocked(adm *Admission) {
	routing.ReleaseAll(k.p, adm.Routes)
	mapping.UnmapAssigned(k.p, adm.Instance, adm.App, adm.Assignment)
	delete(k.admitted, adm.Instance)
	k.stats.Attempts--
	k.stats.Admitted--
}

// SetElementEnabled enables or disables a platform element through the
// manager, so the transition is journaled (fault injection that
// bypasses the manager is invisible to recovery). Disabling follows
// platform semantics: existing placements stay (tasks cannot migrate),
// new placements and routes avoid the element. A no-op transition is
// not journaled.
func (k *Kairos) SetElementEnabled(id int, enabled bool) error {
	k.mu.Lock()
	defer k.unlockAndPublish()
	e := k.p.Element(id)
	if e == nil {
		return fmt.Errorf("kairos: no element %d", id)
	}
	if e.Enabled() == enabled {
		return nil
	}
	k.setElement(id, enabled)
	if jerr := k.journalLocked(Op{Kind: OpElement, Elem: id, Enabled: enabled}); jerr != nil {
		k.setElement(id, !enabled)
		return jerr
	}
	return nil
}

func (k *Kairos) setElement(id int, enabled bool) {
	if enabled {
		k.p.EnableElement(id)
	} else {
		k.p.DisableElement(id)
	}
	// A fault transition starts a new epoch: layouts memoized against
	// the old hardware state would only waste cache capacity (their
	// sketches can never match again once the transition sticks).
	k.flushCacheLocked()
}

// SetLinkEnabled enables or disables both directions of the physical
// link a-b through the manager, journaling the transition. A no-op
// transition is not journaled.
func (k *Kairos) SetLinkEnabled(a, b int, enabled bool) error {
	k.mu.Lock()
	defer k.unlockAndPublish()
	l := k.p.Link(a, b)
	if l == nil {
		return fmt.Errorf("kairos: no link %d-%d", a, b)
	}
	if l.Enabled() == enabled {
		return nil
	}
	k.setLink(a, b, enabled)
	if jerr := k.journalLocked(Op{Kind: OpLink, A: a, B: b, Enabled: enabled}); jerr != nil {
		k.setLink(a, b, !enabled)
		return jerr
	}
	return nil
}

func (k *Kairos) setLink(a, b int, enabled bool) {
	if enabled {
		k.p.EnableLink(a, b)
	} else {
		k.p.DisableLink(a, b)
	}
	k.flushCacheLocked()
}

// ReplayOp deterministically re-executes one recorded op during
// recovery, then marks the engine as having applied the record's log
// sequence number. The engine must not have a journal attached
// (replayed ops must not be re-recorded) and must be driven from a
// state reached by replaying the preceding ops — the four-phase
// workflow is deterministic, so re-admitting the recorded application
// reproduces the recorded layout; any divergence (wrong instance name,
// a rejection where the log says success) is reported as corruption.
func (k *Kairos) ReplayOp(lsn uint64, op Op) error {
	k.mu.Lock()
	defer k.unlockAndPublish()
	if k.journal != nil {
		return errors.New("kairos: replay with a journal attached")
	}
	var err error
	switch op.Kind {
	case OpAdmit:
		if op.App == nil {
			err = errors.New("kairos: replay admit without application")
			break
		}
		if op.Layout != nil {
			// An out-of-epoch optimistic commit: restore the recorded
			// layout verbatim (the workflow run from this state would
			// not necessarily reproduce it).
			err = k.replayLayoutOpLocked(op)
			break
		}
		k.seq = op.Seq - 1
		var adm *Admission
		adm, err = k.admitLocked(context.Background(), op.App)
		if err == nil && adm.Instance != op.Instance {
			err = fmt.Errorf("kairos: replay diverged: admitted %q, log records %q", adm.Instance, op.Instance)
		}
	case OpRelease:
		err = k.releaseLocked(op.Instance)
	case OpReadmit:
		k.seq = op.Seq - 1
		_, err = k.readmitLocked(context.Background(), op.Instance)
	case OpEvict:
		adm, ok := k.admitted[op.Instance]
		if !ok {
			err = fmt.Errorf("%w: %q", ErrUnknownInstance, op.Instance)
			break
		}
		k.dropLocked(adm)
	case OpElement:
		if k.p.Element(op.Elem) == nil {
			err = fmt.Errorf("kairos: replay references unknown element %d", op.Elem)
			break
		}
		k.setElement(op.Elem, op.Enabled)
	case OpLink:
		if k.p.Link(op.A, op.B) == nil {
			err = fmt.Errorf("kairos: replay references unknown link %d-%d", op.A, op.B)
			break
		}
		k.setLink(op.A, op.B, op.Enabled)
	case OpShardAdd:
		// Membership records matter to the cluster recovery layer
		// (they size the recovered shard set); the engine only
		// advances its LSN past them.
	case OpShardDrain:
		// No admission of this shard can follow its drain record in
		// the log — the drain gate was already set when the record was
		// appended — so re-marking here cannot refuse a later replay.
		k.draining = true
	case OpReplan:
		err = k.replayReplanLocked(op)
	default:
		err = fmt.Errorf("kairos: replay of unknown op kind %d", op.Kind)
	}
	if err != nil {
		return fmt.Errorf("kairos: replaying lsn %d (%s %q): %w", lsn, op.Kind, op.Instance, err)
	}
	k.lastLSN = lsn
	return nil
}

// replayLayoutOpLocked re-applies a layout-carrying OpAdmit record: it
// rebuilds the admission from the recorded implementation selection,
// assignment and routes, restores the layout onto the platform and
// pins the sequence counter to the recorded number, exactly as the
// original commit did. Called with k.mu held during recovery.
func (k *Kairos) replayLayoutOpLocked(op Op) error {
	l := op.Layout
	if len(l.Impls) != len(op.App.Tasks) || len(l.Assignment) != len(op.App.Tasks) {
		return fmt.Errorf("kairos: layout record sized for %d/%d tasks, application has %d",
			len(l.Impls), len(l.Assignment), len(op.App.Tasks))
	}
	if want := instanceName(op.App, op.Seq); want != op.Instance {
		return fmt.Errorf("kairos: layout record names %q, seq %d implies %q", op.Instance, op.Seq, want)
	}
	bind, err := binding.FromSelection(op.App, l.Impls)
	if err != nil {
		return err
	}
	adm := &Admission{
		Instance:   op.Instance,
		App:        op.App,
		Binding:    bind,
		Assignment: l.Assignment,
		Routes:     l.Routes,
	}
	if rerr := k.restoreLayoutLocked(adm); rerr != nil {
		return rerr
	}
	k.seq = op.Seq
	k.admitted[adm.Instance] = adm
	k.stats.record(adm, nil)
	return nil
}

// restoreLayoutLocked replays an admission's recorded layout onto the
// platform: every task placement (accepting disabled elements — the
// layout existed before) and every route's virtual channels. The
// caller guarantees the resources are free (they were released a
// moment ago, or the platform is a fresh recovery target), so replay
// cannot fail unless the platform was mutated behind the manager's
// back; in that case the partial replay is unwound and the error says
// so. Bookkeeping (admitted table, stats) stays the caller's.
func (k *Kairos) restoreLayoutLocked(old *Admission) error {
	return restoreLayout(k.p, old)
}
