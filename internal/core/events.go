package core

import (
	"sync"

	"repro/internal/graph"
)

// The manager's event stream replaces the old lock-held OnEvict
// callback: every lifecycle transition is published as a typed Event
// to subscribers AFTER the platform-state mutex is released, over
// bounded buffered channels with non-blocking sends. Subscribers may
// therefore call back into the manager from their handler (readmit on
// eviction, release on admission, ...) without deadlocking, and a slow
// subscriber can never stall admission — it loses events instead
// (counted per subscription).

// Event is one lifecycle notification from the manager. The concrete
// types are Admitted, Released, Evicted and ReadmitFailed.
type Event interface {
	// EventInstance returns the instance name the event concerns.
	EventInstance() string
	event()
}

// Admitted reports a successful admission: a plain Admit, a batch
// entry of AdmitAll, or the fresh admission half of a successful
// Readmit (which also publishes Evicted for the retired instance).
type Admitted struct {
	Adm *Admission
}

// EventInstance implements Event.
func (e Admitted) EventInstance() string { return e.Adm.Instance }
func (Admitted) event()                  {}

// Released reports an explicit release (Release or ReleaseAll),
// including the release half of a readmission only when the
// readmission permanently retires the instance (that case is reported
// as Evicted instead, never as Released).
type Released struct {
	Instance string
	App      *graph.Application
}

// EventInstance implements Event.
func (e Released) EventInstance() string { return e.Instance }
func (Released) event()                  {}

// Evicted reports that an admission is definitively gone from the
// platform other than by an explicit release: retired by a successful
// Readmit (EvictReadmit — the application continues under a new
// instance name, reported separately as Admitted), or lost entirely
// when a failed readmission could not replay the previous layout
// (EvictLost).
type Evicted struct {
	Adm    *Admission
	Reason EvictReason
}

// EventInstance implements Event.
func (e Evicted) EventInstance() string { return e.Adm.Instance }
func (Evicted) event()                  {}

// ReadmitFailed reports a Readmit whose fresh admission was rejected.
// Restored says whether the previous layout was replayed (the
// application keeps running under its old instance name); when false,
// the admission is gone and an Evicted event with EvictLost follows.
type ReadmitFailed struct {
	Instance string
	App      *graph.Application
	Err      error
	Restored bool
}

// EventInstance implements Event.
func (e ReadmitFailed) EventInstance() string { return e.Instance }
func (ReadmitFailed) event()                  {}

// DefaultEventBuffer is the per-subscription channel capacity when
// Options.EventBuffer is zero.
const DefaultEventBuffer = 64

// subscriber is one Subscribe call's state.
type subscriber struct {
	ch      chan Event
	dropped uint64
}

// eventHub fans manager events out to subscribers. It has its own
// mutex: publishing happens outside the platform-state lock.
type eventHub struct {
	mu   sync.Mutex
	subs map[int]*subscriber
	next int
}

// Subscribe registers a subscriber and returns its event channel plus
// a cancel function that unregisters it and closes the channel. The
// channel is buffered with Options.EventBuffer slots (DefaultEventBuffer
// when zero); events published while the buffer is full are dropped
// for this subscriber and counted (see Dropped). Events are published
// outside the manager lock, so a subscriber may call back into the
// manager — including from the goroutine draining the channel —
// without deadlocking.
func (k *Kairos) Subscribe() (<-chan Event, func()) {
	buffer := k.opts.EventBuffer
	if buffer <= 0 {
		buffer = DefaultEventBuffer
	}
	h := &k.events
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.subs == nil {
		h.subs = make(map[int]*subscriber)
	}
	id := h.next
	h.next++
	sub := &subscriber{ch: make(chan Event, buffer)}
	h.subs[id] = sub
	return sub.ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if s, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(s.ch)
		}
	}
}

// Dropped returns the total number of events dropped across all
// current subscriptions because their buffers were full.
func (k *Kairos) Dropped() uint64 {
	h := &k.events
	h.mu.Lock()
	defer h.mu.Unlock()
	var n uint64
	for _, s := range h.subs {
		n += s.dropped
	}
	return n
}

// emit queues an event for publication. Called with k.mu held; the
// queued events are published by the public entry point as it
// releases the lock (unlockAndPublish).
func (k *Kairos) emit(ev Event) {
	k.pending = append(k.pending, ev)
}

// unlockAndPublish releases k.mu and delivers the pending events to
// every subscriber with a non-blocking send. The hub mutex is
// acquired BEFORE k.mu is released, so the publication order equals
// the critical-section order — concurrent manager calls cannot
// deliver an instance's Released before its Admitted. The sends
// themselves happen outside k.mu (a subscriber may call back into
// the manager; the lock order k.mu → events.mu is respected
// everywhere and nothing takes them in reverse).
func (k *Kairos) unlockAndPublish() {
	// Every critical section that may have mutated allocation state ends
	// here, so this is the single place the optimistic-admission epoch
	// advances (see optimistic.go). Bumping unconditionally is sound:
	// a spurious bump (a section that mutated nothing) costs an in-
	// flight plan at most a re-validation at commit, never a re-plan —
	// conflict detection is replay-based, not epoch-based.
	k.epoch++
	k.updateLoadLocked()
	evs := k.pending
	k.pending = nil
	if len(evs) == 0 {
		k.mu.Unlock()
		return
	}
	h := &k.events
	h.mu.Lock()
	k.mu.Unlock()
	defer h.mu.Unlock()
	for _, sub := range h.subs {
		for _, ev := range evs {
			select {
			case sub.ch <- ev:
			default:
				sub.dropped++
			}
		}
	}
}
