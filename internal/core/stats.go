package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Stats is a snapshot of the manager's lifetime counters: how many
// workflow runs succeeded, which phase rejected the failures, and how
// much time each phase consumed in total. Experiments aggregate the
// same quantities from per-attempt Records; Stats exposes them on the
// live manager so a serving deployment can export them without
// keeping every Admission around.
//
// Locking discipline: the engine mutates its Stats only under k.mu
// (record, dropLocked, readmitLocked), and Kairos.Stats copies the
// struct under the same lock, so a snapshot is always internally
// consistent — Attempts == Admitted + Rejected + Cancelled holds on
// every copy. String and MeanTimes are deliberately value receivers:
// they run on the caller's snapshot, never on the engine's live
// struct (TestStatsSnapshotConsistency hammers this under -race).
type Stats struct {
	// Attempts counts workflow runs (Admit and the admission half of
	// Readmit); Admitted, Rejected and Cancelled partition it.
	Attempts int64
	Admitted int64
	Rejected int64
	// Cancelled counts attempts abandoned between phases because the
	// caller's context was cancelled or its deadline passed; they are
	// not rejections (no phase refused the application).
	Cancelled int64
	// RejectedByPhase attributes rejections, indexed by Phase
	// (Table I's failure distribution).
	RejectedByPhase [4]int64
	// Released counts explicit releases, including the release half
	// of Readmit and ReleaseAll.
	Released int64
	// Readmitted counts successful Readmit calls; Restored counts
	// failed Readmits whose previous layout was replayed.
	Readmitted int64
	Restored   int64
	// Live is the number of currently admitted applications.
	Live int
	// CacheHits, CacheMisses and CacheFallbacks count layout-cache
	// outcomes (Options.LayoutCache): a hit committed a memoized
	// layout without binding/mapping/routing; a miss found no entry
	// for the fingerprint+sketch pair and ran the full workflow; a
	// fallback found an entry that would not replay (the platform
	// disagreed with the sketch) and ran the full workflow too. All
	// three stay zero when the cache is disabled.
	CacheHits      int64
	CacheMisses    int64
	CacheFallbacks int64
	// Conflicts and Retries count optimistic-admission outcomes
	// (Options.OptimisticAttempts, see optimistic.go): a conflict is a
	// plan that failed validate-and-commit because the platform changed
	// under it; a retry is a fresh plan made after a conflict. Every
	// conflict is followed by either a retry or — once the attempt
	// budget is spent — a serialized fallback, so Conflicts − Retries
	// aggregates the fallbacks. Both stay zero when optimism is off, and
	// under a single admitter (no concurrent mutation to conflict with).
	Conflicts int64
	Retries   int64
	// ReplanMoves counts residents moved by accepted replanning passes
	// (see replan.go); ReplanImproved counts the accepted passes
	// themselves. A pass that found no improvement touches neither.
	ReplanMoves    int64
	ReplanImproved int64
	// PhaseTotals accumulates the per-phase execution time over all
	// attempts, successful or not (the basis of Fig. 7).
	PhaseTotals PhaseTimes
}

// record accounts one workflow attempt. Called with k.mu held.
func (s *Stats) record(adm *Admission, err error) {
	s.Attempts++
	s.PhaseTotals.Binding += adm.Times.Binding
	s.PhaseTotals.Mapping += adm.Times.Mapping
	s.PhaseTotals.Routing += adm.Times.Routing
	s.PhaseTotals.Validation += adm.Times.Validation
	if err == nil {
		s.Admitted++
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.Cancelled++
		return
	}
	s.Rejected++
	if pe, ok := err.(*PhaseError); ok && pe.Phase >= 0 && int(pe.Phase) < len(s.RejectedByPhase) {
		s.RejectedByPhase[pe.Phase]++
	}
}

// MeanTimes returns the mean per-phase execution time across all
// attempts, or zero times when nothing ran yet.
func (s Stats) MeanTimes() PhaseTimes {
	if s.Attempts == 0 {
		return PhaseTimes{}
	}
	n := time.Duration(s.Attempts)
	return PhaseTimes{
		Binding:    s.PhaseTotals.Binding / n,
		Mapping:    s.PhaseTotals.Mapping / n,
		Routing:    s.PhaseTotals.Routing / n,
		Validation: s.PhaseTotals.Validation / n,
	}
}

func (s Stats) String() string {
	m := s.MeanTimes()
	return fmt.Sprintf(
		"%d attempts (%d admitted, %d rejected: %d binding / %d mapping / %d routing / %d validation), "+
			"%d live, %d released, %d readmitted; mean phase times binding %v, mapping %v, routing %v, validation %v",
		s.Attempts, s.Admitted, s.Rejected,
		s.RejectedByPhase[PhaseBinding], s.RejectedByPhase[PhaseMapping],
		s.RejectedByPhase[PhaseRouting], s.RejectedByPhase[PhaseValidation],
		s.Live, s.Released, s.Readmitted,
		m.Binding, m.Mapping, m.Routing, m.Validation)
}

// Stats returns a snapshot of the manager's counters.
func (k *Kairos) Stats() Stats {
	k.mu.Lock()
	defer k.mu.Unlock()
	s := k.stats
	s.Live = len(k.admitted)
	return s
}
