package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/resource"
	"repro/internal/routing"
)

func dspImpl(share int64, exec int64) graph.Implementation {
	return graph.Implementation{
		Name: "dsp", Target: platform.TypeDSP,
		Requires: resource.Of(share, 8, 0, 0), Cost: 1, ExecTime: exec,
	}
}

func chainApp(name string, n int, share int64) *graph.Application {
	app := graph.New(name)
	for i := 0; i < n; i++ {
		app.AddTask("t", graph.Internal, dspImpl(share, 5))
	}
	for i := 0; i+1 < n; i++ {
		app.AddChannel(i, i+1)
	}
	return app
}

func snapshotClean(t *testing.T, p *platform.Platform) {
	t.Helper()
	for _, e := range p.Elements() {
		if e.InUse() {
			t.Fatalf("element %d in use on supposedly clean platform", e.ID)
		}
	}
	for _, l := range p.Links() {
		if l.Used() != 0 {
			t.Fatalf("link %d→%d has %d VCs used on clean platform", l.From, l.To, l.Used())
		}
	}
}

func TestAdmitAndRelease(t *testing.T) {
	p := platform.Mesh(3, 3, 4)
	k := New(p, Options{Weights: mapping.WeightsBoth})
	adm, err := k.Admit(context.Background(), chainApp("app", 3, 60))
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if adm.Instance == "" || adm.Binding == nil || adm.Assignment == nil || adm.Report == nil {
		t.Fatal("admission incomplete")
	}
	if len(k.Admitted()) != 1 {
		t.Fatalf("Admitted = %d, want 1", len(k.Admitted()))
	}
	if adm.Times.Total() <= 0 {
		t.Error("phase times not recorded")
	}
	if err := k.Release(adm.Instance); err != nil {
		t.Fatalf("Release: %v", err)
	}
	snapshotClean(t, p)
	if err := k.Release(adm.Instance); !errors.Is(err, ErrUnknownInstance) {
		t.Errorf("double release = %v, want ErrUnknownInstance", err)
	}
}

func TestAdmitBindingFailureLeavesPlatformClean(t *testing.T) {
	p := platform.Mesh(2, 2, 4)
	k := New(p, Options{})
	app := graph.New("fpga-needs")
	app.AddTask("t", graph.Internal, graph.Implementation{
		Name: "fpga", Target: platform.TypeFPGA,
		Requires: resource.Of(10, 10, 0, 10), Cost: 1, ExecTime: 5,
	})
	_, err := k.Admit(context.Background(), app)
	var pe *PhaseError
	if !errors.As(err, &pe) || pe.Phase != PhaseBinding {
		t.Fatalf("error = %v, want binding PhaseError", err)
	}
	snapshotClean(t, p)
}

func TestAdmitMappingFailureLeavesPlatformClean(t *testing.T) {
	// Three 70% tasks on two connected DSPs plus one isolated DSP:
	// binding's location-free capacity estimate passes (three
	// elements fit one task each), but the mapping phase cannot
	// reach the isolated element from the origin's neighborhood.
	p := platform.New()
	a := p.AddElement(platform.TypeDSP, "a", platform.DSPCapacity)
	b := p.AddElement(platform.TypeDSP, "b", platform.DSPCapacity)
	p.AddElement(platform.TypeDSP, "island", platform.DSPCapacity)
	p.MustConnect(a, b, 4)
	k := New(p, Options{Weights: mapping.WeightsCommunication})
	_, err := k.Admit(context.Background(), chainApp("big", 3, 70))
	var pe *PhaseError
	if !errors.As(err, &pe) || pe.Phase != PhaseMapping {
		t.Fatalf("error = %v, want mapping PhaseError", err)
	}
	snapshotClean(t, p)
}

func TestAdmitRoutingFailureLeavesPlatformClean(t *testing.T) {
	// Two elements, one link with 1 VC; an app with two parallel
	// channels in the same direction maps but cannot route.
	p := platform.New()
	p.AddElement(platform.TypeDSP, "a", platform.DSPCapacity)
	p.AddElement(platform.TypeDSP, "b", platform.DSPCapacity)
	p.MustConnect(0, 1, 1)
	app := graph.New("par")
	a := app.AddTask("a", graph.Internal, dspImpl(80, 5))
	b := app.AddTask("b", graph.Internal, dspImpl(80, 5))
	app.AddChannel(a, b)
	app.AddChannel(a, b)
	k := New(p, Options{Weights: mapping.WeightsCommunication})
	_, err := k.Admit(context.Background(), app)
	var pe *PhaseError
	if !errors.As(err, &pe) || pe.Phase != PhaseRouting {
		t.Fatalf("error = %v, want routing PhaseError", err)
	}
	snapshotClean(t, p)
}

func TestAdmitValidationFailureLeavesPlatformClean(t *testing.T) {
	p := platform.Mesh(3, 3, 4)
	app := chainApp("tight", 3, 60)
	app.Constraints.MinThroughput = 1e6 // unattainable
	k := New(p, Options{})
	_, err := k.Admit(context.Background(), app)
	var pe *PhaseError
	if !errors.As(err, &pe) || pe.Phase != PhaseValidation {
		t.Fatalf("error = %v, want validation PhaseError", err)
	}
	snapshotClean(t, p)
}

func TestSkipValidationAdmitsAnyway(t *testing.T) {
	p := platform.Mesh(3, 3, 4)
	app := chainApp("tight", 3, 60)
	app.Constraints.MinThroughput = 1e6
	k := New(p, Options{SkipValidation: true})
	adm, err := k.Admit(context.Background(), app)
	if err != nil {
		t.Fatalf("Admit with SkipValidation: %v", err)
	}
	if adm.Report == nil || adm.Report.Satisfied {
		t.Error("report should exist and be unsatisfied")
	}
	if adm.Times.Validation <= 0 {
		t.Error("validation phase should still be timed")
	}
}

func TestSequentialAdmissionUntilSaturation(t *testing.T) {
	p := platform.Mesh(3, 3, 4) // 9 DSPs
	k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true})
	admitted := 0
	for i := 0; i < 12; i++ {
		if _, err := k.Admit(context.Background(), chainApp("seq", 2, 70)); err == nil {
			admitted++
		}
	}
	// Each app occupies 2 elements at 70%: at most 4 such apps on 9
	// elements (one element left for singles? 70+70 > 100, so one
	// app per element pair) → exactly 4.
	if admitted != 4 {
		t.Errorf("admitted = %d, want 4", admitted)
	}
	if k.Fragmentation() < 0 || k.Fragmentation() > 100 {
		t.Errorf("fragmentation out of range: %v", k.Fragmentation())
	}
	k.ReleaseAll()
	snapshotClean(t, p)
	if len(k.Admitted()) != 0 {
		t.Error("admissions remain after ReleaseAll")
	}
}

func TestAdmitBeamformingCaseStudy(t *testing.T) {
	p := platform.CRISP()
	ioIn := -1
	for _, e := range p.Elements() {
		if e.Name == "io-in" {
			ioIn = e.ID
		}
	}
	app := graph.Beamforming(graph.DefaultBeamforming(ioIn))
	k := New(p, Options{Weights: mapping.WeightsBoth, Router: routing.BFS{}})
	adm, err := k.Admit(context.Background(), app)
	if err != nil {
		t.Fatalf("beamforming admission failed: %v", err)
	}
	if got := len(adm.Routes); got != len(app.Channels) {
		t.Errorf("routes = %d, want %d", got, len(app.Channels))
	}
	if err := k.Release(adm.Instance); err != nil {
		t.Fatal(err)
	}
	snapshotClean(t, p)
}

func TestPhaseStringer(t *testing.T) {
	if PhaseBinding.String() != "binding" || PhaseValidation.String() != "validation" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() == "" {
		t.Error("unknown phase should still format")
	}
}
