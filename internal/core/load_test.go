package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/platform"
)

// TestLoadHintTracksAdmissions pins the load-gauge contract: the hint
// starts at zero, rises with admissions, and returns to zero after
// release.
func TestLoadHintTracksAdmissions(t *testing.T) {
	p := platform.Mesh(4, 4, 4)
	k := New(p, Options{SkipValidation: true})

	if h := k.Load(); h.Live != 0 || h.UsedShare != 0 {
		t.Fatalf("fresh manager load = %+v, want zero", h)
	}

	adm, err := k.Admit(context.Background(), chainApp("load", 3, 60))
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	h := k.Load()
	if h.Live != 1 {
		t.Errorf("Live after admit = %d, want 1", h.Live)
	}
	if h.UsedShare <= 0 || h.UsedShare > 1 {
		t.Errorf("UsedShare after admit = %v, want in (0, 1]", h.UsedShare)
	}

	if err := k.Release(adm.Instance); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if h := k.Load(); h.Live != 0 || h.UsedShare != 0 {
		t.Errorf("load after release = %+v, want zero", h)
	}
}

// TestLoadHintLockFree hammers Load from readers while writers admit
// and release; under -race this pins that the gauge is safe to sample
// without the platform-state lock.
func TestLoadHintLockFree(t *testing.T) {
	p := platform.Mesh(4, 4, 4)
	k := New(p, Options{SkipValidation: true})
	app := chainApp("load", 3, 60)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := k.Load()
				if h.Live < 0 || h.UsedShare < 0 || h.UsedShare > 1 {
					t.Errorf("inconsistent load hint %+v", h)
					return
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				adm, err := k.Admit(context.Background(), app)
				if err == nil {
					_ = k.Release(adm.Instance)
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}
