package core

// Optimistic intra-shard admission (DESIGN.md §11). The serialized
// path holds the platform-state mutex for the whole four-phase
// workflow, so a shard admits on one core no matter how many callers
// it has. This file splits an admission into a lock-free planning step
// and a short validate-and-commit critical section:
//
//  1. Snapshot (under the lock, briefly): deep-copy the platform and
//     record the allocation-state epoch. The epoch advances whenever a
//     critical section that may have mutated allocation state ends, so
//     it names the exact state the copy captured.
//  2. Plan (no lock): run bind → map → route → validate against the
//     private snapshot under a placeholder instance name. Layouts are
//     instance-rename-symmetric (see cache.go), so the placeholder is
//     free. Any number of admitters plan concurrently.
//  3. Validate-and-commit (under the lock): consume a sequence number,
//     name the instance, and replay the planned layout onto the live
//     platform. If the epoch is unchanged the platform is byte-
//     identical to the snapshot, the replay cannot fail and the plan's
//     validation verdict still stands. If the epoch moved, the checked
//     replay IS the conflict test: every placement and virtual channel
//     is re-checked against live capacity and the validation phase is
//     re-run; any failure unwinds the partial replay and reports a
//     conflict. Rejections commit only against an unchanged epoch — a
//     stale rejection may have been starved by capacity that has since
//     been freed.
//  4. Conflicts retry the whole plan against a fresh snapshot, up to
//     Options.OptimisticAttempts plans in total; after that the
//     admission takes the fully serialized path under the lock, which
//     cannot conflict — admission never livelocks.
//
// Determinism: with a single admitter the epoch never moves between
// snapshot and commit, so every committed layout is exactly what the
// serialized path would have produced, one sequence number is consumed
// per outcome (success, rejection or cancellation — the serialized
// parity), and the journal records plain OpAdmit ops. A commit whose
// epoch moved may carry a layout the workflow would no longer produce
// from the pre-commit state, so it journals a layout-carrying OpAdmit
// (see OpLayout): recovery restores the recorded layout verbatim
// instead of re-planning. Journal appends stay inside the commit
// critical section, so WAL order equals commit order either way.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/routing"
)

// planned is the outcome of one lock-free planning pass: the workflow
// result computed against a private snapshot, plus the epoch that
// snapshot captured.
type planned struct {
	// adm carries the layout (on success) or the partial admission with
	// phase times (on failure) under the placeholder instance name.
	adm *Admission
	// err is nil for a plan that admitted on the snapshot; a PhaseError
	// or cancellation otherwise.
	err error
	// epoch is the allocation-state epoch the snapshot captured.
	epoch uint64
}

// planInstance is the placeholder name a plan runs under. Committed
// instance names always end in "#<digits>" (instanceName), so the
// placeholder can never collide with an occupant of the snapshot.
func planInstance(app *graph.Application) string { return app.Name + "#plan" }

// isCancellation mirrors the partition Stats.record applies.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// planAgainst runs the four-phase workflow against the snapshot with
// no lock held. Options.AdmitTimeout budgets each planning pass
// exactly as it budgets each serialized attempt.
func (k *Kairos) planAgainst(ctx context.Context, app *graph.Application, snap *platform.Platform, epoch uint64) planned {
	if k.opts.AdmitTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, k.opts.AdmitTimeout)
		defer cancel()
	}
	adm, err := k.runWorkflow(ctx, app, planInstance(app), snap)
	return planned{adm: adm, err: err, epoch: epoch}
}

// unplan reverses a successful plan's mutations of its snapshot, so a
// worker can reuse one snapshot for several independent plans (the
// AdmitAll planning pool). Failed plans already rolled themselves back.
func unplan(snap *platform.Platform, pl planned) {
	if pl.err != nil {
		return
	}
	routing.ReleaseAll(snap, pl.adm.Routes)
	mapping.UnmapAssigned(snap, pl.adm.Instance, pl.adm.App, pl.adm.Assignment)
}

// admitOptimistic is the Admit body when optimistic admission is on.
func (k *Kairos) admitOptimistic(ctx context.Context, app *graph.Application) (*Admission, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for attempt := 0; attempt < k.opts.OptimisticAttempts; attempt++ {
		k.mu.Lock()
		if k.draining {
			// Same refusal as the serialized path: no sequence number,
			// no stats.
			k.mu.Unlock()
			return nil, fmt.Errorf("kairos: admission of %s refused: %w", app.Name, ErrDraining)
		}
		if attempt > 0 {
			// Counted before the cache lookup: a retry that the
			// conflictor's freshly inserted layout satisfies is still a
			// retry, and Conflicts − Retries must keep counting exactly
			// the serialized fallbacks (see Stats).
			k.stats.Retries++
		}
		// The layout cache consults and commits under one lock hold —
		// byte-identical to the serialized fast path, and a retry whose
		// conflictor inserted a matching layout hits it for free.
		var fp []byte
		if c := k.cache; c != nil && ctx.Err() == nil {
			c.fpBuf = appendFingerprint(c.fpBuf[:0], app)
			c.skBuf = k.appendSketch(c.skBuf[:0])
			if e := c.lookup(c.fpBuf, c.skBuf); e != nil {
				if adm, ok := k.replayCachedLocked(app, e); ok {
					k.stats.CacheHits++
					k.stats.record(adm, nil)
					err := k.commitAdmitLocked(adm)
					k.unlockAndPublish()
					return adm, err
				}
				c.drop(c.fpBuf, c.skBuf)
				k.stats.CacheFallbacks++
			} else {
				k.stats.CacheMisses++
			}
			// The shared scratch buffer is overwritten by concurrent
			// admitters once the lock drops: keep a private copy for
			// the insert at commit time.
			fp = append([]byte(nil), c.fpBuf...)
		}
		snap := k.p.Clone()
		epoch := k.epoch
		k.mu.Unlock()

		pl := k.planAgainst(ctx, app, snap, epoch)
		if k.planHook != nil {
			k.planHook()
		}

		k.mu.Lock()
		adm, done, err := k.commitPlanLocked(app, pl, fp)
		if done {
			k.unlockAndPublish()
			return adm, err
		}
		k.stats.Conflicts++
		k.mu.Unlock()
	}
	// Optimism exhausted: the serialized path under the lock cannot
	// conflict, so admission terminates.
	k.mu.Lock()
	adm, err := k.admitLocked(ctx, app)
	if err == nil {
		err = k.commitAdmitLocked(adm)
	}
	k.unlockAndPublish()
	return adm, err
}

// commitPlanLocked validates a finished plan against the live platform
// and commits it under k.mu. done reports whether the admission
// reached a final outcome; !done means the plan conflicted with state
// committed since its snapshot and must be retried.
func (k *Kairos) commitPlanLocked(app *graph.Application, pl planned, fp []byte) (*Admission, bool, error) {
	if k.draining {
		// The shard started draining while the plan ran; refuse exactly
		// as if the admission had arrived now.
		return nil, true, fmt.Errorf("kairos: admission of %s refused: %w", app.Name, ErrDraining)
	}
	exact := k.epoch == pl.epoch
	if pl.err != nil {
		if !exact && !isCancellation(pl.err) {
			// A rejection against a stale snapshot proves nothing: the
			// capacity that starved the plan may have been freed since.
			return nil, false, nil
		}
		// Cancellations are final regardless of the epoch — the
		// caller's deadline has passed, re-planning cannot help — and
		// an epoch-exact rejection is exactly the serialized verdict.
		// Both consume one sequence number, as every serialized attempt
		// does, and the placeholder gives way to the name the serialized
		// path would have reported for the failed attempt.
		k.seq++
		pl.adm.Instance = instanceName(app, k.seq)
		k.stats.record(pl.adm, pl.err)
		return pl.adm, true, pl.err
	}
	// The cache insert (when one is due) is keyed on the pre-commit
	// platform state: compute the sketch before the replay mutates it.
	// Only epoch-exact commits are cacheable — their layout is what the
	// workflow produces from the commit-time state, so a later cache
	// hit at that state may journal a plain OpAdmit and let recovery
	// re-plan. A stale plan's layout is not reproducible that way (it
	// journals OpLayout below); memoizing it would let cache hits
	// commit it without the verbatim-restore record.
	cacheable := k.cache != nil && fp != nil && exact
	var sketch []byte
	if cacheable {
		sketch = k.appendSketch(nil)
	}
	adm, ok := k.replayPlanLocked(pl.adm, !exact)
	if !ok {
		return nil, false, nil
	}
	k.stats.record(adm, nil)
	if cacheable {
		k.cache.insert(fp, sketch, adm)
	}
	var layout *OpLayout
	if !exact {
		// The committed layout was planned against an older epoch;
		// recovery must restore it verbatim, not re-plan (see journal
		// ordering note atop this file).
		layout = layoutOf(adm)
	}
	return adm, true, k.commitAdmitOpLocked(adm, layout)
}

// replayPlanLocked replays a successful plan's layout onto the live
// platform under a freshly consumed sequence number. With validate set
// (the snapshot's epoch is stale) every placement and virtual channel
// is a live capacity check and the validation phase is re-run; without
// it the platform is byte-identical to the snapshot and the checks are
// pure paranoia against external mutation. Any failure unwinds the
// partial replay, returns the sequence number and reports !ok.
func (k *Kairos) replayPlanLocked(pl *Admission, validate bool) (*Admission, bool) {
	k.seq++
	adm := &Admission{
		Instance:   instanceName(pl.App, k.seq),
		App:        pl.App,
		Binding:    pl.Binding,
		Assignment: pl.Assignment,
		MapStats:   pl.MapStats,
		Report:     pl.Report,
		Times:      pl.Times,
	}
	placed := 0
	fail := false
	for _, t := range pl.App.Tasks {
		occ := platform.Occupant{App: adm.Instance, Task: t.ID}
		if perr := k.p.Place(pl.Assignment[t.ID], occ, pl.Binding.Demand(t.ID)); perr != nil {
			fail = true
			break
		}
		placed++
	}
	if !fail {
		allocated := make([]routing.Route, 0, len(pl.Routes))
	alloc:
		for _, rt := range pl.Routes {
			for i := 0; i+1 < len(rt.Path); i++ {
				if perr := k.p.AllocVC(rt.Path[i], rt.Path[i+1]); perr != nil {
					for j := 0; j < i; j++ {
						_ = k.p.ReleaseVC(rt.Path[j], rt.Path[j+1])
					}
					fail = true
					break alloc
				}
			}
			allocated = append(allocated, rt)
		}
		if !fail {
			adm.Routes = pl.Routes
			if validate && !k.opts.DisableValidation {
				start := time.Now()
				rep, verr := k.opts.validator().Validate(adm.App, adm.Binding, adm.Assignment, adm.Routes, k.p, k.opts.Validation)
				adm.Times.Validation += time.Since(start)
				adm.Report = rep
				if verr != nil && !k.opts.SkipValidation {
					routing.ReleaseAll(k.p, adm.Routes)
					fail = true
				}
			}
		} else {
			routing.ReleaseAll(k.p, allocated)
		}
	}
	if fail {
		for _, t := range pl.App.Tasks[:placed] {
			occ := platform.Occupant{App: adm.Instance, Task: t.ID}
			_ = k.p.Remove(pl.Assignment[t.ID], occ)
		}
		k.seq--
		return nil, false
	}
	k.admitted[adm.Instance] = adm
	return adm, true
}

// layoutOf extracts the journal layout record of a committed
// admission. The slices are shared: an admission's layout is immutable
// once committed.
func layoutOf(adm *Admission) *OpLayout {
	impls := make([]int, len(adm.App.Tasks))
	for i := range impls {
		impls[i] = adm.Binding.ImplIndex(i)
	}
	return &OpLayout{Impls: impls, Assignment: adm.Assignment, Routes: adm.Routes}
}

// admitAllOptimistic is the AdmitAll body when optimistic admission is
// on and more than one entry survived filtering. Every surviving entry
// is planned in parallel against the batch-start platform state — a
// worker pool strides over the sorted order, each worker reusing one
// private snapshot by unwinding each successful plan before the next —
// and the plans commit under a single lock hold in the same
// largest-first order the serialized path uses.
//
// The first commit is checked against a platform that (absent outside
// interference) equals the batch-start state, so it lands as planned;
// every later commit replays against a state the plan did not see —
// earlier batch entries have landed — so it runs the full checked
// replay with re-validation, exactly like an out-of-epoch single
// admission. An entry whose plan no longer fits (or whose rejection is
// no longer conclusive) counts one conflict and is re-planned serially
// on the spot, in order, under the same lock hold.
//
// Both planning (order and snapshot are fixed) and commit (order is
// fixed, each step is deterministic in the state the previous steps
// built) are scheduling-independent, so the batch outcome is
// deterministic for a fixed input and starting state. Layouts may
// legitimately differ from the fully serialized mode's: serialized
// entries each observe their predecessors, optimistic plans
// deliberately don't (that is where the parallelism comes from).
func (k *Kairos) admitAllOptimistic(ctx context.Context, apps []*graph.Application, order []int, results []BatchResult) {
	if ctx == nil {
		ctx = context.Background()
	}
	k.mu.Lock()
	base := k.p.Clone()
	baseEpoch := k.epoch
	k.mu.Unlock()

	workers := runtime.GOMAXPROCS(0)
	if workers > len(order) {
		workers = len(order)
	}
	plans := make([]planned, len(order))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Workers never share a platform: even worker 0 clones, so
			// no plan mutates the base another worker is copying.
			snap := base.Clone()
			for oi := w; oi < len(order); oi += workers {
				pl := k.planAgainst(ctx, apps[order[oi]], snap, baseEpoch)
				plans[oi] = pl
				unplan(snap, pl)
			}
		}(w)
	}
	wg.Wait()
	if k.planHook != nil {
		k.planHook()
	}

	k.mu.Lock()
	// diverged tracks whether the live platform still equals the state
	// the plans were computed against; the first committed entry (or
	// any outside commit since the snapshot) flips it.
	diverged := k.epoch != baseEpoch
	for oi, i := range order {
		pl := plans[oi]
		if k.draining {
			results[i].Err = fmt.Errorf("kairos: admission of %s refused: %w", apps[i].Name, ErrDraining)
			continue
		}
		if pl.err != nil {
			if isCancellation(pl.err) || !diverged {
				// Final, exactly as in commitPlanLocked.
				k.seq++
				pl.adm.Instance = instanceName(apps[i], k.seq)
				k.stats.record(pl.adm, pl.err)
				results[i].Admission, results[i].Err = pl.adm, pl.err
				continue
			}
		} else {
			if adm, ok := k.replayPlanLocked(pl.adm, diverged); ok {
				k.stats.record(adm, nil)
				var layout *OpLayout
				if diverged {
					layout = layoutOf(adm)
				}
				results[i].Admission = adm
				results[i].Err = k.commitAdmitOpLocked(adm, layout)
				diverged = true
				continue
			}
		}
		// The plan conflicted with state it did not see — an earlier
		// batch entry or an outside commit. Re-plan serially in place:
		// the batch's commit order, and so its determinism, is kept.
		k.stats.Conflicts++
		results[i].Admission, results[i].Err = k.admitLocked(ctx, apps[i])
		if results[i].Err == nil {
			results[i].Err = k.commitAdmitLocked(results[i].Admission)
			diverged = true
		}
	}
	k.unlockAndPublish()
}
