package core

import (
	"context"
	"fmt"
	"sort"
)

// This file is the manager's fault-handling surface: finding the
// admissions whose execution layouts touch faulty hardware and forcing
// them through the restart path. The paper motivates run-time resource
// management partly by fault tolerance (§I: circumventing "imperfect
// production processes and wear of materials"); because task migration
// is impossible (§I-A), restarting an application — release plus fresh
// admission — is the only way to move it off a dead element or link.

// ReadmitOutcome classifies what ReadmitAffected did to one instance.
type ReadmitOutcome int

const (
	// ReadmitMoved: re-admission succeeded; the application runs under
	// NewInstance with a fresh layout that avoids disabled resources.
	ReadmitMoved ReadmitOutcome = iota
	// ReadmitRestored: re-admission failed; the previous layout was
	// replayed and the application keeps running where it was
	// (including on disabled elements, which the platform tolerates
	// for existing placements).
	ReadmitRestored
	// ReadmitEvicted: re-admission failed and the layout replay also
	// failed; the application is gone.
	ReadmitEvicted
)

func (o ReadmitOutcome) String() string {
	switch o {
	case ReadmitMoved:
		return "moved"
	case ReadmitRestored:
		return "restored"
	case ReadmitEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// ReadmitResult is the outcome of one forced readmission.
type ReadmitResult struct {
	// Instance is the instance name before the sweep.
	Instance string
	Outcome  ReadmitOutcome
	// NewInstance is the instance name after a successful move (the
	// restart allocates a fresh admission); equal to Instance for
	// ReadmitRestored, empty for ReadmitEvicted.
	NewInstance string
	// Adm is the application's live admission after the readmission:
	// the fresh one for ReadmitMoved, the replayed old one for
	// ReadmitRestored, nil for ReadmitEvicted.
	Adm *Admission
	// Err is the admission error for Restored and Evicted outcomes.
	Err error
}

// AffectedInstances returns, in sorted order, the instances whose
// execution layout touches a disabled element or a disabled link: the
// applications a fault handler should restart.
func (k *Kairos) AffectedInstances() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.affectedLocked()
}

func (k *Kairos) affectedLocked() []string {
	var out []string
	for name, adm := range k.admitted {
		if k.touchesFault(adm) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// touchesFault reports whether the admission's layout uses a disabled
// element or crosses a disabled link.
func (k *Kairos) touchesFault(adm *Admission) bool {
	for _, t := range adm.App.Tasks {
		if e := k.p.Element(adm.Assignment[t.ID]); e != nil && !e.Enabled() {
			return true
		}
	}
	for _, rt := range adm.Routes {
		for i := 0; i+1 < len(rt.Path); i++ {
			if l := k.p.Link(rt.Path[i], rt.Path[i+1]); l != nil && !l.Enabled() {
				return true
			}
		}
	}
	return false
}

// ReadmitAffected restarts every admission whose layout touches a
// disabled element or link, in sorted instance order, as one atomic
// sweep (no admissions or releases interleave). Each instance either
// moves to a fresh layout, is restored to its old one when re-admission
// fails, or — only if the platform state was corrupted externally — is
// evicted. The sweep is what a fault handler runs after disabling
// hardware, the run-time analogue of the paper's restart-based fault
// circumvention.
func (k *Kairos) ReadmitAffected(ctx context.Context) []ReadmitResult {
	k.mu.Lock()
	affected := k.affectedLocked()
	results := make([]ReadmitResult, 0, len(affected))
	for _, name := range affected {
		results = append(results, k.readmitClassifiedLocked(ctx, name))
	}
	k.unlockAndPublish()
	return results
}

// ReadmitClassified restarts one instance like Readmit but returns
// the outcome as a ReadmitResult instead of the raw (Admission, error)
// pair — the form defragmentation policies consume. An unknown
// instance classifies as ReadmitEvicted with the lookup error.
func (k *Kairos) ReadmitClassified(ctx context.Context, instance string) ReadmitResult {
	k.mu.Lock()
	res := k.readmitClassifiedLocked(ctx, instance)
	k.unlockAndPublish()
	return res
}

func (k *Kairos) readmitClassifiedLocked(ctx context.Context, name string) ReadmitResult {
	res := ReadmitResult{Instance: name}
	adm, err := k.readmitLocked(ctx, name)
	res.Adm = adm
	switch {
	case err == nil:
		res.Outcome = ReadmitMoved
		res.NewInstance = adm.Instance
	case adm != nil: // restored under the old name
		res.Outcome = ReadmitRestored
		res.NewInstance = name
		res.Err = err
	default:
		res.Outcome = ReadmitEvicted
		res.Err = err
	}
	return res
}
