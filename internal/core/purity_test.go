package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/appgen"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/resource"
)

// allocState renders the complete allocation state the rollback
// contract covers — per-element pools and occupants, per-link virtual
// channels, external fragmentation, and the manager's live count — as
// one string, so "unchanged" is literal byte identity. Element wear is
// deliberately excluded: failed attempts wear the elements they
// touched (material degradation is not rolled back).
func allocState(p *platform.Platform, k *Kairos) string {
	var b strings.Builder
	for _, e := range p.Elements() {
		fmt.Fprintf(&b, "e%d used=%v occ=%v\n", e.ID, e.Pool().Used(), e.Occupants())
	}
	for _, l := range p.Links() {
		fmt.Fprintf(&b, "l%d-%d used=%d\n", l.From, l.To, l.Used())
	}
	fmt.Fprintf(&b, "frag=%.9f live=%d\n", p.ExternalFragmentation(), k.Stats().Live)
	return b.String()
}

// admitExpectingFailure admits an application that must be rejected
// and asserts the platform state is byte-identical to before the
// attempt.
func admitExpectingFailure(t *testing.T, k *Kairos, p *platform.Platform,
	app *graph.Application, wantPhase Phase) {
	t.Helper()
	before := allocState(p, k)
	_, err := k.Admit(context.Background(), app)
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("app %s: error = %v, want PhaseError", app.Name, err)
	}
	if pe.Phase != wantPhase {
		t.Fatalf("app %s: rejected in %v, want %v", app.Name, pe.Phase, wantPhase)
	}
	if after := allocState(p, k); after != before {
		t.Errorf("app %s: failed %v admit mutated the platform:\n--- before\n%s--- after\n%s",
			app.Name, pe.Phase, before, after)
	}
}

// TestRollbackPurityPerPhase forces a rejection in each of the four
// workflow phases — via doctored applications and constraints — on a
// platform that already carries admissions, and asserts the failed
// attempt leaves no trace.
func TestRollbackPurityPerPhase(t *testing.T) {
	t.Run("binding", func(t *testing.T) {
		p := platform.Mesh(2, 2, 4)
		k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true})
		if _, err := k.Admit(context.Background(), chainApp("pre", 2, 40)); err != nil {
			t.Fatal(err)
		}
		app := graph.New("wants-fpga")
		app.AddTask("t", graph.Internal, graph.Implementation{
			Name: "f", Target: platform.TypeFPGA,
			Requires: resource.Of(10, 10, 0, 10), Cost: 1, ExecTime: 5,
		})
		admitExpectingFailure(t, k, p, app, PhaseBinding)
	})

	t.Run("mapping", func(t *testing.T) {
		// Binding's location-free estimate passes, but the third task
		// cannot be reached from the origin's neighborhood.
		p := platform.New()
		a := p.AddElement(platform.TypeDSP, "a", platform.DSPCapacity)
		b := p.AddElement(platform.TypeDSP, "b", platform.DSPCapacity)
		p.AddElement(platform.TypeDSP, "island", platform.DSPCapacity)
		p.MustConnect(a, b, 4)
		k := New(p, Options{Weights: mapping.WeightsCommunication, SkipValidation: true})
		admitExpectingFailure(t, k, p, chainApp("big", 3, 70), PhaseMapping)
	})

	t.Run("routing", func(t *testing.T) {
		// Two elements, one VC per direction; the pre-admitted app
		// holds the only forward lane.
		p := platform.New()
		p.AddElement(platform.TypeDSP, "a", platform.DSPCapacity)
		p.AddElement(platform.TypeDSP, "b", platform.DSPCapacity)
		p.MustConnect(0, 1, 1)
		k := New(p, Options{Weights: mapping.WeightsCommunication, SkipValidation: true})
		pre := graph.New("pre")
		t0 := pre.AddTask("t0", graph.Internal, dspImpl(60, 5))
		t1 := pre.AddTask("t1", graph.Internal, dspImpl(60, 5))
		pre.AddChannel(t0, t1)
		if _, err := k.Admit(context.Background(), pre); err != nil {
			t.Fatal(err)
		}
		// The next app's tasks cannot co-locate (40+40 exceeds the 40%
		// left per element) and its two parallel channels cannot share
		// the element pair's lone directed VC.
		next := graph.New("blocked")
		u0 := next.AddTask("u0", graph.Internal, dspImpl(40, 5))
		u1 := next.AddTask("u1", graph.Internal, dspImpl(40, 5))
		next.AddChannel(u0, u1)
		next.AddChannel(u0, u1)
		admitExpectingFailure(t, k, p, next, PhaseRouting)
	})

	t.Run("validation", func(t *testing.T) {
		p := platform.Mesh(3, 3, 4)
		k := New(p, Options{Weights: mapping.WeightsBoth})
		if _, err := k.Admit(context.Background(), chainApp("pre", 2, 40)); err != nil {
			t.Fatal(err)
		}
		app := chainApp("tight", 3, 30)
		app.Constraints.MinThroughput = 1e9 // doctored: unattainable
		admitExpectingFailure(t, k, p, app, PhaseValidation)
	})
}

// TestRollbackPurityRandomized drives randomized applications onto
// randomized irregular platforms and asserts every naturally occurring
// rejection — whatever the phase — leaves the allocation state
// byte-identical; forced binding and validation rejections are mixed
// in on the live state of every platform.
func TestRollbackPurityRandomized(t *testing.T) {
	const seeds = 20
	phaseSeen := make(map[Phase]int)
	for seed := int64(0); seed < seeds; seed++ {
		r := rand.New(rand.NewSource(seed))
		p := platform.Irregular(6+r.Intn(10), seed)
		k := New(p, Options{Weights: mapping.WeightsBoth})

		cfg := appgen.NewConfig(
			appgen.Profile(r.Intn(2)),
			appgen.Size(r.Intn(3)),
		)
		for i, app := range appgen.Dataset(cfg, 12, seed) {
			before := allocState(p, k)
			_, err := k.Admit(context.Background(), app)
			if err == nil {
				continue // successes legitimately change the platform
			}
			var pe *PhaseError
			if !errors.As(err, &pe) {
				t.Fatalf("seed %d app %d: non-phase error %v", seed, i, err)
			}
			phaseSeen[pe.Phase]++
			if after := allocState(p, k); after != before {
				t.Fatalf("seed %d app %d: failed %v admit mutated the platform", seed, i, pe.Phase)
			}
		}

		// Forced binding rejection: Irregular platforms have no FPGA.
		fpga := graph.New("forced-binding")
		fpga.AddTask("t", graph.Internal, graph.Implementation{
			Name: "f", Target: platform.TypeFPGA,
			Requires: resource.Of(1, 1, 0, 1), Cost: 1, ExecTime: 5,
		})
		admitExpectingFailure(t, k, p, fpga, PhaseBinding)

		// Forced validation rejection via a doctored constraint, when
		// a small app still fits.
		tight := chainApp("forced-validation", 1, 5)
		tight.Constraints.MinThroughput = 1e9
		if before := allocState(p, k); true {
			_, err := k.Admit(context.Background(), tight)
			var pe *PhaseError
			if errors.As(err, &pe) && pe.Phase == PhaseValidation {
				phaseSeen[PhaseValidation]++
				if after := allocState(p, k); after != before {
					t.Fatalf("seed %d: failed validation admit mutated the platform", seed)
				}
			} else if err == nil {
				t.Fatalf("seed %d: unattainable constraint admitted", seed)
			}
		}
	}
	// The property run must actually have exercised the interesting
	// rollback paths, not just trivial binding rejections.
	for _, ph := range []Phase{PhaseBinding, PhaseMapping, PhaseRouting, PhaseValidation} {
		if phaseSeen[ph] == 0 {
			t.Errorf("randomized run never rejected in the %v phase (seen: %v)", ph, phaseSeen)
		}
	}
}

// TestReadmitRestorePurity covers the restore half of the rollback
// contract: a failed Readmit must leave the allocation state —
// including instance names and routes — byte-identical to before the
// call, for crafted and randomized workloads.
func TestReadmitRestorePurity(t *testing.T) {
	t.Run("crafted", func(t *testing.T) {
		p := platform.Mesh(2, 2, 4)
		k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true})
		adm, err := k.Admit(context.Background(), chainApp("a", 4, 70))
		if err != nil {
			t.Fatal(err)
		}
		p.DisableElement(adm.Assignment[0])
		before := allocState(p, k)
		if _, err := k.Readmit(context.Background(), adm.Instance); err == nil {
			t.Fatal("readmit should fail: a used element is disabled and there is no slack")
		}
		if after := allocState(p, k); after != before {
			t.Errorf("failed readmit mutated the platform:\n--- before\n%s--- after\n%s", before, after)
		}
	})

	t.Run("randomized", func(t *testing.T) {
		restores := 0
		for seed := int64(0); seed < 15; seed++ {
			p := platform.Irregular(8, 100+seed)
			k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true})
			cfg := appgen.NewConfig(appgen.Communication, appgen.Small)
			var instances []string
			for _, app := range appgen.Dataset(cfg, 6, seed) {
				if adm, err := k.Admit(context.Background(), app); err == nil {
					instances = append(instances, adm.Instance)
				}
			}
			if len(instances) == 0 {
				continue
			}
			// Disable every element so re-admission cannot succeed,
			// then force each instance through the restore path.
			for _, e := range p.Elements() {
				p.DisableElement(e.ID)
			}
			for _, inst := range instances {
				before := allocState(p, k)
				if _, err := k.Readmit(context.Background(), inst); err == nil {
					t.Fatalf("seed %d: readmit succeeded on a fully disabled platform", seed)
				}
				restores++
				if after := allocState(p, k); after != before {
					t.Fatalf("seed %d instance %s: failed readmit mutated the platform", seed, inst)
				}
			}
		}
		if restores == 0 {
			t.Fatal("randomized run exercised no restore paths")
		}
	})
}

// TestEvictEventsOnReadmit asserts the Evicted event fires exactly
// when an admission is definitively gone: EvictReadmit on a
// successful readmission, EvictLost when a corrupted platform makes
// both the re-admission and the layout replay impossible. (The event
// stream replaced the old lock-held OnEvict callback.)
func TestEvictEventsOnReadmit(t *testing.T) {
	type evt struct {
		instance string
		reason   EvictReason
	}
	p := platform.Mesh(2, 2, 4)
	k := New(p, Options{
		Weights:        mapping.WeightsBoth,
		SkipValidation: true,
	})
	ch, cancel := k.Subscribe()
	defer cancel()
	// drainEvictions collects the Evicted events delivered so far
	// (the publish happens before the mutating call returns, so no
	// waiting is needed in this single-goroutine test).
	drainEvictions := func() []evt {
		var events []evt
		for {
			select {
			case ev := <-ch:
				if e, ok := ev.(Evicted); ok {
					events = append(events, evt{e.Adm.Instance, e.Reason})
				}
			default:
				return events
			}
		}
	}
	adm, err := k.Admit(context.Background(), chainApp("a", 1, 70))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Readmit(context.Background(), adm.Instance); err != nil {
		t.Fatalf("readmit: %v", err)
	}
	if events := drainEvictions(); len(events) != 1 || events[0].reason != EvictReadmit || events[0].instance != adm.Instance {
		t.Fatalf("events after successful readmit = %v, want one EvictReadmit for %s", events, adm.Instance)
	}

	// Corrupt the platform behind the manager's back: drop the app's
	// placement, park a bigger foreign occupant in the hole so the old
	// layout cannot be replayed, and disable the other elements so
	// re-admission fails too.
	cur := k.Admitted()
	if len(cur) != 1 {
		t.Fatal("expected one admission")
	}
	var inst string
	var a *Admission
	for inst, a = range cur {
	}
	home := a.Assignment[0]
	for _, e := range p.Elements() {
		if e.ID != home {
			p.DisableElement(e.ID)
		}
	}
	if err := p.Remove(home, platform.Occupant{App: inst, Task: 0}); err != nil {
		t.Fatal(err)
	}
	if err := p.Place(home, platform.Occupant{App: "intruder", Task: 0}, resource.Of(80, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Readmit(context.Background(), inst); err == nil {
		t.Fatal("readmit must fail on the corrupted platform")
	}
	if events := drainEvictions(); len(events) != 1 || events[0].reason != EvictLost {
		t.Fatalf("events = %v, want exactly one EvictLost", events)
	}
	if len(k.Admitted()) != 0 {
		t.Error("evicted admission still tracked")
	}
	// The failed replay must not leak: only the intruder remains.
	if got := p.Element(home).Occupants(); len(got) != 1 || got[0].App != "intruder" {
		t.Errorf("occupants after eviction = %v, want only the intruder", got)
	}
}
