package core

// This file is the engine's offline-replanning surface: a fifth
// strategy seam (Replanner) beside the four phase strategies. A
// replanner operates on a sandbox — a private clone of the platform
// carrying the live resident set — and improves the placement by
// composite moves: release a neighborhood of residents, re-admit them
// in a candidate order through the ordinary four-phase workflow, keep
// the result only if it helps. The engine then applies the sandbox's
// accepted plan to the live platform under one lock hold and journals
// it as a single atomic OpReplan record, so a crash either keeps the
// whole plan or none of it (the write-ahead log refuses further
// appends after an I/O failure, which rules out multi-record
// compensation).

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/routing"
)

// DefaultReplanBudget bounds a replan pass when neither the call nor
// Options.ReplanBudget says otherwise. The budget is counted in
// re-admission attempts (workflow runs), never wall-clock, so a pass
// is deterministic for a fixed seed.
const DefaultReplanBudget = 64

// ErrNoReplanner is returned by Replan when no Replanner is
// configured.
var ErrNoReplanner = errors.New("kairos: no replanner configured")

// Replanner is the offline-replanning strategy seam. Replan explores
// composite moves through the sandbox and returns the total objective
// cost of the resident set before and after its pass; the engine
// commits the sandbox's final layout only when after < before.
// Implementations must be deterministic: any randomness comes from
// their own seeded source, and effort is bounded by the sandbox's
// move budget, never by time.
type Replanner interface {
	Replan(sb *ReplanSandbox) (before, after float64)
	Name() string
}

// shuffleRecord remembers one accepted Shuffle so Undo can reverse it.
type shuffleRecord struct {
	members []string
	prev    []*Admission
	next    []*Admission
}

// ReplanSandbox is the state a Replanner works on: a private clone of
// the platform carrying the resident set at the start of the pass.
// Every mutation goes through Shuffle/Undo, which keep the clone and
// the per-resident layouts consistent; the live engine is untouched
// until the pass ends and the engine decides to commit. Residents keep
// their live instance names inside the sandbox — renaming to fresh
// sequence numbers happens only at commit.
type ReplanSandbox struct {
	k      *Kairos
	ctx    context.Context
	p      *platform.Platform
	names  []string
	cur    map[string]*Admission
	budget int
	used   int
	last   *shuffleRecord
}

// Platform returns the sandbox's private platform clone. Read it
// freely (distances, capacities); mutate it only through Shuffle.
func (sb *ReplanSandbox) Platform() *platform.Platform { return sb.p }

// Residents returns the resident instance names, sorted, as a fresh
// slice the caller may reorder.
func (sb *ReplanSandbox) Residents() []string {
	return append([]string(nil), sb.names...)
}

// Layout returns the resident's current sandbox layout, or nil for an
// unknown instance. The returned Admission is shared bookkeeping —
// callers must not mutate it.
func (sb *ReplanSandbox) Layout(instance string) *Admission { return sb.cur[instance] }

// Remaining returns the move budget left; Used returns the moves
// consumed. Each re-admission attempt of a Shuffle costs one move.
func (sb *ReplanSandbox) Remaining() int { return sb.budget - sb.used }

// Used returns the number of moves consumed so far.
func (sb *ReplanSandbox) Used() int { return sb.used }

// Shuffle tentatively re-places a neighborhood: the named residents
// are released from the sandbox platform and re-admitted one by one,
// in the given order, through the ordinary four-phase workflow. It
// reports whether the whole neighborhood was re-admitted; on failure
// (or when the member list is invalid or exceeds the remaining
// budget) the sandbox is restored exactly as before the call. Each
// re-admission attempt consumes one unit of budget; a refused call
// that never ran the workflow consumes none. A successful Shuffle can
// be reversed by Undo until the next Shuffle.
func (sb *ReplanSandbox) Shuffle(members []string) bool {
	if len(members) == 0 || sb.used+len(members) > sb.budget {
		return false
	}
	seen := make(map[string]bool, len(members))
	prev := make([]*Admission, len(members))
	for i, m := range members {
		adm := sb.cur[m]
		if adm == nil || seen[m] {
			return false
		}
		seen[m] = true
		prev[i] = adm
	}
	for _, adm := range prev {
		routing.ReleaseAll(sb.p, adm.Routes)
		mapping.UnmapAssigned(sb.p, adm.Instance, adm.App, adm.Assignment)
	}
	next := make([]*Admission, len(members))
	for i, m := range members {
		sb.used++
		adm, err := sb.k.runWorkflow(sb.ctx, prev[i].App, m, sb.p)
		if err != nil {
			// Unwind the members already re-placed, then put every
			// previous layout back. The resources just came free, so
			// the restore cannot fail.
			for j := 0; j < i; j++ {
				routing.ReleaseAll(sb.p, next[j].Routes)
				mapping.UnmapAssigned(sb.p, next[j].Instance, next[j].App, next[j].Assignment)
			}
			for _, old := range prev {
				_ = restoreLayout(sb.p, old)
			}
			return false
		}
		next[i] = adm
	}
	for i, m := range members {
		sb.cur[m] = next[i]
	}
	sb.last = &shuffleRecord{members: members, prev: prev, next: next}
	return true
}

// Undo reverses the last successful Shuffle (the consumed budget
// stays spent). It reports whether there was one to reverse.
func (sb *ReplanSandbox) Undo() bool {
	rec := sb.last
	if rec == nil {
		return false
	}
	for _, adm := range rec.next {
		routing.ReleaseAll(sb.p, adm.Routes)
		mapping.UnmapAssigned(sb.p, adm.Instance, adm.App, adm.Assignment)
	}
	for i, old := range rec.prev {
		_ = restoreLayout(sb.p, old)
		sb.cur[rec.members[i]] = old
	}
	sb.last = nil
	return true
}

// ReplanMove is one applied move of an accepted replan: the resident
// From was retired and its application re-admitted under the fresh
// instance name To with the sandbox's layout.
type ReplanMove struct {
	From, To string
	Adm      *Admission
}

// ReplanResult reports one replan pass: the moves applied (empty when
// the pass found no improvement), the replanner's objective cost
// before and after, the budget consumed, and whether the plan was
// committed.
type ReplanResult struct {
	Moves      []ReplanMove
	CostBefore float64
	CostAfter  float64
	Evaluated  int
	Improved   bool
}

// Replan runs one offline replanning pass with the configured
// replanner and budget (Options.ReplanBudget, defaulting to
// DefaultReplanBudget): the replanner explores composite moves on a
// sandbox clone of the platform, and the engine commits the resulting
// layout only when it strictly improves the replanner's objective —
// rejection leaves the live platform byte-identical to before the
// call. An accepted plan retires every moved resident and re-admits
// its application under a fresh instance name (task migration is
// impossible, §I-A — moving is restarting), journaled as one atomic
// OpReplan record; subscribers observe an Evicted(EvictReadmit) +
// Admitted pair per move. The context gates the sandbox's workflow
// runs exactly as in Admit.
func (k *Kairos) Replan(ctx context.Context) (*ReplanResult, error) {
	return k.ReplanWithBudget(ctx, 0)
}

// ReplanWithBudget is Replan with an explicit move budget for this
// pass; budget <= 0 falls back to the configured default.
func (k *Kairos) ReplanWithBudget(ctx context.Context, budget int) (*ReplanResult, error) {
	r := k.opts.Replanner
	if r == nil {
		return nil, ErrNoReplanner
	}
	if budget <= 0 {
		budget = k.opts.ReplanBudget
	}
	if budget <= 0 {
		budget = DefaultReplanBudget
	}
	if ctx == nil {
		ctx = context.Background()
	}
	k.mu.Lock()
	defer k.unlockAndPublish()
	if k.draining {
		return nil, fmt.Errorf("kairos: replan refused: %w", ErrDraining)
	}
	res := &ReplanResult{}
	if len(k.admitted) == 0 {
		return res, nil
	}
	sb := &ReplanSandbox{
		k:      k,
		ctx:    ctx,
		p:      k.p.Clone(),
		names:  make([]string, 0, len(k.admitted)),
		cur:    make(map[string]*Admission, len(k.admitted)),
		budget: budget,
	}
	for name, adm := range k.admitted {
		sb.names = append(sb.names, name)
		sb.cur[name] = adm
	}
	sort.Strings(sb.names)

	res.CostBefore, res.CostAfter = r.Replan(sb)
	res.Evaluated = sb.used

	var changed []string
	for _, name := range sb.names {
		if sb.cur[name] != k.admitted[name] {
			changed = append(changed, name)
		}
	}
	if len(changed) == 0 || res.CostAfter >= res.CostBefore {
		// Rejected (or nothing moved): the sandbox clone is discarded
		// and the live platform was never touched.
		return res, nil
	}
	return res, k.commitReplanLocked(res, sb, changed)
}

// commitReplanLocked applies an accepted plan to the live platform:
// every changed resident is retired, its sandbox layout restored under
// a fresh instance name, and the whole composite journaled as one
// OpReplan record. On journal failure the composite is fully unwound —
// allocation state byte-identical to before the pass — and the
// ErrJournal-wrapped error returned. Called with k.mu held; changed is
// sorted.
func (k *Kairos) commitReplanLocked(res *ReplanResult, sb *ReplanSandbox, changed []string) error {
	olds := make([]*Admission, len(changed))
	news := make([]*Admission, len(changed))
	ops := make([]OpMove, len(changed))
	for i, name := range changed {
		olds[i] = k.admitted[name]
		k.dropLocked(olds[i])
	}
	for i, name := range changed {
		adm := sb.cur[name]
		k.seq++
		adm.Instance = instanceName(adm.App, k.seq)
		if err := k.restoreLayoutLocked(adm); err != nil {
			// Impossible unless the platform was mutated behind the
			// manager's back: the sandbox proved the combined layout
			// fits. Unwind what was restored and put the old set back.
			for j := 0; j < i; j++ {
				routing.ReleaseAll(k.p, news[j].Routes)
				mapping.UnmapAssigned(k.p, news[j].Instance, news[j].App, news[j].Assignment)
				delete(k.admitted, news[j].Instance)
				k.stats.Attempts--
				k.stats.Admitted--
			}
			for _, old := range olds {
				_ = k.restoreLayoutLocked(old)
				k.admitted[old.Instance] = old
			}
			k.stats.Released -= int64(len(olds))
			return fmt.Errorf("kairos: replan commit failed restoring %q: %w", adm.Instance, err)
		}
		k.admitted[adm.Instance] = adm
		k.stats.record(adm, nil)
		news[i] = adm
		ops[i] = OpMove{Seq: k.seq, From: name, To: adm.Instance, Layout: *layoutOf(adm)}
	}
	if jerr := k.journalLocked(Op{Kind: OpReplan, Seq: k.seq, Moves: ops}); jerr != nil {
		// The plan is not durable, so it must not happen: unwind every
		// fresh placement and replay every retired layout (their
		// resources just came free, so replay cannot fail).
		for _, adm := range news {
			k.unwindAdmitLocked(adm)
		}
		for _, old := range olds {
			_ = k.restoreLayoutLocked(old)
			k.admitted[old.Instance] = old
		}
		k.stats.Released -= int64(len(olds))
		return jerr
	}
	res.Moves = make([]ReplanMove, len(changed))
	for i, name := range changed {
		res.Moves[i] = ReplanMove{From: name, To: news[i].Instance, Adm: news[i]}
		k.emit(Evicted{Adm: olds[i], Reason: EvictReadmit})
		k.emit(Admitted{Adm: news[i]})
	}
	k.stats.ReplanMoves += int64(len(changed))
	k.stats.ReplanImproved++
	res.Improved = true
	return nil
}

// replayReplanLocked re-applies one OpReplan record during recovery:
// every moved resident is dropped, then every recorded layout restored
// under its recorded fresh name, exactly as the original commit did.
// Called with k.mu held.
func (k *Kairos) replayReplanLocked(op Op) error {
	if len(op.Moves) == 0 {
		return errors.New("kairos: replan record without moves")
	}
	olds := make([]*Admission, len(op.Moves))
	for i, m := range op.Moves {
		old, ok := k.admitted[m.From]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownInstance, m.From)
		}
		if want := instanceName(old.App, m.Seq); want != m.To {
			return fmt.Errorf("kairos: replan record names %q, seq %d implies %q", m.To, m.Seq, want)
		}
		olds[i] = old
	}
	for _, old := range olds {
		k.dropLocked(old)
	}
	for i, m := range op.Moves {
		adm, err := admissionFromLayout(olds[i].App, m.To, &op.Moves[i].Layout)
		if err != nil {
			return err
		}
		if rerr := k.restoreLayoutLocked(adm); rerr != nil {
			return rerr
		}
		k.admitted[adm.Instance] = adm
		k.stats.record(adm, nil)
	}
	k.seq = op.Seq
	k.stats.ReplanMoves += int64(len(op.Moves))
	k.stats.ReplanImproved++
	return nil
}

// admissionFromLayout rebuilds an Admission from a recorded layout
// under the given instance name (replay and recovery paths).
func admissionFromLayout(app *graph.Application, instance string, l *OpLayout) (*Admission, error) {
	if len(l.Impls) != len(app.Tasks) || len(l.Assignment) != len(app.Tasks) {
		return nil, fmt.Errorf("kairos: layout record sized for %d/%d tasks, application has %d",
			len(l.Impls), len(l.Assignment), len(app.Tasks))
	}
	bind, err := binding.FromSelection(app, l.Impls)
	if err != nil {
		return nil, err
	}
	return &Admission{
		Instance:   instance,
		App:        app,
		Binding:    bind,
		Assignment: l.Assignment,
		Routes:     l.Routes,
	}, nil
}

// restoreLayout replays an admission's recorded layout onto an
// arbitrary platform (the live one under k.mu, or a replan sandbox's
// private clone). See Kairos.restoreLayoutLocked for the contract.
func restoreLayout(p *platform.Platform, old *Admission) error {
	restored := 0
	var rerr error
	for _, t := range old.App.Tasks {
		occ := platform.Occupant{App: old.Instance, Task: t.ID}
		if perr := p.Restore(old.Assignment[t.ID], occ, old.Binding.Demand(t.ID)); perr != nil {
			rerr = perr
			break
		}
		restored++
	}
	if rerr == nil {
	routes:
		for ri, rt := range old.Routes {
			for i := 0; i+1 < len(rt.Path); i++ {
				if perr := p.RestoreVC(rt.Path[i], rt.Path[i+1]); perr != nil {
					rerr = perr
					for j := 0; j < ri; j++ {
						releaseRoute(p, old.Routes[j])
					}
					for i2 := 0; i2 < i; i2++ {
						_ = p.ReleaseVC(rt.Path[i2], rt.Path[i2+1])
					}
					break routes
				}
			}
		}
	}
	if rerr != nil {
		for _, t := range old.App.Tasks[:restored] {
			occ := platform.Occupant{App: old.Instance, Task: t.ID}
			_ = p.Remove(old.Assignment[t.ID], occ)
		}
		return rerr
	}
	return nil
}
