package core

// State export and import: the canonical serializable form of the
// engine's durable state, used by the write-ahead log's snapshots and
// by the crash-recovery tests' byte-identity oracle.
//
// The export deliberately covers only what recovery must reproduce:
// the sequence counter, the journal coverage mark, the fault state
// (disabled elements and links), and every live admission's layout.
// Lifetime counters (Stats), per-phase times and element wear are
// diagnostics, not allocation state — they are documented as
// non-durable and reset on recovery.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/routing"
)

// AdmissionExport is one admitted application's durable state: the
// execution layout, reduced to plain data.
type AdmissionExport struct {
	// Instance is the admission's unique name.
	Instance string
	// App is the admitted application bundle.
	App *graph.Application
	// Impls is the binding: the selected implementation index per task.
	Impls []int
	// Assignment is the mapping: the element ID per task.
	Assignment []int
	// Routes is the routing: the allocated channel paths.
	Routes []routing.Route
}

// StateExport is the engine's durable state in canonical form: fields
// in deterministic order, admissions sorted by instance name. Two
// engines with equal exports hold identical allocation state.
type StateExport struct {
	// Seq is the admission sequence counter (instance-name suffix
	// source). Rejected attempts consume numbers too, so Seq can
	// exceed the count of ops ever journaled.
	Seq int
	// LastLSN is the log sequence number of the last journaled or
	// replayed op; recovery uses it to align a snapshot with the log
	// tail that follows it.
	LastLSN uint64
	// Draining marks an engine refusing fresh admissions because its
	// shard was drained from its cluster (SetDraining); recovery
	// restores the mark so a drained shard stays unadmittable even
	// after its OpShardDrain record is compacted away.
	Draining bool
	// DisabledElements lists disabled element IDs, ascending.
	DisabledElements []int
	// DisabledLinks lists disabled directed links (from, to), in the
	// platform's deterministic link order. Links disable in pairs, so
	// both directions appear.
	DisabledLinks [][2]int
	// Admissions lists the live admissions sorted by instance name.
	Admissions []AdmissionExport
}

// ExportState returns the engine's durable state in canonical form.
func (k *Kairos) ExportState() *StateExport {
	k.mu.Lock()
	defer k.mu.Unlock()
	se := &StateExport{Seq: k.seq, LastLSN: k.lastLSN, Draining: k.draining}
	for _, e := range k.p.Elements() {
		if !e.Enabled() {
			se.DisabledElements = append(se.DisabledElements, e.ID)
		}
	}
	for _, l := range k.p.Links() {
		if !l.Enabled() {
			se.DisabledLinks = append(se.DisabledLinks, [2]int{l.From, l.To})
		}
	}
	names := make([]string, 0, len(k.admitted))
	for n := range k.admitted {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		adm := k.admitted[n]
		impls := make([]int, len(adm.App.Tasks))
		for i := range impls {
			impls[i] = adm.Binding.ImplIndex(i)
		}
		routes := make([]routing.Route, len(adm.Routes))
		for i, rt := range adm.Routes {
			routes[i] = routing.Route{Channel: rt.Channel, Path: append([]int(nil), rt.Path...)}
		}
		se.Admissions = append(se.Admissions, AdmissionExport{
			Instance:   n,
			App:        adm.App,
			Impls:      impls,
			Assignment: append([]int(nil), adm.Assignment...),
			Routes:     routes,
		})
	}
	return se
}

// ImportState loads an exported state into a freshly constructed
// engine (recovery's snapshot-load step): the fault state is applied
// and every admission's layout is replayed onto the platform exactly
// as recorded, without re-running the workflow. The engine must be
// unused — importing over live state would corrupt the platform.
func (k *Kairos) ImportState(se *StateExport) error {
	k.mu.Lock()
	defer k.unlockAndPublish()
	if len(k.admitted) != 0 || k.seq != 0 {
		return errors.New("kairos: state import into a used manager")
	}
	for _, id := range se.DisabledElements {
		if k.p.Element(id) == nil {
			return fmt.Errorf("kairos: snapshot disables unknown element %d", id)
		}
		k.p.DisableElement(id)
	}
	for _, ab := range se.DisabledLinks {
		if k.p.Link(ab[0], ab[1]) == nil {
			return fmt.Errorf("kairos: snapshot disables unknown link %d-%d", ab[0], ab[1])
		}
		k.p.DisableLink(ab[0], ab[1])
	}
	for _, ax := range se.Admissions {
		if ax.App == nil {
			return fmt.Errorf("kairos: snapshot admission %q without application", ax.Instance)
		}
		if err := ax.App.Validate(); err != nil {
			return fmt.Errorf("kairos: snapshot admission %q: %w", ax.Instance, err)
		}
		bind, err := binding.FromSelection(ax.App, ax.Impls)
		if err != nil {
			return fmt.Errorf("kairos: snapshot admission %q: %w", ax.Instance, err)
		}
		if len(ax.Assignment) != len(ax.App.Tasks) {
			return fmt.Errorf("kairos: snapshot admission %q: %d assignments for %d tasks",
				ax.Instance, len(ax.Assignment), len(ax.App.Tasks))
		}
		for _, elem := range ax.Assignment {
			if k.p.Element(elem) == nil {
				return fmt.Errorf("kairos: snapshot admission %q assigned to unknown element %d", ax.Instance, elem)
			}
		}
		adm := &Admission{
			Instance:   ax.Instance,
			App:        ax.App,
			Binding:    bind,
			Assignment: append([]int(nil), ax.Assignment...),
			Routes:     ax.Routes,
		}
		if err := k.restoreLayoutLocked(adm); err != nil {
			return fmt.Errorf("kairos: snapshot admission %q: layout replay failed: %w", ax.Instance, err)
		}
		k.admitted[ax.Instance] = adm
	}
	k.seq = se.Seq
	k.lastLSN = se.LastLSN
	k.draining = se.Draining
	return nil
}

// LastLSN returns the log sequence number of the last op this engine
// journaled or replayed (zero when nothing was ever journaled).
func (k *Kairos) LastLSN() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.lastLSN
}
