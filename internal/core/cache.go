package core

// The layout cache: a per-manager memo of successful execution
// layouts, keyed on a canonical fingerprint of the application's
// structure plus a residual-capacity sketch of the platform. The
// paper's admission workflow is deterministic for a fixed option set:
// two admissions of structurally identical applications onto
// byte-identical platform states produce byte-identical layouts. The
// cache exploits exactly that — on a hit it skips binding, mapping
// and routing and replays the remembered layout under the new
// instance name, running only the validation phase (when enabled)
// before committing.
//
// Correctness rests on what the sketch captures: everything the four
// phases observe about the platform. Binding reads free capacity by
// type (capacity is fixed; used vectors and enabled flags are in the
// sketch). Mapping's cost function reads used vectors, enabled
// elements and links, occupancy (InUse, and own-instance HostsPeer /
// HostsApp, which are instance-rename-symmetric), element wear (only
// when Weights.Wear > 0 — wear grows monotonically and never resets,
// so it is sketched only when it can steer a placement) and pool
// utilization. Routing reads link enabled flags and free virtual
// channels. Validation reads occupant counts and the layout itself.
// Sketch-equal therefore implies the full workflow would reproduce
// the cached layout bit for bit, which is what lets a cached commit
// journal identically to a full admission: recovery replays OpAdmit
// records through admitLocked, where the cache is just as legal as
// the full workflow.
//
// Invalidation is structural: a release, readmission or fault flip
// changes the used vectors, occupancy or enabled flags, so the sketch
// bytes — and the lookup key — change, and stale entries simply never
// match again (they age out of the LRU). Fault transitions that go
// through the manager (SetElementEnabled, SetLinkEnabled, replayed
// OpElement/OpLink) additionally flush the whole cache: a fault
// epoch's layouts route around different hardware, so keeping the old
// epoch's entries only wastes capacity. Hash collisions cannot break
// the byte-identity invariant: every entry stores its full fingerprint
// and sketch bytes and a hit requires bytewise equality.

import (
	"encoding/binary"
	"hash/maphash"
	"math"
	"time"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/routing"
)

// cacheKey is the 128-bit hash pair a lookup indexes on; the stored
// byte strings disambiguate collisions.
type cacheKey struct{ fp, sketch uint64 }

// cacheEntry is one memoized layout.
type cacheEntry struct {
	// fp and sketch are the full canonical byte strings the entry was
	// inserted under; a hit requires bytewise equality with both.
	fp, sketch []byte
	// impls, assignment and routes are the remembered layout: the
	// selected implementation index, the assigned element and the
	// allocated channel paths, all positional (task/channel IDs), so
	// they translate to any structurally identical application.
	impls      []int
	assignment []int
	routes     []routing.Route
	// lastUsed is the cache tick of the entry's last hit or insert,
	// the LRU eviction order.
	lastUsed uint64
}

// layoutCache memoizes successful layouts, capacity-bounded with LRU
// eviction. All access happens under the engine's platform-state
// mutex.
type layoutCache struct {
	cap     int
	entries map[cacheKey]*cacheEntry
	tick    uint64
	// seed keys the lookup hash; collisions are resolved by the byte
	// compare, so the seed only has to be stable for this cache's
	// lifetime, never across processes.
	seed maphash.Seed
	// fpBuf and skBuf are the per-lookup encoding scratch, reused
	// across admissions (the hot path stays allocation-lean).
	fpBuf, skBuf []byte
	// links caches the platform's deterministic link order: topology
	// is fixed for a manager's lifetime, and rebuilding the sorted
	// slice per sketch would dominate the fast path.
	links []*platform.Link
}

func newLayoutCache(capacity int) *layoutCache {
	return &layoutCache{
		cap:     capacity,
		entries: make(map[cacheKey]*cacheEntry, capacity),
		seed:    maphash.MakeSeed(),
	}
}

func (c *layoutCache) key(fp, sketch []byte) cacheKey {
	return cacheKey{fp: maphash.Bytes(c.seed, fp), sketch: maphash.Bytes(c.seed, sketch)}
}

// lookup returns the entry for the fingerprint+sketch pair, or nil.
// A key match with different bytes (hash collision) is a miss.
func (c *layoutCache) lookup(fp, sketch []byte) *cacheEntry {
	e, ok := c.entries[c.key(fp, sketch)]
	if !ok || !bytesEqual(e.fp, fp) || !bytesEqual(e.sketch, sketch) {
		return nil
	}
	c.tick++
	e.lastUsed = c.tick
	return e
}

// bytesEqual avoids importing bytes for one call.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// insert memoizes a successful admission's layout under the
// pre-attempt fingerprint and sketch, evicting the least recently
// used entry at capacity. The layout is deep-copied: the admission
// owns its slices and may outlive the entry (and vice versa).
func (c *layoutCache) insert(fp, sketch []byte, adm *Admission) {
	key := c.key(fp, sketch)
	if _, exists := c.entries[key]; !exists && len(c.entries) >= c.cap {
		var victim cacheKey
		oldest := uint64(math.MaxUint64)
		for k, e := range c.entries {
			if e.lastUsed < oldest {
				oldest = e.lastUsed
				victim = k
			}
		}
		delete(c.entries, victim)
	}
	impls := make([]int, len(adm.App.Tasks))
	for i := range impls {
		impls[i] = adm.Binding.ImplIndex(i)
	}
	routes := make([]routing.Route, len(adm.Routes))
	for i, rt := range adm.Routes {
		routes[i] = routing.Route{Channel: rt.Channel, Path: append([]int(nil), rt.Path...)}
	}
	c.tick++
	c.entries[key] = &cacheEntry{
		fp:         append([]byte(nil), fp...),
		sketch:     append([]byte(nil), sketch...),
		impls:      impls,
		assignment: append([]int(nil), adm.Assignment...),
		routes:     routes,
		lastUsed:   c.tick,
	}
}

// drop removes one entry (a fallback proved it stale).
func (c *layoutCache) drop(fp, sketch []byte) {
	delete(c.entries, c.key(fp, sketch))
}

// flush empties the cache (fault transitions start a new epoch).
func (c *layoutCache) flush() {
	clear(c.entries)
}

// FlushLayoutCache drops every memoized layout. The engine flushes
// automatically on manager-mediated fault transitions; this is the
// hook for callers that mutate the platform directly.
func (k *Kairos) FlushLayoutCache() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.cache != nil {
		k.cache.flush()
	}
}

// flushCacheLocked is the internal flush hook. Called with k.mu held.
func (k *Kairos) flushCacheLocked() {
	if k.cache != nil {
		k.cache.flush()
	}
}

// Canonical encoding helpers. These mirror the canonical-bytes
// discipline of internal/wal's codec (fixed-width little-endian,
// length-prefixed sequences) but live here because wal imports core.

func cacheU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func cacheU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func cacheString(b []byte, s string) []byte {
	b = cacheU32(b, uint32(len(s)))
	return append(b, s...)
}

// appendFingerprint appends the canonical byte encoding of the
// application's admission-relevant structure: tasks (kind, fixed
// element, implementation set), channels and constraints — everything
// the four phases read, and nothing they don't. Names (application,
// task, implementation) are deliberately excluded: the workflow never
// branches on them (instance names are rename-symmetric), and traffic
// repeats shapes under fresh names.
func appendFingerprint(b []byte, app *graph.Application) []byte {
	b = cacheU32(b, uint32(len(app.Tasks)))
	for _, t := range app.Tasks {
		b = append(b, byte(t.Kind))
		b = cacheU32(b, uint32(int32(t.FixedElement)))
		b = cacheU32(b, uint32(len(t.Implementations)))
		for _, im := range t.Implementations {
			b = cacheString(b, im.Target)
			b = cacheU32(b, uint32(len(im.Requires)))
			for _, v := range im.Requires {
				b = cacheU64(b, uint64(v))
			}
			b = cacheU64(b, math.Float64bits(im.Cost))
			b = cacheU64(b, uint64(im.ExecTime))
		}
	}
	b = cacheU32(b, uint32(len(app.Channels)))
	for _, ch := range app.Channels {
		b = cacheU32(b, uint32(int32(ch.Src)))
		b = cacheU32(b, uint32(int32(ch.Dst)))
		b = cacheU32(b, uint32(int32(ch.Produce)))
		b = cacheU32(b, uint32(int32(ch.Consume)))
		b = cacheU64(b, uint64(ch.TokenSize))
		b = cacheU32(b, uint32(int32(ch.Initial)))
	}
	b = cacheU64(b, math.Float64bits(app.Constraints.MinThroughput))
	b = cacheU64(b, uint64(app.Constraints.MaxLatency))
	return b
}

// appendSketch appends the canonical byte encoding of the platform
// state the workflow observes: per element (ID order) the enabled
// flag, used resource vector and occupant count — plus wear when the
// cost function weighs it — and per link (deterministic link order)
// the enabled flag and used virtual channels. Capacities and topology
// are fixed for a manager's lifetime and excluded. Called with k.mu
// held.
func (k *Kairos) appendSketch(b []byte) []byte {
	if k.cache.links == nil {
		k.cache.links = k.p.Links()
	}
	sketchWear := k.opts.Weights.Wear > 0
	for _, e := range k.p.Elements() {
		flag := byte(0)
		if e.Enabled() {
			flag = 1
		}
		b = append(b, flag)
		for _, v := range e.Pool().Used() {
			b = cacheU64(b, uint64(v))
		}
		b = cacheU32(b, uint32(e.OccupantCount()))
		if sketchWear {
			b = cacheU32(b, uint32(e.Wear()))
		}
	}
	for _, l := range k.cache.links {
		flag := byte(0)
		if l.Enabled() {
			flag = 1
		}
		b = append(b, flag)
		b = cacheU32(b, uint32(l.Used()))
	}
	return b
}

// replayCachedLocked commits a cache hit: the remembered layout is
// replayed under a fresh instance name — placements, then routes,
// then the validation phase exactly as the full workflow runs it —
// and the admission is committed. Any failure (capacity mismatch,
// fault overlap, validation conflict) unwinds every partial
// allocation, returns the sequence number, and reports !ok so the
// caller falls back to the full workflow; the platform is then
// byte-identical to before the call.
func (k *Kairos) replayCachedLocked(app *graph.Application, e *cacheEntry) (*Admission, bool) {
	k.seq++
	adm := &Admission{
		Instance: instanceName(app, k.seq),
		App:      app,
	}
	bind, err := binding.FromSelection(app, e.impls)
	if err != nil {
		k.seq--
		return nil, false
	}
	adm.Binding = bind
	placed := 0
	var fail bool
	for _, t := range app.Tasks {
		occ := platform.Occupant{App: adm.Instance, Task: t.ID}
		if perr := k.p.Place(e.assignment[t.ID], occ, bind.Demand(t.ID)); perr != nil {
			fail = true
			break
		}
		placed++
	}
	if !fail {
		adm.Assignment = append([]int(nil), e.assignment...)
		routes := make([]routing.Route, 0, len(e.routes))
	alloc:
		for _, rt := range e.routes {
			for i := 0; i+1 < len(rt.Path); i++ {
				if perr := k.p.AllocVC(rt.Path[i], rt.Path[i+1]); perr != nil {
					for j := 0; j < i; j++ {
						_ = k.p.ReleaseVC(rt.Path[j], rt.Path[j+1])
					}
					fail = true
					break alloc
				}
			}
			routes = append(routes, routing.Route{Channel: rt.Channel, Path: append([]int(nil), rt.Path...)})
		}
		if !fail {
			adm.Routes = routes
			if !k.opts.DisableValidation {
				start := time.Now()
				rep, verr := k.opts.validator().Validate(app, bind, adm.Assignment, routes, k.p, k.opts.Validation)
				adm.Times.Validation = time.Since(start)
				adm.Report = rep
				if verr != nil && !k.opts.SkipValidation {
					routing.ReleaseAll(k.p, routes)
					fail = true
				}
			}
		} else {
			routing.ReleaseAll(k.p, routes)
		}
	}
	if fail {
		for _, t := range app.Tasks[:placed] {
			occ := platform.Occupant{App: adm.Instance, Task: t.ID}
			_ = k.p.Remove(e.assignment[t.ID], occ)
		}
		k.seq--
		return nil, false
	}
	k.admitted[adm.Instance] = adm
	return adm, true
}
