package core

import (
	"context"
	"errors"
	"sort"

	"repro/internal/graph"
)

// ErrNilApplication is reported by AdmitAll for nil requests.
var ErrNilApplication = errors.New("kairos: nil application")

// BatchResult is the outcome of one request in an AdmitAll batch.
type BatchResult struct {
	// Index is the request's position in the input slice.
	Index int
	// App is the requested application (nil for filtered requests).
	App *graph.Application
	// Admission is non-nil for every attempted request (partial on
	// failure, as with Admit); nil when the request was filtered out
	// before admission.
	Admission *Admission
	// Err is nil iff the application was admitted.
	Err error
}

// AdmitAll admits a batch of applications atomically with respect to
// other callers: the platform lock is held for the whole batch, so no
// concurrent Admit or Release interleaves with it. Requests are
// filtered (nil or invalid applications are rejected up front without
// running the workflow) and the survivors are admitted largest-first —
// descending task count, ties broken by name and input order — because
// large applications are the hardest to place and placing them into
// fragmented leftovers is what Table I shows failing. The batch is not
// transactional: a rejected application does not roll back the ones
// admitted before it.
//
// Results are returned in input order, one per request. For a fixed
// input the admission order, and therefore every resulting layout on a
// given starting platform state, is deterministic.
//
// The context is shared by the whole batch and checked between phases
// of every entry; Options.AdmitTimeout applies per admission. Once the
// context is done, the remaining entries fail fast with the context's
// error — already-admitted entries stay admitted (the batch is not
// transactional).
//
// With Options.OptimisticAttempts > 0 and more than one survivor the
// batch plans its entries in parallel against a snapshot of the
// batch-start state and commits them under a single lock hold in the
// same largest-first order (see admitAllOptimistic). The outcome is
// still deterministic for a fixed input and starting state, and the
// commit phase is still atomic with respect to other callers, but the
// planning runs outside the lock — concurrent Admit or Release calls
// may commit between the snapshot and the batch's commit, in which
// case affected entries are re-planned serially at commit time. The
// committed layouts — and, for marginal entries, the admit/reject
// outcomes — may differ from the serialized batch's: a batch-start
// plan that still fits after earlier commits is kept even where a
// serial re-plan would have packed the platform differently.
func (k *Kairos) AdmitAll(ctx context.Context, apps []*graph.Application) []BatchResult {
	results := make([]BatchResult, len(apps))
	order := make([]int, 0, len(apps))
	for i, app := range apps {
		results[i] = BatchResult{Index: i, App: app}
		if app == nil {
			results[i].Err = ErrNilApplication
			continue
		}
		if err := app.Validate(); err != nil {
			results[i].Err = err
			continue
		}
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ta, tb := len(apps[order[a]].Tasks), len(apps[order[b]].Tasks)
		if ta != tb {
			return ta > tb
		}
		return apps[order[a]].Name < apps[order[b]].Name
	})

	if k.opts.OptimisticAttempts > 0 && len(order) > 1 {
		k.admitAllOptimistic(ctx, apps, order, results)
		return results
	}

	k.mu.Lock()
	for _, i := range order {
		results[i].Admission, results[i].Err = k.admitLocked(ctx, apps[i])
		if results[i].Err == nil {
			results[i].Err = k.commitAdmitLocked(results[i].Admission)
		}
	}
	k.unlockAndPublish()
	return results
}
