package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/mapping"
	"repro/internal/platform"
)

// journalFunc adapts a function to the Journal interface.
type journalFunc func(op Op) (uint64, error)

func (f journalFunc) Append(op Op) (uint64, error) { return f(op) }

// shuffleAll is a stub replanner: it shuffles every resident once (in
// sorted order) and reports the costs it was constructed with, so
// tests can force acceptance or rejection regardless of the real
// layout quality.
type shuffleAll struct {
	before, after float64
	shuffled      *bool
}

func (s shuffleAll) Name() string { return "shuffle-all" }

func (s shuffleAll) Replan(sb *ReplanSandbox) (float64, float64) {
	ok := sb.Shuffle(sb.Residents())
	if s.shuffled != nil {
		*s.shuffled = ok
	}
	if !ok {
		return s.before, s.before
	}
	return s.before, s.after
}

// replanFixture admits a handful of chain apps onto a mesh and
// returns the manager; releasing the middle one leaves fragmentation
// for a replanner to chew on.
func replanFixture(t *testing.T, opts Options) (*platform.Platform, *Kairos) {
	t.Helper()
	p := platform.Mesh(3, 3, 4)
	opts.Weights = mapping.WeightsCommunication
	opts.SkipValidation = true
	k := New(p, opts)
	var names []string
	for i := 0; i < 4; i++ {
		adm, err := k.Admit(context.Background(), chainApp(fmt.Sprintf("app%d", i), 3, 30))
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		names = append(names, adm.Instance)
	}
	if err := k.Release(names[1]); err != nil {
		t.Fatal(err)
	}
	return p, k
}

func TestReplanNoReplanner(t *testing.T) {
	_, k := replanFixture(t, Options{})
	if _, err := k.Replan(context.Background()); !errors.Is(err, ErrNoReplanner) {
		t.Fatalf("Replan without a replanner = %v, want ErrNoReplanner", err)
	}
}

func TestReplanRejectedLeavesStateUntouched(t *testing.T) {
	// A pass whose reported cost did not improve must be rejected, and
	// a rejected pass never touches the live platform — the sandbox
	// absorbs every tentative move.
	var shuffled bool
	_, k := replanFixture(t, Options{Replanner: shuffleAll{before: 1, after: 1, shuffled: &shuffled}})
	p := k.Platform()
	before := allocState(p, k)
	beforeExport := k.ExportState()
	res, err := k.Replan(context.Background())
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if !shuffled {
		t.Fatal("stub never shuffled: the fixture gives the sandbox nothing to do")
	}
	if res.Improved || len(res.Moves) != 0 {
		t.Fatalf("non-improving pass committed: %+v", res)
	}
	if res.Evaluated == 0 {
		t.Error("pass consumed no budget despite shuffling")
	}
	if after := allocState(p, k); after != before {
		t.Errorf("rejected replan mutated the platform:\n--- before\n%s--- after\n%s", before, after)
	}
	if !reflect.DeepEqual(k.ExportState(), beforeExport) {
		t.Error("rejected replan changed the exported state")
	}
}

func TestReplanCommitRenamesAndJournals(t *testing.T) {
	_, k := replanFixture(t, Options{Replanner: shuffleAll{before: 2, after: 1}})
	var ops []Op
	k.AttachJournal(journalFunc(func(op Op) (uint64, error) {
		ops = append(ops, op)
		return uint64(len(ops)), nil
	}))
	liveBefore := len(k.Admitted())
	res, err := k.Replan(context.Background())
	if err != nil {
		t.Fatalf("Replan: %v", err)
	}
	if !res.Improved || len(res.Moves) == 0 {
		t.Fatalf("improving pass not committed: %+v", res)
	}
	adm := k.Admitted()
	if len(adm) != liveBefore {
		t.Fatalf("live count changed: %d -> %d", liveBefore, len(adm))
	}
	for _, m := range res.Moves {
		if _, ok := adm[m.From]; ok {
			t.Errorf("retired instance %q still admitted", m.From)
		}
		if _, ok := adm[m.To]; !ok {
			t.Errorf("fresh instance %q not admitted", m.To)
		}
		if m.From == m.To {
			t.Errorf("move did not rename: %q", m.From)
		}
	}
	if len(ops) != 1 || ops[0].Kind != OpReplan {
		t.Fatalf("journaled ops = %v, want exactly one OpReplan", ops)
	}
	if len(ops[0].Moves) != len(res.Moves) {
		t.Fatalf("record carries %d moves, result has %d", len(ops[0].Moves), len(res.Moves))
	}
	st := k.Stats()
	if st.ReplanMoves != int64(len(res.Moves)) || st.ReplanImproved != 1 {
		t.Errorf("stats = moves %d improved %d, want %d and 1", st.ReplanMoves, st.ReplanImproved, len(res.Moves))
	}

	// Replay equivalence: a fresh engine that replays the journal must
	// land on the identical exported state.
	replayed := New(platform.Mesh(3, 3, 4), Options{Weights: mapping.WeightsCommunication, SkipValidation: true})
	// Rebuild the pre-replan history the fixture produced, then replay
	// the replan record itself.
	for i := 0; i < 4; i++ {
		if _, err := replayed.Admit(context.Background(), chainApp(fmt.Sprintf("app%d", i), 3, 30)); err != nil {
			t.Fatalf("replay admit %d: %v", i, err)
		}
	}
	if err := replayed.Release("app1#2"); err != nil {
		t.Fatal(err)
	}
	if err := replayed.ReplayOp(1, ops[0]); err != nil {
		t.Fatalf("ReplayOp: %v", err)
	}
	got, want := replayed.ExportState(), k.ExportState()
	got.LastLSN, want.LastLSN = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replayed state diverges:\n got %+v\nwant %+v", got, want)
	}
}

func TestReplanJournalFailureUnwinds(t *testing.T) {
	_, k := replanFixture(t, Options{Replanner: shuffleAll{before: 2, after: 1}})
	p := k.Platform()
	before := allocState(p, k)
	beforeExport := k.ExportState()
	k.AttachJournal(journalFunc(func(op Op) (uint64, error) {
		return 0, errors.New("disk gone")
	}))
	_, err := k.Replan(context.Background())
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("Replan with failing journal = %v, want ErrJournal", err)
	}
	if after := allocState(p, k); after != before {
		t.Errorf("aborted replan mutated the platform:\n--- before\n%s--- after\n%s", before, after)
	}
	got := k.ExportState()
	got.Seq = beforeExport.Seq // aborted attempts legitimately consume sequence numbers
	if !reflect.DeepEqual(got, beforeExport) {
		t.Error("aborted replan changed the exported state")
	}
}

func TestReplanDrainingRefused(t *testing.T) {
	_, k := replanFixture(t, Options{Replanner: shuffleAll{before: 2, after: 1}})
	k.SetDraining(true)
	if _, err := k.Replan(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Replan while draining = %v, want ErrDraining", err)
	}
}

func TestReplanSandboxBudget(t *testing.T) {
	// A shuffle larger than the remaining budget is refused without
	// consuming anything; accepted shuffles consume one unit per
	// member; Undo does not refund.
	_, k := replanFixture(t, Options{Replanner: budgetProbe{t: t}, ReplanBudget: 4})
	if _, err := k.Replan(context.Background()); err != nil {
		t.Fatal(err)
	}
}

type budgetProbe struct{ t *testing.T }

func (budgetProbe) Name() string { return "budget-probe" }

func (b budgetProbe) Replan(sb *ReplanSandbox) (float64, float64) {
	t := b.t
	names := sb.Residents()
	if len(names) != 3 {
		t.Fatalf("fixture has %d residents, want 3", len(names))
	}
	if sb.Remaining() != 4 {
		t.Fatalf("Remaining = %d, want the configured 4", sb.Remaining())
	}
	if !sb.Shuffle(names) {
		t.Fatal("first shuffle refused")
	}
	if sb.Used() != 3 || sb.Remaining() != 1 {
		t.Fatalf("after shuffle: used %d remaining %d, want 3 and 1", sb.Used(), sb.Remaining())
	}
	if sb.Shuffle(names[:2]) {
		t.Fatal("over-budget shuffle accepted")
	}
	if sb.Used() != 3 {
		t.Fatalf("refused shuffle consumed budget: used %d", sb.Used())
	}
	if !sb.Undo() {
		t.Fatal("Undo found nothing to reverse")
	}
	if sb.Used() != 3 {
		t.Fatalf("Undo refunded budget: used %d", sb.Used())
	}
	if !sb.Shuffle(names[:1]) {
		t.Fatal("in-budget single shuffle refused")
	}
	return 1, 1 // reject: this test only probes the budget bookkeeping
}
