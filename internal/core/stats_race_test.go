package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/appgen"
	"repro/internal/platform"
)

// TestStatsSnapshotConsistency hammers Stats (and its value-receiver
// formatters) from many goroutines while others admit, release and
// readmit. Every snapshot must satisfy the partition invariant
// Attempts == Admitted + Rejected + Cancelled: a torn read — counters
// copied while an attempt is being recorded — would break it. Together
// with the race detector (CI runs this package with -race) this pins
// the audit result that all Stats mutations happen under the engine
// lock and Stats() copies under the same lock, so the value receivers
// of String and MeanTimes always operate on a consistent snapshot.
func TestStatsSnapshotConsistency(t *testing.T) {
	k := New(platform.CRISP(), Options{SkipValidation: true})
	apps := appgen.Dataset(appgen.NewConfig(appgen.Communication, appgen.Small), 8, 42)

	const (
		writers  = 4
		readers  = 4
		rounds   = 50
		perRound = 4
	)
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			ctx := context.Background()
			for r := 0; r < rounds; r++ {
				var admitted []string
				for i := 0; i < perRound; i++ {
					if adm, err := k.Admit(ctx, apps[(w*perRound+i)%len(apps)]); err == nil {
						admitted = append(admitted, adm.Instance)
					}
				}
				for i, inst := range admitted {
					if i%2 == 0 {
						_, _ = k.Readmit(ctx, inst)
					} else {
						_ = k.Release(inst)
					}
				}
			}
		}(w)
	}

	for rd := 0; rd < readers; rd++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := k.Stats()
				if got := s.Admitted + s.Rejected + s.Cancelled; got != s.Attempts {
					t.Errorf("torn snapshot: admitted %d + rejected %d + cancelled %d = %d, want attempts %d",
						s.Admitted, s.Rejected, s.Cancelled, got, s.Attempts)
					return
				}
				var perPhase int64
				for _, n := range s.RejectedByPhase {
					perPhase += n
				}
				if perPhase > s.Rejected {
					t.Errorf("torn snapshot: per-phase rejections %d exceed total %d", perPhase, s.Rejected)
					return
				}
				// The value-receiver formatters must be usable on the
				// snapshot while the engine keeps mutating its own copy.
				if !strings.Contains(s.String(), "attempts") {
					t.Error("Stats.String lost its shape")
					return
				}
				if mt := s.MeanTimes(); s.Attempts > 0 && mt.Total() < 0 {
					t.Errorf("negative mean phase times: %+v", mt)
					return
				}
			}
		}()
	}

	writeWG.Wait()
	close(stop)
	readWG.Wait()

	s := k.Stats()
	if s.Attempts == 0 {
		t.Error("no attempts recorded; the hammer did not run")
	}
	k.ReleaseAll()
	if got := k.Stats(); got.Live != 0 {
		t.Errorf("Live %d after ReleaseAll, want 0", got.Live)
	}
}
