package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
)

// TestDrainGate: a draining engine refuses Admit, AdmitAll and Readmit
// before the workflow runs — no sequence number consumed, no stats
// recorded — while Release stays available so residents can leave.
func TestDrainGate(t *testing.T) {
	ctx := context.Background()
	p := platform.Mesh(3, 3, 4)
	k := New(p, Options{Weights: mapping.WeightsBoth})
	adm, err := k.Admit(ctx, chainApp("resident", 2, 30))
	if err != nil {
		t.Fatalf("seeding admit: %v", err)
	}

	k.SetDraining(true)
	if !k.Draining() {
		t.Fatal("Draining() false after SetDraining(true)")
	}
	before := k.Stats()

	if _, err := k.Admit(ctx, chainApp("refused", 2, 30)); !errors.Is(err, ErrDraining) {
		t.Errorf("Admit while draining = %v, want ErrDraining", err)
	}
	batch := []*graph.Application{chainApp("b0", 2, 20), chainApp("b1", 2, 20)}
	for _, r := range k.AdmitAll(ctx, batch) {
		if !errors.Is(r.Err, ErrDraining) {
			t.Errorf("AdmitAll entry %d while draining = %v, want ErrDraining", r.Index, r.Err)
		}
	}
	if got := k.Stats(); !reflect.DeepEqual(got, before) {
		t.Errorf("refused traffic moved the stats:\nbefore %+v\nafter  %+v", before, got)
	}
	// Readmit is gated on its admission half; the restore replays the
	// old layout, so the resident survives under its old name and no
	// workflow attempt is recorded.
	if _, err := k.Readmit(ctx, adm.Instance); !errors.Is(err, ErrDraining) {
		t.Errorf("Readmit while draining = %v, want ErrDraining", err)
	}
	if got := k.Stats(); got.Attempts != before.Attempts || got.Live != 1 {
		t.Errorf("gated Readmit ran a workflow or evicted: attempts %d→%d live %d",
			before.Attempts, got.Attempts, got.Live)
	}
	if k.Admitted()[adm.Instance] == nil {
		t.Fatalf("gated Readmit lost resident %q", adm.Instance)
	}

	// Residents can still leave.
	if err := k.Release(adm.Instance); err != nil {
		t.Errorf("Release while draining: %v", err)
	}

	// Reopening admits again, and the instance suffix shows the refused
	// attempts consumed no sequence numbers.
	k.SetDraining(false)
	adm2, err := k.Admit(ctx, chainApp("fresh", 2, 30))
	if err != nil {
		t.Fatalf("Admit after reopening: %v", err)
	}
	if !strings.HasSuffix(adm2.Instance, "#2") {
		t.Errorf("post-reopen instance %q, want suffix #2 (gate must not burn sequence numbers)", adm2.Instance)
	}
}

// TestDrainFlagSurvivesExportImport: the drain mark is durable state.
func TestDrainFlagSurvivesExportImport(t *testing.T) {
	k := New(platform.Mesh(2, 2, 4), Options{})
	k.SetDraining(true)
	se := k.ExportState()
	if !se.Draining {
		t.Fatal("ExportState dropped the drain mark")
	}
	k2 := New(platform.Mesh(2, 2, 4), Options{})
	if err := k2.ImportState(se); err != nil {
		t.Fatal(err)
	}
	if !k2.Draining() {
		t.Error("ImportState dropped the drain mark")
	}
	if _, err := k2.Admit(context.Background(), chainApp("x", 2, 30)); !errors.Is(err, ErrDraining) {
		t.Errorf("imported-draining engine admitted: %v", err)
	}
}
