package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/resource"
)

// TestOptimisticSingleAdmitterParity drives a serialized and an
// optimistic manager through the same operation sequence (admissions,
// rejections, releases) in lockstep and requires identical observable
// state after every step: with a single admitter the epoch never moves
// between snapshot and commit, so the optimistic path must reproduce
// the serialized outcome bit for bit.
func TestOptimisticSingleAdmitterParity(t *testing.T) {
	serial := New(platform.Mesh(3, 3, 4), Options{Weights: mapping.WeightsBoth, SkipValidation: true})
	opt := New(platform.Mesh(3, 3, 4), Options{Weights: mapping.WeightsBoth, SkipValidation: true, OptimisticAttempts: 4})

	check := func(step string) {
		t.Helper()
		a, b := serial.ExportState(), opt.ExportState()
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: state diverged:\nserial: %+v\noptimistic: %+v", step, a, b)
		}
		so, oo := serial.Stats(), opt.Stats()
		if oo.Conflicts != 0 || oo.Retries != 0 {
			t.Fatalf("%s: single admitter counted conflicts/retries: %d/%d", step, oo.Conflicts, oo.Retries)
		}
		oo.Conflicts, oo.Retries = 0, 0
		// Phase times are wall clock; only the counters must agree.
		so.PhaseTotals, oo.PhaseTotals = PhaseTimes{}, PhaseTimes{}
		if so != oo {
			t.Fatalf("%s: stats diverged:\nserial: %+v\noptimistic: %+v", step, so, oo)
		}
	}

	var instS, instO []string
	for i := 0; i < 10; i++ {
		// Share 70 saturates the 9-element mesh after a few admissions,
		// so the tail of the loop exercises rejection parity too.
		app := chainApp(fmt.Sprintf("par%d", i), 2, 70)
		admS, errS := serial.Admit(context.Background(), app)
		admO, errO := opt.Admit(context.Background(), app)
		if (errS == nil) != (errO == nil) {
			t.Fatalf("step %d: outcomes diverged: serial %v, optimistic %v", i, errS, errO)
		}
		if errS == nil {
			if admS.Instance != admO.Instance {
				t.Fatalf("step %d: instance names diverged: %q vs %q", i, admS.Instance, admO.Instance)
			}
			instS = append(instS, admS.Instance)
			instO = append(instO, admO.Instance)
		} else if admS.Instance != admO.Instance {
			// Failed attempts carry names too: the optimistic path must
			// rename the plan placeholder to the sequence-numbered name
			// the serialized attempt ran under.
			t.Fatalf("step %d: failed-attempt instance names diverged: %q vs %q", i, admS.Instance, admO.Instance)
		}
		check(fmt.Sprintf("admit %d", i))
	}
	// Free alternating instances, then admit again into the holes.
	for i := 0; i < len(instS); i += 2 {
		if err := serial.Release(instS[i]); err != nil {
			t.Fatal(err)
		}
		if err := opt.Release(instO[i]); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("release %d", i))
	}
	for i := 0; i < 3; i++ {
		app := chainApp(fmt.Sprintf("ref%d", i), 2, 70)
		_, errS := serial.Admit(context.Background(), app)
		_, errO := opt.Admit(context.Background(), app)
		if (errS == nil) != (errO == nil) {
			t.Fatalf("refill %d: outcomes diverged: serial %v, optimistic %v", i, errS, errO)
		}
		check(fmt.Sprintf("refill %d", i))
	}
}

// TestOptimisticBatchDeterministic requires AdmitAll under optimism to
// produce the same outcome for the same input and starting state on
// every run, regardless of goroutine scheduling in the planning pool.
func TestOptimisticBatchDeterministic(t *testing.T) {
	batch := func() []*graph.Application {
		var apps []*graph.Application
		for i := 0; i < 8; i++ {
			apps = append(apps, chainApp(fmt.Sprintf("b%d", i), 1+i%3, 50))
		}
		return apps
	}
	var ref *StateExport
	for round := 0; round < 5; round++ {
		k := New(platform.Mesh(3, 3, 4), Options{Weights: mapping.WeightsBoth, SkipValidation: true, OptimisticAttempts: 4})
		results := k.AdmitAll(context.Background(), batch())
		for _, r := range results {
			if r.Err != nil {
				t.Fatalf("round %d: entry %d rejected: %v", round, r.Index, r.Err)
			}
		}
		se := k.ExportState()
		if ref == nil {
			ref = se
			continue
		}
		if !reflect.DeepEqual(ref, se) {
			t.Fatalf("round %d: batch outcome diverged:\nfirst: %+v\nnow:   %+v", round, ref, se)
		}
	}
}

// TestOptimisticConflictRetrySucceeds stages the canonical conflict:
// two admitters plan against the same residual capacity, one commits
// first, the loser's replay fails, and the retry — planned against the
// winner's commit — lands on the remaining capacity. The interleaving
// is forced deterministically through the planHook seam.
func TestOptimisticConflictRetrySucceeds(t *testing.T) {
	// Two elements; each app fills 60% of one, so both apps fit the
	// platform but never one element.
	k := New(platform.Mesh(2, 1, 4), Options{Weights: mapping.WeightsBoth, SkipValidation: true, OptimisticAttempts: 4})
	fired := false
	var winner *Admission
	k.planHook = func() {
		if fired {
			return
		}
		fired = true
		// The competing admitter wins the race: it plans (from the same
		// empty-platform state, so it chooses the same element) and
		// commits while the loser's plan is in flight.
		adm, err := k.Admit(context.Background(), chainApp("winner", 1, 60))
		if err != nil {
			t.Errorf("winner rejected: %v", err)
			return
		}
		winner = adm
	}
	loser, err := k.Admit(context.Background(), chainApp("loser", 1, 60))
	if err != nil {
		t.Fatalf("loser not admitted after retry: %v", err)
	}
	if winner == nil {
		t.Fatal("winner admission never ran")
	}
	if winner.Assignment[0] == loser.Assignment[0] {
		t.Fatalf("both admissions on element %d: the retry did not re-plan", loser.Assignment[0])
	}
	s := k.Stats()
	if s.Conflicts != 1 || s.Retries != 1 {
		t.Errorf("Conflicts/Retries = %d/%d, want 1/1", s.Conflicts, s.Retries)
	}
	if s.Admitted != 2 || s.Live != 2 {
		t.Errorf("Admitted/Live = %d/%d, want 2/2", s.Admitted, s.Live)
	}
}

// TestOptimisticExhaustedFallsBack forces a conflict on every
// optimistic attempt and requires the admission to land through the
// serialized fallback, with every conflict accounted.
func TestOptimisticExhaustedFallsBack(t *testing.T) {
	const attempts = 2
	p := platform.Mesh(1, 1, 4) // a single element
	k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true, OptimisticAttempts: attempts})
	demand := resource.Of(60, 8, 0, 0)
	round := 0
	k.planHook = func() {
		// Flip the element between full and free behind the planner's
		// back, bumping the epoch so rejections planned against the
		// full state are not final. Every optimistic attempt therefore
		// conflicts: successful plans (planned free, committed full)
		// fail their replay; rejections (planned full, committed free)
		// are stale.
		k.mu.Lock()
		if round%2 == 0 {
			if err := k.p.Place(0, platform.Occupant{App: "blocker", Task: 0}, demand); err != nil {
				t.Errorf("placing blocker: %v", err)
			}
		} else {
			if err := k.p.Remove(0, platform.Occupant{App: "blocker", Task: 0}); err != nil {
				t.Errorf("removing blocker: %v", err)
			}
		}
		round++
		k.epoch++
		k.mu.Unlock()
	}
	adm, err := k.Admit(context.Background(), chainApp("fb", 1, 60))
	if err != nil {
		t.Fatalf("fallback did not admit: %v", err)
	}
	if adm == nil || adm.Instance == "" {
		t.Fatal("fallback returned no admission")
	}
	s := k.Stats()
	if s.Conflicts != attempts {
		t.Errorf("Conflicts = %d, want %d (every optimistic attempt)", s.Conflicts, attempts)
	}
	if s.Retries != attempts-1 {
		t.Errorf("Retries = %d, want %d", s.Retries, attempts-1)
	}
	if s.Admitted != 1 || s.Attempts != 1 {
		t.Errorf("Attempts/Admitted = %d/%d, want 1/1", s.Attempts, s.Admitted)
	}
}

// TestOptimisticConflictHammer runs many concurrent optimistic
// admitters with interleaved releases and checks the invariants that
// must survive any interleaving: stats balance, a clean platform after
// releasing everything, and conflict/retry accounting that matches the
// protocol (every retry follows a conflict).
func TestOptimisticConflictHammer(t *testing.T) {
	p := platform.Mesh(6, 6, 4)
	k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true, OptimisticAttempts: 3})
	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				adm, err := k.Admit(context.Background(), chainApp(fmt.Sprintf("h%d", w), 2, 60))
				if err != nil {
					continue // capacity rejections are expected under load
				}
				if err := k.Release(adm.Instance); err != nil {
					errc <- fmt.Errorf("worker %d: release %s: %w", w, adm.Instance, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	s := k.Stats()
	if s.Attempts != s.Admitted+s.Rejected+s.Cancelled {
		t.Errorf("stats unbalanced: %d attempts != %d+%d+%d", s.Attempts, s.Admitted, s.Rejected, s.Cancelled)
	}
	if s.Admitted != s.Released {
		t.Errorf("admitted %d != released %d", s.Admitted, s.Released)
	}
	if s.Live != 0 {
		t.Errorf("%d instances leaked", s.Live)
	}
	if s.Retries > s.Conflicts {
		t.Errorf("retries %d exceed conflicts %d: a retry without a conflict", s.Retries, s.Conflicts)
	}
	snapshotClean(t, p)
}

// gateBinder wraps the default binder and signals/blocks through
// channels, so a test can observe engine state while a plan is
// provably mid-workflow.
type gateBinder struct {
	entered chan struct{}
	proceed chan struct{}
}

func (g *gateBinder) Bind(app *graph.Application, p *platform.Platform) (*binding.Binding, error) {
	g.entered <- struct{}{}
	<-g.proceed
	return RegretBinder{}.Bind(app, p)
}

func (g *gateBinder) Name() string { return "gate" }

// TestOptimisticLoadUpdatesAtCommit pins the Load-gauge satellite: an
// in-flight optimistic plan must not move the lock-free load gauge —
// placement policies would otherwise double-count speculative plans —
// and the gauge must reflect the admission only at commit.
func TestOptimisticLoadUpdatesAtCommit(t *testing.T) {
	gate := &gateBinder{entered: make(chan struct{}), proceed: make(chan struct{})}
	k := New(platform.Mesh(3, 3, 4), Options{SkipValidation: true, OptimisticAttempts: 2, Binder: gate})
	done := make(chan *Admission)
	go func() {
		adm, err := k.Admit(context.Background(), chainApp("inflight", 2, 60))
		if err != nil {
			t.Errorf("admit: %v", err)
		}
		done <- adm
	}()
	<-gate.entered // the plan is inside the lock-free workflow now
	if h := k.Load(); h.Live != 0 || h.UsedShare != 0 {
		t.Errorf("mid-plan load = %+v, want zero (plan must not publish)", h)
	}
	close(gate.proceed)
	adm := <-done
	if adm == nil {
		t.Fatal("no admission")
	}
	if h := k.Load(); h.Live != 1 || h.UsedShare == 0 {
		t.Errorf("post-commit load = %+v, want live=1 and non-zero share", h)
	}
}

// sliceJournal records ops in memory for replay tests.
type sliceJournal struct {
	ops []Op
}

func (j *sliceJournal) Append(op Op) (uint64, error) {
	j.ops = append(j.ops, op)
	return uint64(len(j.ops)), nil
}

// TestOptimisticStaleCommitJournalsLayout checks the WAL-divergence
// defense: a commit whose plan epoch went stale must journal its
// layout verbatim, and replaying the journal into a fresh engine must
// reproduce the exact state — even though re-running the workflow from
// the replay state could choose differently.
func TestOptimisticStaleCommitJournalsLayout(t *testing.T) {
	j := &sliceJournal{}
	k := New(platform.Mesh(3, 3, 4), Options{Weights: mapping.WeightsBoth, SkipValidation: true, OptimisticAttempts: 4})
	k.AttachJournal(j)

	fired := false
	k.planHook = func() {
		if fired {
			return
		}
		fired = true
		// Admit and release a competitor while the plan is in flight:
		// the platform ends up back in the snapshotted state (so the
		// stale plan still fits and commits), but the epoch has moved.
		adm, err := k.Admit(context.Background(), chainApp("transient", 2, 60))
		if err != nil {
			t.Errorf("transient admit: %v", err)
			return
		}
		if err := k.Release(adm.Instance); err != nil {
			t.Errorf("transient release: %v", err)
		}
	}
	if _, err := k.Admit(context.Background(), chainApp("stale", 2, 60)); err != nil {
		t.Fatalf("stale-plan admit: %v", err)
	}
	if s := k.Stats(); s.Conflicts != 0 {
		t.Errorf("Conflicts = %d, want 0 (the stale plan still fits)", s.Conflicts)
	}

	if len(j.ops) != 3 {
		t.Fatalf("journaled %d ops, want 3 (admit, release, stale admit)", len(j.ops))
	}
	if j.ops[0].Layout != nil || j.ops[1].Layout != nil {
		t.Error("epoch-exact ops must not carry layouts")
	}
	if j.ops[2].Layout == nil {
		t.Fatal("stale commit journaled no layout")
	}

	k2 := New(platform.Mesh(3, 3, 4), Options{Weights: mapping.WeightsBoth, SkipValidation: true, OptimisticAttempts: 4})
	for i, op := range j.ops {
		if err := k2.ReplayOp(uint64(i+1), op); err != nil {
			t.Fatalf("replaying op %d: %v", i, err)
		}
	}
	a, b := k.ExportState(), k2.ExportState()
	a.LastLSN = b.LastLSN // the original engine journaled, the replica replayed
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replayed state diverged:\noriginal: %+v\nreplica:  %+v", a, b)
	}
}

// TestOptimisticStaleCommitNotCached pins the cache/journal safety
// seam: a commit whose plan epoch went stale journals its layout
// verbatim (recovery cannot re-derive it), so it must NOT be memoized
// — a cache hit commits via a plain OpAdmit and relies on recovery
// re-planning the layout from the commit-time state.
func TestOptimisticStaleCommitNotCached(t *testing.T) {
	j := &sliceJournal{}
	k := New(platform.Mesh(3, 3, 4), Options{Weights: mapping.WeightsBoth, SkipValidation: true, OptimisticAttempts: 4, LayoutCache: 8})
	k.AttachJournal(j)

	fired := false
	k.planHook = func() {
		if fired {
			return
		}
		fired = true
		// A different-shaped competitor admits and releases mid-plan:
		// the platform returns to the snapshotted bytes but the epoch
		// has moved, so the in-flight plan commits stale. The distinct
		// shape keeps the competitor's own (legitimate, epoch-exact)
		// cache entry from aliasing the probe below.
		adm, err := k.Admit(context.Background(), chainApp("transient", 1, 30))
		if err != nil {
			t.Errorf("transient admit: %v", err)
			return
		}
		if err := k.Release(adm.Instance); err != nil {
			t.Errorf("transient release: %v", err)
		}
	}
	stale, err := k.Admit(context.Background(), chainApp("stale", 2, 60))
	if err != nil {
		t.Fatalf("stale-plan admit: %v", err)
	}
	if len(j.ops) != 3 || j.ops[2].Layout == nil {
		t.Fatal("staging failed: the admission did not commit a stale layout")
	}
	if err := k.Release(stale.Instance); err != nil {
		t.Fatal(err)
	}
	// The platform is now byte-identical to the stale commit's
	// pre-replay state. Had the stale layout been memoized, this probe
	// (same shape) would hit the entry and commit a non-reproducible
	// layout under a plain OpAdmit.
	if _, err := k.Admit(context.Background(), chainApp("probe", 2, 60)); err != nil {
		t.Fatalf("probe admit: %v", err)
	}
	if s := k.Stats(); s.CacheHits != 0 {
		t.Errorf("CacheHits = %d, want 0: a stale commit must not be memoized", s.CacheHits)
	}
}

// TestOptimisticRetryCountedOnCacheHit pins the Stats invariant that
// Conflicts − Retries counts serialized fallbacks: a conflict retry
// that is satisfied by a layout-cache hit is still a retry and must be
// counted before the cache lookup short-circuits it.
func TestOptimisticRetryCountedOnCacheHit(t *testing.T) {
	opts := Options{Weights: mapping.WeightsBoth, SkipValidation: true, OptimisticAttempts: 4, LayoutCache: 4}
	app := chainApp("racer", 1, 60)
	demand := resource.Of(60, 8, 0, 0)
	blocker := platform.Occupant{App: "blocker", Task: 0}

	// Twin engines learn the deterministic layouts without touching the
	// engine under test: pick is the element an empty-platform plan
	// chooses; alt is the admission a re-plan at "pick blocked" yields.
	twin := New(platform.Mesh(2, 1, 4), opts)
	ref, err := twin.Admit(context.Background(), chainApp("racer", 1, 60))
	if err != nil {
		t.Fatalf("twin admit: %v", err)
	}
	pick := ref.Assignment[0]
	twin2 := New(platform.Mesh(2, 1, 4), opts)
	if err := twin2.p.Place(pick, blocker, demand); err != nil {
		t.Fatal(err)
	}
	alt, err := twin2.Admit(context.Background(), chainApp("racer", 1, 60))
	if err != nil {
		t.Fatalf("blocked twin admit: %v", err)
	}
	if alt.Assignment[0] == pick {
		t.Fatalf("staging failed: blocked plan still chose element %d", pick)
	}

	k := New(platform.Mesh(2, 1, 4), opts)
	fired := false
	k.planHook = func() {
		if fired {
			return
		}
		fired = true
		// While the plan is in flight: block the element it chose (its
		// replay will conflict) and memoize, keyed by the post-block
		// state, the layout a re-plan would produce — the "conflictor
		// inserted a matching layout" case from admitOptimistic.
		k.mu.Lock()
		if err := k.p.Place(pick, blocker, demand); err != nil {
			t.Errorf("placing blocker: %v", err)
		}
		k.epoch++
		k.cache.insert(appendFingerprint(nil, app), k.appendSketch(nil), alt)
		k.mu.Unlock()
	}
	adm, err := k.Admit(context.Background(), app)
	if err != nil {
		t.Fatalf("admit after conflict: %v", err)
	}
	if adm.Assignment[0] == pick {
		t.Errorf("admission landed on the blocked element %d", pick)
	}
	s := k.Stats()
	if s.CacheHits != 1 {
		t.Errorf("CacheHits = %d, want 1 (the retry must hit the conflictor's entry)", s.CacheHits)
	}
	if s.Conflicts != 1 || s.Retries != 1 {
		t.Errorf("Conflicts/Retries = %d/%d, want 1/1 (a cache-satisfied retry is still a retry)", s.Conflicts, s.Retries)
	}
}

// TestOptimisticDrainRefusal checks both refusal points: a drain set
// before the admission and one set between plan and commit.
func TestOptimisticDrainRefusal(t *testing.T) {
	k := New(platform.Mesh(2, 2, 4), Options{SkipValidation: true, OptimisticAttempts: 2})
	k.SetDraining(true)
	if _, err := k.Admit(context.Background(), chainApp("pre", 1, 30)); !errors.Is(err, ErrDraining) {
		t.Errorf("pre-plan refusal: %v, want ErrDraining", err)
	}
	k.SetDraining(false)
	k.planHook = func() { k.SetDraining(true) }
	if _, err := k.Admit(context.Background(), chainApp("mid", 1, 30)); !errors.Is(err, ErrDraining) {
		t.Errorf("mid-plan refusal: %v, want ErrDraining", err)
	}
	if s := k.Stats(); s.Attempts != 0 {
		t.Errorf("refusals consumed %d attempts, want 0", s.Attempts)
	}
}
