// Package core implements Kairos, the prototype run-time spatial
// resource manager of the paper (§III-E): it admits applications onto
// a heterogeneous MPSoC by running the four-phase workflow of Fig. 1 —
// binding, mapping, routing, validation — and releases them again,
// tracking per-phase execution times and attributing failures to the
// phase that rejected the application (the basis of Table I and
// Fig. 7).
//
// The original Kairos runs inside a Linux 2.6.28 kernel on the CRISP
// platform's 200 MHz ARM926; this implementation is a pure-Go library
// over the platform model in internal/platform. Algorithms, data
// structures and phase boundaries are the same; absolute times differ.
//
// This package is the engine; the public, stable surface is package
// repro/kairos, which re-exports these types and adds functional
// options and name-based strategy registries. New code outside the
// module imports repro/kairos, not this package.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binding"
	"repro/internal/graph"
	"repro/internal/knapsack"
	"repro/internal/mapping"
	"repro/internal/platform"
	"repro/internal/routing"
	"repro/internal/validation"
)

// Phase identifies one phase of the resource-allocation workflow.
type Phase int

// The run-time phases of Fig. 1.
const (
	PhaseBinding Phase = iota
	PhaseMapping
	PhaseRouting
	PhaseValidation
)

func (p Phase) String() string {
	switch p {
	case PhaseBinding:
		return "binding"
	case PhaseMapping:
		return "mapping"
	case PhaseRouting:
		return "routing"
	case PhaseValidation:
		return "validation"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// PhaseError attributes an admission failure to a workflow phase.
// It matches the sentinel errors of this package under errors.Is
// (see ErrRejected) and unwraps to the phase's own error type.
type PhaseError struct {
	Phase Phase
	Err   error
}

func (e *PhaseError) Error() string {
	return fmt.Sprintf("kairos: rejected in %s phase: %v", e.Phase, e.Err)
}

func (e *PhaseError) Unwrap() error { return e.Err }

// PhaseTimes records the execution time spent in each phase of one
// allocation attempt (successful or not), the quantity plotted in
// Fig. 7 and reported for the case study.
type PhaseTimes struct {
	Binding    time.Duration
	Mapping    time.Duration
	Routing    time.Duration
	Validation time.Duration
}

// Total returns the total allocation time.
func (t PhaseTimes) Total() time.Duration {
	return t.Binding + t.Mapping + t.Routing + t.Validation
}

// Options configures the resource manager. The zero value runs the
// paper's algorithms in every phase.
type Options struct {
	// Weights steers the mapping cost function (Figs. 8–10).
	Weights mapping.Weights
	// Solver is the knapsack subroutine; defaults to the paper's
	// O(T²) greedy.
	Solver knapsack.Solver
	// Binder is the phase-1 strategy; nil means RegretBinder (the
	// paper's regret-ordered heuristic).
	Binder Binder
	// Mapper is the phase-2 strategy; nil means IncrementalMapper
	// (the paper's incremental divide-and-conquer algorithm).
	Mapper Mapper
	// Router is the phase-3 strategy; nil means BFS (§II).
	Router Router
	// Validator is the phase-4 strategy; nil means SDFValidator.
	Validator Validator
	// Validation configures the SDF model of phase 4.
	Validation validation.Options
	// SkipValidation admits applications without checking
	// performance constraints. The paper's synthetic-dataset
	// experiments do this ("we do not reject applications in the
	// validation phase", §IV); the validation phase still runs and
	// is timed, but its verdict is ignored.
	SkipValidation bool
	// DisableValidation omits the validation phase entirely (no SDF
	// model is built and Times.Validation stays zero). Used by
	// admission-outcome sweeps that would otherwise pay for
	// thousands of throughput analyses.
	DisableValidation bool
	// ExtraRings and DistancePenalty pass through to the mapping
	// phase; zero means default.
	ExtraRings      int
	DistancePenalty int
	// AdmitTimeout, when positive, bounds each admission attempt:
	// the workflow checks the deadline between phases and rolls the
	// attempt back once it has passed. It applies per admission, so
	// every entry of an AdmitAll batch gets its own budget.
	AdmitTimeout time.Duration
	// EventBuffer is the per-subscription channel capacity of the
	// event stream (see Subscribe); zero means DefaultEventBuffer.
	EventBuffer int
	// LayoutCache, when positive, memoizes up to this many successful
	// layouts keyed on a canonical application fingerprint plus a
	// residual-capacity sketch of the platform (see cache.go). A hit
	// skips binding, mapping and routing and replays the remembered
	// layout under the new instance name, falling back to the full
	// workflow when the replay or its validation fails. Zero disables
	// the cache.
	LayoutCache int
	// OptimisticAttempts, when positive, runs the bind/map/route/
	// validate workflow of Admit against a lock-free snapshot of the
	// platform and only acquires the platform-state mutex to validate
	// and commit the planned layout (see optimistic.go). A commit that
	// no longer fits the live platform is a conflict; the admission is
	// re-planned up to OptimisticAttempts times in total, then falls
	// back to the fully serialized path so admission never livelocks.
	// Zero (the default) serializes every admission under the mutex.
	OptimisticAttempts int
	// Replanner is the offline-replanning strategy Replan runs (see
	// replan.go); nil disables replanning (Replan returns
	// ErrNoReplanner).
	Replanner Replanner
	// ReplanBudget bounds one replanning pass in re-admission attempts;
	// zero means DefaultReplanBudget.
	ReplanBudget int
}

// EvictReason says why an Evicted event fired for an admission.
type EvictReason int

const (
	// EvictReadmit: the admission was retired by a successful Readmit;
	// the application is running again under a new instance name.
	EvictReadmit EvictReason = iota
	// EvictLost: a failed re-admission could not replay the previous
	// layout; the application is gone from the platform.
	EvictLost
)

func (r EvictReason) String() string {
	if r == EvictLost {
		return "lost"
	}
	return "readmit"
}

// Admission is one admitted (or attempted) application: the execution
// layout of Fig. 1 plus bookkeeping.
type Admission struct {
	// Instance uniquely names this admission on the platform.
	Instance string
	// App is the admitted application.
	App *graph.Application
	// Binding, Assignment and Routes form the execution layout.
	Binding    *binding.Binding
	Assignment []int
	Routes     []routing.Route
	// MapStats exposes mapping introspection counters.
	MapStats *mapping.Result
	// Report is the validation outcome (nil when the validation
	// phase itself failed to produce one, or was disabled).
	Report *validation.Report
	// Times are the per-phase execution times.
	Times PhaseTimes
}

// Kairos is the run-time resource manager. It owns the platform
// allocation state and is safe for concurrent use: a platform-state
// mutex serializes allocation attempts (the four-phase workflow
// mutates the platform incrementally and rolls back on failure, so
// attempts cannot interleave), exactly as the original prototype
// serializes admission inside the kernel. Concurrent Admit, Release,
// Readmit and snapshot calls may be issued from any number of
// goroutines. Lifecycle transitions are published to Subscribe
// channels after the lock is released.
type Kairos struct {
	mu       sync.Mutex
	p        *platform.Platform
	opts     Options
	admitted map[string]*Admission
	seq      int
	stats    Stats
	// load is the packed lock-free load gauge (see load.go): live
	// count in the upper 32 bits, used share as a float32 below.
	load atomic.Uint64
	// pending holds events queued under mu, published after unlock.
	pending []Event
	events  eventHub
	// journal, when non-nil, durably records committed ops (see
	// journal.go); lastLSN is the log sequence number of the last op
	// this engine recorded or replayed, the coverage mark snapshots
	// carry.
	journal Journal
	lastLSN uint64
	// draining marks the manager refusing fresh admissions (see
	// SetDraining): a cluster drains a shard by setting the mark, then
	// migrating the residents elsewhere. Release and the restore half
	// of a failed Readmit stay available so residents can leave.
	draining bool
	// cache, when non-nil, memoizes successful layouts (see
	// Options.LayoutCache and cache.go).
	cache *layoutCache
	// epoch versions the platform allocation state for optimistic
	// admission (see optimistic.go): it advances every time a critical
	// section that may have mutated the platform ends, so a planner can
	// tell whether the state it snapshotted is still current. Guarded
	// by mu.
	epoch uint64
	// planHook, when non-nil, runs between the lock-free planning step
	// of an optimistic admission and its commit. Tests use it to force
	// deterministic conflict interleavings; it is never set in
	// production.
	planHook func()
}

// New returns a resource manager for the platform. The manager owns
// the platform's allocation state from here on: mutate it only
// through the manager.
func New(p *platform.Platform, opts Options) *Kairos {
	k := &Kairos{p: p, opts: opts, admitted: make(map[string]*Admission)}
	if opts.LayoutCache > 0 {
		k.cache = newLayoutCache(opts.LayoutCache)
	}
	return k
}

// Platform returns the managed platform. The platform itself is not
// synchronized; callers that inspect it while other goroutines admit
// or release observe intermediate allocation states.
func (k *Kairos) Platform() *platform.Platform { return k.p }

// Admitted returns a snapshot of the currently admitted applications,
// keyed by instance name.
func (k *Kairos) Admitted() map[string]*Admission {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make(map[string]*Admission, len(k.admitted))
	for n, a := range k.admitted {
		out[n] = a
	}
	return out
}

// Admit runs the four-phase workflow for the application. On success
// the returned Admission holds the execution layout and the platform
// carries its allocations. On failure a *PhaseError attributes the
// rejection, the platform is left exactly as before the call, and the
// partial Admission (with phase times measured so far) is returned
// alongside the error for introspection.
//
// The context is checked between phases: once it is cancelled or its
// deadline (or Options.AdmitTimeout) has passed, the attempt is
// rolled back — allocation state byte-identical to before the call —
// and the returned error matches context.Canceled or
// context.DeadlineExceeded under errors.Is. A running phase is never
// interrupted midway.
//
// With Options.OptimisticAttempts > 0 the workflow runs against a
// lock-free snapshot of the platform and only the validate-and-commit
// step holds the mutex (see optimistic.go); the observable outcome for
// a single admitter is identical to the serialized path.
func (k *Kairos) Admit(ctx context.Context, app *graph.Application) (*Admission, error) {
	if k.opts.OptimisticAttempts > 0 {
		return k.admitOptimistic(ctx, app)
	}
	k.mu.Lock()
	adm, err := k.admitLocked(ctx, app)
	if err == nil {
		err = k.commitAdmitLocked(adm)
	}
	k.unlockAndPublish()
	return adm, err
}

// admitLocked runs the four-phase workflow under k.mu, consulting the
// layout cache first when one is configured.
func (k *Kairos) admitLocked(ctx context.Context, app *graph.Application) (*Admission, error) {
	if k.draining {
		// Refused before the workflow runs: no sequence number is
		// consumed and no stats are recorded, so a drained shard's
		// counters and instance names are unaffected by the traffic it
		// turns away. Readmit is gated here too — its restore path puts
		// the old layout back, so a draining shard sheds rather than
		// reshuffles.
		return nil, fmt.Errorf("kairos: admission of %s refused: %w", app.Name, ErrDraining)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if k.opts.AdmitTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, k.opts.AdmitTimeout)
		defer cancel()
	}
	var fp, sketch []byte
	if c := k.cache; c != nil && ctx.Err() == nil {
		c.fpBuf = appendFingerprint(c.fpBuf[:0], app)
		c.skBuf = k.appendSketch(c.skBuf[:0])
		fp, sketch = c.fpBuf, c.skBuf
		if e := c.lookup(fp, sketch); e != nil {
			if adm, ok := k.replayCachedLocked(app, e); ok {
				k.stats.CacheHits++
				k.stats.record(adm, nil)
				return adm, nil
			}
			// The entry matched byte-for-byte but would not replay:
			// the platform disagrees with what the sketch promised
			// (e.g. it was mutated directly, bypassing the manager).
			// Drop the stale entry and run the full workflow.
			c.drop(fp, sketch)
			k.stats.CacheFallbacks++
		} else {
			k.stats.CacheMisses++
		}
	}
	adm, err := k.attemptLocked(ctx, app)
	k.stats.record(adm, err)
	if err == nil && k.cache != nil && fp != nil {
		k.cache.insert(fp, sketch, adm)
	}
	return adm, err
}

// cancelled wraps a context error for the attempt that hit it.
func cancelled(app *graph.Application, next Phase, err error) error {
	return fmt.Errorf("kairos: admission of %s cancelled before %s phase: %w", app.Name, next, err)
}

// instanceName composes the unique name an admission attempt runs
// under; seq is the attempt's freshly consumed sequence number.
func instanceName(app *graph.Application, seq int) string {
	return fmt.Sprintf("%s#%d", app.Name, seq)
}

// attemptLocked is the workflow body without stats accounting.
func (k *Kairos) attemptLocked(ctx context.Context, app *graph.Application) (*Admission, error) {
	k.seq++
	adm, err := k.runWorkflow(ctx, app, instanceName(app, k.seq), k.p)
	if err != nil {
		return adm, err
	}
	k.admitted[adm.Instance] = adm
	return adm, nil
}

// runWorkflow executes the four phases against p under the given
// instance name, leaving p untouched on failure (every phase rolls its
// own mutations back). It is the shared body of the serialized attempt
// (p is the live platform, k.mu held) and of optimistic planning (p is
// a private snapshot, no lock held) — it must not touch any engine
// state besides the immutable option set.
func (k *Kairos) runWorkflow(ctx context.Context, app *graph.Application, instance string, p *platform.Platform) (*Admission, error) {
	adm := &Admission{
		Instance: instance,
		App:      app,
	}

	if err := ctx.Err(); err != nil {
		return adm, cancelled(app, PhaseBinding, err)
	}

	// Phase 1: binding.
	start := time.Now()
	bind, err := k.opts.binder().Bind(app, p)
	adm.Times.Binding = time.Since(start)
	if err != nil {
		return adm, &PhaseError{Phase: PhaseBinding, Err: err}
	}
	adm.Binding = bind

	if err := ctx.Err(); err != nil {
		return adm, cancelled(app, PhaseMapping, err)
	}

	// Phase 2: mapping.
	start = time.Now()
	res, err := k.opts.mapper().Map(app, p, bind, mapping.Options{
		Instance:        adm.Instance,
		Weights:         k.opts.Weights,
		Solver:          k.opts.Solver,
		ExtraRings:      k.opts.ExtraRings,
		DistancePenalty: k.opts.DistancePenalty,
	})
	adm.Times.Mapping = time.Since(start)
	if err != nil {
		return adm, &PhaseError{Phase: PhaseMapping, Err: err}
	}
	adm.Assignment = res.Assignment
	adm.MapStats = res

	if err := ctx.Err(); err != nil {
		mapping.UnmapAssigned(p, adm.Instance, app, adm.Assignment)
		return adm, cancelled(app, PhaseRouting, err)
	}

	// Phase 3: routing.
	start = time.Now()
	routes, err := routing.RouteAll(app, res.Assignment, p, k.opts.Router)
	adm.Times.Routing = time.Since(start)
	if err != nil {
		mapping.UnmapAssigned(p, adm.Instance, app, adm.Assignment)
		return adm, &PhaseError{Phase: PhaseRouting, Err: err}
	}
	adm.Routes = routes

	if err := ctx.Err(); err != nil {
		routing.ReleaseAll(p, routes)
		mapping.UnmapAssigned(p, adm.Instance, app, adm.Assignment)
		return adm, cancelled(app, PhaseValidation, err)
	}

	// Phase 4: validation.
	if !k.opts.DisableValidation {
		start = time.Now()
		rep, verr := k.opts.validator().Validate(app, bind, res.Assignment, routes, p, k.opts.Validation)
		adm.Times.Validation = time.Since(start)
		adm.Report = rep
		if verr != nil && !k.opts.SkipValidation {
			routing.ReleaseAll(p, routes)
			mapping.UnmapAssigned(p, adm.Instance, app, adm.Assignment)
			return adm, &PhaseError{Phase: PhaseValidation, Err: verr}
		}
	}

	return adm, nil
}

// ErrUnknownInstance is returned by Release for unknown instances.
var ErrUnknownInstance = errors.New("kairos: unknown application instance")

// ErrDraining matches every admission refused because the manager is
// draining (SetDraining): its shard is leaving the cluster and must
// shed residents, not gain them.
var ErrDraining = errors.New("kairos: manager is draining")

// SetDraining marks the manager as draining, or clears the mark.
// While draining, Admit, AdmitAll and the admission half of Readmit
// are refused with an error matching ErrDraining before any sequence
// number is consumed; Release and the restore path of a failed
// Readmit keep working so residents can leave. The mark is visible
// lock-free through Load and is part of the durable state export, so
// a recovered shard stays unadmittable.
func (k *Kairos) SetDraining(draining bool) {
	k.mu.Lock()
	k.draining = draining
	k.unlockAndPublish()
}

// Draining reports whether the manager is refusing fresh admissions.
func (k *Kairos) Draining() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.draining
}

// Release frees all resources held by the named admission, e.g. when
// the application exits or the user demand changes.
func (k *Kairos) Release(instance string) error {
	k.mu.Lock()
	err := k.releaseLocked(instance)
	k.unlockAndPublish()
	return err
}

func (k *Kairos) releaseLocked(instance string) error {
	adm, ok := k.admitted[instance]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownInstance, instance)
	}
	k.dropLocked(adm)
	if jerr := k.journalLocked(Op{Kind: OpRelease, Instance: instance}); jerr != nil {
		// Journal append failed: the release is not durable, so it must
		// not happen. The resources were free a moment ago, so replaying
		// the layout cannot fail.
		_ = k.restoreLayoutLocked(adm)
		k.admitted[instance] = adm
		k.stats.Released--
		return jerr
	}
	k.emit(Released{Instance: instance, App: adm.App})
	return nil
}

// dropLocked frees an admission's resources and bookkeeping without
// publishing an event: the release bookkeeping shared by an explicit
// Release and the release half of a readmission (whose outcome events
// say what happened instead).
func (k *Kairos) dropLocked(adm *Admission) {
	routing.ReleaseAll(k.p, adm.Routes)
	mapping.UnmapAssigned(k.p, adm.Instance, adm.App, adm.Assignment)
	delete(k.admitted, adm.Instance)
	k.stats.Released++
}

// ReleaseAll frees every admission (experiments empty the platform
// between sequences).
func (k *Kairos) ReleaseAll() {
	k.mu.Lock()
	for name := range k.admitted {
		_ = k.releaseLocked(name)
	}
	k.unlockAndPublish()
}

// Readmit restarts an admitted application: its resources are
// released and the application is allocated afresh under the current
// platform state. Task migration is impossible (paper §I-A), so
// restarting is the only way to defragment or to move an application
// off worn or failing elements. When re-admission fails, the old
// allocation is restored (the layout is replayed; the paper's
// configuration layer would simply have kept the application running).
// The context governs the fresh admission exactly as in Admit; a
// cancelled readmission restores the old layout.
func (k *Kairos) Readmit(ctx context.Context, instance string) (*Admission, error) {
	k.mu.Lock()
	adm, err := k.readmitLocked(ctx, instance)
	k.unlockAndPublish()
	return adm, err
}

// readmitLocked is the Readmit body under k.mu.
func (k *Kairos) readmitLocked(ctx context.Context, instance string) (*Admission, error) {
	old, ok := k.admitted[instance]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownInstance, instance)
	}
	k.dropLocked(old)
	adm, err := k.admitLocked(ctx, old.App)
	if err == nil {
		// One OpReadmit record covers the whole transition (release of
		// the old instance plus the fresh admission); k.seq is the fresh
		// admission's number. On journal failure the readmission must
		// not happen: unwind the fresh admission and put the old layout
		// back (its resources just came free, so replay cannot fail).
		if jerr := k.journalLocked(Op{Kind: OpReadmit, Seq: k.seq, Instance: old.Instance}); jerr != nil {
			k.unwindAdmitLocked(adm)
			_ = k.restoreLayoutLocked(old)
			k.admitted[old.Instance] = old
			k.stats.Released--
			return old, jerr
		}
		k.stats.Readmitted++
		// Retirement before fresh admission: that is the timeline the
		// subscriber observes (the old instance stops, then the new
		// one starts).
		k.emit(Evicted{Adm: old, Reason: EvictReadmit})
		k.emit(Admitted{Adm: adm})
		return adm, nil
	}
	// Restore the previous layout. The resources were free a moment
	// ago and the failed attempt rolled itself back, so replaying the
	// old placements and routes cannot fail; if it somehow does (the
	// platform was mutated behind the manager's back), the partial
	// replay is unwound, the admission is lost, and the error says so.
	// A successful restore leaves no net state change, so nothing is
	// journaled; the definitive loss is (best-effort — the platform
	// corruption that caused it will fail replay anyway).
	if rerr := k.restoreLayoutLocked(old); rerr != nil {
		rerr = fmt.Errorf("kairos: readmit failed (%w) and restore failed: %v", err, rerr)
		_ = k.journalLocked(Op{Kind: OpEvict, Instance: old.Instance})
		k.emit(ReadmitFailed{Instance: old.Instance, App: old.App, Err: err, Restored: false})
		k.emit(Evicted{Adm: old, Reason: EvictLost})
		return nil, rerr
	}
	k.admitted[old.Instance] = old
	k.stats.Restored++
	k.emit(ReadmitFailed{Instance: old.Instance, App: old.App, Err: err, Restored: true})
	return old, err
}

// releaseRoute frees every virtual channel of one route.
func releaseRoute(p *platform.Platform, rt routing.Route) {
	for i := 0; i+1 < len(rt.Path); i++ {
		_ = p.ReleaseVC(rt.Path[i], rt.Path[i+1])
	}
}

// Fragmentation returns the platform's current external resource
// fragmentation percentage (paper §III-A).
func (k *Kairos) Fragmentation() float64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.p.ExternalFragmentation()
}
