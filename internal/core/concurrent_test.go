package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/appgen"
	"repro/internal/graph"
	"repro/internal/mapping"
	"repro/internal/platform"
)

// TestConcurrentAdmitRelease hammers one Kairos from many goroutines
// (run with -race): each worker repeatedly admits a small chain,
// occasionally readmits it, and releases it again. Afterwards the
// platform must be empty and the counters must balance.
func TestConcurrentAdmitRelease(t *testing.T) {
	p := platform.Mesh(6, 6, 4)
	k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true})
	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			app := chainApp(fmt.Sprintf("w%d", w), 2, 60)
			for i := 0; i < iters; i++ {
				adm, err := k.Admit(context.Background(), app)
				if err != nil {
					// Transient saturation while other workers hold
					// resources is expected; platform cleanliness is
					// checked at the end.
					continue
				}
				if i%5 == 0 {
					if adm2, err := k.Readmit(context.Background(), adm.Instance); err == nil {
						adm = adm2
					}
				}
				if err := k.Release(adm.Instance); err != nil {
					errc <- fmt.Errorf("worker %d release: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	if n := len(k.Admitted()); n != 0 {
		t.Fatalf("%d admissions left after all workers released", n)
	}
	snapshotClean(t, p)

	st := k.Stats()
	if st.Live != 0 {
		t.Errorf("Live = %d, want 0", st.Live)
	}
	if st.Attempts != st.Admitted+st.Rejected {
		t.Errorf("attempts %d != admitted %d + rejected %d", st.Attempts, st.Admitted, st.Rejected)
	}
	if st.Admitted-st.Released+st.Restored != 0 {
		t.Errorf("admissions don't balance: admitted %d released %d restored %d",
			st.Admitted, st.Released, st.Restored)
	}
	if st.Admitted > 0 && st.PhaseTotals.Total() <= 0 {
		t.Error("phase totals not accumulated")
	}
}

// TestConcurrentAdmitAllAndSnapshots runs batched admission
// concurrently with snapshot readers (run with -race): Admitted,
// Stats and Fragmentation must be safe while batches run.
func TestConcurrentAdmitAllAndSnapshots(t *testing.T) {
	p := platform.Mesh(6, 6, 4)
	k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = k.Admitted()
			_ = k.Stats()
			if f := k.Fragmentation(); f < 0 || f > 100 {
				t.Errorf("fragmentation out of range: %v", f)
				return
			}
		}
	}()
	for b := 0; b < 4; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			apps := []*graph.Application{
				chainApp(fmt.Sprintf("b%d-a", b), 3, 50),
				chainApp(fmt.Sprintf("b%d-b", b), 2, 50),
				nil,
			}
			for i := 0; i < 10; i++ {
				for _, res := range k.AdmitAll(context.Background(), apps) {
					if res.App == nil {
						if !errors.Is(res.Err, ErrNilApplication) {
							t.Errorf("nil request error = %v", res.Err)
						}
						continue
					}
					if res.Err == nil {
						if err := k.Release(res.Admission.Instance); err != nil {
							t.Errorf("release: %v", err)
						}
					}
				}
			}
		}(b)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	snapshotClean(t, p)
}

// TestAdmitAllDeterministic is the regression test that batched
// admission is reproducible: for applications generated from a fixed
// seed, two AdmitAll runs on identical fresh platforms must admit the
// same instances with identical assignments, regardless of input
// order.
func TestAdmitAllDeterministic(t *testing.T) {
	apps := appgen.Dataset(appgen.NewConfig(appgen.Communication, appgen.Small), 12, 42)
	fingerprint := func(apps []*graph.Application) string {
		k := New(platform.CRISP(), Options{Weights: mapping.WeightsBoth, SkipValidation: true})
		out := ""
		for _, res := range k.AdmitAll(context.Background(), apps) {
			if res.Err != nil {
				out += fmt.Sprintf("%s: rejected\n", res.App.Name)
				continue
			}
			out += fmt.Sprintf("%s -> %s %v\n", res.App.Name, res.Admission.Instance, res.Admission.Assignment)
		}
		return out
	}
	a := fingerprint(apps)
	if b := fingerprint(apps); a != b {
		t.Fatalf("AdmitAll not reproducible:\n--- first\n%s--- second\n%s", a, b)
	}
	// Reversing the request order must not change which apps land
	// where: admission order is sorted, and results are re-indexed.
	rev := make([]*graph.Application, len(apps))
	for i, app := range apps {
		rev[len(apps)-1-i] = app
	}
	c := fingerprint(rev)
	lines := func(s string) map[string]bool {
		m := map[string]bool{}
		for _, l := range splitLines(s) {
			m[l] = true
		}
		return m
	}
	la, lc := lines(a), lines(c)
	for l := range la {
		if !lc[l] {
			t.Fatalf("layout %q lost under reversed input order\nfirst:\n%s\nreversed:\n%s", l, a, c)
		}
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// TestAdmitAllLargestFirst checks the documented batch ordering: the
// bigger application is admitted first (lower sequence number) even
// when it is passed last.
func TestAdmitAllLargestFirst(t *testing.T) {
	k := New(platform.Mesh(4, 4, 4), Options{Weights: mapping.WeightsBoth, SkipValidation: true})
	small := chainApp("small", 2, 40)
	big := chainApp("big", 4, 40)
	results := k.AdmitAll(context.Background(), []*graph.Application{small, big})
	if results[0].App != small || results[1].App != big {
		t.Fatal("results not in input order")
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("batch rejected: %v / %v", results[0].Err, results[1].Err)
	}
	if results[1].Admission.Instance != "big#1" || results[0].Admission.Instance != "small#2" {
		t.Errorf("admission order = %s then %s, want big first",
			results[1].Admission.Instance, results[0].Admission.Instance)
	}
}

// TestStatsSnapshot exercises the counter snapshot on a serial
// workload with known outcomes.
func TestStatsSnapshot(t *testing.T) {
	p := platform.Mesh(3, 3, 4)
	k := New(p, Options{Weights: mapping.WeightsBoth, SkipValidation: true})
	adm, err := k.Admit(context.Background(), chainApp("ok", 2, 60))
	if err != nil {
		t.Fatal(err)
	}
	app := graph.New("unbindable")
	app.AddTask("t", graph.Internal, graph.Implementation{
		Name: "fpga", Target: platform.TypeFPGA,
		Requires: dspImpl(10, 5).Requires, Cost: 1, ExecTime: 5,
	})
	if _, err := k.Admit(context.Background(), app); err == nil {
		t.Fatal("unbindable app admitted")
	}
	st := k.Stats()
	if st.Attempts != 2 || st.Admitted != 1 || st.Rejected != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.RejectedByPhase[PhaseBinding] != 1 {
		t.Errorf("binding rejects = %d, want 1", st.RejectedByPhase[PhaseBinding])
	}
	if st.Live != 1 {
		t.Errorf("live = %d, want 1", st.Live)
	}
	if st.MeanTimes().Binding <= 0 {
		t.Error("mean binding time missing")
	}
	if err := k.Release(adm.Instance); err != nil {
		t.Fatal(err)
	}
	if st = k.Stats(); st.Released != 1 || st.Live != 0 {
		t.Errorf("after release: %+v", st)
	}
	if s := st.String(); s == "" {
		t.Error("Stats.String empty")
	}
}
