// Package binding implements phase 1 of the run-time resource
// allocation workflow (paper §I-A): for each task of the application
// an implementation is selected that can execute the task with low
// cost and sufficient performance, and whose required resources are
// available *somewhere* in the platform (locality is the mapping
// phase's concern).
//
// Following the paper (§II, after Hölzenspies et al. [9] and
// Martello & Toth [10]), tasks are processed in order of *regret*: the
// difference between the cheapest and second-cheapest implementation.
// Tasks whose cheap option is much better than their fallback are
// bound first, while they can still get it.
package binding

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/resource"
)

// Binding is the result of the binding phase: the selected
// implementation index per task.
type Binding struct {
	app  *graph.Application
	impl []int
}

// Implementation returns the selected implementation for the task.
func (b *Binding) Implementation(task int) *graph.Implementation {
	return &b.app.Tasks[task].Implementations[b.impl[task]]
}

// Demand returns the resource demand of the task's selected
// implementation.
func (b *Binding) Demand(task int) resource.Vector {
	return b.Implementation(task).Requires
}

// Target returns the element type the task's selected implementation
// runs on.
func (b *Binding) Target(task int) string {
	return b.Implementation(task).Target
}

// ImplIndex returns the selected implementation index for the task.
func (b *Binding) ImplIndex(task int) int { return b.impl[task] }

// FromSelection rebuilds a Binding from recorded per-task
// implementation indices, validating every index against the
// application. The durability layer uses it to reconstruct recovered
// admissions from snapshots; it does not consult platform capacity —
// the recorded layout already existed.
func FromSelection(app *graph.Application, impls []int) (*Binding, error) {
	if len(impls) != len(app.Tasks) {
		return nil, fmt.Errorf("binding: %d implementation indices for %d tasks", len(impls), len(app.Tasks))
	}
	for i, t := range app.Tasks {
		if impls[i] < 0 || impls[i] >= len(t.Implementations) {
			return nil, fmt.Errorf("binding: task %d (%s): implementation index %d out of range", i, t.Name, impls[i])
		}
	}
	return &Binding{app: app, impl: append([]int(nil), impls...)}, nil
}

// Error is a binding failure, attributing the rejection to a task.
type Error struct {
	Task   int
	Name   string
	Reason string
}

func (e *Error) Error() string {
	return fmt.Sprintf("binding: task %d (%s): %s", e.Task, e.Name, e.Reason)
}

// tracker checks "available somewhere in the platform" incrementally.
// It keeps a location-free copy of every enabled element's free
// resources and packs bound tasks into them best-fit: a demand is
// feasible when some tracked element still fits it. This is the
// binding phase's capacity estimate — it ignores locality entirely
// (locality is the mapping phase's concern) but catches joint
// infeasibility, so rejections concentrate in binding rather than
// mapping, as in the paper's Table I.
//
// Trackers are pooled: one Bind runs per admission attempt and the
// per-type lists, the element index and the vector storage are all
// reusable, so repeated admissions do not allocate here.
type tracker struct {
	free   map[string][]resource.Vector // per type, per element
	byElem []resource.Vector            // element ID → tracked free vector (nil when untracked)
	back   []int64                      // backing storage for the tracked vectors
}

var trackerPool = sync.Pool{
	New: func() any { return &tracker{free: make(map[string][]resource.Vector)} },
}

func newTracker(p *platform.Platform) *tracker {
	tr := trackerPool.Get().(*tracker)
	for typ, s := range tr.free {
		tr.free[typ] = s[:0]
	}
	n := p.NumElements()
	if cap(tr.byElem) < n {
		tr.byElem = make([]resource.Vector, n)
	}
	tr.byElem = tr.byElem[:n]
	for i := range tr.byElem {
		tr.byElem[i] = nil
	}
	// The backing array must be fully grown before vectors are carved
	// from it: an append-triggered reallocation would orphan the
	// already-handed-out slices.
	total := 0
	for _, e := range p.Elements() {
		if e.Enabled() {
			total += len(e.Pool().Capacity())
		}
	}
	if cap(tr.back) < total {
		tr.back = make([]int64, total)
	}
	tr.back = tr.back[:0]
	for _, e := range p.Elements() {
		if !e.Enabled() {
			continue
		}
		start := len(tr.back)
		tr.back = tr.back[:start+len(e.Pool().Capacity())]
		f := resource.Vector(tr.back[start:])
		e.Pool().FreeInto(f)
		tr.free[e.Type] = append(tr.free[e.Type], f)
		tr.byElem[e.ID] = f
	}
	return tr
}

// release returns the tracker to the pool.
func (tr *tracker) release() { trackerPool.Put(tr) }

// bestFit returns the fitting element vector with the least slack, or
// nil when no element of the type fits the demand. It is the innermost
// loop of the O(T²·I) regret ordering and must not allocate.
func (tr *tracker) bestFit(target string, demand resource.Vector) resource.Vector {
	var best resource.Vector
	var bestSlack int64
	for _, f := range tr.free[target] {
		if !demand.Fits(f) {
			continue
		}
		var slack int64
		for i := range f {
			slack += f[i] - demand[i]
		}
		if best == nil || slack < bestSlack {
			best, bestSlack = f, slack
		}
	}
	return best
}

func (tr *tracker) fits(target string, demand resource.Vector) bool {
	return tr.bestFit(target, demand) != nil
}

func (tr *tracker) commit(target string, demand resource.Vector) {
	if f := tr.bestFit(target, demand); f != nil {
		f.SubInPlace(demand)
	}
}

func (tr *tracker) fitsFixed(p *platform.Platform, elem int, demand resource.Vector, target string) bool {
	e := p.Element(elem)
	if e == nil || !e.Enabled() || e.Type != target {
		return false
	}
	free := tr.byElem[elem]
	return free != nil && demand.Fits(free)
}

func (tr *tracker) commitFixed(elem int, demand resource.Vector, target string) {
	if elem < 0 || elem >= len(tr.byElem) {
		return
	}
	if free := tr.byElem[elem]; free != nil {
		free.SubInPlace(demand)
	}
}

// Bind selects an implementation for every task, or returns an *Error
// identifying the first task that cannot be bound. The platform is not
// modified; the returned Binding feeds the mapping phase.
func Bind(app *graph.Application, p *platform.Platform) (*Binding, error) {
	tr := newTracker(p)
	defer tr.release()
	n := len(app.Tasks)

	// candidate appends the indices of implementations currently
	// feasible for the task into buf, cheapest first. The buffer is
	// reused across the O(T²) regret re-evaluations; callers that keep
	// a candidate list across evaluations copy it out.
	candBuf := make([]int, 0, 8)
	candidates := func(t *graph.Task) []int {
		out := candBuf[:0]
		for i, im := range t.Implementations {
			if t.FixedElement != graph.NoFixedElement {
				if tr.fitsFixed(p, t.FixedElement, im.Requires, im.Target) {
					out = append(out, i)
				}
				continue
			}
			if tr.fits(im.Target, im.Requires) {
				out = append(out, i)
			}
		}
		// Insertion sort by implementation cost: candidate lists are
		// tiny (the generator emits 1–3 implementations per task), and
		// sort.Slice's closure would allocate on every call.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && t.Implementations[out[j]].Cost < t.Implementations[out[j-1]].Cost; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		candBuf = out
		return out
	}

	// regret of a task given its current feasible candidates:
	// cheapest vs second cheapest (paper §II). A single candidate
	// means infinite regret: bind it first or lose it.
	regret := func(t *graph.Task, cand []int) float64 {
		switch len(cand) {
		case 0:
			return -1
		case 1:
			return math.Inf(1)
		default:
			return t.Implementations[cand[1]].Cost - t.Implementations[cand[0]].Cost
		}
	}

	bound := make([]int, n)
	for i := range bound {
		bound[i] = -1
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}

	bestCand := make([]int, 0, 8)
	for len(remaining) > 0 {
		// Recompute regrets against the current tracker state and
		// bind the highest-regret task. O(T² · I) overall, which is
		// the dominant cost the paper observes for the 53-task
		// beamformer ("binding is actually the bottleneck").
		bestIdx, bestRegret := -1, math.Inf(-1)
		for idx, taskID := range remaining {
			t := app.Tasks[taskID]
			cand := candidates(t)
			if len(cand) == 0 {
				return nil, &Error{Task: taskID, Name: t.Name,
					Reason: "no implementation with sufficient free resources in the platform"}
			}
			if r := regret(t, cand); r > bestRegret {
				bestIdx, bestRegret = idx, r
				bestCand = append(bestCand[:0], cand...)
			}
		}
		taskID := remaining[bestIdx]
		t := app.Tasks[taskID]
		chosen := bestCand[0]
		im := t.Implementations[chosen]
		if t.FixedElement != graph.NoFixedElement {
			tr.commitFixed(t.FixedElement, im.Requires, im.Target)
		} else {
			tr.commit(im.Target, im.Requires)
		}
		bound[taskID] = chosen
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}

	return &Binding{app: app, impl: bound}, nil
}
