// Package binding implements phase 1 of the run-time resource
// allocation workflow (paper §I-A): for each task of the application
// an implementation is selected that can execute the task with low
// cost and sufficient performance, and whose required resources are
// available *somewhere* in the platform (locality is the mapping
// phase's concern).
//
// Following the paper (§II, after Hölzenspies et al. [9] and
// Martello & Toth [10]), tasks are processed in order of *regret*: the
// difference between the cheapest and second-cheapest implementation.
// Tasks whose cheap option is much better than their fallback are
// bound first, while they can still get it.
package binding

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/resource"
)

// Binding is the result of the binding phase: the selected
// implementation index per task.
type Binding struct {
	app  *graph.Application
	impl []int
}

// Implementation returns the selected implementation for the task.
func (b *Binding) Implementation(task int) *graph.Implementation {
	return &b.app.Tasks[task].Implementations[b.impl[task]]
}

// Demand returns the resource demand of the task's selected
// implementation.
func (b *Binding) Demand(task int) resource.Vector {
	return b.Implementation(task).Requires
}

// Target returns the element type the task's selected implementation
// runs on.
func (b *Binding) Target(task int) string {
	return b.Implementation(task).Target
}

// ImplIndex returns the selected implementation index for the task.
func (b *Binding) ImplIndex(task int) int { return b.impl[task] }

// Error is a binding failure, attributing the rejection to a task.
type Error struct {
	Task   int
	Name   string
	Reason string
}

func (e *Error) Error() string {
	return fmt.Sprintf("binding: task %d (%s): %s", e.Task, e.Name, e.Reason)
}

// tracker checks "available somewhere in the platform" incrementally.
// It keeps a location-free copy of every enabled element's free
// resources and packs bound tasks into them best-fit: a demand is
// feasible when some tracked element still fits it. This is the
// binding phase's capacity estimate — it ignores locality entirely
// (locality is the mapping phase's concern) but catches joint
// infeasibility, so rejections concentrate in binding rather than
// mapping, as in the paper's Table I.
type tracker struct {
	free   map[string][]resource.Vector // per type, per element
	byElem map[int]resource.Vector      // element ID → tracked free vector
}

func newTracker(p *platform.Platform) *tracker {
	tr := &tracker{
		free:   make(map[string][]resource.Vector),
		byElem: make(map[int]resource.Vector),
	}
	for _, e := range p.Elements() {
		if !e.Enabled() {
			continue
		}
		f := e.Pool().Free()
		tr.free[e.Type] = append(tr.free[e.Type], f)
		tr.byElem[e.ID] = f
	}
	return tr
}

// bestFit returns the fitting element vector with the least slack, or
// nil when no element of the type fits the demand.
func (tr *tracker) bestFit(target string, demand resource.Vector) resource.Vector {
	var best resource.Vector
	var bestSlack int64
	for _, f := range tr.free[target] {
		if !demand.Fits(f) {
			continue
		}
		slack := f.Sub(demand).Sum()
		if best == nil || slack < bestSlack {
			best, bestSlack = f, slack
		}
	}
	return best
}

func (tr *tracker) fits(target string, demand resource.Vector) bool {
	return tr.bestFit(target, demand) != nil
}

func (tr *tracker) commit(target string, demand resource.Vector) {
	if f := tr.bestFit(target, demand); f != nil {
		f.SubInPlace(demand)
	}
}

func (tr *tracker) fitsFixed(p *platform.Platform, elem int, demand resource.Vector, target string) bool {
	e := p.Element(elem)
	if e == nil || !e.Enabled() || e.Type != target {
		return false
	}
	free, ok := tr.byElem[elem]
	return ok && demand.Fits(free)
}

func (tr *tracker) commitFixed(elem int, demand resource.Vector, target string) {
	if free, ok := tr.byElem[elem]; ok {
		free.SubInPlace(demand)
	}
}

// Bind selects an implementation for every task, or returns an *Error
// identifying the first task that cannot be bound. The platform is not
// modified; the returned Binding feeds the mapping phase.
func Bind(app *graph.Application, p *platform.Platform) (*Binding, error) {
	tr := newTracker(p)
	n := len(app.Tasks)

	// candidate returns the indices of implementations currently
	// feasible for the task, cheapest first.
	candidates := func(t *graph.Task) []int {
		var out []int
		for i, im := range t.Implementations {
			if t.FixedElement != graph.NoFixedElement {
				if tr.fitsFixed(p, t.FixedElement, im.Requires, im.Target) {
					out = append(out, i)
				}
				continue
			}
			if tr.fits(im.Target, im.Requires) {
				out = append(out, i)
			}
		}
		sort.Slice(out, func(a, b int) bool {
			return t.Implementations[out[a]].Cost < t.Implementations[out[b]].Cost
		})
		return out
	}

	// regret of a task given its current feasible candidates:
	// cheapest vs second cheapest (paper §II). A single candidate
	// means infinite regret: bind it first or lose it.
	regret := func(t *graph.Task, cand []int) float64 {
		switch len(cand) {
		case 0:
			return -1
		case 1:
			return math.Inf(1)
		default:
			return t.Implementations[cand[1]].Cost - t.Implementations[cand[0]].Cost
		}
	}

	bound := make([]int, n)
	for i := range bound {
		bound[i] = -1
	}
	remaining := make([]int, n)
	for i := range remaining {
		remaining[i] = i
	}

	for len(remaining) > 0 {
		// Recompute regrets against the current tracker state and
		// bind the highest-regret task. O(T² · I) overall, which is
		// the dominant cost the paper observes for the 53-task
		// beamformer ("binding is actually the bottleneck").
		bestIdx, bestRegret := -1, math.Inf(-1)
		var bestCand []int
		for idx, taskID := range remaining {
			t := app.Tasks[taskID]
			cand := candidates(t)
			if len(cand) == 0 {
				return nil, &Error{Task: taskID, Name: t.Name,
					Reason: "no implementation with sufficient free resources in the platform"}
			}
			if r := regret(t, cand); r > bestRegret {
				bestIdx, bestRegret, bestCand = idx, r, cand
			}
		}
		taskID := remaining[bestIdx]
		t := app.Tasks[taskID]
		chosen := bestCand[0]
		im := t.Implementations[chosen]
		if t.FixedElement != graph.NoFixedElement {
			tr.commitFixed(t.FixedElement, im.Requires, im.Target)
		} else {
			tr.commit(im.Target, im.Requires)
		}
		bound[taskID] = chosen
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}

	return &Binding{app: app, impl: bound}, nil
}
