package binding

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/resource"
)

func dspImpl(cost float64, share int64) graph.Implementation {
	return graph.Implementation{
		Name: "dsp-impl", Target: platform.TypeDSP,
		Requires: resource.Of(share, 16, 0, 0),
		Cost:     cost, ExecTime: 10,
	}
}

func gppImpl(cost float64, share int64) graph.Implementation {
	return graph.Implementation{
		Name: "gpp-impl", Target: platform.TypeGPP,
		Requires: resource.Of(share, 16, 0, 0),
		Cost:     cost, ExecTime: 12,
	}
}

func smallPlatform() *platform.Platform {
	p := platform.New()
	d0 := p.AddElement(platform.TypeDSP, "d0", platform.DSPCapacity)
	d1 := p.AddElement(platform.TypeDSP, "d1", platform.DSPCapacity)
	g := p.AddElement(platform.TypeGPP, "g0", platform.GPPCapacity)
	p.MustConnect(d0, d1, 2)
	p.MustConnect(d1, g, 2)
	return p
}

func TestBindPicksCheapest(t *testing.T) {
	app := graph.New("a")
	app.AddTask("t", graph.Internal, dspImpl(10, 50), gppImpl(3, 50))
	b, err := Bind(app, smallPlatform())
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if b.Target(0) != platform.TypeGPP {
		t.Errorf("target = %s, want gpp (cheaper)", b.Target(0))
	}
	if b.Implementation(0).Cost != 3 {
		t.Errorf("cost = %v, want 3", b.Implementation(0).Cost)
	}
	if b.ImplIndex(0) != 1 {
		t.Errorf("ImplIndex = %d, want 1", b.ImplIndex(0))
	}
	if !b.Demand(0).Equal(resource.Of(50, 16, 0, 0)) {
		t.Errorf("Demand = %v", b.Demand(0))
	}
}

func TestBindFailsWithoutTargetType(t *testing.T) {
	app := graph.New("a")
	app.AddTask("t", graph.Internal, graph.Implementation{
		Name: "fpga-only", Target: platform.TypeFPGA,
		Requires: resource.Of(10, 0, 0, 100), Cost: 1, ExecTime: 5,
	})
	_, err := Bind(app, smallPlatform())
	var berr *Error
	if !errors.As(err, &berr) {
		t.Fatalf("error = %v, want *binding.Error", err)
	}
	if berr.Task != 0 {
		t.Errorf("failing task = %d, want 0", berr.Task)
	}
}

func TestBindAggregateCapacity(t *testing.T) {
	// Two DSPs of 100 compute each: three 70% tasks exceed the
	// aggregate only at the third task (210 > 200).
	app := graph.New("a")
	for i := 0; i < 3; i++ {
		app.AddTask("t", graph.Internal, dspImpl(1, 70))
	}
	_, err := Bind(app, smallPlatform())
	if err == nil {
		t.Fatal("expected aggregate-capacity binding failure")
	}
	// Two tasks fit.
	app2 := graph.New("b")
	for i := 0; i < 2; i++ {
		app2.AddTask("t", graph.Internal, dspImpl(1, 70))
	}
	if _, err := Bind(app2, smallPlatform()); err != nil {
		t.Errorf("two tasks should bind: %v", err)
	}
}

func TestBindMaxFreeSinglePlacement(t *testing.T) {
	// Aggregate would suffice (2×100) but no single DSP can host a
	// 150-compute demand.
	app := graph.New("a")
	app.AddTask("t", graph.Internal, dspImpl(1, 150))
	if _, err := Bind(app, smallPlatform()); err == nil {
		t.Fatal("demand exceeding every single element must fail binding")
	}
}

func TestBindFallsBackWhenCheapSaturated(t *testing.T) {
	// Three tasks, each preferring the DSP (cost 1) over the GPP
	// (cost 5). DSP aggregate fits two; the third falls back to GPP.
	app := graph.New("a")
	for i := 0; i < 3; i++ {
		app.AddTask("t", graph.Internal, dspImpl(1, 100), gppImpl(5, 50))
	}
	b, err := Bind(app, smallPlatform())
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	targets := map[string]int{}
	for i := range app.Tasks {
		targets[b.Target(i)]++
	}
	if targets[platform.TypeDSP] != 2 || targets[platform.TypeGPP] != 1 {
		t.Errorf("targets = %v, want 2 dsp + 1 gpp", targets)
	}
}

func TestBindRegretOrdering(t *testing.T) {
	// Task A: dsp cost 1, gpp cost 100 → regret 99.
	// Task B: dsp cost 1, gpp cost 2 → regret 1.
	// Only one DSP slot (both demands are 100% compute). A must win
	// the DSP even though B appears first.
	p := platform.New()
	d := p.AddElement(platform.TypeDSP, "d0", platform.DSPCapacity)
	g := p.AddElement(platform.TypeGPP, "g0", platform.GPPCapacity)
	p.MustConnect(d, g, 2)

	app := graph.New("a")
	app.AddTask("B", graph.Internal, dspImpl(1, 100), gppImpl(2, 50))
	app.AddTask("A", graph.Internal, dspImpl(1, 100), gppImpl(100, 50))
	b, err := Bind(app, p)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if b.Target(1) != platform.TypeDSP {
		t.Errorf("high-regret task A got %s, want dsp", b.Target(1))
	}
	if b.Target(0) != platform.TypeGPP {
		t.Errorf("low-regret task B got %s, want gpp", b.Target(0))
	}
}

func TestBindFixedElement(t *testing.T) {
	p := smallPlatform()
	app := graph.New("a")
	id := app.AddTask("io", graph.Input, gppImpl(1, 50))
	app.Tasks[id].FixedElement = 2 // the GPP

	b, err := Bind(app, p)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if b.Target(0) != platform.TypeGPP {
		t.Errorf("target = %s", b.Target(0))
	}

	// Wrong element type at the fixed location fails.
	app2 := graph.New("b")
	id2 := app2.AddTask("io", graph.Input, gppImpl(1, 50))
	app2.Tasks[id2].FixedElement = 0 // a DSP: gpp impl cannot run there
	if _, err := Bind(app2, p); err == nil {
		t.Error("binding to a fixed element of the wrong type must fail")
	}
}

func TestBindFixedElementCapacityShared(t *testing.T) {
	// Two tasks fixed to the same GPP: each 60% compute; the second
	// must fail (120 > 100).
	p := smallPlatform()
	app := graph.New("a")
	for i := 0; i < 2; i++ {
		id := app.AddTask("io", graph.Input, gppImpl(1, 60))
		app.Tasks[id].FixedElement = 2
	}
	if _, err := Bind(app, p); err == nil {
		t.Error("overcommitted fixed element must fail binding")
	}
}

func TestBindRespectsDisabledElements(t *testing.T) {
	p := smallPlatform()
	p.DisableElement(0)
	p.DisableElement(1) // both DSPs gone
	app := graph.New("a")
	app.AddTask("t", graph.Internal, dspImpl(1, 10))
	if _, err := Bind(app, p); err == nil {
		t.Error("binding must not use disabled elements")
	}
}

func TestBindAccountsExistingAllocations(t *testing.T) {
	p := smallPlatform()
	// Pre-allocate 80% of each DSP.
	for _, id := range []int{0, 1} {
		if err := p.Place(id, platform.Occupant{App: "other", Task: id},
			resource.Of(80, 0, 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	app := graph.New("a")
	app.AddTask("t", graph.Internal, dspImpl(1, 30))
	if _, err := Bind(app, p); err == nil {
		t.Error("binding must observe existing allocations")
	}
	app2 := graph.New("b")
	app2.AddTask("t", graph.Internal, dspImpl(1, 20))
	if _, err := Bind(app2, p); err != nil {
		t.Errorf("20%% task should still bind: %v", err)
	}
}

func TestBindBeamformingOnCRISP(t *testing.T) {
	p := platform.CRISP()
	var ioIn int = -1
	for _, e := range p.Elements() {
		if e.Name == "io-in" {
			ioIn = e.ID
		}
	}
	app := graph.Beamforming(graph.DefaultBeamforming(ioIn))
	b, err := Bind(app, p)
	if err != nil {
		t.Fatalf("beamforming must bind on an empty CRISP platform: %v", err)
	}
	dsps := 0
	for i := range app.Tasks {
		if b.Target(i) == platform.TypeDSP {
			dsps++
		}
	}
	if dsps != 45 {
		t.Errorf("bound DSP tasks = %d, want 45", dsps)
	}
}
