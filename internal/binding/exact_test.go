package binding

import (
	"testing"

	"repro/internal/appgen"
	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/resource"
)

// totalCost sums the cost of the selected implementations.
func totalCost(app *graph.Application, b *Binding) float64 {
	c := 0.0
	for _, t := range app.Tasks {
		c += b.Implementation(t.ID).Cost
	}
	return c
}

// TestBindExactNeverCostlierThanRegret: on the synthetic datasets,
// whenever both binders succeed the exact selection must not cost
// more than the regret heuristic's.
func TestBindExactNeverCostlierThanRegret(t *testing.T) {
	proto := platform.CRISP()
	compared := 0
	for seed := int64(0); seed < 6; seed++ {
		cfg := appgen.NewConfig(appgen.Profile(seed%2), appgen.Size(seed%3))
		for _, app := range appgen.Dataset(cfg, 8, seed) {
			greedy, gerr := Bind(app, proto)
			exact, eerr := BindExact(app, proto)
			if gerr != nil {
				// Exact explores more selections than the heuristic,
				// so it may legitimately succeed where regret fails;
				// the cost comparison only applies when both succeed.
				continue
			}
			if eerr != nil {
				t.Fatalf("seed %d app %s: exact failed where regret succeeded: %v", seed, app.Name, eerr)
			}
			compared++
			gc, ec := totalCost(app, greedy), totalCost(app, exact)
			if ec > gc+1e-9 {
				t.Errorf("seed %d app %s: exact cost %.3f > regret cost %.3f", seed, app.Name, ec, gc)
			}
		}
	}
	if compared == 0 {
		t.Fatal("no app was bound by both binders; the property was never exercised")
	}
}

// TestBindExactBeatsRegretOnCraftedInstance: the regret order binds
// the highest-regret task onto the DSP first, which blocks the cheap
// DSP options of BOTH remaining tasks; backtracking instead moves the
// big task to the GPP and wins.
func TestBindExactBeatsRegretOnCraftedInstance(t *testing.T) {
	p := platform.New()
	p.AddElement(platform.TypeDSP, "d0", platform.DSPCapacity)
	p.AddElement(platform.TypeGPP, "g0", platform.GPPCapacity)

	app := graph.New("crafted")
	big := func(name string) {
		app.AddTask(name, graph.Internal,
			graph.Implementation{Name: name + "-dsp", Target: platform.TypeDSP,
				Requires: resource.Of(90, 8, 0, 0), Cost: 0, ExecTime: 5},
			graph.Implementation{Name: name + "-gpp", Target: platform.TypeGPP,
				Requires: resource.Of(10, 8, 0, 0), Cost: 3, ExecTime: 9})
	}
	small := func(name string) {
		app.AddTask(name, graph.Internal,
			graph.Implementation{Name: name + "-dsp", Target: platform.TypeDSP,
				Requires: resource.Of(50, 8, 0, 0), Cost: 0, ExecTime: 5},
			graph.Implementation{Name: name + "-gpp", Target: platform.TypeGPP,
				Requires: resource.Of(10, 8, 0, 0), Cost: 2, ExecTime: 9})
	}
	big("a")   // regret 3: bound first by the heuristic, hogging the DSP
	small("b") // regret 2
	small("c") // regret 2

	greedy, err := Bind(app, p)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := BindExact(app, p)
	if err != nil {
		t.Fatal(err)
	}
	gc, ec := totalCost(app, greedy), totalCost(app, exact)
	if gc != 4 {
		t.Fatalf("regret cost = %.1f, want 4 (a on dsp, b and c forced to gpp) — instance no longer crafts the trap", gc)
	}
	if ec != 3 {
		t.Errorf("exact cost = %.1f, want 3 (b and c on dsp, a on gpp)", ec)
	}
}

// TestBindExactHonorsFixedElements: fixed locations constrain the
// exact search like the heuristic.
func TestBindExactHonorsFixedElements(t *testing.T) {
	p := smallPlatform()
	app := graph.New("fixed")
	a := app.AddTask("a", graph.Internal, dspImpl(5, 40), dspImpl(1, 40))
	app.Tasks[a].FixedElement = 1
	b, err := BindExact(app, p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Implementation(a).Cost != 1 {
		t.Errorf("exact picked cost %v, want the cheapest fixed-feasible implementation", b.Implementation(a).Cost)
	}
}

// TestBindExactInfeasible delegates failure attribution to the
// heuristic's error type.
func TestBindExactInfeasible(t *testing.T) {
	p := smallPlatform()
	app := graph.New("fpga")
	app.AddTask("t", graph.Internal, graph.Implementation{
		Name: "f", Target: platform.TypeFPGA,
		Requires: resource.Of(1, 1, 0, 1), Cost: 1, ExecTime: 5,
	})
	if _, err := BindExact(app, p); err == nil {
		t.Fatal("infeasible app bound")
	}
}
