package binding

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/resource"
)

// BindExact is the exact alternative to the regret heuristic of Bind:
// a branch-and-bound search over the joint implementation-selection
// space that minimizes the total implementation cost, subject to the
// same location-free capacity estimate (every selection must pack
// into the platform's free elements best-fit, fixed locations
// honored). Bind greedily commits the highest-regret task first and
// never revisits a choice; BindExact backtracks, so it finds the
// cheapest feasible selection when the search completes.
//
// The search is budgeted: after exactBudget explored nodes it returns
// the best complete selection found so far, or falls back to the
// regret heuristic when none was completed yet. The budget keeps the
// worst case (many tasks with many near-equal implementations)
// bounded at run-time scale; within the budget the result is exact
// and deterministic.
func BindExact(app *graph.Application, p *platform.Platform) (*Binding, error) {
	n := len(app.Tasks)
	st := newExactState(p)

	// Cheapest-implementation tail sums: lower bound for pruning.
	// tail[i] is the minimum possible cost of tasks order[i:].
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Fewest implementations first: small branching factors near the
	// root keep the search tree narrow.
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := len(app.Tasks[order[a]].Implementations), len(app.Tasks[order[b]].Implementations)
		if ia != ib {
			return ia < ib
		}
		return order[a] < order[b]
	})
	tail := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		t := app.Tasks[order[i]]
		cheapest := math.Inf(1)
		for _, im := range t.Implementations {
			if im.Cost < cheapest {
				cheapest = im.Cost
			}
		}
		if math.IsInf(cheapest, 1) {
			return nil, &Error{Task: t.ID, Name: t.Name, Reason: "task has no implementations"}
		}
		tail[i] = tail[i+1] + cheapest
	}

	// Per-task implementation order, cheapest first, computed once:
	// the first complete selection becomes a good incumbent and the
	// cost bound prunes early.
	byCost := make([][]int, n)
	for ti := range byCost {
		t := app.Tasks[ti]
		idx := make([]int, len(t.Implementations))
		for j := range idx {
			idx[j] = j
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return t.Implementations[idx[a]].Cost < t.Implementations[idx[b]].Cost
		})
		byCost[ti] = idx
	}

	s := &exactSearch{
		app: app, p: p, st: st, order: order, tail: tail, byCost: byCost,
		cur: make([]int, n), bestCost: math.Inf(1),
	}
	s.dfs(0, 0)

	if s.best == nil {
		// No complete selection found — either the budget ran out or
		// this packing order deemed every selection infeasible. The
		// best-fit packing estimate is order-dependent, so the regret
		// heuristic may still succeed; delegate to it (and to its
		// failure attribution when it cannot).
		return Bind(app, p)
	}
	return &Binding{app: app, impl: s.best}, nil
}

// exactBudget bounds the number of search nodes BindExact explores.
const exactBudget = 200_000

// exactState is the location-free capacity estimate: per-element free
// vectors, mutated on commit and restored on backtrack.
type exactState struct {
	byType map[string][]int // element IDs per type, enabled only
	free   map[int]resource.Vector
	p      *platform.Platform
}

func newExactState(p *platform.Platform) *exactState {
	st := &exactState{
		byType: make(map[string][]int),
		free:   make(map[int]resource.Vector),
		p:      p,
	}
	for _, e := range p.Elements() {
		if !e.Enabled() {
			continue
		}
		st.byType[e.Type] = append(st.byType[e.Type], e.ID)
		st.free[e.ID] = e.Pool().Free()
	}
	return st
}

// place packs the demand into the best-fitting element for the task
// (honoring a fixed location) and returns the element ID, or -1 when
// nothing fits.
func (st *exactState) place(t *graph.Task, im *graph.Implementation) int {
	if t.FixedElement != graph.NoFixedElement {
		e := st.p.Element(t.FixedElement)
		if e == nil || !e.Enabled() || e.Type != im.Target {
			return -1
		}
		if f, ok := st.free[t.FixedElement]; ok && im.Requires.Fits(f) {
			f.SubInPlace(im.Requires)
			return t.FixedElement
		}
		return -1
	}
	best, bestSlack := -1, int64(0)
	for _, id := range st.byType[im.Target] {
		f := st.free[id]
		if !im.Requires.Fits(f) {
			continue
		}
		slack := f.Sub(im.Requires).Sum()
		if best < 0 || slack < bestSlack {
			best, bestSlack = id, slack
		}
	}
	if best >= 0 {
		st.free[best].SubInPlace(im.Requires)
	}
	return best
}

// unplace undoes a place.
func (st *exactState) unplace(elem int, im *graph.Implementation) {
	st.free[elem].AddInPlace(im.Requires)
}

type exactSearch struct {
	app      *graph.Application
	p        *platform.Platform
	st       *exactState
	order    []int
	tail     []float64
	byCost   [][]int // per task: implementation indices, cheapest first
	cur      []int
	best     []int
	bestCost float64
	nodes    int
}

// dfs explores implementation choices for order[i:]; cost is the cost
// of the choices made so far.
func (s *exactSearch) dfs(i int, cost float64) {
	if s.nodes >= exactBudget {
		return
	}
	s.nodes++
	if cost+s.tail[i] >= s.bestCost {
		return
	}
	if i == len(s.order) {
		s.best = append([]int(nil), s.cur...)
		s.bestCost = cost
		return
	}
	t := s.app.Tasks[s.order[i]]
	for _, j := range s.byCost[t.ID] {
		im := &t.Implementations[j]
		elem := s.st.place(t, im)
		if elem < 0 {
			continue
		}
		s.cur[t.ID] = j
		s.dfs(i+1, cost+im.Cost)
		s.st.unplace(elem, im)
	}
}
