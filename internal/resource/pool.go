package resource

import (
	"errors"
	"fmt"
)

// ErrInsufficient is returned by Pool.Alloc when the demand does not
// fit in the currently free resources.
var ErrInsufficient = errors.New("resource: insufficient free resources")

// ErrOverRelease is returned by Pool.Release when releasing more than
// is currently allocated on some axis.
var ErrOverRelease = errors.New("resource: release exceeds allocation")

// Pool tracks allocation state against a fixed capacity vector. It is
// the bookkeeping half of a processing element: the platform layer
// embeds one Pool per element.
//
// A Pool is not safe for concurrent use; the resource manager
// serializes allocation attempts (as the Kairos prototype does inside
// the kernel).
type Pool struct {
	capacity Vector
	used     Vector
}

// NewPool returns an empty pool with the given capacity.
func NewPool(capacity Vector) *Pool {
	return &Pool{capacity: capacity.Clone(), used: make(Vector, len(capacity))}
}

// Capacity returns the total capacity vector (not a copy; treat as
// read-only).
func (p *Pool) Capacity() Vector { return p.capacity }

// Used returns the currently allocated vector (not a copy; treat as
// read-only).
func (p *Pool) Used() Vector { return p.used }

// Free returns a fresh vector of currently free resources.
func (p *Pool) Free() Vector { return p.capacity.Sub(p.used) }

// FreeInto writes the currently free resources into dst (resized as
// needed) and returns it. It is the allocation-free variant of Free
// for hot paths that reuse a scratch vector.
func (p *Pool) FreeInto(dst Vector) Vector {
	if cap(dst) < len(p.capacity) {
		dst = make(Vector, len(p.capacity))
	}
	dst = dst[:len(p.capacity)]
	for i := range p.capacity {
		dst[i] = p.capacity[i] - p.used[i]
	}
	return dst
}

// Fits reports whether demand fits in the free resources. It does not
// allocate: the check runs against capacity−used componentwise. It is
// on the hot path of every availability predicate (av(e,t)) of the
// mapping phase.
func (p *Pool) Fits(demand Vector) bool {
	demand.mustMatch(p.capacity, "Fits")
	for i := range demand {
		if demand[i] > p.capacity[i]-p.used[i] {
			return false
		}
	}
	return true
}

// InUse reports whether any resource is currently allocated.
func (p *Pool) InUse() bool { return !p.used.Zero() }

// Alloc reserves demand from the pool, or returns ErrInsufficient
// (wrapped with the offending demand) leaving the pool unchanged.
func (p *Pool) Alloc(demand Vector) error {
	if !p.Fits(demand) {
		return fmt.Errorf("%w: demand %v, free %v", ErrInsufficient, demand, p.Free())
	}
	p.used.AddInPlace(demand)
	return nil
}

// Release returns demand to the pool, or returns ErrOverRelease
// leaving the pool unchanged.
func (p *Pool) Release(demand Vector) error {
	demand.mustMatch(p.used, "Release")
	for i := range demand {
		if p.used[i]-demand[i] < 0 {
			return fmt.Errorf("%w: release %v, used %v", ErrOverRelease, demand, p.used)
		}
	}
	p.used.SubInPlace(demand)
	return nil
}

// Reset frees everything.
func (p *Pool) Reset() { p.used = make(Vector, len(p.capacity)) }

// Clone returns an independent copy of the pool, including its
// allocation state. Experiments use this to snapshot platforms.
func (p *Pool) Clone() *Pool {
	return &Pool{capacity: p.capacity.Clone(), used: p.used.Clone()}
}

// Utilization returns the highest per-axis used/capacity fraction.
func (p *Pool) Utilization() float64 { return p.used.Utilization(p.capacity) }
