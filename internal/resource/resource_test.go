package resource

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOfAndAccessors(t *testing.T) {
	v := Of(70, 32, 1, 5)
	if v[Compute] != 70 || v[Memory] != 32 || v[IO] != 1 || v[Config] != 5 {
		t.Fatalf("Of misplaced components: %v", v)
	}
	if len(v) != int(NumKinds) {
		t.Fatalf("Of length = %d, want %d", len(v), NumKinds)
	}
}

func TestZero(t *testing.T) {
	if !New().Zero() {
		t.Error("New() should be zero")
	}
	if !(Vector(nil)).Zero() {
		t.Error("nil vector should be zero")
	}
	if Of(0, 0, 1, 0).Zero() {
		t.Error("non-zero vector reported zero")
	}
}

func TestAddSub(t *testing.T) {
	a := Of(10, 20, 30, 40)
	b := Of(1, 2, 3, 4)
	if got, want := a.Add(b), Of(11, 22, 33, 44); !got.Equal(want) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := a.Sub(b), Of(9, 18, 27, 36); !got.Equal(want) {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	// Sub may go negative, and NonNegative must notice.
	if b.Sub(a).NonNegative() {
		t.Error("Sub below zero not detected by NonNegative")
	}
}

func TestInPlaceMatchesPure(t *testing.T) {
	a := Of(5, 6, 7, 8)
	b := Of(1, 1, 2, 2)
	c := a.Clone()
	c.AddInPlace(b)
	if !c.Equal(a.Add(b)) {
		t.Errorf("AddInPlace = %v, want %v", c, a.Add(b))
	}
	d := a.Clone()
	d.SubInPlace(b)
	if !d.Equal(a.Sub(b)) {
		t.Errorf("SubInPlace = %v, want %v", d, a.Sub(b))
	}
}

func TestFitsDominates(t *testing.T) {
	capacity := Of(100, 64, 2, 0)
	if !Of(100, 64, 2, 0).Fits(capacity) {
		t.Error("equal demand should fit")
	}
	if Of(101, 0, 0, 0).Fits(capacity) {
		t.Error("over-demand on compute should not fit")
	}
	if !capacity.Dominates(Of(1, 1, 1, 0)) {
		t.Error("capacity should dominate smaller vector")
	}
	if capacity.Dominates(Of(0, 0, 0, 1)) {
		t.Error("capacity lacks config axis, should not dominate")
	}
}

func TestMaxMinScaleSum(t *testing.T) {
	a := Of(1, 5, 3, 0)
	b := Of(2, 4, 3, 1)
	if got, want := a.Max(b), Of(2, 5, 3, 1); !got.Equal(want) {
		t.Errorf("Max = %v, want %v", got, want)
	}
	if got, want := a.Min(b), Of(1, 4, 3, 0); !got.Equal(want) {
		t.Errorf("Min = %v, want %v", got, want)
	}
	if got, want := a.Scale(3), Of(3, 15, 9, 0); !got.Equal(want) {
		t.Errorf("Scale = %v, want %v", got, want)
	}
	if got := a.Sum(); got != 9 {
		t.Errorf("Sum = %d, want 9", got)
	}
}

func TestUtilization(t *testing.T) {
	capacity := Of(100, 64, 2, 0)
	if got := Of(50, 64, 0, 0).Utilization(capacity); got != 1.0 {
		t.Errorf("Utilization = %v, want 1.0 (memory full)", got)
	}
	if got := Of(25, 16, 0, 0).Utilization(capacity); got != 0.25 {
		t.Errorf("Utilization = %v, want 0.25", got)
	}
	// Axis with zero capacity is ignored even when demanded.
	if got := Of(0, 0, 0, 9).Utilization(capacity); got != 0 {
		t.Errorf("Utilization = %v, want 0 for zero-capacity axis", got)
	}
}

func TestMismatchedSpacesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add on mismatched spaces should panic")
		}
	}()
	_ = Of(1, 2, 3, 4).Add(Vector{1, 2})
}

func TestEqualAcrossSpaces(t *testing.T) {
	if (Vector{1, 2}).Equal(Vector{1, 2, 0}) {
		t.Error("vectors of different lengths must not be equal")
	}
}

func TestSpaceAxis(t *testing.T) {
	if DefaultSpace.Axis("memory") != Memory {
		t.Error("Axis(memory) wrong")
	}
	if DefaultSpace.Axis("bogus") != -1 {
		t.Error("Axis(bogus) should be -1")
	}
}

func TestStringFormats(t *testing.T) {
	got := Of(1, 2, 3, 4).String()
	want := "{compute:1 memory:2 io:3 config:4}"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := (Vector{7, 8}).String(); got != "{7 8}" {
		t.Errorf("String (foreign space) = %q, want {7 8}", got)
	}
}

// randVec produces a small non-negative vector for property tests.
func randVec(r *rand.Rand) Vector {
	v := New()
	for i := range v {
		v[i] = int64(r.Intn(1000))
	}
	return v
}

func TestPropertyAddSubRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVec(r), randVec(r)
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVec(r), randVec(r)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyFitsIffSubNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		demand, capacity := randVec(r), randVec(r)
		return demand.Fits(capacity) == capacity.Sub(demand).NonNegative()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyMaxDominatesBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randVec(r), randVec(r)
		m := a.Max(b)
		return m.Dominates(a) && m.Dominates(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPoolAllocRelease(t *testing.T) {
	p := NewPool(Of(100, 64, 2, 0))
	if err := p.Alloc(Of(60, 32, 1, 0)); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if !p.InUse() {
		t.Error("pool should be in use")
	}
	if got, want := p.Free(), Of(40, 32, 1, 0); !got.Equal(want) {
		t.Errorf("Free = %v, want %v", got, want)
	}
	if err := p.Alloc(Of(50, 0, 0, 0)); !errors.Is(err, ErrInsufficient) {
		t.Errorf("over-alloc error = %v, want ErrInsufficient", err)
	}
	// Failed alloc must not change state.
	if got, want := p.Free(), Of(40, 32, 1, 0); !got.Equal(want) {
		t.Errorf("Free after failed alloc = %v, want %v", got, want)
	}
	if err := p.Release(Of(60, 32, 1, 0)); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if p.InUse() {
		t.Error("pool should be empty after release")
	}
	if err := p.Release(Of(1, 0, 0, 0)); !errors.Is(err, ErrOverRelease) {
		t.Errorf("over-release error = %v, want ErrOverRelease", err)
	}
}

func TestPoolCloneIndependent(t *testing.T) {
	p := NewPool(Of(10, 10, 10, 10))
	if err := p.Alloc(Of(5, 5, 5, 5)); err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	if err := q.Alloc(Of(5, 5, 5, 5)); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Free(), Of(5, 5, 5, 5); !got.Equal(want) {
		t.Errorf("original pool changed by clone's alloc: free %v, want %v", got, want)
	}
	if !q.Free().Zero() {
		t.Errorf("clone free = %v, want zero", q.Free())
	}
}

func TestPoolReset(t *testing.T) {
	p := NewPool(Of(10, 10, 10, 10))
	if err := p.Alloc(Of(3, 3, 3, 3)); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	if p.InUse() {
		t.Error("pool in use after Reset")
	}
	if got := p.Utilization(); got != 0 {
		t.Errorf("Utilization after reset = %v", got)
	}
}

func TestPropertyPoolNeverNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := NewPool(randVec(r))
		for i := 0; i < 50; i++ {
			d := randVec(r)
			if r.Intn(2) == 0 {
				_ = p.Alloc(d)
			} else {
				_ = p.Release(d)
			}
			if !p.Used().NonNegative() || !p.Free().NonNegative() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
