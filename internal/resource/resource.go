// Package resource provides the vector notation for resources used
// throughout the resource manager, following the formulation of
// Hölzenspies et al. (Dagstuhl 07101) adopted by the paper: both the
// resources provided by processing elements and the resources required
// by task implementations are expressed as integer vectors over a
// common set of axes (a Space).
//
// All arithmetic is component-wise. Vectors of different lengths never
// make sense together; mixing them is a programming error and panics,
// in the same spirit as indexing a slice out of range.
package resource

import (
	"fmt"
	"strings"
)

// Kind identifies one axis of a resource Space.
type Kind int

// The axes of the default resource space. Platform builders and the
// application generator agree on these: an element advertises capacity
// on each axis and an implementation demands some of it.
const (
	// Compute is abstract processing capacity. An element offering
	// Compute=100 is one fully available processor; implementations
	// demand a share of it (time-sharing below 100%).
	Compute Kind = iota
	// Memory is local data memory, in KiB.
	Memory
	// IO is the number of external input/output ports.
	IO
	// Config is reconfigurable fabric area (for FPGA-like elements),
	// in abstract configuration units.
	Config

	// NumKinds is the length of the default Space.
	NumKinds
)

// DefaultSpace names the axes of the default resource space, indexed
// by Kind.
var DefaultSpace = Space{"compute", "memory", "io", "config"}

// Space names the axes of a resource vector. It exists mainly for
// formatting and (de)serialization; the algorithms only care about
// vector length.
type Space []string

// Axis returns the index of the named axis, or -1 when absent.
func (s Space) Axis(name string) Kind {
	for i, n := range s {
		if n == name {
			return Kind(i)
		}
	}
	return -1
}

// Vector is a resource vector: requirements of an implementation, or
// capacity / free resources of a processing element. Values are
// non-negative in well-formed vectors; arithmetic does not clamp, so
// callers can detect over-release.
type Vector []int64

// New returns a zero vector for the default space.
func New() Vector { return make(Vector, NumKinds) }

// Of builds a vector in the default space from the given axis values.
// Missing axes are zero.
func Of(compute, memory, io, config int64) Vector {
	return Vector{compute, memory, io, config}
}

// Zero reports whether every component is zero. A nil vector is zero.
func (v Vector) Zero() bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	if v == nil {
		return nil
	}
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

func (v Vector) mustMatch(w Vector, op string) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("resource: %s on vectors of different spaces (%d vs %d axes)", op, len(v), len(w)))
	}
}

// Add returns v + w component-wise.
func (v Vector) Add(w Vector) Vector {
	v.mustMatch(w, "Add")
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w component-wise. Components may go negative; use
// Fits to ask whether w can be taken from v without doing so.
func (v Vector) Sub(w Vector) Vector {
	v.mustMatch(w, "Sub")
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// AddInPlace adds w into v without allocating.
func (v Vector) AddInPlace(w Vector) {
	v.mustMatch(w, "AddInPlace")
	for i := range v {
		v[i] += w[i]
	}
}

// SubInPlace subtracts w from v without allocating.
func (v Vector) SubInPlace(w Vector) {
	v.mustMatch(w, "SubInPlace")
	for i := range v {
		v[i] -= w[i]
	}
}

// Fits reports whether v <= capacity on every axis: a demand v fits in
// the free resources `capacity`.
func (v Vector) Fits(capacity Vector) bool {
	v.mustMatch(capacity, "Fits")
	for i := range v {
		if v[i] > capacity[i] {
			return false
		}
	}
	return true
}

// Dominates reports whether v >= w on every axis.
func (v Vector) Dominates(w Vector) bool {
	v.mustMatch(w, "Dominates")
	for i := range v {
		if v[i] < w[i] {
			return false
		}
	}
	return true
}

// NonNegative reports whether no component is negative.
func (v Vector) NonNegative() bool {
	for _, x := range v {
		if x < 0 {
			return false
		}
	}
	return true
}

// Max returns the component-wise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	v.mustMatch(w, "Max")
	out := make(Vector, len(v))
	for i := range v {
		out[i] = max(v[i], w[i])
	}
	return out
}

// Min returns the component-wise minimum of v and w.
func (v Vector) Min(w Vector) Vector {
	v.mustMatch(w, "Min")
	out := make(Vector, len(v))
	for i := range v {
		out[i] = min(v[i], w[i])
	}
	return out
}

// Scale returns v with every component multiplied by k.
func (v Vector) Scale(k int64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] * k
	}
	return out
}

// Sum returns the sum of all components. It is a crude scalar measure
// of "total demand", used for density orderings in the knapsack
// heuristics.
func (v Vector) Sum() int64 {
	var s int64
	for _, x := range v {
		s += x
	}
	return s
}

// Utilization returns the largest per-axis fraction v[i]/cap[i] over
// axes where cap[i] > 0, as a float in [0, +inf). It measures how much
// of an element a demand occupies.
func (v Vector) Utilization(capacity Vector) float64 {
	v.mustMatch(capacity, "Utilization")
	u := 0.0
	for i := range v {
		if capacity[i] <= 0 {
			continue
		}
		if f := float64(v[i]) / float64(capacity[i]); f > u {
			u = f
		}
	}
	return u
}

// Equal reports component-wise equality. Vectors from different spaces
// are never equal.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// String formats the vector in the default space when lengths agree,
// e.g. "{compute:70 memory:32 io:0 config:0}"; otherwise plain numbers.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		if len(v) == len(DefaultSpace) {
			fmt.Fprintf(&b, "%s:%d", DefaultSpace[i], x)
		} else {
			fmt.Fprintf(&b, "%d", x)
		}
	}
	b.WriteByte('}')
	return b.String()
}
