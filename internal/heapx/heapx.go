// Package heapx is a slice-based binary min-heap shared by the
// weighted platform search and the Dijkstra router. Both previously
// hand-rolled the same sift logic to avoid container/heap's per-item
// interface boxing (one heap allocation per Push/Pop on the admission
// hot path); this package keeps that property — the key extractor is
// a plain function value, so calls do not allocate — while giving the
// subtle part one home.
//
// The sift semantics deliberately mirror container/heap exactly:
// strict-less comparisons only, and sift-down prefers the left child
// when keys tie. Pop order for equal keys is therefore identical to a
// container/heap over the same pushes — the property that keeps the
// routers' visit order (and every chosen path) unchanged from the
// original implementation (TestMatchesContainerHeap pins it).
package heapx

import "cmp"

// Push appends it to the min-heap h (ordered by key ascending) and
// sifts it up, returning the grown slice.
func Push[T any, K cmp.Ordered](h []T, it T, key func(T) K) []T {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if key(h[parent]) <= key(h[i]) {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

// Pop removes and returns the minimum element, returning the shrunk
// slice alongside it. Popping an empty heap panics, as with any
// out-of-range slice access.
func Pop[T any, K cmp.Ordered](h []T, key func(T) K) ([]T, T) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && key(h[l]) < key(h[smallest]) {
			smallest = l
		}
		if r < n && key(h[r]) < key(h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return h, top
}
