package heapx

import (
	"container/heap"
	"math/rand"
	"testing"
)

type pair struct {
	id  int
	key int
}

func pairKey(p pair) int { return p.key }

// refHeap drives container/heap over the same pairs, including its
// tie behavior, as the reference implementation.
type refHeap []pair

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].key < h[j].key }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(pair)) }
func (h *refHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
func (h *refHeap) push(p pair)       { heap.Push(h, p) }
func (h *refHeap) pop() pair         { return heap.Pop(h).(pair) }

// TestMatchesContainerHeap pins the contract the routers rely on: for
// any interleaving of pushes and pops — with plenty of duplicate keys
// — heapx pops the exact element (not just the same key) that
// container/heap pops. That identity is what keeps the Dijkstra visit
// order, and therefore every chosen route, unchanged.
func TestMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var got []pair
		ref := &refHeap{}
		id := 0
		for step := 0; step < 300; step++ {
			if len(got) == 0 || rng.Intn(3) > 0 {
				p := pair{id: id, key: rng.Intn(8)} // few distinct keys → many ties
				id++
				got = Push(got, p, pairKey)
				ref.push(p)
			} else {
				var g pair
				got, g = Pop(got, pairKey)
				if r := ref.pop(); g != r {
					t.Fatalf("trial %d step %d: heapx popped %+v, container/heap popped %+v", trial, step, g, r)
				}
			}
			if len(got) != ref.Len() {
				t.Fatalf("trial %d step %d: size %d vs %d", trial, step, len(got), ref.Len())
			}
		}
		for len(got) > 0 {
			var g pair
			got, g = Pop(got, pairKey)
			if r := ref.pop(); g != r {
				t.Fatalf("trial %d drain: heapx popped %+v, container/heap popped %+v", trial, g, r)
			}
		}
	}
}

func TestPushPopDoesNotAllocate(t *testing.T) {
	h := make([]pair, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		h = h[:0]
		for i := 0; i < 32; i++ {
			h = Push(h, pair{id: i, key: 31 - i}, pairKey)
		}
		for len(h) > 0 {
			h, _ = Pop(h, pairKey)
		}
	})
	if allocs != 0 {
		t.Errorf("push/pop allocated %.1f times per run, want 0", allocs)
	}
}
